package bench

import (
	"bytes"
	"io"
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/report"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
	"hawkset/internal/ycsb"
)

// TestTraceFormatsYieldIdenticalReports is the end-to-end invariant behind
// the capture-once/analyze-many design: the analysis report document must be
// byte-identical whether the trace arrives in-process, through a v1 file, a
// v2 file (plain or compressed), or as a pmcheckd-style segment sequence.
// Any divergence means a stored or streamed trace is not the trace.
func TestTraceFormatsYieldIdenticalReports(t *testing.T) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	w := ycsb.Generate(e.Spec(4000), 42)
	rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	const app, workload = "Fast-Fair", "ycsb ops=4000 seed=42"
	renderDoc := func(res *hawkset.Result) []byte {
		var buf bytes.Buffer
		if err := report.New(res, app, workload, nil).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := renderDoc(hawkset.Analyze(rt.Trace, hawkset.DefaultConfig()))
	if len(want) == 0 {
		t.Fatal("baseline report is empty; differential test is vacuous")
	}

	// File round trips, both versions, streamed through the online analyzer
	// exactly as cmd/hawkset -trace-in does.
	for _, tc := range []struct {
		name string
		opts trace.Options
	}{
		{"v1-file", trace.Options{Version: 1}},
		{"v2-file", trace.Options{Version: 2}},
		{"v2-flate-file", trace.Options{Version: 2, Compress: true}},
	} {
		var file bytes.Buffer
		if err := trace.EncodeWith(&file, rt.Trace, tc.opts); err != nil {
			t.Fatal(err)
		}
		dec, err := trace.NewDecoder(bytes.NewReader(file.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		st := hawkset.NewStream(dec.Sites(), hawkset.DefaultConfig())
		for {
			ev, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if err := st.Feed(ev); err != nil {
				t.Fatal(err)
			}
		}
		res, err := st.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if got := renderDoc(res); !bytes.Equal(got, want) {
			t.Errorf("%s: report differs from in-process analysis (%d vs %d bytes)",
				tc.name, len(got), len(want))
		}
	}

	// Segment ingestion: chunk the trace into encoded segments (the pmcheckd
	// wire payload), decode each against a growing receiver-side site table,
	// and stream the events — the daemon's apply path in miniature.
	for _, o := range []trace.Options{{Version: 1}, {Version: 2}, {Version: 2, Compress: true}} {
		recv := sites.NewTable()
		st := hawkset.NewStream(recv, hawkset.DefaultConfig())
		frames := rt.Trace.Sites.Frames()
		sentFrames := 0
		const batch = 1500
		seq := uint64(1)
		for off := 0; off < len(rt.Trace.Events); off += batch {
			end := off + batch
			if end > len(rt.Trace.Events) {
				end = len(rt.Trace.Events)
			}
			seg := &trace.Segment{Seq: seq, Events: rt.Trace.Events[off:end]}
			if sentFrames < len(frames)-1 {
				seg.Frames = frames[1+sentFrames:]
				sentFrames = len(frames) - 1
			}
			enc, err := trace.EncodeSegmentWith(nil, seg, o)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := trace.DecodeSegment(enc, recv.Len())
			if err != nil {
				t.Fatalf("segment v%d seq %d: %v", o.Version, seq, err)
			}
			for _, f := range dec.Frames {
				recv.Append(f)
			}
			for _, ev := range dec.Events {
				if err := st.Feed(ev); err != nil {
					t.Fatal(err)
				}
			}
			seq++
		}
		res, err := st.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if got := renderDoc(res); !bytes.Equal(got, want) {
			t.Errorf("segment ingestion (v%d, compress=%v): report differs from in-process analysis",
				o.Version, o.Compress)
		}
	}
}
