package bench

import (
	"reflect"
	"runtime"
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/ycsb"
)

// TestParallelAnalysisMatchesSequentialOnApps runs the full pipeline over
// real application workloads and checks that the sharded stage ③ produces
// exactly the sequential result — same reports in the same order, same
// stats — for several worker counts, including a count that does not divide
// the bucket space evenly. The in-package differential tests cover crafted
// corner traces; this one covers the report shapes real workloads produce.
func TestParallelAnalysisMatchesSequentialOnApps(t *testing.T) {
	for _, name := range []string{"Fast-Fair", "Memcached-pmem"} {
		e, err := apps.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		ops := 4000
		if e.MaxOps > 0 && ops > e.MaxOps {
			ops = e.MaxOps
		}
		w := ycsb.Generate(e.Spec(ops), 42)
		rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}

		seq := hawkset.DefaultConfig()
		seq.Workers = 1
		want := hawkset.Analyze(rt.Trace, seq)
		if len(want.Reports) == 0 {
			t.Fatalf("%s: sequential analysis found no reports; differential test is vacuous", name)
		}

		for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
			cfg := seq
			cfg.Workers = workers
			got := hawkset.Analyze(rt.Trace, cfg)
			if !reflect.DeepEqual(got.Reports, want.Reports) {
				t.Errorf("%s: reports with Workers=%d differ from sequential\n got: %v\nwant: %v",
					name, workers, got.Reports, want.Reports)
			}
			if got.Stats != want.Stats {
				t.Errorf("%s: stats with Workers=%d differ from sequential\n got: %+v\nwant: %+v",
					name, workers, got.Stats, want.Stats)
			}
		}
	}
}
