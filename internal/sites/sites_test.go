package sites

import (
	"strings"
	"testing"
)

func TestHereCapturesCaller(t *testing.T) {
	tab := NewTable()
	id := tab.Here(0)
	fr := tab.Lookup(id)
	if !strings.HasSuffix(fr.File, "sites_test.go") {
		t.Fatalf("File = %q, want this test file", fr.File)
	}
	if !strings.Contains(fr.Func, "TestHereCapturesCaller") {
		t.Fatalf("Func = %q", fr.Func)
	}
	if !strings.HasPrefix(fr.String(), "sites_test.go:") {
		t.Fatalf("String = %q", fr.String())
	}
}

func TestHereInterned(t *testing.T) {
	tab := NewTable()
	var a, b ID
	for i := 0; i < 2; i++ {
		id := tab.Here(0) // same line both iterations
		if i == 0 {
			a = id
		} else {
			b = id
		}
	}
	if a != b {
		t.Fatalf("same call site interned twice: %d %d", a, b)
	}
}

func helperSite(tab *Table, skip int) ID { return tab.Here(skip) }

func TestHereSkip(t *testing.T) {
	tab := NewTable()
	id := helperSite(tab, 1) // skip the helper: capture this test
	fr := tab.Lookup(id)
	if !strings.Contains(fr.Func, "TestHereSkip") {
		t.Fatalf("Func = %q, want the test (skip=1)", fr.Func)
	}
}

func TestNamedSites(t *testing.T) {
	tab := NewTable()
	a := tab.Named("t1.store")
	b := tab.Named("t1.store")
	c := tab.Named("t2.load")
	if a != b || a == c {
		t.Fatalf("interning wrong: %d %d %d", a, b, c)
	}
	if got := tab.Lookup(a).String(); got != "t1.store" {
		t.Fatalf("named site renders as %q", got)
	}
}

func TestUnknownID(t *testing.T) {
	tab := NewTable()
	if got := tab.Lookup(0).String(); got != "<unknown>" {
		t.Fatalf("zero ID = %q", got)
	}
	if got := tab.Lookup(999).String(); got != "<unknown>" {
		t.Fatalf("out-of-range ID = %q", got)
	}
}

func TestInternPreResolved(t *testing.T) {
	tab := NewTable()
	a := tab.Intern(Frame{File: "x.c", Line: 42, Func: "f"})
	b := tab.Intern(Frame{File: "x.c", Line: 42, Func: "f"})
	if a != b {
		t.Fatal("equal frames interned twice")
	}
	if got := tab.Lookup(a).String(); got != "x.c:42" {
		t.Fatalf("frame renders as %q", got)
	}
}

func TestFramesAndLen(t *testing.T) {
	tab := NewTable()
	tab.Named("a")
	tab.Named("b")
	if tab.Len() != 3 { // reserved zero + 2
		t.Fatalf("Len = %d", tab.Len())
	}
	fs := tab.Frames()
	if len(fs) != 3 || fs[1].File != "a" {
		t.Fatalf("Frames = %v", fs)
	}
	ss := tab.SortedStrings()
	if len(ss) != 2 || ss[0] != "a" || ss[1] != "b" {
		t.Fatalf("SortedStrings = %v", ss)
	}
}

func TestAppendPreservesPositions(t *testing.T) {
	tab := NewTable()
	a := tab.Append(Frame{File: "x.go", Line: 1, Func: "f"})
	b := tab.Append(Frame{File: "x.go", Line: 1, Func: "f"}) // identical frame
	if a == b {
		t.Fatal("Append deduplicated; IDs must be positional")
	}
	if tab.Lookup(b).Line != 1 {
		t.Fatal("appended frame unreadable")
	}
}

func stackHelper(tab *Table) ID { return tab.HereStack(0, 4) }

func TestHereStackCapturesChain(t *testing.T) {
	tab := NewTable()
	id := stackHelper(tab)
	fr := tab.Lookup(id)
	if !strings.Contains(fr.Func, "stackHelper") || !strings.Contains(fr.Func, "TestHereStackCapturesChain") {
		t.Fatalf("Func chain = %q, want helper<-test", fr.Func)
	}
	if !strings.Contains(fr.Func, "<-") {
		t.Fatalf("chain separator missing: %q", fr.Func)
	}
	if !strings.HasSuffix(fr.File, "sites_test.go") {
		t.Fatalf("leaf file = %q", fr.File)
	}
	// Interned: the same call chain yields the same ID (loop = one line).
	var ids []ID
	for i := 0; i < 2; i++ {
		ids = append(ids, stackHelper(tab))
	}
	if ids[0] != ids[1] {
		t.Fatalf("stack re-interned: %d vs %d", ids[0], ids[1])
	}
}
