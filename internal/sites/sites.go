// Package sites captures and interns program call sites. It is the
// reproduction's substitute for HawkSet's call/return-instrumentation
// backtraces (§4): every instrumented PM access records the Go source
// location of the application code that issued it, deduplicated behind a
// small integer ID so that traces stay compact and race reports can be
// deduplicated by (store site, load site) pairs with integer comparisons.
package sites

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// ID identifies an interned call site. ID 0 is the unknown site.
type ID int32

// Frame is a resolved call site.
type Frame struct {
	File string
	Line int
	Func string
}

// String renders the frame as file:line, trimming directories, the way the
// paper's bug tables report sites (e.g. "btree.h:560").
func (f Frame) String() string {
	if f.File == "" {
		return "<unknown>"
	}
	file := f.File
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	if f.Line == 0 { // synthetic named site
		return file
	}
	return fmt.Sprintf("%s:%d", file, f.Line)
}

// ModuleRel trims an absolute source path to its module-relative,
// slash-separated form starting at "internal/" — the spelling the static
// tools (pmlint/pmopt, whose loader reports module-relative paths) use, so
// static findings and dynamic frames join on a common "file:line" key.
// Paths without an internal/ component are returned unchanged.
func ModuleRel(file string) string {
	if i := strings.LastIndex(file, "/internal/"); i >= 0 {
		return file[i+1:]
	}
	return file
}

// Table interns call sites. The zero value is not usable; use NewTable.
// Table is safe for concurrent use (the simulated program is cooperatively
// scheduled, but analyses may resolve frames from other goroutines).
type Table struct {
	mu      sync.Mutex
	byPC    map[uintptr]ID
	byName  map[string]ID
	byStack map[[8]uintptr]ID
	frames  []Frame
}

// NewTable creates an empty table. Index 0 is reserved for the unknown
// frame.
func NewTable() *Table {
	return &Table{
		byPC:   make(map[uintptr]ID),
		byName: make(map[string]ID),
		frames: []Frame{{}},
	}
}

// Here captures the caller's call site, skipping skip additional stack
// frames (skip 0 means the immediate caller of Here). runtime.Caller is used
// rather than raw PC walking so inlined frames resolve to their logical
// source location.
func (t *Table) Here(skip int) ID {
	pc, file, line, ok := runtime.Caller(skip + 1)
	if !ok {
		return 0
	}
	t.mu.Lock()
	if id, ok := t.byPC[pc]; ok {
		t.mu.Unlock()
		return id
	}
	t.mu.Unlock()
	fname := ""
	if fn := runtime.FuncForPC(pc); fn != nil {
		fname = fn.Name()
	}
	fr := Frame{File: file, Line: line, Func: fname}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byPC[pc]; ok {
		return id
	}
	id := ID(len(t.frames))
	t.frames = append(t.frames, fr)
	t.byPC[pc] = id
	return id
}

// Named interns a synthetic site by name (used by toy programs and tests
// that want stable, human-readable site labels instead of Go file:line).
func (t *Table) Named(name string) ID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byName[name]; ok {
		return id
	}
	id := ID(len(t.frames))
	t.frames = append(t.frames, Frame{File: name, Line: 0, Func: name})
	t.byName[name] = id
	return id
}

// Append adds a frame unconditionally, returning its positional ID. The
// trace decoder uses it to reconstruct a table with identical IDs: two
// distinct PCs may resolve to the same file:line:func (deduplicating them
// would shift every later ID).
func (t *Table) Append(fr Frame) ID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := ID(len(t.frames))
	t.frames = append(t.frames, fr)
	return id
}

// Intern adds a pre-resolved frame (used by tests and tools).
func (t *Table) Intern(fr Frame) ID {
	key := fmt.Sprintf("%s:%d:%s", fr.File, fr.Line, fr.Func)
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byName[key]; ok {
		return id
	}
	id := ID(len(t.frames))
	t.frames = append(t.frames, fr)
	t.byName[key] = id
	return id
}

// Lookup resolves an ID to its frame. Unknown IDs resolve to the zero frame.
func (t *Table) Lookup(id ID) Frame {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.frames) {
		return Frame{}
	}
	return t.frames[id]
}

// Len returns the number of interned frames (including the reserved zero
// frame).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.frames)
}

// Frames returns a copy of all frames indexed by ID (trace encoding).
func (t *Table) Frames() []Frame {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Frame, len(t.frames))
	copy(out, t.frames)
	return out
}

// SortedStrings returns the rendered frames, sorted, for diagnostics.
func (t *Table) SortedStrings() []string {
	frames := t.Frames()
	out := make([]string, 0, len(frames))
	for _, f := range frames[1:] {
		out = append(out, f.String())
	}
	sort.Strings(out)
	return out
}

// HereStack captures the caller's call site together with up to depth-1
// ancestor frames, interned as one unit. It is the analogue of
// PIN_Backtrace-style deep backtraces: the resolved Frame keeps the leaf's
// file:line while Func carries the call chain ("leaf<-caller<-..."), so
// reports show how the racy access was reached. Deep capture is
// substantially more expensive than Here — the original tool measured up to
// 90% overhead for PIN's built-in backtraces and replaced them with
// call/return instrumentation (§4); the reproduction keeps the cheap
// single-frame mode as the default and offers this one opt-in.
func (t *Table) HereStack(skip, depth int) ID {
	if depth < 1 {
		depth = 1
	}
	if depth > 8 {
		depth = 8
	}
	var pcs [8]uintptr
	n := runtime.Callers(skip+2, pcs[:depth])
	if n == 0 {
		return 0
	}
	key := pcs // array copy: the interning key
	t.mu.Lock()
	if id, ok := t.byStack[key]; ok {
		t.mu.Unlock()
		return id
	}
	t.mu.Unlock()

	frames := runtime.CallersFrames(pcs[:n])
	var leaf Frame
	var chain []string
	for i := 0; ; i++ {
		fr, more := frames.Next()
		if i == 0 {
			leaf = Frame{File: fr.File, Line: fr.Line, Func: fr.Function}
		}
		if fr.Function != "" {
			chain = append(chain, fr.Function)
		}
		if !more {
			break
		}
	}
	leaf.Func = strings.Join(chain, "<-")

	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byStack[key]; ok {
		return id
	}
	if t.byStack == nil {
		t.byStack = make(map[[8]uintptr]ID)
	}
	id := ID(len(t.frames))
	t.frames = append(t.frames, leaf)
	t.byStack[key] = id
	return id
}
