package pmcheckd

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// ClientConfig configures a streaming client.
type ClientConfig struct {
	// Addr is the daemon address: "host:port" for TCP or "unix:/path" for
	// a unix socket. Ignored when Dial is set.
	Addr string
	// Dial overrides connection establishment (tests inject network faults
	// here). Called for the initial connection and every reconnect.
	Dial func() (net.Conn, error)
	// Tenant identifies the stream. Reconnecting with the same tenant name
	// resumes from the daemon's last acknowledged segment.
	Tenant string
	// App and Workload label the report document, exactly as the offline
	// report.New arguments would.
	App, Workload string
	// SegmentEvents is the batch size: a segment is sent every this many
	// events (default 2048). Smaller segments mean finer resumption
	// granularity; larger segments mean fewer round trips.
	SegmentEvents int
	// MaxAttempts bounds consecutive failed connection attempts before the
	// client gives up (default 10). Progress on any connection resets the
	// count.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential reconnect backoff
	// (defaults 10ms and 2s). Jitter is applied on top: each delay is
	// uniformly drawn from [d/2, d].
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the backoff jitter (deterministic for tests; 0 = 1).
	Seed int64
	// Compress flate-compresses segment payload blocks before they leave
	// the process. Worth it on slow links; the daemon accepts either.
	Compress bool
	// Logf, when non-nil, receives retry/resume diagnostics.
	Logf func(format string, args ...any)
}

// Client streams trace events to a pmcheckd daemon, surviving connection
// loss: unacknowledged segments are retained (bounded by the server's
// credit window), reconnects resume from the server's acknowledged sequence
// number, and re-sent segments are deduplicated server-side. Feed matches
// the pmrt.Runtime.EventSink signature; errors are sticky and surface on
// Err and Finish.
//
// Client is not safe for concurrent use — one client per instrumented
// runtime, exactly like the Stream it feeds remotely.
type Client struct {
	cfg   ClientConfig
	sites *sites.Table
	rng   *rand.Rand

	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	buf        []trace.Event
	nextSeq    uint64
	acked      uint64
	unacked    []pending
	credits    uint64
	sentSeq    uint64 // highest seq written on the current connection
	sentFrames int    // site frames sent so far (excluding reserved frame 0)

	reportJSON []byte
	err        error
}

type pending struct {
	seq     uint64
	payload []byte
}

// NewClient creates a client bound to the site table of the runtime whose
// events it will stream (rt.Trace.Sites). No connection is made until the
// first segment is due; Connect forces one eagerly.
func NewClient(st *sites.Table, cfg ClientConfig) (*Client, error) {
	if cfg.Tenant == "" {
		return nil, errors.New("pmcheckd: ClientConfig.Tenant is required")
	}
	if cfg.SegmentEvents <= 0 {
		cfg.SegmentEvents = 2048
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 10
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.Dial == nil && cfg.Addr == "" {
		return nil, errors.New("pmcheckd: ClientConfig.Addr or Dial is required")
	}
	c := &Client{
		cfg:     cfg,
		sites:   st,
		rng:     rand.New(rand.NewSource(seed)),
		nextSeq: 1,
	}
	return c, nil
}

// DialAddr connects to a pmcheckd address of the form "host:port" or
// "unix:/path/to.sock".
func DialAddr(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Dial("unix", path)
	}
	return net.Dial("tcp", addr)
}

// Connect establishes (or re-establishes) the connection eagerly, so a
// misconfigured address fails before the instrumented run starts.
func (c *Client) Connect() error {
	if c.err != nil {
		return c.err
	}
	return c.ensureConn()
}

// Feed consumes one instrumented event (assign it to pmrt's EventSink).
// Transport failures are retried transparently; exhausted retries and
// server-side rejections (budget, protocol) become sticky errors surfaced
// by Err and Finish, after which Feed drops events silently — the
// instrumented application must not crash because its analysis daemon went
// away.
func (c *Client) Feed(e trace.Event) {
	if c.err != nil {
		return
	}
	c.buf = append(c.buf, e)
	if len(c.buf) >= c.cfg.SegmentEvents {
		c.setErr(c.flushSegment())
	}
}

// Err returns the sticky client error, if any.
func (c *Client) Err() error { return c.err }

// Sync blocks until every segment flushed so far is acknowledged by the
// daemon — i.e. durable in its log. Events still buffered below one
// segment boundary are NOT flushed (call Finish for that); Sync is the
// checkpoint primitive: after it returns nil, a client crash loses at most
// the unflushed remainder.
func (c *Client) Sync() error {
	if c.err != nil {
		return c.err
	}
	err := c.withRetry("sync", func() error {
		if len(c.unacked) == 0 {
			return nil
		}
		if err := c.sendAllOnConn(); err != nil {
			return err
		}
		for len(c.unacked) > 0 {
			if err := c.awaitAck(); err != nil {
				return err
			}
		}
		return nil
	})
	c.setErr(err)
	return err
}

// Finish flushes buffered events, tells the daemon the stream is complete,
// and returns the analysis report JSON — byte-identical to an offline
// hawkset.Analyze + report.New + WriteJSON over the same events.
func (c *Client) Finish() ([]byte, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.reportJSON != nil {
		return c.reportJSON, nil
	}
	if len(c.buf) > 0 {
		if err := c.flushSegment(); err != nil {
			c.setErr(err)
			return nil, err
		}
	}
	if err := c.finishExchange(); err != nil {
		c.setErr(err)
		return nil, err
	}
	return c.reportJSON, nil
}

// Close releases the connection. The tenant stays resumable server-side.
func (c *Client) Close() error {
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

func (c *Client) setErr(err error) {
	if err != nil && c.err == nil {
		c.err = err
		c.Close() //nolint:errcheck // already failing
	}
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// flushSegment packages the buffered events (plus any site frames interned
// since the last segment) and sends it under the credit window.
func (c *Client) flushSegment() error {
	frames := c.sites.Frames()
	seg := &trace.Segment{
		Seq:    c.nextSeq,
		Frames: frames[1+c.sentFrames:],
		Events: c.buf,
	}
	payload, err := trace.EncodeSegmentWith(nil, seg, trace.Options{Compress: c.cfg.Compress})
	if err != nil {
		return err
	}
	c.sentFrames = len(frames) - 1
	c.nextSeq++
	c.buf = c.buf[:0]
	c.unacked = append(c.unacked, pending{seq: seg.Seq, payload: payload})
	return c.sendPending()
}

// withRetry runs one connection-bound protocol exchange, redialing with
// jittered exponential backoff on transport errors. Explicit server
// rejections are terminal (retrying the same stream cannot help); durable
// progress (the acked watermark advancing) resets the attempt counter, so a
// lossy-but-moving link is not mistaken for a dead one.
func (c *Client) withRetry(op string, fn func() error) error {
	for attempt := 0; ; {
		ackedBefore := c.acked
		err := fn()
		if err == nil {
			return nil
		}
		if terminal := (&serverError{}); errors.As(err, &terminal) {
			return err
		}
		if c.acked > ackedBefore {
			attempt = 0
		}
		attempt++
		if attempt >= c.cfg.MaxAttempts {
			return fmt.Errorf("pmcheckd: %s: giving up after %d attempts: %w", op, attempt, err)
		}
		c.logf("%s failed (attempt %d): %v", op, attempt, err)
		c.dropConn()
		c.sleepBackoff(attempt)
	}
}

// sendPending pushes queued unacknowledged segments out, blocking on acks
// when the credit window is exhausted and transparently redialing on any
// transport error.
func (c *Client) sendPending() error {
	return c.withRetry("send", c.sendAllOnConn)
}

// sendAllOnConn writes every retained segment not yet on the current
// connection, under the credit window. Progress is tracked by sequence
// number, not slice position: acks arriving mid-loop shrink c.unacked in
// place, so indexes are unstable but sequence numbers are not.
func (c *Client) sendAllOnConn() error {
	if err := c.ensureConn(); err != nil {
		return err
	}
	for {
		// Lowest retained segment not yet written on this connection.
		idx := -1
		for i := range c.unacked {
			if c.unacked[i].seq > c.sentSeq {
				idx = i
				break
			}
		}
		if idx == -1 {
			return nil
		}
		if c.credits == 0 {
			if err := c.awaitAck(); err != nil {
				return err
			}
			continue // the ack may have shifted c.unacked: re-scan
		}
		if err := writeFrame(c.bw, fSegment, c.unacked[idx].payload); err != nil {
			return err
		}
		c.credits--
		c.sentSeq = c.unacked[idx].seq
		// Drain any acks that already arrived, without blocking.
		if err := c.reapAcks(); err != nil {
			return err
		}
	}
}

// finishExchange sends the finish frame and waits for the report,
// reconnecting as needed (the finish is idempotent server-side).
func (c *Client) finishExchange() error {
	return c.withRetry("finish", func() error {
		if err := c.sendAllOnConn(); err != nil {
			return err
		}
		var fin []byte
		fin = appendUvarint(fin, c.nextSeq-1)
		if err := writeFrame(c.bw, fFinish, fin); err != nil {
			return err
		}
		for {
			kind, payload, err := readFrame(c.br)
			if err != nil {
				return err
			}
			switch kind {
			case fAck:
				if err := c.applyAck(payload); err != nil {
					return err
				}
			case fReport:
				c.reportJSON = payload
				return nil
			case fError:
				return decodeServerError(payload)
			default:
				return fmt.Errorf("pmcheckd: unexpected frame kind %d awaiting report", kind)
			}
		}
	})
}

// ensureConn dials, handshakes and resumes if no connection is live.
func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := c.dial()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)
	if err := writeHandshake(bw); err != nil {
		conn.Close() //nolint:errcheck // already failing
		return err
	}
	h := hello{Tenant: c.cfg.Tenant, App: c.cfg.App, Workload: c.cfg.Workload}
	if err := writeFrame(bw, fHello, encodeHello(h)); err != nil {
		conn.Close() //nolint:errcheck // already failing
		return err
	}
	kind, payload, err := readFrame(br)
	if err != nil {
		conn.Close() //nolint:errcheck // already failing
		return err
	}
	if kind == fError {
		conn.Close() //nolint:errcheck // already failing
		return decodeServerError(payload)
	}
	if kind != fHelloAck {
		conn.Close() //nolint:errcheck // already failing
		return fmt.Errorf("pmcheckd: expected hello-ack, got frame kind %d", kind)
	}
	ha, err := decodeHelloAck(payload)
	if err != nil {
		conn.Close() //nolint:errcheck // already failing
		return err
	}
	c.conn, c.br, c.bw = conn, br, bw
	c.credits = ha.Credits
	c.dropAcked(ha.Acked)
	// A fresh connection starts from the server's durable position: every
	// retained segment above it is re-sent (and deduplicated server-side if
	// it did arrive before the cut).
	c.sentSeq = c.acked
	if ha.Acked > 0 || len(c.unacked) > 0 {
		c.logf("resumed tenant %s at segment %d (%d unacked to replay)", c.cfg.Tenant, ha.Acked, len(c.unacked))
	}
	return nil
}

func (c *Client) dial() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial()
	}
	return DialAddr(c.cfg.Addr)
}

func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close() //nolint:errcheck // tearing down a broken conn
		c.conn = nil
	}
	c.credits = 0
}

// awaitAck blocks until one server frame arrives and applies it.
func (c *Client) awaitAck() error {
	kind, payload, err := readFrame(c.br)
	if err != nil {
		return err
	}
	switch kind {
	case fAck:
		return c.applyAck(payload)
	case fError:
		return decodeServerError(payload)
	default:
		return fmt.Errorf("pmcheckd: unexpected frame kind %d awaiting ack", kind)
	}
}

// reapAcks applies acks that are already buffered locally, never touching
// the socket — it cannot block and cannot miss data (anything unread stays
// readable for awaitAck).
func (c *Client) reapAcks() error {
	for c.br.Buffered() > 0 {
		if err := c.awaitAck(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) applyAck(payload []byte) error {
	a, err := decodeAck(payload)
	if err != nil {
		return err
	}
	c.dropAcked(a.Acked)
	c.credits += a.Credits
	return nil
}

// dropAcked releases retained segments up to and including seq.
func (c *Client) dropAcked(seq uint64) {
	if seq > c.acked {
		c.acked = seq
	}
	keep := c.unacked[:0]
	for _, p := range c.unacked {
		if p.seq > seq {
			keep = append(keep, p)
		}
	}
	c.unacked = keep
}

// sleepBackoff sleeps the jittered exponential delay for the given attempt.
func (c *Client) sleepBackoff(attempt int) {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	// Full jitter over the top half: [d/2, d].
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// serverError is a rejection the server stated explicitly (budget exceeded,
// protocol violation, draining): retrying the same stream cannot succeed.
type serverError struct{ msg string }

func (e *serverError) Error() string { return "pmcheckd server: " + e.msg }

func decodeServerError(payload []byte) error {
	p := payloadReader{rest: payload}
	msg, err := p.string()
	if err != nil {
		return fmt.Errorf("pmcheckd: undecodable server error: %w", err)
	}
	return &serverError{msg: msg}
}
