// Package pmcheckd is the trace-ingestion daemon: it promotes the online
// analysis mode (hawkset.Stream) into a long-running, fault-tolerant,
// multi-tenant service. A fleet of instrumented application instances
// streams trace events over TCP or a unix socket; the daemon demultiplexes
// each tenant onto its own hawkset.Stream, analyzing at ingest so no trace
// is retained in memory (the trace-based run-time-analysis discipline), and
// persists every segment to a crash-safe per-tenant log before
// acknowledging it, so clients resume after disconnects and the daemon
// resumes after crashes — in both cases producing a report byte-identical
// to an offline hawkset.Analyze over the same events.
//
// Robustness is structural rather than best-effort:
//
//   - per-stream sequence numbers + a fsync'd segment log give exactly-once
//     application under at-least-once delivery (duplicate segments are
//     acked and dropped);
//   - credit-based backpressure bounds every tenant's in-flight memory and
//     keeps one slow or hostile tenant from stalling the rest (each tenant
//     has its own bounded queue and worker goroutine);
//   - per-tenant event budgets turn runaway streams into typed errors, not
//     RSS growth;
//   - graceful drain (SIGTERM in cmd/pmcheckd) finishes or checkpoints
//     every open stream — checkpointing is free because acked means
//     durable — and flushes metrics;
//   - partial tail frames in the segment log are truncated on recovery
//     (the same hostile-input discipline as trace.FuzzDecode).
package pmcheckd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire protocol: after a fixed handshake ("PMCD" magic + version uvarint,
// client to server), both directions speak length-prefixed frames:
//
//	kind    byte
//	length  uvarint
//	payload length bytes
//
// Client frames: hello (tenant, app, workload), segment (a
// trace.EncodeSegment payload carrying the per-stream sequence number),
// finish (total segment count). Server frames: hello-ack (highest durable
// sequence number + initial credits + finished flag), ack (durable sequence
// number + granted credits), report (the final JSON document), error.
const (
	wireMagic   = "PMCD"
	wireVersion = 1
)

// Frame kinds.
const (
	fHello    byte = 1 // c→s: tenant string, app string, workload string
	fSegment  byte = 2 // c→s: trace segment (seq, new frames, events)
	fFinish   byte = 3 // c→s: total uvarint (segments in the whole stream)
	fHelloAck byte = 4 // s→c: acked uvarint, credits uvarint, finished byte
	fAck      byte = 5 // s→c: acked uvarint, credits uvarint (granted delta)
	fReport   byte = 6 // s→c: report JSON bytes
	fError    byte = 7 // s→c: message string
)

// maxFramePayload bounds one frame. Counts inside a frame are further
// bounded by the segment decoder; this cap stops a hostile length prefix
// from driving a single allocation.
const maxFramePayload = 16 << 20

// maxWireString bounds the tenant/app/workload/error strings.
const maxWireString = 4096

var errFrameTooLarge = errors.New("pmcheckd: frame exceeds size limit")

func writeHandshake(bw *bufio.Writer) error {
	if _, err := bw.WriteString(wireMagic); err != nil {
		return err
	}
	putUvarint(bw, wireVersion)
	return nil
}

func readHandshake(br *bufio.Reader) error {
	var mg [len(wireMagic)]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return fmt.Errorf("pmcheckd: handshake: %w", err)
	}
	if string(mg[:]) != wireMagic {
		return errors.New("pmcheckd: bad magic (not a pmcheckd client)")
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("pmcheckd: handshake version: %w", err)
	}
	if v != wireVersion {
		return fmt.Errorf("pmcheckd: unsupported protocol version %d", v)
	}
	return nil
}

// writeFrame emits one frame and flushes — every frame is a self-contained
// protocol step, so buffering across frames would only add latency.
func writeFrame(bw *bufio.Writer, kind byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return errFrameTooLarge
	}
	if err := bw.WriteByte(kind); err != nil {
		return err
	}
	putUvarint(bw, uint64(len(payload)))
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	return bw.Flush()
}

// readFrame parses one frame. The payload length is untrusted: anything
// above the cap is rejected before allocation.
func readFrame(br *bufio.Reader) (byte, []byte, error) {
	kind, err := br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, err
	}
	if n > maxFramePayload {
		return 0, nil, errFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, err
	}
	return kind, payload, nil
}

func putUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}

// appendUvarint / appendString build frame payloads in memory.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// payloadReader consumes a frame payload field by field, with every length
// and count treated as hostile.
type payloadReader struct {
	rest []byte
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.rest)
	if n <= 0 {
		return 0, errors.New("pmcheckd: truncated varint")
	}
	p.rest = p.rest[n:]
	return v, nil
}

func (p *payloadReader) string() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxWireString {
		return "", fmt.Errorf("pmcheckd: string length %d too large", n)
	}
	if uint64(len(p.rest)) < n {
		return "", errors.New("pmcheckd: truncated string")
	}
	s := string(p.rest[:n])
	p.rest = p.rest[n:]
	return s, nil
}

func (p *payloadReader) byte() (byte, error) {
	if len(p.rest) == 0 {
		return 0, errors.New("pmcheckd: truncated byte")
	}
	b := p.rest[0]
	p.rest = p.rest[1:]
	return b, nil
}

func (p *payloadReader) done() error {
	if len(p.rest) != 0 {
		return fmt.Errorf("pmcheckd: %d trailing payload bytes", len(p.rest))
	}
	return nil
}

// hello is the first client frame on every connection.
type hello struct {
	Tenant   string
	App      string
	Workload string
}

func encodeHello(h hello) []byte {
	b := appendString(nil, h.Tenant)
	b = appendString(b, h.App)
	return appendString(b, h.Workload)
}

func decodeHello(payload []byte) (hello, error) {
	var h hello
	p := payloadReader{rest: payload}
	var err error
	if h.Tenant, err = p.string(); err != nil {
		return h, err
	}
	if h.App, err = p.string(); err != nil {
		return h, err
	}
	if h.Workload, err = p.string(); err != nil {
		return h, err
	}
	return h, p.done()
}

// helloAck tells a (re)connecting client where to resume.
type helloAck struct {
	Acked    uint64 // highest durable, applied segment sequence number
	Credits  uint64 // segments the client may have in flight
	Finished bool   // the tenant already produced its report
}

func encodeHelloAck(a helloAck) []byte {
	b := appendUvarint(nil, a.Acked)
	b = appendUvarint(b, a.Credits)
	fin := byte(0)
	if a.Finished {
		fin = 1
	}
	return append(b, fin)
}

func decodeHelloAck(payload []byte) (helloAck, error) {
	var a helloAck
	p := payloadReader{rest: payload}
	var err error
	if a.Acked, err = p.uvarint(); err != nil {
		return a, err
	}
	if a.Credits, err = p.uvarint(); err != nil {
		return a, err
	}
	fin, err := p.byte()
	if err != nil {
		return a, err
	}
	a.Finished = fin != 0
	return a, p.done()
}

// ack confirms durability through Acked and grants Credits further
// in-flight segments.
type ack struct {
	Acked   uint64
	Credits uint64
}

func encodeAck(a ack) []byte {
	b := appendUvarint(nil, a.Acked)
	return appendUvarint(b, a.Credits)
}

func decodeAck(payload []byte) (ack, error) {
	var a ack
	p := payloadReader{rest: payload}
	var err error
	if a.Acked, err = p.uvarint(); err != nil {
		return a, err
	}
	if a.Credits, err = p.uvarint(); err != nil {
		return a, err
	}
	return a, p.done()
}
