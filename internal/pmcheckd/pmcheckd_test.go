// End-to-end tests for the ingestion daemon, extending the PR-5/PR-6
// differential discipline across the network boundary: however a stream
// reaches the daemon — clean, killed and resumed mid-segment, through
// injected network faults, or across a daemon restart — the report document
// must be byte-identical to an offline Analyze of the same trace. The test
// package is external because it renders report.Documents.
package pmcheckd_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hawkset/internal/hawkset"
	"hawkset/internal/obs"
	"hawkset/internal/pmcheckd"
	"hawkset/internal/report"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// buildTrace synthesizes a deterministic multi-threaded PM trace of at
// least n events with a bounded working set: a small shared address pool
// with frequent persists, so the analysis working-set gauges stay flat no
// matter how long the trace runs — the property the bounded-RSS test pins.
func buildTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder()
	const nThreads = 4
	var addrs []uint64
	for i := 0; i < 8; i++ {
		addrs = append(addrs, 0x1000+uint64(rng.Intn(16))*64+uint64(rng.Intn(4))*8)
	}
	for t := 1; t <= nThreads; t++ {
		b.Create(0, int32(t), "main.create")
	}
	for b.T.Len() < n {
		tid := int32(1 + rng.Intn(nThreads))
		addr := addrs[rng.Intn(len(addrs))]
		lock := uint64(1 + rng.Intn(2))
		switch rng.Intn(6) {
		case 0:
			b.Store(tid, addr, 8, "store.unpersisted")
		case 1:
			b.Store(tid, addr, 8, "store.persisted")
			b.Persist(tid, addr, 8, "persist")
		case 2:
			b.Lock(tid, lock, "lock")
			b.Store(tid, addr, 8, "store.locked")
			b.Persist(tid, addr, 8, "persist.locked")
			b.Unlock(tid, lock, "unlock")
		case 3:
			b.Load(tid, addr, 8, "load")
		case 4:
			b.NTStore(tid, addr, 8, "ntstore")
			b.Fence(tid, "fence")
		default:
			b.Lock(tid, lock, "lock")
			b.Load(tid, addr, 8, "load.locked")
			b.Unlock(tid, lock, "unlock")
		}
	}
	for t := 1; t <= nThreads; t++ {
		b.Join(0, int32(t), "main.join")
	}
	return b.T
}

// offlineDoc renders the ground-truth document: offline Analyze + report.
func offlineDoc(t *testing.T, tr *trace.Trace, app, workload string) []byte {
	t.Helper()
	res := hawkset.Analyze(tr, hawkset.DefaultConfig())
	var buf bytes.Buffer
	if err := report.New(res, app, workload, nil).WriteJSON(&buf); err != nil {
		t.Fatalf("offline WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// testServer is a daemon on a loopback listener with automatic drain.
type testServer struct {
	srv     *pmcheckd.Server
	addr    string
	done    chan error
	stopped bool
}

func startServer(t *testing.T, dir string, mod func(*pmcheckd.Config)) *testServer {
	t.Helper()
	cfg := pmcheckd.Config{
		Dir:      dir,
		Analysis: hawkset.DefaultConfig(),
		Logf:     t.Logf,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := pmcheckd.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ts := &testServer{srv: srv, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { ts.done <- srv.Serve(ln) }()
	t.Cleanup(func() { ts.stop(t) })
	return ts
}

// stop drains and asserts both Drain and Serve exited cleanly. Idempotent:
// the Cleanup-registered stop is a no-op after an explicit mid-test stop.
func (ts *testServer) stop(t *testing.T) {
	t.Helper()
	if ts.stopped {
		return
	}
	ts.stopped = true
	if err := ts.srv.Drain(); err != nil {
		t.Errorf("Drain: %v", err)
	}
	select {
	case err := <-ts.done:
		if err != nil {
			t.Errorf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("Serve did not return after Drain")
	}
}

// streamTrace drives a whole trace through a client and returns the daemon
// document.
func streamTrace(t *testing.T, tr *trace.Trace, cfg pmcheckd.ClientConfig) []byte {
	t.Helper()
	c, err := pmcheckd.NewClient(tr.Sites, cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	for _, e := range tr.Events {
		c.Feed(e)
	}
	doc, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return doc
}

func clientCfg(addr, tenant string) pmcheckd.ClientConfig {
	return pmcheckd.ClientConfig{
		Addr:          addr,
		Tenant:        tenant,
		App:           "synthetic",
		Workload:      "buildTrace",
		SegmentEvents: 512,
		BackoffBase:   time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		Seed:          1,
	}
}

// TestDaemonDifferential: a cleanly streamed trace produces the offline
// document byte-for-byte, and a later client for the same tenant fetches
// the identical document (idempotent finish).
func TestDaemonDifferential(t *testing.T) {
	tr := buildTrace(1, 20000)
	want := offlineDoc(t, tr, "synthetic", "buildTrace")
	ts := startServer(t, t.TempDir(), nil)

	got := streamTrace(t, tr, clientCfg(ts.addr, "diff"))
	if !bytes.Equal(want, got) {
		t.Fatalf("daemon document differs from offline analysis:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}

	// A fresh client (no local state at all) fetching the finished stream.
	c, err := pmcheckd.NewClient(sites.NewTable(), clientCfg(ts.addr, "diff"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	again, err := c.Finish()
	if err != nil {
		t.Fatalf("re-Finish: %v", err)
	}
	if !bytes.Equal(want, again) {
		t.Fatal("fetch-after-finish returned a different document")
	}
}

// cutConn injects a hard connection kill after a byte budget: the write
// that crosses the budget is truncated mid-frame and the socket closed —
// the server sees a torn segment on a dead connection.
type cutConn struct {
	net.Conn
	remaining int
	chunkRead bool // deliver reads in tiny chunks (slow-reader injection)
}

func (c *cutConn) Write(p []byte) (int, error) {
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, errors.New("injected: connection killed")
	}
	if len(p) > c.remaining {
		n, _ := c.Conn.Write(p[:c.remaining])
		c.remaining = 0
		c.Conn.Close()
		return n, errors.New("injected: connection killed mid-frame")
	}
	n, err := c.Conn.Write(p)
	c.remaining -= n
	return n, err
}

func (c *cutConn) Read(p []byte) (int, error) {
	if c.chunkRead && len(p) > 3 {
		p = p[:3]
	}
	return c.Conn.Read(p)
}

// TestKillAndResumeMidSegment: the connection dies mid-segment several
// times; the client reconnects, resumes from the acked sequence number, and
// the final document is still byte-identical.
func TestKillAndResumeMidSegment(t *testing.T) {
	tr := buildTrace(2, 20000)
	want := offlineDoc(t, tr, "synthetic", "buildTrace")
	ts := startServer(t, t.TempDir(), nil)

	// Byte budgets chosen to cut inside segment frames (a 512-event segment
	// encodes to a few KiB); the last connection is unlimited.
	budgets := []int{2000, 5000, 9000, 1 << 30}
	dials := 0
	cfg := clientCfg(ts.addr, "killresume")
	cfg.Logf = t.Logf
	cfg.Dial = func() (net.Conn, error) {
		c, err := net.Dial("tcp", ts.addr)
		if err != nil {
			return nil, err
		}
		b := budgets[min(dials, len(budgets)-1)]
		dials++
		return &cutConn{Conn: c, remaining: b}, nil
	}
	got := streamTrace(t, tr, cfg)
	if dials < len(budgets) {
		t.Fatalf("fault injection never engaged: %d dials", dials)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("kill-and-resume document differs from offline analysis")
	}
}

// TestInjectedNetworkFaults: randomized dial failures, mid-frame cuts and
// chunked (slow) reads, deterministic by seed. The differential must hold
// regardless.
func TestInjectedNetworkFaults(t *testing.T) {
	tr := buildTrace(3, 20000)
	want := offlineDoc(t, tr, "synthetic", "buildTrace")
	ts := startServer(t, t.TempDir(), nil)

	rng := rand.New(rand.NewSource(7))
	faults := 0
	cfg := clientCfg(ts.addr, "netfaults")
	cfg.Logf = t.Logf
	cfg.MaxAttempts = 50
	cfg.Dial = func() (net.Conn, error) {
		if rng.Intn(4) == 0 {
			faults++
			return nil, errors.New("injected: dial refused")
		}
		c, err := net.Dial("tcp", ts.addr)
		if err != nil {
			return nil, err
		}
		// Every connection dies eventually; budgets stay above one segment
		// so each connection makes durable progress — the retry counter
		// resets on progress, which is what keeps the client from giving
		// up under sustained (but non-total) loss.
		faults++
		return &cutConn{
			Conn:      c,
			remaining: 8192 + rng.Intn(32768),
			chunkRead: rng.Intn(2) == 0,
		}, nil
	}
	got := streamTrace(t, tr, cfg)
	if faults == 0 {
		t.Fatal("fault injection never engaged")
	}
	if !bytes.Equal(want, got) {
		t.Fatal("network-fault document differs from offline analysis")
	}
}

// TestServerRestartRecovery: the daemon is drained mid-stream (only part of
// the trace ingested), its store tail is corrupted with garbage, a second
// daemon recovers from the same directory, and the same client object
// (which never learned about any of this beyond a dropped connection)
// finishes the stream against the new daemon. The document must equal the
// uninterrupted offline analysis, proving acked-means-durable end to end.
func TestServerRestartRecovery(t *testing.T) {
	tr := buildTrace(4, 20000)
	want := offlineDoc(t, tr, "synthetic", "buildTrace")
	dir := t.TempDir()

	srv1, err := pmcheckd.NewServer(pmcheckd.Config{Dir: dir, Analysis: hawkset.DefaultConfig(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- srv1.Serve(ln1) }()

	var addr atomic.Value
	addr.Store(ln1.Addr().String())
	cfg := clientCfg("", "restart")
	cfg.Logf = t.Logf
	cfg.MaxAttempts = 100
	cfg.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr.Load().(string)) }
	c, err := pmcheckd.NewClient(tr.Sites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	half := len(tr.Events) / 2
	for _, e := range tr.Events[:half] {
		c.Feed(e)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("first half: %v", err)
	}

	// Hard stop the first daemon and corrupt the store tail: everything
	// acked survives; the garbage must be truncated by recovery.
	if err := srv1.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-done1; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	logPath := dir + "/restart.seglog"
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 200, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ts2 := startServer(t, dir, nil)
	addr.Store(ts2.addr)

	for _, e := range tr.Events[half:] {
		c.Feed(e)
	}
	got, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish after restart: %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("restart-recovery document differs from offline analysis")
	}

	// And a third daemon regenerates the identical report from the log
	// alone — no client involved.
	ts2.stop(t)
	ts3 := startServer(t, dir, nil)
	c3, err := pmcheckd.NewClient(sites.NewTable(), clientCfg(ts3.addr, "restart"))
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	regen, err := c3.Finish()
	if err != nil {
		t.Fatalf("regenerated Finish: %v", err)
	}
	if !bytes.Equal(want, regen) {
		t.Fatal("report regenerated from the log differs")
	}
}

// TestBudgetIsolation: a tenant that exceeds its event budget is rejected
// with a terminal error while a concurrent, in-budget tenant on the same
// daemon completes with a correct document.
func TestBudgetIsolation(t *testing.T) {
	small := buildTrace(5, 4000)
	big := buildTrace(6, 20000)
	want := offlineDoc(t, small, "synthetic", "buildTrace")
	ts := startServer(t, t.TempDir(), func(c *pmcheckd.Config) {
		c.MaxEventsPerTenant = 10000
	})

	over, err := pmcheckd.NewClient(big.Sites, clientCfg(ts.addr, "over-budget"))
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	for _, e := range big.Events {
		over.Feed(e)
	}
	if _, err := over.Finish(); err == nil {
		t.Fatal("over-budget tenant finished without error")
	} else if !errors.Is(over.Err(), err) {
		t.Fatalf("Err() = %v, Finish error = %v", over.Err(), err)
	}

	got := streamTrace(t, small, clientCfg(ts.addr, "in-budget"))
	if !bytes.Equal(want, got) {
		t.Fatal("in-budget tenant's document perturbed by the rejected tenant")
	}
}

// TestManyTenantsBounded: concurrent tenant streams (8 x 100k events, or a
// scaled-down version under -short) all hold the differential, and every
// tenant's analysis working-set gauges stay bounded — flat high-water marks
// independent of stream length, the bounded-RSS acceptance instrument.
func TestManyTenantsBounded(t *testing.T) {
	tenants, events := 8, 100000
	if testing.Short() {
		tenants, events = 4, 10000
	}
	metrics := obs.NewRegistry()
	ts := startServer(t, t.TempDir(), func(c *pmcheckd.Config) {
		c.Metrics = metrics
		c.Logf = nil // too chatty at this scale
	})

	var wg sync.WaitGroup
	errc := make(chan error, tenants)
	lens := make([]uint64, tenants) // exact event count per tenant (>= events)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := buildTrace(int64(100+i), events)
			lens[i] = uint64(tr.Len())
			want := offlineDoc(t, tr, "synthetic", "buildTrace")
			c, err := pmcheckd.NewClient(tr.Sites, clientCfg(ts.addr, fmt.Sprintf("tenant-%d", i)))
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for _, e := range tr.Events {
				c.Feed(e)
			}
			doc, err := c.Finish()
			if err != nil {
				errc <- fmt.Errorf("tenant-%d: %w", i, err)
				return
			}
			if !bytes.Equal(want, doc) {
				errc <- fmt.Errorf("tenant-%d: document differs from offline analysis", i)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	var total uint64
	for i, n := range lens {
		total += n
		name := fmt.Sprintf("tenant-%d", i)
		snap := ts.srv.TenantSnapshot(name)
		if snap == nil {
			t.Fatalf("no snapshot for %s", name)
		}
		if got := snap.Counter("pmcheckd.tenant.events"); got != n {
			t.Errorf("%s: ingested %d events, want %d", name, got, n)
		}
		// The synthetic workload touches <=128 addresses on <=32 lines with
		// frequent persists: a leak-free replayer's working set is tiny and
		// independent of the 100k-event stream length.
		if hw := snap.GaugeMax("hawkset.replay.open_stores"); hw <= 0 || hw > 1024 {
			t.Errorf("%s: open_stores high-water %d not bounded", name, hw)
		}
		if hw := snap.GaugeMax("hawkset.replay.lines"); hw <= 0 || hw > 1024 {
			t.Errorf("%s: lines high-water %d not bounded", name, hw)
		}
	}
	snap := metrics.Snapshot()
	if got := snap.Counter("pmcheckd.events"); got != total {
		t.Errorf("daemon ingested %d events total, want %d", got, total)
	}
}

// TestDrainCheckpoint: segments received before a drain survive it — the
// next daemon process resumes the tenant exactly at the acked position with
// nothing lost and nothing duplicated.
func TestDrainCheckpoint(t *testing.T) {
	tr := buildTrace(8, 8000)
	dir := t.TempDir()
	ts := startServer(t, dir, nil)

	cfg := clientCfg(ts.addr, "checkpoint")
	c, err := pmcheckd.NewClient(tr.Sites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	half := len(tr.Events) / 2
	for _, e := range tr.Events[:half] {
		c.Feed(e)
	}
	// Sync is the checkpoint barrier: after it, every flushed segment is
	// durable in the daemon's log; only the sub-segment buffered remainder
	// is still client-side.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	ts.stop(t)

	ts2 := startServer(t, dir, nil)
	c2, err := pmcheckd.NewClient(sites.NewTable(), clientCfg(ts2.addr, "checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Connect(); err != nil {
		t.Fatalf("reconnect to recovered daemon: %v", err)
	}
	snap := ts2.srv.TenantSnapshot("checkpoint")
	if snap == nil {
		t.Fatal("checkpointed tenant not recovered")
	}
	// Everything Sync confirmed durable was replayed by the second daemon;
	// the unflushed client remainder (buffered, below one segment) was not.
	want := uint64(half/512) * 512
	if acked := snap.Counter("pmcheckd.tenant.events"); acked != want {
		t.Fatalf("recovered %d events, want %d (the synced whole segments)", acked, want)
	}
}
