package pmcheckd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The segment store is one append-only log file per tenant:
//
//	header  magic "PMCL", version byte,
//	        tenant string, app string, workload string
//	records kind byte (1=segment, 2=finish), length uvarint, payload
//
// A segment record's payload is exactly the trace.EncodeSegment bytes that
// arrived on the wire; a finish record's payload is the uvarint total
// segment count. Every append is fsync'd before the segment is acknowledged
// to the client, so "acked" means "durable": a crashed daemon rebuilds each
// tenant's analysis state by replaying its log, and a client that saw an
// ack never needs to re-send that segment (re-sending is still safe — the
// sequence number makes replay idempotent).
//
// Crash-safety at the tail: a daemon killed mid-append leaves a partial
// record. Recovery scans the log record by record and truncates at the last
// well-formed boundary — the same corrupt-tail discipline trace.FuzzDecode
// enforces for trace files — so a torn tail can neither wedge recovery nor
// smuggle garbage into the analysis.
const (
	logMagic   = "PMCL"
	logVersion = 1

	recSegment byte = 1
	recFinish  byte = 2
)

// logSuffix names tenant logs inside the store directory.
const logSuffix = ".seglog"

// logMeta is the per-tenant header: identity the daemon needs to rebuild
// the tenant (and regenerate its report) without the client.
type logMeta struct {
	Tenant   string
	App      string
	Workload string
}

// segLog is an open per-tenant log positioned at its end.
type segLog struct {
	f    *os.File
	path string
}

// validTenantName gates what may become part of a file name. The tenant
// string comes off the network; anything outside a conservative charset is
// rejected before it touches the filesystem.
func validTenantName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	// Purely dot-composed names ("..", ".") are path navigation, not IDs.
	return strings.Trim(name, ".") != ""
}

func logPath(dir, tenant string) string {
	return filepath.Join(dir, tenant+logSuffix)
}

// createSegLog starts a fresh log with the header durably on disk (file and
// directory both synced: the log must survive a crash immediately after the
// first ack).
func createSegLog(path string, meta logMeta) (*segLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr []byte
	hdr = append(hdr, logMagic...)
	hdr = append(hdr, logVersion)
	hdr = appendString(hdr, meta.Tenant)
	hdr = appendString(hdr, meta.App)
	hdr = appendString(hdr, meta.Workload)
	if _, err := f.Write(hdr); err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, err
	}
	return &segLog{f: f, path: path}, nil
}

// openSegLog reopens an existing log: it parses the header, replays every
// well-formed record through the applier built by applyFor (which receives
// the header's metadata first — replay may depend on it), truncates any
// partial tail, and leaves the file positioned for appending.
func openSegLog(path string, applyFor func(meta logMeta) func(kind byte, payload []byte) error) (*segLog, logMeta, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, logMeta{}, err
	}
	meta, validLen, err := replayLog(f, applyFor)
	if err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, logMeta{}, err
	}
	// Truncate the torn tail (no-op when the log ends cleanly) and position
	// at the new end.
	if err := f.Truncate(validLen); err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, logMeta{}, err
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, logMeta{}, err
	}
	return &segLog{f: f, path: path}, meta, nil
}

// replayLog reads the header and all complete records, returning the byte
// length of the well-formed prefix. A malformed header is an error (the
// file is not a segment log); a malformed or partial record merely ends the
// replay — that is the torn tail truncation cuts off.
func replayLog(f *os.File, applyFor func(meta logMeta) func(kind byte, payload []byte) error) (logMeta, int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return logMeta{}, 0, err
	}
	if len(data) < len(logMagic)+1 || string(data[:len(logMagic)]) != logMagic {
		return logMeta{}, 0, fmt.Errorf("%s: not a segment log", f.Name())
	}
	if data[len(logMagic)] != logVersion {
		return logMeta{}, 0, fmt.Errorf("%s: unsupported log version %d", f.Name(), data[len(logMagic)])
	}
	p := payloadReader{rest: data[len(logMagic)+1:]}
	var meta logMeta
	if meta.Tenant, err = p.string(); err != nil {
		return logMeta{}, 0, fmt.Errorf("%s: header: %w", f.Name(), err)
	}
	if meta.App, err = p.string(); err != nil {
		return logMeta{}, 0, fmt.Errorf("%s: header: %w", f.Name(), err)
	}
	if meta.Workload, err = p.string(); err != nil {
		return logMeta{}, 0, fmt.Errorf("%s: header: %w", f.Name(), err)
	}
	apply := applyFor(meta)
	offset := int64(len(data) - len(p.rest))
	rest := p.rest
	for {
		kind, payload, n := nextRecord(rest)
		if n == 0 {
			break // partial or malformed tail: truncate here
		}
		if err := apply(kind, payload); err != nil {
			// The record was durable but does not apply (e.g. a sequence
			// gap after manual tampering): surface it — silently dropping
			// applied-state would desync acked from the stream.
			return logMeta{}, 0, fmt.Errorf("%s: replay at offset %d: %w", f.Name(), offset, err)
		}
		offset += int64(n)
		rest = rest[n:]
	}
	return meta, offset, nil
}

// nextRecord parses one record from b, returning its total encoded length
// (0 when b holds no complete, plausible record).
func nextRecord(b []byte) (kind byte, payload []byte, n int) {
	if len(b) < 2 {
		return 0, nil, 0
	}
	kind = b[0]
	if kind != recSegment && kind != recFinish {
		return 0, nil, 0
	}
	length, vn := binary.Uvarint(b[1:])
	if vn <= 0 || length > maxFramePayload {
		return 0, nil, 0
	}
	total := 1 + vn + int(length)
	if total > len(b) {
		return 0, nil, 0
	}
	return kind, b[1+vn : total], total
}

// append durably adds one record: the write and fsync complete before the
// caller acknowledges the segment.
func (l *segLog) append(kind byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return errFrameTooLarge
	}
	rec := make([]byte, 0, 1+binary.MaxVarintLen64+len(payload))
	rec = append(rec, kind)
	rec = binary.AppendUvarint(rec, uint64(len(payload)))
	rec = append(rec, payload...)
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *segLog) close() error {
	return l.f.Close()
}

// syncDir fsyncs a directory so a freshly created log file's directory
// entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		// Some filesystems reject fsync on directories; the entry will
		// still land with the next journal commit.
		return err
	}
	return nil
}
