package pmcheckd

import (
	"bufio"
	"bytes"
	"testing"

	"hawkset/internal/trace"
)

// FuzzWire drives every network-facing decoder with arbitrary bytes — the
// same hostile-input discipline as trace.FuzzDecode. None of them may
// panic, and none may allocate proportionally to a hostile length prefix;
// what the fuzzer can reach, a malicious or corrupted client can send.
func FuzzWire(f *testing.F) {
	// Well-formed seeds so the fuzzer starts inside the format: a
	// handshake, a hello frame, acks, and a log record.
	var hs bytes.Buffer
	bw := bufio.NewWriter(&hs)
	if err := writeHandshake(bw); err != nil {
		f.Fatal(err)
	}
	if err := writeFrame(bw, fHello, encodeHello(hello{Tenant: "t1", App: "app", Workload: "w"})); err != nil {
		f.Fatal(err)
	}
	f.Add(hs.Bytes())
	f.Add(encodeHello(hello{Tenant: "tenant-1", App: "Fast-Fair", Workload: "ycsb ops=10 seed=42"}))
	f.Add(encodeHelloAck(helloAck{Acked: 7, Credits: 8, Finished: true}))
	f.Add(encodeAck(ack{Acked: 1 << 40, Credits: 3}))
	f.Add([]byte{recSegment, 5, 1, 2, 3, 4, 5, recFinish, 1, 9})
	f.Add([]byte{recSegment, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	// A well-formed v2 segment payload (block codec, 0x00 'S' marker), so
	// the fuzzer mutates from inside the v2 framing.
	segV2, err := trace.EncodeSegment(nil, &trace.Segment{
		Seq:    3,
		Events: []trace.Event{{Kind: trace.KStore, TID: 1, Addr: 128, Size: 8, Site: 2}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(segV2)
	// A v1 segment header claiming 2^40 site frames with nothing behind it:
	// must be rejected by the frame cap, never allocated for.
	f.Add([]byte{1, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame stream: handshake, then frames until the data runs out or a
		// decode error ends the stream.
		br := bufio.NewReader(bytes.NewReader(data))
		if err := readHandshake(br); err == nil {
			for {
				kind, payload, err := readFrame(br)
				if err != nil {
					break
				}
				switch kind {
				case fHello:
					decodeHello(payload) //nolint:errcheck // must-not-panic probe
				case fHelloAck:
					decodeHelloAck(payload) //nolint:errcheck // must-not-panic probe
				case fAck:
					decodeAck(payload) //nolint:errcheck // must-not-panic probe
				}
			}
		}

		// Each payload decoder directly over the raw input.
		decodeHello(data)    //nolint:errcheck // must-not-panic probe
		decodeHelloAck(data) //nolint:errcheck // must-not-panic probe
		decodeAck(data)      //nolint:errcheck // must-not-panic probe

		// Segment payload (the sequence-number-bearing wire body).
		trace.DecodeSegment(data, 4) //nolint:errcheck // must-not-panic probe

		// Segment-log records: walking records must terminate and never
		// claim a record extending past the buffer.
		rest := data
		for {
			kind, payload, n := nextRecord(rest)
			if n == 0 {
				break
			}
			if n > len(rest) {
				t.Fatalf("nextRecord claimed %d bytes of %d", n, len(rest))
			}
			_ = kind
			_ = payload
			rest = rest[n:]
		}
	})
}

// TestWireRoundTrips pins the encode/decode pairs byte-for-byte.
func TestWireRoundTrips(t *testing.T) {
	h := hello{Tenant: "t-9", App: "WIPE", Workload: "ycsb ops=100 seed=7"}
	got, err := decodeHello(encodeHello(h))
	if err != nil || got != h {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}
	ha := helloAck{Acked: 12, Credits: 8, Finished: true}
	gotHA, err := decodeHelloAck(encodeHelloAck(ha))
	if err != nil || gotHA != ha {
		t.Fatalf("helloAck round trip: %+v, %v", gotHA, err)
	}
	a := ack{Acked: 1 << 50, Credits: 1}
	gotA, err := decodeAck(encodeAck(a))
	if err != nil || gotA != a {
		t.Fatalf("ack round trip: %+v, %v", gotA, err)
	}
	if _, err := decodeHello(append(encodeHello(h), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestValidTenantName pins the filesystem-facing name filter.
func TestValidTenantName(t *testing.T) {
	for _, ok := range []string{"a", "Fast-Fair-seed42", "t_1.log", "A9"} {
		if !validTenantName(ok) {
			t.Errorf("%q rejected", ok)
		}
	}
	long := bytes.Repeat([]byte("a"), 129)
	for _, bad := range []string{"", ".", "..", "a/b", "a b", "ü", "a\x00b", string(long)} {
		if validTenantName(bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}
