package pmcheckd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hawkset/internal/hawkset"
	"hawkset/internal/obs"
	"hawkset/internal/report"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// ErrBudgetExceeded is the terminal tenant error for a stream that exceeds
// its per-tenant event budget. The tenant is rejected, not the daemon: other
// tenants keep streaming.
var ErrBudgetExceeded = errors.New("pmcheckd: tenant event budget exceeded")

// errFinished mirrors hawkset.ErrStreamFinished at the protocol layer.
var errFinished = errors.New("pmcheckd: stream already finished")

// tenantItem is one unit of tenant-worker work: a segment or a finish
// request, tagged with the connection that submitted it so acknowledgements
// and errors reach the right client.
type tenantItem struct {
	kind    byte // recSegment or recFinish
	seq     uint64
	payload []byte
	conn    *serverConn
}

// tenant is one ingest stream: its own hawkset.Stream, site table, durable
// segment log, bounded work queue and worker goroutine. All analysis state
// is worker-owned; the accept path only enqueues, so a stalled or hostile
// tenant saturates its own queue and nothing else.
type tenant struct {
	name string
	meta logMeta
	srv  *Server

	queue chan tenantItem

	// Worker-owned (or recovery-owned, before the worker starts).
	log       *segLog
	stream    *hawkset.Stream
	table     *sites.Table
	events    uint64
	replaying bool // during log recovery: apply but do not re-append

	acked atomic.Uint64

	mu     sync.Mutex
	conn   *serverConn
	report []byte // JSON document, non-nil once finished
	failed error  // terminal error; the tenant accepts nothing more

	metrics   *obs.Registry
	mSegments *obs.Counter
	mEvents   *obs.Counter
	mDupes    *obs.Counter
}

func (s *Server) newTenant(meta logMeta) *tenant {
	reg := obs.NewRegistry()
	t := &tenant{
		name:      meta.Tenant,
		meta:      meta,
		srv:       s,
		queue:     make(chan tenantItem, s.cfg.QueueDepth),
		table:     sites.NewTable(),
		metrics:   reg,
		mSegments: reg.Counter("pmcheckd.tenant.segments"),
		mEvents:   reg.Counter("pmcheckd.tenant.events"),
		mDupes:    reg.Counter("pmcheckd.tenant.dup_segments"),
	}
	cfg := s.cfg.Analysis
	cfg.Metrics = reg // per-tenant working-set gauges and stage timings
	t.stream = hawkset.NewStream(t.table, cfg)
	return t
}

// run is the tenant worker: it drains the queue until the server closes it
// at drain time. Everything it applies is durable before it is acked.
func (t *tenant) run() {
	defer t.srv.workerWG.Done()
	for it := range t.queue {
		switch it.kind {
		case recSegment:
			t.handleSegment(it)
		case recFinish:
			t.handleFinish(it)
		}
	}
}

// fail marks the tenant terminally broken and reports why to the submitting
// client.
func (t *tenant) fail(it tenantItem, err error) {
	t.mu.Lock()
	if t.failed == nil {
		t.failed = err
	}
	t.mu.Unlock()
	t.srv.mTenantErrors.Inc()
	t.srv.logf("tenant %s: %v", t.name, err)
	it.conn.sendError(err)
}

func (t *tenant) terminalErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed
}

func (t *tenant) handleSegment(it tenantItem) {
	if err := t.terminalErr(); err != nil {
		it.conn.sendError(err)
		return
	}
	if t.finishedReport() != nil {
		it.conn.sendError(errFinished)
		return
	}
	acked := t.acked.Load()
	if it.seq <= acked {
		// Idempotent replay: the client re-sent a segment that is already
		// durable and applied (it never saw our ack). Confirm and refuel.
		t.mDupes.Inc()
		it.conn.send(fAck, encodeAck(ack{Acked: acked, Credits: 1})) //nolint:errcheck // conn errors surface on the reader
		return
	}
	if it.seq != acked+1 {
		t.fail(it, fmt.Errorf("pmcheckd: segment gap: got seq %d, want %d", it.seq, acked+1))
		return
	}
	if err := t.applySegment(it.payload); err != nil {
		t.fail(it, err)
		return
	}
	it.conn.send(fAck, encodeAck(ack{Acked: t.acked.Load(), Credits: 1})) //nolint:errcheck // conn errors surface on the reader
}

// applySegment is the durability-then-apply core, shared by live ingest and
// log recovery: decode, enforce the budget, persist (unless replaying the
// log itself), append the new site frames, feed the events, bump acked.
func (t *tenant) applySegment(payload []byte) error {
	seg, err := trace.DecodeSegment(payload, t.table.Len())
	if err != nil {
		return err
	}
	if max := t.srv.cfg.MaxEventsPerTenant; max > 0 && t.events+uint64(len(seg.Events)) > max {
		return fmt.Errorf("%w: %d events over budget %d", ErrBudgetExceeded, t.events+uint64(len(seg.Events)), max)
	}
	if !t.replaying {
		if err := t.log.append(recSegment, payload); err != nil {
			return fmt.Errorf("pmcheckd: segment log: %w", err)
		}
	}
	for _, f := range seg.Frames {
		t.table.Append(f)
	}
	for _, e := range seg.Events {
		if err := t.stream.Feed(e); err != nil {
			return err // unreachable while report == nil; kept for safety
		}
	}
	t.events += uint64(len(seg.Events))
	t.acked.Store(seg.Seq)
	t.mSegments.Inc()
	t.mEvents.Add(uint64(len(seg.Events)))
	t.srv.mSegments.Inc()
	t.srv.mEvents.Add(uint64(len(seg.Events)))
	return nil
}

func (t *tenant) handleFinish(it tenantItem) {
	if err := t.terminalErr(); err != nil {
		it.conn.sendError(err)
		return
	}
	if doc := t.finishedReport(); doc != nil {
		// Idempotent fetch: the client lost the connection after our report
		// frame (or a previous daemon run finished the stream).
		it.conn.send(fReport, doc) //nolint:errcheck // conn errors surface on the reader
		return
	}
	if total := it.seq; total != t.acked.Load() {
		// Not terminal: the client may reconcile (re-send the missing
		// segments) and finish again.
		it.conn.sendError(fmt.Errorf("pmcheckd: finish with %d segments but only %d acked", total, t.acked.Load()))
		return
	}
	doc, err := t.finishStream()
	if err != nil {
		t.fail(it, err)
		return
	}
	it.conn.send(fReport, doc) //nolint:errcheck // conn errors surface on the reader
}

// finishStream runs stage ③, renders the JSON document, and records the
// finish durably. Deterministic by construction: the same segments produce
// the same document, which is how a restarted daemon regenerates reports
// without storing them.
func (t *tenant) finishStream() ([]byte, error) {
	res, err := t.stream.Finish()
	if err != nil {
		return nil, err
	}
	doc := report.New(res, t.meta.App, t.meta.Workload, nil)
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		return nil, err
	}
	if !t.replaying {
		var fin []byte
		fin = binary.AppendUvarint(fin, t.acked.Load())
		if err := t.log.append(recFinish, fin); err != nil {
			return nil, fmt.Errorf("pmcheckd: finish log: %w", err)
		}
	}
	t.mu.Lock()
	t.report = buf.Bytes()
	t.mu.Unlock()
	t.srv.mFinished.Inc()
	return buf.Bytes(), nil
}

func (t *tenant) finishedReport() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.report
}

// recoverRecord replays one durable log record during daemon startup.
func (t *tenant) recoverRecord(kind byte, payload []byte) error {
	switch kind {
	case recSegment:
		seq, err := trace.PeekSegmentSeq(payload)
		if err != nil {
			return fmt.Errorf("pmcheckd: recovered segment without sequence number: %w", err)
		}
		if seq != t.acked.Load()+1 {
			return fmt.Errorf("pmcheckd: recovered segment gap: got seq %d, want %d", seq, t.acked.Load()+1)
		}
		return t.applySegment(payload)
	case recFinish:
		p := payloadReader{rest: payload}
		total, err := p.uvarint()
		if err != nil {
			return err
		}
		if total != t.acked.Load() {
			return fmt.Errorf("pmcheckd: recovered finish at %d segments but %d applied", total, t.acked.Load())
		}
		_, err = t.finishStream()
		return err
	default:
		return fmt.Errorf("pmcheckd: unknown log record kind %d", kind)
	}
}

// attach makes sc the tenant's active connection, preempting (closing) any
// previous one — the previous client is gone or superseded; it can
// reconnect and resume. Returns the hello-ack to send.
func (t *tenant) attach(sc *serverConn) helloAck {
	t.mu.Lock()
	old := t.conn
	t.conn = sc
	finished := t.report != nil
	t.mu.Unlock()
	if old != nil && old != sc {
		old.close()
	}
	credits := uint64(0)
	if free := cap(t.queue) - len(t.queue); free > 0 {
		credits = uint64(free)
	}
	return helloAck{Acked: t.acked.Load(), Credits: credits, Finished: finished}
}

// detach clears the active connection if sc still holds it.
func (t *tenant) detach(sc *serverConn) {
	t.mu.Lock()
	if t.conn == sc {
		t.conn = nil
	}
	t.mu.Unlock()
}
