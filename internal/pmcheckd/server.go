package pmcheckd

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hawkset/internal/hawkset"
	"hawkset/internal/obs"
	"hawkset/internal/trace"
)

// Config configures a daemon instance.
type Config struct {
	// Dir is the segment-store root: one append-only log per tenant. It is
	// created if missing; existing logs are recovered (replayed, torn
	// tails truncated) before the server accepts connections.
	Dir string
	// Analysis is the hawkset configuration every tenant stream runs
	// under. A client's report is byte-identical to an offline
	// hawkset.Analyze with the same configuration. The Metrics field is
	// ignored: each tenant gets its own registry.
	Analysis hawkset.Config
	// MaxEventsPerTenant is the per-tenant event budget (0 = unlimited).
	// A stream that exceeds it gets ErrBudgetExceeded and is terminally
	// rejected; the daemon and the other tenants are unaffected.
	MaxEventsPerTenant uint64
	// QueueDepth is the per-tenant bounded queue — the credit window: at
	// most this many segments are in flight (received, not yet applied)
	// per tenant, which bounds ingest RSS per tenant regardless of client
	// behavior. Default 8.
	QueueDepth int
	// MaxTenants bounds concurrently known tenants (0 = 64).
	MaxTenants int
	// Metrics, when non-nil, receives daemon-level counters
	// (pmcheckd.conns, pmcheckd.segments, ...). Per-tenant registries are
	// separate; see TenantSnapshots.
	Metrics *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Server is the ingestion daemon. Create with NewServer, run with Serve,
// stop with Drain.
type Server struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenant
	conns   map[*serverConn]struct{}
	ln      net.Listener
	drained bool

	draining chan struct{}
	connWG   sync.WaitGroup
	workerWG sync.WaitGroup

	mConns        *obs.Counter
	mSegments     *obs.Counter
	mEvents       *obs.Counter
	mFinished     *obs.Counter
	mTenantErrors *obs.Counter
	gTenants      *obs.Gauge
}

// NewServer prepares a daemon: it creates the store directory if needed and
// recovers every existing tenant log — replaying the durable segments
// through a fresh analysis stream and truncating torn tails — so that
// clients of a previous (possibly crashed) daemon process resume exactly
// where their last acknowledged segment left off.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("pmcheckd: Config.Dir is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:           cfg,
		tenants:       make(map[string]*tenant),
		conns:         make(map[*serverConn]struct{}),
		draining:      make(chan struct{}),
		mConns:        cfg.Metrics.Counter("pmcheckd.conns"),
		mSegments:     cfg.Metrics.Counter("pmcheckd.segments"),
		mEvents:       cfg.Metrics.Counter("pmcheckd.events"),
		mFinished:     cfg.Metrics.Counter("pmcheckd.streams_finished"),
		mTenantErrors: cfg.Metrics.Counter("pmcheckd.tenant_errors"),
		gTenants:      cfg.Metrics.Gauge("pmcheckd.tenants"),
	}
	if err := s.recoverAll(); err != nil {
		return nil, err
	}
	return s, nil
}

// recoverAll rebuilds every tenant found in the store directory.
func (s *Server) recoverAll() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, logSuffix) {
			continue
		}
		tenantName := strings.TrimSuffix(name, logSuffix)
		if !validTenantName(tenantName) {
			s.logf("skipping store entry with invalid tenant name: %s", name)
			continue
		}
		// The applier is built only after the log header parses, so the
		// tenant carries the durable app/workload metadata before any
		// finish record regenerates its report document.
		var t *tenant
		log, meta, err := openSegLog(filepath.Join(s.cfg.Dir, name), func(meta logMeta) func(byte, []byte) error {
			t = s.newTenant(meta)
			t.replaying = true
			return t.recoverRecord
		})
		if err != nil {
			return fmt.Errorf("pmcheckd: recovering %s: %w", name, err)
		}
		t.replaying = false
		t.log = log
		t.meta = meta
		s.tenants[tenantName] = t
		s.gTenants.Set(int64(len(s.tenants)))
		s.workerWG.Add(1)
		go t.run()
		s.logf("recovered tenant %s: %d segments, %d events, finished=%v",
			tenantName, t.acked.Load(), t.events, t.finishedReport() != nil)
	}
	return nil
}

// Serve accepts connections on ln until Drain closes it. It returns nil on
// a clean drain, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.draining:
				return nil
			default:
				return err
			}
		}
		sc := &serverConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
		s.mu.Lock()
		if s.drained {
			s.mu.Unlock()
			c.Close() //nolint:errcheck // refusing during shutdown
			continue
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.mConns.Inc()
		s.connWG.Add(1)
		go s.handleConn(sc)
	}
}

// Drain is the graceful SIGTERM path: stop accepting, close every
// connection, then let each tenant worker finish applying everything it has
// already received. Every applied segment was fsync'd before its ack, so at
// return every open stream is either finished (report produced) or
// checkpointed (resumable from its log by the next daemon process).
func (s *Server) Drain() error {
	s.mu.Lock()
	if s.drained {
		s.mu.Unlock()
		return nil
	}
	s.drained = true
	close(s.draining)
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	tenants := s.tenantList()
	s.mu.Unlock()

	if ln != nil {
		ln.Close() //nolint:errcheck // shutting down
	}
	for _, sc := range conns {
		sc.close()
	}
	s.connWG.Wait()
	for _, t := range tenants {
		close(t.queue)
	}
	s.workerWG.Wait()
	var firstErr error
	for _, t := range tenants {
		if t.log != nil {
			if err := t.log.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (s *Server) tenantList() []*tenant {
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// TenantNames returns the known tenants, sorted.
func (s *Server) TenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TenantSnapshot returns the named tenant's metrics snapshot (nil when
// unknown): ingest counters plus the hawkset working-set gauges
// (hawkset.replay.open_stores, hawkset.replay.lines) whose flat high-water
// marks are the bounded-RSS acceptance instrument.
func (s *Server) TenantSnapshot(name string) *obs.Snapshot {
	s.mu.Lock()
	t := s.tenants[name]
	s.mu.Unlock()
	if t == nil {
		return nil
	}
	return t.metrics.Snapshot()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// lookupTenant returns (creating if necessary) the tenant for a hello.
func (s *Server) lookupTenant(h hello) (*tenant, error) {
	if !validTenantName(h.Tenant) {
		return nil, fmt.Errorf("pmcheckd: invalid tenant name %q", h.Tenant)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return nil, errors.New("pmcheckd: draining")
	}
	if t, ok := s.tenants[h.Tenant]; ok {
		return t, nil
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, fmt.Errorf("pmcheckd: tenant limit (%d) reached", s.cfg.MaxTenants)
	}
	meta := logMeta{Tenant: h.Tenant, App: h.App, Workload: h.Workload}
	t := s.newTenant(meta)
	log, err := createSegLog(logPath(s.cfg.Dir, h.Tenant), meta)
	if err != nil {
		return nil, err
	}
	t.log = log
	s.tenants[h.Tenant] = t
	s.gTenants.Set(int64(len(s.tenants)))
	s.workerWG.Add(1)
	go t.run()
	s.logf("new tenant %s (app=%s)", h.Tenant, h.App)
	return t, nil
}

// handleConn speaks the protocol with one client: handshake, hello,
// hello-ack, then a stream of segment/finish frames handed to the tenant
// worker. The reader only ever blocks on its own tenant's queue, so a slow
// tenant cannot stall another tenant's connection.
func (s *Server) handleConn(sc *serverConn) {
	defer s.connWG.Done()
	var owner *tenant
	defer func() {
		sc.close()
		if owner != nil {
			owner.detach(sc)
		}
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
	}()

	if err := readHandshake(sc.br); err != nil {
		s.logf("handshake: %v", err)
		return
	}
	kind, payload, err := readFrame(sc.br)
	if err != nil || kind != fHello {
		sc.sendError(errors.New("pmcheckd: expected hello"))
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		sc.sendError(err)
		return
	}
	t, err := s.lookupTenant(h)
	if err != nil {
		sc.sendError(err)
		return
	}
	if err := t.terminalErr(); err != nil {
		sc.sendError(err)
		return
	}
	owner = t
	if err := sc.send(fHelloAck, encodeHelloAck(t.attach(sc))); err != nil {
		return
	}

	for {
		kind, payload, err := readFrame(sc.br)
		if err != nil {
			return // disconnect: the tenant stays resumable
		}
		var it tenantItem
		switch kind {
		case fSegment:
			seq, err := trace.PeekSegmentSeq(payload)
			if err != nil {
				sc.sendError(fmt.Errorf("pmcheckd: segment without sequence number: %w", err))
				return
			}
			it = tenantItem{kind: recSegment, seq: seq, payload: payload, conn: sc}
		case fFinish:
			p := payloadReader{rest: payload}
			total, err := p.uvarint()
			if err != nil {
				sc.sendError(err)
				return
			}
			it = tenantItem{kind: recFinish, seq: total, conn: sc}
		default:
			sc.sendError(fmt.Errorf("pmcheckd: unexpected frame kind %d", kind))
			return
		}
		select {
		case t.queue <- it:
		case <-s.draining:
			sc.sendError(errors.New("pmcheckd: draining"))
			return
		}
	}
}

// serverConn wraps one client connection with a write lock, since the
// tenant worker (acks, reports) and the reader goroutine (protocol errors)
// both write to it.
type serverConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer
}

func (sc *serverConn) send(kind byte, payload []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	return writeFrame(sc.bw, kind, payload)
}

func (sc *serverConn) sendError(err error) {
	sc.send(fError, appendString(nil, err.Error())) //nolint:errcheck // conn is going away
}

func (sc *serverConn) close() {
	sc.c.Close() //nolint:errcheck // close is advisory here
}
