// Package obs is the reproduction's dependency-free observability layer:
// atomic counters, gauges with high-water marks, fixed-bucket duration
// histograms, stage timers, and a registry that snapshots everything in
// deterministic (sorted-name) order.
//
// The layer is strictly side-band. Instrumented code records into it, but
// nothing ever flows back: analysis results, race reports and crash-campaign
// documents are byte-identical whether a registry is attached or not (the
// determinism contract DESIGN.md spells out — no wall-clock value may reach
// a hawkset.Result or a report document; timings live only in snapshots).
//
// Every handle is safe on a nil receiver, and a nil *Registry hands out nil
// handles, so instrumentation points read as unconditional calls:
//
//	r := cfg.Metrics.Counter("pmrt.events") // nil registry -> nil counter
//	r.Inc()                                 // no-op when disabled
//
// Handles are looked up once (at construction of the instrumented component)
// and used on hot paths; the per-event cost with metrics disabled is a nil
// check, and with metrics enabled one atomic add.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level that additionally remembers its high-water
// mark — the retention detector: a bounded gauge whose Max keeps climbing is
// a leak.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(d))
}

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 on a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// BucketBounds are the histogram's fixed upper bounds. Durations above the
// last bound land in an implicit +Inf overflow bucket. Log-decade bounds
// cover everything from a single interned-table probe to a full campaign.
var BucketBounds = [...]time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// Histogram is a fixed-bucket duration histogram with count/sum/min/max.
// Observations are atomic; concurrent shards may observe into one histogram.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	minNS   atomic.Int64 // math.MaxInt64 until the first observation
	maxNS   atomic.Int64
	buckets [len(BucketBounds) + 1]atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minNS.Store(math.MaxInt64)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		m := h.maxNS.Load()
		if ns <= m || h.maxNS.CompareAndSwap(m, ns) {
			break
		}
	}
	for {
		m := h.minNS.Load()
		if ns >= m || h.minNS.CompareAndSwap(m, ns) {
			break
		}
	}
	i := 0
	for i < len(BucketBounds) && d > BucketBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
}

// Time starts a stopwatch; the returned stop function records the elapsed
// duration. Usage: defer h.Time()().
func (h *Histogram) Time() func() {
	if h == nil {
		return func() {}
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Registry names and owns metrics. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is the disabled layer: every lookup
// returns a nil handle whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Stage starts timing one pipeline stage; the returned stop function records
// the elapsed duration into the named histogram:
//
//	stop := cfg.Metrics.Stage("hawkset.stage.analyze")
//	... run the stage ...
//	stop()
//
// On a nil registry the stopwatch never reads the clock.
func (r *Registry) Stage(name string) func() {
	if r == nil {
		return func() {}
	}
	return r.Histogram(name).Time()
}

// sortedKeys returns m's keys in ascending order — the deterministic
// snapshot walk.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
