package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Snapshot is a point-in-time copy of a registry, ordered deterministically:
// each section is sorted by metric name, so two snapshots of identical
// metric states serialize byte-identically.
type Snapshot struct {
	Counters  []CounterSnap  `json:"counters"`
	Gauges    []GaugeSnap    `json:"gauges"`
	Durations []DurationSnap `json:"durations"`
}

// CounterSnap is one counter's snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's snapshot: the current level and the high-water
// mark.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// DurationSnap is one histogram's snapshot. All durations are nanoseconds.
type DurationSnap struct {
	Name    string       `json:"name"`
	Count   uint64       `json:"count"`
	TotalNS int64        `json:"total_ns"`
	MinNS   int64        `json:"min_ns"`
	MaxNS   int64        `json:"max_ns"`
	Buckets []BucketSnap `json:"buckets"`
}

// BucketSnap is one histogram bucket: observations with duration <= LE.
type BucketSnap struct {
	LE    string `json:"le"` // upper bound ("1ms", ..., "+Inf")
	Count uint64 `json:"count"`
}

// Mean returns the average observed duration (0 when empty).
func (d DurationSnap) Mean() time.Duration {
	if d.Count == 0 {
		return 0
	}
	return time.Duration(d.TotalNS / int64(d.Count))
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty (but usable) snapshot. Sections are sorted by name; bucket order is
// fixed — the output is deterministic for a given metric state.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:  []CounterSnap{},
		Gauges:    []GaugeSnap{},
		Durations: []DurationSnap{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value(), Max: g.Max()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		d := DurationSnap{
			Name:    name,
			Count:   h.count.Load(),
			TotalNS: h.sumNS.Load(),
			MinNS:   h.minNS.Load(),
			MaxNS:   h.maxNS.Load(),
		}
		if d.Count == 0 {
			d.MinNS = 0
		}
		for i := range h.buckets {
			le := "+Inf"
			if i < len(BucketBounds) {
				le = BucketBounds[i].String()
			}
			d.Buckets = append(d.Buckets, BucketSnap{LE: le, Count: h.buckets[i].Load()})
		}
		s.Durations = append(s.Durations, d)
	}
	return s
}

// Counter returns the named counter's value, 0 when absent. Lookup
// helpers serve consumers of per-component registries (e.g. pmcheckd's
// per-tenant snapshots) that render selected metrics rather than the whole
// table.
func (s *Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's current level, 0 when absent.
func (s *Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// GaugeMax returns the named gauge's high-water mark, 0 when absent.
func (s *Snapshot) GaugeMax(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Max
		}
	}
	return 0
}

// WriteJSON emits the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteTable emits the snapshot as a human-readable table.
func (s *Snapshot) WriteTable(w io.Writer) error {
	width := 0
	for _, c := range s.Counters {
		width = max(width, len(c.Name))
	}
	for _, g := range s.Gauges {
		width = max(width, len(g.Name))
	}
	for _, d := range s.Durations {
		width = max(width, len(d.Name))
	}
	if len(s.Counters) > 0 {
		if _, err := fmt.Fprintln(w, "counters:"); err != nil {
			return err
		}
		for _, c := range s.Counters {
			if _, err := fmt.Fprintf(w, "  %-*s %d\n", width, c.Name, c.Value); err != nil {
				return err
			}
		}
	}
	if len(s.Gauges) > 0 {
		if _, err := fmt.Fprintln(w, "gauges:"); err != nil {
			return err
		}
		for _, g := range s.Gauges {
			if _, err := fmt.Fprintf(w, "  %-*s %d (high-water %d)\n", width, g.Name, g.Value, g.Max); err != nil {
				return err
			}
		}
	}
	if len(s.Durations) > 0 {
		if _, err := fmt.Fprintln(w, "durations:"); err != nil {
			return err
		}
		for _, d := range s.Durations {
			if _, err := fmt.Fprintf(w, "  %-*s n=%d total=%s mean=%s min=%s max=%s\n",
				width, d.Name, d.Count,
				fmtNS(d.TotalNS), d.Mean().Round(time.Microsecond), fmtNS(d.MinNS), fmtNS(d.MaxNS)); err != nil {
				return err
			}
		}
	}
	return nil
}

func fmtNS(ns int64) string {
	if ns == math.MaxInt64 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}
