package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("same name must return the same counter")
	}
}

func TestGaugeHighWater(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("level")
	g.Add(3)
	g.Add(7) // 10: the high-water mark
	g.Add(-6)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge value = %d, want 4", got)
	}
	if got := g.Max(); got != 10 {
		t.Fatalf("gauge max = %d, want 10", got)
	}
	g.Set(2)
	if got, m := g.Value(), g.Max(); got != 2 || m != 10 {
		t.Fatalf("after Set: value=%d max=%d, want 2/10", got, m)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	h.Observe(500 * time.Nanosecond)  // bucket 0 (<= 1µs)
	h.Observe(5 * time.Millisecond)   // <= 10ms
	h.Observe(2 * time.Minute)        // +Inf overflow
	h.Observe(-time.Second)           // clamped to 0, bucket 0
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	snap := r.Snapshot().Durations[0]
	if snap.MinNS != 0 {
		t.Fatalf("min = %d, want 0 (clamped negative)", snap.MinNS)
	}
	if snap.MaxNS != int64(2*time.Minute) {
		t.Fatalf("max = %d, want %d", snap.MaxNS, int64(2*time.Minute))
	}
	byLE := map[string]uint64{}
	for _, b := range snap.Buckets {
		byLE[b.LE] = b.Count
	}
	if byLE["1µs"] != 2 || byLE["10ms"] != 1 || byLE["+Inf"] != 1 {
		t.Fatalf("bucket counts wrong: %v", byLE)
	}
}

func TestStageTimer(t *testing.T) {
	r := NewRegistry()
	stop := r.Stage("stage.x")
	time.Sleep(time.Millisecond)
	stop()
	h := r.Histogram("stage.x")
	if h.Count() != 1 || h.Sum() < time.Millisecond {
		t.Fatalf("stage timer: count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestNilRegistry: the disabled layer must be callable everywhere.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(1)
	r.Gauge("b").Add(-1)
	r.Histogram("c").Observe(time.Second)
	r.Stage("d")()
	r.Histogram("c").Time()()
	if r.Counter("a").Value() != 0 || r.Gauge("b").Value() != 0 || r.Gauge("b").Max() != 0 ||
		r.Histogram("c").Count() != 0 || r.Histogram("c").Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Durations) != 0 {
		t.Fatalf("nil registry snapshot must be empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotDeterministic: identical metric states serialize to identical
// bytes regardless of registration order.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, n := range order {
			r.Counter("c." + n).Add(7)
			r.Gauge("g." + n).Set(2)
		}
		return r
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	var ab, bb bytes.Buffer
	if err := a.Snapshot().WriteJSON(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if ab.String() != bb.String() {
		t.Fatalf("snapshot order depends on registration order:\n%s\nvs\n%s", ab.String(), bb.String())
	}
	var back Snapshot
	if err := json.Unmarshal(ab.Bytes(), &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(back.Counters) != 3 || back.Counters[0].Name != "c.alpha" {
		t.Fatalf("counters not sorted: %+v", back.Counters)
	}
}

func TestWriteTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("pmrt.events").Add(42)
	r.Gauge("hawkset.replay.open_stores").Set(3)
	r.Histogram("hawkset.stage.analyze").Observe(12 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counters:", "pmrt.events", "42", "high-water", "hawkset.stage.analyze", "n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentObservers: shards observe into shared metrics without a
// registry lock; totals must add up (atomicity smoke, run with -race).
func TestConcurrentObservers(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("lvl")
	h := r.Histogram("d")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d", c.Value(), h.Count())
	}
	if g.Value() != 0 || g.Max() < 1 || g.Max() > 8 {
		t.Fatalf("gauge value=%d max=%d", g.Value(), g.Max())
	}
}
