// Package pmlint is a static PM-misuse analyzer for applications written
// against the instrumented runtime API (internal/pmrt). It is the static
// complement of the dynamic lockset analysis (internal/hawkset): because
// every PM access, flush, fence and lock operation in the simulated
// applications goes through the narrow pmrt.Ctx surface, the *source code*
// itself is checkable for the misuse classes the paper hunts dynamically —
// unpersisted stores, flushes never fenced, PM accesses outside any critical
// section — plus one reproduction-specific class: apps bypassing the
// cooperative scheduler with native Go concurrency, which would silently
// break deterministic replay.
//
// The analyzer is stdlib-only and built on the shared static IR
// (internal/pmlint/cfgir): loader, per-function CFGs, and interprocedural
// fence/persist/store summaries. pmopt (the flush/fence redundancy
// analyzer) consumes the same IR, so the two tools' opposite verdicts —
// "this store is never persisted" vs "this persist is already covered" —
// rest on one model of the program.
package pmlint

import (
	"fmt"
	"go/token"
	"sort"

	"hawkset/internal/pmlint/cfgir"
)

// Loader, Package and the pmrt path re-export the shared IR's loader so
// existing consumers (cmd/pmlint, tests, pmopt bootstrap) keep one import.
type (
	// Loader loads and type-checks packages of a single module from source.
	Loader = cfgir.Loader
	// Package is one loaded, type-checked package.
	Package = cfgir.Package
)

// PmrtPath is the import path of the instrumented runtime package whose API
// the checks key on.
const PmrtPath = cfgir.PmrtPath

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) { return cfgir.NewLoader(dir) }

// Config configures an analysis run.
type Config struct {
	// AppsPrefix is the package-path prefix under which the
	// scheduler-bypass check applies (applications must use pmrt
	// primitives, never native Go concurrency, or deterministic replay
	// breaks). Default: hawkset/internal/apps.
	AppsPrefix string
	// ExcludePkgs lists import paths the PM-misuse checks (missing-persist,
	// flush-no-fence, static-lockset) skip. The pmrt runtime itself is
	// always excluded: it implements the primitives rather than using them.
	ExcludePkgs []string
}

// Finding is one analyzer diagnostic. The JSON field set is part of the CI
// interface and covered by a format-stability test; do not rename fields.
type Finding struct {
	File    string `json:"file"` // module-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the stable machine-readable line format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// Key is the line-number-free form used for baseline matching, so recorded
// findings survive unrelated edits that shift line numbers.
func (f Finding) Key() string {
	return fmt.Sprintf("%s: [%s] %s", f.File, f.Check, f.Message)
}

// sortFindings orders findings deterministically.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// analysis is the whole-run state: the shared IR plus pmlint's findings.
type analysis struct {
	cfg      Config
	ir       *cfgir.IR
	findings []Finding
}

// Run loads the packages named by patterns (resolved against the module
// containing dir) and runs every check, returning sorted findings.
func Run(dir string, patterns []string, cfg Config) ([]Finding, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		p, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return Analyze(l, pkgs, cfg)
}

// Analyze runs every check over the given loaded packages.
func Analyze(l *Loader, pkgs []*Package, cfg Config) ([]Finding, error) {
	if cfg.AppsPrefix == "" {
		cfg.AppsPrefix = "hawkset/internal/apps"
	}
	a := &analysis{
		cfg: cfg,
		ir:  cfgir.Build(l, pkgs, cfgir.Options{ExcludePkgs: cfg.ExcludePkgs}),
	}
	a.checkPersist()  // missing-persist + flush-no-fence (shared summaries)
	a.checkLocksets() // lock-imbalance + empty-lockset
	a.checkBypass()   // scheduler-bypass
	sortFindings(a.findings)
	return dedupe(a.findings), nil
}

// dedupe removes identical findings (a deferred op is replayed at every
// function exit, so one source op can occupy several CFG nodes).
func dedupe(fs []Finding) []Finding {
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

func (a *analysis) report(pos token.Pos, check, format string, args ...any) {
	file, line, col := a.ir.PosOf(pos)
	a.findings = append(a.findings, Finding{
		File: file, Line: line, Col: col,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}
