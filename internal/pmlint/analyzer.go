package pmlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Config configures an analysis run.
type Config struct {
	// AppsPrefix is the package-path prefix under which the
	// scheduler-bypass check applies (applications must use pmrt
	// primitives, never native Go concurrency, or deterministic replay
	// breaks). Default: hawkset/internal/apps.
	AppsPrefix string
	// ExcludePkgs lists import paths the PM-misuse checks (missing-persist,
	// flush-no-fence, static-lockset) skip. The pmrt runtime itself is
	// always excluded: it implements the primitives rather than using them.
	ExcludePkgs []string
}

// Finding is one analyzer diagnostic. The JSON field set is part of the CI
// interface and covered by a format-stability test; do not rename fields.
type Finding struct {
	File    string `json:"file"` // module-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the stable machine-readable line format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// Key is the line-number-free form used for baseline matching, so recorded
// findings survive unrelated edits that shift line numbers.
func (f Finding) Key() string {
	return fmt.Sprintf("%s: [%s] %s", f.File, f.Check, f.Message)
}

// sortFindings orders findings deterministically.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// opKind classifies a recognized pmrt.Ctx operation (or a call into another
// analyzed function).
type opKind int

const (
	opNone    opKind = iota
	opStore          // Store, Store8, Store4, Store1 — cached store, needs flush+fence
	opNTStore        // NTStore8 — bypasses cache, needs fence only
	opCAS            // CAS8 — lock-free store on success, needs flush+fence
	opZero           // Zero — untraced cached store, needs flush+fence
	opLoad           // Load, Load8, Load4, Load1
	opFlush          // Flush
	opFence          // Fence
	opPersist        // Persist — flush every line + fence
	opLock           // Lock, RLock, WLock, SpinLock
	opUnlock         // Unlock, RUnlock, WUnlock, SpinUnlock
	opCallFn         // call to another analyzed function
	opPanic          // panic(...) — path terminates abnormally
)

// isStoreKind reports whether k writes PM.
func isStoreKind(k opKind) bool {
	return k == opStore || k == opNTStore || k == opCAS || k == opZero
}

// ctxMethodOps maps pmrt.Ctx method names to op kinds. TryLock is absent on
// purpose: its acquisition is conditional on the return value, which a
// path-insensitive lockset would model wrong in both directions.
var ctxMethodOps = map[string]opKind{
	"Store": opStore, "Store8": opStore, "Store4": opStore, "Store1": opStore,
	"NTStore8": opNTStore,
	"CAS8":     opCAS,
	"Zero":     opZero,
	"Load":     opLoad, "Load8": opLoad, "Load4": opLoad, "Load1": opLoad,
	"Flush":   opFlush,
	"Fence":   opFence,
	"Persist": opPersist,
	"Lock":    opLock, "RLock": opLock, "WLock": opLock, "SpinLock": opLock,
	"Unlock": opUnlock, "RUnlock": opUnlock, "WUnlock": opUnlock, "SpinUnlock": opUnlock,
}

// opCall is one recognized operation occurrence, a node payload in the CFG.
type opCall struct {
	kind opKind
	call *ast.CallExpr
	pos  token.Pos
	// addrBase is the normalized base of the address expression (stores,
	// loads, flush, persist); lockExpr the normalized lock expression
	// (lock/unlock).
	addrBase string
	// addrAlts holds the argument bases when the address expression is an
	// address-computing helper call (keyAddr(buf, i) → {buf, i}): a persist
	// of the underlying object (Persist(buf, n)) covers the store.
	addrAlts []string
	lockExpr string
	// callee and args are set for opCallFn: the target funcInfo and the
	// normalized base of every value argument (aligned with callee params).
	callee *funcInfo
	args   []string
	// recvIsRecv marks a method call whose receiver is the enclosing
	// method's own receiver, enabling $recv-rooted summary translation.
	recvIsRecv bool
}

// funcInfo is the per-function analysis unit: a declared function, method,
// or function literal with its CFG and computed summaries.
type funcInfo struct {
	pkg  *Package
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
	name string // diagnostic name, e.g. (*Index).putKey or func@wipe.go:17
	recv string // receiver identifier name ("" for plain funcs/lits)
	// recvType is the receiver's named type ("" otherwise); used to group
	// $recv-rooted accesses across methods of the same type.
	recvType string
	params   []string // parameter identifier names, in order
	// isClosure marks function literals: their bodies share the enclosing
	// function's scope, so summary bases rooted at captured variables
	// translate verbatim to (same-scope) call sites.
	isClosure bool

	cfg     *cfgGraph
	callers []*opCall // call sites in other analyzed functions

	// Summaries (computed to fixpoint across the call graph). Bases are
	// normalized expressions rooted at a parameter name or at $recv.
	fences        bool            // some path performs a fence (Fence or Persist)
	leaksFlush    bool            // some path carries a flush to exit with no fence
	persistsBases map[string]bool // bases persisted (with fence) on some path
	storesBases   map[string]bool // bases stored to but never persisted locally
	lockBlowup    bool            // lockset state exceeded the cap; lockset checks skipped
}

// analysis is the whole-run state.
type analysis struct {
	cfg   Config
	l     *Loader
	pkgs  []*Package
	funcs []*funcInfo
	// byObj resolves a types.Func (or the types.Var a closure is bound to)
	// to its analyzed funcInfo for call linking.
	byObj    map[types.Object]*funcInfo
	litInfo  map[*ast.FuncLit]*funcInfo
	findings []Finding
}

// Run loads the packages named by patterns (resolved against the module
// containing dir) and runs every check, returning sorted findings.
func Run(dir string, patterns []string, cfg Config) ([]Finding, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		p, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return Analyze(l, pkgs, cfg)
}

// Analyze runs every check over the given loaded packages.
func Analyze(l *Loader, pkgs []*Package, cfg Config) ([]Finding, error) {
	if cfg.AppsPrefix == "" {
		cfg.AppsPrefix = "hawkset/internal/apps"
	}
	a := &analysis{
		cfg: cfg, l: l, pkgs: pkgs,
		byObj:   make(map[types.Object]*funcInfo),
		litInfo: make(map[*ast.FuncLit]*funcInfo),
	}
	a.collectFuncs()
	a.linkCalls()
	a.checkPersist()  // missing-persist + flush-no-fence (shared summaries)
	a.checkLocksets() // lock-imbalance + empty-lockset
	a.checkBypass()   // scheduler-bypass
	sortFindings(a.findings)
	return dedupe(a.findings), nil
}

// dedupe removes identical findings (a deferred op is replayed at every
// function exit, so one source op can occupy several CFG nodes).
func dedupe(fs []Finding) []Finding {
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// excluded reports whether the PM-misuse checks skip pkg.
func (a *analysis) excluded(pkg *Package) bool {
	if pkg.Path == PmrtPath {
		return true
	}
	for _, p := range a.cfg.ExcludePkgs {
		if pkg.Path == p {
			return true
		}
	}
	return false
}

// posOf converts a token.Pos to a module-relative finding location.
func (a *analysis) posOf(pos token.Pos) (string, int, int) {
	p := a.l.Fset.Position(pos)
	rel, err := filepath.Rel(a.l.ModuleDir, p.Filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		rel = p.Filename
	}
	return filepath.ToSlash(rel), p.Line, p.Column
}

func (a *analysis) report(pos token.Pos, check, format string, args ...any) {
	file, line, col := a.posOf(pos)
	a.findings = append(a.findings, Finding{
		File: file, Line: line, Col: col,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// collectFuncs builds a funcInfo (with CFG) for every function declaration
// and function literal in the analyzed packages.
func (a *analysis) collectFuncs() {
	for _, pkg := range a.pkgs {
		if a.excluded(pkg) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fi := a.newFuncInfo(pkg, fd, fd.Body)
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					a.byObj[obj] = fi
				}
				// Function literals inside the declaration become their own
				// analysis units (e.g. Spawn bodies are the spawned thread's
				// code, not part of the spawning function's control flow).
				a.collectLits(pkg, fd.Body)
			}
		}
	}
	// Bind `name := func(...){...}` closures to their variable so direct
	// calls through the name resolve like ordinary function calls.
	for _, pkg := range a.pkgs {
		if a.excluded(pkg) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i := range as.Rhs {
					lit, ok := as.Rhs[i].(*ast.FuncLit)
					if !ok {
						continue
					}
					id, ok := as.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					fi := a.litInfo[lit]
					if fi == nil {
						continue
					}
					if obj := pkg.Info.Defs[id]; obj != nil {
						a.byObj[obj] = fi
					} else if obj := pkg.Info.Uses[id]; obj != nil {
						a.byObj[obj] = fi
					}
				}
				return true
			})
		}
	}
	// CFGs are built after all funcInfos exist so call linking can resolve
	// forward references.
	for _, fi := range a.funcs {
		fi.cfg = a.buildCFG(fi)
	}
}

func (a *analysis) collectLits(pkg *Package, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			a.newFuncInfo(pkg, lit, lit.Body)
			// Nested literals are found by the recursive Inspect of the
			// literal's own body during this walk; don't double-visit.
		}
		return true
	})
}

func (a *analysis) newFuncInfo(pkg *Package, node ast.Node, body *ast.BlockStmt) *funcInfo {
	fi := &funcInfo{
		pkg:           pkg,
		node:          node,
		body:          body,
		persistsBases: make(map[string]bool),
		storesBases:   make(map[string]bool),
	}
	switch n := node.(type) {
	case *ast.FuncDecl:
		fi.name = n.Name.Name
		if n.Recv != nil && len(n.Recv.List) > 0 {
			r := n.Recv.List[0]
			if len(r.Names) > 0 {
				fi.recv = r.Names[0].Name
			}
			fi.recvType = recvTypeName(r.Type)
			fi.name = "(" + typeExprString(r.Type) + ")." + n.Name.Name
		}
		fi.params = paramNames(n.Type)
	case *ast.FuncLit:
		file, line, _ := a.posOf(n.Pos())
		fi.name = fmt.Sprintf("func@%s:%d", filepath.Base(file), line)
		fi.params = paramNames(n.Type)
		fi.isClosure = true
		a.litInfo[n] = fi
	}
	a.funcs = append(a.funcs, fi)
	return fi
}

func paramNames(ft *ast.FuncType) []string {
	var out []string
	if ft.Params == nil {
		return out
	}
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			out = append(out, "_")
			continue
		}
		for _, n := range f.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

func recvTypeName(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	}
	return ""
}

func typeExprString(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return "*" + typeExprString(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return typeExprString(e.X)
	}
	return "?"
}

// linkCalls records, for every opCallFn node, the callee's funcInfo and
// fills the callee's callers list.
func (a *analysis) linkCalls() {
	for _, fi := range a.funcs {
		for _, n := range fi.cfg.nodes {
			if n.op != nil && n.op.kind == opCallFn && n.op.callee != nil {
				n.op.callee.callers = append(n.op.callee.callers, n.op)
			}
		}
	}
}

// classify recognizes a call expression inside fi: a pmrt.Ctx operation, a
// call to another analyzed function, or panic. Returns nil for everything
// else.
func (a *analysis) classify(fi *funcInfo, call *ast.CallExpr) *opCall {
	info := fi.pkg.Info
	// panic(...) terminates the path.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return &opCall{kind: opPanic, call: call, pos: call.Pos()}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		// Package-qualified calls (pkg.Fn) are plain uses, not selections.
		if _, isSel := info.Selections[sel]; !isSel {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
				if callee, ok := a.byObj[fn]; ok {
					oc := &opCall{kind: opCallFn, call: call, pos: call.Pos(), callee: callee}
					for _, arg := range call.Args {
						oc.args = append(oc.args, fi.normBase(arg))
					}
					return oc
				}
			}
		}
		if s, ok := info.Selections[sel]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				if k, isOp := a.ctxOp(fn, sel.Sel.Name); isOp {
					oc := &opCall{kind: k, call: call, pos: call.Pos()}
					switch k {
					case opStore, opNTStore, opCAS, opZero, opLoad, opFlush, opPersist:
						if len(call.Args) > 0 {
							oc.addrBase = fi.normBase(call.Args[0])
							if inner, ok := astUnparen(baseExpr(call.Args[0])).(*ast.CallExpr); ok {
								for _, arg := range inner.Args {
									if b := fi.normBase(arg); b != "" {
										oc.addrAlts = append(oc.addrAlts, b)
									}
								}
							}
						}
					case opLock, opUnlock:
						if len(call.Args) > 0 {
							oc.lockExpr = fi.normExpr(call.Args[0])
						}
					}
					return oc
				}
				if callee, ok := a.byObj[fn]; ok {
					oc := &opCall{kind: opCallFn, call: call, pos: call.Pos(), callee: callee}
					for _, arg := range call.Args {
						oc.args = append(oc.args, fi.normBase(arg))
					}
					if id, ok := astUnparen(sel.X).(*ast.Ident); ok && fi.recv != "" && id.Name == fi.recv {
						oc.recvIsRecv = true
					}
					return oc
				}
			}
		}
	}
	if id, ok := astUnparen(call.Fun).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			if callee, ok := a.byObj[obj]; ok {
				oc := &opCall{kind: opCallFn, call: call, pos: call.Pos(), callee: callee}
				for _, arg := range call.Args {
					oc.args = append(oc.args, fi.normBase(arg))
				}
				return oc
			}
		}
	}
	return nil
}

// ctxOp reports whether fn is a pmrt.Ctx operation method.
func (a *analysis) ctxOp(fn *types.Func, name string) (opKind, bool) {
	k, ok := ctxMethodOps[name]
	if !ok {
		return opNone, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return opNone, false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return opNone, false
	}
	if named.Obj().Pkg().Path() != PmrtPath || named.Obj().Name() != "Ctx" {
		return opNone, false
	}
	return k, true
}

func astUnparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// --- expression normalization -------------------------------------------

// normExpr renders e with the enclosing method's receiver identifier
// replaced by $recv, giving a spelling that is comparable across methods of
// the same type.
func (fi *funcInfo) normExpr(e ast.Expr) string {
	var b strings.Builder
	fi.render(&b, e)
	return b.String()
}

// normBase renders the base of an address expression: parentheses stripped
// and trailing "+ offset" / "- offset" arithmetic dropped, so addr, addr+8
// and addr+hdr*2 all normalize to addr. Heuristic by design — the analyzer
// works at the granularity the dynamic tool resolves with real addresses.
func (fi *funcInfo) normBase(e ast.Expr) string {
	return fi.normExpr(baseExpr(e))
}

func baseExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.BinaryExpr:
			if x.Op == token.ADD || x.Op == token.SUB {
				e = x.X
				continue
			}
			return e
		default:
			return e
		}
	}
}

func (fi *funcInfo) render(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		if fi.recv != "" && x.Name == fi.recv {
			b.WriteString("$recv")
		} else {
			b.WriteString(x.Name)
		}
	case *ast.SelectorExpr:
		fi.render(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		fi.render(b, x.X)
		b.WriteByte('[')
		fi.render(b, x.Index)
		b.WriteByte(']')
	case *ast.ParenExpr:
		fi.render(b, x.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		fi.render(b, x.X)
	case *ast.UnaryExpr:
		b.WriteString(x.Op.String())
		fi.render(b, x.X)
	case *ast.BinaryExpr:
		fi.render(b, x.X)
		b.WriteString(x.Op.String())
		fi.render(b, x.Y)
	case *ast.BasicLit:
		b.WriteString(x.Value)
	case *ast.CallExpr:
		fi.render(b, x.Fun)
		b.WriteByte('(')
		for i, arg := range x.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			fi.render(b, arg)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}

// rootIdent returns the leading identifier of a normalized base ("$recv" of
// "$recv.segs", "addr" of "addr", "" when the base is not identifier-rooted).
func rootIdent(base string) string {
	for i := 0; i < len(base); i++ {
		c := base[i]
		if c == '.' || c == '[' || c == '(' || c == '+' || c == '-' || c == '*' {
			return base[:i]
		}
	}
	return base
}

// paramIndex returns the index of name in params, or -1.
func paramIndex(params []string, name string) int {
	for i, p := range params {
		if p == name {
			return i
		}
	}
	return -1
}

// translateBase maps a callee-summary base to the caller's spelling at a
// given call site: parameter-rooted bases substitute the corresponding
// argument's base; $recv-rooted bases carry over verbatim when the call's
// receiver is the caller's own receiver; closure bases rooted at captured
// variables carry over verbatim (the call site shares the defining scope).
// Returns "" when untranslatable.
func translateBase(site *opCall, callee *funcInfo, base string) string {
	root := rootIdent(base)
	if i := paramIndex(callee.params, root); i >= 0 {
		if i >= len(site.args) || site.args[i] == "" {
			return ""
		}
		return site.args[i] + base[len(root):]
	}
	if root == "$recv" {
		if site.recvIsRecv {
			return base
		}
		return ""
	}
	if callee.isClosure {
		return base
	}
	return ""
}
