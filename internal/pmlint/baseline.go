package pmlint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Baseline support: a committed file of known findings so CI fails only on
// NEW findings. Entries are the line-number-free Finding.Key form
// ("file: [check] message"), which survives unrelated edits that shift line
// numbers; '#' starts a comment and blank lines are ignored. The intended
// workflow mirrors every mature linter's ratchet: triage a finding, either
// fix it or record it with a comment explaining why it is intentional (the
// application suite deliberately embeds the paper's Table 2 bugs).

// Baseline is a parsed baseline file.
type Baseline struct {
	entries map[string]int // key -> recorded count
}

// ReadBaseline parses the baseline at path. A missing file yields an empty
// baseline (first-run convenience), not an error.
func ReadBaseline(path string) (*Baseline, error) {
	b := &Baseline{entries: make(map[string]int)}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.entries[line]++
	}
	return b, sc.Err()
}

// Filter splits findings into new (not in the baseline) and suppressed.
// Multiple findings sharing a key are all suppressed by one entry: the key
// already pins file, check and message, so duplicates differ only by line.
func (b *Baseline) Filter(fs []Finding) (newFindings, suppressed []Finding) {
	for _, f := range fs {
		if _, ok := b.entries[f.Key()]; ok {
			suppressed = append(suppressed, f)
		} else {
			newFindings = append(newFindings, f)
		}
	}
	return newFindings, suppressed
}

// Unused returns baseline entries that matched no finding — stale entries
// worth pruning (reported as information, never an error: a fixed finding
// must not break CI).
func (b *Baseline) Unused(fs []Finding) []string {
	used := make(map[string]bool)
	for _, f := range fs {
		used[f.Key()] = true
	}
	var out []string
	for k := range b.entries {
		if !used[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// WriteBaseline writes findings as a fresh baseline file. Hand-written
// comments do not survive regeneration; the header says so.
func WriteBaseline(w io.Writer, fs []Finding) error {
	if _, err := fmt.Fprintf(w, "# pmlint baseline — known findings; CI fails only on findings not listed here.\n"+
		"# Format: file: [check] message   (line numbers omitted so entries survive edits)\n"+
		"# Regenerate with: go run ./cmd/pmlint -write-baseline <path> ./...\n"); err != nil {
		return err
	}
	seen := make(map[string]bool)
	keys := make([]string, 0, len(fs))
	for _, f := range fs {
		k := f.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintln(w, k); err != nil {
			return err
		}
	}
	return nil
}
