package pmlint

// Persistence checks: missing-persist and flush-no-fence.
//
// Both are intraprocedural path walks over the CFG with interprocedural
// summaries so helper functions that persist (or flush, or fence) on a
// caller's behalf are recognized. The reporting rule is deliberately the
// low-false-positive direction of each property:
//
//   - missing-persist flags a store only when NO path from it reaches a
//     covering Flush+Fence or Persist — a store that is persisted on some
//     path (e.g. the Fixed variant's `if fixed { Persist }` repair arm) is
//     not flagged, mirroring how the dynamic tool only sees the executed
//     path.
//   - flush-no-fence flags a flush when SOME path from it reaches function
//     exit with no fence: the flush's snapshot then never enters the
//     persistent domain, which is always a latent bug (or dead code).
//
// Stores whose address is rooted at a parameter or the receiver and that
// have analyzed callers are not reported locally; they propagate to call
// sites as summary events ("this call stores to arg #i / $recv.f without
// persisting it") and are re-checked there — the helper-stores /
// caller-persists split every app in internal/apps uses.

// checkPersist runs both persistence checks.
func (a *analysis) checkPersist() {
	// Phase A: fence/persist summaries to fixpoint. All summary bits grow
	// monotonically, so iteration terminates.
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcs {
			if a.updatePersistSummary(fi) {
				changed = true
			}
		}
	}
	// Phase B: unpersisted-store summaries to fixpoint (monotone: a store
	// event propagates upward as storesBases entries).
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcs {
			if a.updateStoreSummary(fi) {
				changed = true
			}
		}
	}
	// Phase C: leaked-flush summaries to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcs {
			leaks := false
			for _, ev := range a.flushEvents(fi) {
				if a.unfencedPathExists(fi, ev.node) {
					leaks = true
					break
				}
			}
			if leaks && !fi.leaksFlush {
				fi.leaksFlush = true
				changed = true
			}
		}
	}
	// Phase D: reporting.
	for _, fi := range a.funcs {
		a.reportPersist(fi)
	}
}

// isFenceEvent reports whether node n completes pending flushes: a Fence, a
// Persist (which always fences), or a call to a function that fences on
// some path.
func isFenceEvent(n *cfgNode) bool {
	if n.op == nil {
		return false
	}
	switch n.op.kind {
	case opFence, opPersist:
		return true
	case opCallFn:
		return n.op.callee.fences
	}
	return false
}

// updatePersistSummary recomputes fences and persistsBases for fi; reports
// whether anything changed.
func (a *analysis) updatePersistSummary(fi *funcInfo) bool {
	changed := false
	for _, n := range fi.cfg.nodes {
		if n.op == nil {
			continue
		}
		switch n.op.kind {
		case opFence, opPersist:
			if !fi.fences {
				fi.fences = true
				changed = true
			}
		case opCallFn:
			if n.op.callee.fences && !fi.fences {
				fi.fences = true
				changed = true
			}
		}
	}
	// A base is persisted when a Persist covers it, when a Flush covers it
	// and a fence event is reachable from the flush, or when a callee's
	// summary says so (translated to this function's spelling).
	record := func(base string) {
		if base == "" {
			return
		}
		root := rootIdent(base)
		// Param- and receiver-rooted bases are useful summaries; closures
		// additionally export captured-variable bases (same-scope callers).
		if root != "$recv" && paramIndex(fi.params, root) < 0 && !fi.isClosure {
			return
		}
		if !fi.persistsBases[base] {
			fi.persistsBases[base] = true
			changed = true
		}
	}
	for _, n := range fi.cfg.nodes {
		if n.op == nil {
			continue
		}
		switch n.op.kind {
		case opPersist:
			record(n.op.addrBase)
		case opFlush:
			if a.fenceReachable(fi, n) {
				record(n.op.addrBase)
			}
		case opCallFn:
			for base := range n.op.callee.persistsBases {
				record(translateBase(n.op, n.op.callee, base))
			}
		}
	}
	return changed
}

// fenceReachable reports whether a fence event is reachable from n.
func (a *analysis) fenceReachable(fi *funcInfo, n *cfgNode) bool {
	seen := make([]bool, len(fi.cfg.nodes))
	stack := append([]*cfgNode(nil), n.succs...)
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[m.idx] {
			continue
		}
		seen[m.idx] = true
		if isFenceEvent(m) {
			return true
		}
		stack = append(stack, m.succs...)
	}
	return false
}

// storeEvent is a PM store occurrence in fi: direct, or propagated from a
// callee whose summary records an unpersisted store to a translatable base.
type storeEvent struct {
	node *cfgNode
	// bases holds the primary address base first, then the alternate bases
	// (helper-call arguments) a covering persist may be spelled with.
	bases []string
	// needFlush is false for NTStore8 (cache-bypassing; fence suffices).
	needFlush bool
	// via names the callee chain for propagated events ("" for direct).
	via string
}

func (a *analysis) storeEvents(fi *funcInfo) []storeEvent {
	var out []storeEvent
	for _, n := range fi.cfg.nodes {
		if n.op == nil {
			continue
		}
		switch {
		case isStoreKind(n.op.kind):
			bases := append([]string{n.op.addrBase}, n.op.addrAlts...)
			out = append(out, storeEvent{node: n, bases: bases, needFlush: n.op.kind != opNTStore})
		case n.op.kind == opCallFn:
			for base := range n.op.callee.storesBases {
				if t := translateBase(n.op, n.op.callee, base); t != "" {
					out = append(out, storeEvent{node: n, bases: []string{t}, needFlush: true, via: n.op.callee.name})
				}
			}
		}
	}
	return out
}

// flushEvent is a Flush occurrence: direct, or a call to a function whose
// summary says it can leave a flush pending at exit.
type flushEvent struct {
	node *cfgNode
	via  string
}

func (a *analysis) flushEvents(fi *funcInfo) []flushEvent {
	var out []flushEvent
	for _, n := range fi.cfg.nodes {
		if n.op == nil {
			continue
		}
		switch n.op.kind {
		case opFlush:
			out = append(out, flushEvent{node: n})
		case opCallFn:
			if n.op.callee.leaksFlush {
				out = append(out, flushEvent{node: n, via: n.op.callee.name})
			}
		}
	}
	return out
}

// persistReachable reports whether, starting after the store at n, some
// path performs a covering persist: Persist of one of the store's bases, a
// Flush of one followed by a fence, or a callee whose summary persists one.
func (a *analysis) persistReachable(fi *funcInfo, n *cfgNode, bases []string, needFlush bool) bool {
	match := func(b string) bool {
		if b == "" {
			return false
		}
		for _, sb := range bases {
			if sb == b {
				return true
			}
		}
		return false
	}
	type state struct {
		n       *cfgNode
		flushed bool
	}
	seen := make(map[state]bool)
	var stack []state
	for _, s := range n.succs {
		stack = append(stack, state{s, !needFlush})
	}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[st] {
			continue
		}
		seen[st] = true
		m, flushed := st.n, st.flushed
		if m.op != nil {
			switch m.op.kind {
			case opPersist:
				if match(m.op.addrBase) {
					return true
				}
				if flushed {
					return true // Persist fences, completing the earlier flush
				}
			case opFlush:
				if match(m.op.addrBase) {
					flushed = true
				}
			case opFence:
				if flushed {
					return true
				}
			case opCallFn:
				for cb := range m.op.callee.persistsBases {
					if match(translateBase(m.op, m.op.callee, cb)) {
						return true
					}
				}
				if flushed && m.op.callee.fences {
					return true
				}
			}
		}
		for _, s := range m.succs {
			stack = append(stack, state{s, flushed})
		}
	}
	return false
}

// updateStoreSummary records fi's unpersisted stores to param-/recv-rooted
// bases when fi has analyzed callers (so call sites re-check them).
func (a *analysis) updateStoreSummary(fi *funcInfo) bool {
	if len(fi.callers) == 0 {
		return false
	}
	changed := false
	for _, ev := range a.storeEvents(fi) {
		if a.persistReachable(fi, ev.node, ev.bases, ev.needFlush) {
			continue
		}
		// Only the primary base propagates; helper-call addresses cannot be
		// retargeted to a caller expression precisely.
		root := rootIdent(ev.bases[0])
		if root != "$recv" && paramIndex(fi.params, root) < 0 && !fi.isClosure {
			continue
		}
		if !fi.storesBases[ev.bases[0]] {
			fi.storesBases[ev.bases[0]] = true
			changed = true
		}
	}
	return changed
}

// reportPersist emits the findings for fi: unpersisted stores that cannot be
// attributed to a caller, and flushes with a fence-free path to exit.
func (a *analysis) reportPersist(fi *funcInfo) {
	hasCallers := len(fi.callers) > 0
	for _, ev := range a.storeEvents(fi) {
		if a.persistReachable(fi, ev.node, ev.bases, ev.needFlush) {
			continue
		}
		// Stores whose address is rooted at a parameter or the receiver (in
		// any spelling) belong to the helper-stores/caller-persists idiom:
		// call sites re-check them via the summary, so functions with
		// analyzed callers stay silent here.
		if hasCallers {
			attributable := fi.isClosure
			for _, b := range ev.bases {
				if r := rootIdent(b); r == "$recv" || paramIndex(fi.params, r) >= 0 {
					attributable = true
					break
				}
			}
			if attributable {
				continue
			}
		}
		what := "store"
		if ev.via != "" {
			what = "store via " + ev.via
		}
		a.report(ev.node.op.pos, "missing-persist",
			"%s to %s in %s has no reachable flush+fence or persist before function exit",
			what, ev.bases[0], fi.name)
	}
	if hasCallers {
		return // leaked flushes were propagated to call sites
	}
	for _, ev := range a.flushEvents(fi) {
		if !a.unfencedPathExists(fi, ev.node) {
			continue
		}
		what := "flush"
		if ev.via != "" {
			what = "flush via " + ev.via
		}
		a.report(ev.node.op.pos, "flush-no-fence",
			"%s in %s can reach function exit with no following fence",
			what, fi.name)
	}
}

// unfencedPathExists reports whether some path from n reaches function exit
// without crossing a fence event.
func (a *analysis) unfencedPathExists(fi *funcInfo, n *cfgNode) bool {
	seen := make([]bool, len(fi.cfg.nodes))
	stack := append([]*cfgNode(nil), n.succs...)
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[m.idx] {
			continue
		}
		seen[m.idx] = true
		if isFenceEvent(m) {
			continue // this path is fenced; stop exploring it
		}
		if m == fi.cfg.exit {
			return true
		}
		stack = append(stack, m.succs...)
	}
	return false
}
