package pmlint

// Persistence checks: missing-persist and flush-no-fence.
//
// Both are intraprocedural path walks over the shared IR's CFGs with
// interprocedural summaries (cfgir.ComputeSummaries) so helper functions
// that persist (or flush, or fence) on a caller's behalf are recognized.
// The reporting rule is deliberately the low-false-positive direction of
// each property:
//
//   - missing-persist flags a store only when NO path from it reaches a
//     covering Flush+Fence or Persist — a store that is persisted on some
//     path (e.g. the Fixed variant's `if fixed { Persist }` repair arm) is
//     not flagged, mirroring how the dynamic tool only sees the executed
//     path.
//   - flush-no-fence flags a flush when SOME path from it reaches function
//     exit with no fence: the flush's snapshot then never enters the
//     persistent domain, which is always a latent bug (or dead code).
//
// Stores whose address is rooted at a parameter or the receiver and that
// have analyzed callers are not reported locally; they propagate to call
// sites as summary events ("this call stores to arg #i / $recv.f without
// persisting it") and are re-checked there — the helper-stores /
// caller-persists split every app in internal/apps uses.

import "hawkset/internal/pmlint/cfgir"

// checkPersist computes the shared summaries and runs both persistence
// checks' reporting passes.
func (a *analysis) checkPersist() {
	a.ir.ComputeSummaries()
	for _, fi := range a.ir.Funcs {
		a.reportPersist(fi)
	}
}

// reportPersist emits the findings for fi: unpersisted stores that cannot be
// attributed to a caller, and flushes with a fence-free path to exit.
func (a *analysis) reportPersist(fi *cfgir.FuncInfo) {
	hasCallers := len(fi.Callers) > 0
	for _, ev := range a.ir.StoreEvents(fi) {
		if a.ir.PersistReachable(fi, ev.Node, ev.Bases, ev.NeedFlush) {
			continue
		}
		// Stores whose address is rooted at a parameter or the receiver (in
		// any spelling) belong to the helper-stores/caller-persists idiom:
		// call sites re-check them via the summary, so functions with
		// analyzed callers stay silent here.
		if hasCallers {
			attributable := fi.IsClosure
			for _, b := range ev.Bases {
				if r := cfgir.RootIdent(b); r == "$recv" || cfgir.ParamIndex(fi.Params, r) >= 0 {
					attributable = true
					break
				}
			}
			if attributable {
				continue
			}
		}
		what := "store"
		if ev.Via != "" {
			what = "store via " + ev.Via
		}
		a.report(ev.Node.Op.Pos, "missing-persist",
			"%s to %s in %s has no reachable flush+fence or persist before function exit",
			what, ev.Bases[0], fi.Name)
	}
	if hasCallers {
		return // leaked flushes were propagated to call sites
	}
	for _, ev := range a.ir.FlushEvents(fi) {
		if !a.ir.UnfencedPathExists(fi, ev.Node) {
			continue
		}
		what := "flush"
		if ev.Via != "" {
			what = "flush via " + ev.Via
		}
		a.report(ev.Node.Op.Pos, "flush-no-fence",
			"%s in %s can reach function exit with no following fence",
			what, fi.Name)
	}
}
