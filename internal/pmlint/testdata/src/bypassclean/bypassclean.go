// Package bypassclean is the clean counterpart to bypass: concurrency goes
// through pmrt primitives only, which the cooperative scheduler controls.
package bypassclean

import "hawkset/internal/pmrt"

// Run spawns a worker through the scheduler and joins it.
func Run(c *pmrt.Ctx, mu *pmrt.Mutex, addr uint64) {
	th := c.Spawn(func(c *pmrt.Ctx) {
		c.Lock(mu)
		c.Store8(addr, 1)
		c.Persist(addr, 8)
		c.Unlock(mu)
	})
	c.Yield()
	c.Join(th)
}
