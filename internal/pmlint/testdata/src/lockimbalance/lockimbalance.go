// Package lockimbalance seeds deliberate lock/unlock imbalances next to
// clean counterparts, including the conditional-defer shape that a naive
// defer approximation would misreport.
package lockimbalance

import "hawkset/internal/pmrt"

// S carries the locks under test.
type S struct {
	mu   *pmrt.Mutex
	rw   *pmrt.RWMutex
	spin *pmrt.SpinLock
}

// BadHeld leaks the lock on the early-return path. MISUSE.
func (s *S) BadHeld(c *pmrt.Ctx, cond bool) {
	c.Lock(s.mu)
	if cond {
		return
	}
	c.Unlock(s.mu)
}

// BadUnlock releases a lock no path acquired. MISUSE.
func (s *S) BadUnlock(c *pmrt.Ctx) {
	c.Unlock(s.mu)
}

// GoodBalanced pairs the operations on every path.
func (s *S) GoodBalanced(c *pmrt.Ctx, cond bool) {
	c.Lock(s.mu)
	if cond {
		c.Unlock(s.mu)
		return
	}
	c.Unlock(s.mu)
}

// GoodDefer releases via defer on every exit.
func (s *S) GoodDefer(c *pmrt.Ctx, cond bool) {
	c.Lock(s.mu)
	defer c.Unlock(s.mu)
	if cond {
		return
	}
}

// GoodCondDefer acquires and defers the release inside one branch — the
// no-lock exits must not be read as unlock-without-acquisition.
func (s *S) GoodCondDefer(c *pmrt.Ctx, fixed bool) {
	if fixed {
		c.Lock(s.mu)
		defer c.Unlock(s.mu)
	}
	if !fixed {
		return
	}
}

// GoodRWSpin exercises the other lock families.
func (s *S) GoodRWSpin(c *pmrt.Ctx) {
	c.RLock(s.rw)
	c.RUnlock(s.rw)
	c.WLock(s.rw)
	c.WUnlock(s.rw)
	c.SpinLock(s.spin)
	c.SpinUnlock(s.spin)
}
