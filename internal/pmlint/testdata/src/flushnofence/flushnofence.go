// Package flushnofence seeds deliberate flush-no-fence misuses (a flush
// whose snapshot can reach function exit before any fence publishes it)
// next to clean counterparts.
package flushnofence

import "hawkset/internal/pmrt"

// Bad flushes and returns; the snapshot never becomes persistent. MISUSE.
func Bad(c *pmrt.Ctx, addr uint64) {
	c.Flush(addr)
}

// BadSomePath fences only when sync is set; the other path leaks. MISUSE.
func BadSomePath(c *pmrt.Ctx, addr uint64, sync bool) {
	c.Flush(addr)
	if sync {
		c.Fence()
	}
}

// Good completes the flush on every path.
func Good(c *pmrt.Ctx, addr uint64) {
	c.Flush(addr)
	c.Fence()
}

// GoodViaPersist: Persist fences, completing the earlier flush too.
func GoodViaPersist(c *pmrt.Ctx, addr, other uint64) {
	c.Flush(addr)
	c.Persist(other, 8)
}

func fenceHelper(c *pmrt.Ctx) {
	c.Fence()
}

// GoodViaHelper: the callee's fence summary covers the flush.
func GoodViaHelper(c *pmrt.Ctx, addr uint64) {
	c.Flush(addr)
	fenceHelper(c)
}
