// Package deferloop pins the CFG builder's treatment of defer inside loops.
//
// The builder records a deferred op chain once per *syntactic* defer
// statement, at the point the statement is visited, and replays every chain
// recorded so far (in reverse) at each function exit. Two deliberate
// approximations follow for a `defer c.Fence()` inside a loop body:
//
//  1. Exits reached *after* the loop in source order replay the fence even
//     when the loop may run zero times — so a flush before the loop is
//     considered fenced (optimistic for flush-no-fence, conservative in the
//     sense that pmlint stays quiet rather than guessing iteration counts).
//  2. Exits *before* the defer statement in source order do not see it, even
//     though Go would not have registered the defer yet either — so those
//     paths are judged exactly.
//
// This fixture is the behavior contract for the cfgir extraction: the
// refactor must keep both properties bit-for-bit (same findings, same
// silence).
package deferloop

import "hawkset/internal/pmrt"

// LoopDeferFence flushes, then defers a fence from inside a loop that may
// run zero times. Pinned: NO finding — the deferred fence is replayed at the
// function exit regardless of iteration count.
func LoopDeferFence(c *pmrt.Ctx, addr uint64, n int) {
	c.Flush(addr)
	for i := 0; i < n; i++ {
		defer c.Fence()
	}
}

// EarlyReturnBeforeLoopDefer leaks the flush on the early-return path: the
// loop's deferred fence is recorded after that exit in source order, so the
// exit replays nothing. MISUSE (pinned finding).
func EarlyReturnBeforeLoopDefer(c *pmrt.Ctx, addr uint64, skip bool, n int) {
	c.Flush(addr)
	if skip {
		return
	}
	for i := 0; i < n; i++ {
		defer c.Fence()
	}
}

// FlushAfterLoopDefer flushes after the loop body that defers the fence; the
// exit still replays the deferred chain, covering the flush. Pinned: NO
// finding.
func FlushAfterLoopDefer(c *pmrt.Ctx, addr uint64, n int) {
	for i := 0; i < n; i++ {
		defer c.Fence()
	}
	c.Flush(addr)
}

// NestedLoopDefer defers the fence from a doubly-nested loop; the chain is
// still recorded once and replayed at exit. Pinned: NO finding.
func NestedLoopDefer(c *pmrt.Ctx, addr uint64, n int) {
	c.Flush(addr)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			defer c.Fence()
		}
	}
}

// BreakBeforeDefer exits the loop via break on a path that skips the defer
// statement in every iteration the analyzer considers; the defer is still
// recorded for the function exit because the statement was visited. Pinned:
// NO finding.
func BreakBeforeDefer(c *pmrt.Ctx, addr uint64, n int) {
	c.Flush(addr)
	for i := 0; i < n; i++ {
		if i == 0 {
			break
		}
		defer c.Fence()
	}
}
