// Package emptylockset seeds the paper's race shape: a field written under
// a lock in one method and read lock-free in another, next to a fully
// protected counterpart type.
package emptylockset

import "hawkset/internal/pmrt"

// Racy writes head under mu but reads it bare. The lock-free read is the
// MISUSE the static lockset check flags.
type Racy struct {
	mu   *pmrt.Mutex
	head uint64
}

// Put updates head under the lock and persists it.
func (r *Racy) Put(c *pmrt.Ctx, v uint64) {
	c.Lock(r.mu)
	defer c.Unlock(r.mu)
	c.Store8(r.head, v)
	c.Persist(r.head, 8)
}

// Get reads head with an empty lockset. MISUSE.
func (r *Racy) Get(c *pmrt.Ctx) uint64 {
	return c.Load8(r.head)
}

// Safe is the clean counterpart: every head access holds mu.
type Safe struct {
	mu   *pmrt.Mutex
	head uint64
}

// Put updates head under the lock and persists it.
func (s *Safe) Put(c *pmrt.Ctx, v uint64) {
	c.Lock(s.mu)
	defer c.Unlock(s.mu)
	c.Store8(s.head, v)
	c.Persist(s.head, 8)
}

// Get reads head under the same lock.
func (s *Safe) Get(c *pmrt.Ctx) uint64 {
	c.Lock(s.mu)
	defer c.Unlock(s.mu)
	return c.Load8(s.head)
}

// getLocked is protected at every call site, so its bare load inherits the
// callers' lockset (entry-holds widening) and stays clean.
func (s *Safe) getLocked(c *pmrt.Ctx) uint64 {
	return c.Load8(s.head)
}

// Sum reads twice through the helper, both times under the lock.
func (s *Safe) Sum(c *pmrt.Ctx) uint64 {
	c.Lock(s.mu)
	defer c.Unlock(s.mu)
	return s.getLocked(c) + s.getLocked(c)
}
