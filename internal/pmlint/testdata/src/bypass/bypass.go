// Package bypass seeds scheduler-bypass misuses: native Go concurrency in
// code that must run under the pmrt cooperative scheduler (the analysis is
// pointed here via Config.AppsPrefix).
package bypass

import (
	"sync"
	"time"
)

// Bad uses every forbidden primitive the check knows about. MISUSE.
func Bad(ch chan int) int {
	var mu sync.Mutex
	mu.Lock()
	go send(ch)
	v := <-ch
	time.Sleep(time.Millisecond)
	mu.Unlock()
	return v
}

func send(ch chan int) {
	ch <- 1
}
