// Package missingpersist seeds one deliberate missing-persist misuse per
// store flavour, next to clean counterparts exercising every suppression
// path (direct persist, flush+fence, NTStore+fence, helper-stores/
// caller-persists, conditional repair arm, address-helper coverage).
package missingpersist

import "hawkset/internal/pmrt"

// Bad stores and returns with no flush or fence anywhere. MISUSE.
func Bad(c *pmrt.Ctx, addr uint64) {
	c.Store8(addr, 1)
}

// BadCAS publishes lock-free and never persists the slot. MISUSE.
func BadCAS(c *pmrt.Ctx, addr uint64) bool {
	return c.CAS8(addr, 0, 1)
}

// BadNT bypasses the cache but skips the fence its store still needs. MISUSE.
func BadNT(c *pmrt.Ctx, addr uint64) {
	c.NTStore8(addr, 2)
}

// badHelper is silent here (param-rooted store, analyzed caller) …
func badHelper(c *pmrt.Ctx, addr uint64) {
	c.Store8(addr, 3)
}

// BadCaller … but the propagated store surfaces here: no persist. MISUSE.
func BadCaller(c *pmrt.Ctx, addr uint64) {
	badHelper(c, addr)
}

// Good persists directly.
func Good(c *pmrt.Ctx, addr uint64) {
	c.Store8(addr, 4)
	c.Persist(addr, 8)
}

// GoodFlushFence persists via the explicit two-step sequence.
func GoodFlushFence(c *pmrt.Ctx, addr uint64) {
	c.Store8(addr, 5)
	c.Flush(addr)
	c.Fence()
}

// GoodNT: a non-temporal store only needs the fence.
func GoodNT(c *pmrt.Ctx, addr uint64) {
	c.NTStore8(addr, 6)
	c.Fence()
}

// goodHelper stores on the caller's behalf …
func goodHelper(c *pmrt.Ctx, addr uint64) {
	c.Store8(addr, 7)
}

// GoodCaller … and persists what the helper wrote.
func GoodCaller(c *pmrt.Ctx, addr uint64) {
	goodHelper(c, addr)
	c.Persist(addr, 8)
}

// GoodConditional is clean under exists-path semantics: the repair arm
// persists, mirroring the apps' `if fixed { … }` pattern.
func GoodConditional(c *pmrt.Ctx, addr uint64, fixed bool) {
	c.Store8(addr, 8)
	if fixed {
		c.Persist(addr, 8)
	}
}

func slot(base uint64, i int) uint64 { return base + uint64(i)*8 }

// GoodAddrHelper stores through an address-computing helper; the persist of
// the underlying object covers it.
func GoodAddrHelper(c *pmrt.Ctx, base uint64, i int) {
	c.Store8(slot(base, i), 9)
	c.Persist(base, 64)
}
