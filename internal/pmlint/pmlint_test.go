package pmlint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixturePrefix is the import-path prefix of the fixture packages under
// testdata/src (Expand skips testdata, so tests load them explicitly).
const fixturePrefix = "hawkset/internal/pmlint/testdata/src/"

// analyzeFixture loads the named fixture packages and runs every check.
func analyzeFixture(t *testing.T, cfg Config, names ...string) []Finding {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(wd)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	var pkgs []*Package
	for _, name := range names {
		p, err := l.LoadDir(filepath.Join(wd, "testdata", "src", name))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", name, err)
		}
		pkgs = append(pkgs, p)
	}
	fs, err := Analyze(l, pkgs, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return fs
}

// TestFixtures is the golden-diff acceptance test: every seeded misuse in
// testdata/src is detected, and the clean counterparts in the same packages
// produce no findings at all.
func TestFixtures(t *testing.T) {
	pfx := "testdata/src/"
	tests := []struct {
		names []string
		cfg   Config
		want  []string
	}{
		{
			names: []string{"missingpersist"},
			want: []string{
				pfx + "missingpersist/missingpersist.go:11: [missing-persist] store to addr in Bad has no reachable flush+fence or persist before function exit",
				pfx + "missingpersist/missingpersist.go:16: [missing-persist] store to addr in BadCAS has no reachable flush+fence or persist before function exit",
				pfx + "missingpersist/missingpersist.go:21: [missing-persist] store to addr in BadNT has no reachable flush+fence or persist before function exit",
				pfx + "missingpersist/missingpersist.go:31: [missing-persist] store via badHelper to addr in BadCaller has no reachable flush+fence or persist before function exit",
			},
		},
		{
			names: []string{"flushnofence"},
			want: []string{
				pfx + "flushnofence/flushnofence.go:10: [flush-no-fence] flush in Bad can reach function exit with no following fence",
				pfx + "flushnofence/flushnofence.go:15: [flush-no-fence] flush in BadSomePath can reach function exit with no following fence",
			},
		},
		{
			// deferloop pins the builder's defer-inside-loop approximation
			// (see the fixture's doc comment): the behavior contract the
			// cfgir extraction must preserve bit-for-bit.
			names: []string{"deferloop"},
			want: []string{
				pfx + "deferloop/deferloop.go:37: [flush-no-fence] flush in EarlyReturnBeforeLoopDefer can reach function exit with no following fence",
			},
		},
		{
			names: []string{"lockimbalance"},
			want: []string{
				pfx + "lockimbalance/lockimbalance.go:17: [lock-imbalance] lock $recv.mu acquired in (*S).BadHeld may still be held at function exit",
				pfx + "lockimbalance/lockimbalance.go:26: [lock-imbalance] unlock of $recv.mu in (*S).BadUnlock without a matching acquisition on any path",
			},
		},
		{
			names: []string{"emptylockset"},
			want: []string{
				pfx + "emptylockset/emptylockset.go:25: [empty-lockset] load of $recv.head in (*Racy).Get has empty static lockset, but (Racy).head accesses are protected by $recv.mu elsewhere",
			},
		},
		{
			// bypassclean sits under the same AppsPrefix and must stay silent:
			// pmrt primitives are the sanctioned concurrency vocabulary.
			names: []string{"bypass", "bypassclean"},
			cfg:   Config{AppsPrefix: fixturePrefix + "bypass"},
			want: []string{
				pfx + "bypass/bypass.go:12: [scheduler-bypass] channel type in application code; thread communication must go through pmrt",
				pfx + "bypass/bypass.go:13: [scheduler-bypass] use of sync.Mutex bypasses the cooperative scheduler; use pmrt.Mutex/RWMutex/SpinLock",
				pfx + "bypass/bypass.go:15: [scheduler-bypass] go statement bypasses the cooperative scheduler; use pmrt.Ctx.Spawn",
				pfx + "bypass/bypass.go:16: [scheduler-bypass] channel receive bypasses the cooperative scheduler; use pmrt primitives",
				pfx + "bypass/bypass.go:17: [scheduler-bypass] time.Sleep stalls outside the cooperative scheduler and breaks deterministic replay",
				pfx + "bypass/bypass.go:22: [scheduler-bypass] channel type in application code; thread communication must go through pmrt",
				pfx + "bypass/bypass.go:23: [scheduler-bypass] channel send bypasses the cooperative scheduler; use pmrt primitives",
			},
		},
	}
	for _, tt := range tests {
		t.Run(strings.Join(tt.names, "+"), func(t *testing.T) {
			fs := analyzeFixture(t, tt.cfg, tt.names...)
			var got []string
			for _, f := range fs {
				got = append(got, strings.TrimPrefix(f.String(), "internal/pmlint/"))
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %d findings, want %d:\ngot:  %s\nwant: %s",
					len(got), len(tt.want), strings.Join(got, "\n      "), strings.Join(tt.want, "\n      "))
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("finding %d:\ngot:  %s\nwant: %s", i, got[i], tt.want[i])
				}
			}
		})
	}
}

// TestCleanFixturesOnly re-runs the analysis restricted to packages that
// contain only correct code; any finding is a false positive.
func TestCleanFixturesOnly(t *testing.T) {
	fs := analyzeFixture(t, Config{AppsPrefix: fixturePrefix + "bypass"}, "bypassclean")
	for _, f := range fs {
		t.Errorf("false positive on clean fixture: %s", f)
	}
}

// TestJSONFormatStability pins the -json output shape: the field set and
// ordering are a CI interface (scripts parse them), so any change here must
// be deliberate.
func TestJSONFormatStability(t *testing.T) {
	fs := []Finding{{
		File: "internal/apps/wipe/wipe.go", Line: 99, Col: 9,
		Check: "empty-lockset", Message: "load of $recv.segs …",
	}}
	got, err := json.Marshal(fs)
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"file":"internal/apps/wipe/wipe.go","line":99,"col":9,` +
		`"check":"empty-lockset","message":"load of $recv.segs …"}]`
	if string(got) != want {
		t.Errorf("JSON format changed:\ngot:  %s\nwant: %s", got, want)
	}
	// Round-trip: the field names must also decode.
	var back []Finding
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != fs[0] {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

// TestBaseline covers the ratchet mechanics: filtering, stale-entry
// detection, and write/read round-trip through the on-disk format.
func TestBaseline(t *testing.T) {
	old := Finding{File: "a/b.go", Line: 3, Check: "missing-persist", Message: "store to x in F …"}
	fresh := Finding{File: "a/c.go", Line: 7, Check: "flush-no-fence", Message: "flush in G …"}

	var buf bytes.Buffer
	if err := WriteBaseline(&buf, []Finding{old}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pmlint.baseline")
	// Comments and blank lines must be tolerated alongside generated entries.
	content := buf.String() + "\n# hand-written note\nstale/file.go: [empty-lockset] gone finding\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	newF, suppressed := bl.Filter([]Finding{old, fresh})
	if len(suppressed) != 1 || suppressed[0] != old {
		t.Errorf("suppressed = %+v, want [old]", suppressed)
	}
	if len(newF) != 1 || newF[0] != fresh {
		t.Errorf("new = %+v, want [fresh]", newF)
	}
	unused := bl.Unused([]Finding{old, fresh})
	if len(unused) != 1 || unused[0] != "stale/file.go: [empty-lockset] gone finding" {
		t.Errorf("unused = %q", unused)
	}

	// A missing baseline is an empty baseline, not an error.
	empty, err := ReadBaseline(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if n, s := empty.Filter([]Finding{fresh}); len(n) != 1 || len(s) != 0 {
		t.Errorf("empty baseline should suppress nothing: new=%v suppressed=%v", n, s)
	}
}

// TestRepoBaselineCovers runs the real analysis over the repository and
// checks it against the committed pmlint.baseline — the same gate ci.sh
// enforces, kept here so `go test ./...` catches drift early.
func TestRepoBaselineCovers(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // internal/pmlint -> repo root
	fs, err := Run(root, []string{"./..."}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bl, err := ReadBaseline(filepath.Join(root, "pmlint.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	newF, _ := bl.Filter(fs)
	for _, f := range newF {
		t.Errorf("finding not in pmlint.baseline: %s", f)
	}
	for _, k := range bl.Unused(fs) {
		t.Errorf("stale pmlint.baseline entry: %s", k)
	}
}
