package pmlint

import (
	"go/token"
	"sort"
	"strings"

	"hawkset/internal/pmlint/cfgir"
)

// Static lockset analysis: the source-level mirror of stage ③'s dynamic
// lockset intersection. Where the dynamic analysis intersects the locksets
// of every (store, load) pair observed on a trace, the static pass computes,
// for every PM access expression, the set of pmrt locks held on ALL paths
// reaching it (meet-over-paths intersection), widened across the call graph:
// a helper's accesses inherit a lock only when every analyzed call site
// provably holds one.
//
// Two findings come out of it:
//
//   - lock-imbalance: a lock acquired on some path but not released before
//     function exit (hand-over-hand locking across function boundaries will
//     trip this — record such designs in the baseline), or an unlock with no
//     matching acquisition.
//   - empty-lockset: an access to a receiver field (e.g. $recv.head) whose
//     effective lockset is empty while another access to the same field of
//     the same receiver type is protected by a lock somewhere in the
//     package. This is precisely the shape of the paper's
//     lock-free-reader-vs-locked-writer races; apps that embed them on
//     purpose carry baseline entries.

// lockHold is one held lock: its normalized expression and acquisition site.
type lockHold struct {
	expr string
	pos  token.Pos
}

// lockState is an immutable sorted set of held locks.
type lockState []lockHold

func (s lockState) key() string {
	var b strings.Builder
	for _, h := range s {
		b.WriteString(h.expr)
		b.WriteByte(0)
	}
	return b.String()
}

func (s lockState) with(h lockHold) lockState {
	for _, e := range s {
		if e.expr == h.expr {
			return s
		}
	}
	out := make(lockState, 0, len(s)+1)
	out = append(out, s...)
	out = append(out, h)
	sort.Slice(out, func(i, j int) bool { return out[i].expr < out[j].expr })
	return out
}

func (s lockState) without(expr string) (lockState, bool) {
	for i, e := range s {
		if e.expr == expr {
			out := make(lockState, 0, len(s)-1)
			out = append(out, s[:i]...)
			out = append(out, s[i+1:]...)
			return out, true
		}
	}
	return s, false
}

// stateSet is the dataflow fact at a CFG node: the set of distinct lock
// states over all paths reaching it.
type stateSet map[string]lockState

// maxLockStates caps the per-node state count; beyond it the function's
// lockset checks are skipped (LockBlowup) rather than risk exponential
// blowup or noise.
const maxLockStates = 64

// accessInfo records one PM access with its effective lockset emptiness.
type accessInfo struct {
	fi       *cfgir.FuncInfo
	pos      token.Pos
	base     string
	isStore  bool
	held     lockState // intersection over all states at the access
	lockFree bool      // held empty and no caller-side protection
}

// checkLocksets runs the lockset dataflow over every function, widens
// protection over the call graph, and reports imbalance and empty-lockset
// findings.
func (a *analysis) checkLocksets() {
	states := make(map[*cfgir.FuncInfo]map[*cfgir.Node]stateSet)
	for _, fi := range a.ir.Funcs {
		states[fi] = lockDataflow(fi)
	}

	// entryHolds[f]: every analyzed call site of f holds a lock (locally or
	// via its own callers). Optimistic start, monotone-decreasing fixpoint.
	entryHolds := make(map[*cfgir.FuncInfo]bool)
	for _, fi := range a.ir.Funcs {
		entryHolds[fi] = len(fi.Callers) > 0
	}
	siteByOp := make(map[*cfgir.OpCall]*cfgir.FuncInfo) // call op -> enclosing caller
	for _, fi := range a.ir.Funcs {
		for _, n := range fi.CFG.Nodes {
			if n.Op != nil && n.Op.Kind == cfgir.OpCallFn {
				siteByOp[n.Op] = fi
			}
		}
	}
	siteHeld := func(site *cfgir.OpCall) bool {
		caller := siteByOp[site]
		if caller == nil || caller.LockBlowup {
			return false
		}
		var ss stateSet
		for n, f := range states[caller] {
			if n.Op == site {
				ss = f
				break
			}
		}
		if len(ss) == 0 {
			return false // unreachable call site: claim nothing
		}
		for _, st := range ss {
			if len(st) == 0 {
				return entryHolds[caller]
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range a.ir.Funcs {
			if !entryHolds[fi] {
				continue
			}
			for _, site := range fi.Callers {
				if !siteHeld(site) {
					entryHolds[fi] = false
					changed = true
					break
				}
			}
		}
	}

	// Collect accesses and report imbalance.
	var accesses []accessInfo
	for _, fi := range a.ir.Funcs {
		if fi.LockBlowup {
			continue
		}
		nodeStates := states[fi]
		// Exit-held locks: any state at exit with held locks.
		reportedHeld := make(map[string]bool)
		for _, st := range nodeStates[fi.CFG.Exit] {
			for _, h := range st {
				if reportedHeld[h.expr] {
					continue
				}
				reportedHeld[h.expr] = true
				a.report(h.pos, "lock-imbalance",
					"lock %s acquired in %s may still be held at function exit",
					h.expr, fi.Name)
			}
		}
		for _, n := range fi.CFG.Nodes {
			if n.Op == nil {
				continue
			}
			switch n.Op.Kind {
			case cfgir.OpUnlock:
				// Report only when NO reachable state holds the lock: a
				// conditionally-deferred unlock (if cond { Lock; defer
				// Unlock }) replays at exits whose states legitimately
				// lack the lock.
				ss := nodeStates[n]
				anyHeld := len(ss) == 0
				for _, st := range ss {
					if _, ok := st.without(n.Op.LockExpr); ok {
						anyHeld = true
						break
					}
				}
				if !anyHeld {
					a.report(n.Op.Pos, "lock-imbalance",
						"unlock of %s in %s without a matching acquisition on any path",
						n.Op.LockExpr, fi.Name)
				}
			case cfgir.OpStore, cfgir.OpNTStore, cfgir.OpCAS, cfgir.OpZero, cfgir.OpLoad:
				ss := nodeStates[n]
				if len(ss) == 0 {
					continue // unreachable
				}
				held := intersectStates(ss)
				accesses = append(accesses, accessInfo{
					fi: fi, pos: n.Op.Pos, base: n.Op.AddrBase,
					isStore:  cfgir.IsStoreKind(n.Op.Kind),
					held:     held,
					lockFree: len(held) == 0 && !entryHolds[fi],
				})
			}
		}
	}

	// Group receiver-field accesses by (package, receiver type, base); flag
	// lock-free members of groups that have a protected member.
	type groupKey struct{ pkg, recvType, base string }
	groups := make(map[groupKey][]accessInfo)
	for _, acc := range accesses {
		if cfgir.RootIdent(acc.base) != "$recv" || acc.fi.RecvType == "" {
			continue
		}
		k := groupKey{acc.fi.Pkg.Path, acc.fi.RecvType, acc.base}
		groups[k] = append(groups[k], acc)
	}
	for k, accs := range groups {
		var protector *accessInfo
		for i := range accs {
			if len(accs[i].held) > 0 {
				protector = &accs[i]
				break
			}
		}
		if protector == nil {
			continue // uniformly lock-free: single-threaded or init-only use
		}
		for _, acc := range accs {
			if !acc.lockFree {
				continue
			}
			kind := "load of"
			if acc.isStore {
				kind = "store to"
			}
			a.report(acc.pos, "empty-lockset",
				"%s %s in %s has empty static lockset, but (%s).%s accesses are protected by %s elsewhere",
				kind, acc.base, acc.fi.Name, k.recvType, strings.TrimPrefix(acc.base, "$recv."),
				protector.held[0].expr)
		}
	}
}

// intersectStates computes the locks held in every state of ss.
func intersectStates(ss stateSet) lockState {
	var out lockState
	first := true
	for _, st := range ss {
		if first {
			out = st
			first = false
			continue
		}
		var next lockState
		for _, h := range out {
			if _, found := st.without(h.expr); found {
				next = append(next, h)
			}
		}
		out = next
		if len(out) == 0 {
			break
		}
	}
	return out
}

// lockDataflow runs the worklist algorithm over fi's CFG, producing the
// reachable lock states at every node. The fact at a node describes the
// state BEFORE its operation executes.
func lockDataflow(fi *cfgir.FuncInfo) map[*cfgir.Node]stateSet {
	facts := make(map[*cfgir.Node]stateSet, len(fi.CFG.Nodes))
	entry := stateSet{lockState(nil).key(): nil}
	facts[fi.CFG.Entry] = entry
	work := []*cfgir.Node{fi.CFG.Entry}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		out := transferStates(facts[n], n)
		for _, s := range n.Succs {
			f := facts[s]
			if f == nil {
				f = make(stateSet)
				facts[s] = f
			}
			changed := false
			for k, st := range out {
				if _, ok := f[k]; !ok {
					f[k] = st
					changed = true
				}
			}
			if len(f) > maxLockStates {
				fi.LockBlowup = true
				return facts
			}
			if changed {
				work = append(work, s)
			}
		}
	}
	return facts
}

// transferStates applies node n's operation to every incoming state.
func transferStates(in stateSet, n *cfgir.Node) stateSet {
	if n.Op == nil || (n.Op.Kind != cfgir.OpLock && n.Op.Kind != cfgir.OpUnlock) {
		return in
	}
	out := make(stateSet, len(in))
	for _, st := range in {
		var next lockState
		if n.Op.Kind == cfgir.OpLock {
			next = st.with(lockHold{expr: n.Op.LockExpr, pos: n.Op.Pos})
		} else {
			next, _ = st.without(n.Op.LockExpr)
		}
		out[next.key()] = next
	}
	return out
}
