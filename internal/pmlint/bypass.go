package pmlint

import (
	"go/ast"
	"go/types"
	"strings"

	"hawkset/internal/pmlint/cfgir"
)

// Scheduler-bypass check: simulated applications must express ALL
// concurrency and timing through pmrt primitives (Spawn/Join, Mutex/RWMutex/
// SpinLock, Yield/Park). Native Go concurrency — goroutines, channels,
// sync.*, wall-clock sleeps — executes outside the cooperative scheduler:
// it neither yields at instrumented points nor appears in the trace, so a
// single bypassing operation silently destroys the deterministic-replay
// guarantee every experiment and regression test depends on.

// checkBypass walks packages under cfg.AppsPrefix and flags native
// concurrency constructs.
func (a *analysis) checkBypass() {
	for _, pkg := range a.ir.Pkgs {
		if pkg.Path != a.cfg.AppsPrefix && !strings.HasPrefix(pkg.Path, a.cfg.AppsPrefix+"/") {
			continue
		}
		for _, file := range pkg.Files {
			a.bypassFile(pkg, file)
		}
	}
}

// blockingTimeFuncs are time-package calls that stall or fork execution
// outside the scheduler. (Pure reads like time.Now are nondeterministic too
// but cannot reorder PM operations; they stay out of scope.)
var blockingTimeFuncs = map[string]bool{
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
}

func (a *analysis) bypassFile(pkg *Package, file *ast.File) {
	info := pkg.Info
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			a.report(x.Pos(), "scheduler-bypass",
				"go statement bypasses the cooperative scheduler; use pmrt.Ctx.Spawn")
		case *ast.SendStmt:
			a.report(x.Pos(), "scheduler-bypass",
				"channel send bypasses the cooperative scheduler; use pmrt primitives")
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				a.report(x.Pos(), "scheduler-bypass",
					"channel receive bypasses the cooperative scheduler; use pmrt primitives")
			}
		case *ast.SelectStmt:
			a.report(x.Pos(), "scheduler-bypass",
				"select statement bypasses the cooperative scheduler; use pmrt primitives")
		case *ast.ChanType:
			a.report(x.Pos(), "scheduler-bypass",
				"channel type in application code; thread communication must go through pmrt")
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					a.report(x.Pos(), "scheduler-bypass",
						"range over channel bypasses the cooperative scheduler; use pmrt primitives")
				}
			}
		case *ast.CallExpr:
			if id, ok := cfgir.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					a.report(x.Pos(), "scheduler-bypass",
						"close of channel bypasses the cooperative scheduler; use pmrt primitives")
				}
			}
		case *ast.SelectorExpr:
			pkgName, fn := qualifiedUse(info, x)
			switch {
			case pkgName == "sync" || strings.HasPrefix(pkgName, "sync/"):
				a.report(x.Pos(), "scheduler-bypass",
					"use of %s.%s bypasses the cooperative scheduler; use pmrt.Mutex/RWMutex/SpinLock", pkgName, fn)
			case pkgName == "time" && blockingTimeFuncs[fn]:
				a.report(x.Pos(), "scheduler-bypass",
					"time.%s stalls outside the cooperative scheduler and breaks deterministic replay", fn)
			}
		}
		return true
	})
}

// qualifiedUse resolves a selector to (imported package path, member name)
// when its base is a package name; ("", "") otherwise.
func qualifiedUse(info *types.Info, sel *ast.SelectorExpr) (string, string) {
	id, ok := cfgir.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
