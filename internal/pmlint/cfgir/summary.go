package cfgir

// Interprocedural summaries and the path walks the persistence checks (and
// pmopt's redundancy passes) share. All summary bits grow monotonically, so
// the fixpoint iterations terminate.

// ComputeSummaries computes the fence/persist summaries (phase A), the
// unpersisted-store summaries (phase B), and the leaked-flush summaries
// (phase C) for every function, each to fixpoint across the call graph.
// Idempotent: safe to call again after building derived state.
func (ir *IR) ComputeSummaries() {
	// Phase A: fence/persist summaries.
	for changed := true; changed; {
		changed = false
		for _, fi := range ir.Funcs {
			if ir.updatePersistSummary(fi) {
				changed = true
			}
		}
	}
	// Phase B: unpersisted-store summaries (monotone: a store event
	// propagates upward as StoresBases entries).
	for changed := true; changed; {
		changed = false
		for _, fi := range ir.Funcs {
			if ir.updateStoreSummary(fi) {
				changed = true
			}
		}
	}
	// Phase C: leaked-flush summaries.
	for changed := true; changed; {
		changed = false
		for _, fi := range ir.Funcs {
			leaks := false
			for _, ev := range ir.FlushEvents(fi) {
				if ir.UnfencedPathExists(fi, ev.Node) {
					leaks = true
					break
				}
			}
			if leaks && !fi.LeaksFlush {
				fi.LeaksFlush = true
				changed = true
			}
		}
	}
}

// IsFenceEvent reports whether node n completes pending flushes: a Fence, a
// Persist (which always fences), or a call to a function that fences on
// some path.
func IsFenceEvent(n *Node) bool {
	if n.Op == nil {
		return false
	}
	switch n.Op.Kind {
	case OpFence, OpPersist:
		return true
	case OpCallFn:
		return n.Op.Callee.Fences
	}
	return false
}

// updatePersistSummary recomputes Fences and PersistsBases for fi; reports
// whether anything changed.
func (ir *IR) updatePersistSummary(fi *FuncInfo) bool {
	changed := false
	for _, n := range fi.CFG.Nodes {
		if n.Op == nil {
			continue
		}
		switch n.Op.Kind {
		case OpFence, OpPersist:
			if !fi.Fences {
				fi.Fences = true
				changed = true
			}
		case OpCallFn:
			if n.Op.Callee.Fences && !fi.Fences {
				fi.Fences = true
				changed = true
			}
		}
	}
	// A base is persisted when a Persist covers it, when a Flush covers it
	// and a fence event is reachable from the flush, or when a callee's
	// summary says so (translated to this function's spelling).
	record := func(base string) {
		if base == "" {
			return
		}
		root := RootIdent(base)
		// Param- and receiver-rooted bases are useful summaries; closures
		// additionally export captured-variable bases (same-scope callers).
		if root != "$recv" && ParamIndex(fi.Params, root) < 0 && !fi.IsClosure {
			return
		}
		if !fi.PersistsBases[base] {
			fi.PersistsBases[base] = true
			changed = true
		}
	}
	for _, n := range fi.CFG.Nodes {
		if n.Op == nil {
			continue
		}
		switch n.Op.Kind {
		case OpPersist:
			record(n.Op.AddrBase)
		case OpFlush:
			if ir.FenceReachable(fi, n) {
				record(n.Op.AddrBase)
			}
		case OpCallFn:
			for base := range n.Op.Callee.PersistsBases {
				record(TranslateBase(n.Op, n.Op.Callee, base))
			}
		}
	}
	return changed
}

// FenceReachable reports whether a fence event is reachable from n.
func (ir *IR) FenceReachable(fi *FuncInfo, n *Node) bool {
	seen := make([]bool, len(fi.CFG.Nodes))
	stack := append([]*Node(nil), n.Succs...)
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[m.Idx] {
			continue
		}
		seen[m.Idx] = true
		if IsFenceEvent(m) {
			return true
		}
		stack = append(stack, m.Succs...)
	}
	return false
}

// StoreEvent is a PM store occurrence in fi: direct, or propagated from a
// callee whose summary records an unpersisted store to a translatable base.
type StoreEvent struct {
	Node *Node
	// Bases holds the primary address base first, then the alternate bases
	// (helper-call arguments) a covering persist may be spelled with.
	Bases []string
	// NeedFlush is false for NTStore8 (cache-bypassing; fence suffices).
	NeedFlush bool
	// Via names the callee chain for propagated events ("" for direct).
	Via string
}

// StoreEvents collects fi's store occurrences, direct and propagated.
func (ir *IR) StoreEvents(fi *FuncInfo) []StoreEvent {
	var out []StoreEvent
	for _, n := range fi.CFG.Nodes {
		if n.Op == nil {
			continue
		}
		switch {
		case IsStoreKind(n.Op.Kind):
			bases := append([]string{n.Op.AddrBase}, n.Op.AddrAlts...)
			out = append(out, StoreEvent{Node: n, Bases: bases, NeedFlush: n.Op.Kind != OpNTStore})
		case n.Op.Kind == OpCallFn:
			for base := range n.Op.Callee.StoresBases {
				if t := TranslateBase(n.Op, n.Op.Callee, base); t != "" {
					out = append(out, StoreEvent{Node: n, Bases: []string{t}, NeedFlush: true, Via: n.Op.Callee.Name})
				}
			}
		}
	}
	return out
}

// FlushEvent is a Flush occurrence: direct, or a call to a function whose
// summary says it can leave a flush pending at exit.
type FlushEvent struct {
	Node *Node
	Via  string
}

// FlushEvents collects fi's flush occurrences, direct and propagated.
func (ir *IR) FlushEvents(fi *FuncInfo) []FlushEvent {
	var out []FlushEvent
	for _, n := range fi.CFG.Nodes {
		if n.Op == nil {
			continue
		}
		switch n.Op.Kind {
		case OpFlush:
			out = append(out, FlushEvent{Node: n})
		case OpCallFn:
			if n.Op.Callee.LeaksFlush {
				out = append(out, FlushEvent{Node: n, Via: n.Op.Callee.Name})
			}
		}
	}
	return out
}

// PersistReachable reports whether, starting after the store at n, some
// path performs a covering persist: Persist of one of the store's bases, a
// Flush of one followed by a fence, or a callee whose summary persists one.
func (ir *IR) PersistReachable(fi *FuncInfo, n *Node, bases []string, needFlush bool) bool {
	match := func(b string) bool {
		if b == "" {
			return false
		}
		for _, sb := range bases {
			if sb == b {
				return true
			}
		}
		return false
	}
	type state struct {
		n       *Node
		flushed bool
	}
	seen := make(map[state]bool)
	var stack []state
	for _, s := range n.Succs {
		stack = append(stack, state{s, !needFlush})
	}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[st] {
			continue
		}
		seen[st] = true
		m, flushed := st.n, st.flushed
		if m.Op != nil {
			switch m.Op.Kind {
			case OpPersist:
				if match(m.Op.AddrBase) {
					return true
				}
				if flushed {
					return true // Persist fences, completing the earlier flush
				}
			case OpFlush:
				if match(m.Op.AddrBase) {
					flushed = true
				}
			case OpFence:
				if flushed {
					return true
				}
			case OpCallFn:
				for cb := range m.Op.Callee.PersistsBases {
					if match(TranslateBase(m.Op, m.Op.Callee, cb)) {
						return true
					}
				}
				if flushed && m.Op.Callee.Fences {
					return true
				}
			}
		}
		for _, s := range m.Succs {
			stack = append(stack, state{s, flushed})
		}
	}
	return false
}

// updateStoreSummary records fi's unpersisted stores to param-/recv-rooted
// bases when fi has analyzed callers (so call sites re-check them).
func (ir *IR) updateStoreSummary(fi *FuncInfo) bool {
	if len(fi.Callers) == 0 {
		return false
	}
	changed := false
	for _, ev := range ir.StoreEvents(fi) {
		if ir.PersistReachable(fi, ev.Node, ev.Bases, ev.NeedFlush) {
			continue
		}
		// Only the primary base propagates; helper-call addresses cannot be
		// retargeted to a caller expression precisely.
		root := RootIdent(ev.Bases[0])
		if root != "$recv" && ParamIndex(fi.Params, root) < 0 && !fi.IsClosure {
			continue
		}
		if !fi.StoresBases[ev.Bases[0]] {
			fi.StoresBases[ev.Bases[0]] = true
			changed = true
		}
	}
	return changed
}

// UnfencedPathExists reports whether some path from n reaches function exit
// without crossing a fence event.
func (ir *IR) UnfencedPathExists(fi *FuncInfo, n *Node) bool {
	seen := make([]bool, len(fi.CFG.Nodes))
	stack := append([]*Node(nil), n.Succs...)
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[m.Idx] {
			continue
		}
		seen[m.Idx] = true
		if IsFenceEvent(m) {
			continue // this path is fenced; stop exploring it
		}
		if m == fi.CFG.Exit {
			return true
		}
		stack = append(stack, m.Succs...)
	}
	return false
}
