// Package cfgir is the shared static intermediate representation of the
// pmrt-instrumented applications: a stdlib-only loader, per-function
// control-flow graphs whose nodes carry recognized pmrt.Ctx operations, and
// interprocedural fence/persist/store summaries computed to fixpoint.
//
// It exists so the two static tools stay on one front end: pmlint (the
// PM-misuse analyzer) consumes the IR to report missing persistence, and
// pmopt (the flush/fence redundancy analyzer) consumes the same IR to prove
// the opposite property — persistence that is already covered. Both tools'
// verdicts are only comparable because they see identical CFGs, identical
// operation classification, and identical summaries.
package cfgir

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// OpKind classifies a recognized pmrt.Ctx operation (or a call into another
// analyzed function).
type OpKind int

// Operation kinds.
const (
	OpNone    OpKind = iota
	OpStore          // Store, Store8, Store4, Store1 — cached store, needs flush+fence
	OpNTStore        // NTStore8 — bypasses cache, needs fence only
	OpCAS            // CAS8 — lock-free store on success, needs flush+fence
	OpZero           // Zero — untraced cached store, needs flush+fence
	OpLoad           // Load, Load8, Load4, Load1
	OpFlush          // Flush
	OpFence          // Fence
	OpPersist        // Persist — flush every line + fence
	OpLock           // Lock, RLock, WLock, SpinLock
	OpUnlock         // Unlock, RUnlock, WUnlock, SpinUnlock
	OpCallFn         // call to another analyzed function
	OpPanic          // panic(...) — path terminates abnormally
)

// IsStoreKind reports whether k writes PM.
func IsStoreKind(k OpKind) bool {
	return k == OpStore || k == OpNTStore || k == OpCAS || k == OpZero
}

// ctxMethodOps maps pmrt.Ctx method names to op kinds. TryLock is absent on
// purpose: its acquisition is conditional on the return value, which a
// path-insensitive lockset would model wrong in both directions.
var ctxMethodOps = map[string]OpKind{
	"Store": OpStore, "Store8": OpStore, "Store4": OpStore, "Store1": OpStore,
	"NTStore8": OpNTStore,
	"CAS8":     OpCAS,
	"Zero":     OpZero,
	"Load":     OpLoad, "Load8": OpLoad, "Load4": OpLoad, "Load1": OpLoad,
	"Flush":   OpFlush,
	"Fence":   OpFence,
	"Persist": OpPersist,
	"Lock":    OpLock, "RLock": OpLock, "WLock": OpLock, "SpinLock": OpLock,
	"Unlock": OpUnlock, "RUnlock": OpUnlock, "WUnlock": OpUnlock, "SpinUnlock": OpUnlock,
}

// OpCall is one recognized operation occurrence, a node payload in the CFG.
type OpCall struct {
	Kind OpKind
	Call *ast.CallExpr
	Pos  token.Pos
	// AddrBase is the normalized base of the address expression (stores,
	// loads, flush, persist); LockExpr the normalized lock expression
	// (lock/unlock).
	AddrBase string
	// AddrAlts holds the argument bases when the address expression is an
	// address-computing helper call (keyAddr(buf, i) → {buf, i}): a persist
	// of the underlying object (Persist(buf, n)) covers the store.
	AddrAlts []string
	LockExpr string
	// Callee and Args are set for OpCallFn: the target FuncInfo and the
	// normalized base of every value argument (aligned with callee params).
	Callee *FuncInfo
	Args   []string
	// RecvIsRecv marks a method call whose receiver is the enclosing
	// method's own receiver, enabling $recv-rooted summary translation.
	RecvIsRecv bool
}

// FuncInfo is the per-function analysis unit: a declared function, method,
// or function literal with its CFG and computed summaries.
type FuncInfo struct {
	Pkg  *Package
	Node ast.Node // *ast.FuncDecl or *ast.FuncLit
	Body *ast.BlockStmt
	Name string // diagnostic name, e.g. (*Index).putKey or func@wipe.go:17
	Recv string // receiver identifier name ("" for plain funcs/lits)
	// RecvType is the receiver's named type ("" otherwise); used to group
	// $recv-rooted accesses across methods of the same type.
	RecvType string
	Params   []string // parameter identifier names, in order
	// IsClosure marks function literals: their bodies share the enclosing
	// function's scope, so summary bases rooted at captured variables
	// translate verbatim to (same-scope) call sites.
	IsClosure bool

	CFG     *Graph
	Callers []*OpCall // call sites in other analyzed functions

	// Summaries (computed to fixpoint across the call graph by
	// ComputeSummaries). Bases are normalized expressions rooted at a
	// parameter name or at $recv.
	Fences        bool            // some path performs a fence (Fence or Persist)
	LeaksFlush    bool            // some path carries a flush to exit with no fence
	PersistsBases map[string]bool // bases persisted (with fence) on some path
	StoresBases   map[string]bool // bases stored to but never persisted locally
	LockBlowup    bool            // lockset state exceeded the cap; lockset checks skipped
}

// Options configures IR construction.
type Options struct {
	// ExcludePkgs lists import paths to skip entirely. The pmrt runtime
	// itself is always excluded: it implements the primitives rather than
	// using them.
	ExcludePkgs []string
}

// IR is the built intermediate representation: every analyzed function with
// its CFG, plus the resolution maps call linking used.
type IR struct {
	L     *Loader
	Pkgs  []*Package
	Funcs []*FuncInfo
	// ByObj resolves a types.Func (or the types.Var a closure is bound to)
	// to its analyzed FuncInfo for call linking.
	ByObj   map[types.Object]*FuncInfo
	LitInfo map[*ast.FuncLit]*FuncInfo

	opts Options
}

// Build constructs the IR over the given loaded packages: FuncInfos for
// every declaration and literal, CFGs, and caller links. Summaries are NOT
// computed here — call ComputeSummaries when a consumer needs them.
func Build(l *Loader, pkgs []*Package, opts Options) *IR {
	ir := &IR{
		L: l, Pkgs: pkgs, opts: opts,
		ByObj:   make(map[types.Object]*FuncInfo),
		LitInfo: make(map[*ast.FuncLit]*FuncInfo),
	}
	ir.collectFuncs()
	ir.linkCalls()
	return ir
}

// Excluded reports whether IR construction skipped pkg.
func (ir *IR) Excluded(pkg *Package) bool {
	if pkg.Path == PmrtPath {
		return true
	}
	for _, p := range ir.opts.ExcludePkgs {
		if pkg.Path == p {
			return true
		}
	}
	return false
}

// PosOf converts a token.Pos to a module-relative slash-separated location.
func (ir *IR) PosOf(pos token.Pos) (string, int, int) {
	p := ir.L.Fset.Position(pos)
	rel, err := filepath.Rel(ir.L.ModuleDir, p.Filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		rel = p.Filename
	}
	return filepath.ToSlash(rel), p.Line, p.Column
}

// collectFuncs builds a FuncInfo (with CFG) for every function declaration
// and function literal in the analyzed packages.
func (ir *IR) collectFuncs() {
	for _, pkg := range ir.Pkgs {
		if ir.Excluded(pkg) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fi := ir.newFuncInfo(pkg, fd, fd.Body)
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					ir.ByObj[obj] = fi
				}
				// Function literals inside the declaration become their own
				// analysis units (e.g. Spawn bodies are the spawned thread's
				// code, not part of the spawning function's control flow).
				ir.collectLits(pkg, fd.Body)
			}
		}
	}
	// Bind `name := func(...){...}` closures to their variable so direct
	// calls through the name resolve like ordinary function calls.
	for _, pkg := range ir.Pkgs {
		if ir.Excluded(pkg) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i := range as.Rhs {
					lit, ok := as.Rhs[i].(*ast.FuncLit)
					if !ok {
						continue
					}
					id, ok := as.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					fi := ir.LitInfo[lit]
					if fi == nil {
						continue
					}
					if obj := pkg.Info.Defs[id]; obj != nil {
						ir.ByObj[obj] = fi
					} else if obj := pkg.Info.Uses[id]; obj != nil {
						ir.ByObj[obj] = fi
					}
				}
				return true
			})
		}
	}
	// CFGs are built after all FuncInfos exist so call linking can resolve
	// forward references.
	for _, fi := range ir.Funcs {
		fi.CFG = ir.buildCFG(fi)
	}
}

func (ir *IR) collectLits(pkg *Package, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ir.newFuncInfo(pkg, lit, lit.Body)
			// Nested literals are found by the recursive Inspect of the
			// literal's own body during this walk; don't double-visit.
		}
		return true
	})
}

func (ir *IR) newFuncInfo(pkg *Package, node ast.Node, body *ast.BlockStmt) *FuncInfo {
	fi := &FuncInfo{
		Pkg:           pkg,
		Node:          node,
		Body:          body,
		PersistsBases: make(map[string]bool),
		StoresBases:   make(map[string]bool),
	}
	switch n := node.(type) {
	case *ast.FuncDecl:
		fi.Name = n.Name.Name
		if n.Recv != nil && len(n.Recv.List) > 0 {
			r := n.Recv.List[0]
			if len(r.Names) > 0 {
				fi.Recv = r.Names[0].Name
			}
			fi.RecvType = recvTypeName(r.Type)
			fi.Name = "(" + typeExprString(r.Type) + ")." + n.Name.Name
		}
		fi.Params = paramNames(n.Type)
	case *ast.FuncLit:
		file, line, _ := ir.PosOf(n.Pos())
		fi.Name = fmt.Sprintf("func@%s:%d", filepath.Base(file), line)
		fi.Params = paramNames(n.Type)
		fi.IsClosure = true
		ir.LitInfo[n] = fi
	}
	ir.Funcs = append(ir.Funcs, fi)
	return fi
}

func paramNames(ft *ast.FuncType) []string {
	var out []string
	if ft.Params == nil {
		return out
	}
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			out = append(out, "_")
			continue
		}
		for _, n := range f.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

func recvTypeName(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	}
	return ""
}

func typeExprString(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return "*" + typeExprString(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return typeExprString(e.X)
	}
	return "?"
}

// linkCalls records, for every OpCallFn node, the callee's FuncInfo and
// fills the callee's Callers list.
func (ir *IR) linkCalls() {
	for _, fi := range ir.Funcs {
		for _, n := range fi.CFG.Nodes {
			if n.Op != nil && n.Op.Kind == OpCallFn && n.Op.Callee != nil {
				n.Op.Callee.Callers = append(n.Op.Callee.Callers, n.Op)
			}
		}
	}
}

// classify recognizes a call expression inside fi: a pmrt.Ctx operation, a
// call to another analyzed function, or panic. Returns nil for everything
// else.
func (ir *IR) classify(fi *FuncInfo, call *ast.CallExpr) *OpCall {
	info := fi.Pkg.Info
	// panic(...) terminates the path.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return &OpCall{Kind: OpPanic, Call: call, Pos: call.Pos()}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		// Package-qualified calls (pkg.Fn) are plain uses, not selections.
		if _, isSel := info.Selections[sel]; !isSel {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
				if callee, ok := ir.ByObj[fn]; ok {
					oc := &OpCall{Kind: OpCallFn, Call: call, Pos: call.Pos(), Callee: callee}
					for _, arg := range call.Args {
						oc.Args = append(oc.Args, fi.NormBase(arg))
					}
					return oc
				}
			}
		}
		if s, ok := info.Selections[sel]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				if k, isOp := ctxOp(fn, sel.Sel.Name); isOp {
					oc := &OpCall{Kind: k, Call: call, Pos: call.Pos()}
					switch k {
					case OpStore, OpNTStore, OpCAS, OpZero, OpLoad, OpFlush, OpPersist:
						if len(call.Args) > 0 {
							oc.AddrBase = fi.NormBase(call.Args[0])
							if inner, ok := Unparen(BaseExpr(call.Args[0])).(*ast.CallExpr); ok {
								for _, arg := range inner.Args {
									if b := fi.NormBase(arg); b != "" {
										oc.AddrAlts = append(oc.AddrAlts, b)
									}
								}
							}
						}
					case OpLock, OpUnlock:
						if len(call.Args) > 0 {
							oc.LockExpr = fi.NormExpr(call.Args[0])
						}
					}
					return oc
				}
				if callee, ok := ir.ByObj[fn]; ok {
					oc := &OpCall{Kind: OpCallFn, Call: call, Pos: call.Pos(), Callee: callee}
					for _, arg := range call.Args {
						oc.Args = append(oc.Args, fi.NormBase(arg))
					}
					if id, ok := Unparen(sel.X).(*ast.Ident); ok && fi.Recv != "" && id.Name == fi.Recv {
						oc.RecvIsRecv = true
					}
					return oc
				}
			}
		}
	}
	if id, ok := Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			if callee, ok := ir.ByObj[obj]; ok {
				oc := &OpCall{Kind: OpCallFn, Call: call, Pos: call.Pos(), Callee: callee}
				for _, arg := range call.Args {
					oc.Args = append(oc.Args, fi.NormBase(arg))
				}
				return oc
			}
		}
	}
	return nil
}

// ctxOp reports whether fn is a pmrt.Ctx operation method.
func ctxOp(fn *types.Func, name string) (OpKind, bool) {
	k, ok := ctxMethodOps[name]
	if !ok {
		return OpNone, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return OpNone, false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return OpNone, false
	}
	if named.Obj().Pkg().Path() != PmrtPath || named.Obj().Name() != "Ctx" {
		return OpNone, false
	}
	return k, true
}

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
