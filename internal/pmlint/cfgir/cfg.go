package cfgir

import (
	"go/ast"
)

// Node is one node of an intraprocedural control-flow graph. Nodes carry at
// most one recognized operation; synthetic nodes (entry, exit, merges) carry
// none.
type Node struct {
	Op    *OpCall
	Succs []*Node
	Idx   int
}

// Graph is a function's CFG. Statements are linearized so that every
// recognized pmrt operation (and every call into another analyzed function)
// occupies its own node, in source-evaluation order within a statement
// (pre-order over the expression tree — close enough for straight-line
// argument lists, which is what the instrumented apps write).
type Graph struct {
	Entry, Exit *Node
	Nodes       []*Node
}

// Preds computes the predecessor lists of every node, indexed by Node.Idx.
// Backward dataflow consumers (pmopt's all-paths walks) call this once per
// function; the forward checks never need it.
func (g *Graph) Preds() [][]*Node {
	preds := make([][]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			preds[s.Idx] = append(preds[s.Idx], n)
		}
	}
	return preds
}

// cfgBuilder threads loop/branch targets and the deferred-op list through a
// syntax-directed build.
type cfgBuilder struct {
	ir *IR
	fi *FuncInfo
	g  *Graph

	// breakTargets / continueTargets are stacks; labeled variants index by
	// label name.
	breakTargets    []*Node
	continueTargets []*Node
	labeledBreak    map[string]*Node
	labeledContinue map[string]*Node
	// pendingLabel is the label naming the next loop/switch statement.
	pendingLabel string

	// deferred collects the op chains of defer statements in source order;
	// every function exit replays them in reverse. This is the standard
	// static approximation: a defer registered on the syntactic path is
	// assumed live at every later exit. (The deferloop fixture in
	// internal/pmlint/testdata pins the loop-interaction consequences.)
	deferred [][]*OpCall
}

func (b *cfgBuilder) newNode(op *OpCall) *Node {
	n := &Node{Op: op, Idx: len(b.g.Nodes)}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func edge(from, to *Node) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// buildCFG constructs fi's CFG.
func (ir *IR) buildCFG(fi *FuncInfo) *Graph {
	g := &Graph{}
	b := &cfgBuilder{
		ir: ir, fi: fi, g: g,
		labeledBreak:    make(map[string]*Node),
		labeledContinue: make(map[string]*Node),
	}
	g.Entry = b.newNode(nil)
	g.Exit = b.newNode(nil)
	end := b.stmts(fi.Body.List, g.Entry)
	// Falling off the end of the body is an implicit return.
	b.exitVia(end)
	return g
}

// exitVia connects cur to the function exit through the deferred-op replay
// chain (reverse registration order).
func (b *cfgBuilder) exitVia(cur *Node) {
	if cur == nil {
		return
	}
	for i := len(b.deferred) - 1; i >= 0; i-- {
		for _, op := range b.deferred[i] {
			n := b.newNode(op)
			edge(cur, n)
			cur = n
		}
	}
	edge(cur, b.g.Exit)
}

// opsChain appends one node per recognized op found in expr (pre-order,
// skipping function-literal bodies) and returns the new tail.
func (b *cfgBuilder) opsChain(cur *Node, exprs ...ast.Node) *Node {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		for _, op := range b.opsIn(e) {
			n := b.newNode(op)
			edge(cur, n)
			cur = n
		}
	}
	return cur
}

// opsIn extracts recognized ops from an expression tree without descending
// into function literals (their bodies are separate analysis units).
func (b *cfgBuilder) opsIn(root ast.Node) []*OpCall {
	var out []*OpCall
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op := b.ir.classify(b.fi, call); op != nil {
				out = append(out, op)
				if op.Kind == OpPanic {
					return true // still record args' ops? args precede panic; keep walking
				}
			}
		}
		return true
	})
	return out
}

// stmts builds a statement list; returns the tail node, or nil if control
// cannot fall through (return/branch on every path).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *Node) *Node {
	for _, s := range list {
		cur = b.stmt(s, cur)
		if cur == nil {
			return nil
		}
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *Node) *Node {
	if cur == nil {
		return nil
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(st.List, cur)

	case *ast.ExprStmt:
		cur = b.opsChain(cur, st.X)
		// A statement-level panic(...) terminates the path.
		if call, ok := st.X.(*ast.CallExpr); ok {
			if op := b.ir.classify(b.fi, call); op != nil && op.Kind == OpPanic {
				return nil
			}
		}
		return cur

	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			cur = b.opsChain(cur, e)
		}
		for _, e := range st.Lhs {
			cur = b.opsChain(cur, e)
		}
		return cur

	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt:
		return b.opsChain(cur, s)

	case *ast.DeferStmt:
		// The deferred call runs at exit; argument expressions evaluate now
		// but the instrumented apps never bury ops in defer arguments, so
		// the whole chain is replayed at exits.
		b.deferred = append(b.deferred, b.opsIn(st.Call))
		return cur

	case *ast.ReturnStmt:
		for _, e := range st.Results {
			cur = b.opsChain(cur, e)
		}
		b.exitVia(cur)
		return nil

	case *ast.LabeledStmt:
		b.pendingLabel = st.Label.Name
		return b.stmt(st.Stmt, cur)

	case *ast.IfStmt:
		cur = b.stmt2(st.Init, cur)
		cur = b.opsChain(cur, st.Cond)
		after := b.newNode(nil)
		thenEnd := b.stmts(st.Body.List, cur)
		edge(thenEnd, after)
		if st.Else != nil {
			elseEnd := b.stmt(st.Else, cur)
			edge(elseEnd, after)
		} else {
			edge(cur, after)
		}
		if len(after.Succs) == 0 && thenEnd == nil && st.Else != nil {
			// Both arms terminated; "after" is unreachable only if no edges
			// lead in. Detect by absence of predecessors: handled naturally
			// because we return after regardless — unreachable nodes simply
			// never get visited by the dataflow.
		}
		return after

	case *ast.ForStmt:
		label := b.takeLabel()
		cur = b.stmt2(st.Init, cur)
		head := b.newNode(nil)
		edge(cur, head)
		condEnd := b.opsChain(head, st.Cond)
		after := b.newNode(nil)
		if st.Cond != nil {
			edge(condEnd, after)
		}
		b.pushLoop(after, head, label)
		bodyEnd := b.stmts(st.Body.List, condEnd)
		bodyEnd = b.stmt2(st.Post, bodyEnd)
		edge(bodyEnd, head)
		b.popLoop(label, true)
		return after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newNode(nil)
		edge(cur, head)
		condEnd := b.opsChain(head, st.X)
		after := b.newNode(nil)
		edge(condEnd, after) // zero-iteration path
		b.pushLoop(after, head, label)
		bodyEnd := b.stmts(st.Body.List, condEnd)
		edge(bodyEnd, head)
		b.popLoop(label, true)
		return after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		cur = b.stmt2(st.Init, cur)
		cur = b.opsChain(cur, st.Tag)
		after := b.newNode(nil)
		b.pushLoop(after, nil, label) // break targets after; no continue
		hasDefault := false
		// Build clause bodies first so fallthrough can target the next one.
		clauses := st.Body.List
		bodyStart := make([]*Node, len(clauses))
		for i := range clauses {
			bodyStart[i] = b.newNode(nil)
		}
		for i, cl := range clauses {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			guard := cur
			for _, e := range cc.List {
				guard = b.opsChain(guard, e)
			}
			edge(guard, bodyStart[i])
			var next *Node
			if i+1 < len(clauses) {
				next = bodyStart[i+1]
			}
			end := b.caseBody(cc.Body, bodyStart[i], next)
			edge(end, after)
		}
		if !hasDefault {
			edge(cur, after)
		}
		b.popLoop(label, false)
		return after

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		cur = b.stmt2(st.Init, cur)
		cur = b.opsChain(cur, st.Assign)
		after := b.newNode(nil)
		b.pushLoop(after, nil, label)
		hasDefault := false
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			end := b.stmts(cc.Body, cur)
			edge(end, after)
		}
		if !hasDefault {
			edge(cur, after)
		}
		b.popLoop(label, false)
		return after

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newNode(nil)
		b.pushLoop(after, nil, label)
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			c := b.opsChain(cur, cc.Comm)
			end := b.stmts(cc.Body, c)
			edge(end, after)
		}
		if len(st.Body.List) == 0 {
			edge(cur, after)
		}
		b.popLoop(label, false)
		return after

	case *ast.BranchStmt:
		switch st.Tok.String() {
		case "break":
			if st.Label != nil {
				edge(cur, b.labeledBreak[st.Label.Name])
			} else if len(b.breakTargets) > 0 {
				edge(cur, b.breakTargets[len(b.breakTargets)-1])
			}
		case "continue":
			if st.Label != nil {
				edge(cur, b.labeledContinue[st.Label.Name])
			} else if len(b.continueTargets) > 0 {
				edge(cur, b.continueTargets[len(b.continueTargets)-1])
			}
		case "goto":
			// Unsupported: the path ends here. The instrumented apps do not
			// use goto; a goto-reached region simply goes unanalyzed.
		case "fallthrough":
			// Handled by caseBody.
		}
		return nil

	default:
		// Anything else (empty statements, etc.): extract ops generically.
		return b.opsChain(cur, s)
	}
}

// caseBody builds a switch case body, wiring a trailing fallthrough to the
// next clause's body start.
func (b *cfgBuilder) caseBody(list []ast.Stmt, cur, next *Node) *Node {
	for i, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && i == len(list)-1 {
			edge(cur, next)
			return nil
		}
		cur = b.stmt(s, cur)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// stmt2 builds an optional simple statement (if/for init, for post).
func (b *cfgBuilder) stmt2(s ast.Stmt, cur *Node) *Node {
	if s == nil {
		return cur
	}
	return b.stmt(s, cur)
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushLoop(brk, cont *Node, label string) {
	b.breakTargets = append(b.breakTargets, brk)
	if cont != nil {
		b.continueTargets = append(b.continueTargets, cont)
	}
	if label != "" {
		b.labeledBreak[label] = brk
		if cont != nil {
			b.labeledContinue[label] = cont
		}
	}
}

func (b *cfgBuilder) popLoop(label string, hadCont bool) {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if hadCont {
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	}
	if label != "" {
		delete(b.labeledBreak, label)
		delete(b.labeledContinue, label)
	}
}
