package cfgir

// The loader: stdlib-only (go/ast, go/parser, go/types) package loading for
// a single module, so the static tools need no dependency beyond the
// standard library.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// PmrtPath is the import path of the instrumented runtime package whose API
// the static analyses key on.
const PmrtPath = "hawkset/internal/pmrt"

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of a single module from source.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string // absolute path of the directory containing go.mod
	ModulePath string // module path from go.mod

	pkgs    map[string]*Package // keyed by import path
	loading map[string]bool     // cycle guard
	std     types.Importer      // stdlib fallback (type-checks GOROOT source)
}

// NewLoader creates a loader rooted at the module containing dir (dir or an
// ancestor must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("cfgir: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  root,
		ModulePath: modPath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("cfgir: no module directive in %s", gomod)
}

// Expand resolves command-line package patterns to directories. Supported
// forms: "./...", "./path/...", "./path", an absolute or relative directory,
// or a module-rooted import path.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = l.ModuleDir
			}
		}
		if rest, ok := strings.CutPrefix(pat, l.ModulePath); ok && !filepath.IsAbs(pat) {
			pat = filepath.Join(l.ModuleDir, strings.TrimPrefix(rest, "/"))
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.ModuleDir, pat)
		}
		if !recursive {
			if hasGoFiles(pat) {
				add(pat)
			}
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// testdata trees hold deliberate-misuse fixtures and are not
			// part of the build, exactly as the go tool treats them.
			if p != pat && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathOf maps a module-internal directory to its import path.
func (l *Loader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("cfgir: %s is outside module %s", dir, l.ModuleDir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the package in dir (non-test files only),
// loading module-internal imports recursively and stdlib imports from GOROOT
// source.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathOf(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("cfgir: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, n))
	}
	sort.Strings(names)
	for _, fn := range names {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("cfgir: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("cfgir: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// loaderImporter resolves module-internal import paths through the Loader
// and everything else through the GOROOT source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.load(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}
