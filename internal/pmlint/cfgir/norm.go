package cfgir

// Expression normalization: the spelling under which addresses and locks are
// compared, both within a function and (via TranslateBase) across calls.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// NormExpr renders e with the enclosing method's receiver identifier
// replaced by $recv, giving a spelling that is comparable across methods of
// the same type.
func (fi *FuncInfo) NormExpr(e ast.Expr) string {
	var b strings.Builder
	fi.render(&b, e)
	return b.String()
}

// NormBase renders the base of an address expression: parentheses stripped
// and trailing "+ offset" / "- offset" arithmetic dropped, so addr, addr+8
// and addr+hdr*2 all normalize to addr. Heuristic by design — the analyzer
// works at the granularity the dynamic tool resolves with real addresses.
func (fi *FuncInfo) NormBase(e ast.Expr) string {
	return fi.NormExpr(BaseExpr(e))
}

// BaseExpr strips parentheses and trailing +/- offset arithmetic.
func BaseExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.BinaryExpr:
			if x.Op == token.ADD || x.Op == token.SUB {
				e = x.X
				continue
			}
			return e
		default:
			return e
		}
	}
}

func (fi *FuncInfo) render(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		if fi.Recv != "" && x.Name == fi.Recv {
			b.WriteString("$recv")
		} else {
			b.WriteString(x.Name)
		}
	case *ast.SelectorExpr:
		fi.render(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		fi.render(b, x.X)
		b.WriteByte('[')
		fi.render(b, x.Index)
		b.WriteByte(']')
	case *ast.ParenExpr:
		fi.render(b, x.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		fi.render(b, x.X)
	case *ast.UnaryExpr:
		b.WriteString(x.Op.String())
		fi.render(b, x.X)
	case *ast.BinaryExpr:
		fi.render(b, x.X)
		b.WriteString(x.Op.String())
		fi.render(b, x.Y)
	case *ast.BasicLit:
		b.WriteString(x.Value)
	case *ast.CallExpr:
		fi.render(b, x.Fun)
		b.WriteByte('(')
		for i, arg := range x.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			fi.render(b, arg)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}

// RootIdent returns the leading identifier of a normalized base ("$recv" of
// "$recv.segs", "addr" of "addr", "" when the base is not identifier-rooted).
func RootIdent(base string) string {
	for i := 0; i < len(base); i++ {
		c := base[i]
		if c == '.' || c == '[' || c == '(' || c == '+' || c == '-' || c == '*' {
			return base[:i]
		}
	}
	return base
}

// ParamIndex returns the index of name in params, or -1.
func ParamIndex(params []string, name string) int {
	for i, p := range params {
		if p == name {
			return i
		}
	}
	return -1
}

// TranslateBase maps a callee-summary base to the caller's spelling at a
// given call site: parameter-rooted bases substitute the corresponding
// argument's base; $recv-rooted bases carry over verbatim when the call's
// receiver is the caller's own receiver; closure bases rooted at captured
// variables carry over verbatim (the call site shares the defining scope).
// Returns "" when untranslatable.
func TranslateBase(site *OpCall, callee *FuncInfo, base string) string {
	root := RootIdent(base)
	if i := ParamIndex(callee.Params, root); i >= 0 {
		if i >= len(site.Args) || site.Args[i] == "" {
			return ""
		}
		return site.Args[i] + base[len(root):]
	}
	if root == "$recv" {
		if site.RecvIsRecv {
			return base
		}
		return ""
	}
	if callee.IsClosure {
		return base
	}
	return ""
}
