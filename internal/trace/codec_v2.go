package trace

// Trace format v2: the columnar block codec.
//
// v1 spends one varint per event field, so a 100k-op trace costs ~6 bytes
// per event and decode spends its time in per-byte bufio varint reads. v2
// exploits the structure the instrumentation gives every trace — threads run
// in cooperative stretches, consecutive accesses from one thread touch
// nearby addresses, and most events repeat the previous event's site and
// size — with three mechanisms:
//
//   - TID run-length coding: events are grouped into runs of consecutive
//     events from one thread (tid uvarint, count uvarint), so the thread ID
//     is paid once per scheduling stretch instead of once per event.
//   - Per-thread delta coding: Addr/Site/Lock/Kid are encoded as zigzag
//     varints of the difference from the same thread's previous value. A
//     packed tag byte carries the kind (low 4 bits) plus same-as-last flags
//     (site, size) that elide the field entirely.
//   - Columnar blocks: events are framed into ~64 KiB blocks, and within a
//     block each field lives in its own stream — run headers, tag bytes,
//     site deltas, addr deltas, sizes, lock deltas, kid deltas. Homogeneous
//     streams decode in tight per-field loops and compress far better than
//     interleaved bytes (the tag and TID streams are extremely repetitive).
//     Each block carries an event count, raw/stored lengths, and a CRC-32
//     of the raw payload; per-thread delta state resets at block
//     boundaries, so every block is independently decodable and corruption
//     is detected block-locally. Blocks are optionally flate-compressed
//     (header flag, stdlib only).
//
// A zero-event "block" terminates the stream and carries the total event
// count as a cross-check; the file/segment must end immediately after it.
//
// File layout (after the shared "HWKT" magic):
//
//	version uvarint        2
//	flags   byte           bit0 = blocks are flate-compressed
//	nsites  uvarint        site frames, exactly as v1
//	sites   nsites × frame
//	blocks  until terminator:
//	  nevents   uvarint    events in this block (0 = terminator)
//	  rawLen    uvarint    raw (uncompressed) payload bytes
//	  storedLen uvarint    stored payload bytes (= rawLen when uncompressed)
//	  crc       4 bytes    CRC-32 (IEEE) of the raw payload, little-endian
//	  payload   storedLen bytes
//	terminator:
//	  nevents = 0 uvarint, then total-events uvarint; then EOF
//
// Block payload (raw):
//
//	nruns  uvarint         TID runs in this block (≥1)
//	len[7] uvarint × 7     byte length of each stream, in order; the
//	                       lengths plus this header sum to rawLen exactly
//	runs   stream 0        nruns × (tid uvarint, count uvarint), counts ≥1
//	                       and summing to nevents
//	tags   stream 1        one byte per event: kind | 0x10 sameSite |
//	                       0x20 sameSize (so len = nevents)
//	sites  stream 2        zigzag Δ site per event without sameSite
//	addrs  stream 3        zigzag Δ addr per store/load/ntstore/alloc/flush
//	sizes  stream 4        size uvarint per access without sameSize
//	locks  stream 5        zigzag Δ lock per lockacq/lockrel
//	kids   stream 6        zigzag Δ kid per create/join
//
// Everything decoded is untrusted: lengths and counts are capped before
// allocation, stream lengths must tile the payload exactly and every stream
// must be fully consumed, CRC mismatches and tag bits that do not apply to
// the kind are errors, and all decoded IDs are range-checked, so a v2 trace
// accepted by the decoder is internally consistent exactly like a v1 one.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"hawkset/internal/sites"
)

const (
	// blockTarget is the encoder's raw-payload flush threshold.
	blockTarget = 64 << 10
	// maxBlockRaw bounds a decoded block's claimed raw payload: the encoder
	// never exceeds blockTarget plus one event, so anything near this cap is
	// corrupt — but a generous bound keeps the format forward-compatible
	// with larger encoder blocks.
	maxBlockRaw = 1 << 20
	// maxBlockStored bounds the stored payload; flate can expand
	// incompressible input slightly.
	maxBlockStored = maxBlockRaw + maxBlockRaw/64 + 64
)

// v2 header flag bits.
const flagFlate = 0x01

// Packed tag byte: kind in the low nibble, field-elision flags above it.
const (
	tagKindMask = 0x0f
	tagSameSite = 0x10 // site equals the thread's previous event's site
	tagSameSize = 0x20 // size equals the thread's previous access's size
)

// The per-block stream count and their indexes into the length header.
const (
	streamRuns = iota
	streamTags
	streamSites
	streamAddrs
	streamSizes
	streamLocks
	streamKids
	numStreams
)

// zigzag maps signed deltas onto small uvarints (LSB = sign).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvAt reads one uvarint at b[p:], returning the value and the position
// after it, or a negative position on truncation/overflow. Single-byte
// values — the overwhelmingly common case for deltas — take an inlinable
// fast path; everything else falls through to uvAtSlow.
func uvAt(b []byte, p int) (uint64, int) {
	if uint(p) < uint(len(b)) && b[p] < 0x80 {
		return uint64(b[p]), p + 1
	}
	return uvAtSlow(b, p)
}

func uvAtSlow(b []byte, p int) (uint64, int) {
	if p >= len(b) {
		return 0, -1
	}
	v, n := binary.Uvarint(b[p:])
	if n <= 0 {
		return 0, -1
	}
	return v, p + n
}

// threadState is the per-thread delta context. It resets at every block
// boundary so blocks decode independently.
type threadState struct {
	site sites.ID
	addr uint64
	size uint32
	lock uint64
	kid  int32
}

// threadStates holds the per-thread delta contexts, dense-indexed by TID.
// Real traces number threads from zero, so the dense slice is tiny and a
// lookup is a bounds check — the per-run map lookup this replaces dominated
// decode on traces with short scheduling stretches. Pathological IDs (the
// format allows any int32) fall back to a map rather than sizing the slice.
type threadStates struct {
	dense  []threadState
	sparse map[int32]threadState
}

// denseTIDLimit bounds the dense slice (and the per-block reset cost) at
// 4096 threads; beyond that the sparse map takes over.
const denseTIDLimit = 1 << 12

func (ts *threadStates) load(tid int32) threadState {
	if int(tid) < len(ts.dense) {
		return ts.dense[tid]
	}
	if tid >= denseTIDLimit {
		return ts.sparse[tid]
	}
	return threadState{}
}

// ref returns a pointer to the dense context for tid, growing the slice on
// first sight. Only valid for tid < denseTIDLimit; the pointer is good until
// the next ref call (growth reallocates). The decode hot loop mutates the
// context in place through it, skipping the load/store struct copies that
// dominate run-switch-heavy traces.
func (ts *threadStates) ref(tid int) *threadState {
	if tid >= len(ts.dense) {
		ts.dense = append(ts.dense, make([]threadState, tid+1-len(ts.dense))...)
	}
	return &ts.dense[tid]
}

func (ts *threadStates) store(tid int32, st threadState) {
	if tid < denseTIDLimit {
		if int(tid) >= len(ts.dense) {
			ts.dense = append(ts.dense, make([]threadState, int(tid)+1-len(ts.dense))...)
		}
		ts.dense[tid] = st
		return
	}
	if ts.sparse == nil {
		ts.sparse = make(map[int32]threadState)
	}
	ts.sparse[tid] = st
}

// reset zeroes all contexts (block boundary), keeping the dense capacity.
func (ts *threadStates) reset() {
	clear(ts.dense)
	clear(ts.sparse)
}

// ---------------------------------------------------------------- encoding

// blockWriter streams events into framed v2 blocks. It is the shared core
// of the file Encoder and the v2 segment codec: events go in one at a time,
// framed blocks come out on w, and nothing is ever buffered beyond the
// current block.
type blockWriter struct {
	w        io.Writer
	compress bool

	// One buffer per columnar stream of the open block.
	streams [numStreams][]byte
	nruns   int

	runTID  int32
	runLen  uint64
	cur     threadState // delta state of the open run's thread
	haveCur bool

	blockEvents uint64
	total       uint64

	state threadStates

	asm  []byte // block assembly scratch (header + streams)
	comp bytes.Buffer
	fw   *flate.Writer
}

func newBlockWriter(w io.Writer, compress bool) *blockWriter {
	return &blockWriter{w: w, compress: compress}
}

// streamBytes is the raw payload size the open block has accumulated.
func (bw *blockWriter) streamBytes() int {
	n := 0
	for _, s := range bw.streams {
		n += len(s)
	}
	return n
}

// write appends one event to the open run, flushing a block when the target
// size is reached.
func (bw *blockWriter) write(e Event) error {
	if e.TID < 0 || e.Kid < 0 || e.Site < 0 {
		return fmt.Errorf("trace: negative ID in event (tid=%d kid=%d site=%d)", e.TID, e.Kid, e.Site)
	}
	if !bw.haveCur || e.TID != bw.runTID {
		bw.closeRun()
		bw.runTID = e.TID
		bw.cur = bw.state.load(e.TID)
		bw.haveCur = true
	}
	st := &bw.cur

	tag := byte(e.Kind)
	sameSite := e.Site == st.site
	if sameSite {
		tag |= tagSameSite
	}
	isAccess := false
	switch e.Kind {
	case KStore, KLoad, KNTStore, KAlloc:
		isAccess = true
		if e.Size == st.size {
			tag |= tagSameSize
		}
	case KFlush, KFence, KLockAcq, KLockRel, KThreadCreate, KThreadJoin:
	default:
		return fmt.Errorf("trace: cannot encode event kind %d", e.Kind)
	}

	bw.streams[streamTags] = append(bw.streams[streamTags], tag)
	if !sameSite {
		bw.streams[streamSites] = binary.AppendUvarint(bw.streams[streamSites], zigzag(int64(e.Site)-int64(st.site)))
		st.site = e.Site
	}
	switch e.Kind {
	case KStore, KLoad, KNTStore, KAlloc, KFlush:
		bw.streams[streamAddrs] = binary.AppendUvarint(bw.streams[streamAddrs], zigzag(int64(e.Addr-st.addr)))
		st.addr = e.Addr
		if isAccess && tag&tagSameSize == 0 {
			bw.streams[streamSizes] = binary.AppendUvarint(bw.streams[streamSizes], uint64(e.Size))
			st.size = e.Size
		}
	case KLockAcq, KLockRel:
		bw.streams[streamLocks] = binary.AppendUvarint(bw.streams[streamLocks], zigzag(int64(e.Lock-st.lock)))
		st.lock = e.Lock
	case KThreadCreate, KThreadJoin:
		bw.streams[streamKids] = binary.AppendUvarint(bw.streams[streamKids], zigzag(int64(e.Kid)-int64(st.kid)))
		st.kid = e.Kid
	}
	bw.runLen++
	bw.blockEvents++
	bw.total++

	if bw.streamBytes() >= blockTarget {
		return bw.flushBlock()
	}
	return nil
}

// closeRun appends the open run's header (tid, count) to the run stream and
// stores its thread's delta state back.
func (bw *blockWriter) closeRun() {
	if bw.runLen == 0 {
		return
	}
	bw.state.store(bw.runTID, bw.cur)
	bw.streams[streamRuns] = binary.AppendUvarint(bw.streams[streamRuns], uint64(bw.runTID))
	bw.streams[streamRuns] = binary.AppendUvarint(bw.streams[streamRuns], bw.runLen)
	bw.nruns++
	bw.runLen = 0
}

// flushBlock assembles, frames and writes the current block, then resets the
// per-thread delta state so the next block decodes independently.
func (bw *blockWriter) flushBlock() error {
	bw.closeRun()
	if bw.blockEvents == 0 {
		return nil
	}
	bw.asm = bw.asm[:0]
	bw.asm = binary.AppendUvarint(bw.asm, uint64(bw.nruns))
	for _, s := range bw.streams {
		bw.asm = binary.AppendUvarint(bw.asm, uint64(len(s)))
	}
	for _, s := range bw.streams {
		bw.asm = append(bw.asm, s...)
	}
	raw := bw.asm
	stored := raw
	if bw.compress {
		bw.comp.Reset()
		if bw.fw == nil {
			fw, err := flate.NewWriter(&bw.comp, flate.BestSpeed)
			if err != nil {
				return err
			}
			bw.fw = fw
		} else {
			bw.fw.Reset(&bw.comp)
		}
		if _, err := bw.fw.Write(raw); err != nil {
			return err
		}
		if err := bw.fw.Close(); err != nil {
			return err
		}
		stored = bw.comp.Bytes()
	}
	hdr := make([]byte, 0, 3*binary.MaxVarintLen64+4)
	hdr = binary.AppendUvarint(hdr, bw.blockEvents)
	hdr = binary.AppendUvarint(hdr, uint64(len(raw)))
	hdr = binary.AppendUvarint(hdr, uint64(len(stored)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(raw))
	if _, err := bw.w.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.w.Write(stored); err != nil {
		return err
	}
	for i := range bw.streams {
		bw.streams[i] = bw.streams[i][:0]
	}
	bw.nruns = 0
	bw.blockEvents = 0
	bw.haveCur = false
	bw.state.reset()
	return nil
}

// finish flushes the last block and writes the terminator.
func (bw *blockWriter) finish() error {
	if err := bw.flushBlock(); err != nil {
		return err
	}
	trailer := make([]byte, 0, 1+binary.MaxVarintLen64)
	trailer = binary.AppendUvarint(trailer, 0)
	trailer = binary.AppendUvarint(trailer, bw.total)
	_, err := bw.w.Write(trailer)
	return err
}

// Encoder streams a v2 trace to w: the header and site table are written up
// front, events go out block by block as Write is called, and Close frames
// the terminator. Nothing proportional to the trace is held in memory, so
// arbitrarily long traces encode in O(block) space.
//
// The site table must be complete before NewEncoder runs — its frames are
// the header. That matches both producers: cmd/hawkset encodes after the
// instrumented run, and segments (which do interleave frames and events)
// carry their own incremental frame lists.
type Encoder struct {
	bw     *bufio.Writer
	blocks *blockWriter
	closed bool
}

// NewEncoder writes the v2 header and site table and returns the streaming
// encoder. Only format v2 supports streaming (v1's header carries the event
// count, which a stream cannot know up front); use EncodeWith for v1.
func NewEncoder(w io.Writer, st *sites.Table, o Options) (*Encoder, error) {
	v := o.Version
	if v == 0 {
		v = DefaultVersion
	}
	if v != 2 {
		return nil, fmt.Errorf("trace: streaming encoder requires format v2 (got v%d)", v)
	}
	frames := st.Frames()
	if len(frames) == 0 {
		return nil, errMissingFrame0
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	putUvarint(bw, version2)
	flags := byte(0)
	if o.Compress {
		flags |= flagFlate
	}
	bw.WriteByte(flags) //nolint:errcheck // bufio defers errors to Flush
	putUvarint(bw, uint64(len(frames)-1))
	for _, f := range frames[1:] {
		putString(bw, f.File)
		putUvarint(bw, uint64(f.Line))
		putString(bw, f.Func)
	}
	return &Encoder{bw: bw, blocks: newBlockWriter(bw, o.Compress)}, nil
}

// Write appends one event to the stream.
func (e *Encoder) Write(ev Event) error {
	if e.closed {
		return errors.New("trace: encoder already closed")
	}
	return e.blocks.write(ev)
}

// Close flushes the final block, writes the terminator, and flushes the
// underlying writer. The encoder is unusable afterwards.
func (e *Encoder) Close() error {
	if e.closed {
		return errors.New("trace: encoder already closed")
	}
	e.closed = true
	if err := e.blocks.finish(); err != nil {
		return err
	}
	return e.bw.Flush()
}

// ---------------------------------------------------------------- decoding

// blockReader streams events out of a v2 block sequence, decoding one whole
// block at a time into a reused buffer. It is the shared decode core of the
// file Decoder and DecodeSegment: fill decodes the next block in bulk, next
// wraps it with a one-event-at-a-time view. Both return io.EOF only after a
// well-formed terminator; the caller enforces that the underlying input
// ends there.
type blockReader struct {
	br        *bufio.Reader
	compress  bool
	siteLimit sites.ID

	events []Event // decoded events of the current block (reused)
	idx    int     // next event for the streaming view

	state   threadStates
	claimed uint64 // events promised by block headers so far
	done    bool

	raw    []byte         // current block payload, decompressed
	stored []byte         // scratch for the stored payload
	fr     io.ReadCloser  // flate reader, reused via flate.Resetter
	frRst  flate.Resetter // same reader, reset interface
}

func newBlockReader(br *bufio.Reader, compress bool, siteLimit sites.ID) *blockReader {
	return &blockReader{br: br, compress: compress, siteLimit: siteLimit}
}

// next yields the next event, loading blocks as needed.
func (r *blockReader) next() (Event, error) {
	for r.idx >= len(r.events) {
		if _, err := r.fill(); err != nil {
			return Event{}, err
		}
	}
	e := r.events[r.idx]
	r.idx++
	return e, nil
}

// fill loads and decodes the next block, returning its events (valid until
// the following fill call), or io.EOF after a well-formed terminator.
func (r *blockReader) fill() ([]Event, error) {
	r.events = r.events[:0]
	r.idx = 0
	if r.done {
		return nil, io.EOF
	}
	nev, rawLen, storedLen, crc, err := r.readFrameHeader()
	if err != nil {
		return nil, err
	}
	if r.done {
		return nil, io.EOF
	}
	if cap(r.stored) < storedLen {
		r.stored = make([]byte, storedLen)
	}
	r.stored = r.stored[:storedLen]
	if _, err := io.ReadFull(r.br, r.stored); err != nil {
		return nil, fmt.Errorf("trace: truncated block payload: %w", noEOF(err))
	}
	raw, err := r.materialize(rawLen, r.stored, crc)
	if err != nil {
		return nil, err
	}
	if cap(r.events) < nev {
		r.events = make([]Event, nev)
	}
	r.events = r.events[:nev]
	if err := r.decodeBlock(raw, r.events); err != nil {
		return nil, err
	}
	return r.events, nil
}

// noEOF maps a bare io.EOF to io.ErrUnexpectedEOF: inside a block frame,
// running out of input is truncation, never a clean end. The only io.EOF a
// blockReader emits is the one after a well-formed terminator.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// readFrameHeader reads and validates one block frame header (the payload
// bytes follow on r.br) — or consumes the terminator, verifies its declared
// total against the block headers seen, and flags completion. On a
// terminator it returns all zeros with r.done set.
func (r *blockReader) readFrameHeader() (nev, rawLen, storedLen int, crc uint32, err error) {
	nev64, err := binary.ReadUvarint(r.br)
	if err != nil {
		// EOF here means the stream ended without a terminator: truncated.
		return 0, 0, 0, 0, fmt.Errorf("trace: truncated block stream: %w", noEOF(err))
	}
	if nev64 == 0 {
		declared, err := binary.ReadUvarint(r.br)
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("trace: truncated terminator: %w", noEOF(err))
		}
		if declared != r.claimed {
			return 0, 0, 0, 0, fmt.Errorf("trace: terminator declares %d events, blocks carry %d", declared, r.claimed)
		}
		r.done = true
		return 0, 0, 0, 0, nil
	}
	rawLen64, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("trace: truncated block header: %w", noEOF(err))
	}
	if rawLen64 > maxBlockRaw {
		return 0, 0, 0, 0, fmt.Errorf("trace: implausible block size %d (corrupt header?)", rawLen64)
	}
	if nev64 > rawLen64 {
		// Every event costs at least its tag byte, so this also bounds the
		// per-block event allocation by maxBlockRaw.
		return 0, 0, 0, 0, fmt.Errorf("trace: block claims %d events in %d bytes", nev64, rawLen64)
	}
	storedLen64, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("trace: truncated block header: %w", noEOF(err))
	}
	if storedLen64 > maxBlockStored {
		return 0, 0, 0, 0, fmt.Errorf("trace: implausible stored block size %d", storedLen64)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.br, crcBuf[:]); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("trace: truncated block CRC: %w", noEOF(err))
	}
	r.claimed += nev64
	return int(nev64), int(rawLen64), int(storedLen64), binary.LittleEndian.Uint32(crcBuf[:]), nil
}

// materialize turns a stored payload into the raw payload: decompressing if
// the stream is flate-compressed (into a reused buffer, valid until the next
// call), and verifying the CRC either way.
func (r *blockReader) materialize(rawLen int, stored []byte, wantCRC uint32) ([]byte, error) {
	raw := stored
	if r.compress {
		if cap(r.raw) < rawLen {
			r.raw = make([]byte, rawLen)
		}
		r.raw = r.raw[:rawLen]
		if r.fr == nil {
			r.fr = flate.NewReader(bytes.NewReader(stored))
			r.frRst = r.fr.(flate.Resetter)
		} else if err := r.frRst.Reset(bytes.NewReader(stored), nil); err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(r.fr, r.raw); err != nil {
			return nil, fmt.Errorf("trace: block decompression: %w", err)
		}
		// The compressed stream must end exactly at rawLen bytes.
		var one [1]byte
		if n, _ := r.fr.Read(one[:]); n != 0 {
			return nil, errors.New("trace: compressed block longer than declared raw size")
		}
		raw = r.raw
	} else if len(stored) != rawLen {
		return nil, fmt.Errorf("trace: uncompressed block stored %d bytes but declares %d raw", len(stored), rawLen)
	}
	if got := crc32.ChecksumIEEE(raw); got != wantCRC {
		return nil, fmt.Errorf("trace: block CRC mismatch (got %#08x, want %#08x)", got, wantCRC)
	}
	return raw, nil
}

// decodeBlock parses the columnar payload raw into dst, which must hold
// exactly the block's declared event count. The payload is untrusted: the
// stream lengths must tile it exactly, run counts must sum to the event
// count, and every stream must be consumed in full.
func (r *blockReader) decodeBlock(raw []byte, dst []Event) error {
	nev := len(dst)
	nruns64, pos := uvAt(raw, 0)
	if pos < 0 {
		return errors.New("trace: truncated block stream header")
	}
	if nruns64 == 0 || nruns64 > uint64(nev) {
		return fmt.Errorf("trace: block with %d events claims %d runs", nev, nruns64)
	}
	nruns := int(nruns64)
	var lens [numStreams]int
	need := 0
	for i := range lens {
		v, p := uvAt(raw, pos)
		if p < 0 {
			return errors.New("trace: truncated block stream header")
		}
		if v > maxBlockRaw {
			return fmt.Errorf("trace: implausible stream length %d", v)
		}
		lens[i] = int(v)
		need += int(v)
		pos = p
	}
	if pos+need != len(raw) {
		return fmt.Errorf("trace: block streams sum to %d bytes, payload has %d", pos+need, len(raw))
	}
	var str [numStreams][]byte
	for i, n := range lens {
		str[i] = raw[pos : pos+n]
		pos += n
	}
	if len(str[streamTags]) != nev {
		return fmt.Errorf("trace: tag stream has %d bytes for %d events", len(str[streamTags]), nev)
	}

	r.state.reset()

	runs, tags := str[streamRuns], str[streamTags]
	sitesS, addrs, sizesS, locks, kids := str[streamSites], str[streamAddrs], str[streamSizes], str[streamLocks], str[streamKids]
	rp, sp, ap, zp, lp, kp := 0, 0, 0, 0, 0, 0
	ei := 0
	for ri := 0; ri < nruns; ri++ {
		// Run headers get the same hand-inlined one-byte fast path as the
		// delta streams: thread-churny traces carry nearly one header per
		// event, and both fields are almost always a single byte.
		var tid64, cnt64 uint64
		if uint(rp) < uint(len(runs)) && runs[rp] < 0x80 {
			tid64 = uint64(runs[rp])
			rp++
		} else if tid64, rp = uvAtSlow(runs, rp); rp < 0 {
			return errors.New("trace: truncated run header")
		}
		if tid64 > math.MaxInt32 {
			return fmt.Errorf("trace: thread ID %d out of range", tid64)
		}
		if uint(rp) < uint(len(runs)) && runs[rp] < 0x80 {
			cnt64 = uint64(runs[rp])
			rp++
		} else if cnt64, rp = uvAtSlow(runs, rp); rp < 0 {
			return errors.New("trace: truncated run header")
		}
		if cnt64 == 0 || cnt64 > uint64(nev-ei) {
			return fmt.Errorf("trace: run of %d events exceeds block remainder %d", cnt64, nev-ei)
		}
		tid := int32(tid64)
		// Runs average barely over an event on thread-churny traces, so the
		// per-run context switch is as hot as the per-event work: dense TIDs
		// mutate their context in place through a pointer, sparse ones stage
		// through a stack copy.
		var st *threadState
		if tid64 < denseTIDLimit {
			st = r.state.ref(int(tid64))
		} else {
			tmp := r.state.load(tid)
			st = &tmp
		}
		// Delta state in locals for the duration of the run; the one-byte
		// varint fast path is written out inline at each stream read — uvAt
		// is beyond the compiler's inlining budget, and these reads are the
		// hottest code in the decoder.
		site, addr, size, lock, kid := st.site, st.addr, st.size, st.lock, st.kid
		for end := ei + int(cnt64); ei < end; ei++ {
			tag := tags[ei]
			kind := Kind(tag & tagKindMask)
			if tag&tagSameSite == 0 {
				var d uint64
				if uint(sp) < uint(len(sitesS)) && sitesS[sp] < 0x80 {
					d = uint64(sitesS[sp])
					sp++
				} else if d, sp = uvAtSlow(sitesS, sp); sp < 0 {
					return errors.New("trace: truncated site stream")
				}
				s := int64(site) + unzigzag(d)
				if s < 0 || s >= int64(r.siteLimit) {
					return fmt.Errorf("trace: site ID %d out of range (table has %d frames)", s, r.siteLimit)
				}
				site = sites.ID(s)
			}
			e := &dst[ei]
			*e = Event{Kind: kind, TID: tid, Site: site}
			switch kind {
			case KLoad, KStore, KNTStore, KAlloc:
				// Address deltas get a two-byte fast path on top of the
				// one-byte one: scattered heaps (zipf-bucketed allocations)
				// put most deltas in the 2–3 byte range, where the generic
				// Uvarint loop is the single hottest slow path. When the
				// one-byte test fails with ap in range, addrs[ap] >= 0x80
				// is implied, so the two-byte arm needs no re-check.
				var d uint64
				if uint(ap) < uint(len(addrs)) && addrs[ap] < 0x80 {
					d = uint64(addrs[ap])
					ap++
				} else if uint(ap+1) < uint(len(addrs)) && addrs[ap+1] < 0x80 {
					d = uint64(addrs[ap]&0x7f) | uint64(addrs[ap+1])<<7
					ap += 2
				} else if d, ap = uvAtSlow(addrs, ap); ap < 0 {
					return errors.New("trace: truncated addr stream")
				}
				addr += uint64(unzigzag(d))
				if tag&tagSameSize == 0 {
					var sz uint64
					if uint(zp) < uint(len(sizesS)) && sizesS[zp] < 0x80 {
						sz = uint64(sizesS[zp])
						zp++
					} else if sz, zp = uvAtSlow(sizesS, zp); zp < 0 {
						return errors.New("trace: truncated size stream")
					}
					if sz > math.MaxUint32 {
						return fmt.Errorf("trace: access size %d out of range", sz)
					}
					size = uint32(sz)
				}
				e.Addr, e.Size = addr, size
			case KFlush:
				if tag&tagSameSize != 0 {
					return fmt.Errorf("trace: tag %#02x carries flags invalid for kind %s", tag, kind)
				}
				d, p := uvAt(addrs, ap)
				if p < 0 {
					return errors.New("trace: truncated addr stream")
				}
				ap = p
				addr += uint64(unzigzag(d))
				e.Addr = addr
			case KFence:
				if tag&tagSameSize != 0 {
					return fmt.Errorf("trace: tag %#02x carries flags invalid for kind %s", tag, kind)
				}
			case KLockAcq, KLockRel:
				if tag&tagSameSize != 0 {
					return fmt.Errorf("trace: tag %#02x carries flags invalid for kind %s", tag, kind)
				}
				// Lock addresses scatter like data addresses (per-bucket
				// locks), so the lock stream shares the addr stream's
				// two-byte fast path.
				var d uint64
				if uint(lp) < uint(len(locks)) && locks[lp] < 0x80 {
					d = uint64(locks[lp])
					lp++
				} else if uint(lp+1) < uint(len(locks)) && locks[lp+1] < 0x80 {
					d = uint64(locks[lp]&0x7f) | uint64(locks[lp+1])<<7
					lp += 2
				} else if d, lp = uvAtSlow(locks, lp); lp < 0 {
					return errors.New("trace: truncated lock stream")
				}
				lock += uint64(unzigzag(d))
				e.Lock = lock
			case KThreadCreate, KThreadJoin:
				if tag&tagSameSize != 0 {
					return fmt.Errorf("trace: tag %#02x carries flags invalid for kind %s", tag, kind)
				}
				d, p := uvAt(kids, kp)
				if p < 0 {
					return errors.New("trace: truncated kid stream")
				}
				kp = p
				k := int64(kid) + unzigzag(d)
				if k < 0 || k > math.MaxInt32 {
					return fmt.Errorf("trace: thread ID %d out of range", k)
				}
				kid = int32(k)
				e.Kid = kid
			default:
				return fmt.Errorf("trace: unknown kind %d", kind)
			}
		}
		st.site, st.addr, st.size, st.lock, st.kid = site, addr, size, lock, kid
		if tid >= denseTIDLimit {
			r.state.store(tid, *st)
		}
	}
	if ei != nev {
		return fmt.Errorf("trace: runs deliver %d events, block declares %d", ei, nev)
	}
	// Every stream must be consumed exactly: leftover bytes are smuggled
	// garbage the CRC cannot distinguish from data.
	for i, cursor := range [numStreams]int{rp, nev, sp, ap, zp, lp, kp} {
		if cursor != lens[i] {
			return fmt.Errorf("trace: stream %d has %d bytes unconsumed", i, lens[i]-cursor)
		}
	}
	return nil
}
