package trace

// Builder constructs traces programmatically with human-readable site
// labels. It is used by unit tests and the paper's toy examples (Figures 1c,
// 2 and 3), where stable site names beat Go file:line locations.
type Builder struct {
	T *Trace
}

// NewBuilder returns a builder over a fresh trace.
func NewBuilder() *Builder { return &Builder{T: New()} }

// Store appends a store event.
func (b *Builder) Store(tid int32, addr uint64, size uint32, label string) *Builder {
	b.T.Append(Event{Kind: KStore, TID: tid, Addr: addr, Size: size, Site: b.T.Sites.Named(label)})
	return b
}

// Load appends a load event.
func (b *Builder) Load(tid int32, addr uint64, size uint32, label string) *Builder {
	b.T.Append(Event{Kind: KLoad, TID: tid, Addr: addr, Size: size, Site: b.T.Sites.Named(label)})
	return b
}

// NTStore appends a non-temporal store event.
func (b *Builder) NTStore(tid int32, addr uint64, size uint32, label string) *Builder {
	b.T.Append(Event{Kind: KNTStore, TID: tid, Addr: addr, Size: size, Site: b.T.Sites.Named(label)})
	return b
}

// Flush appends a cache-line flush event for the line containing addr.
func (b *Builder) Flush(tid int32, addr uint64, label string) *Builder {
	b.T.Append(Event{Kind: KFlush, TID: tid, Addr: addr / 64 * 64, Site: b.T.Sites.Named(label)})
	return b
}

// Fence appends a fence event.
func (b *Builder) Fence(tid int32, label string) *Builder {
	b.T.Append(Event{Kind: KFence, TID: tid, Site: b.T.Sites.Named(label)})
	return b
}

// Persist appends flush+fence for [addr, addr+size): the pmem_persist idiom.
func (b *Builder) Persist(tid int32, addr uint64, size uint32, label string) *Builder {
	first := addr / 64
	last := (addr + uint64(size) - 1) / 64
	for l := first; l <= last; l++ {
		b.Flush(tid, l*64, label)
	}
	return b.Fence(tid, label)
}

// Lock appends a lock-acquire event.
func (b *Builder) Lock(tid int32, lock uint64, label string) *Builder {
	b.T.Append(Event{Kind: KLockAcq, TID: tid, Lock: lock, Site: b.T.Sites.Named(label)})
	return b
}

// Unlock appends a lock-release event.
func (b *Builder) Unlock(tid int32, lock uint64, label string) *Builder {
	b.T.Append(Event{Kind: KLockRel, TID: tid, Lock: lock, Site: b.T.Sites.Named(label)})
	return b
}

// Create appends a thread-create event.
func (b *Builder) Create(parent, child int32, label string) *Builder {
	b.T.Append(Event{Kind: KThreadCreate, TID: parent, Kid: child, Site: b.T.Sites.Named(label)})
	return b
}

// Join appends a thread-join event.
func (b *Builder) Join(waiter, child int32, label string) *Builder {
	b.T.Append(Event{Kind: KThreadJoin, TID: waiter, Kid: child, Site: b.T.Sites.Named(label)})
	return b
}
