package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"hawkset/internal/sites"
)

func sampleTrace() *Trace {
	b := NewBuilder()
	b.Create(0, 1, "main.spawn")
	b.Lock(1, 7, "worker.lock")
	b.Store(1, 0x100, 8, "worker.store")
	b.Persist(1, 0x100, 8, "worker.persist")
	b.Unlock(1, 7, "worker.unlock")
	b.Load(0, 0x100, 8, "main.load")
	b.NTStore(0, 0x200, 8, "main.nt")
	b.Fence(0, "main.fence")
	b.Join(0, 1, "main.join")
	return b.T
}

func TestBuilderProducesEvents(t *testing.T) {
	tr := sampleTrace()
	counts := tr.Counts()
	if counts[KStore] != 1 || counts[KLoad] != 1 || counts[KFlush] != 1 ||
		counts[KFence] != 2 || counts[KLockAcq] != 1 || counts[KLockRel] != 1 ||
		counts[KNTStore] != 1 || counts[KThreadCreate] != 1 || counts[KThreadJoin] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if tr.Threads() != 2 {
		t.Fatalf("Threads = %d, want 2", tr.Threads())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("events differ:\n got %v\nwant %v", got.Events, tr.Events)
	}
	for _, e := range tr.Events {
		want := tr.Sites.Lookup(e.Site).String()
		if got := got.Sites.Lookup(e.Site).String(); got != want {
			t.Fatalf("site %d = %q, want %q", e.Site, got, want)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{5, len(raw) / 2, len(raw) - 1} {
		if _, err := Decode(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestEventString(t *testing.T) {
	tr := sampleTrace()
	var all []string
	for _, e := range tr.Events {
		all = append(all, e.String())
	}
	s := strings.Join(all, "\n")
	for _, want := range []string{"store", "load", "flush", "fence", "lock", "unlock", "create", "join", "ntstore"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, s)
		}
	}
}

// Property: encode∘decode is the identity on random event sequences.
func TestRoundTripProperty(t *testing.T) {
	kinds := []Kind{KStore, KLoad, KNTStore, KFlush, KFence, KLockAcq, KLockRel, KThreadCreate, KThreadJoin}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		site := tr.Sites.Intern(sites.Frame{File: "x.go", Line: 1, Func: "f"})
		for i := 0; i < 100; i++ {
			e := Event{Kind: kinds[rng.Intn(len(kinds))], TID: int32(rng.Intn(8)), Site: site}
			switch e.Kind {
			case KStore, KLoad, KNTStore:
				e.Addr = uint64(rng.Intn(1 << 20))
				e.Size = uint32(rng.Intn(64) + 1)
			case KFlush:
				e.Addr = uint64(rng.Intn(1<<20)) / 64 * 64
			case KLockAcq, KLockRel:
				e.Lock = uint64(rng.Intn(100))
			case KThreadCreate, KThreadJoin:
				e.Kid = int32(rng.Intn(8))
			}
			tr.Append(e)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Events, tr.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Regression: Encode wrote len(frames)-1 into the header, so a site table
// without the reserved frame 0 (a zero-value Table) underflowed the count to
// 2⁶⁴−1 and produced a file every decoder rejects as corrupt. It must fail
// loudly at encode time instead, writing nothing.
func TestEncodeRejectsMissingReservedFrame(t *testing.T) {
	tr := &Trace{Sites: &sites.Table{}}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err == nil {
		t.Fatal("Encode accepted a site table without the reserved frame 0")
	}
	if buf.Len() != 0 {
		t.Fatalf("Encode wrote %d bytes before failing", buf.Len())
	}
	// A well-formed (fresh) trace still round-trips through the same guard.
	ok := New()
	ok.Append(Event{Kind: KFence, TID: 1, Site: 0})
	buf.Reset()
	if err := Encode(&buf, ok); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, ok.Events) {
		t.Fatalf("round trip mismatch: %v != %v", got.Events, ok.Events)
	}
}
