package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hawkset/internal/sites"
)

// Binary trace format:
//
//	magic   "HWKT"            4 bytes
//	version uvarint           currently 1
//	nsites  uvarint           number of site frames (excluding reserved 0)
//	sites   nsites × frame    frame = file string, line uvarint, func string
//	nevents uvarint
//	events  nevents × event   event = kind byte, tid uvarint, then
//	                          kind-dependent fields, all uvarint
//	strings are uvarint length + bytes
//
// The format exists so traces can be captured once (cmd/hawkset -trace-out)
// and analyzed repeatedly or inspected with cmd/tracedump, mirroring the
// decoupling between HawkSet's instrumentation and analysis stages.

const (
	magic   = "HWKT"
	version = 1
)

var errBadMagic = errors.New("trace: bad magic (not a HawkSet trace file)")

// Decoding limits. Counts in the header are untrusted varints: a corrupt or
// malicious file can claim 2^64 sites or events, so no count is trusted for
// allocation — preallocation is capped and the real length is whatever the
// stream actually delivers before EOF.
const (
	// maxSites bounds the site table. Each decoded site consumes at least
	// three input bytes, so this also bounds header-driven looping.
	maxSites = 1 << 24
	// maxEventPrealloc caps the event-slice preallocation; larger traces
	// grow by append, paying only for events actually present.
	maxEventPrealloc = 1 << 20
	// maxString bounds a single decoded string (file or function name).
	maxString = 1 << 20
)

// Encode writes the trace in the binary format.
func Encode(w io.Writer, t *Trace) error {
	frames := t.Sites.Frames()
	if len(frames) == 0 {
		// A well-formed site table always carries the reserved frame 0; the
		// header stores len(frames)-1, which would underflow to 2⁶⁴−1 here
		// and produce a file every decoder rejects as corrupt.
		return errors.New("trace: site table missing reserved frame 0")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	putUvarint(bw, version)
	putUvarint(bw, uint64(len(frames)-1))
	for _, f := range frames[1:] {
		putString(bw, f.File)
		putUvarint(bw, uint64(f.Line))
		putString(bw, f.Func)
	}
	putUvarint(bw, uint64(len(t.Events)))
	for _, e := range t.Events {
		if err := encodeEvent(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeEvent(bw *bufio.Writer, e Event) error {
	if err := bw.WriteByte(byte(e.Kind)); err != nil {
		return err
	}
	putUvarint(bw, uint64(e.TID))
	putUvarint(bw, uint64(e.Site))
	switch e.Kind {
	case KStore, KLoad, KNTStore, KAlloc:
		putUvarint(bw, e.Addr)
		putUvarint(bw, uint64(e.Size))
	case KFlush:
		putUvarint(bw, e.Addr)
	case KFence:
	case KLockAcq, KLockRel:
		putUvarint(bw, e.Lock)
	case KThreadCreate, KThreadJoin:
		putUvarint(bw, uint64(e.Kid))
	default:
		return fmt.Errorf("trace: cannot encode event kind %d", e.Kind)
	}
	return nil
}

// Decode reads a binary trace.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var mg [4]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return nil, err
	}
	if string(mg[:]) != magic {
		return nil, errBadMagic
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	t := New()
	nsites, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nsites > maxSites {
		return nil, fmt.Errorf("trace: implausible site count %d (corrupt header?)", nsites)
	}
	for i := uint64(0); i < nsites; i++ {
		file, err := getString(br)
		if err != nil {
			return nil, fmt.Errorf("trace: site %d: %w", i+1, err)
		}
		line, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: site %d: %w", i+1, err)
		}
		fn, err := getString(br)
		if err != nil {
			return nil, fmt.Errorf("trace: site %d: %w", i+1, err)
		}
		t.Sites.Append(sites.Frame{File: file, Line: int(line), Func: fn})
	}
	nevents, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// The claimed count is untrusted: cap the preallocation and let append
	// grow the slice only as far as the stream actually decodes.
	prealloc := nevents
	if prealloc > maxEventPrealloc {
		prealloc = maxEventPrealloc
	}
	t.Events = make([]Event, 0, prealloc)
	// IDs are validated against the decoded table: nsites frames plus the
	// reserved ID 0 — analyses index the site table without re-checking.
	siteLimit := sites.ID(nsites + 1)
	for i := uint64(0); i < nevents; i++ {
		e, err := decodeEvent(br, siteLimit)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		t.Events = append(t.Events, e)
	}
	return t, nil
}

func decodeEvent(br *bufio.Reader, siteLimit sites.ID) (Event, error) {
	var e Event
	k, err := br.ReadByte()
	if err != nil {
		return e, err
	}
	e.Kind = Kind(k)
	tid, err := binary.ReadUvarint(br)
	if err != nil {
		return e, err
	}
	if tid > math.MaxInt32 {
		return e, fmt.Errorf("thread ID %d out of range", tid)
	}
	e.TID = int32(tid)
	site, err := binary.ReadUvarint(br)
	if err != nil {
		return e, err
	}
	if site >= uint64(siteLimit) {
		return e, fmt.Errorf("site ID %d out of range (table has %d frames)", site, siteLimit)
	}
	e.Site = sites.ID(site)
	switch e.Kind {
	case KStore, KLoad, KNTStore, KAlloc:
		if e.Addr, err = binary.ReadUvarint(br); err != nil {
			return e, err
		}
		sz, err := binary.ReadUvarint(br)
		if err != nil {
			return e, err
		}
		if sz > math.MaxUint32 {
			return e, fmt.Errorf("access size %d out of range", sz)
		}
		e.Size = uint32(sz)
	case KFlush:
		if e.Addr, err = binary.ReadUvarint(br); err != nil {
			return e, err
		}
	case KFence:
	case KLockAcq, KLockRel:
		if e.Lock, err = binary.ReadUvarint(br); err != nil {
			return e, err
		}
	case KThreadCreate, KThreadJoin:
		kid, err := binary.ReadUvarint(br)
		if err != nil {
			return e, err
		}
		if kid > math.MaxInt32 {
			return e, fmt.Errorf("thread ID %d out of range", kid)
		}
		e.Kid = int32(kid)
	default:
		return e, fmt.Errorf("unknown kind %d", k)
	}
	return e, nil
}

func putUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}

func putString(bw *bufio.Writer, s string) {
	putUvarint(bw, uint64(len(s)))
	bw.WriteString(s) //nolint:errcheck // bufio defers errors to Flush
}

func getString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxString {
		return "", fmt.Errorf("trace: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
