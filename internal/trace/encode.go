package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hawkset/internal/sites"
)

// Binary trace formats, both behind the same magic + version header:
//
//	magic   "HWKT"            4 bytes
//	version uvarint           1 or 2
//
// Format v1 (the original):
//
//	nsites  uvarint           number of site frames (excluding reserved 0)
//	sites   nsites × frame    frame = file string, line uvarint, func string
//	nevents uvarint
//	events  nevents × event   event = kind byte, tid uvarint, then
//	                          kind-dependent fields, all uvarint
//	strings are uvarint length + bytes
//
// Format v2 (delta-encoded, block-framed; layout in codec_v2.go) shares the
// site-table encoding and replaces the event section with CRC'd blocks.
//
// Decode reads both versions; Encode defaults to v2 (EncodeWith selects).
// The format exists so traces can be captured once (cmd/hawkset -trace-out)
// and analyzed repeatedly or inspected with cmd/tracedump, mirroring the
// decoupling between HawkSet's instrumentation and analysis stages. A
// decoder accepts input only up to the declared end: trailing bytes after
// the last event are an error, never silently ignored, so truncated-then-
// concatenated or padded files cannot masquerade as well-formed traces.

const (
	magic    = "HWKT"
	version1 = 1
	version2 = 2

	// DefaultVersion is the format Encode writes.
	DefaultVersion = version2
)

// Options selects the trace encoding.
type Options struct {
	// Version is the format version: 1 (one varint per field) or 2
	// (delta-encoded blocks). 0 means DefaultVersion.
	Version int
	// Compress flate-compresses v2 blocks (ignored for v1).
	Compress bool
}

func (o Options) version() int {
	if o.Version == 0 {
		return DefaultVersion
	}
	return o.Version
}

var (
	errBadMagic      = errors.New("trace: bad magic (not a HawkSet trace file)")
	errMissingFrame0 = errors.New("trace: site table missing reserved frame 0")
)

// Decoding limits. Counts in the header are untrusted varints: a corrupt or
// malicious file can claim 2^64 sites or events, so no count is trusted for
// allocation — preallocation is capped and the real length is whatever the
// stream actually delivers before EOF.
const (
	// maxSites bounds the site table. Each decoded site consumes at least
	// three input bytes, so this also bounds header-driven looping.
	maxSites = 1 << 24
	// maxEventPrealloc caps the event-slice preallocation; larger traces
	// grow by append, paying only for events actually present.
	maxEventPrealloc = 1 << 20
	// maxString bounds a single decoded string (file or function name).
	maxString = 1 << 20
)

// Encode writes the trace in the default binary format (v2).
func Encode(w io.Writer, t *Trace) error {
	return EncodeWith(w, t, Options{})
}

// EncodeWith writes the trace in the selected format version.
func EncodeWith(w io.Writer, t *Trace, o Options) error {
	switch o.version() {
	case version1:
		return encodeV1(w, t)
	case version2:
		enc, err := NewEncoder(w, t.Sites, o)
		if err != nil {
			return err
		}
		for _, e := range t.Events {
			if err := enc.Write(e); err != nil {
				return err
			}
		}
		return enc.Close()
	default:
		return fmt.Errorf("trace: unsupported encode version %d", o.Version)
	}
}

func encodeV1(w io.Writer, t *Trace) error {
	frames := t.Sites.Frames()
	if len(frames) == 0 {
		// A well-formed site table always carries the reserved frame 0; the
		// header stores len(frames)-1, which would underflow to 2⁶⁴−1 here
		// and produce a file every decoder rejects as corrupt.
		return errMissingFrame0
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	putUvarint(bw, version1)
	putUvarint(bw, uint64(len(frames)-1))
	for _, f := range frames[1:] {
		putString(bw, f.File)
		putUvarint(bw, uint64(f.Line))
		putString(bw, f.Func)
	}
	putUvarint(bw, uint64(len(t.Events)))
	var scratch []byte
	for _, e := range t.Events {
		var err error
		scratch, err = appendEventV1(scratch[:0], e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(scratch); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendEventV1 appends the v1 encoding of one event: kind byte, tid, site,
// then the kind-dependent fields, all uvarint. Shared by the v1 file format
// and the v1 segment codec (both append-style, no intermediate buffer).
func appendEventV1(dst []byte, e Event) ([]byte, error) {
	dst = append(dst, byte(e.Kind))
	dst = binary.AppendUvarint(dst, uint64(e.TID))
	dst = binary.AppendUvarint(dst, uint64(e.Site))
	switch e.Kind {
	case KStore, KLoad, KNTStore, KAlloc:
		dst = binary.AppendUvarint(dst, e.Addr)
		dst = binary.AppendUvarint(dst, uint64(e.Size))
	case KFlush:
		dst = binary.AppendUvarint(dst, e.Addr)
	case KFence:
	case KLockAcq, KLockRel:
		dst = binary.AppendUvarint(dst, e.Lock)
	case KThreadCreate, KThreadJoin:
		dst = binary.AppendUvarint(dst, uint64(e.Kid))
	default:
		return nil, fmt.Errorf("trace: cannot encode event kind %d", e.Kind)
	}
	return dst, nil
}

// Decode reads a binary trace in either format version, requiring the input
// to end exactly after the last declared event.
func Decode(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Sites: d.Sites()}
	switch d.version {
	case version1:
		acc := newEventAccum(d.declared)
		for {
			e, err := d.Next()
			if err == io.EOF {
				t.Events = acc.events()
				return t, nil
			}
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", acc.len(), err)
			}
			acc.add(e)
		}
	default: // version2
		// Slurp the stored block frames first: the headers reveal the exact
		// event total before any payload is decoded, so each block decodes
		// straight into its slice of a right-sized array — no per-event
		// appends, no growth copies, no final concatenation. Holding the
		// stored payloads costs at most the input size, a fraction of the
		// decoded events they expand into.
		type frameMeta struct {
			nev, rawLen, off, n int
			crc                 uint32
		}
		b := d.blocks
		var metas []frameMeta
		var slab []byte
		for !b.done {
			nev, rawLen, storedLen, crc, err := b.readFrameHeader()
			if err != nil {
				return nil, err
			}
			if b.done {
				break
			}
			off := len(slab)
			slab = append(slab, make([]byte, storedLen)...)
			if _, err := io.ReadFull(d.br, slab[off:]); err != nil {
				return nil, fmt.Errorf("trace: truncated block payload: %w", noEOF(err))
			}
			metas = append(metas, frameMeta{nev: nev, rawLen: rawLen, off: off, n: storedLen, crc: crc})
		}
		if err := d.requireEOF(); err != nil {
			return nil, err
		}
		acc := newEventAccum(b.claimed)
		for _, m := range metas {
			raw, err := b.materialize(m.rawLen, slab[m.off:m.off+m.n], m.crc)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", acc.len(), err)
			}
			if err := b.decodeBlock(raw, acc.reserve(m.nev)); err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", acc.len(), err)
			}
		}
		t.Events = acc.events()
		return t, nil
	}
}

// eventAccum accumulates a stream of events into geometrically growing
// chunks, concatenating once at the end. Compared to a plain append loop it
// bounds the copying at one extra pass over the data — append's repeated
// growslice reallocations were ~45% of decode CPU on million-event traces —
// while still never trusting a header-declared count for more than the
// (capped) first-chunk preallocation.
type eventAccum struct {
	chunks [][]Event
	cur    []Event
	n      int // events in chunks (excluding cur)
}

func newEventAccum(hint uint64) *eventAccum {
	if hint == 0 {
		hint = 4096
	}
	if hint > maxEventPrealloc {
		hint = maxEventPrealloc
	}
	return &eventAccum{cur: make([]Event, 0, hint)}
}

func (a *eventAccum) len() int { return a.n + len(a.cur) }

// grow retires the current chunk and starts a new one with room for at
// least min more events.
func (a *eventAccum) grow(min int) {
	a.n += len(a.cur)
	a.chunks = append(a.chunks, a.cur)
	next := a.n
	if next > maxEventPrealloc {
		next = maxEventPrealloc
	}
	if next < min {
		next = min
	}
	a.cur = make([]Event, 0, next)
}

func (a *eventAccum) add(e Event) {
	if len(a.cur) == cap(a.cur) {
		a.grow(1)
	}
	a.cur = append(a.cur, e)
}

// reserve extends the accumulator by n events and returns the (contiguous,
// uninitialized) slice for the caller to fill in place.
func (a *eventAccum) reserve(n int) []Event {
	if cap(a.cur)-len(a.cur) < n {
		a.grow(n)
	}
	a.cur = a.cur[:len(a.cur)+n]
	return a.cur[len(a.cur)-n:]
}

// events returns the accumulated slice, reusing the sole chunk when no
// growth happened (the common case: a v1 trace within its declared count).
func (a *eventAccum) events() []Event {
	if len(a.chunks) == 0 {
		return a.cur
	}
	out := make([]Event, 0, a.len())
	for _, c := range a.chunks {
		out = append(out, c...)
	}
	return append(out, a.cur...)
}

// Decoder streams a binary trace: the header and site table are read by
// NewDecoder, then Next yields one event at a time, so a trace can be fed
// straight into an online analysis (hawkset.Stream) without materializing
// the event slice. Next returns io.EOF only after verifying the input ends
// where the format says it ends (declared count for v1, terminator for v2).
type Decoder struct {
	br      *bufio.Reader
	version int
	sites   *sites.Table

	// v1 state.
	declared  uint64 // v1: events promised by the header (0 for v2)
	seen      uint64
	siteLimit sites.ID

	// v2 state.
	blocks *blockReader

	done bool
}

// NewDecoder reads the header and site table. The input is untrusted; every
// count is bounded before allocation.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	var mg [4]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return nil, err
	}
	if string(mg[:]) != magic {
		return nil, errBadMagic
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	d := &Decoder{br: br, version: int(v)}
	var compress bool
	switch v {
	case version1:
	case version2:
		flags, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if flags&^flagFlate != 0 {
			return nil, fmt.Errorf("trace: unknown v2 header flags %#02x", flags)
		}
		compress = flags&flagFlate != 0
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nsites, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nsites > maxSites {
		return nil, fmt.Errorf("trace: implausible site count %d (corrupt header?)", nsites)
	}
	d.sites = sites.NewTable()
	for i := uint64(0); i < nsites; i++ {
		f, err := decodeFrame(br)
		if err != nil {
			return nil, fmt.Errorf("trace: site %d: %w", i+1, err)
		}
		d.sites.Append(f)
	}
	// IDs are validated against the decoded table: nsites frames plus the
	// reserved ID 0 — analyses index the site table without re-checking.
	d.siteLimit = sites.ID(nsites + 1)
	switch v {
	case version1:
		if d.declared, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
	case version2:
		d.blocks = newBlockReader(br, compress, d.siteLimit)
	}
	return d, nil
}

// Version reports the decoded format version (1 or 2).
func (d *Decoder) Version() int { return d.version }

// Sites returns the decoded site table (complete after NewDecoder).
func (d *Decoder) Sites() *sites.Table { return d.sites }

// Next returns the next event, or io.EOF after the last one. Before
// reporting io.EOF the decoder requires the underlying input to be
// exhausted: a trace followed by trailing bytes — a truncated file
// concatenated with another, corruption past the declared count — is a
// decode error, not a silent success.
func (d *Decoder) Next() (Event, error) {
	if d.done {
		return Event{}, io.EOF
	}
	switch d.version {
	case version1:
		if d.seen == d.declared {
			if err := d.requireEOF(); err != nil {
				return Event{}, err
			}
			return Event{}, io.EOF
		}
		e, err := decodeEvent(d.br, d.siteLimit)
		if err != nil {
			return Event{}, err
		}
		d.seen++
		return e, nil
	default: // version2
		e, err := d.blocks.next()
		if err == io.EOF {
			if err := d.requireEOF(); err != nil {
				return Event{}, err
			}
			return Event{}, io.EOF
		}
		return e, err
	}
}

// requireEOF verifies no input remains, then marks the decoder finished.
func (d *Decoder) requireEOF() error {
	if _, err := d.br.ReadByte(); err != io.EOF {
		if err != nil {
			return err
		}
		return errors.New("trace: trailing data after final event")
	}
	d.done = true
	return nil
}

// decodeFrame parses one site frame (file, line, func).
func decodeFrame(br *bufio.Reader) (sites.Frame, error) {
	file, err := getString(br)
	if err != nil {
		return sites.Frame{}, err
	}
	line, err := binary.ReadUvarint(br)
	if err != nil {
		return sites.Frame{}, err
	}
	if line > math.MaxInt32 {
		return sites.Frame{}, fmt.Errorf("line %d out of range", line)
	}
	fn, err := getString(br)
	if err != nil {
		return sites.Frame{}, err
	}
	return sites.Frame{File: file, Line: int(line), Func: fn}, nil
}

func decodeEvent(br *bufio.Reader, siteLimit sites.ID) (Event, error) {
	var e Event
	k, err := br.ReadByte()
	if err != nil {
		return e, err
	}
	e.Kind = Kind(k)
	tid, err := binary.ReadUvarint(br)
	if err != nil {
		return e, err
	}
	if tid > math.MaxInt32 {
		return e, fmt.Errorf("thread ID %d out of range", tid)
	}
	e.TID = int32(tid)
	site, err := binary.ReadUvarint(br)
	if err != nil {
		return e, err
	}
	if site >= uint64(siteLimit) {
		return e, fmt.Errorf("site ID %d out of range (table has %d frames)", site, siteLimit)
	}
	e.Site = sites.ID(site)
	switch e.Kind {
	case KStore, KLoad, KNTStore, KAlloc:
		if e.Addr, err = binary.ReadUvarint(br); err != nil {
			return e, err
		}
		sz, err := binary.ReadUvarint(br)
		if err != nil {
			return e, err
		}
		if sz > math.MaxUint32 {
			return e, fmt.Errorf("access size %d out of range", sz)
		}
		e.Size = uint32(sz)
	case KFlush:
		if e.Addr, err = binary.ReadUvarint(br); err != nil {
			return e, err
		}
	case KFence:
	case KLockAcq, KLockRel:
		if e.Lock, err = binary.ReadUvarint(br); err != nil {
			return e, err
		}
	case KThreadCreate, KThreadJoin:
		kid, err := binary.ReadUvarint(br)
		if err != nil {
			return e, err
		}
		if kid > math.MaxInt32 {
			return e, fmt.Errorf("thread ID %d out of range", kid)
		}
		e.Kid = int32(kid)
	default:
		return e, fmt.Errorf("unknown kind %d", k)
	}
	return e, nil
}

func putUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}

func putString(bw *bufio.Writer, s string) {
	putUvarint(bw, uint64(len(s)))
	bw.WriteString(s) //nolint:errcheck // bufio defers errors to Flush
}

func getString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxString {
		return "", fmt.Errorf("trace: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
