package trace

import (
	"bytes"
	"encoding/hex"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hawkset/internal/sites"
)

// bigTrace builds a multi-block trace (> 64 KiB of raw v2 payload) with the
// mixed per-thread locality real instrumentation produces.
func bigTrace(n int) *Trace {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	siteIDs := make([]sites.ID, 40)
	for i := range siteIDs {
		siteIDs[i] = tr.Sites.Named("site" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	addrs := make([]uint64, 8)
	for len(tr.Events) < n {
		tid := int32(rng.Intn(8))
		// A scheduling stretch: one thread runs for a while.
		for burst := rng.Intn(50) + 1; burst > 0 && len(tr.Events) < n; burst-- {
			site := siteIDs[rng.Intn(len(siteIDs))]
			switch rng.Intn(10) {
			case 0:
				tr.Append(Event{Kind: KLockAcq, TID: tid, Lock: uint64(rng.Intn(8)), Site: site})
			case 1:
				tr.Append(Event{Kind: KLockRel, TID: tid, Lock: uint64(rng.Intn(8)), Site: site})
			case 2:
				tr.Append(Event{Kind: KFlush, TID: tid, Addr: addrs[tid] / 64 * 64, Site: site})
				tr.Append(Event{Kind: KFence, TID: tid, Site: site})
			case 3:
				tr.Append(Event{Kind: KLoad, TID: tid, Addr: addrs[tid], Size: 8, Site: site})
			default:
				addrs[tid] += uint64(rng.Intn(256))
				tr.Append(Event{Kind: KStore, TID: tid, Addr: addrs[tid], Size: uint32(1 << rng.Intn(4)), Site: site})
			}
		}
	}
	return tr
}

// TestGoldenV1Fixture pins the v1 format byte-for-byte: the committed
// fixture must decode to the sample trace, and re-encoding that trace as v1
// must reproduce the committed bytes exactly. If either direction drifts,
// previously captured traces are no longer readable.
func TestGoldenV1Fixture(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_v1.hwkt"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden v1 fixture no longer decodes: %v", err)
	}
	want := sampleTrace()
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Fatalf("golden fixture events differ:\n got %v\nwant %v", got.Events, want.Events)
	}
	if !reflect.DeepEqual(got.Sites.Frames(), want.Sites.Frames()) {
		t.Fatalf("golden fixture site tables differ")
	}
	var reenc bytes.Buffer
	if err := EncodeWith(&reenc, want, Options{Version: 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc.Bytes(), raw) {
		t.Fatalf("v1 re-encode is not byte-identical to the committed fixture (%d vs %d bytes)",
			reenc.Len(), len(raw))
	}
}

// TestDecodeRejectsTrailingGarbage is the regression for the bug where
// Decode stopped reading at the declared event count and silently accepted
// whatever followed. Both versions must require EOF after the last event.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	for _, o := range []Options{{Version: 1}, {Version: 2}, {Version: 2, Compress: true}} {
		var buf bytes.Buffer
		if err := EncodeWith(&buf, sampleTrace(), o); err != nil {
			t.Fatal(err)
		}
		clean := append([]byte(nil), buf.Bytes()...)
		if _, err := Decode(bytes.NewReader(clean)); err != nil {
			t.Fatalf("v%d: clean trace rejected: %v", o.version(), err)
		}
		for _, tail := range [][]byte{{0x00}, {0xFF}, []byte("HWKT")} {
			dirty := append(append([]byte(nil), clean...), tail...)
			if _, err := Decode(bytes.NewReader(dirty)); err == nil {
				t.Fatalf("v%d: trace with %d trailing bytes accepted", o.version(), len(tail))
			}
		}
	}
}

// TestCrossVersionRoundTrip: v1 encode → decode → v2 encode → decode yields
// an identical trace (and back), the compatibility contract that lets old
// captures be re-encoded into the new format losslessly.
func TestCrossVersionRoundTrip(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), bigTrace(30000)} {
		var v1buf bytes.Buffer
		if err := EncodeWith(&v1buf, tr, Options{Version: 1}); err != nil {
			t.Fatal(err)
		}
		fromV1, err := Decode(&v1buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range []Options{{Version: 2}, {Version: 2, Compress: true}} {
			var v2buf bytes.Buffer
			if err := EncodeWith(&v2buf, fromV1, o); err != nil {
				t.Fatal(err)
			}
			fromV2, err := Decode(&v2buf)
			if err != nil {
				t.Fatalf("decoding v2 re-encode (compress=%v): %v", o.Compress, err)
			}
			if !reflect.DeepEqual(fromV2.Events, tr.Events) {
				t.Fatalf("v1→v2 round trip changed events (compress=%v)", o.Compress)
			}
			if !reflect.DeepEqual(fromV2.Sites.Frames(), tr.Sites.Frames()) {
				t.Fatalf("v1→v2 round trip changed site table (compress=%v)", o.Compress)
			}
		}
	}
}

// TestStreamingEncodeDecode drives the streaming pair directly: Write one
// event at a time, Next them back out, never materializing a []Event.
func TestStreamingEncodeDecode(t *testing.T) {
	tr := bigTrace(30000)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		enc, err := NewEncoder(&buf, tr.Sites, Options{Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range tr.Events {
			if err := enc.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		if err := enc.Close(); err == nil {
			t.Fatal("second Close accepted")
		}

		dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Version() != 2 {
			t.Fatalf("Version = %d, want 2", dec.Version())
		}
		for i, want := range tr.Events {
			got, err := dec.Next()
			if err != nil {
				t.Fatalf("event %d (compress=%v): %v", i, compress, err)
			}
			if got != want {
				t.Fatalf("event %d: got %v want %v", i, got, want)
			}
		}
		if _, err := dec.Next(); err != io.EOF {
			t.Fatalf("after last event: %v, want io.EOF", err)
		}
		if _, err := dec.Next(); err != io.EOF {
			t.Fatalf("Next after EOF: %v, want io.EOF", err)
		}
	}
}

// TestV2CorruptionDetected: every single-byte corruption of a v2 trace that
// still decodes must decode to the same events — in practice the CRC or a
// structural check rejects it; what must never happen is a silent
// mis-decode into different events.
func TestV2CorruptionDetected(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rejected := 0
	for i := range raw {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= flip
			got, err := Decode(bytes.NewReader(mut))
			if err != nil {
				rejected++
				continue
			}
			if !reflect.DeepEqual(got.Events, tr.Events) {
				t.Fatalf("flipping byte %d (mask %#02x) silently mis-decoded the event payload", i, flip)
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no corruption was ever rejected; the CRC is not being checked")
	}
}

// TestV2UnknownFlagsRejected: reserved header flag bits must fail loudly so
// they stay available for future format extensions.
func TestV2UnknownFlagsRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Layout: "HWKT" (4) + version uvarint (1 byte for 2) + flags byte.
	raw[5] |= 0x80
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("unknown v2 header flag accepted")
	}
}

// TestV2SmallerThanV1 sanity-checks the point of the format on a
// realistically-shaped trace; the full ≥3× target is measured by
// BenchmarkTraceCodec on the 100k application workloads.
func TestV2SmallerThanV1(t *testing.T) {
	tr := bigTrace(30000)
	size := func(o Options) int {
		var buf bytes.Buffer
		if err := EncodeWith(&buf, tr, o); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	v1, v2, v2z := size(Options{Version: 1}), size(Options{Version: 2}), size(Options{Version: 2, Compress: true})
	if v2 >= v1 {
		t.Fatalf("v2 (%d bytes) not smaller than v1 (%d bytes)", v2, v1)
	}
	if v2z >= v1 {
		t.Fatalf("v2-flate (%d bytes) not smaller than v1 (%d bytes)", v2z, v1)
	}
	t.Logf("sizes: v1=%d v2=%d (%.2fx) v2-flate=%d (%.2fx)",
		v1, v2, float64(v1)/float64(v2), v2z, float64(v1)/float64(v2z))
}

// TestSegmentV1GoldenBytes pins the legacy segment layout byte-for-byte:
// pmcheckd segment logs written before the v2 codec must stay replayable,
// so the v1 encoder may never drift.
func TestSegmentV1GoldenBytes(t *testing.T) {
	seg := &Segment{
		Seq:    7,
		Frames: []sites.Frame{{File: "a.go", Line: 1, Func: "f"}},
		Events: []Event{{Kind: KStore, TID: 1, Addr: 64, Size: 8, Site: 1}},
	}
	enc, err := EncodeSegmentV1(nil, seg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := hex.DecodeString("070104612e676f010166010101014008")
	if !bytes.Equal(enc, want) {
		t.Fatalf("v1 segment encoding drifted:\n got %x\nwant %x", enc, want)
	}
	// Append-style: the caller's prefix is extended in place, not copied.
	pre := []byte{0xAA, 0xBB}
	enc2, err := EncodeSegmentV1(pre, seg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc2, append([]byte{0xAA, 0xBB}, want...)) {
		t.Fatalf("prefix not preserved: %x", enc2)
	}
	dec, err := DecodeSegment(enc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Seq != 7 || !reflect.DeepEqual(dec.Events, seg.Events) || !reflect.DeepEqual(dec.Frames, seg.Frames) {
		t.Fatalf("golden v1 segment decoded to %+v", dec)
	}
}

// TestSegmentCrossVersion: both segment encodings of the same segment
// decode identically, and PeekSegmentSeq reads the right sequence number
// out of each without full decoding.
func TestSegmentCrossVersion(t *testing.T) {
	tr := bigTrace(5000)
	seg := &Segment{Seq: 42, Frames: tr.Sites.Frames()[1:], Events: tr.Events}
	for _, o := range []Options{{Version: 1}, {Version: 2}, {Version: 2, Compress: true}} {
		enc, err := EncodeSegmentWith(nil, seg, o)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := PeekSegmentSeq(enc)
		if err != nil || seq != 42 {
			t.Fatalf("v%d: PeekSegmentSeq = %d, %v; want 42", o.version(), seq, err)
		}
		dec, err := DecodeSegment(enc, 1)
		if err != nil {
			t.Fatalf("v%d: %v", o.version(), err)
		}
		if dec.Seq != seg.Seq || !reflect.DeepEqual(dec.Events, seg.Events) || !reflect.DeepEqual(dec.Frames, seg.Frames) {
			t.Fatalf("v%d segment round trip differs", o.version())
		}
	}
}

// TestSegmentV1RejectsSeqZero: sequence numbers are 1-based; 0 would
// collide with the v2 marker byte, so the v1 encoder refuses it.
func TestSegmentV1RejectsSeqZero(t *testing.T) {
	if _, err := EncodeSegmentV1(nil, &Segment{Seq: 0}); err == nil {
		t.Fatal("v1 segment with seq 0 accepted")
	}
}

// TestSegmentFrameCountBomb is the regression for the unbounded-frame-
// preallocation bug: a corrupt header claiming 2^40 site frames must be
// rejected by the count cap, not drive the frame-decode loop.
func TestSegmentFrameCountBomb(t *testing.T) {
	// v1: seq=1, nsites=2^40.
	bombV1 := []byte{1, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40}
	if _, err := DecodeSegment(bombV1, 1); err == nil {
		t.Fatal("v1 frame-count bomb accepted")
	}
	// v2: marker, flags=0, seq=1, nsites=2^40.
	bombV2 := append([]byte{segMarker0, segMarker1, 2, 0, 1},
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40)
	if _, err := DecodeSegment(bombV2, 1); err == nil {
		t.Fatal("v2 frame-count bomb accepted")
	}
	// Just above the cap, with no frame data behind it: also rejected by the
	// cap (not by running out of input — the error must mention the count).
	over := binaryAppendUvarintHelper([]byte{1}, maxSegmentFrames+1)
	if _, err := DecodeSegment(over, 1); err == nil {
		t.Fatal("frame count just above cap accepted")
	}
}

func binaryAppendUvarintHelper(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// TestPeekSegmentSeqHostile: arbitrary prefixes never panic and truncated
// sequence numbers are errors.
func TestPeekSegmentSeqHostile(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{},
		{0x00},
		{0x00, 'S'},
		{0x00, 'X', 2, 0, 1},
		{0x00, 'S', 9, 0, 1},
		{0x00, 'S', 2, 0},
		{0x80},
		{0x80, 0x80},
	} {
		if _, err := PeekSegmentSeq(data); err == nil {
			t.Fatalf("PeekSegmentSeq(%x) accepted", data)
		}
	}
}
