package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the trace decoder. Decode consumes
// files from outside the process (cmd/hawkset -trace-in), so it must treat
// every byte as hostile: no panic, no unbounded allocation, and any
// successfully-decoded trace must be internally consistent (site IDs inside
// the decoded table) and re-encode to a byte stream that decodes to the
// same trace. Seeds cover both format versions: v1's count-prefixed layout
// and v2's block framing (tag bytes, deltas, CRC, flate).
func FuzzDecode(f *testing.F) {
	seeds := map[string][]byte{}
	for name, o := range map[string]Options{
		"v1":       {Version: 1},
		"v2":       {Version: 2},
		"v2-flate": {Version: 2, Compress: true},
	} {
		var buf bytes.Buffer
		if err := EncodeWith(&buf, sampleTrace(), o); err != nil {
			f.Fatal(err)
		}
		seeds[name] = buf.Bytes()
	}

	f.Add([]byte{})
	f.Add([]byte("NOPE...."))
	for _, raw := range seeds {
		f.Add(raw)
		f.Add(raw[:len(raw)/2]) // truncated mid-stream
		f.Add(append(append([]byte(nil), raw...), 0x42)) // trailing garbage
		// Bit-flipped variants: corruption that keeps the magic intact and
		// lands inside the version/flags bytes, counts, block headers, tag
		// bytes and CRCs.
		for _, bit := range []int{4*8 + 1, 5 * 8, 6 * 8, 8*8 + 3, (len(raw) / 2) * 8, (len(raw) - 2) * 8} {
			fl := append([]byte(nil), raw...)
			fl[bit/8] ^= 1 << (bit % 8)
			f.Add(fl)
		}
	}
	// A v1 header claiming 2^40 events with no data behind it: the decoder
	// must fail at EOF, not allocate for the claim.
	var bomb bytes.Buffer
	bomb.WriteString(magic)
	var tmp [binary.MaxVarintLen64]byte
	bomb.Write(tmp[:binary.PutUvarint(tmp[:], version1)])
	bomb.Write(tmp[:binary.PutUvarint(tmp[:], 0)])     // nsites
	bomb.Write(tmp[:binary.PutUvarint(tmp[:], 1<<40)]) // nevents
	f.Add(bomb.Bytes())
	// A v2 block header claiming a huge raw size: rejected by the block cap,
	// never allocated.
	var blockBomb bytes.Buffer
	blockBomb.WriteString(magic)
	blockBomb.Write(tmp[:binary.PutUvarint(tmp[:], version2)])
	blockBomb.WriteByte(0)                                  // flags
	blockBomb.Write(tmp[:binary.PutUvarint(tmp[:], 0)])     // nsites
	blockBomb.Write(tmp[:binary.PutUvarint(tmp[:], 1)])     // block nevents
	blockBomb.Write(tmp[:binary.PutUvarint(tmp[:], 1<<40)]) // rawLen
	f.Add(blockBomb.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected: all the decoder promises for bad input
		}
		frames := len(tr.Sites.Frames())
		for i, e := range tr.Events {
			if int(e.Site) >= frames || e.Site < 0 {
				t.Fatalf("event %d: site %d outside decoded table (%d frames)", i, e.Site, frames)
			}
			if e.TID < 0 || e.Kid < 0 {
				t.Fatalf("event %d: negative thread ID (%d/%d)", i, e.TID, e.Kid)
			}
		}
		for _, o := range []Options{{Version: 1}, {Version: 2}, {Version: 2, Compress: true}} {
			var buf bytes.Buffer
			if err := EncodeWith(&buf, tr, o); err != nil {
				t.Fatalf("re-encoding accepted trace (v%d): %v", o.Version, err)
			}
			again, err := Decode(&buf)
			if err != nil {
				t.Fatalf("re-decoding re-encoded trace (v%d): %v", o.Version, err)
			}
			if !reflect.DeepEqual(again.Events, tr.Events) {
				t.Fatalf("re-encode round trip changed events (v%d)", o.Version)
			}
		}
	})
}
