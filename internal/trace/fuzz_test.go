package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the trace decoder. Decode consumes
// files from outside the process (cmd/hawkset -trace-in), so it must treat
// every byte as hostile: no panic, no unbounded allocation, and any
// successfully-decoded trace must be internally consistent (site IDs inside
// the decoded table) and re-encode to a byte stream that decodes to the
// same trace.
func FuzzDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := Encode(&valid, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	raw := valid.Bytes()
	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte("NOPE...."))
	f.Add(raw[:len(raw)/2]) // truncated mid-stream
	// Bit-flipped variants of the valid trace: corruption that keeps the
	// magic intact and lands inside counts, IDs and string lengths.
	for _, bit := range []int{4*8 + 1, 6 * 8, 8*8 + 3, (len(raw) / 2) * 8, (len(raw) - 2) * 8} {
		fl := append([]byte(nil), raw...)
		fl[bit/8] ^= 1 << (bit % 8)
		f.Add(fl)
	}
	// A header claiming 2^40 events with no data behind it: the decoder
	// must fail at EOF, not allocate for the claim.
	var bomb bytes.Buffer
	bomb.WriteString(magic)
	var tmp [binary.MaxVarintLen64]byte
	bomb.Write(tmp[:binary.PutUvarint(tmp[:], version)])
	bomb.Write(tmp[:binary.PutUvarint(tmp[:], 0)])       // nsites
	bomb.Write(tmp[:binary.PutUvarint(tmp[:], 1<<40)])   // nevents
	f.Add(bomb.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected: all the decoder promises for bad input
		}
		frames := len(tr.Sites.Frames())
		for i, e := range tr.Events {
			if int(e.Site) >= frames || e.Site < 0 {
				t.Fatalf("event %d: site %d outside decoded table (%d frames)", i, e.Site, frames)
			}
			if e.TID < 0 || e.Kid < 0 {
				t.Fatalf("event %d: negative thread ID (%d/%d)", i, e.TID, e.Kid)
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decoding re-encoded trace: %v", err)
		}
		if !reflect.DeepEqual(again.Events, tr.Events) {
			t.Fatalf("re-encode round trip changed events")
		}
	})
}
