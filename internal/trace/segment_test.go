package trace

import (
	"reflect"
	"testing"

	"hawkset/internal/sites"
)

// TestSegmentRoundTrip: a sequence of segments carrying incremental site
// frames and event batches reconstructs the original trace exactly.
func TestSegmentRoundTrip(t *testing.T) {
	tr := sampleTrace()
	frames := tr.Sites.Frames()

	// Split the trace into three segments; frames ride with the first.
	n := len(tr.Events)
	cuts := []int{0, n / 3, 2 * n / 3, n}
	var segs []*Segment
	for i := 0; i+1 < len(cuts); i++ {
		seg := &Segment{Seq: uint64(i + 1), Events: tr.Events[cuts[i]:cuts[i+1]]}
		if i == 0 {
			seg.Frames = frames[1:] // reserved frame 0 never travels
		}
		segs = append(segs, seg)
	}

	got := New()
	for _, seg := range segs {
		enc, err := EncodeSegment(nil, seg)
		if err != nil {
			t.Fatalf("encode seq %d: %v", seg.Seq, err)
		}
		dec, err := DecodeSegment(enc, got.Sites.Len())
		if err != nil {
			t.Fatalf("decode seq %d: %v", seg.Seq, err)
		}
		if dec.Seq != seg.Seq {
			t.Fatalf("seq: got %d want %d", dec.Seq, seg.Seq)
		}
		for _, f := range dec.Frames {
			got.Sites.Append(f)
		}
		got.Events = append(got.Events, dec.Events...)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("events differ after segment round trip")
	}
	if !reflect.DeepEqual(got.Sites.Frames(), frames) {
		t.Fatalf("site tables differ after segment round trip")
	}
}

// TestSegmentRejects: structural violations error out instead of panicking
// or silently mis-decoding.
func TestSegmentRejects(t *testing.T) {
	seg := &Segment{
		Seq:    7,
		Frames: []sites.Frame{{File: "a.go", Line: 1, Func: "f"}},
		Events: []Event{{Kind: KStore, TID: 1, Addr: 64, Size: 8, Site: 1}},
	}
	enc, err := EncodeSegment(nil, seg)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeSegment(enc[:cut], 1); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := DecodeSegment(append(append([]byte{}, enc...), 0xEE), 1); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
	t.Run("site-out-of-range", func(t *testing.T) {
		bad := &Segment{Seq: 1, Events: []Event{{Kind: KLoad, TID: 1, Addr: 0, Size: 8, Site: 9}}}
		raw, err := EncodeSegment(nil, bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeSegment(raw, 1); err == nil {
			t.Fatal("event referencing unseen site accepted")
		}
		// The same segment is fine for a receiver whose table covers ID 9.
		if _, err := DecodeSegment(raw, 10); err != nil {
			t.Fatalf("valid site rejected: %v", err)
		}
	})
	t.Run("event-count-bomb", func(t *testing.T) {
		// seq=1, nsites=0, nevents=2^40 with no events behind it.
		bomb := []byte{1, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40}
		if _, err := DecodeSegment(bomb, 1); err == nil {
			t.Fatal("event-count bomb accepted")
		}
	})
}
