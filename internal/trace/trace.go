// Package trace defines the execution-trace event model shared between the
// instrumented runtime (internal/pmrt, the Intel-PIN substitute) and the
// analyses (internal/hawkset and the baselines). The event set matches
// HawkSet's Instrumentation stage (§3.2 ①): PM accesses (stores, loads,
// non-temporal stores, flushes, fences), synchronization primitives (lock
// acquire/release), thread creation/joining, and (opt-in) PM allocations.
//
// The original tool additionally records mmap calls to identify PM regions
// and filter out the ≈96% of accesses that hit DRAM (§3.1, §4); in this
// reproduction the instrumented runtime's address space is the PM device, so
// every recorded access is a PM access by construction and no region
// filtering is needed.
//
// Events are ordered by their position in the trace, which is the total
// order in which the cooperative scheduler executed them.
package trace

import (
	"fmt"

	"hawkset/internal/sites"
)

// Kind enumerates trace event types.
type Kind uint8

// Event kinds.
const (
	KStore Kind = iota + 1
	KLoad
	KNTStore
	KFlush // CLWB of the line containing Addr
	KFence // SFENCE: completes the thread's pending flushes
	KLockAcq
	KLockRel
	KThreadCreate // TID created Child
	KThreadJoin   // TID joined Child
	// KAlloc records a PM allocation (Addr, Size). Emitted only when the
	// runtime is configured to instrument the allocator — the §7 extension
	// HawkSet leaves out to stay application-agnostic; see
	// pmrt.Config.InstrumentAllocs.
	KAlloc
)

var kindNames = map[Kind]string{
	KStore:        "store",
	KLoad:         "load",
	KNTStore:      "ntstore",
	KFlush:        "flush",
	KFence:        "fence",
	KLockAcq:      "lock",
	KLockRel:      "unlock",
	KThreadCreate: "create",
	KThreadJoin:   "join",
	KAlloc:        "alloc",
}

// String returns the event kind's mnemonic.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one instrumented operation.
type Event struct {
	Kind Kind
	TID  int32    // issuing thread
	Addr uint64   // PM address (store/load/ntstore/flush)
	Size uint32   // access size in bytes (store/load/ntstore)
	Lock uint64   // lock identity (lockacq/lockrel)
	Kid  int32    // child thread (create/join)
	Site sites.ID // program location of the operation
}

// String renders the event for diagnostics and tracedump.
func (e Event) String() string {
	switch e.Kind {
	case KStore, KLoad, KNTStore, KAlloc:
		return fmt.Sprintf("T%d %-7s addr=%#x size=%d", e.TID, e.Kind, e.Addr, e.Size)
	case KFlush:
		return fmt.Sprintf("T%d %-7s line=%#x", e.TID, e.Kind, e.Addr)
	case KFence:
		return fmt.Sprintf("T%d %-7s", e.TID, e.Kind)
	case KLockAcq, KLockRel:
		return fmt.Sprintf("T%d %-7s lock=%d", e.TID, e.Kind, e.Lock)
	case KThreadCreate, KThreadJoin:
		return fmt.Sprintf("T%d %-7s T%d", e.TID, e.Kind, e.Kid)
	}
	return fmt.Sprintf("T%d %s", e.TID, e.Kind)
}

// Trace is a recorded execution: the ordered event list plus the site table
// for resolving event locations.
type Trace struct {
	Events []Event
	Sites  *sites.Table
}

// New returns an empty trace with a fresh site table.
func New() *Trace {
	return &Trace{Sites: sites.NewTable()}
}

// Append adds an event.
func (t *Trace) Append(e Event) { t.Events = append(t.Events, e) }

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Counts tallies events by kind (workload/coverage diagnostics).
func (t *Trace) Counts() map[Kind]int {
	m := make(map[Kind]int)
	for _, e := range t.Events {
		m[e.Kind]++
	}
	return m
}

// Threads returns the number of distinct threads appearing in the trace.
func (t *Trace) Threads() int {
	max := int32(-1)
	for _, e := range t.Events {
		if e.TID > max {
			max = e.TID
		}
		if (e.Kind == KThreadCreate || e.Kind == KThreadJoin) && e.Kid > max {
			max = e.Kid
		}
	}
	return int(max + 1)
}
