package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hawkset/internal/sites"
)

// Segment is one batch of a streamed trace: the events produced since the
// previous segment plus the site frames interned since the previous segment.
// A sequence of segments numbered 1..n reconstructs exactly the trace that
// produced it: frames are appended positionally (the stream and its receiver
// assign identical site IDs), events are replayed in order.
//
// Segments are the unit of transfer and of durability in the pmcheckd
// ingestion daemon: the same encoded bytes travel over the wire, are
// appended to the crash-safe segment log, and are replayed on recovery.
//
// Binary layout (all integers uvarint, strings length-prefixed like the
// trace format):
//
//	seq     uvarint            1-based segment sequence number
//	nsites  uvarint            new site frames in this segment
//	sites   nsites × frame     file string, line uvarint, func string
//	nevents uvarint
//	events  nevents × event    same event encoding as the trace format
type Segment struct {
	Seq    uint64
	Frames []sites.Frame
	Events []Event
}

// maxSegmentEvents bounds a single segment's event count; a decoded count
// above it is rejected before any allocation. Generous: a segment is a
// network batch, not a whole trace.
const maxSegmentEvents = 1 << 22

// EncodeSegment appends the segment's binary encoding to buf and returns
// the extended slice.
func EncodeSegment(buf []byte, seg *Segment) ([]byte, error) {
	w := bytes.NewBuffer(buf)
	bw := bufio.NewWriter(w)
	putUvarint(bw, seg.Seq)
	putUvarint(bw, uint64(len(seg.Frames)))
	for _, f := range seg.Frames {
		putString(bw, f.File)
		putUvarint(bw, uint64(f.Line))
		putString(bw, f.Func)
	}
	putUvarint(bw, uint64(len(seg.Events)))
	for _, e := range seg.Events {
		if err := encodeEvent(bw, e); err != nil {
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// DecodeSegment parses one segment. baseSites is the receiver's current site
// table length (including the reserved frame 0); event site IDs are
// validated against baseSites plus this segment's new frames, so a segment
// accepted here can be applied without further checks. Input is untrusted:
// counts are bounded, allocation is capped, and any structural violation is
// an error, never a panic.
func DecodeSegment(data []byte, baseSites int) (*Segment, error) {
	br := bufio.NewReader(bytes.NewReader(data))
	seg := &Segment{}
	var err error
	if seg.Seq, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("segment: seq: %w", err)
	}
	nsites, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("segment: site count: %w", err)
	}
	if nsites > maxSites || uint64(baseSites)+nsites > maxSites {
		return nil, fmt.Errorf("segment: implausible site count %d (base %d)", nsites, baseSites)
	}
	for i := uint64(0); i < nsites; i++ {
		file, err := getString(br)
		if err != nil {
			return nil, fmt.Errorf("segment: site %d: %w", i, err)
		}
		line, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("segment: site %d: %w", i, err)
		}
		if line > math.MaxInt32 {
			return nil, fmt.Errorf("segment: site %d: line %d out of range", i, line)
		}
		fn, err := getString(br)
		if err != nil {
			return nil, fmt.Errorf("segment: site %d: %w", i, err)
		}
		seg.Frames = append(seg.Frames, sites.Frame{File: file, Line: int(line), Func: fn})
	}
	nevents, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("segment: event count: %w", err)
	}
	if nevents > maxSegmentEvents {
		return nil, fmt.Errorf("segment: implausible event count %d", nevents)
	}
	prealloc := nevents
	if prealloc > maxEventPrealloc {
		prealloc = maxEventPrealloc
	}
	seg.Events = make([]Event, 0, prealloc)
	siteLimit := sites.ID(uint64(baseSites) + nsites)
	for i := uint64(0); i < nevents; i++ {
		e, err := decodeEvent(br, siteLimit)
		if err != nil {
			return nil, fmt.Errorf("segment: event %d: %w", i, err)
		}
		seg.Events = append(seg.Events, e)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("segment: trailing data after %d events", nevents)
	}
	return seg, nil
}
