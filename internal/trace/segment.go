package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hawkset/internal/sites"
)

// Segment is one batch of a streamed trace: the events produced since the
// previous segment plus the site frames interned since the previous segment.
// A sequence of segments numbered 1..n reconstructs exactly the trace that
// produced it: frames are appended positionally (the stream and its receiver
// assign identical site IDs), events are replayed in order.
//
// Segments are the unit of transfer and of durability in the pmcheckd
// ingestion daemon: the same encoded bytes travel over the wire, are
// appended to the crash-safe segment log, and are replayed on recovery.
//
// Two segment encodings exist, distinguished by the first byte:
//
// v1 (all integers uvarint, strings length-prefixed like the trace format):
//
//	seq     uvarint            1-based segment sequence number (never 0)
//	nsites  uvarint            new site frames in this segment
//	sites   nsites × frame     file string, line uvarint, func string
//	nevents uvarint
//	events  nevents × event    same event encoding as the v1 trace format
//
// v2 (the block codec of codec_v2.go; EncodeSegment's default):
//
//	marker  2 bytes            0x00 'S' — 0x00 cannot start a v1 segment,
//	                           whose seq is 1-based
//	version byte               2
//	flags   byte               bit0 = blocks are flate-compressed
//	seq     uvarint
//	nsites  uvarint
//	sites   nsites × frame
//	blocks  + terminator       exactly as the v2 file format
//
// DecodeSegment dispatches on the marker, so daemons ingest old and new
// clients — and replay pre-v2 segment logs — without configuration.
type Segment struct {
	Seq    uint64
	Frames []sites.Frame
	Events []Event
}

// maxSegmentEvents bounds a single segment's event count; a decoded count
// above it is rejected before any allocation. Generous: a segment is a
// network batch, not a whole trace.
const maxSegmentEvents = 1 << 22

// maxSegmentFrames bounds a single segment's new-frame count, symmetric
// with maxSites but scaled to a batch: a corrupt header claiming millions
// of frames is rejected outright instead of driving the frame-decode loop
// (and its per-frame allocations) until the input runs dry.
const maxSegmentFrames = 1 << 20

// Segment v2 marker: a first byte no v1 segment can produce (sequence
// numbers are 1-based) followed by a discriminator.
const (
	segMarker0 = 0x00
	segMarker1 = 'S'
)

// EncodeSegment appends the segment's binary encoding (v2, uncompressed) to
// buf and returns the extended slice.
func EncodeSegment(buf []byte, seg *Segment) ([]byte, error) {
	return EncodeSegmentWith(buf, seg, Options{})
}

// EncodeSegmentV1 appends the legacy v1 encoding (kept for the golden
// fixtures and cross-version tests; DecodeSegment still accepts it).
func EncodeSegmentV1(buf []byte, seg *Segment) ([]byte, error) {
	return EncodeSegmentWith(buf, seg, Options{Version: version1})
}

// EncodeSegmentWith appends the segment's encoding in the selected format.
// Both paths are direct append-style: no intermediate buffer, no copy of
// the caller's prefix.
func EncodeSegmentWith(buf []byte, seg *Segment, o Options) ([]byte, error) {
	switch o.version() {
	case version1:
		return appendSegmentV1(buf, seg)
	case version2:
		return appendSegmentV2(buf, seg, o.Compress)
	default:
		return nil, fmt.Errorf("trace: unsupported segment version %d", o.Version)
	}
}

func appendSegmentV1(buf []byte, seg *Segment) ([]byte, error) {
	if seg.Seq == 0 {
		// Sequence numbers are 1-based; 0 is the v2 marker byte.
		return nil, errors.New("trace: segment sequence numbers are 1-based")
	}
	buf = binary.AppendUvarint(buf, seg.Seq)
	buf = appendFrames(buf, seg.Frames)
	buf = binary.AppendUvarint(buf, uint64(len(seg.Events)))
	var err error
	for _, e := range seg.Events {
		if buf, err = appendEventV1(buf, e); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendSegmentV2(buf []byte, seg *Segment, compress bool) ([]byte, error) {
	flags := byte(0)
	if compress {
		flags |= flagFlate
	}
	buf = append(buf, segMarker0, segMarker1, version2, flags)
	buf = binary.AppendUvarint(buf, seg.Seq)
	buf = appendFrames(buf, seg.Frames)
	sw := &sliceWriter{b: buf}
	bw := newBlockWriter(sw, compress)
	for _, e := range seg.Events {
		if err := bw.write(e); err != nil {
			return nil, err
		}
	}
	if err := bw.finish(); err != nil {
		return nil, err
	}
	return sw.b, nil
}

func appendFrames(buf []byte, frames []sites.Frame) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(frames)))
	for _, f := range frames {
		buf = appendLenString(buf, f.File)
		buf = binary.AppendUvarint(buf, uint64(f.Line))
		buf = appendLenString(buf, f.Func)
	}
	return buf
}

func appendLenString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// sliceWriter adapts append-style encoding to the io.Writer the block codec
// speaks; every Write lands directly on the caller's slice.
type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// PeekSegmentSeq extracts the sequence number from an encoded segment of
// either version without decoding the rest — the segment store uses it to
// verify log-record ordering before replay.
func PeekSegmentSeq(data []byte) (uint64, error) {
	if len(data) == 0 {
		return 0, errors.New("trace: empty segment")
	}
	if data[0] == segMarker0 {
		if len(data) < 5 || data[1] != segMarker1 {
			return 0, errors.New("trace: bad segment marker")
		}
		if data[2] != version2 {
			return 0, fmt.Errorf("trace: unsupported segment version %d", data[2])
		}
		seq, n := binary.Uvarint(data[4:])
		if n <= 0 {
			return 0, errors.New("trace: truncated segment sequence number")
		}
		return seq, nil
	}
	seq, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, errors.New("trace: truncated segment sequence number")
	}
	return seq, nil
}

// DecodeSegment parses one segment of either version. baseSites is the
// receiver's current site table length (including the reserved frame 0);
// event site IDs are validated against baseSites plus this segment's new
// frames, so a segment accepted here can be applied without further checks.
// Input is untrusted: counts are bounded, allocation is capped, and any
// structural violation — including trailing bytes — is an error, never a
// panic.
func DecodeSegment(data []byte, baseSites int) (*Segment, error) {
	if len(data) > 0 && data[0] == segMarker0 {
		return decodeSegmentV2(data, baseSites)
	}
	return decodeSegmentV1(data, baseSites)
}

func decodeSegmentV1(data []byte, baseSites int) (*Segment, error) {
	br := bufio.NewReader(bytes.NewReader(data))
	seg := &Segment{}
	var err error
	if seg.Seq, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("segment: seq: %w", err)
	}
	if seg.Frames, err = decodeSegmentFrames(br, baseSites); err != nil {
		return nil, err
	}
	nevents, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("segment: event count: %w", err)
	}
	if nevents > maxSegmentEvents {
		return nil, fmt.Errorf("segment: implausible event count %d", nevents)
	}
	prealloc := nevents
	if prealloc > maxEventPrealloc {
		prealloc = maxEventPrealloc
	}
	seg.Events = make([]Event, 0, prealloc)
	siteLimit := sites.ID(baseSites + len(seg.Frames))
	for i := uint64(0); i < nevents; i++ {
		e, err := decodeEvent(br, siteLimit)
		if err != nil {
			return nil, fmt.Errorf("segment: event %d: %w", i, err)
		}
		seg.Events = append(seg.Events, e)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("segment: trailing data after %d events", nevents)
	}
	return seg, nil
}

func decodeSegmentV2(data []byte, baseSites int) (*Segment, error) {
	if len(data) < 4 || data[1] != segMarker1 {
		return nil, errors.New("segment: bad v2 marker")
	}
	if data[2] != version2 {
		return nil, fmt.Errorf("segment: unsupported version %d", data[2])
	}
	flags := data[3]
	if flags&^flagFlate != 0 {
		return nil, fmt.Errorf("segment: unknown flags %#02x", flags)
	}
	br := bufio.NewReader(bytes.NewReader(data[4:]))
	seg := &Segment{}
	var err error
	if seg.Seq, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("segment: seq: %w", err)
	}
	if seg.Frames, err = decodeSegmentFrames(br, baseSites); err != nil {
		return nil, err
	}
	siteLimit := sites.ID(baseSites + len(seg.Frames))
	blocks := newBlockReader(br, flags&flagFlate != 0, siteLimit)
	for {
		e, err := blocks.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("segment: event %d: %w", len(seg.Events), err)
		}
		if len(seg.Events) >= maxSegmentEvents {
			return nil, fmt.Errorf("segment: implausible event count > %d", maxSegmentEvents)
		}
		seg.Events = append(seg.Events, e)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("segment: trailing data after %d events", len(seg.Events))
	}
	return seg, nil
}

// decodeSegmentFrames parses the incremental frame list shared by both
// segment versions, bounding the claimed count before any allocation.
func decodeSegmentFrames(br *bufio.Reader, baseSites int) ([]sites.Frame, error) {
	nsites, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("segment: site count: %w", err)
	}
	if nsites > maxSegmentFrames || uint64(baseSites)+nsites > maxSites {
		return nil, fmt.Errorf("segment: implausible site count %d (base %d)", nsites, baseSites)
	}
	var frames []sites.Frame
	for i := uint64(0); i < nsites; i++ {
		f, err := decodeFrame(br)
		if err != nil {
			return nil, fmt.Errorf("segment: site %d: %w", i, err)
		}
		frames = append(frames, f)
	}
	return frames, nil
}
