// Package vclock implements Fidge/Mattern vector clocks with a logical
// counter per thread, as used by HawkSet's inter-thread happens-before
// analysis (§3.1.2), plus an interning table so that clocks are shared
// across PM accesses and identified by small integers (§4: "Locksets and
// vector clocks are shared across PM accesses ... unique and identifiable by
// a unique integer").
package vclock

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// VC is a vector clock: VC[i] is the logical time of thread i. Clocks may
// have different lengths; missing trailing components are zero.
type VC []uint32

// Clone returns a copy of v.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	copy(out, v)
	return out
}

// Get returns component i (zero if beyond the clock's length).
func (v VC) Get(i int) uint32 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

// Bump increments component i in place, growing the clock as needed, and
// returns the (possibly reallocated) clock.
func (v VC) Bump(i int) VC {
	for len(v) <= i {
		v = append(v, 0)
	}
	v[i]++
	return v
}

// Join sets v to the componentwise maximum of v and o, returning the
// (possibly reallocated) clock. Used at thread join (§3.1.2 rule iii).
func (v VC) Join(o VC) VC {
	for len(v) < len(o) {
		v = append(v, 0)
	}
	for i, c := range o {
		if c > v[i] {
			v[i] = c
		}
	}
	return v
}

// Leq reports whether v happens-before-or-equals o: every component of v is
// ≤ the corresponding component of o.
func Leq(v, o VC) bool {
	for i := 0; i < len(v) || i < len(o); i++ {
		if v.Get(i) > o.Get(i) {
			return false
		}
	}
	return true
}

// Concurrent reports whether v and o are incomparable: there are indices i,j
// with v[i] < o[i] and v[j] > o[j] (§3.1.2). Equal clocks are not
// concurrent.
func Concurrent(v, o VC) bool {
	return !Leq(v, o) && !Leq(o, v)
}

// String renders the clock as a tuple, e.g. "(3,0,1)".
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte(')')
	return b.String()
}

// ID identifies an interned clock. The zero ID is the empty (all-zero)
// clock.
type ID int32

// NoOwner marks an interned clock with no recorded owning thread.
const NoOwner int32 = -1

// Table interns vector clocks behind integer IDs. Not safe for concurrent
// use (analysis is single-threaded).
//
// Alongside each clock the table can record an epoch summary: the thread
// that owns the clock (the thread whose event the clock timestamps) and that
// thread's own component — the FastTrack-style (tid, tick) epoch. For an
// owned clock a, happens-before reduces to one component compare:
// Leq(a, b) ⇔ a[tid] ≤ b[tid], because a thread's component is advanced
// only by that thread and propagates to other clocks only via create/join
// edges that carry the whole clock. See LeqID.
type Table struct {
	byHash map[uint64][]ID
	clocks []VC
	owners []int32 // owning thread per ID (NoOwner when unknown)
	ticks  []uint32
}

// NewTable returns a table whose ID 0 is the empty clock.
func NewTable() *Table {
	return &Table{
		byHash: make(map[uint64][]ID),
		clocks: []VC{nil},
		owners: []int32{NoOwner},
		ticks:  []uint32{0},
	}
}

func hashVC(v VC) uint64 {
	h := fnv.New64a()
	var b [4]byte
	// Trailing zeros must not affect the hash: (1,0) == (1).
	n := len(v)
	for n > 0 && v[n-1] == 0 {
		n--
	}
	for _, c := range v[:n] {
		b[0] = byte(c)
		b[1] = byte(c >> 8)
		b[2] = byte(c >> 16)
		b[3] = byte(c >> 24)
		h.Write(b[:]) //nolint:errcheck // fnv never errors
	}
	return h.Sum64()
}

func equalVC(a, b VC) bool {
	for i := 0; i < len(a) || i < len(b); i++ {
		if a.Get(i) != b.Get(i) {
			return false
		}
	}
	return true
}

// Intern returns the canonical ID for v, copying it if new.
func (t *Table) Intern(v VC) ID {
	return t.InternOwned(v, NoOwner)
}

// InternOwned interns v and, when owner is a valid thread index, records
// that v is a thread-event clock of owner — enabling the O(1) epoch compare
// of LeqID for the returned ID. If the clock value was first interned
// without an owner, the ownership is attached now; if it already has a
// different owner, the first one is kept (both are valid: either owner's
// component works as an epoch for this value).
func (t *Table) InternOwned(v VC, owner int32) ID {
	n := len(v)
	for n > 0 && v[n-1] == 0 {
		n--
	}
	if n == 0 {
		return 0
	}
	h := hashVC(v)
	for _, id := range t.byHash[h] {
		if equalVC(t.clocks[id], v) {
			if t.owners[id] == NoOwner && owner != NoOwner {
				t.owners[id] = owner
				t.ticks[id] = v.Get(int(owner))
			}
			return id
		}
	}
	id := ID(len(t.clocks))
	t.clocks = append(t.clocks, v.Clone())
	t.byHash[h] = append(t.byHash[h], id)
	tick := uint32(0)
	if owner != NoOwner {
		tick = v.Get(int(owner))
	}
	t.owners = append(t.owners, owner)
	t.ticks = append(t.ticks, tick)
	return id
}

// Get resolves an ID to its clock. The returned slice must not be mutated.
func (t *Table) Get(id ID) VC { return t.clocks[id] }

// Epoch returns the (tid, tick) epoch of an owned clock, with ok=false when
// the clock was interned without ownership.
func (t *Table) Epoch(id ID) (tid int32, tick uint32, ok bool) {
	tid = t.owners[id]
	return tid, t.ticks[id], tid != NoOwner
}

// LeqID reports Leq(Get(a), Get(b)). When a is an owned clock the answer is
// the O(1) epoch compare a[owner] ≤ b[owner]; otherwise it falls back to the
// full component walk. The epoch reduction is exact — not an approximation —
// for clocks produced by a create/join happens-before construction in which
// each thread's component is advanced only by that thread (the replayer
// guarantees this and interns with ownership only when the guarantee holds).
func (t *Table) LeqID(a, b ID) bool {
	if a == b {
		return true
	}
	if owner := t.owners[a]; owner != NoOwner {
		return t.ticks[a] <= t.clocks[b].Get(int(owner))
	}
	return Leq(t.clocks[a], t.clocks[b])
}

// Len returns the number of interned clocks.
func (t *Table) Len() int { return len(t.clocks) }

// ConcurrentID reports whether the clocks behind two IDs are concurrent,
// short-circuiting on equal IDs (interning makes equality an integer
// compare, the optimization HawkSet §4 describes).
func (t *Table) ConcurrentID(a, b ID) bool {
	if a == b {
		return false
	}
	return Concurrent(t.clocks[a], t.clocks[b])
}
