package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeqBasics(t *testing.T) {
	cases := []struct {
		a, b VC
		want bool
	}{
		{VC{}, VC{}, true},
		{VC{1}, VC{1}, true},
		{VC{1}, VC{2}, true},
		{VC{2}, VC{1}, false},
		{VC{1, 0}, VC{1}, true}, // trailing zeros are insignificant
		{VC{1, 1}, VC{1, 0}, false},
		{VC{3, 0, 0}, VC{3, 1, 0}, true},
		{VC{5, 0, 0}, VC{3, 1, 0}, false},
	}
	for _, c := range cases {
		if got := Leq(c.a, c.b); got != c.want {
			t.Errorf("Leq(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestFigure3 reproduces the paper's Figure 3 clock relationships: the
// parent's store before creating T2/T3 is ordered with their loads, while
// accesses of T2 and T3 are mutually concurrent, and the persist clock keeps
// the window racy after a later thread creation.
func TestFigure3(t *testing.T) {
	store1 := VC{1, 0, 0}   // T1's first store
	t2load := VC{3, 1, 0}   // T2 after creation at (3,0,0)
	store3 := VC{4, 0, 0}   // T1 stores X again
	t3load := VC{5, 0, 1}   // T3 created at (5,0,0)
	persist3 := VC{6, 0, 0} // T1 persists X after creating T3

	if Concurrent(store1, t2load) {
		t.Error("Store1 must happen-before T2's load")
	}
	if Concurrent(store1, t3load) {
		t.Error("Store1 must happen-before T3's load")
	}
	if !Concurrent(t2load, t3load) {
		t.Error("T2 and T3 accesses must be concurrent")
	}
	if Concurrent(store3, t3load) {
		t.Error("Store3 alone is ordered before T3's creation")
	}
	if !Concurrent(persist3, t3load) {
		t.Error("Persist3 must be concurrent with T3's load (the race window)")
	}
}

func TestJoin(t *testing.T) {
	a := VC{1, 5, 0}
	b := VC{3, 2, 7}
	j := a.Clone().Join(b)
	want := VC{3, 5, 7}
	for i := range want {
		if j.Get(i) != want[i] {
			t.Fatalf("Join = %v, want %v", j, want)
		}
	}
}

func TestBumpGrows(t *testing.T) {
	v := VC{}.Bump(3)
	if len(v) != 4 || v[3] != 1 {
		t.Fatalf("Bump(3) = %v", v)
	}
}

func TestInternCanonical(t *testing.T) {
	tab := NewTable()
	a := tab.Intern(VC{1, 2, 3})
	b := tab.Intern(VC{1, 2, 3})
	c := tab.Intern(VC{1, 2, 3, 0}) // trailing zero: same clock
	d := tab.Intern(VC{1, 2, 4})
	if a != b || a != c {
		t.Fatalf("equal clocks interned differently: %d %d %d", a, b, c)
	}
	if a == d {
		t.Fatal("distinct clocks interned identically")
	}
	if tab.Intern(nil) != 0 {
		t.Fatal("empty clock is not ID 0")
	}
}

func TestConcurrentID(t *testing.T) {
	tab := NewTable()
	a := tab.Intern(VC{1, 0})
	b := tab.Intern(VC{0, 1})
	c := tab.Intern(VC{1, 1})
	if !tab.ConcurrentID(a, b) {
		t.Fatal("(1,0) and (0,1) must be concurrent")
	}
	if tab.ConcurrentID(a, c) {
		t.Fatal("(1,0) happens-before (1,1)")
	}
	if tab.ConcurrentID(a, a) {
		t.Fatal("a clock is not concurrent with itself")
	}
}

func randVC(rng *rand.Rand) VC {
	v := make(VC, rng.Intn(5))
	for i := range v {
		v[i] = uint32(rng.Intn(4))
	}
	return v
}

// Properties of the happens-before partial order.
func TestPartialOrderProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randVC(rng), randVC(rng), randVC(rng)
		// Reflexivity.
		if !Leq(a, a) {
			return false
		}
		// Antisymmetry: Leq both ways means equal.
		if Leq(a, b) && Leq(b, a) && !equalVC(a, b) {
			return false
		}
		// Transitivity.
		if Leq(a, b) && Leq(b, c) && !Leq(a, c) {
			return false
		}
		// Concurrency is symmetric and irreflexive.
		if Concurrent(a, b) != Concurrent(b, a) {
			return false
		}
		if Concurrent(a, a) {
			return false
		}
		// Join is an upper bound.
		j := a.Clone().Join(b)
		return Leq(a, j) && Leq(b, j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: interning is injective on clock values.
func TestInternProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable()
		clocks := make([]VC, 50)
		ids := make([]ID, 50)
		for i := range clocks {
			clocks[i] = randVC(rng)
			ids[i] = tab.Intern(clocks[i])
		}
		for i := range clocks {
			for j := range clocks {
				if (ids[i] == ids[j]) != equalVC(clocks[i], clocks[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if got := (VC{3, 0, 1}).String(); got != "(3,0,1)" {
		t.Fatalf("String = %q", got)
	}
}

// Epoch bookkeeping: ownership is recorded at InternOwned, attaches lazily
// to a value first interned unowned, and the first owner wins on conflict.
func TestEpochOwnership(t *testing.T) {
	tab := NewTable()
	a := tab.InternOwned(VC{2, 1}, 0)
	if tid, tick, ok := tab.Epoch(a); !ok || tid != 0 || tick != 2 {
		t.Fatalf("Epoch = (%d,%d,%v), want (0,2,true)", tid, tick, ok)
	}
	// Unowned intern: no epoch.
	b := tab.Intern(VC{1, 3})
	if _, _, ok := tab.Epoch(b); ok {
		t.Fatalf("unowned clock has an epoch")
	}
	// Ownership attaches on a later owned intern of the same value.
	if id := tab.InternOwned(VC{1, 3}, 1); id != b {
		t.Fatalf("re-intern changed ID: %d != %d", id, b)
	}
	if tid, tick, ok := tab.Epoch(b); !ok || tid != 1 || tick != 3 {
		t.Fatalf("attached Epoch = (%d,%d,%v), want (1,3,true)", tid, tick, ok)
	}
	// First owner wins: both owners are valid epochs for the same value, so
	// the recorded one must simply stay stable.
	if id := tab.InternOwned(VC{2, 1}, 1); id != a {
		t.Fatalf("re-intern changed ID")
	}
	if tid, _, _ := tab.Epoch(a); tid != 0 {
		t.Fatalf("owner overwritten: tid = %d, want 0", tid)
	}
}

// LeqID must agree with the full-vector Leq on clocks that satisfy the
// ownership precondition (each owned clock is its owner's event clock), and
// fall back to the full compare for unowned clocks.
func TestLeqIDMatchesLeq(t *testing.T) {
	tab := NewTable()
	// A tiny create/join history for threads 0 and 1:
	//   t0: (1)      — initial
	//   t0: (2)      — bump before creating t1
	//   t1: (2,1)    — child initial clock
	//   t0: (3)      — next event clock
	//   t1: (2,2)    — t1's second event
	ids := []ID{
		tab.InternOwned(VC{1}, 0),
		tab.InternOwned(VC{2}, 0),
		tab.InternOwned(VC{2, 1}, 1),
		tab.InternOwned(VC{3}, 0),
		tab.InternOwned(VC{2, 2}, 1),
	}
	for _, a := range ids {
		for _, b := range ids {
			want := Leq(tab.Get(a), tab.Get(b))
			if got := tab.LeqID(a, b); got != want {
				t.Errorf("LeqID(%v,%v) = %v, want %v", tab.Get(a), tab.Get(b), got, want)
			}
		}
	}
	// Unowned × unowned falls back to the exact walk.
	u1 := tab.Intern(VC{5, 1})
	u2 := tab.Intern(VC{1, 5})
	if tab.LeqID(u1, u2) || tab.LeqID(u2, u1) {
		t.Fatalf("unowned concurrent clocks compared as ordered")
	}
	if !tab.LeqID(u1, u1) {
		t.Fatalf("LeqID not reflexive")
	}
}
