// Package obscli wires the observability layer (internal/obs) into the
// command-line tools: the standard -metrics / -metrics-table snapshot
// outputs and the optional -pprof profiling server. All output goes to a
// file or to stderr, never stdout — the tools' stdout remains the
// deterministic analysis output whether or not the flags are set.
package obscli

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"path/filepath"

	"hawkset/internal/obs"
)

// Flags holds the standard observability flag values.
type Flags struct {
	Metrics string
	Table   bool
	Pprof   string
}

// Register installs the standard flags into fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Metrics, "metrics", "", "write a JSON metrics snapshot to this file at exit (\"-\" for stderr)")
	fs.BoolVar(&f.Table, "metrics-table", false, "print a human-readable metrics table to stderr at exit")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Registry returns the registry to thread through the pipeline: non-nil only
// when a metrics output was requested, so default runs hand nil registries
// (and therefore nil no-op handles) to every component.
func (f *Flags) Registry() *obs.Registry {
	if f.Metrics == "" && !f.Table {
		return nil
	}
	return obs.NewRegistry()
}

// StartPprof starts the pprof server when -pprof was given. The listener
// error surfaces immediately (a bad address should fail the run, not be
// discovered after an hour-long campaign); serve errors after that are
// ignored, profiling is best-effort.
func (f *Flags) StartPprof() error {
	if f.Pprof == "" {
		return nil
	}
	ln, err := net.Listen("tcp", f.Pprof)
	if err != nil {
		return err
	}
	go http.Serve(ln, nil) //nolint:errcheck // best-effort profiling endpoint
	return nil
}

// Dump writes the final snapshot to the requested outputs. Call it once at
// tool exit; a nil registry is a no-op.
func (f *Flags) Dump(r *obs.Registry) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	if f.Table {
		if err := snap.WriteTable(os.Stderr); err != nil {
			return err
		}
	}
	if f.Metrics == "" {
		return nil
	}
	if f.Metrics == "-" {
		return snap.WriteJSON(os.Stderr)
	}
	return WriteFileAtomic(f.Metrics, snap.WriteJSON)
}

// WriteFileAtomic writes a file via a temp file in the target directory plus
// an atomic rename, so a reader of path never observes a partially-written
// file and a crash (or a write error) between creation and rename never
// leaves a truncated file under the target name — at worst a stale previous
// version survives. The temp file is fsync'd before the rename: after
// WriteFileAtomic returns, the content is durable, not just renamed.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()           //nolint:errcheck // already failing
			os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
