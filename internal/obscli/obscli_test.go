package obscli

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hawkset/internal/obs"
)

// TestWriteFileAtomicSuccess: the happy path lands the full content under
// the target name and leaves no temp residue.
func TestWriteFileAtomicSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "{\"ok\":true}\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "{\"ok\":true}\n" {
		t.Fatalf("content = %q", got)
	}
	assertNoTempResidue(t, dir)
}

// TestWriteFileAtomicFailure simulates a crash between write and rename: the
// writer dies partway through. The target must be untouched (a previous
// version survives intact, a fresh target never appears truncated) and the
// temp file must be cleaned up.
func TestWriteFileAtomicFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	const previous = "{\"previous\":1}\n"
	if err := os.WriteFile(path, []byte(previous), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("killed mid-write")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		// Half the payload reaches the temp file, then the failure hits —
		// exactly the torn state a kill between write and rename leaves.
		if _, err := io.WriteString(w, "{\"trunc"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	got, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if string(got) != previous {
		t.Fatalf("target corrupted by failed write: %q", got)
	}
	assertNoTempResidue(t, dir)
}

// TestDumpIsAtomic: the -metrics file path goes through the atomic writer —
// a parse-complete JSON document appears even when a previous dump left an
// older version in place.
func TestDumpIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	f := &Flags{Metrics: path}
	reg := obs.NewRegistry()
	reg.Counter("test.count").Add(3)
	if err := f.Dump(reg); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "test.count") {
		t.Fatalf("snapshot missing counter: %q", got)
	}
	assertNoTempResidue(t, dir)
}

func assertNoTempResidue(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp residue left behind: %s", e.Name())
		}
	}
}
