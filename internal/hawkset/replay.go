package hawkset

import (
	"fmt"
	"sort"

	"hawkset/internal/lockset"
	"hawkset/internal/obs"
	"hawkset/internal/pmem"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
	"hawkset/internal/vclock"
)

// replayer implements the Instrumentation-stage components of the pipeline
// (§3.2): Memory Simulation (Ⓐ worst-case cache: a line is persisted only
// after explicit flush+fence; store windows end at persist or overwrite),
// Lock Tracking (Ⓑ current lockset with acquisition timestamps), Thread
// Tracking (Ⓒ vector clocks with lazily batched increments), and the
// Initialization Removal Heuristic (stage ②), which the implementation
// applies alongside replay exactly as the paper's implementation does (§4).
type replayer struct {
	cfg Config
	tr  *trace.Trace
	ls  *lockset.Table
	vc  *vclock.Table

	threads map[int32]*threadState
	// lastTID/lastTS short-circuit the threads map for the common case of
	// consecutive events from one thread. Invalidated when a thread state
	// object is replaced (duplicate create).
	lastTID int32
	lastTS  *threadState
	// lines maps a cache-line index to its open (visible-but-unpersisted)
	// stores.
	lines map[uint64][]*openStore
	// pub tracks, per access start address, which thread touched it first
	// and whether a second thread has made it public (§3.1.3). Values, not
	// pointers: the state is three words and transitions at most twice, so
	// a pointer per address would only add an allocation and a cache miss
	// to every access.
	pub map[uint64]pubState
	// allocEpoch tracks, per cache line, how many instrumented allocations
	// have covered it (Config.AllocAware): publication state older than the
	// line's current epoch is stale and resets on the next touch.
	allocEpoch map[uint64]uint64

	// Dedup state. Records live in value slices (loadList/storeList) and the
	// dedup maps hold int32 indices into them: the maps stay pointer-free
	// (the GC never scans them) and the records are contiguous. Load keys
	// whose fields fit the 64-bit packing go through loadsPacked — a 16-byte
	// key hashed in one shot — fronted by a small direct-mapped cache that
	// exploits the temporal locality of hot records (a tree root re-read on
	// every operation dedups without touching the big map). Out-of-range
	// fields (huge TIDs, >16KB loads, very long streams) spill to the exact
	// struct-keyed map; a key deterministically belongs to exactly one map.
	stores     map[storeKey]int32
	loadsPack  loadTab
	loadsSpill map[loadKey]int32
	storeList  []StoreData
	loadList   []LoadData

	// osArena block-allocates openStore records: stage ① opens one per
	// dynamic store, and allocating them individually made the allocator the
	// hottest part of the store path.
	osArena []openStore
	// coveredPool recycles the pendingFlush covered slices that fence
	// retires every persist cycle.
	coveredPool [][]*openStore

	// epochSafe records whether the trace maintained the ownership invariant
	// the epoch fast path relies on: each thread's vector-clock component is
	// advanced only by that thread. A duplicate thread-create (reusing a
	// live TID) breaks it; the analysis then falls back to full-VC compares,
	// which are always exact.
	epochSafe bool

	// onWindow, when set, receives every unpersisted window as it closes, in
	// trace-event coordinates (see StoreWindow). It fires before the
	// Initialization Removal Heuristic decides whether to keep the store:
	// windows are an execution-level artifact, not a report-level one.
	onWindow func(StoreWindow)

	stats Stats

	// Side-band metric handles (nil when Config.Metrics is unset; all
	// methods no-op on nil). mOpenStores counts the entries retained across
	// the per-line open lists — a store spanning k lines counts k times —
	// so its high-water mark is the retention detector: closed stores left
	// in any line's list (the streaming-replay leak) push it without bound,
	// while a healthy replay keeps it near the true open-window count.
	mEvents     *obs.Counter
	mOpenStores *obs.Gauge
	mLines      *obs.Gauge
}

type pubState struct {
	first     int32
	published bool
	epoch     uint64
}

// openStore is a visible store whose persistence window is still open.
type openStore struct {
	tid   int32
	addr  uint64
	size  uint32
	site  sites.ID
	set   lockset.Set // lockset at the store instruction
	start vclock.ID
	// openIdx is the trace-event index of the store itself (for window
	// extraction in event coordinates).
	openIdx int
	closed  bool
}

type threadState struct {
	set   lockset.Set
	clock uint32 // logical clock: bumped on every lock acquisition
	vc    vclock.VC
	vcID  vclock.ID
	fresh bool // bump the VC at the next VC-recording event (batching, §4)
	// lsID caches the interned, timestamp-stripped lockset of set; lsOK is
	// cleared on every lock event so loads between lock transitions — the
	// overwhelming majority — intern nothing.
	lsID lockset.ID
	lsOK bool
	// pending holds flush snapshots awaiting this thread's next fence.
	pending []pendingFlush
}

type pendingFlush struct {
	line    uint64
	covered []*openStore
}

// storeKey dedups store records: two dynamic stores with identical shape
// collapse into one StoreData with a count (the grouping optimization, §4).
type storeKey struct {
	tid     int32
	addr    uint64
	size    uint32
	site    sites.ID
	eff     lockset.ID
	start   vclock.ID
	end     vclock.ID
	endKind EndKind
}

type loadKey struct {
	tid  int32
	addr uint64
	size uint32
	site sites.ID
	ls   lockset.ID
	vc   vclock.ID
}

// packLoad bit budget, low to high. The bounds cover every realistic trace
// (the apps use tens of threads, sub-KB accesses, thousands of sites and
// locksets); anything larger spills to the exact map.
const (
	packVCBits   = 12
	packLSBits   = 14
	packSiteBits = 16
	packSizeBits = 14
	packTIDBits  = 8
)

// packLoad packs the non-address load-key fields into one word, reporting
// ok=false when any field exceeds its bit budget (negative IDs wrap to huge
// unsigned values and fail the bound too).
func packLoad(tid int32, size uint32, site sites.ID, ls lockset.ID, vc vclock.ID) (uint64, bool) {
	if uint64(uint32(tid)) >= 1<<packTIDBits || uint64(size) >= 1<<packSizeBits ||
		uint64(uint32(site)) >= 1<<packSiteBits || uint64(uint32(ls)) >= 1<<packLSBits ||
		uint64(uint32(vc)) >= 1<<packVCBits {
		return 0, false
	}
	return uint64(uint32(vc)) |
		uint64(uint32(ls))<<packVCBits |
		uint64(uint32(site))<<(packVCBits+packLSBits) |
		uint64(size)<<(packVCBits+packLSBits+packSiteBits) |
		uint64(uint32(tid))<<(packVCBits+packLSBits+packSiteBits+packSizeBits), true
}

// loadTab is an open-addressing hash table from (addr, packed key) to a
// loadList index. It replaces a runtime map on the single hottest lookup of
// the whole pipeline (one probe per dynamic PM load): linear probing over a
// flat entry array needs one multiply-hash and, at the 50% load factor
// enforced here, almost always exactly one 24-byte probe — no hash-function
// call, no 16-byte memequal, no bucket indirection. Entries are never
// deleted, which is what makes the linear probe correct.
type loadTab struct {
	entries []loadTabEntry
	used    int
}

type loadTabEntry struct {
	addr uint64
	key  uint64
	idx  int32 // loadList index + 1; 0 = empty slot
}

const loadTabInitBits = 13

func loadTabHash(addr, key uint64) uint64 {
	h := addr*0x9E3779B97F4A7C15 ^ key*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	return h ^ h>>32
}

// lookup returns a pointer to the entry for (addr, key), or to the empty
// slot where it belongs (idx == 0). The caller fills the slot to insert and
// must then call grew().
func (t *loadTab) lookup(addr, key uint64) *loadTabEntry {
	if t.entries == nil {
		t.entries = make([]loadTabEntry, 1<<loadTabInitBits)
	}
	mask := uint64(len(t.entries) - 1)
	for i := loadTabHash(addr, key) & mask; ; i = (i + 1) & mask {
		e := &t.entries[i]
		if e.idx == 0 || (e.addr == addr && e.key == key) {
			return e
		}
	}
}

// grew records an insertion and rehashes at 50% occupancy.
func (t *loadTab) grew() {
	t.used++
	if t.used*2 < len(t.entries) {
		return
	}
	old := t.entries
	t.entries = make([]loadTabEntry, 2*len(old))
	mask := uint64(len(t.entries) - 1)
	for _, e := range old {
		if e.idx == 0 {
			continue
		}
		i := loadTabHash(e.addr, e.key) & mask
		for t.entries[i].idx != 0 {
			i = (i + 1) & mask
		}
		t.entries[i] = e
	}
}

func newReplayer(tr *trace.Trace, cfg Config) *replayer {
	return &replayer{
		cfg:         cfg,
		tr:          tr,
		ls:          lockset.NewTable(),
		vc:          vclock.NewTable(),
		threads:     make(map[int32]*threadState),
		lines:       make(map[uint64][]*openStore),
		pub:         make(map[uint64]pubState),
		allocEpoch:  make(map[uint64]uint64),
		stores:      make(map[storeKey]int32),
		loadsSpill:  make(map[loadKey]int32),
		epochSafe:   true,
		mEvents:     cfg.Metrics.Counter("hawkset.replay.events"),
		mOpenStores: cfg.Metrics.Gauge("hawkset.replay.open_stores"),
		mLines:      cfg.Metrics.Gauge("hawkset.replay.lines"),
	}
}

// newOpenStore hands out openStore records from block allocations.
func (r *replayer) newOpenStore() *openStore {
	if len(r.osArena) == 0 {
		r.osArena = make([]openStore, 256)
	}
	os := &r.osArena[0]
	r.osArena = r.osArena[1:]
	return os
}

// getCovered pops a recycled covered slice (or allocates one).
func (r *replayer) getCovered(capHint int) []*openStore {
	if n := len(r.coveredPool); n > 0 {
		s := r.coveredPool[n-1]
		r.coveredPool = r.coveredPool[:n-1]
		return s[:0]
	}
	return make([]*openStore, 0, capHint)
}

func (r *replayer) putCovered(s []*openStore) {
	if cap(s) == 0 {
		return
	}
	r.coveredPool = append(r.coveredPool, s[:0])
}

// setLine writes a compacted line list back, keeping the retention gauges
// honest: removed entries decrement mOpenStores, and emptied lines leave the
// map instead of lingering as dead keys.
func (r *replayer) setLine(line uint64, kept []*openStore, was int) {
	if removed := was - len(kept); removed > 0 {
		r.mOpenStores.Add(-int64(removed))
	}
	if len(kept) == 0 {
		delete(r.lines, line)
	} else {
		r.lines[line] = kept
	}
	r.mLines.Set(int64(len(r.lines)))
}

// compactLines sweeps closed entries out of every line covered by
// [addr, addr+size).
func (r *replayer) compactLines(addr uint64, size uint32) {
	linesOf(addr, size, func(line uint64) {
		open, ok := r.lines[line]
		if !ok {
			return
		}
		kept := open[:0]
		for _, os := range open {
			if !os.closed {
				kept = append(kept, os)
			}
		}
		r.setLine(line, kept, len(open))
	})
}

func (r *replayer) thread(tid int32) *threadState {
	if r.lastTS != nil && r.lastTID == tid {
		return r.lastTS
	}
	ts, ok := r.threads[tid]
	if !ok {
		ts = &threadState{}
		ts.vc = vclock.VC{}.Bump(int(tid))
		ts.vcID = r.vc.InternOwned(ts.vc, tid)
		r.threads[tid] = ts
	}
	r.lastTID, r.lastTS = tid, ts
	return ts
}

// curVC applies any pending batched bump and returns the thread's interned
// vector clock. Called at every VC-recording event (PM access or
// window-closing fence). The interned clock is owned by tid: it is tid's
// event clock at its current local tick, the precondition for the epoch
// fast path (vclock.LeqID).
func (r *replayer) curVC(tid int32, ts *threadState) vclock.ID {
	if ts.fresh {
		ts.vc = ts.vc.Bump(int(tid))
		ts.vcID = r.vc.InternOwned(ts.vc, tid)
		ts.fresh = false
	}
	return ts.vcID
}

// feed processes one event (the streaming entry point shared by the offline
// replay and the online Stream).
func (r *replayer) feed(e trace.Event) {
	r.stats.Events++
	r.mEvents.Inc()
	switch e.Kind {
	case trace.KStore:
		r.store(e, false)
	case trace.KNTStore:
		r.store(e, true)
	case trace.KLoad:
		r.load(e)
	case trace.KFlush:
		r.flush(e)
	case trace.KFence:
		r.fence(e)
	case trace.KLockAcq:
		ts := r.thread(e.TID)
		ts.clock++
		ck := ts.clock
		if !r.cfg.Timestamps {
			ck = 0
		}
		ts.set = ts.set.Add(e.Lock, ck)
		ts.lsOK = false
	case trace.KLockRel:
		ts := r.thread(e.TID)
		ts.set = ts.set.Remove(e.Lock)
		ts.lsOK = false
	case trace.KAlloc:
		if r.cfg.AllocAware {
			linesOf(e.Addr, e.Size, func(line uint64) {
				r.allocEpoch[line]++
			})
		}
	case trace.KThreadCreate:
		parent := r.thread(e.TID)
		if _, exists := r.threads[e.Kid]; exists {
			// The TID is being reused while a state for it is live: clocks
			// interned for the old incarnation share the component the new
			// one will advance, so the per-component ownership the epoch
			// compare relies on no longer holds. Fall back to full VCs.
			r.epochSafe = false
		}
		parent.vc = parent.vc.Bump(int(e.TID))
		// Not an owned intern: parent.fresh forces another bump before the
		// next recorded access, so this clock is never an event clock — it
		// exists only to ship the post-create state to the child.
		parent.vcID = r.vc.Intern(parent.vc)
		child := &threadState{}
		child.vc = parent.vc.Clone().Bump(int(e.Kid))
		child.vcID = r.vc.InternOwned(child.vc, e.Kid)
		r.threads[e.Kid] = child
		r.lastTS = nil
		parent.fresh = true
	case trace.KThreadJoin:
		waiter := r.thread(e.TID)
		child := r.thread(e.Kid)
		waiter.vc = waiter.vc.Join(child.vc)
		// Not an owned intern either: the join does not advance the waiter's
		// own component, so this value is not the unique clock of the
		// waiter's current tick (waiter.fresh bumps before the next access).
		waiter.vcID = r.vc.Intern(waiter.vc)
		waiter.fresh = true
	default:
		panic(fmt.Sprintf("hawkset: unknown event kind %d", e.Kind))
	}
}

// touch updates publication state for an access start address and reports
// whether the address is published (visible to a second thread). Under
// AllocAware analysis, publication recorded before the address's latest
// instrumented allocation is stale: the address was recycled and is private
// to its new owner again.
func (r *replayer) touch(tid int32, addr uint64) bool {
	var epoch uint64
	if r.cfg.AllocAware {
		epoch = r.allocEpoch[pmem.LineOf(addr)]
	}
	p, ok := r.pub[addr]
	if !ok || p.epoch != epoch {
		r.pub[addr] = pubState{first: tid, epoch: epoch}
		return false
	}
	if !p.published && p.first != tid {
		p.published = true
		r.pub[addr] = p
	}
	return p.published
}

// overlaps reports whether [aAddr, aAddr+aSize) and [bAddr, bAddr+bSize)
// share a byte. Size-0 accesses are one byte here, the same convention
// lastAddrOf and linesOf use: treating the empty range as overlapping
// nothing let a zero-size store be indexed under its cache line but never
// closed by an overwrite there, silently pinning an EndNone record (and its
// line-list entry) for the rest of the session. The comparisons are in
// subtraction form: the textbook aAddr < bAddr+bSize wraps when a range
// ends at the top of the address space, turning a genuine overlap into a
// miss.
func overlaps(aAddr uint64, aSize uint32, bAddr uint64, bSize uint32) bool {
	if aSize == 0 {
		aSize = 1
	}
	if bSize == 0 {
		bSize = 1
	}
	if aAddr >= bAddr {
		return aAddr-bAddr < uint64(bSize)
	}
	return bAddr-aAddr < uint64(aSize)
}

// lastAddrOf returns the last byte address covered by [addr, addr+size),
// clamped to the top of the address space when addr+size-1 would wrap.
// Zero-size accesses are treated as one byte, as in linesOf.
func lastAddrOf(addr uint64, size uint32) uint64 {
	if size == 0 {
		size = 1
	}
	end := addr + uint64(size) - 1
	if end < addr {
		return ^uint64(0)
	}
	return end
}

// linesOf iterates the cache-line indices covered by [addr, addr+size).
func linesOf(addr uint64, size uint32, fn func(line uint64)) {
	for l, last := pmem.LineOf(addr), pmem.LineOf(lastAddrOf(addr, size)); l <= last; l++ {
		fn(l)
	}
}

func (r *replayer) store(e trace.Event, nt bool) {
	r.stats.PMAccesses++
	ts := r.thread(e.TID)
	vcid := r.curVC(e.TID, ts)
	r.touch(e.TID, e.Addr)

	if r.cfg.EADR {
		// The store is persistent the moment it becomes visible: there is no
		// visible-but-unpersisted window, so it can never be the store side
		// of a persistency-induced race. (Plain data races are a different
		// class, outside HawkSet's scope.)
		_ = vcid
		return
	}

	// Overwrite: close any open store this one overlaps (§3.1.2 — a store's
	// unpersisted window lasts "until the persistency, or the point where it
	// is overwritten by another store"). A closed store spanning lines
	// beyond the overwriting store's own range must be compacted out of ALL
	// its lines: sweeping only the shared lines left the dead entry in the
	// others forever, so long-running Stream sessions grew without bound
	// and every later flush of those lines re-scanned it.
	var closedSpanning []*openStore
	linesOf(e.Addr, e.Size, func(line uint64) {
		open := r.lines[line]
		kept := open[:0]
		for _, os := range open {
			if !os.closed && overlaps(os.addr, os.size, e.Addr, e.Size) {
				r.close(os, EndOverwrite, e.TID, ts, vcid)
				if spansLines(os.addr, os.size) {
					closedSpanning = append(closedSpanning, os)
				}
			}
			if !os.closed {
				kept = append(kept, os)
			}
		}
		r.setLine(line, kept, len(open))
	})
	for _, os := range closedSpanning {
		r.compactLines(os.addr, os.size)
	}

	os := r.newOpenStore()
	*os = openStore{
		tid:     e.TID,
		addr:    e.Addr,
		size:    e.Size,
		site:    e.Site,
		set:     ts.set,
		start:   vcid,
		openIdx: r.stats.Events - 1,
	}
	linesOf(e.Addr, e.Size, func(line uint64) {
		r.lines[line] = append(r.lines[line], os)
		r.mOpenStores.Add(1)
	})
	r.mLines.Set(int64(len(r.lines)))
	if nt {
		// A non-temporal store bypasses the cache: it is already queued for
		// persistence and needs only the thread's next fence.
		linesOf(e.Addr, e.Size, func(line uint64) {
			cv := append(r.getCovered(1), os)
			ts.pending = append(ts.pending, pendingFlush{line: line, covered: cv})
		})
	}
}

func (r *replayer) load(e trace.Event) {
	r.stats.PMAccesses++
	ts := r.thread(e.TID)
	vcid := r.curVC(e.TID, ts)
	published := r.touch(e.TID, e.Addr)
	if r.cfg.IRH && !published {
		// Pre-publication loads are by the address's first thread only; any
		// pair they could form is same-thread and filtered anyway (§3.2 ②).
		r.stats.IRHDroppedLoads++
		return
	}
	r.stats.DynamicLoads++
	if !ts.lsOK {
		ts.lsID = r.ls.Intern(ts.set.StripTS())
		ts.lsOK = true
	}
	if packed, ok := packLoad(e.TID, e.Size, e.Site, ts.lsID, vcid); ok {
		r.loadPacked(e, packed, ts.lsID, vcid)
		return
	}
	key := loadKey{tid: e.TID, addr: e.Addr, size: e.Size, site: e.Site, ls: ts.lsID, vc: vcid}
	if idx, ok := r.loadsSpill[key]; ok {
		r.loadList[idx].Count++
	} else {
		r.loadsSpill[key] = r.appendLoad(e, ts.lsID, vcid)
	}
}

// loadPacked dedups a load whose key fits the packed form against the
// open-addressing table.
func (r *replayer) loadPacked(e trace.Event, packed uint64, ls lockset.ID, vc vclock.ID) {
	slot := r.loadsPack.lookup(e.Addr, packed)
	if slot.idx != 0 {
		r.loadList[slot.idx-1].Count++
		return
	}
	*slot = loadTabEntry{addr: e.Addr, key: packed, idx: r.appendLoad(e, ls, vc) + 1}
	r.loadsPack.grew()
}

func (r *replayer) appendLoad(e trace.Event, ls lockset.ID, vc vclock.ID) int32 {
	r.loadList = append(r.loadList, LoadData{
		TID: e.TID, Addr: e.Addr, Size: e.Size, Site: e.Site, LS: ls, VC: vc, Count: 1,
	})
	return int32(len(r.loadList) - 1)
}

func (r *replayer) flush(e trace.Event) {
	ts := r.thread(e.TID)
	line := pmem.LineOf(e.Addr)
	open := r.lines[line]
	if len(open) == 0 {
		return
	}
	// Snapshot semantics: the flush covers the stores visible now; stores
	// issued after the flush are not persisted by it. Closed entries are
	// swept here even when nothing is left to cover: an all-closed line
	// never enqueues a pendingFlush, so fence's compaction never reaches it
	// and its dead entries (and map key) would otherwise be retained for
	// the rest of the session.
	covered := r.getCovered(len(open))
	kept := open[:0]
	for _, os := range open {
		if !os.closed {
			covered = append(covered, os)
			kept = append(kept, os)
		}
	}
	r.setLine(line, kept, len(open))
	if len(covered) > 0 {
		ts.pending = append(ts.pending, pendingFlush{line: line, covered: covered})
	} else {
		r.putCovered(covered)
	}
}

func (r *replayer) fence(e trace.Event) {
	ts := r.thread(e.TID)
	if len(ts.pending) == 0 {
		return
	}
	vcid := r.curVC(e.TID, ts)
	for _, pf := range ts.pending {
		for _, os := range pf.covered {
			if !os.closed {
				r.close(os, EndPersist, e.TID, ts, vcid)
			}
		}
		r.putCovered(pf.covered)
		// Compact the line's open list.
		open := r.lines[pf.line]
		kept := open[:0]
		for _, os := range open {
			if !os.closed {
				kept = append(kept, os)
			}
		}
		r.setLine(pf.line, kept, len(open))
	}
	ts.pending = ts.pending[:0]
}

// close ends a store's unpersisted window and records its StoreData. endTS
// is the thread state of the thread whose event ends the window (the
// fencing or overwriting thread).
func (r *replayer) close(os *openStore, kind EndKind, endTID int32, endTS *threadState, endVC vclock.ID) {
	os.closed = true
	if r.onWindow != nil {
		r.onWindow(StoreWindow{
			StoreSite: os.site, TID: os.tid, Addr: os.addr, Size: os.size,
			Start: os.openIdx, End: r.stats.Events - 1, EndKind: kind,
		})
	}
	var eff lockset.Set
	switch {
	case !r.cfg.EffectiveLockset:
		// Ablation: traditional per-access lockset.
		eff = os.set
	case kind == EndNone:
		eff = nil
	case os.tid == endTID:
		// Same thread: timestamps distinguish distinct critical sections of
		// the same lock (Fig. 2d).
		eff = lockset.IntersectExact(os.set, endTS.set)
	default:
		// The window is ended by another thread (cross-thread flush+fence
		// helping, or an overwrite). Timestamps are thread-local and cannot
		// be compared, so the intersection considers lock identity only —
		// the paper's definition with its within-thread timestamp extension
		// inapplicable.
		eff = lockset.IntersectLocks(os.set, endTS.set)
	}
	if kind == EndPersist && r.cfg.IRH {
		if p, ok := r.pub[os.addr]; !ok || !p.published {
			// Explicitly persisted before the address became visible to a
			// second thread: initialization, not a race candidate (§3.1.3).
			r.stats.IRHDroppedStores++
			return
		}
	}
	r.record(os, kind, eff, endVC)
}

func (r *replayer) record(os *openStore, kind EndKind, eff lockset.Set, endVC vclock.ID) {
	effID := r.ls.Intern(eff.StripTS())
	key := storeKey{
		tid: os.tid, addr: os.addr, size: os.size, site: os.site,
		eff: effID, start: os.start, end: endVC, endKind: kind,
	}
	if idx, ok := r.stores[key]; ok {
		r.storeList[idx].Count++
	} else {
		r.stores[key] = int32(len(r.storeList))
		r.storeList = append(r.storeList, StoreData{
			TID: os.tid, Addr: os.addr, Size: os.size, Site: os.site,
			Eff: effID, Start: os.start, End: endVC, EndKind: kind, Count: 1,
		})
	}
	r.stats.DynamicStores++
}

// finish closes every store still unpersisted when the trace ends: their
// windows are unbounded, so no lock protects them (a crash at any later
// point loses the value) and their effective lockset is empty.
func (r *replayer) finish() {
	// Deterministic record order: walk still-open lines in address order.
	lineKeys := make([]uint64, 0, len(r.lines))
	for line := range r.lines {
		lineKeys = append(lineKeys, line)
	}
	sort.Slice(lineKeys, func(i, j int) bool { return lineKeys[i] < lineKeys[j] })
	for _, line := range lineKeys {
		for _, os := range r.lines[line] {
			if os.closed {
				continue
			}
			os.closed = true
			if r.onWindow != nil {
				r.onWindow(StoreWindow{
					StoreSite: os.site, TID: os.tid, Addr: os.addr, Size: os.size,
					Start: os.openIdx, End: r.stats.Events, EndKind: EndNone,
				})
			}
			r.stats.UnpersistedAtEnd++
			var eff lockset.Set
			if !r.cfg.EffectiveLockset {
				eff = os.set
			}
			r.record(os, EndNone, eff, NoVC)
		}
	}
	r.stats.StoreRecords = len(r.storeList)
	r.stats.LoadRecords = len(r.loadList)
}
