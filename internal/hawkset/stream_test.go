package hawkset

import (
	"math/rand"
	"testing"

	"hawkset/internal/trace"
)

// TestStreamMatchesOffline: feeding events one at a time produces exactly
// the offline Analyze result.
func TestStreamMatchesOffline(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := randTrace(rand.New(rand.NewSource(seed)))
		offline := Analyze(tr, DefaultConfig())

		s := NewStream(tr.Sites, DefaultConfig())
		for _, e := range tr.Events {
			s.Feed(e)
		}
		online := s.Finish()

		if len(offline.Reports) != len(online.Reports) {
			t.Fatalf("seed %d: offline %d reports, online %d", seed, len(offline.Reports), len(online.Reports))
		}
		for i := range offline.Reports {
			if offline.Reports[i].StoreFrame != online.Reports[i].StoreFrame ||
				offline.Reports[i].LoadFrame != online.Reports[i].LoadFrame {
				t.Fatalf("seed %d: report %d differs", seed, i)
			}
		}
		if offline.Stats != online.Stats {
			t.Fatalf("seed %d: stats differ:\n%+v\n%+v", seed, offline.Stats, online.Stats)
		}
	}
}

// TestStreamLifecycle: Feed after Finish and double Finish panic loudly
// rather than corrupting results.
func TestStreamLifecycle(t *testing.T) {
	tr := trace.NewBuilder()
	tr.Store(1, 0x100, 8, "s")
	s := NewStream(tr.T.Sites, DefaultConfig())
	s.Feed(tr.T.Events[0])
	s.Finish()
	mustPanic(t, func() { s.Feed(tr.T.Events[0]) })
	mustPanic(t, func() { s.Finish() })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
