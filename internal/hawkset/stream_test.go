package hawkset

import (
	"errors"
	"math/rand"
	"testing"

	"hawkset/internal/trace"
)

// TestStreamMatchesOffline: feeding events one at a time produces exactly
// the offline Analyze result.
func TestStreamMatchesOffline(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := randTrace(rand.New(rand.NewSource(seed)))
		offline := Analyze(tr, DefaultConfig())

		s := NewStream(tr.Sites, DefaultConfig())
		for _, e := range tr.Events {
			if err := s.Feed(e); err != nil {
				t.Fatalf("seed %d: Feed: %v", seed, err)
			}
		}
		online, err := s.Finish()
		if err != nil {
			t.Fatalf("seed %d: Finish: %v", seed, err)
		}

		if len(offline.Reports) != len(online.Reports) {
			t.Fatalf("seed %d: offline %d reports, online %d", seed, len(offline.Reports), len(online.Reports))
		}
		for i := range offline.Reports {
			if offline.Reports[i].StoreFrame != online.Reports[i].StoreFrame ||
				offline.Reports[i].LoadFrame != online.Reports[i].LoadFrame {
				t.Fatalf("seed %d: report %d differs", seed, i)
			}
		}
		if offline.Stats != online.Stats {
			t.Fatalf("seed %d: stats differ:\n%+v\n%+v", seed, offline.Stats, online.Stats)
		}
	}
}

// TestStreamLifecycle: Feed after Finish and double Finish surface the typed
// sentinel error instead of panicking — a misbehaving event source must not
// be able to crash a server hosting the stream (internal/pmcheckd).
func TestStreamLifecycle(t *testing.T) {
	tr := trace.NewBuilder()
	tr.Store(1, 0x100, 8, "s")
	s := NewStream(tr.T.Sites, DefaultConfig())
	if err := s.Feed(tr.T.Events[0]); err != nil {
		t.Fatalf("Feed on live stream: %v", err)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatalf("first Finish: %v", err)
	}
	if err := s.Feed(tr.T.Events[0]); !errors.Is(err, ErrStreamFinished) {
		t.Fatalf("Feed after Finish: got %v, want ErrStreamFinished", err)
	}
	if res, err := s.Finish(); !errors.Is(err, ErrStreamFinished) || res != nil {
		t.Fatalf("second Finish: got (%v, %v), want (nil, ErrStreamFinished)", res, err)
	}
}
