// Package hawkset implements the paper's primary contribution: PM-Aware
// Lockset Analysis for detecting persistency-induced races (HawkSet,
// EuroSys 2025, §3).
//
// A persistency-induced race (Definition 1) exists when a thread T2 loads a
// value modified by another thread T1 that is not guaranteed to be persisted
// at the time of the access. The analysis detects such races without
// observing them: it suffices that a store's *effective lockset* — the set
// of locks protecting both the store and the end of its unpersisted window
// — is disjoint from the lockset of an overlapping load by a concurrent
// thread.
//
// The pipeline follows §3.2: the Instrumentation stage is internal/pmrt
// (which produces a trace); this package replays the trace through the
// Memory Simulation, Lock Tracking and Thread Tracking components plus the
// Initialization Removal Heuristic (stage 2), and finally runs the PM-Aware
// Lockset Analysis (stage 3, Algorithm 1) with the paper's grouping and
// interning optimizations (§4).
package hawkset

import (
	"fmt"

	"hawkset/internal/lockset"
	"hawkset/internal/obs"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
	"hawkset/internal/vclock"
)

// Config selects analysis features. The zero value disables everything;
// use DefaultConfig for the paper's configuration. Every switch exists so
// the ablation benchmarks can quantify each design choice.
type Config struct {
	// IRH enables the Initialization Removal Heuristic (§3.1.3).
	IRH bool
	// EffectiveLockset computes store locksets over the full unpersisted
	// window (§3.1.2). Disabled, a store keeps the plain lockset of its
	// store instruction — the traditional analysis that misses Fig. 1c.
	EffectiveLockset bool
	// Timestamps tags lockset entries with acquisition timestamps so a
	// release+reacquire between store and persist empties the effective
	// lockset (Fig. 2d). Only meaningful with EffectiveLockset.
	Timestamps bool
	// HBFilter prunes access pairs ordered by inter-thread happens-before
	// (thread create/join vector clocks, §3.1.2).
	HBFilter bool
	// Epochs answers happens-before queries through the FastTrack-style
	// (tid, tick) epoch summaries the replayer attaches to interned thread
	// clocks: one component compare instead of a full vector walk. The
	// reduction is exact, so reports, order and Stats are byte-identical
	// with the switch on or off; off is the full-VC reference path the
	// differential tests compare against. Ignored (full VCs used) when the
	// trace broke the ownership invariant the reduction needs — see
	// Result.EpochSafe.
	Epochs bool
	// StoreStore additionally reports store-store pairs. The paper
	// deliberately does not (§3.1.1): store-store pairs cannot cause the
	// causal load-side-effect dependency of a persistency-induced race.
	// Available for experimentation only.
	StoreStore bool
	// AllocAware lets the Initialization Removal Heuristic consume the
	// allocator events of a trace captured with pmrt's InstrumentAllocs: an
	// allocation resets the covered addresses' publication state, so the
	// safe reinitialization of recycled PM is pruned like first-time
	// initialization. This is the fix for the memcached-pmem false
	// positives that §7 discusses and deliberately leaves out of the
	// original tool (it requires instrumenting non-standardized PM
	// allocators). Traces without alloc events are unaffected.
	AllocAware bool
	// Workers is the number of goroutines the PM-Aware Lockset Analysis
	// (stage ③) shards its cache-line buckets across: 0 uses GOMAXPROCS,
	// 1 runs the sequential reference path. Every shard keeps private memo
	// tables, reports and counters, and the shards are merged
	// deterministically, so reports, their order and the merged Stats are
	// byte-identical for any worker count.
	Workers int
	// Metrics, when non-nil, receives side-band observability data: a live
	// event-throughput counter, the open-store retention gauges, per-stage
	// timings (replay ①/② vs analyze ③ vs report sort, including per-shard
	// timing in the parallel path) and the record/dedup/pair counters.
	// Strictly side-band: the analysis never reads the registry, so Result,
	// reports and Stats are byte-identical with Metrics nil or set — no
	// wall-clock value ever flows into analysis output (see DESIGN.md).
	Metrics *obs.Registry
	// EADR analyzes the trace under extended-ADR semantics (§2.1): the
	// persistent domain includes the cache, so a store is persistent the
	// moment it becomes visible. No visible-but-unpersisted window exists
	// and the persistency-induced race class is empty by construction —
	// the analysis reports nothing. The switch exists as the §2.1 ablation:
	// it quantifies that every report under normal semantics is
	// persistency-induced rather than a plain data race.
	EADR bool
}

// DefaultConfig returns the configuration evaluated in the paper.
func DefaultConfig() Config {
	return Config{IRH: true, EffectiveLockset: true, Timestamps: true, HBFilter: true, Epochs: true}
}

// EndKind says how a store's unpersisted window ended.
type EndKind uint8

// Window end kinds.
const (
	// EndNone: the store was still unpersisted when the trace ended. Its
	// window is unbounded and its effective lockset is empty: no lock can
	// protect an indefinitely-unpersisted value.
	EndNone EndKind = iota
	// EndPersist: an explicit flush of the line followed by a fence.
	EndPersist
	// EndOverwrite: a later store overwrote the value before it persisted.
	EndOverwrite
)

func (k EndKind) String() string {
	switch k {
	case EndPersist:
		return "persist"
	case EndOverwrite:
		return "overwrite"
	default:
		return "unpersisted"
	}
}

// NoVC marks an absent vector clock (unbounded window end).
const NoVC vclock.ID = -1

// StoreData is Algorithm 1's store record: one deduplicated store shape.
type StoreData struct {
	TID     int32
	Addr    uint64
	Size    uint32
	Site    sites.ID
	Eff     lockset.ID // effective lockset
	Start   vclock.ID  // vector clock at the store instruction
	End     vclock.ID  // vector clock at the window end (NoVC if unbounded)
	EndKind EndKind
	Count   uint64 // dynamic occurrences collapsed into this record
}

// LoadData is Algorithm 1's load record: one deduplicated load shape.
type LoadData struct {
	TID   int32
	Addr  uint64
	Size  uint32
	Site  sites.ID
	LS    lockset.ID
	VC    vclock.ID
	Count uint64
}

// Report is one detected persistency-induced race, deduplicated by the
// (store site, load site) pair, the way the paper's Table 2 reports races.
type Report struct {
	StoreSite  sites.ID
	LoadSite   sites.ID
	StoreFrame sites.Frame
	LoadFrame  sites.Frame
	// Addr is an example racing address.
	Addr uint64
	// StoreTID/LoadTID are the threads of one example racing pair.
	StoreTID, LoadTID int32
	// EndKind of the example store window.
	EndKind EndKind
	// Unpersisted is true when at least one contributing store window was
	// never explicitly persisted (EndNone or EndOverwrite): the signature of
	// a missing/misplaced persist, as opposed to a benign lock-free read of
	// correctly persisted data.
	Unpersisted bool
	// StoreStore marks a write-write pair (only produced under
	// Config.StoreStore; the load fields then describe the second store).
	StoreStore bool
	// Pairs is the number of (store record, load record) pairs behind this
	// report; Weight is the number of dynamic access pairs.
	Pairs  int
	Weight uint64
}

// String renders the report like the paper's bug tables.
func (r Report) String() string {
	return fmt.Sprintf("store %s / load %s (addr=%#x, T%d vs T%d, %s, pairs=%d)",
		r.StoreFrame, r.LoadFrame, r.Addr, r.StoreTID, r.LoadTID, r.EndKind, r.Pairs)
}

// Stats summarizes an analysis run.
type Stats struct {
	Events            int
	PMAccesses        int
	StoreRecords      int
	LoadRecords       int
	DynamicStores     uint64
	DynamicLoads      uint64
	IRHDroppedStores  uint64
	IRHDroppedLoads   uint64
	UnpersistedAtEnd  int
	LocksetsInterned  int
	VClocksInterned   int
	PairsChecked      uint64
	PairsHBFiltered   uint64
	PairsLockFiltered uint64
}

// Result is the output of Analyze. Stores and Loads are value slices (the
// replayer's dedup arenas handed over whole); take the address of an element
// to hold a record by pointer.
type Result struct {
	Reports []Report
	Stores  []StoreData
	Loads   []LoadData
	Stats   Stats

	// EpochSafe reports whether the replay maintained the clock-ownership
	// invariant the epoch fast path requires (no live-TID reuse). When
	// false, the analysis used full vector-clock compares even under
	// Config.Epochs.
	EpochSafe bool

	Locksets *lockset.Table
	VClocks  *vclock.Table
	Sites    *sites.Table
}

// Analyze runs the full pipeline over a recorded trace. It is the offline
// twin of Stream: the same replay consumes the stored events.
func Analyze(tr *trace.Trace, cfg Config) *Result {
	s := NewStream(tr.Sites, cfg)
	for _, e := range tr.Events {
		s.Feed(e) //nolint:errcheck // a fresh stream only errors after Finish
	}
	res, _ := s.Finish() // first Finish on a fresh stream cannot fail
	return res
}
