// Differential fuzz: the online Stream (Feed + Finish) and the offline
// Analyze must produce byte-identical report documents for any trace, and
// enabling metrics must not perturb either. The test lives in the external
// test package because it builds report.Documents (internal/report imports
// hawkset, so the internal test package would create an import cycle).
package hawkset_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hawkset/internal/hawkset"
	"hawkset/internal/obs"
	"hawkset/internal/report"
	"hawkset/internal/trace"
)

// randDiffTrace builds a random trace that exercises the replayer paths the
// plain property-test generator does not: multi-line stores (up to four
// cache lines), same-address overwrites, non-temporal stores, raw
// flush/fence persistency, and cross-thread flushes (one thread stores, a
// different thread flushes the line and fences).
func randDiffTrace(rng *rand.Rand) *trace.Trace {
	b := trace.NewBuilder()
	nThreads := 2 + rng.Intn(3)
	nLocks := 1 + rng.Intn(3)
	sizes := []uint32{0, 1, 8, 64, 80, 128, 200}
	// A small, shared address pool with sub-line offsets so stores overlap
	// and overwrite each other both within and across cache lines.
	var addrs []uint64
	for i := 0; i < 4+rng.Intn(5); i++ {
		addrs = append(addrs, 0x1000+uint64(rng.Intn(8))*64+uint64(rng.Intn(3))*8)
	}
	for t := 1; t <= nThreads; t++ {
		b.Create(0, int32(t), "main.create")
	}
	for t := 1; t <= nThreads; t++ {
		tid := int32(t)
		for op := 0; op < 4+rng.Intn(14); op++ {
			addr := addrs[rng.Intn(len(addrs))]
			size := sizes[rng.Intn(len(sizes))]
			lock := uint64(1 + rng.Intn(nLocks))
			locked := rng.Intn(3) == 0
			if locked {
				b.Lock(tid, lock, "lock")
			}
			switch rng.Intn(6) {
			case 0:
				b.Store(tid, addr, size, "store")
			case 1:
				b.Store(tid, addr, size, "store")
				b.Persist(tid, addr, size, "persist")
			case 2:
				b.NTStore(tid, addr, size, "ntstore")
			case 3:
				// Raw flush/fence, possibly of a line this thread never
				// wrote — the cross-thread flush path.
				b.Flush(tid, addr, "flush")
				if rng.Intn(2) == 0 {
					b.Fence(tid, "fence")
				}
			case 4:
				b.Load(tid, addr, size, "load")
			default:
				// Overwrite: two stores to the same address back to back,
				// the second closing the first's window.
				b.Store(tid, addr, size, "store.first")
				b.Store(tid, addr, size, "store.second")
			}
			if locked {
				b.Unlock(tid, lock, "unlock")
			}
		}
		if rng.Intn(2) == 0 {
			b.Fence(tid, "fence.tail")
		}
	}
	for t := 1; t <= nThreads; t++ {
		b.Join(0, int32(t), "main.join")
	}
	return b.T
}

// renderOffline analyzes the whole trace at once and renders the document.
func renderOffline(t *testing.T, tr *trace.Trace, cfg hawkset.Config) []byte {
	t.Helper()
	doc := report.New(hawkset.Analyze(tr, cfg), "fuzz", "randDiffTrace", nil)
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatalf("offline WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// renderOnline feeds the trace event-by-event through a Stream and renders
// the document from Finish's result.
func renderOnline(t *testing.T, tr *trace.Trace, cfg hawkset.Config) []byte {
	t.Helper()
	st := hawkset.NewStream(tr.Sites, cfg)
	for _, e := range tr.Events {
		if err := st.Feed(e); err != nil {
			t.Fatalf("Feed: %v", err)
		}
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	doc := report.New(res, "fuzz", "randDiffTrace", nil)
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatalf("online WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestDifferentialStreamVsAnalyze: for random traces, the four combinations
// {offline, online} x {metrics off, metrics on} all produce byte-identical
// report documents. This is the side-band contract made executable: metrics
// may observe the analysis but never steer it, and the streaming pipeline is
// a pure refactoring of the batch one.
func TestDifferentialStreamVsAnalyze(t *testing.T) {
	for _, irh := range []bool{true, false} {
		irh := irh
		f := func(seed int64) bool {
			tr := randDiffTrace(rand.New(rand.NewSource(seed)))

			base := hawkset.DefaultConfig()
			base.IRH = irh
			offline := renderOffline(t, tr, base)
			online := renderOnline(t, tr, base)

			withMetrics := base
			withMetrics.Metrics = obs.NewRegistry()
			offlineM := renderOffline(t, tr, withMetrics)
			withMetrics.Metrics = obs.NewRegistry()
			onlineM := renderOnline(t, tr, withMetrics)

			return bytes.Equal(offline, online) &&
				bytes.Equal(offline, offlineM) &&
				bytes.Equal(offline, onlineM)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("irh=%v: %v", irh, err)
		}
	}
}

// TestDifferentialMetricsPopulated: the side-band snapshot actually carries
// the stage timings and counters the document deliberately omits.
func TestDifferentialMetricsPopulated(t *testing.T) {
	tr := randDiffTrace(rand.New(rand.NewSource(7)))
	cfg := hawkset.DefaultConfig()
	cfg.Metrics = obs.NewRegistry()
	renderOnline(t, tr, cfg)

	if n := cfg.Metrics.Counter("hawkset.replay.events").Value(); n == 0 {
		t.Error("hawkset.replay.events not counted")
	}
	if cfg.Metrics.Gauge("hawkset.replay.open_stores").Max() == 0 {
		t.Error("hawkset.replay.open_stores high-water never moved")
	}
	if cfg.Metrics.Histogram("hawkset.stage.analyze").Count() == 0 {
		t.Error("hawkset.stage.analyze never observed")
	}
	if cfg.Metrics.Histogram("hawkset.stage.replay").Count() == 0 {
		t.Error("hawkset.stage.replay never observed")
	}
}

// TestDifferentialEpochVsReference: the epoch fast path is an exact
// reduction, so {epochs on, epochs off (full-VC reference)} × {offline,
// stream} × {workers 1, 3} must all produce byte-identical report documents.
// The random traces include thread creates and joins, the events whose clock
// propagation the epoch ownership argument is about, plus store-store
// pairing so the write-write HB checks go through the epoch path too.
func TestDifferentialEpochVsReference(t *testing.T) {
	for _, storeStore := range []bool{false, true} {
		storeStore := storeStore
		f := func(seed int64) bool {
			tr := randDiffTrace(rand.New(rand.NewSource(seed)))

			ref := hawkset.DefaultConfig()
			ref.Epochs = false
			ref.StoreStore = storeStore
			want := renderOffline(t, tr, ref)

			epoch := ref
			epoch.Epochs = true
			for _, workers := range []int{1, 3} {
				cfg := epoch
				cfg.Workers = workers
				if !bytes.Equal(want, renderOffline(t, tr, cfg)) {
					return false
				}
				if !bytes.Equal(want, renderOnline(t, tr, cfg)) {
					return false
				}
				cfgRef := ref
				cfgRef.Workers = workers
				if !bytes.Equal(want, renderOnline(t, tr, cfgRef)) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("storeStore=%v: %v", storeStore, err)
		}
	}
}
