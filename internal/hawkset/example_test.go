package hawkset_test

import (
	"fmt"

	"hawkset/internal/hawkset"
	"hawkset/internal/trace"
)

// ExampleAnalyze runs the paper's Figure 1c through the analysis: both
// accesses hold lock A, but the persistency escapes the critical section,
// so the effective lockset is empty and the race is reported.
func ExampleAnalyze() {
	b := trace.NewBuilder()
	b.Create(0, 1, "main.create1").Create(0, 2, "main.create2")
	b.Lock(1, 1, "t1.lock")
	b.Store(1, 0x100, 8, "t1.store")
	b.Unlock(1, 1, "t1.unlock")
	b.Persist(1, 0x100, 8, "t1.persist") // outside the critical section!
	b.Lock(2, 1, "t2.lock")
	b.Load(2, 0x100, 8, "t2.load")
	b.Unlock(2, 1, "t2.unlock")
	b.Join(0, 1, "main.join").Join(0, 2, "main.join")

	cfg := hawkset.DefaultConfig()
	cfg.IRH = false // two-access toy program: nothing to prune
	res := hawkset.Analyze(b.T, cfg)
	for _, r := range res.Reports {
		fmt.Printf("race: store %s vs load %s\n", r.StoreFrame, r.LoadFrame)
	}
	// Output:
	// race: store t1.store vs load t2.load
}

// ExampleStream shows the online mode: identical results without retaining
// the trace.
func ExampleStream() {
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Store(1, 0x100, 8, "t1.store") // never persisted
	b.Load(2, 0x100, 8, "t2.load")
	b.Join(0, 1, "j").Join(0, 2, "j")

	cfg := hawkset.DefaultConfig()
	cfg.IRH = false
	s := hawkset.NewStream(b.T.Sites, cfg)
	for _, e := range b.T.Events {
		s.Feed(e) //nolint:errcheck // fresh stream: cannot fail before Finish
	}
	res, _ := s.Finish()
	fmt.Printf("%d report(s), unpersisted=%v\n", len(res.Reports), res.Reports[0].Unpersisted)
	// Output:
	// 1 report(s), unpersisted=true
}
