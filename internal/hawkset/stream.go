package hawkset

import (
	"sort"

	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// Stream is the online analysis mode: events are consumed as the
// instrumented application produces them, so no trace is retained in memory.
// This mirrors the paper's implementation detail that the Initialization
// Removal Heuristic runs alongside the Instrumentation stage (§4), and
// extends it to the whole stage-①/② pipeline; only the (far smaller)
// deduplicated access records are kept until Finish runs stage ③.
//
// Wire a Stream to a runtime with pmrt's Config.NoTrace plus an EventSink:
//
//	st := hawkset.NewStream(rt.Trace.Sites, cfg)
//	rt.EventSink = st.Feed
//	... run ...
//	res := st.Finish()
//
// Feed is not safe for concurrent use; the cooperative runtime serializes
// event emission.
type Stream struct {
	rp       *replayer
	cfg      Config
	sites    *sites.Table
	finished bool
}

// NewStream creates an online analyzer. The site table must be the one the
// event source uses (rt.Trace.Sites), so report frames resolve.
func NewStream(st *sites.Table, cfg Config) *Stream {
	rp := newReplayer(&trace.Trace{Sites: st}, cfg)
	return &Stream{rp: rp, cfg: cfg, sites: st}
}

// Feed consumes one event.
func (s *Stream) Feed(e trace.Event) {
	if s.finished {
		panic("hawkset: Feed after Finish")
	}
	s.rp.feed(e)
}

// Finish closes remaining store windows, runs the PM-Aware Lockset Analysis
// and returns the result. It may be called once.
func (s *Stream) Finish() *Result {
	if s.finished {
		panic("hawkset: Finish called twice")
	}
	s.finished = true
	s.rp.finish()
	res := &Result{
		Stores:   s.rp.storeList,
		Loads:    s.rp.loadList,
		Stats:    s.rp.stats,
		Locksets: s.rp.ls,
		VClocks:  s.rp.vc,
		Sites:    s.sites,
	}
	res.Stats.LocksetsInterned = s.rp.ls.Len()
	res.Stats.VClocksInterned = s.rp.vc.Len()
	analyze(res, s.cfg)
	sortReports(res.Reports)
	return res
}

// sortReports orders reports by their rendered frames. The sort keys are
// formatted once up front — recomputing Frame.String() inside the comparator
// made the sort O(n log n) string builds — and the sort is stable, so frame
// ties (e.g. a store-load and a store-store report over the same site pair)
// keep analyze's deterministic first-appearance order.
func sortReports(reports []Report) {
	type sortKey struct{ store, load string }
	keys := make([]sortKey, len(reports))
	idx := make([]int, len(reports))
	for i, r := range reports {
		keys[i] = sortKey{store: r.StoreFrame.String(), load: r.LoadFrame.String()}
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		a, b := keys[idx[i]], keys[idx[j]]
		if a.store != b.store {
			return a.store < b.store
		}
		return a.load < b.load
	})
	sorted := make([]Report, len(reports))
	for i, j := range idx {
		sorted[i] = reports[j]
	}
	copy(reports, sorted)
}
