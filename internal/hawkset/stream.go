package hawkset

import (
	"sort"

	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// Stream is the online analysis mode: events are consumed as the
// instrumented application produces them, so no trace is retained in memory.
// This mirrors the paper's implementation detail that the Initialization
// Removal Heuristic runs alongside the Instrumentation stage (§4), and
// extends it to the whole stage-①/② pipeline; only the (far smaller)
// deduplicated access records are kept until Finish runs stage ③.
//
// Wire a Stream to a runtime with pmrt's Config.NoTrace plus an EventSink:
//
//	st := hawkset.NewStream(rt.Trace.Sites, cfg)
//	rt.EventSink = st.Feed
//	... run ...
//	res := st.Finish()
//
// Feed is not safe for concurrent use; the cooperative runtime serializes
// event emission.
type Stream struct {
	rp       *replayer
	cfg      Config
	sites    *sites.Table
	finished bool
}

// NewStream creates an online analyzer. The site table must be the one the
// event source uses (rt.Trace.Sites), so report frames resolve.
func NewStream(st *sites.Table, cfg Config) *Stream {
	rp := newReplayer(&trace.Trace{Sites: st}, cfg)
	return &Stream{rp: rp, cfg: cfg, sites: st}
}

// Feed consumes one event.
func (s *Stream) Feed(e trace.Event) {
	if s.finished {
		panic("hawkset: Feed after Finish")
	}
	s.rp.feed(e)
}

// Finish closes remaining store windows, runs the PM-Aware Lockset Analysis
// and returns the result. It may be called once.
func (s *Stream) Finish() *Result {
	if s.finished {
		panic("hawkset: Finish called twice")
	}
	s.finished = true
	s.rp.finish()
	res := &Result{
		Stores:   s.rp.storeList,
		Loads:    s.rp.loadList,
		Stats:    s.rp.stats,
		Locksets: s.rp.ls,
		VClocks:  s.rp.vc,
		Sites:    s.sites,
	}
	res.Stats.LocksetsInterned = s.rp.ls.Len()
	res.Stats.VClocksInterned = s.rp.vc.Len()
	analyze(res, s.cfg)
	sort.Slice(res.Reports, func(i, j int) bool {
		a, b := res.Reports[i], res.Reports[j]
		if a.StoreFrame.String() != b.StoreFrame.String() {
			return a.StoreFrame.String() < b.StoreFrame.String()
		}
		return a.LoadFrame.String() < b.LoadFrame.String()
	})
	return res
}
