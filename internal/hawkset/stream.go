package hawkset

import (
	"errors"
	"sort"
	"time"

	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// ErrStreamFinished is returned by Feed and Finish once Finish has run: the
// stream's state has been handed over to the Result and accepts nothing
// more. It is an ordinary error, not a panic, so a long-running server
// multiplexing many streams (internal/pmcheckd) can reject a misbehaving
// event source without dying.
var ErrStreamFinished = errors.New("hawkset: stream already finished")

// Stream is the online analysis mode: events are consumed as the
// instrumented application produces them, so no trace is retained in memory.
// This mirrors the paper's implementation detail that the Initialization
// Removal Heuristic runs alongside the Instrumentation stage (§4), and
// extends it to the whole stage-①/② pipeline; only the (far smaller)
// deduplicated access records are kept until Finish runs stage ③.
//
// Wire a Stream to a runtime with pmrt's Config.NoTrace plus an EventSink:
//
//	st := hawkset.NewStream(rt.Trace.Sites, cfg)
//	rt.EventSink = func(e trace.Event) { st.Feed(e) }
//	... run ...
//	res, err := st.Finish()
//
// Feed is not safe for concurrent use; the cooperative runtime serializes
// event emission.
type Stream struct {
	rp       *replayer
	cfg      Config
	sites    *sites.Table
	finished bool
	// replayStart is the wall-clock instant of the first Feed, recorded only
	// when metrics are enabled; it times the streaming ①/② stage. The value
	// never reaches the Result — it lands in the metrics snapshot only.
	replayStart time.Time
}

// NewStream creates an online analyzer. The site table must be the one the
// event source uses (rt.Trace.Sites), so report frames resolve.
func NewStream(st *sites.Table, cfg Config) *Stream {
	rp := newReplayer(&trace.Trace{Sites: st}, cfg)
	return &Stream{rp: rp, cfg: cfg, sites: st}
}

// Feed consumes one event. After Finish it returns ErrStreamFinished and
// drops the event — the stream's dedup state is gone, so late events cannot
// be absorbed, but they also must not crash the process.
func (s *Stream) Feed(e trace.Event) error {
	if s.finished {
		return ErrStreamFinished
	}
	if s.cfg.Metrics != nil && s.replayStart.IsZero() {
		s.replayStart = time.Now()
	}
	s.rp.feed(e)
	return nil
}

// Finish closes remaining store windows, runs the PM-Aware Lockset Analysis
// and returns the result. A second call returns ErrStreamFinished.
func (s *Stream) Finish() (*Result, error) {
	if s.finished {
		return nil, ErrStreamFinished
	}
	s.finished = true
	s.rp.finish()
	if s.cfg.Metrics != nil && !s.replayStart.IsZero() {
		s.cfg.Metrics.Histogram("hawkset.stage.replay").Observe(time.Since(s.replayStart))
	}
	res := &Result{
		Stores:    s.rp.storeList,
		Loads:     s.rp.loadList,
		Stats:     s.rp.stats,
		EpochSafe: s.rp.epochSafe,
		Locksets:  s.rp.ls,
		VClocks:   s.rp.vc,
		Sites:     s.sites,
	}
	res.Stats.LocksetsInterned = s.rp.ls.Len()
	res.Stats.VClocksInterned = s.rp.vc.Len()
	stopAnalyze := s.cfg.Metrics.Stage("hawkset.stage.analyze")
	analyze(res, s.cfg)
	stopAnalyze()
	stopSort := s.cfg.Metrics.Stage("hawkset.stage.report_sort")
	sortReports(res.Reports)
	stopSort()
	s.recordStats(&res.Stats, len(res.Reports))
	return res, nil
}

// recordStats mirrors the final Stats into the metrics registry, so a
// snapshot carries the record/dedup/pair counters next to the stage timings.
// Read-only with respect to the result: metrics stay side-band.
func (s *Stream) recordStats(st *Stats, reports int) {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	m.Counter("hawkset.records.stores").Add(uint64(st.StoreRecords))
	m.Counter("hawkset.records.loads").Add(uint64(st.LoadRecords))
	m.Counter("hawkset.dynamic.stores").Add(st.DynamicStores)
	m.Counter("hawkset.dynamic.loads").Add(st.DynamicLoads)
	m.Counter("hawkset.irh.dropped_stores").Add(st.IRHDroppedStores)
	m.Counter("hawkset.irh.dropped_loads").Add(st.IRHDroppedLoads)
	m.Counter("hawkset.pairs.checked").Add(st.PairsChecked)
	m.Counter("hawkset.pairs.hb_filtered").Add(st.PairsHBFiltered)
	m.Counter("hawkset.pairs.lock_filtered").Add(st.PairsLockFiltered)
	m.Counter("hawkset.reports").Add(uint64(reports))
}

// sortReports orders reports by their rendered frames. The sort keys are
// formatted once up front — recomputing Frame.String() inside the comparator
// made the sort O(n log n) string builds — and the sort is stable, so frame
// ties (e.g. a store-load and a store-store report over the same site pair)
// keep analyze's deterministic first-appearance order. Keys and reports are
// swapped together by one stable sort; no index indirection or copy-back.
func sortReports(reports []Report) {
	keys := make([]reportSortKey, len(reports))
	for i, r := range reports {
		keys[i] = reportSortKey{store: r.StoreFrame.String(), load: r.LoadFrame.String()}
	}
	sort.Stable(&reportSorter{keys: keys, reports: reports})
}

type reportSortKey struct{ store, load string }

// reportSorter sorts a report slice and its precomputed key slice in lockstep.
type reportSorter struct {
	keys    []reportSortKey
	reports []Report
}

func (s *reportSorter) Len() int { return len(s.reports) }

func (s *reportSorter) Less(i, j int) bool {
	a, b := s.keys[i], s.keys[j]
	if a.store != b.store {
		return a.store < b.store
	}
	return a.load < b.load
}

func (s *reportSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.reports[i], s.reports[j] = s.reports[j], s.reports[i]
}
