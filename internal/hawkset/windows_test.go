package hawkset

import (
	"testing"

	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// TestWindows builds a hand-written trace and checks the extracted windows'
// event coordinates and end kinds:
//
//	0: T1 store   a       -> closed by fence at 2 (EndPersist, [0,2))
//	1: T1 flush   a
//	2: T1 fence
//	3: T1 store   b       -> closed by overwrite at 4 (EndOverwrite, [3,4))
//	4: T2 store   b       -> still open at trace end (EndNone, [4,6))
//	5: T1 load    b
func TestWindows(t *testing.T) {
	st := sites.NewTable()
	s := st.Here(0)
	const a, b = 0x0, 0x100
	tr := &trace.Trace{Sites: st, Events: []trace.Event{
		{Kind: trace.KStore, TID: 1, Addr: a, Size: 8, Site: s},
		{Kind: trace.KFlush, TID: 1, Addr: a, Site: s},
		{Kind: trace.KFence, TID: 1, Site: s},
		{Kind: trace.KStore, TID: 1, Addr: b, Size: 8, Site: s},
		{Kind: trace.KStore, TID: 2, Addr: b, Size: 8, Site: s},
		{Kind: trace.KLoad, TID: 1, Addr: b, Size: 8, Site: s},
	}}

	ws := Windows(tr, Config{})
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 3: %+v", len(ws), ws)
	}
	want := []StoreWindow{
		{StoreSite: s, TID: 1, Addr: a, Size: 8, Start: 0, End: 2, EndKind: EndPersist},
		{StoreSite: s, TID: 1, Addr: b, Size: 8, Start: 3, End: 4, EndKind: EndOverwrite},
		{StoreSite: s, TID: 2, Addr: b, Size: 8, Start: 4, End: 6, EndKind: EndNone},
	}
	for i, w := range want {
		if ws[i] != w {
			t.Errorf("window %d = %+v, want %+v", i, ws[i], w)
		}
	}

	// EADR: no unpersisted windows exist at all.
	if got := Windows(tr, Config{EADR: true}); len(got) != 0 {
		t.Errorf("EADR produced %d windows, want 0", len(got))
	}
}
