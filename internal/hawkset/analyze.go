package hawkset

import (
	"runtime"
	"sort"
	"sync"

	"hawkset/internal/lockset"
	"hawkset/internal/pmem"
	"hawkset/internal/sites"
	"hawkset/internal/vclock"
)

// analyze is stage ③: the PM-Aware Lockset Analysis of Algorithm 1. Every
// store record is paired with every load record to an overlapping address
// range from a different thread; pairs ordered by inter-thread
// happens-before are pruned; the remaining pairs race iff the store's
// effective lockset and the load's lockset share no lock.
//
// The implementation applies the optimizations of §4: accesses are grouped
// by cache line, records are deduplicated shapes with counts (built during
// replay), lockset-disjointness and vector-clock comparisons are memoized by
// interned ID pairs, and intersections short-circuit on empty or equal
// locksets.
//
// The cache-line buckets are independent work units, so the pairing is
// sharded across Config.Workers goroutines: the sorted bucket list is
// partitioned into contiguous ranges, each worker runs with private memo
// tables, a private report map and private counters, and the per-shard
// results are merged in shard order. The merge reproduces the sequential
// pair-processing order exactly, so the output is byte-identical to the
// Workers=1 reference path for any worker count.
func analyze(res *Result, cfg Config) {
	// Buckets come from a block arena (most traces have thousands of
	// single-record lines; one allocation per bucket was measurable), and the
	// map is presized from the record counts.
	buckets := make(map[uint64]*storeLoadBucket, (len(res.Stores)+len(res.Loads))/4+1)
	var bkArena []storeLoadBucket
	get := func(line uint64) *storeLoadBucket {
		if b, ok := buckets[line]; ok {
			return b
		}
		if len(bkArena) == 0 {
			bkArena = make([]storeLoadBucket, 64)
		}
		b := &bkArena[0]
		bkArena = bkArena[1:]
		buckets[line] = b
		return b
	}
	for i := range res.Stores {
		st := &res.Stores[i]
		linesOf(st.Addr, st.Size, func(line uint64) {
			b := get(line)
			b.stores = append(b.stores, st)
		})
	}
	for i := range res.Loads {
		ld := &res.Loads[i]
		linesOf(ld.Addr, ld.Size, func(line uint64) {
			b := get(line)
			b.loads = append(b.loads, ld)
		})
	}

	// Iterate buckets in address order so report example fields (address,
	// thread pair, end kind) are deterministic for a given trace.
	lineKeys := make([]uint64, 0, len(buckets))
	for line := range buckets {
		lineKeys = append(lineKeys, line)
	}
	sort.Slice(lineKeys, func(i, j int) bool { return lineKeys[i] < lineKeys[j] })

	cfg.Metrics.Gauge("hawkset.analyze.buckets").Set(int64(len(lineKeys)))
	shards := partitionLines(buckets, lineKeys, workerCount(cfg, len(lineKeys)), cfg.StoreStore)
	cfg.Metrics.Gauge("hawkset.analyze.shards").Set(int64(len(shards)))
	outs := make([]*shardResult, len(shards))
	if len(shards) == 1 {
		// The sequential reference path (Workers=1, or a trace too small to
		// split).
		stop := cfg.Metrics.Stage("hawkset.stage.analyze_shard")
		outs[0] = analyzeShard(res, cfg, buckets, shards[0])
		stop()
	} else {
		var wg sync.WaitGroup
		for i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				stop := cfg.Metrics.Stage("hawkset.stage.analyze_shard")
				outs[i] = analyzeShard(res, cfg, buckets, shards[i])
				stop()
			}(i)
		}
		wg.Wait()
	}
	stopMerge := cfg.Metrics.Stage("hawkset.stage.merge")
	mergeShards(res, outs)
	stopMerge()
}

// workerCount resolves Config.Workers: 0 means GOMAXPROCS, and a shard needs
// at least one bucket to be worth a goroutine.
func workerCount(cfg Config, nLines int) int {
	n := cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > nLines {
		n = nLines
	}
	if n < 1 {
		n = 1
	}
	return n
}

// partitionLines splits the sorted bucket list into at most workers
// contiguous ranges of roughly equal pairing cost (Σ stores×loads per
// bucket, plus the store-store pairs when those are enabled). Contiguity
// keeps the merge a simple in-order concatenation; cost weighting keeps a
// few dense buckets from serializing the whole analysis.
func partitionLines(buckets map[uint64]*storeLoadBucket, lineKeys []uint64, workers int, storeStore bool) [][]uint64 {
	if workers <= 1 || len(lineKeys) <= 1 {
		return [][]uint64{lineKeys}
	}
	var total uint64
	costs := make([]uint64, len(lineKeys))
	for i, line := range lineKeys {
		b := buckets[line]
		c := uint64(len(b.stores))*uint64(len(b.loads)) + 1
		if storeStore {
			// n stores pair as n(n-1)/2, not n²/2: the n/2 overcharge per
			// bucket made thousands of single-store buckets (0 real pairs,
			// charged ½ each) look as expensive as genuine pairing work and
			// skewed the shard boundaries toward them.
			n := uint64(len(b.stores))
			c += n * (n - 1) / 2
		}
		costs[i] = c
		total += c
	}
	target := total/uint64(workers) + 1
	parts := make([][]uint64, 0, workers)
	start := 0
	var acc uint64
	for i := range lineKeys {
		acc += costs[i]
		if acc >= target && len(parts) < workers-1 {
			parts = append(parts, lineKeys[start:i+1])
			start = i + 1
			acc = 0
		}
	}
	if start < len(lineKeys) {
		parts = append(parts, lineKeys[start:])
	}
	return parts
}

// reportKey identifies one deduplicated report. Store-load and store-store
// pairs are distinct reports even when their sites coincide: a call site
// that both loads and stores (e.g. ctx.Store(dst, ctx.Load(src)) on one
// line) must not fold a write-write pair into a store-load report.
type reportKey struct {
	store, load sites.ID
	storeStore  bool
}

// shardResult is one worker's private output: its report map, the keys in
// first-appearance order (store-load and store-store tracked separately,
// because the sequential reference runs all store-load buckets before any
// store-store pairing), and its share of the pair counters.
type shardResult struct {
	reports map[reportKey]*Report
	orderSL []reportKey
	orderSS []reportKey
	stats   pairStats
}

// pairStats is the per-shard slice of the Stats pair counters.
type pairStats struct {
	checked, hbFiltered, lockFiltered uint64
}

// analyzeShard runs the pairing loops of Algorithm 1 over one contiguous
// range of cache-line buckets. It touches only shard-private state plus the
// read-only interning tables, so shards run concurrently without locks.
func analyzeShard(res *Result, cfg Config, buckets map[uint64]*storeLoadBucket, lines []uint64) *shardResult {
	out := &shardResult{reports: make(map[reportKey]*Report)}
	memoHint := 0
	for _, line := range lines {
		b := buckets[line]
		memoHint += len(b.stores) + len(b.loads)
	}
	cmp := newComparer(res.Locksets, res.VClocks, cfg.Epochs && res.EpochSafe, memoHint)
	// ldScratch caches each load's last byte and spans-lines bit per bucket,
	// computed once instead of once per store×load pair; the slice is reused
	// across the shard's buckets.
	var ldScratch []ldMeta
	for _, line := range lines {
		b := buckets[line]
		if cap(ldScratch) < len(b.loads) {
			ldScratch = make([]ldMeta, len(b.loads))
		}
		lds := ldScratch[:len(b.loads)]
		for i, ld := range b.loads {
			lds[i] = ldMeta{last: lastAddrOf(ld.Addr, ld.Size), spans: spansLines(ld.Addr, ld.Size)}
		}
		for _, st := range b.stores {
			stLast := lastAddrOf(st.Addr, st.Size)
			stSpans := spansLines(st.Addr, st.Size)
			for i, ld := range b.loads {
				// A record spanning several lines appears in several
				// buckets. Process the pair only in the first bucket the two
				// records share: that counts it exactly once for any
				// sharding of the bucket list, without the cross-bucket
				// dedup map the sequential code used to carry (buckets are
				// walked in ascending line order, so "first common line"
				// and "first encounter" coincide).
				if (stSpans || lds[i].spans) && firstCommonLine(st.Addr, ld.Addr) != line {
					continue
				}

				out.stats.checked++
				if st.TID == ld.TID { // Algorithm 1 line 16
					continue
				}
				// Inclusive-last interval test, equivalent to overlaps()
				// with the hoisted last-byte addresses. (Algorithm 1 line 15)
				if st.Addr > lds[i].last || ld.Addr > stLast {
					continue
				}
				if cfg.HBFilter && !cmp.mayRace(st, ld) { // line 17
					out.stats.hbFiltered++
					continue
				}
				if !cmp.disjoint(st.Eff, ld.LS) { // line 18
					out.stats.lockFiltered++
					continue
				}
				key := reportKey{store: st.Site, load: ld.Site}
				rep := out.reports[key]
				if rep == nil {
					rep = &Report{
						StoreSite:  st.Site,
						LoadSite:   ld.Site,
						StoreFrame: res.Sites.Lookup(st.Site),
						LoadFrame:  res.Sites.Lookup(ld.Site),
						Addr:       st.Addr,
						StoreTID:   st.TID,
						LoadTID:    ld.TID,
						EndKind:    st.EndKind,
					}
					out.reports[key] = rep
					out.orderSL = append(out.orderSL, key)
				}
				rep.Pairs++
				rep.Weight += st.Count * ld.Count
				if st.EndKind != EndPersist {
					rep.Unpersisted = true
					rep.EndKind = st.EndKind
					// Keep the example fields describing one real pair: a
					// report downgraded to a non-persist end kind must point
					// at the access pair that exhibits it, not at the first
					// (possibly persisted) pair's location.
					rep.Addr = st.Addr
					rep.StoreTID = st.TID
					rep.LoadTID = ld.TID
				}
			}
		}
	}
	if cfg.StoreStore {
		analyzeStoreStoreShard(res, cfg, buckets, lines, cmp, out)
	}
	return out
}

// analyzeStoreStoreShard pairs store windows with each other — the
// write-write checking of classic lockset analysis that HawkSet deliberately
// omits (§3.1.1). Two windows race if they can overlap in time (neither
// window end happens-before the other's start) and their effective locksets
// are disjoint.
func analyzeStoreStoreShard(res *Result, cfg Config, buckets map[uint64]*storeLoadBucket, lines []uint64, cmp *comparer, out *shardResult) {
	for _, line := range lines {
		b := buckets[line]
		for i, st := range b.stores {
			for _, st2 := range b.stores[i+1:] {
				if st.TID == st2.TID || !overlaps(st.Addr, st.Size, st2.Addr, st2.Size) {
					continue
				}
				if (spansLines(st.Addr, st.Size) || spansLines(st2.Addr, st2.Size)) &&
					firstCommonLine(st.Addr, st2.Addr) != line {
					continue
				}
				// Write-write racing is judged at the store instructions
				// themselves (the classic HB data-race check): an overwrite
				// ends the earlier window exactly at the later store, so
				// window-overlap reasoning would vacuously order every
				// overwriting pair.
				if cfg.HBFilter && (cmp.leq(st.Start, st2.Start) || cmp.leq(st2.Start, st.Start)) {
					continue
				}
				if !cmp.disjoint(st.Eff, st2.Eff) {
					continue
				}
				key := reportKey{store: st.Site, load: st2.Site, storeStore: true}
				rep := out.reports[key]
				if rep == nil {
					rep = &Report{
						StoreSite:  st.Site,
						LoadSite:   st2.Site,
						StoreFrame: res.Sites.Lookup(st.Site),
						LoadFrame:  res.Sites.Lookup(st2.Site),
						Addr:       st.Addr,
						StoreTID:   st.TID,
						LoadTID:    st2.TID,
						EndKind:    st.EndKind,
						StoreStore: true,
					}
					out.reports[key] = rep
					out.orderSS = append(out.orderSS, key)
				}
				rep.Pairs++
				rep.Weight += st.Count * st2.Count
				if st.EndKind != EndPersist || st2.EndKind != EndPersist {
					rep.Unpersisted = true
				}
			}
		}
	}
}

// mergeShards folds the per-shard reports and counters into res, in shard
// order. Because shards cover contiguous ascending bucket ranges, walking
// shard 0's keys, then shard 1's, … visits reports in exactly the
// first-appearance order of the sequential path, and applying a later
// shard's aggregate is equivalent to replaying its pairs after the earlier
// shard's — so the merged result is identical to the Workers=1 output.
func mergeShards(res *Result, outs []*shardResult) {
	for _, o := range outs {
		res.Stats.PairsChecked += o.stats.checked
		res.Stats.PairsHBFiltered += o.stats.hbFiltered
		res.Stats.PairsLockFiltered += o.stats.lockFiltered
	}

	reports := make(map[reportKey]*Report)
	var order []reportKey
	merge := func(keys []reportKey, src map[reportKey]*Report) {
		for _, k := range keys {
			s := src[k]
			dst, ok := reports[k]
			if !ok {
				cp := *s
				reports[k] = &cp
				order = append(order, k)
				continue
			}
			dst.Pairs += s.Pairs
			dst.Weight += s.Weight
			switch {
			case k.storeStore:
				// Store-store reports keep the first contributing pair as
				// the example; only the unpersisted flag accumulates.
				dst.Unpersisted = dst.Unpersisted || s.Unpersisted
			case s.Unpersisted:
				// The later shard saw a non-persist pair: sequentially it
				// would have downgraded the report last, so its example
				// wins.
				dst.Unpersisted = true
				dst.EndKind = s.EndKind
				dst.Addr = s.Addr
				dst.StoreTID = s.StoreTID
				dst.LoadTID = s.LoadTID
			}
		}
	}
	// All store-load reports first, then store-store — matching the
	// sequential path, which finishes the store-load buckets before running
	// the store-store pairing.
	for _, o := range outs {
		merge(o.orderSL, o.reports)
	}
	for _, o := range outs {
		merge(o.orderSS, o.reports)
	}

	res.Reports = make([]Report, 0, len(order))
	for _, k := range order {
		res.Reports = append(res.Reports, *reports[k])
	}
}

// storeLoadBucket groups the records of one cache line.
type storeLoadBucket struct {
	stores []*StoreData
	loads  []*LoadData
}

// firstCommonLine returns the lowest cache line covered by both access
// ranges starting at aAddr and bAddr — the one bucket in which a
// multi-line pair is processed.
func firstCommonLine(aAddr, bAddr uint64) uint64 {
	la, lb := pmem.LineOf(aAddr), pmem.LineOf(bAddr)
	if lb > la {
		return lb
	}
	return la
}

func spansLines(addr uint64, size uint32) bool {
	if size == 0 {
		return false
	}
	return pmem.LineOf(addr) != pmem.LineOf(lastAddrOf(addr, size))
}

// ldMeta is a load record's hoisted per-bucket pairing metadata.
type ldMeta struct {
	last  uint64
	spans bool
}

// comparer memoizes interned-ID comparisons. Each analysis shard owns one:
// the memo maps are written during pairing, while the underlying interning
// tables are read-only by then.
//
// With epochs enabled (Config.Epochs on a replay that kept the ownership
// invariant), leq answers through the (tid, tick) epoch recorded for owned
// clocks — one component read instead of a vector walk or a memo probe.
// disjoint first intersects the precomputed lock signatures (zero proves
// disjointness) and walks small sets directly; only large inconclusive
// pairs reach the memo.
type comparer struct {
	ls       *lockset.Table
	vc       *vclock.Table
	epochs   bool
	disjMemo map[[2]lockset.ID]bool
	leqMemo  map[[2]vclock.ID]bool
}

// newComparer builds a shard comparer. memoHint presizes the memo maps (the
// shard's record count is the natural bound: a shard cannot memoize more
// distinct pairs than pairs it checks, and record counts cap those).
func newComparer(ls *lockset.Table, vc *vclock.Table, epochs bool, memoHint int) *comparer {
	if memoHint > 1<<12 {
		memoHint = 1 << 12
	}
	return &comparer{
		ls:       ls,
		vc:       vc,
		epochs:   epochs,
		disjMemo: make(map[[2]lockset.ID]bool, memoHint),
		leqMemo:  make(map[[2]vclock.ID]bool, memoHint),
	}
}

// disjoint reports whether the two interned locksets share no lock
// identity. Empty sets are disjoint from everything; equal non-empty IDs
// are never disjoint (integer short-circuit, §4).
func (c *comparer) disjoint(a, b lockset.ID) bool {
	if a == 0 || b == 0 {
		return true
	}
	if a == b {
		return false
	}
	if c.ls.Sig(a)&c.ls.Sig(b) == 0 {
		// No shared signature bit ⇒ no shared lock (exact negative).
		return true
	}
	sa, sb := c.ls.Get(a), c.ls.Get(b)
	if len(sa)+len(sb) <= 8 {
		// Small sets: the merge walk is cheaper than two memo probes.
		return lockset.DisjointLocks(sa, sb)
	}
	key := [2]lockset.ID{a, b}
	if v, ok := c.disjMemo[key]; ok {
		return v
	}
	v := lockset.DisjointLocks(sa, sb)
	c.disjMemo[key] = v
	c.disjMemo[[2]lockset.ID{b, a}] = v
	return v
}

func (c *comparer) leq(a, b vclock.ID) bool {
	if a == b {
		return true
	}
	if c.epochs {
		if tid, tick, ok := c.vc.Epoch(a); ok {
			return tick <= c.vc.Get(b).Get(int(tid))
		}
	}
	key := [2]vclock.ID{a, b}
	if v, ok := c.leqMemo[key]; ok {
		return v
	}
	v := vclock.Leq(c.vc.Get(a), c.vc.Get(b))
	c.leqMemo[key] = v
	return v
}

// mayRace applies the inter-thread happens-before filter to a store window
// and a load (§3.1.2). The load can fall inside the store's unpersisted
// window unless it happens-before the store instruction or the window's
// persist happens-before the load. Using the window end clock is what lets
// the analysis catch Fig. 3's Store₃/Persist₃ case; checking the window
// start as well additionally prunes loads that provably precede the store.
func (c *comparer) mayRace(st *StoreData, ld *LoadData) bool {
	if c.leq(ld.VC, st.Start) {
		return false // load happens-before the store: it cannot read it
	}
	if st.End != NoVC && c.leq(st.End, ld.VC) {
		return false // persisted (or overwritten) before the load could run
	}
	return true
}
