package hawkset

import (
	"sort"

	"hawkset/internal/lockset"
	"hawkset/internal/pmem"
	"hawkset/internal/vclock"
)

// analyze is stage ③: the PM-Aware Lockset Analysis of Algorithm 1. Every
// store record is paired with every load record to an overlapping address
// range from a different thread; pairs ordered by inter-thread
// happens-before are pruned; the remaining pairs race iff the store's
// effective lockset and the load's lockset share no lock.
//
// The implementation applies the optimizations of §4: accesses are grouped
// by cache line, records are deduplicated shapes with counts (built during
// replay), lockset-disjointness and vector-clock comparisons are memoized by
// interned ID pairs, and intersections short-circuit on empty or equal
// locksets.
func analyze(res *Result, cfg Config) {
	buckets := make(map[uint64]*storeLoadBucket)
	get := func(line uint64) *storeLoadBucket {
		b := buckets[line]
		if b == nil {
			b = &storeLoadBucket{}
			buckets[line] = b
		}
		return b
	}
	for _, st := range res.Stores {
		linesOf(st.Addr, st.Size, func(line uint64) { get(line).stores = append(get(line).stores, st) })
	}
	for _, ld := range res.Loads {
		linesOf(ld.Addr, ld.Size, func(line uint64) { get(line).loads = append(get(line).loads, ld) })
	}

	cmp := newComparer(res.Locksets, res.VClocks)
	reports := make(map[[2]int32]*Report) // (store site, load site) -> report
	seenPair := make(map[pairKey]struct{})

	// Iterate buckets in address order so report example fields (address,
	// thread pair, end kind) are deterministic for a given trace.
	lineKeys := make([]uint64, 0, len(buckets))
	for line := range buckets {
		lineKeys = append(lineKeys, line)
	}
	sort.Slice(lineKeys, func(i, j int) bool { return lineKeys[i] < lineKeys[j] })

	for _, line := range lineKeys {
		b := buckets[line]
		for _, st := range b.stores {
			for _, ld := range b.loads {
				// A record spanning several lines appears in several
				// buckets; dedupe such pairs (single-line pairs can only
				// meet in one bucket and skip the map).
				if spansLines(st.Addr, st.Size) || spansLines(ld.Addr, ld.Size) {
					pk := pairKey{st: st, ld: ld}
					if _, dup := seenPair[pk]; dup {
						continue
					}
					seenPair[pk] = struct{}{}
				}

				res.Stats.PairsChecked++
				if st.TID == ld.TID { // Algorithm 1 line 16
					continue
				}
				if !overlaps(st.Addr, st.Size, ld.Addr, ld.Size) { // line 15
					continue
				}
				if cfg.HBFilter && !cmp.mayRace(st, ld) { // line 17
					res.Stats.PairsHBFiltered++
					continue
				}
				if !cmp.disjoint(st.Eff, ld.LS) { // line 18
					res.Stats.PairsLockFiltered++
					continue
				}
				key := [2]int32{int32(st.Site), int32(ld.Site)}
				rep := reports[key]
				if rep == nil {
					rep = &Report{
						StoreSite:  st.Site,
						LoadSite:   ld.Site,
						StoreFrame: res.Sites.Lookup(st.Site),
						LoadFrame:  res.Sites.Lookup(ld.Site),
						Addr:       st.Addr,
						StoreTID:   st.TID,
						LoadTID:    ld.TID,
						EndKind:    st.EndKind,
					}
					reports[key] = rep
				}
				rep.Pairs++
				rep.Weight += st.Count * ld.Count
				if st.EndKind != EndPersist {
					rep.Unpersisted = true
					rep.EndKind = st.EndKind
				}
			}
		}
	}
	if cfg.StoreStore {
		analyzeStoreStore(res, cfg, buckets, lineKeys, cmp, reports)
	}

	res.Reports = make([]Report, 0, len(reports))
	for _, rep := range reports {
		res.Reports = append(res.Reports, *rep)
	}
}

// analyzeStoreStore pairs store windows with each other — the write-write
// checking of classic lockset analysis that HawkSet deliberately omits
// (§3.1.1). Two windows race if they can overlap in time (neither window end
// happens-before the other's start) and their effective locksets are
// disjoint.
func analyzeStoreStore(res *Result, cfg Config, buckets map[uint64]*storeLoadBucket, lineKeys []uint64, cmp *comparer, reports map[[2]int32]*Report) {
	type ssKey struct{ a, b *StoreData }
	seen := map[ssKey]struct{}{}
	for _, line := range lineKeys {
		b := buckets[line]
		for i, st := range b.stores {
			for _, st2 := range b.stores[i+1:] {
				if st.TID == st2.TID || !overlaps(st.Addr, st.Size, st2.Addr, st2.Size) {
					continue
				}
				if spansLines(st.Addr, st.Size) || spansLines(st2.Addr, st2.Size) {
					k := ssKey{st, st2}
					if _, dup := seen[k]; dup {
						continue
					}
					seen[k] = struct{}{}
				}
				// Write-write racing is judged at the store instructions
				// themselves (the classic HB data-race check): an overwrite
				// ends the earlier window exactly at the later store, so
				// window-overlap reasoning would vacuously order every
				// overwriting pair.
				if cfg.HBFilter && (cmp.leq(st.Start, st2.Start) || cmp.leq(st2.Start, st.Start)) {
					continue
				}
				if !cmp.disjoint(st.Eff, st2.Eff) {
					continue
				}
				key := [2]int32{int32(st.Site), int32(st2.Site)}
				rep := reports[key]
				if rep == nil {
					rep = &Report{
						StoreSite:  st.Site,
						LoadSite:   st2.Site,
						StoreFrame: res.Sites.Lookup(st.Site),
						LoadFrame:  res.Sites.Lookup(st2.Site),
						Addr:       st.Addr,
						StoreTID:   st.TID,
						LoadTID:    st2.TID,
						EndKind:    st.EndKind,
						StoreStore: true,
					}
					reports[key] = rep
				}
				rep.Pairs++
				rep.Weight += st.Count * st2.Count
				if st.EndKind != EndPersist || st2.EndKind != EndPersist {
					rep.Unpersisted = true
				}
			}
		}
	}
}

// storeLoadBucket groups the records of one cache line.
type storeLoadBucket struct {
	stores []*StoreData
	loads  []*LoadData
}

type pairKey struct {
	st *StoreData
	ld *LoadData
}

func spansLines(addr uint64, size uint32) bool {
	if size == 0 {
		return false
	}
	return pmem.LineOf(addr) != pmem.LineOf(addr+uint64(size)-1)
}

// comparer memoizes interned-ID comparisons.
type comparer struct {
	ls       *lockset.Table
	vc       *vclock.Table
	disjMemo map[[2]lockset.ID]bool
	leqMemo  map[[2]vclock.ID]bool
}

func newComparer(ls *lockset.Table, vc *vclock.Table) *comparer {
	return &comparer{
		ls:       ls,
		vc:       vc,
		disjMemo: make(map[[2]lockset.ID]bool),
		leqMemo:  make(map[[2]vclock.ID]bool),
	}
}

// disjoint reports whether the two interned locksets share no lock
// identity. Empty sets are disjoint from everything; equal non-empty IDs
// are never disjoint (integer short-circuit, §4).
func (c *comparer) disjoint(a, b lockset.ID) bool {
	if a == 0 || b == 0 {
		return true
	}
	if a == b {
		return false
	}
	key := [2]lockset.ID{a, b}
	if v, ok := c.disjMemo[key]; ok {
		return v
	}
	v := lockset.DisjointLocks(c.ls.Get(a), c.ls.Get(b))
	c.disjMemo[key] = v
	c.disjMemo[[2]lockset.ID{b, a}] = v
	return v
}

func (c *comparer) leq(a, b vclock.ID) bool {
	if a == b {
		return true
	}
	key := [2]vclock.ID{a, b}
	if v, ok := c.leqMemo[key]; ok {
		return v
	}
	v := vclock.Leq(c.vc.Get(a), c.vc.Get(b))
	c.leqMemo[key] = v
	return v
}

// mayRace applies the inter-thread happens-before filter to a store window
// and a load (§3.1.2). The load can fall inside the store's unpersisted
// window unless it happens-before the store instruction or the window's
// persist happens-before the load. Using the window end clock is what lets
// the analysis catch Fig. 3's Store₃/Persist₃ case; checking the window
// start as well additionally prunes loads that provably precede the store.
func (c *comparer) mayRace(st *StoreData, ld *LoadData) bool {
	if c.leq(ld.VC, st.Start) {
		return false // load happens-before the store: it cannot read it
	}
	if st.End != NoVC && c.leq(st.End, ld.VC) {
		return false // persisted (or overwritten) before the load could run
	}
	return true
}
