package hawkset

import (
	"testing"

	"hawkset/internal/trace"
)

// reportStrings renders reports as "storeSite/loadSite" for compact
// assertions.
func reportStrings(res *Result) []string {
	var out []string
	for _, r := range res.Reports {
		out = append(out, r.StoreFrame.String()+"/"+r.LoadFrame.String())
	}
	return out
}

func hasReport(res *Result, store, load string) bool {
	for _, r := range res.Reports {
		if r.StoreFrame.String() == store && r.LoadFrame.String() == load {
			return true
		}
	}
	return false
}

// cfgNoIRH is the default configuration with the IRH off: most synthetic
// traces in these tests touch an address from a second thread only once, so
// publication-based filtering would hide what the test examines. IRH gets
// dedicated tests below.
func cfgNoIRH() Config {
	c := DefaultConfig()
	c.IRH = false
	return c
}

// TestFigure1c is the paper's motivating example: both threads access X
// under lock A, but T1's persistency happens outside the critical section.
// Traditional lockset analysis sees a common lock and stays silent; the
// effective lockset is empty and HawkSet reports the race.
func TestFigure1c(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "main.create1").Create(0, 2, "main.create2")
	// T1: lock; store X; unlock; persist X (outside the critical section).
	b.Lock(1, A, "t1.lock")
	b.Store(1, X, 8, "t1.store")
	b.Unlock(1, A, "t1.unlock")
	b.Persist(1, X, 8, "t1.persist")
	// T2: lock; load X; unlock.
	b.Lock(2, A, "t2.lock")
	b.Load(2, X, 8, "t2.load")
	b.Unlock(2, A, "t2.unlock")
	b.Join(0, 1, "main.join").Join(0, 2, "main.join")

	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store", "t2.load") {
		t.Fatalf("Figure 1c race not reported; reports = %v", reportStrings(res))
	}
}

// TestFigure1cTraditionalMisses shows the ablation: with the effective
// lockset disabled the store keeps lockset {A}, intersects the load's {A},
// and the race is missed — the exact failure of traditional lockset
// analysis the paper describes in §3.1.1.
func TestFigure1cTraditionalMisses(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Lock(1, A, "t1.lock").Store(1, X, 8, "t1.store").Unlock(1, A, "t1.unlock").Persist(1, X, 8, "t1.persist")
	b.Lock(2, A, "t2.lock").Load(2, X, 8, "t2.load").Unlock(2, A, "t2.unlock")
	b.Join(0, 1, "j").Join(0, 2, "j")

	cfg := cfgNoIRH()
	cfg.EffectiveLockset = false
	res := Analyze(b.T, cfg)
	if hasReport(res, "t1.store", "t2.load") {
		t.Fatal("traditional lockset analysis should miss Figure 1c")
	}
}

// TestCorrectProgramNoReport: store and persist inside the same critical
// section; the loader holds the same lock. No race.
func TestCorrectProgramNoReport(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Lock(1, A, "t1.lock")
	b.Store(1, X, 8, "t1.store")
	b.Persist(1, X, 8, "t1.persist")
	b.Unlock(1, A, "t1.unlock")
	b.Lock(2, A, "t2.lock")
	b.Load(2, X, 8, "t2.load")
	b.Unlock(2, A, "t2.unlock")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if len(res.Reports) != 0 {
		t.Fatalf("correct program produced reports: %v", reportStrings(res))
	}
}

// TestFigure2d: lock A protects both the store and the persistency, but A is
// released and reacquired in between, so the two belong to different atomic
// sections: the timestamped effective lockset is empty and the race is
// reported.
func TestFigure2d(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Lock(1, A, "t1.lock1")
	b.Store(1, X, 8, "t1.store")
	b.Unlock(1, A, "t1.unlock1")
	b.Lock(1, A, "t1.lock2") // reacquire: new timestamp
	b.Persist(1, X, 8, "t1.persist")
	b.Unlock(1, A, "t1.unlock2")
	b.Lock(2, A, "t2.lock")
	b.Load(2, X, 8, "t2.load")
	b.Unlock(2, A, "t2.unlock")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store", "t2.load") {
		t.Fatalf("Figure 2d release/reacquire race not reported; reports = %v", reportStrings(res))
	}

	// Ablation: without timestamps the reacquired lock looks continuous and
	// the race is missed.
	cfg := cfgNoIRH()
	cfg.Timestamps = false
	res = Analyze(b.T, cfg)
	if hasReport(res, "t1.store", "t2.load") {
		t.Fatal("timestamp-free analysis should miss the release/reacquire race")
	}
}

// TestFigure3 reproduces the happens-before example: T1's store+persist to X
// before creating T2 and T3 can never race with their loads, but a store
// whose persist happens after a thread's creation can race with that
// thread's load.
func TestFigure3(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	// T1: store X, persist X, create T2 (no race with T2's load).
	b.Store(1, X, 8, "t1.store1")
	b.Persist(1, X, 8, "t1.persist1")
	b.Create(1, 2, "t1.create2")
	// T1: store X again, create T3, persist X after the creation.
	b.Store(1, X, 8, "t1.store3")
	b.Create(1, 3, "t1.create3")
	b.Persist(1, X, 8, "t1.persist3")
	// T2 and T3 load X with no locks.
	b.Load(2, X, 8, "t2.load")
	b.Load(3, X, 8, "t3.load")
	b.Join(1, 2, "t1.join2")
	b.Join(1, 3, "t1.join3")

	res := Analyze(b.T, cfgNoIRH())
	if hasReport(res, "t1.store1", "t2.load") || hasReport(res, "t1.store1", "t3.load") {
		t.Fatalf("store1 happens-before both loads, must not be reported; reports = %v", reportStrings(res))
	}
	// store3's window is still open when T3 is created: T3's load can fall
	// inside it (the Persist₃ vector-clock point of §3.1.2).
	if !hasReport(res, "t1.store3", "t3.load") {
		t.Fatalf("store3/t3.load race not reported; reports = %v", reportStrings(res))
	}
	// T2 was created before store3, so it is concurrent with the window too.
	if !hasReport(res, "t1.store3", "t2.load") {
		t.Fatalf("store3/t2.load race not reported; reports = %v", reportStrings(res))
	}

	// Ablation: with the HB filter off, store1 is (wrongly) reported — the
	// false positive the vector clocks eliminate.
	cfg := cfgNoIRH()
	cfg.HBFilter = false
	res = Analyze(b.T, cfg)
	if !hasReport(res, "t1.store1", "t2.load") {
		t.Fatal("HB-filter-off ablation should report the ordered pair")
	}
}

// TestJoinOrdersAccesses: after joining a worker, the parent's loads cannot
// race with the worker's persisted stores.
func TestJoinOrdersAccesses(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Create(0, 1, "create")
	b.Store(1, X, 8, "t1.store")
	b.Persist(1, X, 8, "t1.persist")
	b.Join(0, 1, "join")
	b.Load(0, X, 8, "main.load")

	res := Analyze(b.T, cfgNoIRH())
	if len(res.Reports) != 0 {
		t.Fatalf("joined accesses reported racy: %v", reportStrings(res))
	}
}

// TestUnpersistedStoreAlwaysRaces: a store that is never flushed races with
// any concurrent load, even one holding the same lock — the value can be
// lost at any time (missing-persist bugs like TurboHash #3).
func TestUnpersistedStoreAlwaysRaces(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Lock(1, A, "t1.lock").Store(1, X, 8, "t1.store").Unlock(1, A, "t1.unlock")
	b.Lock(2, A, "t2.lock").Load(2, X, 8, "t2.load").Unlock(2, A, "t2.unlock")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store", "t2.load") {
		t.Fatalf("never-persisted store not reported; reports = %v", reportStrings(res))
	}
	if res.Stats.UnpersistedAtEnd != 1 {
		t.Fatalf("UnpersistedAtEnd = %d, want 1", res.Stats.UnpersistedAtEnd)
	}
}

// TestOverwriteEndsWindow: within one critical section, an overwritten store
// is protected by the section's lockset; a later load under the same lock is
// safe with respect to the first store.
func TestOverwriteEndsWindow(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Lock(1, A, "t1.lock")
	b.Store(1, X, 8, "t1.store1")
	b.Store(1, X, 8, "t1.store2") // overwrite: ends store1's window
	b.Persist(1, X, 8, "t1.persist")
	b.Unlock(1, A, "t1.unlock")
	b.Lock(2, A, "t2.lock")
	b.Load(2, X, 8, "t2.load")
	b.Unlock(2, A, "t2.unlock")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if len(res.Reports) != 0 {
		t.Fatalf("overwritten-then-persisted store reported: %v", reportStrings(res))
	}
}

// TestCrossThreadOverwrite pins the semantics of a window ended by another
// thread's store: the effective lockset is the lock-identity intersection of
// the store's and the overwriter's locksets — the direct reading of the
// paper's definition ("intersection between the lockset of the store with
// the lockset of its ... overwrite via store"), with the timestamp
// refinement inapplicable across threads. A loader holding the common lock
// is therefore treated as protected; one holding no lock is reported.
func TestCrossThreadOverwrite(t *testing.T) {
	const X, A = 0x100, 1
	build := func(loadLocked bool) *trace.Trace {
		b := trace.NewBuilder()
		b.Create(0, 1, "c1").Create(0, 2, "c2").Create(0, 3, "c3")
		b.Lock(1, A, "t1.lock").Store(1, X, 8, "t1.store").Unlock(1, A, "t1.unlock")
		if loadLocked {
			b.Lock(3, A, "t3.lock")
		}
		b.Load(3, X, 8, "t3.load")
		if loadLocked {
			b.Unlock(3, A, "t3.unlock")
		}
		b.Lock(2, A, "t2.lock").Store(2, X, 8, "t2.store").Persist(2, X, 8, "t2.persist").Unlock(2, A, "t2.unlock")
		b.Join(0, 1, "j").Join(0, 2, "j").Join(0, 3, "j")
		return b.T
	}
	res := Analyze(build(true), cfgNoIRH())
	if hasReport(res, "t1.store", "t3.load") {
		t.Fatalf("locked loader reported despite common lock in both window endpoints: %v", reportStrings(res))
	}
	res = Analyze(build(false), cfgNoIRH())
	if !hasReport(res, "t1.store", "t3.load") {
		t.Fatalf("lock-free loader of cross-thread-overwritten store not reported: %v", reportStrings(res))
	}
}

// TestNTStoreWithFenceIsSafe: a non-temporal store followed by a fence in
// the same critical section is persisted; no race.
func TestNTStoreWithFenceIsSafe(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Lock(1, A, "t1.lock")
	b.NTStore(1, X, 8, "t1.nt")
	b.Fence(1, "t1.fence")
	b.Unlock(1, A, "t1.unlock")
	b.Lock(2, A, "t2.lock").Load(2, X, 8, "t2.load").Unlock(2, A, "t2.unlock")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if len(res.Reports) != 0 {
		t.Fatalf("nt-store+fence reported racy: %v", reportStrings(res))
	}
}

// TestNTStoreWithoutFenceRaces: a non-temporal store still requires a fence;
// without one its window ends outside any critical section.
func TestNTStoreWithoutFenceRaces(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Lock(1, A, "t1.lock")
	b.NTStore(1, X, 8, "t1.nt")
	b.Unlock(1, A, "t1.unlock")
	b.Fence(1, "t1.latefence") // fence after unlock: different atomic section
	b.Lock(2, A, "t2.lock").Load(2, X, 8, "t2.load").Unlock(2, A, "t2.unlock")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.nt", "t2.load") {
		t.Fatalf("unfenced nt-store not reported; reports = %v", reportStrings(res))
	}
}

// TestFlushWithoutFenceDoesNotPersist: the worst-case cache requires the
// fence; flush alone leaves the window open (store buffer may stall it).
func TestFlushWithoutFenceDoesNotPersist(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Lock(1, A, "t1.lock")
	b.Store(1, X, 8, "t1.store")
	b.Flush(1, X, "t1.flush") // no fence inside the section
	b.Unlock(1, A, "t1.unlock")
	b.Fence(1, "t1.fence")
	b.Lock(2, A, "t2.lock").Load(2, X, 8, "t2.load").Unlock(2, A, "t2.unlock")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store", "t2.load") {
		t.Fatalf("flush-no-fence store not reported; reports = %v", reportStrings(res))
	}
}

// TestStoreAfterFlushNotCovered: a store issued between flush and fence is
// not covered by the flush snapshot and stays unpersisted.
func TestStoreAfterFlushNotCovered(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Store(1, X, 8, "t1.store1")
	b.Flush(1, X, "t1.flush")
	b.Store(1, X, 8, "t1.store2") // after the snapshot
	b.Fence(1, "t1.fence")
	b.Load(2, X, 8, "t2.load")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store2", "t2.load") {
		t.Fatalf("post-flush store not reported; reports = %v", reportStrings(res))
	}
}

// TestStoreStoreNotReported: HawkSet deliberately ignores store-store pairs
// (§3.1.1).
func TestStoreStoreNotReported(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Store(1, X, 8, "t1.store")
	b.Store(2, X, 8, "t2.store")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if len(res.Reports) != 0 {
		t.Fatalf("store-store pair reported: %v", reportStrings(res))
	}
}

// TestSameThreadNotReported: pairs from one thread never race.
func TestSameThreadNotReported(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Create(0, 1, "c1")
	b.Store(1, X, 8, "t1.store")
	b.Load(1, X, 8, "t1.load")
	b.Join(0, 1, "j")

	res := Analyze(b.T, cfgNoIRH())
	if len(res.Reports) != 0 {
		t.Fatalf("same-thread pair reported: %v", reportStrings(res))
	}
}

// TestPartialOverlapDetected: HawkSet matches accesses by byte range, not
// just identical start addresses (§3.2: "able to detect partially
// overlapping races").
func TestPartialOverlapDetected(t *testing.T) {
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Store(1, 0x100, 8, "t1.store") // [0x100,0x108)
	b.Load(2, 0x104, 8, "t2.load")   // [0x104,0x10c): overlaps 4 bytes
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store", "t2.load") {
		t.Fatalf("partial overlap not reported; reports = %v", reportStrings(res))
	}

	// Disjoint ranges in the same cache line must NOT match.
	b2 := trace.NewBuilder()
	b2.Create(0, 1, "c1").Create(0, 2, "c2")
	b2.Store(1, 0x100, 8, "t1.store")
	b2.Load(2, 0x110, 8, "t2.load") // same line, no byte overlap
	b2.Join(0, 1, "j").Join(0, 2, "j")
	res = Analyze(b2.T, cfgNoIRH())
	if len(res.Reports) != 0 {
		t.Fatalf("disjoint same-line accesses reported: %v", reportStrings(res))
	}
}

// TestCrossLineStore: a store spanning two cache lines races with loads in
// either line.
func TestCrossLineStore(t *testing.T) {
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Store(1, 0x13c, 8, "t1.store") // spans lines 4 and 5
	b.Load(2, 0x140, 4, "t2.load")   // second line only
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store", "t2.load") {
		t.Fatalf("cross-line overlap not reported; reports = %v", reportStrings(res))
	}
	// The pair must be reported exactly once despite sharing two buckets.
	if res.Reports[0].Pairs != 1 {
		t.Fatalf("Pairs = %d, want 1 (bucket dedup)", res.Reports[0].Pairs)
	}
}

// TestCrossThreadFlushHelpsPersist: T2 flushing and fencing T1's line while
// holding the same lock as the store closes the window (helping pattern);
// the effective lockset keeps the common lock.
func TestCrossThreadFlushHelpsPersist(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2").Create(0, 3, "c3")
	b.Lock(1, A, "t1.lock").Store(1, X, 8, "t1.store").Unlock(1, A, "t1.unlock")
	b.Lock(2, A, "t2.lock")
	b.Persist(2, X, 8, "t2.persist") // helper persists T1's store under A
	b.Unlock(2, A, "t2.unlock")
	b.Lock(3, A, "t3.lock").Load(3, X, 8, "t3.load").Unlock(3, A, "t3.unlock")
	b.Join(0, 1, "j").Join(0, 2, "j").Join(0, 3, "j")

	res := Analyze(b.T, cfgNoIRH())
	// The effective lockset is {A} (lock identity across threads), and the
	// load holds A: not reported.
	if hasReport(res, "t1.store", "t3.load") {
		t.Fatalf("helped-persist store reported despite common lock: %v", reportStrings(res))
	}
}

// TestIRHDropsInitialization: the classic init pattern — allocate, store,
// persist without locks, then publish — is pruned by the IRH (§3.1.3),
// while the same trace without IRH reports it.
func TestIRHDropsInitialization(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	// T0 initializes X and persists it before spawning the reader.
	b.Store(0, X, 8, "main.init")
	b.Persist(0, X, 8, "main.initpersist")
	b.Create(0, 1, "main.create")
	b.Load(1, X, 8, "t1.load")
	b.Join(0, 1, "main.join")
	// Make the pair VC-concurrent by adding another writer thread whose
	// store is unpersisted — otherwise HB alone would filter it. Use a
	// second address region to keep the scenarios separate.
	cfg := DefaultConfig()
	cfg.HBFilter = false // isolate the IRH: HB would also prune this pair
	res := Analyze(b.T, cfg)
	if hasReport(res, "main.init", "t1.load") {
		t.Fatalf("IRH failed to drop persisted init store: %v", reportStrings(res))
	}
	if res.Stats.IRHDroppedStores != 1 {
		t.Fatalf("IRHDroppedStores = %d, want 1", res.Stats.IRHDroppedStores)
	}

	cfg.IRH = false
	res = Analyze(b.T, cfg)
	if !hasReport(res, "main.init", "t1.load") {
		t.Fatalf("without IRH the init store must be reported (HB off): %v", reportStrings(res))
	}
}

// TestIRHKeepsUnpersistedInit: publishing a pointer to initialized-but-not-
// persisted memory is a genuine race the IRH must keep (§3.1.3's "why
// persistency must be taken into account").
func TestIRHKeepsUnpersistedInit(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Store(0, X, 8, "main.init") // never persisted
	b.Create(0, 1, "main.create")
	b.Load(1, X, 8, "t1.load")
	b.Join(0, 1, "main.join")

	res := Analyze(b.T, DefaultConfig())
	if !hasReport(res, "main.init", "t1.load") {
		t.Fatalf("IRH wrongly dropped unpersisted init store: %v", reportStrings(res))
	}
}

// TestIRHReusePatternFalsePositive reproduces the memcached-pmem limitation
// (§5.4, §7): memory freed and reinitialized by another thread is already
// marked published, so the (safe) reinitialization store is not pruned.
func TestIRHReusePatternFalsePositive(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	// Address becomes public: T1 and T2 both use it, properly persisted.
	b.Store(1, X, 8, "t1.store")
	b.Persist(1, X, 8, "t1.persist")
	b.Load(2, X, 8, "t2.load")
	// T2 "frees" and reinitializes the region without locks, persisting
	// before re-publication — safe, but the IRH cannot tell.
	b.Store(2, X, 8, "t2.reinit")
	b.Persist(2, X, 8, "t2.reinit")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, DefaultConfig())
	// T1's original init store is legitimately dropped (persisted before
	// publication), but the reinit store lands on an already-published
	// address: the IRH keeps it, and it remains available as a (false
	// positive) race candidate — exactly the memcached limitation.
	if res.Stats.IRHDroppedStores != 1 {
		t.Fatalf("IRHDroppedStores = %d, want 1 (only the pre-publication init)", res.Stats.IRHDroppedStores)
	}
	foundReinit := false
	for _, st := range res.Stores {
		if res.Sites.Lookup(st.Site).String() == "t2.reinit" {
			foundReinit = true
		}
	}
	if !foundReinit {
		t.Fatal("reinitialization store was wrongly pruned by the IRH")
	}
}

// TestReportDeduplication: repeated racy accesses from one site pair yield a
// single report with counts.
func TestReportDeduplication(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	for i := 0; i < 10; i++ {
		b.Store(1, X, 8, "t1.store")
	}
	for i := 0; i < 10; i++ {
		b.Load(2, X, 8, "t2.load")
	}
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %v, want exactly one deduplicated report", reportStrings(res))
	}
	rep := res.Reports[0]
	if rep.Weight < 10 {
		t.Fatalf("Weight = %d, want >= 10 dynamic pairs", rep.Weight)
	}
	// Grouping: 10 identical stores collapse into few records (9 overwritten
	// + 1 open ⇒ 2 shapes at most).
	if res.Stats.StoreRecords > 3 {
		t.Fatalf("StoreRecords = %d, want <= 3 (shape dedup)", res.Stats.StoreRecords)
	}
	if res.Stats.LoadRecords != 1 {
		t.Fatalf("LoadRecords = %d, want 1", res.Stats.LoadRecords)
	}
}

// TestStatsPlausible sanity-checks bookkeeping counters.
func TestStatsPlausible(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Create(0, 1, "c1")
	b.Store(1, X, 8, "t1.store")
	b.Persist(1, X, 8, "t1.persist")
	b.Load(0, X, 8, "main.load")
	b.Join(0, 1, "j")

	res := Analyze(b.T, cfgNoIRH())
	st := res.Stats
	if st.Events != b.T.Len() {
		t.Fatalf("Events = %d, want %d", st.Events, b.T.Len())
	}
	if st.PMAccesses != 2 {
		t.Fatalf("PMAccesses = %d, want 2", st.PMAccesses)
	}
	if st.DynamicStores != 1 || st.DynamicLoads != 1 {
		t.Fatalf("dynamic counts = %d/%d", st.DynamicStores, st.DynamicLoads)
	}
	if st.LocksetsInterned < 1 || st.VClocksInterned < 2 {
		t.Fatalf("interning stats = %d/%d", st.LocksetsInterned, st.VClocksInterned)
	}
}

// TestEADRModeEmptiesClass: under extended-ADR analysis semantics (§2.1)
// every store persists on visibility and no persistency-induced race
// exists, even for the Figure 1c trace.
func TestEADRModeEmptiesClass(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Lock(1, A, "t1.lock").Store(1, X, 8, "t1.store").Unlock(1, A, "t1.unlock").Persist(1, X, 8, "t1.persist")
	b.Load(2, X, 8, "t2.load")
	b.Join(0, 1, "j").Join(0, 2, "j")

	cfg := cfgNoIRH()
	res := Analyze(b.T, cfg)
	if len(res.Reports) == 0 {
		t.Fatal("sanity: the race must be reported under normal semantics")
	}
	cfg.EADR = true
	res = Analyze(b.T, cfg)
	if len(res.Reports) != 0 {
		t.Fatalf("eADR analysis still reports races: %v", reportStrings(res))
	}
}

// TestStoreStoreOption: with the experimental write-write checking enabled,
// unprotected concurrent stores are reported and marked.
func TestStoreStoreOption(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Store(1, X, 8, "t1.store")
	b.Store(2, X, 8, "t2.store")
	b.Join(0, 1, "j").Join(0, 2, "j")

	cfg := cfgNoIRH()
	cfg.StoreStore = true
	res := Analyze(b.T, cfg)
	if len(res.Reports) != 1 || !res.Reports[0].StoreStore {
		t.Fatalf("store-store pair not reported with StoreStore on: %v", res.Reports)
	}
	// Protected store-store pairs stay silent.
	b2 := trace.NewBuilder()
	b2.Create(0, 1, "c1").Create(0, 2, "c2")
	b2.Lock(1, 1, "l").Store(1, X, 8, "t1.store")
	b2.Persist(1, X, 8, "p").Unlock(1, 1, "u")
	b2.Lock(2, 1, "l").Store(2, X, 8, "t2.store")
	b2.Persist(2, X, 8, "p").Unlock(2, 1, "u")
	b2.Join(0, 1, "j").Join(0, 2, "j")
	res = Analyze(b2.T, cfg)
	if len(res.Reports) != 0 {
		t.Fatalf("locked store-store pair reported: %v", reportStrings(res))
	}
}

// TestFlushOfCleanLineNoop: flushing a line with no open stores changes
// nothing.
func TestFlushOfCleanLineNoop(t *testing.T) {
	b := trace.NewBuilder()
	b.Create(0, 1, "c1")
	b.Flush(1, 0x100, "t1.flush")
	b.Fence(1, "t1.fence")
	b.Join(0, 1, "j")
	res := Analyze(b.T, cfgNoIRH())
	if len(res.Reports) != 0 || res.Stats.StoreRecords != 0 {
		t.Fatalf("phantom records from flushing clean lines: %+v", res.Stats)
	}
}

// TestFenceWithoutFlushNoop: a fence with nothing pending closes no windows.
func TestFenceWithoutFlushNoop(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Store(1, X, 8, "t1.store")
	b.Fence(1, "t1.fence") // no flush preceded: store stays unpersisted
	b.Load(2, X, 8, "t2.load")
	b.Join(0, 1, "j").Join(0, 2, "j")
	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store", "t2.load") {
		t.Fatalf("fence without flush must not persist; reports = %v", reportStrings(res))
	}
	if res.Stats.UnpersistedAtEnd != 1 {
		t.Fatalf("UnpersistedAtEnd = %d, want 1", res.Stats.UnpersistedAtEnd)
	}
}

// TestCrossThreadFenceDoesNotCompleteOthersFlush: T1's flush needs T1's
// fence; T2 fencing in between does not close T1's window (SFENCE is
// per-thread, §2.1).
func TestCrossThreadFenceDoesNotCompleteOthersFlush(t *testing.T) {
	const X, A = 0x100, 1
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2").Create(0, 3, "c3")
	b.Lock(1, A, "t1.lock")
	b.Store(1, X, 8, "t1.store")
	b.Flush(1, X, "t1.flush")
	b.Unlock(1, A, "t1.unlock") // fence still missing
	b.Fence(2, "t2.fence")      // another thread's fence: irrelevant
	b.Lock(3, A, "t3.lock").Load(3, X, 8, "t3.load").Unlock(3, A, "t3.unlock")
	b.Fence(1, "t1.latefence") // completes outside the critical section
	b.Join(0, 1, "j").Join(0, 2, "j").Join(0, 3, "j")

	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store", "t3.load") {
		t.Fatalf("cross-thread fence wrongly completed the flush; reports = %v", reportStrings(res))
	}
}

// TestMultiLineStoreWindow: a store spanning two lines is closed when its
// covering flushes+fence land, and reported if a load slips in before.
func TestMultiLineStoreWindow(t *testing.T) {
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Store(1, 0x13c, 8, "t1.store") // spans two lines
	b.Load(2, 0x13c, 8, "t2.load")
	b.Persist(1, 0x13c, 8, "t1.persist") // flushes both lines + fence
	b.Join(0, 1, "j").Join(0, 2, "j")
	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store", "t2.load") {
		t.Fatalf("pre-persist load missed; reports = %v", reportStrings(res))
	}
	if res.Stats.UnpersistedAtEnd != 0 {
		t.Fatalf("multi-line store not closed by Persist: %+v", res.Stats)
	}
}
