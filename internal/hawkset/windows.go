package hawkset

import (
	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// StoreWindow is one dynamic store's visible-but-unpersisted window in
// trace-event coordinates: a crash after trace event i with
// Start <= i < End loses (or tears) the stored value. End is the index of
// the event that closed the window — the persisting fence or the
// overwriting store — or the total event count for windows still open when
// the trace ends (EndNone).
//
// The crash-injection harness (internal/crashinject) translates windows
// into device-journal positions via pmem.Op.Seq to crash precisely inside
// the unpersisted windows of reported races — the paper's §5.1 argument
// ("a crash inside the window loses data") turned into an executable
// check.
type StoreWindow struct {
	StoreSite sites.ID
	TID       int32
	Addr      uint64
	Size      uint32
	Start     int
	End       int
	EndKind   EndKind
}

// Windows re-runs the Memory Simulation stage over tr and returns every
// unpersisted window, in window-close order. The cfg controls only the
// simulation-relevant knobs (EADR); lockset/IRH settings do not affect
// which windows exist, only which become reports.
func Windows(tr *trace.Trace, cfg Config) []StoreWindow {
	r := newReplayer(tr, cfg)
	var ws []StoreWindow
	r.onWindow = func(w StoreWindow) { ws = append(ws, w) }
	for _, e := range tr.Events {
		r.feed(e)
	}
	r.finish()
	return ws
}
