package hawkset

import "testing"

// pairCost is the true pairing cost of one bucket: stores×loads store-load
// pairs plus n(n-1)/2 store-store pairs, plus the constant bucket overhead —
// the model partitionLines must balance.
func pairCost(b *storeLoadBucket, storeStore bool) uint64 {
	c := uint64(len(b.stores))*uint64(len(b.loads)) + 1
	if storeStore {
		n := uint64(len(b.stores))
		c += n * (n - 1) / 2
	}
	return c
}

// TestPartitionLinesSkewedSpread: on a synthetic skewed trace shape — a run
// of two-store buckets (1 real store-store pair each) followed by a longer
// run of load-only buckets (0 pairs) — the contiguous partition must stay
// balanced under the true n(n-1)/2 pair model: no shard may exceed the ideal
// share by more than one bucket (the inherent granularity of a contiguous
// greedy split). The old n²/2 model overcharged every n-store bucket by n/2,
// inflating the store region by 50% here, so the boundary landed well inside
// it and left the final shard with a third of the store buckets plus the
// whole load tail — measurably past the bound this test pins.
func TestPartitionLinesSkewedSpread(t *testing.T) {
	mkBucket := func(stores, loads int) *storeLoadBucket {
		b := &storeLoadBucket{}
		for i := 0; i < stores; i++ {
			b.stores = append(b.stores, &StoreData{})
		}
		for i := 0; i < loads; i++ {
			b.loads = append(b.loads, &LoadData{})
		}
		return b
	}

	buckets := make(map[uint64]*storeLoadBucket)
	var lineKeys []uint64
	addLine := func(line uint64, b *storeLoadBucket) {
		buckets[line] = b
		lineKeys = append(lineKeys, line)
	}
	for i := 0; i < 200; i++ {
		addLine(uint64(i), mkBucket(2, 0)) // true cost 2, old model said 3
	}
	for i := 0; i < 400; i++ {
		addLine(uint64(1000+i), mkBucket(0, 1)) // cost 1 in both models
	}

	const workers = 2
	parts := partitionLines(buckets, lineKeys, workers, true)
	if len(parts) > workers {
		t.Fatalf("partition produced %d shards for %d workers", len(parts), workers)
	}

	// The partition must be exactly the input key list, contiguously.
	var flat []uint64
	for _, p := range parts {
		flat = append(flat, p...)
	}
	if len(flat) != len(lineKeys) {
		t.Fatalf("partition covers %d lines, want %d", len(flat), len(lineKeys))
	}
	for i := range flat {
		if flat[i] != lineKeys[i] {
			t.Fatalf("partition reordered lines at %d: %d != %d", i, flat[i], lineKeys[i])
		}
	}

	var total, maxBucket uint64
	for _, line := range lineKeys {
		c := pairCost(buckets[line], true)
		total += c
		if c > maxBucket {
			maxBucket = c
		}
	}
	var maxShard uint64
	for _, p := range parts {
		var c uint64
		for _, line := range p {
			c += pairCost(buckets[line], true)
		}
		if c > maxShard {
			maxShard = c
		}
	}
	if limit := total/workers + maxBucket; maxShard > limit {
		t.Fatalf("max shard cost %d exceeds balanced bound %d (total %d, maxBucket %d)",
			maxShard, limit, total, maxBucket)
	}
}
