package hawkset

import (
	"testing"

	"hawkset/internal/obs"
	"hawkset/internal/trace"
)

// TestClosedStoreRetentionBounded is the regression test for the streaming
// replay's unbounded closed-store retention. Two leak shapes existed:
//
//  1. Overwrite: store() compacted only the lines of the *overwriting*
//     store, so a closed multi-line store lingered (closed) in every line
//     outside the overlap.
//  2. Flush: flush() returned before compacting when every snapshot entry
//     was already closed — an all-closed line never enqueued a
//     pendingFlush, so fence's compaction never reached it either.
//
// Either way, a long-running Stream session over an overwrite- or
// flush-heavy workload grew r.lines (and the lists inside it) linearly with
// trace length even though every window was closed. The workload below
// exercises both shapes; pre-fix, len(r.lines) ends up ~2×iters.
func TestClosedStoreRetentionBounded(t *testing.T) {
	const iters = 200
	b := trace.NewBuilder()

	// Shape 1: a 128-byte store spans lines l0,l1; an 8-byte overwrite at
	// its base closes it via the shared line l0 only. The small store is
	// then persisted (flush l0 + fence), compacting l0 — pre-fix the closed
	// big store stays in l1 forever.
	for i := 0; i < iters; i++ {
		base := uint64(0x10000 + i*256) // 64-aligned, iterations 4 lines apart
		b.Store(1, base, 128, "big")
		b.Store(1, base, 8, "small")
		b.Persist(1, base, 8, "p")
	}

	// Shape 2: a 128-byte store is persisted through its first line only
	// (flush l0 + fence closes the whole window; fence compacts just l0).
	// The follow-up flush of l1 sees an all-closed list — pre-fix it
	// returned without sweeping, retaining the dead entry and the map key.
	for i := 0; i < iters; i++ {
		base := uint64(0x200000 + i*256)
		b.Store(1, base, 128, "big2")
		b.Flush(1, base, "f0")
		b.Fence(1, "fe0")
		b.Flush(1, base+64, "f1")
		b.Fence(1, "fe1")
	}

	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	s := NewStream(b.T.Sites, cfg)
	for _, e := range b.T.Events {
		if err := s.Feed(e); err != nil {
			t.Fatalf("Feed: %v", err)
		}
	}

	// Every window above is closed, so nothing may be retained: the line
	// map must be empty (small slack for implementation drift, not growth).
	if got := len(s.rp.lines); got > 2 {
		t.Fatalf("replayer retains %d cache-line entries after %d fully-closed iterations; closed stores are not being swept", got, 2*iters)
	}
	retained := 0
	for _, open := range s.rp.lines {
		retained += len(open)
	}
	if retained > 2 {
		t.Fatalf("replayer retains %d open-store entries, want ~0", retained)
	}

	// The observability layer must catch this class of bug: the open-store
	// gauge counts entries retained across line lists, so its high-water
	// mark stays at the per-iteration peak (3: big on two lines + small)
	// when sweeping works, and climbs toward 2×iters when it leaks.
	if hw := reg.Gauge("hawkset.replay.open_stores").Max(); hw > 4 {
		t.Fatalf("open_stores high-water = %d, want <= 4 (leak detector would have fired)", hw)
	}
	if hw := reg.Gauge("hawkset.replay.lines").Max(); hw > 4 {
		t.Fatalf("lines high-water = %d, want <= 4", hw)
	}

	// The stream still finishes cleanly and reports nothing for this
	// single-threaded, fully-persisted workload.
	res, err := s.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if res.Stats.UnpersistedAtEnd != 0 {
		t.Fatalf("UnpersistedAtEnd = %d, want 0", res.Stats.UnpersistedAtEnd)
	}
	if len(res.Reports) != 0 {
		t.Fatalf("reports = %d, want 0", len(res.Reports))
	}
}

// TestZeroSizeStoreClosable: overlaps used to treat a zero-size access as
// an empty range while lastAddrOf/linesOf treat it as one byte. The
// asymmetry made a zero-size store indexable but un-overwritable: it sat in
// its line's open list until trace end and was recorded EndNone. With the
// one-byte convention unified, an overwrite of its byte closes it normally.
func TestZeroSizeStoreClosable(t *testing.T) {
	b := trace.NewBuilder()
	b.Store(1, 0x100, 0, "zero")
	b.Store(1, 0x100, 8, "over") // overwrites the zero-size store's byte
	b.Persist(1, 0x100, 8, "p")

	res := Analyze(b.T, cfgNoIRH())
	var zero *StoreData
	for i := range res.Stores {
		if res.Stores[i].Size == 0 {
			zero = &res.Stores[i]
		}
	}
	if zero == nil {
		t.Fatal("zero-size store record missing")
	}
	if zero.EndKind != EndOverwrite {
		t.Fatalf("zero-size store EndKind = %v, want %v (overwrite must close it)", zero.EndKind, EndOverwrite)
	}
	if res.Stats.UnpersistedAtEnd != 0 {
		t.Fatalf("UnpersistedAtEnd = %d, want 0: the zero-size store was pinned open", res.Stats.UnpersistedAtEnd)
	}
}
