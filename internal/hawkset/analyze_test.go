package hawkset

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/trace"
)

// TestStoreStoreReportNotAliasedIntoStoreLoad: a call site that both loads
// and stores (e.g. ctx.Store(dst, ctx.Load(src)) on one line) produces
// store-load and store-store pairs over the same (site, site) key. The two
// must stay separate reports — the write-write pair used to merge silently
// into the store-load report, dropping its StoreStore flag and inflating
// Pairs/Weight.
func TestStoreStoreReportNotAliasedIntoStoreLoad(t *testing.T) {
	const X = 0x100
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2").Create(0, 3, "c3")
	b.Store(1, X, 8, "kv.put") // racing store #1
	b.Store(2, X, 8, "kv.put") // racing store #2 (same site!)
	b.Load(3, X, 8, "kv.put")  // racing load, also same site
	b.Join(0, 1, "j").Join(0, 2, "j").Join(0, 3, "j")

	cfg := cfgNoIRH()
	cfg.StoreStore = true
	res := Analyze(b.T, cfg)

	if len(res.Reports) != 2 {
		t.Fatalf("reports = %d (%v), want 2 (store-load + store-store)", len(res.Reports), res.Reports)
	}
	var sl, ss *Report
	for i := range res.Reports {
		if res.Reports[i].StoreStore {
			ss = &res.Reports[i]
		} else {
			sl = &res.Reports[i]
		}
	}
	if sl == nil || ss == nil {
		t.Fatalf("want one store-load and one store-store report, got %+v", res.Reports)
	}
	// Both stores pair with the load; the write-write pair is exactly one.
	if sl.Pairs != 2 {
		t.Errorf("store-load Pairs = %d, want 2", sl.Pairs)
	}
	if ss.Pairs != 1 {
		t.Errorf("store-store Pairs = %d, want 1", ss.Pairs)
	}
}

// TestEndKindDowngradeUpdatesExample: when a later pair downgrades a
// report's EndKind to a non-persist kind, the example fields (Addr,
// StoreTID, LoadTID) must move with it — otherwise the rendered report
// claims the first (persisted) pair's location with the later pair's end
// kind, pointing the developer at the wrong access.
func TestEndKindDowngradeUpdatesExample(t *testing.T) {
	const X, Y = 0x100, 0x1000 // distinct cache lines, X's bucket first
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2").Create(0, 3, "c3").Create(0, 4, "c4")
	// Pair 1: persisted store, lock-free concurrent load (benign shape).
	b.Store(1, X, 8, "st")
	b.Persist(1, X, 8, "p")
	b.Load(2, X, 8, "ld")
	// Pair 2, same site pair: never-persisted store at another address.
	b.Store(3, Y, 8, "st")
	b.Load(4, Y, 8, "ld")
	b.Join(0, 1, "j").Join(0, 2, "j").Join(0, 3, "j").Join(0, 4, "j")

	res := Analyze(b.T, cfgNoIRH())
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %v, want one merged (st, ld) report", reportStrings(res))
	}
	rep := res.Reports[0]
	if rep.EndKind != EndNone || !rep.Unpersisted {
		t.Fatalf("EndKind = %v, Unpersisted = %v; want downgrade to %v", rep.EndKind, rep.Unpersisted, EndNone)
	}
	if rep.Addr != Y || rep.StoreTID != 3 || rep.LoadTID != 4 {
		t.Errorf("example = addr %#x T%d/T%d, want the unpersisted pair addr %#x T3/T4",
			rep.Addr, rep.StoreTID, rep.LoadTID, uint64(Y))
	}
}

// TestOverlapsAtAddressSpaceTop: the addition form aAddr < bAddr+bSize
// wraps for ranges ending at ^uint64(0) and reported genuine overlaps as
// misses.
func TestOverlapsAtAddressSpaceTop(t *testing.T) {
	top := ^uint64(0)
	cases := []struct {
		a    uint64
		as   uint32
		b    uint64
		bs   uint32
		want bool
	}{
		{top - 7, 8, top - 3, 4, true},   // [top-7,top] ∩ [top-3,top]
		{top - 3, 4, top - 7, 8, true},   // symmetric
		{top - 7, 8, top - 7, 8, true},   // identical ranges at the top
		{top - 15, 8, top - 7, 8, false}, // adjacent, no shared byte
		{0, 8, top - 7, 8, false},        // opposite ends
		{top, 1, top, 1, true},           // single last byte
		{0x100, 8, 0x104, 8, true},  // ordinary overlap still works
		{0x100, 8, 0x108, 8, false}, // ordinary adjacency still works
		// Zero-size accesses read as one byte — the same convention
		// lastAddrOf and linesOf use. (overlaps used to treat size 0 as an
		// empty range, so a zero-size store was indexed under a line but
		// never closable by an overwrite: it pinned an EndNone record.)
		{0x100, 0, 0x100, 8, true},  // zero-size = 1 byte at addr
		{0x100, 0, 0x101, 8, false}, // ...and only that byte
		{0x100, 0, 0x100, 0, true},  // two zero-size at same addr share it
		{0x107, 0, 0x100, 8, true},  // last byte of the range
		{0x108, 0, 0x100, 8, false}, // one past the range
		{top, 0, top, 1, true},      // zero-size at the very top, no wrap
		{top, 0, top, 0, true},      // both zero-size at the top
		{top, 0, top - 7, 8, true},  // inside a range ending at top
		{0, 0, top, 1, false},       // opposite ends, zero-size side
	}
	for _, c := range cases {
		if got := overlaps(c.a, c.as, c.b, c.bs); got != c.want {
			t.Errorf("overlaps(%#x,%d, %#x,%d) = %v, want %v", c.a, c.as, c.b, c.bs, got, c.want)
		}
	}
}

// TestLinesOfAtAddressSpaceTop: addr+size-1 used to wrap past the top of
// the address space, making the line loop iterate zero times and silently
// dropping the record from every bucket.
func TestLinesOfAtAddressSpaceTop(t *testing.T) {
	top := ^uint64(0)
	collect := func(addr uint64, size uint32) []uint64 {
		var lines []uint64
		linesOf(addr, size, func(l uint64) { lines = append(lines, l) })
		return lines
	}
	// A range that would wrap is clamped to the last line.
	if got := collect(top-3, 8); len(got) != 1 || got[0] != pmem.LineOf(top) {
		t.Errorf("linesOf(top-3, 8) = %v, want [%d]", got, pmem.LineOf(top))
	}
	if got := collect(top, 1); len(got) != 1 || got[0] != pmem.LineOf(top) {
		t.Errorf("linesOf(top, 1) = %v, want [%d]", got, pmem.LineOf(top))
	}
	// A non-wrapping range over the last two lines still spans both.
	if got := collect(top-65, 8); len(got) != 2 || got[1] != pmem.LineOf(top) {
		t.Errorf("linesOf(top-65, 8) = %v, want the last two lines", got)
	}

	if spansLines(top, 8) {
		t.Error("spansLines(top, 8) = true; the clamped range stays in the last line")
	}
	if !spansLines(top-65, 8) {
		t.Error("spansLines(top-65, 8) = false, want true")
	}
	if spansLines(0x100, 8) || !spansLines(0x13c, 8) {
		t.Error("spansLines changed behavior for ordinary ranges")
	}
}

// TestRaceAtAddressSpaceTopDetected: end-to-end version of the wrap bugs —
// a store and an overlapping load in the address space's last cache line
// must still be paired and reported.
func TestRaceAtAddressSpaceTopDetected(t *testing.T) {
	top := ^uint64(0)
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Store(1, top-7, 8, "t1.store") // [top-7, top]
	b.Load(2, top-3, 4, "t2.load")   // [top-3, top]
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if !hasReport(res, "t1.store", "t2.load") {
		t.Fatalf("overlap at the top of the address space missed; reports = %v", reportStrings(res))
	}
}

// assertWorkersAgree analyzes the trace with the sequential reference
// (Workers=1) and several parallel worker counts, requiring byte-identical
// reports (content and order) and identical merged stats.
func assertWorkersAgree(t *testing.T, name string, tr *trace.Trace, cfg Config) {
	t.Helper()
	cfg.Workers = 1
	want := Analyze(tr, cfg)
	for _, n := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		cfg.Workers = n
		got := Analyze(tr, cfg)
		if !reflect.DeepEqual(want.Reports, got.Reports) {
			t.Errorf("%s: Workers=%d reports differ from sequential:\nseq: %+v\npar: %+v",
				name, n, want.Reports, got.Reports)
		}
		if want.Stats != got.Stats {
			t.Errorf("%s: Workers=%d stats differ:\nseq: %+v\npar: %+v", name, n, want.Stats, got.Stats)
		}
	}
}

// TestParallelDifferentialQuickstart: the quickstart (Figure 1c) program,
// captured through the instrumented runtime, analyzes identically for every
// worker count.
func TestParallelDifferentialQuickstart(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 1 << 20})
	mu := rt.NewMutex("A")
	err := rt.Run(func(c *pmrt.Ctx) {
		x := c.Alloc(8)
		t1 := c.Spawn(func(c *pmrt.Ctx) {
			c.Lock(mu)
			c.Store8(x, 42)
			c.Unlock(mu)
			c.Persist(x, 8)
		})
		t2 := c.Spawn(func(c *pmrt.Ctx) {
			c.Lock(mu)
			_ = c.Load8(x)
			c.Unlock(mu)
		})
		c.Join(t1)
		c.Join(t2)
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.IRH = false
	assertWorkersAgree(t, "quickstart", rt.Trace, cfg)
}

// TestParallelDifferentialSpanningStores: stores and loads spanning cache
// lines land in several buckets; wherever a shard boundary falls between
// two buckets sharing a record, the pair must still be counted exactly once
// and reported identically.
func TestParallelDifferentialSpanningStores(t *testing.T) {
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2").Create(0, 3, "c3")
	base := uint64(0x100)
	for i := uint64(0); i < 24; i++ {
		addr := base + i*64 + 60 // 8-byte access spanning lines i and i+1
		b.Store(1, addr, 8, "t1.store")
		b.Load(2, addr+4, 8, "t2.load")
		b.Store(3, addr, 8, "t3.store")
	}
	b.Join(0, 1, "j").Join(0, 2, "j").Join(0, 3, "j")

	cfg := cfgNoIRH()
	assertWorkersAgree(t, "spanning", b.T, cfg)
	cfg.StoreStore = true
	assertWorkersAgree(t, "spanning+store-store", b.T, cfg)
}

// TestParallelDifferentialRandomTraces fuzzes worker-count equivalence over
// random well-formed traces, with and without store-store checking.
func TestParallelDifferentialRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := randTrace(rand.New(rand.NewSource(seed)))
		assertWorkersAgree(t, "rand/default", tr, DefaultConfig())
		cfg := cfgNoIRH()
		cfg.StoreStore = true
		assertWorkersAgree(t, "rand/store-store", tr, cfg)
	}
}
