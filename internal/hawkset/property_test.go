package hawkset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hawkset/internal/trace"
)

// randTrace builds a random-but-well-formed trace: a main thread creates
// nThreads workers, each performing random locked/unlocked PM accesses with
// random persistency, and joins them.
func randTrace(rng *rand.Rand) *trace.Trace {
	b := trace.NewBuilder()
	nThreads := 2 + rng.Intn(3)
	nAddrs := 1 + rng.Intn(6)
	nLocks := 1 + rng.Intn(3)
	for t := 1; t <= nThreads; t++ {
		b.Create(0, int32(t), "main.create")
	}
	for t := 1; t <= nThreads; t++ {
		tid := int32(t)
		for op := 0; op < 3+rng.Intn(10); op++ {
			addr := uint64(0x100 + 64*rng.Intn(nAddrs))
			lock := uint64(1 + rng.Intn(nLocks))
			locked := rng.Intn(2) == 0
			if locked {
				b.Lock(tid, lock, "lock")
			}
			switch rng.Intn(3) {
			case 0:
				b.Store(tid, addr, 8, "store")
			case 1:
				b.Store(tid, addr, 8, "store")
				b.Persist(tid, addr, 8, "persist")
			default:
				b.Load(tid, addr, 8, "load")
			}
			if locked {
				b.Unlock(tid, lock, "unlock")
			}
		}
	}
	for t := 1; t <= nThreads; t++ {
		b.Join(0, int32(t), "main.join")
	}
	return b.T
}

// TestPropertyDeterministic: analyzing the same trace twice yields identical
// reports.
func TestPropertyDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		tr := randTrace(rand.New(rand.NewSource(seed)))
		a := Analyze(tr, DefaultConfig())
		b := Analyze(tr, DefaultConfig())
		if len(a.Reports) != len(b.Reports) {
			return false
		}
		for i := range a.Reports {
			if a.Reports[i] != b.Reports[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFiltersMonotone: each pruning feature (IRH, HB filter) can
// only remove reports, never add them; disabling the effective lockset can
// only remove reports (the plain store lockset is a superset of the
// effective one, so more pairs intersect).
func TestPropertyFiltersMonotone(t *testing.T) {
	f := func(seed int64) bool {
		tr := randTrace(rand.New(rand.NewSource(seed)))
		full := reportSet(Analyze(tr, DefaultConfig()))

		noIRH := DefaultConfig()
		noIRH.IRH = false
		withoutIRH := reportSet(Analyze(tr, noIRH))
		// Every IRH-on report must also appear with IRH off.
		for r := range full {
			if _, ok := withoutIRH[r]; !ok {
				return false
			}
		}

		noHB := DefaultConfig()
		noHB.HBFilter = false
		withoutHB := reportSet(Analyze(tr, noHB))
		for r := range full {
			if _, ok := withoutHB[r]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func reportSet(res *Result) map[[2]string]struct{} {
	out := map[[2]string]struct{}{}
	for _, r := range res.Reports {
		out[[2]string{r.StoreFrame.String(), r.LoadFrame.String()}] = struct{}{}
	}
	return out
}

// TestPropertyNoSameThreadReports: no report ever pairs accesses of one
// thread (Algorithm 1, line 16).
func TestPropertyNoSameThreadReports(t *testing.T) {
	f := func(seed int64) bool {
		tr := randTrace(rand.New(rand.NewSource(seed)))
		res := Analyze(tr, DefaultConfig())
		for _, r := range res.Reports {
			if r.StoreTID == r.LoadTID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFullyLockedAndPersistedSilent: if every access runs under one
// global lock with in-section persistency, nothing is ever reported.
func TestPropertyFullyLockedAndPersistedSilent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := trace.NewBuilder()
		nThreads := 2 + rng.Intn(3)
		for t := 1; t <= nThreads; t++ {
			b.Create(0, int32(t), "main.create")
		}
		for t := 1; t <= nThreads; t++ {
			tid := int32(t)
			for op := 0; op < 3+rng.Intn(8); op++ {
				addr := uint64(0x100 + 64*rng.Intn(4))
				b.Lock(tid, 1, "lock")
				if rng.Intn(2) == 0 {
					b.Store(tid, addr, 8, "store")
					b.Persist(tid, addr, 8, "persist")
				} else {
					b.Load(tid, addr, 8, "load")
				}
				b.Unlock(tid, 1, "unlock")
			}
		}
		for t := 1; t <= nThreads; t++ {
			b.Join(0, int32(t), "main.join")
		}
		cfg := DefaultConfig()
		cfg.IRH = false
		return len(Analyze(b.T, cfg).Reports) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUnlockedUnpersistedAlwaysReported: a lock-free store that is
// never persisted is reported against any overlapping lock-free load from a
// concurrent thread.
func TestPropertyUnlockedUnpersistedAlwaysReported(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		addr := uint64(0x100 + 64*rng.Intn(4))
		b := trace.NewBuilder()
		b.Create(0, 1, "c").Create(0, 2, "c")
		b.Store(1, addr, 8, "t1.store")
		b.Load(2, addr, 8, "t2.load")
		b.Join(0, 1, "j").Join(0, 2, "j")
		cfg := DefaultConfig()
		cfg.IRH = false
		res := Analyze(b.T, cfg)
		return len(res.Reports) == 1 && res.Reports[0].Unpersisted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStatsConsistent: dedup bookkeeping adds up.
func TestPropertyStatsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		tr := randTrace(rand.New(rand.NewSource(seed)))
		cfg := DefaultConfig()
		cfg.IRH = false
		res := Analyze(tr, cfg)
		var dynStores, dynLoads uint64
		for _, st := range res.Stores {
			dynStores += st.Count
		}
		for _, ld := range res.Loads {
			dynLoads += ld.Count
		}
		return dynStores == res.Stats.DynamicStores &&
			dynLoads == res.Stats.DynamicLoads &&
			len(res.Stores) == res.Stats.StoreRecords &&
			len(res.Loads) == res.Stats.LoadRecords
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRWLockSemantics: a store under a write lock and a load under the read
// side of the same lock intersect on the lock identity — protected. The
// trace-level encoding uses one lock ID for both modes (see pmrt.RWMutex).
func TestRWLockSemantics(t *testing.T) {
	const X, L = 0x100, 9
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Lock(1, L, "t1.wlock")
	b.Store(1, X, 8, "t1.store")
	b.Persist(1, X, 8, "t1.persist")
	b.Unlock(1, L, "t1.wunlock")
	b.Lock(2, L, "t2.rlock")
	b.Load(2, X, 8, "t2.load")
	b.Unlock(2, L, "t2.runlock")
	b.Join(0, 1, "j").Join(0, 2, "j")

	res := Analyze(b.T, cfgNoIRH())
	if len(res.Reports) != 0 {
		t.Fatalf("reader/writer lock pair reported: %v", reportStrings(res))
	}
}
