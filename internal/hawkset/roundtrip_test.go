package hawkset

import (
	"bytes"
	"math/rand"
	"testing"

	"hawkset/internal/trace"
)

// TestAnalyzeAfterCodecRoundTrip: capturing a trace to the binary format and
// re-analyzing it yields the same reports — the decoupled
// instrumentation/analysis workflow of cmd/hawkset -trace-out/-trace-in.
func TestAnalyzeAfterCodecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := randTrace(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := trace.Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		decoded, err := trace.Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		a := Analyze(tr, DefaultConfig())
		b := Analyze(decoded, DefaultConfig())
		as, bs := reportSet(a), reportSet(b)
		if len(as) != len(bs) {
			t.Fatalf("seed %d: %d vs %d reports after round trip", seed, len(as), len(bs))
		}
		for r := range as {
			if _, ok := bs[r]; !ok {
				t.Fatalf("seed %d: report %v lost in round trip", seed, r)
			}
		}
	}
}
