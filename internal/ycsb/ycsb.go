// Package ycsb generates the workloads of the paper's evaluation (§5):
// YCSB-style key-value operation streams with a load phase and a
// zipfian-distributed main phase, the memcached-pmem command mix, and
// MadFS's shared-file write workload. All experiments in the paper run with
// eight threads and main phases of 1k, 10k or 100k operations; the PMRace
// comparison (Table 3) uses a corpus of 240 small seed workloads.
package ycsb

import (
	"fmt"
	"math/rand"
)

// OpKind enumerates workload operations across all target applications.
type OpKind uint8

// Operations. The KV set matches the YCSB mix used for the index/hash
// applications; the memcached set matches §5's memcached-pmem benchmark;
// OpWrite is MadFS's 4 KB file write.
const (
	OpInsert OpKind = iota
	OpUpdate
	OpGet
	OpDelete
	OpScan
	OpSet
	OpAdd
	OpReplace
	OpAppend
	OpPrepend
	OpCAS
	OpIncr
	OpDecr
	OpWrite
	// Filesystem operations (MadFS-POSIX): paths are keys, OpRename's
	// destination path travels in Value, OpRead is the lock-free reader.
	OpCreate
	OpRename
	OpUnlink
	OpRead
)

var opNames = map[OpKind]string{
	OpInsert: "insert", OpUpdate: "update", OpGet: "get", OpDelete: "delete",
	OpScan: "scan", OpSet: "set", OpAdd: "add", OpReplace: "replace",
	OpAppend: "append", OpPrepend: "prepend", OpCAS: "cas", OpIncr: "incr",
	OpDecr: "decr", OpWrite: "write", OpCreate: "create", OpRename: "rename",
	OpUnlink: "unlink", OpRead: "read",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one workload operation.
type Op struct {
	Kind  OpKind
	Key   uint64
	Value uint64
	// Off is the byte offset for file workloads (OpWrite).
	Off uint64
	// Len is the write length for file workloads.
	Len uint64
}

// Mix is a weighted operation mix.
type Mix []struct {
	Kind   OpKind
	Weight int
}

// KVMix is the paper's YCSB main-phase mix: 30% insertions, 30% updates,
// 30% gets, 10% deletes (§5, Workloads).
func KVMix() Mix {
	return Mix{{OpInsert, 30}, {OpUpdate, 30}, {OpGet, 30}, {OpDelete, 10}}
}

// MemcachedMix covers the ten memcached-pmem commands of §5.
func MemcachedMix() Mix {
	return Mix{
		{OpSet, 25}, {OpGet, 25}, {OpAdd, 10}, {OpReplace, 10},
		{OpAppend, 5}, {OpPrepend, 5}, {OpCAS, 5}, {OpDelete, 5},
		{OpIncr, 5}, {OpDecr, 5},
	}
}

// ScanMix is a YCSB-E-style short-range-scan mix for the index structures
// that support range queries (Fast-Fair, P-Masstree).
func ScanMix() Mix {
	return Mix{{OpScan, 60}, {OpInsert, 20}, {OpGet, 15}, {OpDelete, 5}}
}

// Spec parameterizes workload generation.
type Spec struct {
	Threads   int
	LoadCount int // load-phase insertions (performed by the main thread)
	OpCount   int // total main-phase operations, split across threads
	KeySpace  uint64
	Mix       Mix
	// FileSize/WriteSize configure OpWrite workloads (MadFS).
	FileSize  uint64
	WriteSize uint64
	// LoadKind is the load-phase operation; the zero value is OpInsert
	// (the KV specs), filesystem specs populate the namespace with
	// OpCreate.
	LoadKind OpKind
}

// DefaultSpec is the paper's configuration: 8 threads, 1k-insert load phase,
// zipfian key choice.
func DefaultSpec(opCount int) Spec {
	return Spec{
		Threads:   8,
		LoadCount: 1000,
		OpCount:   opCount,
		KeySpace:  1 << 20,
		Mix:       KVMix(),
	}
}

// Workload is a generated workload: a sequential load phase plus per-thread
// main-phase operation streams.
type Workload struct {
	Name    string
	Seed    int64
	Load    []Op
	Threads [][]Op
}

// TotalOps returns the number of main-phase operations.
func (w *Workload) TotalOps() int {
	n := 0
	for _, t := range w.Threads {
		n += len(t)
	}
	return n
}

// Generate builds a deterministic workload from spec and seed. Keys follow a
// zipfian distribution over a window of the key space that grows with the
// load phase, mimicking YCSB's scrambled-zipfian request distribution.
func Generate(spec Spec, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	if spec.Threads <= 0 {
		spec.Threads = 1
	}
	if spec.KeySpace == 0 {
		spec.KeySpace = 1 << 20
	}
	w := &Workload{
		Name: fmt.Sprintf("spec%dx%d-seed%d", spec.Threads, spec.OpCount, seed),
		Seed: seed,
	}
	zipf := NewZipfian(spec.KeySpace, 0.99, rng.Float64) // YCSB default theta
	key := zipf.NextScrambled

	for i := 0; i < spec.LoadCount; i++ {
		w.Load = append(w.Load, Op{Kind: spec.LoadKind, Key: key(), Value: rng.Uint64()})
	}

	total := 0
	for _, m := range spec.Mix {
		total += m.Weight
	}
	pick := func() OpKind {
		n := rng.Intn(total)
		for _, m := range spec.Mix {
			if n < m.Weight {
				return m.Kind
			}
			n -= m.Weight
		}
		return spec.Mix[len(spec.Mix)-1].Kind
	}

	w.Threads = make([][]Op, spec.Threads)
	for i := 0; i < spec.OpCount; i++ {
		t := i % spec.Threads
		op := Op{Kind: pick(), Key: key(), Value: rng.Uint64()}
		if op.Kind == OpScan {
			op.Len = uint64(rng.Intn(90) + 10) // YCSB-E scan lengths: 10-100
		}
		if op.Kind == OpWrite {
			if spec.FileSize == 0 {
				spec.FileSize = 1 << 20
			}
			if spec.WriteSize == 0 {
				spec.WriteSize = 4096
			}
			op.Off = (zipf.Next() * spec.WriteSize) % spec.FileSize
			op.Len = spec.WriteSize
		}
		if op.Kind == OpRename {
			op.Value = key() // destination path from the same zipf stream
		}
		w.Threads[t] = append(w.Threads[t], op)
	}
	return w
}

// FileSpec is the MadFS workload of §5: every thread issues 4 KB writes at
// zipfian offsets of a shared file.
func FileSpec(opCount int) Spec {
	return Spec{
		Threads:   8,
		LoadCount: 0,
		OpCount:   opCount,
		KeySpace:  1 << 16,
		Mix:       Mix{{OpWrite, 1}},
		FileSize:  4 << 20,
		WriteSize: 4096,
	}
}

// FSMix is the POSIX operation mix for the filesystem scenarios: a
// create/write/append/rename/unlink/read blend with enough renames and
// lock-free reads to exercise the namespace commit protocols.
func FSMix() Mix {
	return Mix{
		{OpCreate, 20}, {OpWrite, 15}, {OpAppend, 25},
		{OpRename, 15}, {OpUnlink, 5}, {OpRead, 20},
	}
}

// FSSpec is the MadFS-POSIX workload: a create-populated namespace followed
// by the POSIX mix over zipf-distributed paths of a small (2 KB-file)
// filesystem, so racing operations collide on hot names.
func FSSpec(opCount int) Spec {
	return Spec{
		Threads:   8,
		LoadCount: 64,
		LoadKind:  OpCreate,
		OpCount:   opCount,
		KeySpace:  512,
		Mix:       FSMix(),
		FileSize:  2048,
		WriteSize: 256,
	}
}

// MemcachedSpec is the memcached-pmem benchmark of §5: a 1000-set load phase
// followed by the ten-command zipfian mix.
func MemcachedSpec(opCount int) Spec {
	return Spec{
		Threads:   8,
		LoadCount: 1000,
		OpCount:   opCount,
		KeySpace:  1 << 16,
		Mix:       MemcachedMix(),
	}
}

// Seeds generates a corpus of n small seed workloads (≈400 operations each,
// matching PMRace's Fast-Fair seed corpus, §5.2).
func Seeds(n int, base int64) []*Workload {
	out := make([]*Workload, 0, n)
	for i := 0; i < n; i++ {
		spec := DefaultSpec(400)
		spec.LoadCount = 150
		spec.KeySpace = 1 << 12
		w := Generate(spec, base+int64(i))
		w.Name = fmt.Sprintf("seed-%03d", i)
		out = append(out, w)
	}
	return out
}

// Mutate returns a mutated copy of w, the way PMRace's fuzzing engine
// perturbs a seed between executions: a fraction of operations get a new
// kind, key or value.
func Mutate(w *Workload, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	out := &Workload{Name: w.Name + "+mut", Seed: seed, Load: w.Load}
	out.Threads = make([][]Op, len(w.Threads))
	kinds := []OpKind{OpInsert, OpUpdate, OpGet, OpDelete}
	for i, ops := range w.Threads {
		cp := make([]Op, len(ops))
		copy(cp, ops)
		for j := range cp {
			if rng.Intn(10) == 0 {
				switch rng.Intn(3) {
				case 0:
					cp[j].Kind = kinds[rng.Intn(len(kinds))]
				case 1:
					cp[j].Key = uint64(rng.Intn(1 << 12))
				default:
					cp[j].Value = rng.Uint64()
				}
			}
		}
		out.Threads[i] = cp
	}
	return out
}

// scramble is a 64-bit finalizer (splitmix64) decorrelating zipfian ranks
// from key values, YCSB's "scrambled zipfian".
func scramble(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
