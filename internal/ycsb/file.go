package ycsb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Workload file format — a line-oriented text format so seed corpora (the
// Table 3 artifact) can be stored, shared and replayed exactly, the way the
// original artifact ships PMRace's 240 Fast-Fair seeds:
//
//	# comment
//	workload <name>
//	seed <n>
//	load <kind> <key> <value>
//	thread <i>
//	op <kind> <key> <value> [<off> <len>]
//
// Every `op` line after a `thread` line belongs to that thread.

// Save writes the workload in the text format.
func Save(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# hawkset workload\nworkload %s\nseed %d\n", sanitize(wl.Name), wl.Seed)
	for _, op := range wl.Load {
		writeOp(bw, "load", op)
	}
	for i, ops := range wl.Threads {
		fmt.Fprintf(bw, "thread %d\n", i)
		for _, op := range ops {
			writeOp(bw, "op", op)
		}
	}
	return bw.Flush()
}

func sanitize(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(s, " ", "_")
}

func writeOp(bw *bufio.Writer, tag string, op Op) {
	if op.Kind == OpWrite {
		fmt.Fprintf(bw, "%s %s %d %d %d %d\n", tag, op.Kind, op.Key, op.Value, op.Off, op.Len)
		return
	}
	fmt.Fprintf(bw, "%s %s %d %d\n", tag, op.Kind, op.Key, op.Value)
}

var kindByName = func() map[string]OpKind {
	m := make(map[string]OpKind, len(opNames))
	for k, n := range opNames {
		m[n] = k
	}
	return m
}()

// Load parses a workload file.
func Load(r io.Reader) (*Workload, error) {
	wl := &Workload{Name: "unnamed"}
	cur := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "workload":
			if len(f) != 2 {
				return nil, fmt.Errorf("ycsb: line %d: workload needs a name", lineno)
			}
			wl.Name = f[1]
		case "seed":
			if len(f) != 2 {
				return nil, fmt.Errorf("ycsb: line %d: seed needs a value", lineno)
			}
			n, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("ycsb: line %d: %v", lineno, err)
			}
			wl.Seed = n
		case "thread":
			if len(f) != 2 {
				return nil, fmt.Errorf("ycsb: line %d: thread needs an index", lineno)
			}
			i, err := strconv.Atoi(f[1])
			if err != nil || i < 0 || i > 1<<16 {
				return nil, fmt.Errorf("ycsb: line %d: bad thread index %q", lineno, f[1])
			}
			for len(wl.Threads) <= i {
				wl.Threads = append(wl.Threads, nil)
			}
			cur = i
		case "load", "op":
			op, err := parseOp(f)
			if err != nil {
				return nil, fmt.Errorf("ycsb: line %d: %v", lineno, err)
			}
			if f[0] == "load" {
				wl.Load = append(wl.Load, op)
			} else {
				if cur < 0 {
					return nil, fmt.Errorf("ycsb: line %d: op before any thread line", lineno)
				}
				wl.Threads[cur] = append(wl.Threads[cur], op)
			}
		default:
			return nil, fmt.Errorf("ycsb: line %d: unknown directive %q", lineno, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return wl, nil
}

func parseOp(f []string) (Op, error) {
	if len(f) != 4 && len(f) != 6 {
		return Op{}, fmt.Errorf("op needs 3 or 5 fields, got %d", len(f)-1)
	}
	kind, ok := kindByName[f[1]]
	if !ok {
		return Op{}, fmt.Errorf("unknown op kind %q", f[1])
	}
	key, err := strconv.ParseUint(f[2], 10, 64)
	if err != nil {
		return Op{}, err
	}
	val, err := strconv.ParseUint(f[3], 10, 64)
	if err != nil {
		return Op{}, err
	}
	op := Op{Kind: kind, Key: key, Value: val}
	if len(f) == 6 {
		if op.Off, err = strconv.ParseUint(f[4], 10, 64); err != nil {
			return Op{}, err
		}
		if op.Len, err = strconv.ParseUint(f[5], 10, 64); err != nil {
			return Op{}, err
		}
	}
	return op, nil
}
