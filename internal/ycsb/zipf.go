package ycsb

import "math"

// Zipfian is YCSB's zipfian generator (Gray et al., "Quickly generating
// billion-record synthetic databases", SIGMOD'94 — the exact algorithm in
// YCSB's ZipfianGenerator.java) over the range [0, n): item rank r is drawn
// with probability proportional to 1/r^theta. YCSB's default theta is 0.99.
//
// The scrambled variant (YCSB's scrambled_zipfian, what workload files use
// by default) additionally hashes the rank so that the popular items are
// spread across the key space instead of clustering at its start.
type Zipfian struct {
	n     uint64
	theta float64
	// precomputed constants
	alpha, zetan, eta float64
	rand              func() float64
}

// NewZipfian creates a generator over [0, n) with the given theta, drawing
// uniform randoms from randFn (typically rng.Float64).
func NewZipfian(n uint64, theta float64, randFn func() float64) *Zipfian {
	if n < 2 {
		n = 2
	}
	z := &Zipfian{n: n, theta: theta, rand: randFn}
	zeta2 := zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// zetaStatic computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
// YCSB caches these for common n; the corpus sizes here are small enough to
// compute directly (once per generator).
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next zipfian rank in [0, n): rank 0 is the most popular.
func (z *Zipfian) Next() uint64 {
	u := z.rand()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// NextScrambled draws a scrambled-zipfian key in [0, n): zipfian popularity,
// uniformly spread identities (YCSB's FNV-hash scramble).
func (z *Zipfian) NextScrambled() uint64 {
	return scramble(z.Next()) % z.n
}
