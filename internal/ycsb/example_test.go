package ycsb_test

import (
	"fmt"

	"hawkset/internal/ycsb"
)

// Example generates the paper's YCSB workload shape: a load phase of
// insertions and a zipfian main phase split across eight threads.
func Example() {
	w := ycsb.Generate(ycsb.DefaultSpec(10000), 42)
	fmt.Printf("workload %s: %d load ops, %d main ops on %d threads\n",
		w.Name, len(w.Load), w.TotalOps(), len(w.Threads))
	// Output:
	// workload spec8x10000-seed42: 1000 load ops, 10000 main ops on 8 threads
}
