package ycsb

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultSpec(1000), 7)
	b := Generate(DefaultSpec(1000), 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different workloads")
	}
	c := Generate(DefaultSpec(1000), 8)
	if reflect.DeepEqual(a.Threads, c.Threads) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateCountsAndSplit(t *testing.T) {
	w := Generate(DefaultSpec(1000), 1)
	if len(w.Load) != 1000 {
		t.Fatalf("load ops = %d", len(w.Load))
	}
	if w.TotalOps() != 1000 {
		t.Fatalf("total ops = %d", w.TotalOps())
	}
	if len(w.Threads) != 8 {
		t.Fatalf("threads = %d", len(w.Threads))
	}
	for i, ops := range w.Threads {
		if len(ops) != 125 {
			t.Fatalf("thread %d has %d ops", i, len(ops))
		}
	}
}

func TestMixProportions(t *testing.T) {
	w := Generate(DefaultSpec(20000), 3)
	counts := map[OpKind]int{}
	for _, ops := range w.Threads {
		for _, op := range ops {
			counts[op.Kind]++
		}
	}
	frac := func(k OpKind) float64 { return float64(counts[k]) / 20000 }
	for _, c := range []struct {
		k    OpKind
		want float64
	}{{OpInsert, .3}, {OpUpdate, .3}, {OpGet, .3}, {OpDelete, .1}} {
		if got := frac(c.k); got < c.want-0.03 || got > c.want+0.03 {
			t.Errorf("%v fraction = %.3f, want ≈%.2f", c.k, got, c.want)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	w := Generate(DefaultSpec(20000), 5)
	counts := map[uint64]int{}
	total := 0
	for _, ops := range w.Threads {
		for _, op := range ops {
			counts[op.Key]++
			total++
		}
	}
	// The hottest key of a zipfian stream must be much hotter than uniform.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < total/100 {
		t.Fatalf("hottest key has %d/%d accesses; distribution looks uniform", max, total)
	}
}

func TestFileSpec(t *testing.T) {
	w := Generate(FileSpec(1000), 2)
	if len(w.Load) != 0 {
		t.Fatal("file workload has a load phase")
	}
	for _, ops := range w.Threads {
		for _, op := range ops {
			if op.Kind != OpWrite {
				t.Fatalf("unexpected op %v", op.Kind)
			}
			if op.Len != 4096 {
				t.Fatalf("write len = %d", op.Len)
			}
			if op.Off%4096 != 0 || op.Off+op.Len > 4<<20 {
				t.Fatalf("write off = %d out of range/alignment", op.Off)
			}
		}
	}
}

// TestFSSpecShape: the filesystem workload populates the namespace with
// creates, draws a destination path for every rename, and uses every
// operation of the POSIX mix.
func TestFSSpecShape(t *testing.T) {
	w := Generate(FSSpec(4000), 11)
	if len(w.Load) != 64 {
		t.Fatalf("load ops = %d, want 64", len(w.Load))
	}
	for _, op := range w.Load {
		if op.Kind != OpCreate {
			t.Fatalf("load phase op = %v, want create", op.Kind)
		}
	}
	seen := map[OpKind]bool{}
	renames, moved := 0, 0
	for _, ops := range w.Threads {
		for _, op := range ops {
			seen[op.Kind] = true
			if op.Kind == OpRename {
				renames++
				if op.Value != op.Key {
					moved++
				}
			}
		}
	}
	// Destinations come from their own zipf draw, so nearly all renames
	// actually move the name.
	if renames == 0 || moved < renames/2 {
		t.Fatalf("rename destinations look undrawn: %d renames, %d with a distinct destination", renames, moved)
	}
	for _, k := range []OpKind{OpCreate, OpWrite, OpAppend, OpRename, OpUnlink, OpRead} {
		if !seen[k] {
			t.Errorf("operation %v never generated", k)
		}
	}
}

// TestFSSpecDeterministic: two same-seed FSSpec generators produce identical
// streams — the property every campaign and differential rests on.
func TestFSSpecDeterministic(t *testing.T) {
	a := Generate(FSSpec(2000), 42)
	b := Generate(FSSpec(2000), 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different filesystem workloads")
	}
	c := Generate(FSSpec(2000), 43)
	if reflect.DeepEqual(a.Threads, c.Threads) {
		t.Fatal("different seeds produced identical filesystem workloads")
	}
}

// TestSpecGoldens pins the first operations of the pre-existing specs to
// hardcoded values: adding the filesystem op kinds and LoadKind must not
// shift the RNG stream of any existing workload — recorded campaigns and
// cross-version comparisons depend on byte-identical regeneration.
func TestSpecGoldens(t *testing.T) {
	w := Generate(DefaultSpec(24), 42)
	wantLoad := []Op{
		{Kind: OpInsert, Key: 783774, Value: 9832119173398632219},
		{Kind: OpInsert, Key: 663324, Value: 1926012586526624009},
		{Kind: OpInsert, Key: 904623, Value: 3534334367214237261},
	}
	if !reflect.DeepEqual(w.Load[:3], wantLoad) {
		t.Fatalf("DefaultSpec load stream shifted:\n got %+v\nwant %+v", w.Load[:3], wantLoad)
	}
	wantMain := []Op{
		{Kind: OpGet, Key: 492591, Value: 3250603394152834696},
		{Kind: OpGet, Key: 279271, Value: 4124062994344535519},
		{Kind: OpInsert, Key: 1040384, Value: 15350457090105392934},
	}
	if !reflect.DeepEqual(w.Threads[0], wantMain) {
		t.Fatalf("DefaultSpec main stream shifted:\n got %+v\nwant %+v", w.Threads[0], wantMain)
	}
	f := Generate(FileSpec(24), 7)
	wantFile := []Op{
		{Kind: OpWrite, Key: 3543, Value: 11449779372969249750, Off: 2293760, Len: 4096},
		{Kind: OpWrite, Key: 43035, Value: 7527948831010731783, Off: 503808, Len: 4096},
		{Kind: OpWrite, Key: 19158, Value: 14107507587918963079, Off: 8192, Len: 4096},
	}
	if !reflect.DeepEqual(f.Threads[0], wantFile) {
		t.Fatalf("FileSpec stream shifted:\n got %+v\nwant %+v", f.Threads[0], wantFile)
	}
}

func TestMemcachedSpecUsesAllCommands(t *testing.T) {
	w := Generate(MemcachedSpec(10000), 4)
	seen := map[OpKind]bool{}
	for _, ops := range w.Threads {
		for _, op := range ops {
			seen[op.Kind] = true
		}
	}
	for _, k := range []OpKind{OpSet, OpGet, OpAdd, OpReplace, OpAppend, OpPrepend, OpCAS, OpDelete, OpIncr, OpDecr} {
		if !seen[k] {
			t.Errorf("command %v never generated", k)
		}
	}
}

func TestSeedsCorpus(t *testing.T) {
	seeds := Seeds(240, 1000)
	if len(seeds) != 240 {
		t.Fatalf("seeds = %d", len(seeds))
	}
	if seeds[0].TotalOps() != 400 {
		t.Fatalf("seed ops = %d, want 400 (PMRace seed size)", seeds[0].TotalOps())
	}
	if reflect.DeepEqual(seeds[0].Threads, seeds[1].Threads) {
		t.Fatal("distinct seeds identical")
	}
}

func TestMutatePerturbsButPreservesShape(t *testing.T) {
	w := Generate(DefaultSpec(1000), 9)
	m := Mutate(w, 42)
	if m.TotalOps() != w.TotalOps() {
		t.Fatal("mutation changed op count")
	}
	if reflect.DeepEqual(m.Threads, w.Threads) {
		t.Fatal("mutation changed nothing")
	}
	if !reflect.DeepEqual(Mutate(w, 42), m) {
		t.Fatal("mutation not deterministic")
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "insert" || OpWrite.String() != "write" {
		t.Fatal("OpKind.String broken")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, spec := range []Spec{DefaultSpec(500), FileSpec(200), MemcachedSpec(300), FSSpec(400)} {
		w := Generate(spec, 13)
		var buf bytes.Buffer
		if err := Save(&buf, w); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != w.Name || got.Seed != w.Seed {
			t.Fatalf("header differs: %q/%d vs %q/%d", got.Name, got.Seed, w.Name, w.Seed)
		}
		if !reflect.DeepEqual(got.Load, w.Load) {
			t.Fatal("load phase differs after round trip")
		}
		if !reflect.DeepEqual(got.Threads, w.Threads) {
			t.Fatal("thread ops differ after round trip")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"frobnicate 1\n",
		"op get 1 2\n",              // op before thread
		"thread 0\nop nosuch 1 2\n", // unknown kind
		"thread x\n",
		"seed notanumber\n",
		"thread 0\nop get 1\n", // missing fields
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nworkload w\nseed 9\n\n# ops\nthread 0\nop get 5 0\n"
	w, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Seed != 9 || len(w.Threads) != 1 || len(w.Threads[0]) != 1 {
		t.Fatalf("parsed %+v", w)
	}
}

func TestZipfianBoundsAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := NewZipfian(1000, 0.99, rng.Float64)
	var a []uint64
	for i := 0; i < 5000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("rank %d out of range", v)
		}
		a = append(a, v)
	}
	rng2 := rand.New(rand.NewSource(7))
	z2 := NewZipfian(1000, 0.99, rng2.Float64)
	for i := range a {
		if got := z2.Next(); got != a[i] {
			t.Fatalf("not deterministic at %d: %d vs %d", i, got, a[i])
		}
	}
}

func TestZipfianSkewTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipfian(10000, 0.99, rng.Float64)
	counts := map[uint64]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Under theta=0.99 the most popular rank takes a large share; YCSB's
	// rank-0 probability for n=10k is ≈ 1/zeta(10k, .99) ≈ 9-10%.
	if frac := float64(counts[0]) / draws; frac < 0.05 || frac > 0.2 {
		t.Fatalf("rank-0 share = %.3f, want ≈0.1 (theta=0.99)", frac)
	}
	// Rank popularity must be monotone-ish: rank 0 > rank 100.
	if counts[0] <= counts[100] {
		t.Fatalf("rank 0 (%d draws) not hotter than rank 100 (%d)", counts[0], counts[100])
	}
}

func TestScrambledSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := NewZipfian(1<<16, 0.99, rng.Float64)
	// The hottest scrambled keys must not cluster in the low range.
	low := 0
	for i := 0; i < 2000; i++ {
		if z.NextScrambled() < 1<<10 {
			low++
		}
	}
	if low > 400 { // uniform expectation ≈ 2000/64 ≈ 31; allow heavy-hitter noise
		t.Fatalf("%d/2000 scrambled keys in the lowest 1/64 of the space — scrambling broken", low)
	}
}
