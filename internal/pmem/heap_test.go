package pmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeapAllocAligned(t *testing.T) {
	h := NewHeap(LineSize, 1<<20)
	for i := 0; i < 100; i++ {
		a := h.Alloc(uint64(i + 1))
		if a%LineSize != 0 {
			t.Fatalf("allocation %d at %#x not line-aligned", i, a)
		}
	}
}

func TestHeapNoOverlap(t *testing.T) {
	h := NewHeap(0, 1<<20)
	type blk struct{ addr, size uint64 }
	var blks []blk
	for i := 0; i < 200; i++ {
		size := uint64(i%128 + 1)
		a := h.Alloc(size)
		for _, b := range blks {
			if a < b.addr+b.size && b.addr < a+size {
				t.Fatalf("allocation [%#x,+%d) overlaps [%#x,+%d)", a, size, b.addr, b.size)
			}
		}
		blks = append(blks, blk{a, size})
	}
}

func TestHeapReuseAfterFree(t *testing.T) {
	h := NewHeap(0, 1<<20)
	a := h.Alloc(64)
	h.Free(a)
	b := h.Alloc(64)
	if a != b {
		t.Fatalf("first-fit should reuse freed block: got %#x, want %#x", b, a)
	}
}

func TestHeapCoalescing(t *testing.T) {
	h := NewHeap(0, 1<<12)
	a := h.Alloc(64)
	b := h.Alloc(64)
	c := h.Alloc(64)
	h.Free(a)
	h.Free(c)
	h.Free(b) // middle: should merge all three with the tail span
	if h.FreeSpans() != 1 {
		t.Fatalf("FreeSpans = %d, want 1 after full coalescing", h.FreeSpans())
	}
	// The whole heap must be allocatable again.
	d := h.Alloc(1 << 12)
	if d != 0 {
		t.Fatalf("full-heap alloc at %#x, want 0", d)
	}
}

func TestHeapExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted heap did not panic")
		}
	}()
	h := NewHeap(0, 128)
	h.Alloc(64)
	h.Alloc(64)
	h.Alloc(64)
}

func TestHeapDoubleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	h := NewHeap(0, 1<<12)
	a := h.Alloc(64)
	h.Free(a)
	h.Free(a)
}

// Property: any alloc/free sequence keeps accounting consistent and ends
// with a single coalesced span after freeing everything.
func TestHeapChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHeap(0, 1<<18) // large enough for 300 live 256-byte blocks
		live := make(map[uint64]bool)
		for i := 0; i < 300; i++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				a := h.Alloc(uint64(rng.Intn(200) + 1))
				if live[a] {
					return false // handed out a live block
				}
				live[a] = true
			} else {
				for a := range live {
					h.Free(a)
					delete(live, a)
					break
				}
			}
		}
		for a := range live {
			h.Free(a)
		}
		return h.InUse() == 0 && h.FreeSpans() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
