// Package pmem models a byte-addressable persistent memory device fronted by
// a volatile CPU cache, following the worst-case persistency semantics used
// by HawkSet's Memory Simulation component (EuroSys'25, §3.2 A): a store
// dirties its 64-byte cache line and the line is only guaranteed persistent
// after an explicit flush (CLWB/CLFLUSHOPT) followed by a fence (SFENCE)
// issued by the flushing thread. Data written after the flush but before the
// fence is not covered by that flush.
//
// The model keeps two images of the address space: the volatile view (what
// loads observe, i.e. cache plus PM) and the persistent view (what survives a
// crash). Crash returns a copy of the persistent view.
//
// Pool is not safe for concurrent use; the instrumented runtime
// (internal/pmrt) serializes all accesses through its cooperative scheduler.
package pmem

import (
	"encoding/binary"
	"fmt"

	"hawkset/internal/obs"
)

// Addr is an offset into a Pool's address space. Applications treat Addr
// values as persistent pointers.
type Addr = uint64

// LineSize is the cache-line size in bytes; flush and persistence tracking
// are line-granular, exactly like CLWB on x86.
const LineSize = 64

// LineOf returns the line index containing addr.
func LineOf(addr Addr) uint64 { return addr / LineSize }

// LastByte returns the address of the last byte of [addr, addr+size),
// clamped to the top of the address space when addr+size-1 would wrap. The
// addition form addr+size-1 turns a range ending at the top of the address
// space into a tiny (or enormous) bound, so every line-iteration loop uses
// this subtraction-form helper instead. size must be nonzero.
func LastByte(addr Addr, size uint64) Addr {
	if size-1 > ^uint64(0)-addr {
		return ^uint64(0)
	}
	return addr + size - 1
}

// Options configure a Pool.
type Options struct {
	// EADR models extended Asynchronous DRAM Refresh: the persistent domain
	// includes the cache, so every store is persistent as soon as it is
	// visible. Used for ablations; HawkSet targets non-eADR platforms.
	EADR bool
	// TrackWriters enables per-byte last-writer/last-site bookkeeping, which
	// DirtyRead needs. Only the observation-based baseline uses it; it costs
	// 8 bytes of metadata per pool byte, so it is off by default.
	TrackWriters bool
	// EvictAfter, when positive, models the cache's background writeback:
	// a line left dirty for EvictAfter device operations is evicted, i.e.
	// written back and persisted, without any program action — §2.1's "data
	// may be arbitrarily flushed to PM by the cache-policy algorithm".
	//
	// HawkSet's own Memory Simulation deliberately ignores eviction (it
	// tracks when data is *guaranteed* persistent, worst case), but the
	// observation-based baseline runs against hardware-realistic eviction:
	// on real PM most unpersisted windows close quickly by accident, which
	// is precisely why races are so hard to observe directly (§5.2).
	EvictAfter int
	// Metrics, when non-nil, receives side-band device counters (stores,
	// flushes, fences, evictions) and the dirty-line gauge. Device behavior
	// is unaffected. A pointer field keeps Options comparable (Replayer
	// clone reuse relies on that).
	Metrics *obs.Registry
}

// pendingFlush is a snapshot taken by a flush instruction, waiting for the
// issuing thread's next fence to enter the persistent domain.
type pendingFlush struct {
	addr Addr
	data []byte
}

// Pool is a simulated PM device.
type Pool struct {
	opts       Options
	volatile   []byte
	persistent []byte
	// lastWriter / lastSite record, per byte, the thread and call site of the
	// most recent store while that byte is unpersisted. Used by the
	// observation-based baseline (internal/baseline/pmrace) to detect
	// dirty reads the way PMRace does.
	lastWriter []int32
	lastSite   []int32
	dirty      map[uint64]struct{} // line index -> dirty (volatile != persistent possible)
	pending    map[int32][]pendingFlush

	// Background-eviction state (Options.EvictAfter).
	clock      uint64
	evictQueue []evictEntry

	// Side-band metric handles (nil when Options.Metrics is unset).
	mStores     *obs.Counter
	mNTStores   *obs.Counter
	mStoreBytes *obs.Counter
	mFlushes    *obs.Counter
	mFences     *obs.Counter
	mEvictions  *obs.Counter
	mDirtyLines *obs.Gauge
}

type evictEntry struct {
	line uint64
	at   uint64
}

// New creates a Pool of the given size in bytes, zero-filled and fully
// persisted.
func New(size uint64, opts Options) *Pool {
	p := &Pool{
		opts:        opts,
		volatile:    make([]byte, size),
		persistent:  make([]byte, size),
		dirty:       make(map[uint64]struct{}),
		pending:     make(map[int32][]pendingFlush),
		mStores:     opts.Metrics.Counter("pmem.stores"),
		mNTStores:   opts.Metrics.Counter("pmem.ntstores"),
		mStoreBytes: opts.Metrics.Counter("pmem.store_bytes"),
		mFlushes:    opts.Metrics.Counter("pmem.flushes"),
		mFences:     opts.Metrics.Counter("pmem.fences"),
		mEvictions:  opts.Metrics.Counter("pmem.evictions"),
		mDirtyLines: opts.Metrics.Gauge("pmem.dirty_lines"),
	}
	if opts.TrackWriters {
		p.lastWriter = make([]int32, size)
		p.lastSite = make([]int32, size)
	}
	return p
}

// Size returns the pool size in bytes.
func (p *Pool) Size() uint64 { return uint64(len(p.volatile)) }

func (p *Pool) check(addr Addr, n int) {
	// Subtraction form: int(addr)+n wraps negative for addresses near the
	// top of the address space and silently passes the comparison.
	if n < 0 || addr > p.Size() || uint64(n) > p.Size()-addr {
		panic(fmt.Sprintf("pmem: access [%#x,%#x) out of pool bounds %#x", addr, addr+uint64(n), len(p.volatile)))
	}
}

// Store writes data to the volatile view on behalf of tid, dirtying the
// covered lines. site identifies the program location of the store for
// dirty-read attribution.
func (p *Pool) Store(tid int32, addr Addr, data []byte, site int32) {
	p.check(addr, len(data))
	if len(data) == 0 {
		return
	}
	p.mStores.Inc()
	p.mStoreBytes.Add(uint64(len(data)))
	p.tick()
	copy(p.volatile[addr:], data)
	if p.opts.EADR {
		copy(p.persistent[addr:], data)
		return
	}
	if p.lastWriter != nil {
		for i := range data {
			p.lastWriter[addr+uint64(i)] = tid
			p.lastSite[addr+uint64(i)] = site
		}
	}
	for l, last := LineOf(addr), LineOf(LastByte(addr, uint64(len(data)))); l <= last; l++ {
		p.dirty[l] = struct{}{}
		if p.opts.EvictAfter > 0 {
			p.evictQueue = append(p.evictQueue, evictEntry{line: l, at: p.clock})
		}
	}
	p.mDirtyLines.Set(int64(len(p.dirty)))
}

// tick advances the device clock and performs due background evictions.
func (p *Pool) tick() {
	p.clock++
	if p.opts.EvictAfter <= 0 {
		return
	}
	for len(p.evictQueue) > 0 && p.clock-p.evictQueue[0].at >= uint64(p.opts.EvictAfter) {
		e := p.evictQueue[0]
		p.evictQueue = p.evictQueue[1:]
		if _, isDirty := p.dirty[e.line]; !isDirty {
			continue
		}
		base := e.line * LineSize
		end := base + LineSize
		if end > p.Size() {
			end = p.Size()
		}
		copy(p.persistent[base:end], p.volatile[base:end])
		delete(p.dirty, e.line)
		p.mEvictions.Inc()
		p.mDirtyLines.Set(int64(len(p.dirty)))
	}
}

// NTStore performs a non-temporal store: the data bypasses the cache and is
// queued for persistence, but ordering (and thus the persistence guarantee)
// still requires a fence from the same thread.
func (p *Pool) NTStore(tid int32, addr Addr, data []byte, site int32) {
	p.mNTStores.Inc()
	p.Store(tid, addr, data, site)
	if p.opts.EADR {
		return
	}
	snap := make([]byte, len(data))
	copy(snap, data)
	p.pending[tid] = append(p.pending[tid], pendingFlush{addr: addr, data: snap})
}

// Load copies the current volatile contents at addr into buf.
func (p *Pool) Load(addr Addr, buf []byte) {
	p.check(addr, len(buf))
	p.tick()
	copy(buf, p.volatile[addr:])
}

// Flush issues a CLWB for the line containing addr on behalf of tid: the
// line's current contents are snapshotted and will enter the persistent
// domain at tid's next fence. Stores after the flush are not covered.
func (p *Pool) Flush(tid int32, addr Addr) {
	p.check(addr, 1)
	p.mFlushes.Inc()
	if p.opts.EADR {
		return
	}
	line := LineOf(addr)
	base := line * LineSize
	end := base + LineSize
	if end > p.Size() {
		end = p.Size()
	}
	snap := make([]byte, end-base)
	copy(snap, p.volatile[base:end])
	p.pending[tid] = append(p.pending[tid], pendingFlush{addr: base, data: snap})
}

// FlushRange issues flushes for every line overlapping [addr, addr+size).
func (p *Pool) FlushRange(tid int32, addr Addr, size uint64) {
	if size == 0 {
		return
	}
	if size > uint64(^uint(0)>>1) {
		panic(fmt.Sprintf("pmem: FlushRange size %#x overflows", size))
	}
	p.check(addr, int(size))
	for l, last := LineOf(addr), LineOf(LastByte(addr, size)); l <= last; l++ {
		p.Flush(tid, l*LineSize)
	}
}

// Fence completes tid's pending flushes: every snapshot taken by an earlier
// Flush or NTStore from tid enters the persistent domain. Bytes that were
// re-dirtied after their snapshot remain dirty.
func (p *Pool) Fence(tid int32) {
	p.mFences.Inc()
	if p.opts.EADR {
		return
	}
	pfs := p.pending[tid]
	if len(pfs) == 0 {
		return
	}
	for _, pf := range pfs {
		copy(p.persistent[pf.addr:], pf.data)
	}
	delete(p.pending, tid)
	// Re-check only the lines this fence touched; lines not covered by one
	// of its flushes cannot have become clean.
	for _, pf := range pfs {
		if len(pf.data) == 0 {
			continue
		}
		last := LineOf(LastByte(pf.addr, uint64(len(pf.data))))
		for l := LineOf(pf.addr); l <= last; l++ {
			if _, dirty := p.dirty[l]; !dirty {
				continue
			}
			base := l * LineSize
			end := base + LineSize
			if end > p.Size() {
				end = p.Size()
			}
			if equalBytes(p.volatile[base:end], p.persistent[base:end]) {
				delete(p.dirty, l)
			}
		}
	}
	p.mDirtyLines.Set(int64(len(p.dirty)))
}

func equalBytes(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Persisted reports whether every byte of [addr, addr+size) is guaranteed to
// be in the persistent domain (volatile and persistent views agree).
func (p *Pool) Persisted(addr Addr, size uint64) bool {
	p.check(addr, int(size))
	return equalBytes(p.volatile[addr:addr+size], p.persistent[addr:addr+size])
}

// DirtyRead reports whether a load of [addr, addr+size) by tid would observe
// data that is visible but not guaranteed persistent and was written by a
// different thread — PMRace's "PM Inter-thread Inconsistency" observation.
// It returns the writing thread and the store's call site for the first such
// byte. Requires Options.TrackWriters; otherwise it reports nothing.
func (p *Pool) DirtyRead(tid int32, addr Addr, size uint64) (writer, site int32, ok bool) {
	if p.lastWriter == nil {
		return 0, 0, false
	}
	p.check(addr, int(size))
	for i := addr; i < addr+size; i++ {
		if p.volatile[i] != p.persistent[i] && p.lastWriter[i] != tid {
			return p.lastWriter[i], p.lastSite[i], true
		}
	}
	return 0, 0, false
}

// Crash returns a copy of the persistent view: the post-crash image with all
// unpersisted cache contents lost.
func (p *Pool) Crash() []byte {
	img := make([]byte, len(p.persistent))
	copy(img, p.persistent)
	return img
}

// DirtyLines returns the number of lines that may differ between the
// volatile and persistent views (an upper bound; cleaned lazily on fences).
func (p *Pool) DirtyLines() int { return len(p.dirty) }

// Typed helpers (little-endian, matching x86).

// Store8 writes a uint64.
func (p *Pool) Store8(tid int32, addr Addr, v uint64, site int32) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p.Store(tid, addr, b[:], site)
}

// Load8 reads a uint64 from the volatile view.
func (p *Pool) Load8(addr Addr) uint64 {
	var b [8]byte
	p.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// ReadPersistent8 reads a uint64 from the persistent view (post-crash
// inspection; not an instrumented access).
func (p *Pool) ReadPersistent8(addr Addr) uint64 {
	p.check(addr, 8)
	return binary.LittleEndian.Uint64(p.persistent[addr:])
}

// Reboot simulates a crash and restart on the same device: the volatile
// domain (cache, store buffer) is lost, so the visible contents become
// exactly the persistent view, and all dirty/pending state clears. The pool
// is then ready for a recovery run.
func (p *Pool) Reboot() {
	copy(p.volatile, p.persistent)
	p.dirty = make(map[uint64]struct{})
	p.pending = make(map[int32][]pendingFlush)
	p.evictQueue = nil
	if p.lastWriter != nil {
		for i := range p.lastWriter {
			p.lastWriter[i] = 0
			p.lastSite[i] = 0
		}
	}
}
