package pmem

import "fmt"

// This file is the device side of the crash-injection harness
// (internal/crashinject): a Pool's mutation history can be recorded as a
// journal of Ops (the instrumented runtime does the recording, because it
// knows the trace-event index each operation corresponds to), and a Replayer
// re-applies that journal to a fresh device, materializing the exact
// volatile and persistent images at ANY journal position without re-running
// the application. Crash enumeration then costs one linear replay for an
// entire campaign instead of one execution per crash point.

// OpKind enumerates the device-mutating operations a journal records. Loads
// are absent: with background eviction disabled (the worst-case persistency
// model the harness replays under), a load changes neither device view.
type OpKind uint8

// Journal operation kinds.
const (
	OpStore OpKind = iota + 1
	OpNTStore
	OpFlush
	OpFence
)

var opKindNames = map[OpKind]string{
	OpStore: "store", OpNTStore: "ntstore", OpFlush: "flush", OpFence: "fence",
}

// String returns the op kind's mnemonic.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Op is one recorded device-mutating operation.
type Op struct {
	Kind OpKind
	TID  int32
	Addr Addr
	// Size is the store width. A store with nil Data writes Size zero bytes
	// (the untraced allocator-scrub path, pmrt.Ctx.Zero).
	Size uint32
	// Data is the store payload (Store/NTStore); nil for Flush/Fence.
	Data []byte
	// Seq is the index of the trace event this op corresponds to, or -1 for
	// operations that emit no trace event. It lets the harness translate
	// trace-coordinate artifacts (e.g. hawkset store windows) into journal
	// positions.
	Seq int
}

// Replayer re-applies a recorded op journal to a fresh device under the
// worst-case persistency model (no eADR, no background eviction — exactly
// the semantics the journal was recorded under; the recording runtime's
// eviction, if any, is not replayed, keeping images worst-case
// conservative). Positions are journal indices: position p is the state
// after applying ops[0:p], i.e. a crash "after op p-1".
type Replayer struct {
	pool *Pool
	pos  int
}

// NewReplayer creates a replayer over a fresh zero-filled device of the
// given size.
func NewReplayer(size uint64) *Replayer {
	return &Replayer{pool: New(size, Options{})}
}

// Pos returns the current journal position (ops applied so far).
func (r *Replayer) Pos() int { return r.pos }

// Pool exposes the replayed device. Its volatile view is the pre-crash
// state at Pos and its persistent view is the crash image at Pos. Callers
// may read both views; mutating it desynchronizes the replay.
func (r *Replayer) Pool() *Pool { return r.pool }

// Apply applies one op. The journal must be applied in recording order.
func (r *Replayer) Apply(op Op) {
	switch op.Kind {
	case OpStore, OpNTStore:
		data := op.Data
		if data == nil {
			data = make([]byte, op.Size)
		}
		if op.Kind == OpStore {
			r.pool.Store(op.TID, op.Addr, data, 0)
		} else {
			r.pool.NTStore(op.TID, op.Addr, data, 0)
		}
	case OpFlush:
		r.pool.Flush(op.TID, op.Addr)
	case OpFence:
		r.pool.Fence(op.TID)
	default:
		panic(fmt.Sprintf("pmem: cannot replay op kind %d", op.Kind))
	}
	r.pos++
}

// AdvanceTo applies ops[r.Pos():pos], leaving the device at position pos.
// pos must not be behind the current position (replay is forward-only).
func (r *Replayer) AdvanceTo(ops []Op, pos int) {
	if pos < r.pos {
		panic(fmt.Sprintf("pmem: replay cannot rewind from %d to %d", r.pos, pos))
	}
	for _, op := range ops[r.pos:pos] {
		r.Apply(op)
	}
}

// RebootClone returns a new Pool modeling a crash-and-restart of this
// device: both views hold the persistent image, and all cache/pending state
// is gone. The original pool is untouched, so a replay can continue past
// the crash point. dst, when non-nil and of matching size, is reused
// (campaigns reboot hundreds of images; recycling the two size-of-device
// buffers keeps the allocator out of the hot loop); otherwise a fresh pool
// is allocated.
func (p *Pool) RebootClone(dst *Pool) *Pool {
	if dst == nil || dst.Size() != p.Size() || dst.opts != (Options{}) {
		dst = New(p.Size(), Options{})
	}
	copy(dst.persistent, p.persistent)
	copy(dst.volatile, p.persistent)
	if len(dst.dirty) > 0 {
		dst.dirty = make(map[uint64]struct{})
	}
	if len(dst.pending) > 0 {
		dst.pending = make(map[int32][]pendingFlush)
	}
	dst.evictQueue = nil
	dst.clock = 0
	return dst
}
