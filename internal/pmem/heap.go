package pmem

import (
	"fmt"
	"sort"
)

// Heap is a first-fit free-list allocator over a region of a Pool. Heap
// metadata lives in volatile Go memory: the paper's tool deliberately does
// not instrument or recover PM allocators (HawkSet §7), and none of the
// reproduced experiments require allocator recovery. What matters for the
// evaluation is address reuse: Free followed by Alloc can hand out the same
// addresses again, which is the pattern that defeats the Initialization
// Removal Heuristic in memcached-pmem (Table 4).
//
// Heap is not safe for concurrent use; the instrumented runtime serializes
// all calls.
type Heap struct {
	base, size uint64
	free       []span // sorted by addr, coalesced
	allocated  map[Addr]uint64
	inUse      uint64
}

type span struct {
	addr Addr
	size uint64
}

// NewHeap creates a heap managing [base, base+size) of the pool's address
// space. Allocations are LineSize-aligned so that distinct objects never
// share a cache line unless the application packs them deliberately.
func NewHeap(base, size uint64) *Heap {
	return &Heap{
		base:      base,
		size:      size,
		free:      []span{{addr: base, size: size}},
		allocated: make(map[Addr]uint64),
	}
}

func alignUp(n, a uint64) uint64 { return (n + a - 1) &^ (a - 1) }

// Alloc returns the address of a fresh LineSize-aligned block of at least
// size bytes. It panics if the heap is exhausted (the simulated device has a
// fixed capacity, like a real PM DIMM).
func (h *Heap) Alloc(size uint64) Addr {
	if size == 0 {
		size = 1
	}
	size = alignUp(size, LineSize)
	for i, s := range h.free {
		if s.size >= size {
			addr := s.addr
			if s.size == size {
				h.free = append(h.free[:i], h.free[i+1:]...)
			} else {
				h.free[i] = span{addr: s.addr + size, size: s.size - size}
			}
			h.allocated[addr] = size
			h.inUse += size
			return addr
		}
	}
	panic(fmt.Sprintf("pmem: heap exhausted allocating %d bytes (in use %d of %d)", size, h.inUse, h.size))
}

// Free returns a block to the heap, coalescing with adjacent free spans.
// Freeing an address that was not returned by Alloc panics.
func (h *Heap) Free(addr Addr) {
	size, ok := h.allocated[addr]
	if !ok {
		panic(fmt.Sprintf("pmem: Free of unallocated address %#x", addr))
	}
	delete(h.allocated, addr)
	h.inUse -= size
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].addr >= addr })
	h.free = append(h.free, span{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = span{addr: addr, size: size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(h.free) && h.free[i].addr+h.free[i].size == h.free[i+1].addr {
		h.free[i].size += h.free[i+1].size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	if i > 0 && h.free[i-1].addr+h.free[i-1].size == h.free[i].addr {
		h.free[i-1].size += h.free[i].size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
}

// InUse returns the number of bytes currently allocated.
func (h *Heap) InUse() uint64 { return h.inUse }

// FreeSpans returns the number of spans on the free list (coalescing
// diagnostic).
func (h *Heap) FreeSpans() int { return len(h.free) }
