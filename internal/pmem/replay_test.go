package pmem

import (
	"bytes"
	"testing"
)

// journalingPool drives a live Pool while recording the equivalent op
// journal, the way the instrumented runtime does.
type journalingPool struct {
	p   *Pool
	ops []Op
}

func (j *journalingPool) store(tid int32, addr Addr, data []byte) {
	j.p.Store(tid, addr, data, 0)
	cp := make([]byte, len(data))
	copy(cp, data)
	j.ops = append(j.ops, Op{Kind: OpStore, TID: tid, Addr: addr, Size: uint32(len(data)), Data: cp, Seq: -1})
}

func (j *journalingPool) ntstore(tid int32, addr Addr, data []byte) {
	j.p.NTStore(tid, addr, data, 0)
	cp := make([]byte, len(data))
	copy(cp, data)
	j.ops = append(j.ops, Op{Kind: OpNTStore, TID: tid, Addr: addr, Size: uint32(len(data)), Data: cp, Seq: -1})
}

func (j *journalingPool) flush(tid int32, addr Addr) {
	j.p.Flush(tid, addr)
	j.ops = append(j.ops, Op{Kind: OpFlush, TID: tid, Addr: addr, Seq: -1})
}

func (j *journalingPool) fence(tid int32) {
	j.p.Fence(tid)
	j.ops = append(j.ops, Op{Kind: OpFence, TID: tid, Seq: -1})
}

// TestReplayerReproducesDevice records a multi-thread journal with partial
// flushes, interleaved fences, and a zero-scrub, then checks that replaying
// every prefix reproduces a device whose final views match the original.
func TestReplayerReproducesDevice(t *testing.T) {
	const size = 4 * LineSize
	j := &journalingPool{p: New(size, Options{})}

	j.store(1, 0, []byte{1, 2, 3, 4})
	j.store(2, LineSize, []byte{9, 9})
	j.flush(1, 0)
	j.store(1, 4, []byte{5, 6}) // after t1's flush snapshot: not covered
	j.fence(1)
	j.ntstore(2, 2*LineSize, []byte{7})
	j.fence(2) // persists t2's ntstore, NOT t2's line-1 store
	// Untraced scrub: nil Data, Size bytes of zero.
	j.p.Store(1, 3*LineSize, make([]byte, 16), 0)
	j.ops = append(j.ops, Op{Kind: OpStore, TID: 1, Addr: 3 * LineSize, Size: 16, Seq: -1})
	j.store(1, 3*LineSize, []byte{0xff})

	r := NewReplayer(size)
	for _, op := range j.ops {
		r.Apply(op)
	}
	if r.Pos() != len(j.ops) {
		t.Fatalf("Pos = %d, want %d", r.Pos(), len(j.ops))
	}
	got, want := r.Pool(), j.p
	if !bytes.Equal(got.volatile, want.volatile) {
		t.Errorf("replayed volatile view differs from original")
	}
	if !bytes.Equal(got.persistent, want.persistent) {
		t.Errorf("replayed persistent view differs from original")
	}
	// Spot-check the persistency semantics survived replay: t1's post-flush
	// store must not be persistent, t2's fenced ntstore must be.
	if got.Persisted(4, 2) {
		t.Errorf("bytes stored after flush snapshot persisted across replay")
	}
	if !got.Persisted(2*LineSize, 1) {
		t.Errorf("fenced ntstore not persistent after replay")
	}
}

func TestReplayerAdvanceToAndRewindPanic(t *testing.T) {
	j := &journalingPool{p: New(2*LineSize, Options{})}
	j.store(1, 0, []byte{1})
	j.flush(1, 0)
	j.fence(1)
	j.store(1, 1, []byte{2})

	r := NewReplayer(2 * LineSize)
	r.AdvanceTo(j.ops, 3)
	if !r.Pool().Persisted(0, 1) {
		t.Fatalf("position 3 should have byte 0 persisted")
	}
	if r.Pool().Load8(0)&0xff00 != 0 {
		t.Fatalf("byte 1 stored before position 4")
	}
	r.AdvanceTo(j.ops, len(j.ops))
	if r.Pool().Persisted(1, 1) {
		t.Fatalf("unflushed store at byte 1 must not be persistent")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("rewinding AdvanceTo should panic")
		}
	}()
	r.AdvanceTo(j.ops, 1)
}

func TestRebootClone(t *testing.T) {
	p := New(2*LineSize, Options{})
	p.Store(1, 0, []byte{1, 2, 3}, 0)
	p.Flush(1, 0)
	p.Fence(1)
	p.Store(1, LineSize, []byte{9}, 0) // unpersisted

	c := p.RebootClone(nil)
	if c.Load8(0)&0xffffff != 0x030201 {
		t.Errorf("persisted data missing in clone")
	}
	if c.Load8(LineSize)&0xff != 0 {
		t.Errorf("unpersisted store visible after reboot clone")
	}
	if c.DirtyLines() != 0 {
		t.Errorf("clone has %d dirty lines, want 0", c.DirtyLines())
	}
	// Original must be untouched.
	if p.Load8(LineSize)&0xff != 9 {
		t.Errorf("RebootClone mutated the source pool")
	}

	// Reuse path: the same destination absorbs a different image.
	p.Flush(1, LineSize)
	p.Fence(1)
	c2 := p.RebootClone(c)
	if c2 != c {
		t.Errorf("matching-size destination was not reused")
	}
	if c2.Load8(LineSize)&0xff != 9 {
		t.Errorf("reused clone missing newly persisted byte")
	}
}
