package pmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStoreVisibleImmediately(t *testing.T) {
	p := New(4096, Options{})
	p.Store(1, 100, []byte{1, 2, 3}, 0)
	buf := make([]byte, 3)
	p.Load(100, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Fatalf("load after store = %v", buf)
	}
}

func TestStoreNotPersistedWithoutFlushFence(t *testing.T) {
	p := New(4096, Options{})
	p.Store(1, 100, []byte{0xaa}, 0)
	if p.Persisted(100, 1) {
		t.Fatal("unflushed store reported persisted")
	}
	img := p.Crash()
	if img[100] != 0 {
		t.Fatalf("crash image contains unflushed store: %#x", img[100])
	}
}

func TestFlushAloneDoesNotPersist(t *testing.T) {
	p := New(4096, Options{})
	p.Store(1, 100, []byte{0xaa}, 0)
	p.Flush(1, 100)
	if p.Persisted(100, 1) {
		t.Fatal("flush without fence reported persisted (worst-case cache must wait for fence)")
	}
}

func TestFlushFencePersists(t *testing.T) {
	p := New(4096, Options{})
	p.Store(1, 100, []byte{0xaa}, 0)
	p.Flush(1, 100)
	p.Fence(1)
	if !p.Persisted(100, 1) {
		t.Fatal("flush+fence did not persist")
	}
	if img := p.Crash(); img[100] != 0xaa {
		t.Fatalf("crash image = %#x, want 0xaa", img[100])
	}
}

func TestFenceOnlyCompletesOwnThreadsFlushes(t *testing.T) {
	p := New(4096, Options{})
	p.Store(1, 100, []byte{0xaa}, 0)
	p.Flush(1, 100)
	p.Fence(2) // another thread's fence does not order T1's flush
	if p.Persisted(100, 1) {
		t.Fatal("T2's fence persisted T1's pending flush")
	}
	p.Fence(1)
	if !p.Persisted(100, 1) {
		t.Fatal("T1's fence did not complete its flush")
	}
}

func TestStoreAfterFlushNotCovered(t *testing.T) {
	p := New(4096, Options{})
	p.Store(1, 100, []byte{0x01}, 0)
	p.Flush(1, 100)
	p.Store(1, 100, []byte{0x02}, 0) // after the flush snapshot
	p.Fence(1)
	if p.Crash()[100] != 0x01 {
		t.Fatalf("crash image = %#x, want the flushed snapshot 0x01", p.Crash()[100])
	}
	if p.Persisted(100, 1) {
		t.Fatal("re-dirtied byte reported persisted")
	}
}

func TestFlushCoversWholeLine(t *testing.T) {
	p := New(4096, Options{})
	p.Store(1, 128, []byte{0x11}, 0)
	p.Store(2, 160, []byte{0x22}, 0) // same line, different thread
	p.Flush(1, 130)                  // any address within the line
	p.Fence(1)
	img := p.Crash()
	if img[128] != 0x11 || img[160] != 0x22 {
		t.Fatalf("line flush missed bytes: %#x %#x", img[128], img[160])
	}
}

func TestNTStoreNeedsFenceOnly(t *testing.T) {
	p := New(4096, Options{})
	p.NTStore(1, 200, []byte{5, 6, 7, 8, 9, 10, 11, 12}, 0)
	if p.Persisted(200, 8) {
		t.Fatal("ntstore persisted before fence")
	}
	p.Fence(1)
	if !p.Persisted(200, 8) {
		t.Fatal("ntstore+fence did not persist")
	}
}

func TestDirtyRead(t *testing.T) {
	p := New(4096, Options{TrackWriters: true})
	p.Store(3, 100, []byte{1}, 42)
	if _, _, ok := p.DirtyRead(3, 100, 1); ok {
		t.Fatal("own store reported as dirty read")
	}
	writer, site, ok := p.DirtyRead(5, 100, 1)
	if !ok || writer != 3 || site != 42 {
		t.Fatalf("DirtyRead = (%d,%d,%v), want (3,42,true)", writer, site, ok)
	}
	p.Flush(3, 100)
	p.Fence(3)
	if _, _, ok := p.DirtyRead(5, 100, 1); ok {
		t.Fatal("persisted store reported as dirty read")
	}
}

func TestEADRPersistsOnStore(t *testing.T) {
	p := New(4096, Options{EADR: true, TrackWriters: true})
	p.Store(1, 100, []byte{0x77}, 0)
	if !p.Persisted(100, 1) {
		t.Fatal("eADR store not immediately persistent")
	}
	if _, _, ok := p.DirtyRead(2, 100, 1); ok {
		t.Fatal("eADR store observed as dirty read")
	}
}

func TestStore8RoundTrip(t *testing.T) {
	p := New(4096, Options{})
	p.Store8(1, 64, 0xdeadbeefcafebabe, 0)
	if got := p.Load8(64); got != 0xdeadbeefcafebabe {
		t.Fatalf("Load8 = %#x", got)
	}
	p.FlushRange(1, 64, 8)
	p.Fence(1)
	if got := p.ReadPersistent8(64); got != 0xdeadbeefcafebabe {
		t.Fatalf("ReadPersistent8 = %#x", got)
	}
}

func TestDirtyLinesAccounting(t *testing.T) {
	p := New(4096, Options{})
	if p.DirtyLines() != 0 {
		t.Fatal("fresh pool dirty")
	}
	p.Store(1, 0, []byte{1}, 0)
	p.Store(1, 1000, []byte{1}, 0)
	if p.DirtyLines() != 2 {
		t.Fatalf("DirtyLines = %d, want 2", p.DirtyLines())
	}
	p.Flush(1, 0)
	p.Flush(1, 1000)
	p.Fence(1)
	if p.DirtyLines() != 0 {
		t.Fatalf("DirtyLines after persist = %d, want 0", p.DirtyLines())
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds store did not panic")
		}
	}()
	p := New(64, Options{})
	p.Store(1, 60, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 0)
}

// Property: persisted data always survives a crash; data stored but never
// flushed+fenced never appears in the crash image.
func TestCrashConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(1<<12, Options{})
		type write struct {
			addr      uint64
			val       byte
			persisted bool
		}
		persistedVal := make(map[uint64]byte) // last fenced snapshot value per addr
		var writes []write
		for i := 0; i < 200; i++ {
			switch rng.Intn(3) {
			case 0:
				addr := uint64(rng.Intn(1 << 12))
				val := byte(rng.Intn(255) + 1)
				p.Store(1, addr, []byte{val}, 0)
				writes = append(writes, write{addr: addr, val: val})
			case 1:
				if len(writes) > 0 {
					w := writes[rng.Intn(len(writes))]
					p.Flush(1, w.addr)
				}
			case 2:
				p.Fence(1)
			}
		}
		// Persist everything we know about and record expectations.
		for _, w := range writes {
			_ = w
		}
		img := p.Crash()
		// Every byte in the crash image must be either zero (never persisted)
		// or some value that was stored at that address at some point.
		valid := make(map[uint64]map[byte]bool)
		for _, w := range writes {
			if valid[w.addr] == nil {
				valid[w.addr] = map[byte]bool{0: true}
			}
			valid[w.addr][w.val] = true
		}
		for addr, vs := range valid {
			if !vs[img[addr]] {
				return false
			}
		}
		_ = persistedVal
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: after FlushRange+Fence of a range with no intervening stores,
// the whole range is persisted.
func TestPersistRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(1<<12, Options{})
		addr := uint64(rng.Intn(1 << 11))
		size := uint64(rng.Intn(256) + 1)
		data := make([]byte, size)
		rng.Read(data)
		p.Store(1, addr, data, 0)
		p.FlushRange(1, addr, size)
		p.Fence(1)
		return p.Persisted(addr, size) && bytes.Equal(p.Crash()[addr:addr+size], data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundEviction(t *testing.T) {
	p := New(4096, Options{EvictAfter: 10})
	p.Store(1, 100, []byte{0xaa}, 0)
	if p.Persisted(100, 1) {
		t.Fatal("store persisted immediately despite EvictAfter")
	}
	// Drive the device clock past the eviction age with unrelated loads.
	buf := make([]byte, 1)
	for i := 0; i < 20; i++ {
		p.Load(2000, buf)
	}
	if !p.Persisted(100, 1) {
		t.Fatal("dirty line not evicted after EvictAfter operations")
	}
	if _, _, ok := p.DirtyRead(2, 100, 1); ok {
		t.Fatal("evicted line still observable as dirty read")
	}
}

func TestNoEvictionByDefault(t *testing.T) {
	p := New(4096, Options{})
	p.Store(1, 100, []byte{0xaa}, 0)
	buf := make([]byte, 1)
	for i := 0; i < 1000; i++ {
		p.Load(2000, buf)
	}
	if p.Persisted(100, 1) {
		t.Fatal("worst-case cache must never evict on its own")
	}
}

func TestEvictionWritesBackCurrentContent(t *testing.T) {
	p := New(4096, Options{EvictAfter: 5})
	p.Store(1, 100, []byte{0x01}, 0)
	p.Store(1, 100, []byte{0x02}, 0) // re-dirty before eviction
	buf := make([]byte, 1)
	for i := 0; i < 10; i++ {
		p.Load(2000, buf)
	}
	if img := p.Crash(); img[100] != 0x02 {
		t.Fatalf("eviction wrote back stale data: %#x", img[100])
	}
}

func TestReboot(t *testing.T) {
	p := New(4096, Options{TrackWriters: true})
	p.Store(1, 100, []byte{0xaa}, 7) // persisted below
	p.Flush(1, 100)
	p.Fence(1)
	p.Store(2, 200, []byte{0xbb}, 8) // volatile only
	p.Flush(2, 300)                  // pending, never fenced

	p.Reboot()

	buf := make([]byte, 1)
	p.Load(100, buf)
	if buf[0] != 0xaa {
		t.Fatal("persisted data lost across reboot")
	}
	p.Load(200, buf)
	if buf[0] != 0 {
		t.Fatal("volatile data survived the crash")
	}
	if p.DirtyLines() != 0 {
		t.Fatalf("dirty lines after reboot: %d", p.DirtyLines())
	}
	if _, _, ok := p.DirtyRead(9, 100, 1); ok {
		t.Fatal("stale dirty-read attribution after reboot")
	}
	// The device keeps working: the pre-crash pending flush must not
	// resurrect at the next fence.
	p.Fence(2)
	p.Load(300, buf)
	if buf[0] != 0 {
		t.Fatal("pre-crash pending flush landed after reboot")
	}
}

// --- address-space-top wraparound regressions (same bug class PR 1 fixed in
// --- the analysis's overlaps/linesOf/spansLines) ---

func TestLastByteClamps(t *testing.T) {
	max := ^uint64(0)
	cases := []struct{ addr, size, want uint64 }{
		{0, 1, 0},
		{100, 8, 107},
		{max, 1, max},           // addition form would wrap to 0
		{max - 63, 64, max},     // range ending exactly at the top
		{max - 63, 128, max},    // overlong range clamps instead of wrapping
		{max, max, max},         // pathological size clamps
		{4096 - 8, 8, 4096 - 1}, // in-pool range ending at pool top
	}
	for _, c := range cases {
		if got := LastByte(c.addr, c.size); got != c.want {
			t.Errorf("LastByte(%#x, %#x) = %#x, want %#x", c.addr, c.size, got, c.want)
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected out-of-bounds panic, got none", what)
		}
	}()
	fn()
}

// TestTopOfAddressSpaceAccessPanics: before the subtraction-form bounds, an
// access near the top of the 64-bit address space wrapped int(addr)+n
// negative inside check and the addition-form line loop in FlushRange wrapped
// last below first — a silent no-op instead of a bounds panic.
func TestTopOfAddressSpaceAccessPanics(t *testing.T) {
	max := ^uint64(0)
	p := New(4096, Options{})
	mustPanic(t, "Store at top of address space", func() {
		p.Store(1, max-7, make([]byte, 8), 0)
	})
	mustPanic(t, "FlushRange at top of address space", func() {
		p.FlushRange(1, max-63, 128)
	})
	mustPanic(t, "FlushRange wrapping to zero", func() {
		p.FlushRange(1, max-127, 128) // addr+size == 0 exactly
	})
	mustPanic(t, "Load at top of address space", func() {
		buf := make([]byte, 16)
		p.Load(max-3, buf)
	})
	mustPanic(t, "FlushRange size overflowing int", func() {
		p.FlushRange(1, 0, max)
	})
}

// TestRangeEndingAtPoolTop: ranges whose last byte is the pool's final byte
// must round-trip through store/flush/fence, including the Fence-side
// dirty-line recheck loop.
func TestRangeEndingAtPoolTop(t *testing.T) {
	const size = 4096
	p := New(size, Options{})
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	p.Store(1, size-8, data, 0)
	p.FlushRange(1, size-8, 8)
	p.Fence(1)
	if !p.Persisted(size-8, 8) {
		t.Fatal("range ending at pool top not persisted after flush+fence")
	}
	if img := p.Crash(); !bytes.Equal(img[size-8:], data) {
		t.Fatalf("crash image tail = %v, want %v", img[size-8:], data)
	}
	if p.DirtyLines() != 0 {
		t.Fatalf("DirtyLines = %d after fence recheck, want 0", p.DirtyLines())
	}
}

func TestEmptyStoreIsNoOp(t *testing.T) {
	p := New(4096, Options{})
	p.Store(1, 0, nil, 0) // must not wrap the line loop via size-1
	if p.DirtyLines() != 0 {
		t.Fatalf("empty store dirtied %d lines", p.DirtyLines())
	}
}

// The idempotence contract pmopt's eliminations rest on: flushing an
// already-persistent (clean) line snapshots content identical to the
// persistent image, so the flush+fence is a device-level no-op — the crash
// image, dirty-line accounting and Persisted verdicts are unchanged.

func TestDoubleFlushOfCleanLineIsNoOp(t *testing.T) {
	p := New(4096, Options{})
	p.Store(1, 128, []byte{1, 2, 3, 4}, 0)
	p.Flush(1, 128)
	p.Fence(1)
	before := p.Crash()
	dirtyBefore := p.DirtyLines()

	// The line is now clean; flush+fence it again (twice, from two threads).
	p.Flush(1, 128)
	p.Fence(1)
	p.Flush(2, 130)
	p.Fence(2)

	if !bytes.Equal(p.Crash(), before) {
		t.Error("re-flushing a clean line changed the crash image")
	}
	if p.DirtyLines() != dirtyBefore {
		t.Errorf("dirty lines %d after clean-line flush, want %d", p.DirtyLines(), dirtyBefore)
	}
	if !p.Persisted(128, 4) {
		t.Error("clean-line flush lost the Persisted verdict")
	}
}

func TestDoubleFlushSameBatchIsNoOp(t *testing.T) {
	// Two flushes of the same line before one fence: the second snapshot is
	// identical to the first (no intervening store), so applying both at the
	// fence equals applying one.
	p1 := New(4096, Options{})
	p2 := New(4096, Options{})
	for _, p := range []*Pool{p1, p2} {
		p.Store(1, 256, []byte{0xde, 0xad}, 0)
		p.Flush(1, 256)
	}
	p2.Flush(1, 256) // the redundant duplicate
	p1.Fence(1)
	p2.Fence(1)
	if !bytes.Equal(p1.Crash(), p2.Crash()) {
		t.Error("duplicate flush in one batch changed the crash image")
	}
	if p1.DirtyLines() != p2.DirtyLines() {
		t.Error("duplicate flush in one batch changed dirty-line accounting")
	}
}

func TestFlushRangeIdempotent(t *testing.T) {
	// FlushRange over a multi-line clean range is a no-op, and repeating a
	// FlushRange+Fence of dirty data converges to the same image as doing it
	// once.
	once := New(4096, Options{})
	twice := New(4096, Options{})
	data := make([]byte, 200) // spans 4 lines from addr 60
	for i := range data {
		data[i] = byte(i * 7)
	}
	for _, p := range []*Pool{once, twice} {
		p.Store(1, 60, data, 0)
		p.FlushRange(1, 60, 200)
		p.Fence(1)
	}
	twice.FlushRange(1, 60, 200) // all-clean range
	twice.Fence(1)
	twice.FlushRange(2, 60, 200) // and from a thread with no pending state
	twice.Fence(2)
	if !bytes.Equal(once.Crash(), twice.Crash()) {
		t.Error("repeated FlushRange+Fence of a clean range changed the crash image")
	}
	if got := twice.DirtyLines(); got != 0 {
		t.Errorf("clean range re-flush left %d dirty lines", got)
	}
	if !twice.Persisted(60, 200) {
		t.Error("clean range re-flush lost the Persisted verdict")
	}
}

func TestCleanLineFlushDoesNotCoverLaterStore(t *testing.T) {
	// The no-op claim is only about the snapshot content: a clean-line flush
	// still snapshots at flush time, so a store issued AFTER it is not
	// covered by the later fence — eliding such a flush is behavior-neutral.
	p := New(4096, Options{})
	p.Store(1, 512, []byte{0x11}, 0)
	p.Flush(1, 512)
	p.Fence(1)
	p.Flush(1, 512)                  // clean-line flush
	p.Store(1, 512, []byte{0x22}, 0) // re-dirty after the snapshot
	p.Fence(1)
	if img := p.Crash(); img[512] != 0x11 {
		t.Fatalf("crash image = %#x, want pre-store 0x11 (flush-before-store must not cover it)", img[512])
	}
	if p.Persisted(512, 1) {
		t.Fatal("store after clean-line flush reported persisted")
	}
}
