package expmt

import (
	"strings"
	"testing"

	"hawkset/internal/crashinject"
)

// TestCrashTableBuggyFindsFailures runs the sweep on the seeded (buggy)
// variants: the table must cover several applications and at least the
// targeted strategy must surface failing crash points.
func TestCrashTableBuggyFindsFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep in -short mode")
	}
	cfg := DefaultCrashTableConfig()
	cfg.Ops = 1000
	cfg.Budget = 16
	cfg.Strategies = []crashinject.Strategy{crashinject.AfterFence, crashinject.Targeted}
	rows, err := CrashTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	apps := map[string]bool{}
	failedSomewhere := 0
	for _, r := range rows {
		apps[r.App] = true
		if r.Tested+r.SkippedBudget+r.SkippedDeadline != r.Enumerated {
			t.Errorf("%s/%s: accounting broken: %+v", r.App, r.Strategy, r)
		}
		if r.Failed > 0 {
			failedSomewhere++
		}
	}
	if len(apps) < 5 {
		t.Fatalf("sweep covered only %d applications", len(apps))
	}
	if failedSomewhere == 0 {
		t.Fatalf("buggy sweep found no failing crash points anywhere")
	}
	out := FormatCrashTable(rows)
	for _, col := range []string{"Application", "Strategy", "Tested", "Failed", "Skip(budget)"} {
		if !strings.Contains(out, col) {
			t.Fatalf("formatted table missing column %q:\n%s", col, out)
		}
	}
}

// TestCrashTableFixedIsClean is the sweep-wide control: the defect-free
// variants must produce zero failing crash points under every strategy —
// the quiescence-aware validation split is what makes this hold.
func TestCrashTableFixedIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep in -short mode")
	}
	cfg := DefaultCrashTableConfig()
	cfg.Fixed = true
	cfg.Ops = 1000
	cfg.Budget = 16
	rows, err := CrashTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Failed > 0 {
			t.Errorf("%s/%s: %d/%d failed in fixed mode", r.App, r.Strategy, r.Failed, r.Tested)
		}
	}
}
