// Package expmt regenerates every table and figure of the paper's
// evaluation (§5) from the reproduction's modules:
//
//	Table 2  — the 20 persistency-induced races across the nine applications
//	Table 3  — HawkSet vs the observation-based (PMRace-style) baseline on
//	           Fast-Fair over a seed-workload corpus
//	Figure 6 — testing time (6a) and peak memory (6b) vs workload size
//	Table 4  — report classification and Initialization Removal Heuristic
//	           effectiveness
//
// Each experiment returns structured rows plus a Format* helper that prints
// them the way the paper lays the table out.
package expmt

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"hawkset/internal/apps"
	"hawkset/internal/baseline/pmrace"
	"hawkset/internal/hawkset"
	"hawkset/internal/obs"
	"hawkset/internal/ycsb"
)

// AnalysisWorkers is the stage-③ worker count every experiment analyzes
// with (hawkset.Config.Workers: 0 = GOMAXPROCS, 1 = sequential). The
// results are identical for any value; only the analysis wall time moves.
var AnalysisWorkers int

// Metrics, when non-nil, is threaded into every analysis the experiments
// run (hawkset.Config.Metrics). Side-band only: experiment rows are
// identical with or without it. Like AnalysisWorkers it is a harness-wide
// knob set once by cmd/experiments before any experiment runs.
var Metrics *obs.Registry

// analysisConfig is the paper's configuration with the harness-wide worker
// count applied.
func analysisConfig() hawkset.Config {
	cfg := hawkset.DefaultConfig()
	cfg.Workers = AnalysisWorkers
	cfg.Metrics = Metrics
	return cfg
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one bug line of Table 2.
type Table2Row struct {
	App         string
	Bug         int
	New         bool
	Durinn      bool
	StoreSites  []string
	LoadSites   []string
	Description string
	Found       bool
}

// Table2Ops is the per-application workload size for the bug-detection
// experiment. The paper uses 100k (P-ART capped at 1k); the sizes here are
// the smallest that cover every bug's trigger, keeping the experiment
// laptop-fast. Larger values only increase confidence.
var Table2Ops = map[string]int{
	"Fast-Fair":      4000,
	"TurboHash":      20000,
	"P-CLHT":         4000,
	"P-Masstree":     4000,
	"P-ART":          1000,
	"MadFS":          2000,
	"MadFS-POSIX":    3000,
	"Memcached-pmem": 4000,
	"WIPE":           4000,
	"APEX":           4000,
}

// Table2 runs HawkSet over every registered application and maps reports to
// the paper's bug list. Extension bugs (the filesystem scenarios, #21+) are
// excluded so the table reproduces exactly the paper's 20-bug accounting;
// CrashTable and the differential cover them instead.
func Table2(seed int64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, e := range apps.All() {
		table2 := false
		for _, b := range e.Bugs {
			if !b.Extension {
				table2 = true
			}
		}
		if !table2 {
			continue
		}
		res, err := apps.Detect(e, Table2Ops[e.Name], seed, apps.RunConfig{Seed: seed}, analysisConfig())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		byID := map[int]*Table2Row{}
		var order []int
		for _, b := range e.Bugs {
			if b.Extension {
				continue
			}
			row, ok := byID[b.ID]
			if !ok {
				row = &Table2Row{App: e.Name, Bug: b.ID, New: b.New, Durinn: b.Durinn, Description: b.Description}
				byID[b.ID] = row
				order = append(order, b.ID)
			}
			for _, r := range res.Reports {
				if b.Matches(r) {
					row.Found = true
					row.StoreSites = appendUnique(row.StoreSites, r.StoreFrame.String())
					row.LoadSites = appendUnique(row.LoadSites, r.LoadFrame.String())
				}
			}
		}
		sort.Ints(order)
		for _, id := range order {
			rows = append(rows, *byID[id])
		}
	}
	return rows, nil
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// FormatTable2 renders rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-3s %-5s %-34s %-34s %s\n", "Application", "#", "New", "Store Access", "Load Access", "Description")
	for _, r := range rows {
		mark := "x"
		if r.New {
			mark = "Y"
		}
		if r.Durinn {
			mark = "*"
		}
		found := ""
		if !r.Found {
			found = "  [NOT FOUND]"
		}
		fmt.Fprintf(&b, "%-15s %-3d %-5s %-34s %-34s %s%s\n",
			r.App, r.Bug, mark,
			strings.Join(r.StoreSites, ","), strings.Join(r.LoadSites, ","),
			r.Description, found)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one tool/bug line of Table 3.
type Table3Row struct {
	Tool           string
	Bug            int
	Executions     int     // seed workloads analyzed
	Racy           int     // workloads where the bug was reported
	AvgTimePerExec float64 // seconds
	AvgTimeToRace  float64 // seconds (∞ if never found)
}

// Table3Result holds both tools' rows and the headline speedup.
type Table3Result struct {
	Rows    []Table3Row
	Speedup float64 // bug #1 expected-time ratio (PMRace / HawkSet)
}

// Table3Config parameterizes the comparison.
type Table3Config struct {
	Seeds int // corpus size (paper: 240)
	Base  int64
	// PMRace budget per seed workload.
	PMRace pmrace.Config
}

// DefaultTable3Config mirrors the paper's setup at reduced scale.
func DefaultTable3Config() Table3Config {
	return Table3Config{Seeds: 240, Base: 1000, PMRace: pmrace.DefaultConfig(0)}
}

// Table3 runs the Fast-Fair comparison: for every seed workload, one
// HawkSet execution+analysis, and one PMRace-style fuzzing campaign, then
// the paper's expected-time-to-race metric (§5.2).
func Table3(cfg Table3Config) (*Table3Result, error) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		return nil, err
	}
	bug1Store, bug1Load := e.Bugs[0].StoreFunc, e.Bugs[0].LoadFunc
	bug2Store, bug2Load := e.Bugs[1].StoreFunc, e.Bugs[1].LoadFunc

	seeds := ycsb.Seeds(cfg.Seeds, cfg.Base)
	var (
		hawkFound1, hawkFound2 int
		pmrFound1, pmrFound2   int
		hawkTime, pmrTime      time.Duration
	)
	for i, w := range seeds {
		// HawkSet: one execution, one analysis.
		start := time.Now()
		rt, err := apps.Run(e, w, apps.RunConfig{Seed: cfg.Base + int64(i)})
		if err != nil {
			return nil, err
		}
		res := hawkset.Analyze(rt.Trace, analysisConfig())
		hawkTime += time.Since(start)
		for _, id := range apps.FoundBugs(e, res) {
			switch id {
			case 1:
				hawkFound1++
			case 2:
				hawkFound2++
			}
		}

		// PMRace-style baseline: fuzzing campaign with delay injection.
		pcfg := cfg.PMRace
		pcfg.Seed = cfg.Base + int64(i)
		pres, err := pmrace.Detect(e, w, pcfg)
		if err != nil {
			return nil, err
		}
		pmrTime += pres.Elapsed
		if pres.MatchesBug(bug1Store, bug1Load) {
			pmrFound1++
		}
		if pres.MatchesBug(bug2Store, bug2Load) {
			pmrFound2++
		}
	}

	n := len(seeds)
	hawkPer := hawkTime.Seconds() / float64(n)
	pmrPer := pmrTime.Seconds() / float64(n)
	rows := []Table3Row{
		{Tool: "PMRace", Bug: 1, Executions: n, Racy: pmrFound1, AvgTimePerExec: pmrPer,
			AvgTimeToRace: pmrace.ExpectedTimeToRace(n-pmrFound1, pmrFound1, pmrPer)},
		{Tool: "HawkSet", Bug: 1, Executions: n, Racy: hawkFound1, AvgTimePerExec: hawkPer,
			AvgTimeToRace: pmrace.ExpectedTimeToRace(n-hawkFound1, hawkFound1, hawkPer)},
		{Tool: "PMRace", Bug: 2, Executions: n, Racy: pmrFound2, AvgTimePerExec: pmrPer,
			AvgTimeToRace: pmrace.ExpectedTimeToRace(n-pmrFound2, pmrFound2, pmrPer)},
		{Tool: "HawkSet", Bug: 2, Executions: n, Racy: hawkFound2, AvgTimePerExec: hawkPer,
			AvgTimeToRace: pmrace.ExpectedTimeToRace(n-hawkFound2, hawkFound2, hawkPer)},
	}
	return &Table3Result{
		Rows:    rows,
		Speedup: rows[0].AvgTimeToRace / rows[1].AvgTimeToRace,
	}, nil
}

// FormatTable3 renders the comparison like the paper's Table 3.
func FormatTable3(r *Table3Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-4s %-11s %-11s %-20s %s\n", "Tool", "Bug", "Executions", "Racy Exec.", "Avg Time/Exec (s)", "Avg Time to Race (s)")
	for _, row := range r.Rows {
		ttr := fmt.Sprintf("%.2f", row.AvgTimeToRace)
		if math.IsInf(row.AvgTimeToRace, 1) {
			ttr = "inf"
		}
		fmt.Fprintf(&b, "%-8s #%-3d %-11d %-11d %-20.3f %s\n",
			row.Tool, row.Bug, row.Executions, row.Racy, row.AvgTimePerExec, ttr)
	}
	fmt.Fprintf(&b, "Speedup (bug #1, expected time to race): %.1fx\n", r.Speedup)
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Fig6Point is one (application, workload size) measurement.
type Fig6Point struct {
	App         string
	Ops         int
	TestingTime time.Duration
	PeakMem     uint64 // bytes, heap high-water mark across run+analysis
	Events      int
	Reports     int
}

// Fig6 sweeps workload sizes across all applications, measuring the
// end-to-end testing time (instrumented execution + analysis) and the peak
// heap footprint, the two metrics of Figure 6a/6b. P-ART is capped at 1k
// operations, as in the paper.
func Fig6(sizes []int, seed int64) ([]Fig6Point, error) {
	var pts []Fig6Point
	for _, e := range apps.All() {
		for _, ops := range sizes {
			if e.MaxOps > 0 && ops > e.MaxOps {
				continue
			}
			runtime.GC()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)

			start := time.Now()
			w := ycsb.Generate(e.Spec(ops), seed)
			rt, err := apps.Run(e, w, apps.RunConfig{Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("%s/%d: %w", e.Name, ops, err)
			}
			var mid runtime.MemStats
			runtime.ReadMemStats(&mid)
			res := hawkset.Analyze(rt.Trace, analysisConfig())
			elapsed := time.Since(start)

			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			peak := mid.HeapAlloc
			if after.HeapAlloc > peak {
				peak = after.HeapAlloc
			}
			if peak > before.HeapAlloc {
				peak -= before.HeapAlloc
			}
			pts = append(pts, Fig6Point{
				App: e.Name, Ops: ops, TestingTime: elapsed,
				PeakMem: peak, Events: res.Stats.Events, Reports: len(res.Reports),
			})
		}
	}
	return pts, nil
}

// FormatFig6 renders the sweep as the two series of Figure 6.
func FormatFig6(pts []Fig6Point) string {
	var b strings.Builder
	b.WriteString("Figure 6a — testing time / 6b — peak memory\n")
	fmt.Fprintf(&b, "%-15s %-8s %-12s %-12s %-10s %s\n", "Application", "Ops", "Time", "PeakMem", "Events", "Reports")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-15s %-8d %-12s %-12s %-10d %d\n",
			p.App, p.Ops, p.TestingTime.Round(time.Millisecond),
			fmtBytes(p.PeakMem), p.Events, p.Reports)
	}
	return b.String()
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one application line of Table 4.
type Table4Row struct {
	App string
	// Manual classification (from the per-app ground-truth registries) of
	// the reports that survive the IRH.
	MR, BR, FP int
	// AfterIRH is the report count with the heuristic on; Reported is the
	// count with it off.
	AfterIRH, Reported int
	// PrunedMalign counts malign reports the IRH removed (must be zero).
	PrunedMalign int
}

// Table4 re-runs every application with the IRH on and off and classifies
// the reports (§5.4).
func Table4(seed int64) ([]Table4Row, error) {
	var rows []Table4Row
	for _, e := range apps.All() {
		ops := Table2Ops[e.Name]
		on, err := apps.Detect(e, ops, seed, apps.RunConfig{Seed: seed}, analysisConfig())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		offCfg := analysisConfig()
		offCfg.IRH = false
		off, err := apps.Detect(e, ops, seed, apps.RunConfig{Seed: seed}, offCfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		bd := apps.Breakdown(e, on)
		row := Table4Row{
			App: e.Name,
			MR:  bd[apps.Malign], BR: bd[apps.Benign], FP: bd[apps.FalsePositive],
			AfterIRH: len(on.Reports), Reported: len(off.Reports),
		}
		onBugs := map[int]bool{}
		for _, id := range apps.FoundBugs(e, on) {
			onBugs[id] = true
		}
		for _, id := range apps.FoundBugs(e, off) {
			if !onBugs[id] {
				row.PrunedMalign++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders rows like the paper's Table 4.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-4s %-4s %-4s %-10s %s\n", "Application", "MR", "BR", "FP", "After IRH", "Reported Races (no IRH)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %-4d %-4d %-4d %-10d %d\n", r.App, r.MR, r.BR, r.FP, r.AfterIRH, r.Reported)
		if r.PrunedMalign > 0 {
			fmt.Fprintf(&b, "  WARNING: IRH pruned %d malign races\n", r.PrunedMalign)
		}
	}
	return b.String()
}

// ------------------------------------------------------- §5.5 automation

// AutomationRow describes the per-application integration effort, the
// qualitative dimension of §5.5: which synchronization primitives the
// application uses and whether HawkSet needed a configuration beyond its
// built-in pthread support.
type AutomationRow struct {
	App string
	// Sync is the synchronization style (Table 1's column).
	Sync string
	// Primitives names the runtime primitives the reimplementation uses.
	Primitives string
	// Config describes extra integration work (the paper's configuration
	// files / wrapper functions), empty when none was needed.
	Config string
}

// Automation returns the §5.5 table. The data is structural (derived from
// each application's declared synchronization), not measured.
func Automation() []AutomationRow {
	return []AutomationRow{
		{"Fast-Fair", "Lock/Lock-Free", "Mutex + lock-free reads", ""},
		{"TurboHash", "Lock/Lock-Free", "per-bucket Mutex + lock-free reads", "custom primitives: config file (§5.5)"},
		{"P-CLHT", "Lock", "PM CAS SpinLock + RWMutex", "CAS locks: wrapper functions + config (§5.5)"},
		{"P-Masstree", "Lock/Lock-Free", "per-slot Mutex + lock-free gets", ""},
		{"P-ART", "Lock/Lock-Free", "tree Mutex + lock-free gets", "custom primitives: config file (§5.5)"},
		{"MadFS", "Lock-Free", "atomic 8-byte commits", ""},
		{"Memcached-pmem", "Lock-Free", "bucket Mutex + lock-free reads/LRU", ""},
		{"WIPE", "Lock", "per-segment Mutex + lock-free gets", ""},
		{"APEX", "Lock", "per-node Mutex (CAS in the original) + lock-free search", "CAS locks: wrapper functions + config (§5.5)"},
	}
}

// FormatAutomation renders the automation table.
func FormatAutomation(rows []AutomationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-16s %-42s %s\n", "Application", "Sync (Table 1)", "Primitives", "Extra integration work")
	for _, r := range rows {
		cfg := r.Config
		if cfg == "" {
			cfg = "none"
		}
		fmt.Fprintf(&b, "%-15s %-16s %-42s %s\n", r.App, r.Sync, r.Primitives, cfg)
	}
	return b.String()
}
