package expmt

import (
	"fmt"
	"strings"
	"time"

	"hawkset/internal/apps"
	"hawkset/internal/crashinject"
	"hawkset/internal/obs"
)

// CrashRow is one (application, strategy) line of the crash-injection
// table: how many crash points the strategy enumerates on the recorded
// execution, how many the budget let the campaign test, and how many of
// those produced an inconsistent or unrecoverable image.
type CrashRow struct {
	App        string
	Strategy   string
	Enumerated int
	Tested     int
	Failed     int
	// Skipped is the explicit degradation accounting: points dropped by
	// the budget plus points abandoned at the deadline.
	SkippedBudget   int
	SkippedDeadline int
	Elapsed         time.Duration
}

// CrashTableConfig parameterizes the campaign sweep.
type CrashTableConfig struct {
	Seed     int64
	Fixed    bool
	Budget   int
	Deadline time.Duration
	// Ops overrides the per-application workload size (0 = Table2Ops).
	Ops        int
	Strategies []crashinject.Strategy
	// Metrics and OnProgress pass through to every campaign's
	// crashinject.Config (side-band observability; rows are unaffected).
	Metrics    *obs.Registry
	OnProgress func(crashinject.Progress)
}

// DefaultCrashTableConfig sweeps every strategy with a modest budget.
func DefaultCrashTableConfig() CrashTableConfig {
	return CrashTableConfig{Seed: 42, Budget: 32, Strategies: crashinject.Strategies()}
}

// CrashTable records each application once and runs one campaign per
// strategy over the recording. Applications with no crash validator and no
// recovery hook are skipped (a campaign would have nothing to check).
func CrashTable(cfg CrashTableConfig) ([]CrashRow, error) {
	if len(cfg.Strategies) == 0 {
		cfg.Strategies = crashinject.Strategies()
	}
	var rows []CrashRow
	for _, e := range apps.All() {
		ops := cfg.Ops
		if ops == 0 {
			ops = Table2Ops[e.Name]
		}
		prep, err := crashinject.Prepare(e, ops, cfg.Seed, cfg.Fixed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		target := prep.Target(0)
		if target.PointCheck == nil && target.QuiescentCheck == nil && target.Recover == nil {
			continue
		}
		for _, s := range cfg.Strategies {
			camp, err := crashinject.RunCampaign(target, crashinject.Config{
				Strategy: s, Budget: cfg.Budget, Deadline: cfg.Deadline, Seed: cfg.Seed,
				Metrics: cfg.Metrics, OnProgress: cfg.OnProgress,
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", e.Name, s, err)
			}
			rows = append(rows, CrashRow{
				App: e.Name, Strategy: camp.Strategy,
				Enumerated: camp.Enumerated, Tested: camp.Tested, Failed: camp.Failed,
				SkippedBudget: camp.SkippedBudget, SkippedDeadline: camp.SkippedDeadline,
				Elapsed: time.Duration(camp.ElapsedMS) * time.Millisecond,
			})
		}
	}
	return rows, nil
}

// FormatCrashTable renders the sweep as the app × strategy table.
func FormatCrashTable(rows []CrashRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-10s %-12s %-8s %-8s %-14s %-14s %s\n",
		"Application", "Strategy", "Enumerated", "Tested", "Failed", "Skip(budget)", "Skip(deadline)", "Time")
	last := ""
	for _, r := range rows {
		app := r.App
		if app == last {
			app = ""
		}
		last = r.App
		fmt.Fprintf(&b, "%-15s %-10s %-12d %-8d %-8d %-14d %-14d %s\n",
			app, r.Strategy, r.Enumerated, r.Tested, r.Failed,
			r.SkippedBudget, r.SkippedDeadline, r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}
