package expmt

import (
	"fmt"
	"strings"
	"time"

	"hawkset/internal/apps"
	"hawkset/internal/crashinject"
	"hawkset/internal/pmopt"
	"hawkset/internal/report"
)

// OptRow is one application's line of the flush/fence-optimization table:
// what pmopt found, and — when the eliminations were applied — how much
// device work disappeared and whether the safety gates held.
type OptRow struct {
	App string
	// Journal shape of the analyzed recording.
	Flushes int
	Fences  int
	// Candidate counts by confidence tier.
	StaticDynamic int
	DynamicOnly   int
	StaticOnly    int
	Refuted       int
	// Apply outcome (zero-valued when the config did not apply, or the app
	// had no top-tier sites).
	Applied        bool
	SitesElided    int
	FlushReduction uint64
	FenceReduction uint64
	GatesOK        bool
	SweepTested    int
	Problems       []string
	Elapsed        time.Duration
}

// OptTableConfig parameterizes the optimization sweep.
type OptTableConfig struct {
	Seed int64
	// Ops overrides the per-application workload size (0 = Table2Ops).
	Ops int
	// Dir roots the static loader; it must lie inside the module ("."
	// works when running from anywhere in the repo).
	Dir string
	// Apply elides each app's static+dynamic sites and runs the safety
	// gates; without it the table is analysis-only.
	Apply bool
	// Budget/Deadline bound each gate campaign (crashinject semantics).
	Budget   int
	Deadline time.Duration
	// Apps restricts the sweep to the named applications (empty = all).
	Apps []string
}

// DefaultOptTableConfig analyzes every app and applies with a modest
// campaign budget.
func DefaultOptTableConfig() OptTableConfig {
	return OptTableConfig{Seed: 42, Dir: ".", Apply: true, Budget: 24}
}

// OptTable runs pmopt over the registered applications.
func OptTable(cfg OptTableConfig) ([]OptRow, error) {
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	want := make(map[string]bool, len(cfg.Apps))
	for _, n := range cfg.Apps {
		want[n] = true
	}
	var rows []OptRow
	for _, e := range apps.All() {
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		start := time.Now()
		ops := cfg.Ops
		if ops == 0 {
			ops = Table2Ops[e.Name]
		}
		res, err := pmopt.AnalyzeApp(cfg.Dir, e, ops, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		row := OptRow{
			App:     e.Name,
			Flushes: res.Doc.Stats.Flushes,
			Fences:  res.Doc.Stats.Fences,
		}
		for _, c := range res.Doc.Candidates {
			switch c.Tier {
			case report.TierStaticDynamic:
				row.StaticDynamic++
			case report.TierDynamicOnly:
				row.DynamicOnly++
			default:
				row.StaticOnly++
			}
			if c.Refuted {
				row.Refuted++
			}
		}
		if cfg.Apply && len(res.Eliminable) > 0 {
			ar, err := pmopt.Apply(e, ops, cfg.Seed, res.Eliminable, crashinject.Config{
				Seed: cfg.Seed, Budget: cfg.Budget, Deadline: cfg.Deadline,
			})
			if err != nil {
				return nil, fmt.Errorf("%s apply: %w", e.Name, err)
			}
			row.Applied = true
			row.SitesElided = len(ar.Sites)
			row.FlushReduction = ar.FlushReduction()
			row.FenceReduction = ar.FenceReduction()
			row.GatesOK = ar.OK()
			row.SweepTested = ar.SweepTested
			row.Problems = ar.Problems
		}
		row.Elapsed = time.Since(start)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatOptTable renders the sweep.
func FormatOptTable(rows []OptRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-8s %-8s %-7s %-7s %-7s %-8s %-8s %-9s %-9s %-7s %s\n",
		"Application", "Flushes", "Fences", "S+D", "DynOnly", "Static", "Refuted", "Elided", "Flush(-)", "Fence(-)", "Gates", "Time")
	for _, r := range rows {
		gates := "-"
		if r.Applied {
			if r.GatesOK {
				gates = "ok"
			} else {
				gates = "FAIL"
			}
		}
		fmt.Fprintf(&b, "%-15s %-8d %-8d %-7d %-7d %-7d %-8d %-8d %-9d %-9d %-7s %s\n",
			r.App, r.Flushes, r.Fences, r.StaticDynamic, r.DynamicOnly, r.StaticOnly,
			r.Refuted, r.SitesElided, r.FlushReduction, r.FenceReduction, gates,
			r.Elapsed.Round(time.Millisecond))
		for _, p := range r.Problems {
			fmt.Fprintf(&b, "    ! %s\n", p)
		}
	}
	return b.String()
}
