package expmt

import (
	"math"
	"strings"
	"testing"

	// Register all applications.
	_ "hawkset/internal/apps/apex"
	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/madfs"
	_ "hawkset/internal/apps/memcachedpm"
	_ "hawkset/internal/apps/part"
	_ "hawkset/internal/apps/pclht"
	_ "hawkset/internal/apps/pmasstree"
	_ "hawkset/internal/apps/turbohash"
	_ "hawkset/internal/apps/wipe"
)

// TestTable2AllBugsFound is the headline claim C1: every Table 2 race is
// detected.
func TestTable2AllBugsFound(t *testing.T) {
	rows, err := Table2(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	for _, r := range rows {
		if !r.Found {
			t.Errorf("bug #%d (%s) not found", r.Bug, r.App)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Fast-Fair") || !strings.Contains(out, "APEX") {
		t.Fatalf("formatting broken:\n%s", out)
	}
}

// TestTable3Small runs the comparison at reduced scale and checks the shape
// of Table 3: HawkSet finds bug #1 in far more workloads at far lower cost,
// and is the only tool to find bug #2.
func TestTable3Small(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison campaign is slow")
	}
	cfg := DefaultTable3Config()
	cfg.Seeds = 16
	res, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(tool string, bug int) Table3Row {
		for _, r := range res.Rows {
			if r.Tool == tool && r.Bug == bug {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", tool, bug)
		return Table3Row{}
	}
	h1, p1 := get("HawkSet", 1), get("PMRace", 1)
	h2, p2 := get("HawkSet", 2), get("PMRace", 2)
	if h1.Racy <= p1.Racy {
		t.Errorf("HawkSet found bug #1 in %d seeds, PMRace in %d — expected HawkSet to dominate", h1.Racy, p1.Racy)
	}
	if h1.Racy == 0 {
		t.Fatal("HawkSet never found bug #1")
	}
	if h2.Racy == 0 {
		t.Error("HawkSet never found bug #2")
	}
	if p2.Racy > h2.Racy {
		t.Errorf("baseline found the rare bug more often than HawkSet (%d vs %d)", p2.Racy, h2.Racy)
	}
	if !math.IsInf(res.Speedup, 1) && res.Speedup < 2 {
		t.Errorf("speedup = %.2f, expected well above 1", res.Speedup)
	}
	t.Logf("\n%s", FormatTable3(res))
}

// TestFig6Shape: testing time and peak memory grow with workload size for
// every application.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	pts, err := Fig6([]int{200, 2000}, 42)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string][]Fig6Point{}
	for _, p := range pts {
		byApp[p.App] = append(byApp[p.App], p)
	}
	for app, ps := range byApp {
		if len(ps) < 2 {
			continue // P-ART is capped
		}
		if ps[1].Events <= ps[0].Events {
			t.Errorf("%s: events did not grow with workload (%d -> %d)", app, ps[0].Events, ps[1].Events)
		}
		if ps[1].TestingTime < ps[0].TestingTime/2 {
			t.Errorf("%s: testing time shrank with 10x workload (%v -> %v)", app, ps[0].TestingTime, ps[1].TestingTime)
		}
	}
	t.Logf("\n%s", FormatFig6(pts))
}

// TestTable4Shape: the IRH prunes reports for every application, never
// prunes a malign race, and leaves the memcached false positives (§5.4).
func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("classification sweep is slow")
	}
	rows, err := Table4(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 (Table 1's nine apps + MadFS-POSIX)", len(rows))
	}
	prunedSomewhere := false
	for _, r := range rows {
		if r.PrunedMalign != 0 {
			t.Errorf("%s: IRH pruned %d malign races", r.App, r.PrunedMalign)
		}
		if r.AfterIRH > r.Reported {
			t.Errorf("%s: IRH increased reports (%d -> %d)", r.App, r.Reported, r.AfterIRH)
		}
		if r.AfterIRH < r.Reported {
			prunedSomewhere = true
		}
		if r.App == "Memcached-pmem" && r.FP == 0 {
			t.Error("memcached: expected surviving false positives from PM reuse")
		}
		if r.App == "MadFS" && r.MR != 0 {
			t.Error("MadFS: expected no malign races")
		}
	}
	if !prunedSomewhere {
		t.Error("IRH pruned nothing anywhere")
	}
	t.Logf("\n%s", FormatTable4(rows))
}
