package expmt

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"hawkset/internal/apps"
	"hawkset/internal/trace"
	"hawkset/internal/ycsb"
)

// TraceFmtRow is one (application, format version) measurement: encoded
// trace size and encode/decode throughput — the capture-once/analyze-many
// IO cost the v2 block codec exists to shrink.
type TraceFmtRow struct {
	App     string
	Format  string // "v1", "v2", "v2-flate"
	Events  int
	Bytes   int
	PerEv   float64 // bytes per event
	Encode  time.Duration
	Decode  time.Duration
	DecMBps float64 // decode throughput over the encoded bytes
}

// TraceFmt measures the trace codecs on real application traces: each app's
// workload is executed once, then encoded and decoded in every format.
func TraceFmt(appNames []string, ops int, seed int64) ([]TraceFmtRow, error) {
	formats := []struct {
		name string
		opts trace.Options
	}{
		{"v1", trace.Options{Version: 1}},
		{"v2", trace.Options{Version: 2}},
		{"v2-flate", trace.Options{Version: 2, Compress: true}},
	}
	var rows []TraceFmtRow
	for _, name := range appNames {
		e, err := apps.Lookup(name)
		if err != nil {
			return nil, err
		}
		n := ops
		if e.MaxOps > 0 && n > e.MaxOps {
			n = e.MaxOps
		}
		w := ycsb.Generate(e.Spec(n), seed)
		rt, err := apps.Run(e, w, apps.RunConfig{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		for _, f := range formats {
			var buf bytes.Buffer
			encStart := time.Now()
			if err := trace.EncodeWith(&buf, rt.Trace, f.opts); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, f.name, err)
			}
			encT := time.Since(encStart)
			decStart := time.Now()
			if _, err := trace.Decode(bytes.NewReader(buf.Bytes())); err != nil {
				return nil, fmt.Errorf("%s/%s decode: %w", name, f.name, err)
			}
			decT := time.Since(decStart)
			mbps := 0.0
			if decT > 0 {
				mbps = float64(buf.Len()) / decT.Seconds() / (1 << 20)
			}
			rows = append(rows, TraceFmtRow{
				App: e.Name, Format: f.name, Events: rt.Trace.Len(),
				Bytes: buf.Len(), PerEv: float64(buf.Len()) / float64(rt.Trace.Len()),
				Encode: encT, Decode: decT, DecMBps: mbps,
			})
		}
	}
	return rows, nil
}

// FormatTraceFmt renders the codec comparison table.
func FormatTraceFmt(rows []TraceFmtRow) string {
	var b strings.Builder
	b.WriteString("Trace format comparison — size and codec throughput\n")
	fmt.Fprintf(&b, "%-15s %-9s %-9s %-10s %-8s %-10s %-10s %s\n",
		"Application", "Format", "Events", "Size", "B/event", "Encode", "Decode", "Dec-MB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %-9s %-9d %-10s %-8.2f %-10s %-10s %.1f\n",
			r.App, r.Format, r.Events, fmtBytes(uint64(r.Bytes)), r.PerEv,
			r.Encode.Round(time.Millisecond), r.Decode.Round(time.Millisecond), r.DecMBps)
	}
	return b.String()
}
