package expmt

import (
	"strings"
	"testing"
)

// TestOptTableAnchors runs the optimization sweep over the two anchor
// applications: both must report a top-tier candidate and, with Apply on,
// a real device-op reduction with every safety gate green.
func TestOptTableAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("optimization sweep in -short mode")
	}
	cfg := DefaultOptTableConfig()
	cfg.Ops = 300
	cfg.Budget = 8
	cfg.Apps = []string{"P-ART", "P-Masstree"}
	rows, err := OptTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.StaticDynamic == 0 {
			t.Errorf("%s: no static+dynamic candidate", r.App)
		}
		if !r.Applied {
			t.Errorf("%s: apply did not run", r.App)
			continue
		}
		if !r.GatesOK {
			t.Errorf("%s: safety gates failed: %v", r.App, r.Problems)
		}
		if r.FlushReduction+r.FenceReduction == 0 {
			t.Errorf("%s: elimination removed no device ops", r.App)
		}
	}
	out := FormatOptTable(rows)
	for _, col := range []string{"Application", "S+D", "Refuted", "Flush(-)", "Gates"} {
		if !strings.Contains(out, col) {
			t.Fatalf("formatted table missing column %q:\n%s", col, out)
		}
	}
}
