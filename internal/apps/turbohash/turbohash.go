// Package turbohash reimplements TurboHash (Zhao et al., SYSTOR'23), the
// PM hash table of the paper's evaluation: fixed-size multi-cell buckets
// with bounded linear probing, per-bucket locks for writers (the custom
// concurrency primitives that required a configuration file in §5.5) and
// lock-free reads.
//
// The buggy variant carries Table 2 race #3 (new): an insertion writes the
// cell and the bucket's metadata bitmap, then flushes only the bucket's
// first cache line. Cells landing in the bucket's second cache line are
// never persisted. The bug only manifests once buckets fill past the first
// line — which is why the paper observed it only in the largest workload
// (§5.1).
package turbohash

import (
	"fmt"

	"hawkset/internal/apps"
	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// Bucket layout (PM), exactly two cache lines:
//
//	+0   meta  uint64: occupancy bitmap over the 7 cells
//	+8   pad
//	+16  cells 7 × (key uint64, val uint64)
//
// Cells 0–2 share the metadata's cache line; cells 3–6 live in the second
// line — the ones race #3 loses.
const (
	cellsPerBucket = 7
	offMeta        = 0
	offCells       = 16
	cellSize       = 16
	bucketSize     = offCells + cellsPerBucket*cellSize // 128 = 2 lines
	nBuckets       = 8192
	maxProbe       = 16
)

// Table is the PM hash table.
type Table struct {
	rt    *pmrt.Runtime
	locks []*pmrt.Mutex // per-bucket writer locks
	base  uint64        // PM address of the bucket array
	fixed bool
}

// New creates a TurboHash instance. fixed repairs race #3.
func New(rt *pmrt.Runtime, fixed bool) apps.App {
	t := &Table{rt: rt, fixed: fixed}
	t.locks = make([]*pmrt.Mutex, nBuckets)
	for i := range t.locks {
		t.locks[i] = rt.NewMutex("bucket")
	}
	return t
}

// Name implements apps.App.
func (t *Table) Name() string { return "TurboHash" }

// Setup allocates and persists the (zeroed) bucket array.
func (t *Table) Setup(c *pmrt.Ctx) {
	t.base = c.Alloc(nBuckets * bucketSize)
	// The allocator hands out zeroed PM; persisting the zero image makes the
	// empty table crash-consistent without 8192 instrumented stores.
	c.Persist(t.base, 8) // metadata root line
}

// Apply implements apps.App.
func (t *Table) Apply(c *pmrt.Ctx, op ycsb.Op) {
	switch op.Kind {
	case ycsb.OpInsert, ycsb.OpUpdate:
		t.Put(c, op.Key, op.Value)
	case ycsb.OpGet:
		t.Get(c, op.Key)
	case ycsb.OpDelete:
		t.Delete(c, op.Key)
	}
}

func hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return key
}

func (t *Table) bucketAddr(b uint64) uint64 { return t.base + b*bucketSize }
func cellAddr(bucket uint64, i int) uint64  { return bucket + offCells + uint64(i)*cellSize }

// Get looks key up lock-free.
func (t *Table) Get(c *pmrt.Ctx, key uint64) (uint64, bool) {
	h := hash(key)
	for p := 0; p < maxProbe; p++ {
		b := t.bucketAddr((h + uint64(p)) % nBuckets)
		meta := c.Load8(b + offMeta)
		for i := 0; i < cellsPerBucket; i++ {
			if meta&(1<<uint(i)) == 0 {
				continue
			}
			if c.Load8(cellAddr(b, i)) == key {
				return c.Load8(cellAddr(b, i) + 8), true
			}
		}
		if meta == 0 {
			return 0, false // probing stops at a never-used bucket
		}
	}
	return 0, false
}

// Put inserts or updates key under the bucket's lock.
func (t *Table) Put(c *pmrt.Ctx, key, val uint64) {
	h := hash(key)
	for p := 0; p < maxProbe; p++ {
		idx := (h + uint64(p)) % nBuckets
		b := t.bucketAddr(idx)
		c.Lock(t.locks[idx])
		meta := c.Load8(b + offMeta)
		free := -1
		for i := 0; i < cellsPerBucket; i++ {
			if meta&(1<<uint(i)) == 0 {
				if free < 0 {
					free = i
				}
				continue
			}
			if c.Load8(cellAddr(b, i)) == key {
				// In-place update: correctly persisted in both variants.
				c.Store8(cellAddr(b, i)+8, val)
				c.Persist(cellAddr(b, i)+8, 8)
				c.Unlock(t.locks[idx])
				return
			}
		}
		if free >= 0 {
			t.insertCell(c, b, free, key, val, meta)
			c.Unlock(t.locks[idx])
			return
		}
		c.Unlock(t.locks[idx])
	}
	// All probe buckets full: drop the insert (bounded-probing tables shed
	// load to a stash in the original; irrelevant to the races under study).
}

// insertCell writes a cell and its metadata bit. BUG #3 (Table 2 #3, new):
// the buggy variant flushes only the bucket's first cache line — the
// metadata and cells 0–2. A cell in the second line stays unpersisted
// forever while lock-free gets can already read it; a crash then loses the
// entry but keeps its side effects.
func (t *Table) insertCell(c *pmrt.Ctx, bucket uint64, i int, key, val, meta uint64) {
	c.Store8(cellAddr(bucket, i), key)
	c.Store8(cellAddr(bucket, i)+8, val)
	c.Store8(bucket+offMeta, meta|1<<uint(i))
	if t.fixed {
		c.Persist(cellAddr(bucket, i), cellSize)
		c.Persist(bucket+offMeta, 8)
	} else {
		c.Persist(bucket, pmem.LineSize) // first line only: misses cells 3–6
	}
}

// Delete clears key's cell bit under the bucket's lock.
func (t *Table) Delete(c *pmrt.Ctx, key uint64) {
	h := hash(key)
	for p := 0; p < maxProbe; p++ {
		idx := (h + uint64(p)) % nBuckets
		b := t.bucketAddr(idx)
		c.Lock(t.locks[idx])
		meta := c.Load8(b + offMeta)
		for i := 0; i < cellsPerBucket; i++ {
			if meta&(1<<uint(i)) != 0 && c.Load8(cellAddr(b, i)) == key {
				c.Store8(b+offMeta, meta&^(1<<uint(i)))
				c.Persist(b+offMeta, 8)
				c.Unlock(t.locks[idx])
				return
			}
		}
		stop := meta == 0
		c.Unlock(t.locks[idx])
		if stop {
			return
		}
	}
}

// ValidateCrash scans every bucket in the persistent image: a metadata
// bitmap bit whose cell holds key 0 is the torn insert race #3 leaves behind
// — the first-line metadata persisted while the second-line cell did not.
func (t *Table) ValidateCrash(p *pmem.Pool) []string {
	var out []string
	for bi := uint64(0); bi < nBuckets; bi++ {
		b := t.bucketAddr(bi)
		meta := p.ReadPersistent8(b + offMeta)
		for i := 0; i < cellsPerBucket; i++ {
			if meta&(1<<uint(i)) == 0 {
				continue
			}
			if p.ReadPersistent8(cellAddr(b, i)) == 0 {
				out = append(out, fmt.Sprintf(
					"bucket %d cell %d: occupancy bit persisted but cell empty (torn insert, bug #3)", bi, i))
			}
		}
	}
	return out
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "TurboHash",
		Factory: New,
		Bugs: []apps.BugSpec{
			{
				ID: 3, New: true,
				StoreFunc: "turbohash.(*Table).insertCell", LoadFunc: "turbohash.(*Table).Get",
				Description: "load unpersisted value",
			},
		},
		Benign: apps.Pairs(
			[]string{
				"turbohash.(*Table).insertCell", "turbohash.(*Table).Put",
				"turbohash.(*Table).Delete",
			},
			[]string{"turbohash.(*Table).Get"},
		),
		Spec: ycsb.DefaultSpec,
	})
}
