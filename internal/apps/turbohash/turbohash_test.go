package turbohash

import (
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/pmrt"
)

func newTable(t *testing.T, fixed bool) (*pmrt.Runtime, *Table) {
	t.Helper()
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	return rt, New(rt, fixed).(*Table)
}

func TestPutGetDelete(t *testing.T) {
	rt, tab := newTable(t, true)
	err := rt.Run(func(c *pmrt.Ctx) {
		tab.Setup(c)
		for i := uint64(1); i <= 500; i++ {
			tab.Put(c, i, i*3)
		}
		for i := uint64(1); i <= 500; i++ {
			v, ok := tab.Get(c, i)
			if !ok || v != i*3 {
				t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
			}
		}
		tab.Put(c, 7, 99) // update in place
		if v, _ := tab.Get(c, 7); v != 99 {
			t.Fatalf("update failed: %d", v)
		}
		tab.Delete(c, 7)
		if _, ok := tab.Get(c, 7); ok {
			t.Fatal("deleted key still present")
		}
		if _, ok := tab.Get(c, 99999); ok {
			t.Fatal("absent key found")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBucketFillCrossesLine drives many colliding keys into one bucket so
// cells land in the second cache line, then checks the buggy variant loses
// exactly those cells in a crash while the fixed variant keeps everything.
func TestBucketFillCrossesLine(t *testing.T) {
	for _, fixed := range []bool{false, true} {
		rt, tab := newTable(t, fixed)
		var keys []uint64
		err := rt.Run(func(c *pmrt.Ctx) {
			tab.Setup(c)
			// Find 6 keys that hash to the same bucket.
			target := hash(1) % nBuckets
			for k := uint64(1); len(keys) < 6; k++ {
				if hash(k)%nBuckets == target {
					keys = append(keys, k)
				}
			}
			for _, k := range keys {
				tab.Put(c, k, k+100)
			}
			for _, k := range keys {
				if v, ok := tab.Get(c, k); !ok || v != k+100 {
					t.Fatalf("fixed=%v: Get(%d) = (%d,%v)", fixed, k, v, ok)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// Inspect the crash image: cells 3+ of the bucket live in line 2.
		b := tab.bucketAddr(hash(keys[0]) % nBuckets)
		lost := 0
		for i := 3; i < 6; i++ {
			if rt.Pool.ReadPersistent8(cellAddr(b, i)) == 0 {
				lost++
			}
		}
		if fixed && lost != 0 {
			t.Fatalf("fixed variant lost %d second-line cells", lost)
		}
		if !fixed && lost == 0 {
			t.Fatal("buggy variant persisted second-line cells — bug #3 not seeded")
		}
	}
}

// TestBugOnlyManifestsWhenBucketsFill reproduces §5.1's observation that
// race #3 appears only in larger workloads: a small workload leaves every
// bucket within its first cache line.
func TestBugOnlyManifestsWhenBucketsFill(t *testing.T) {
	e, err := apps.Lookup("TurboHash")
	if err != nil {
		t.Fatal(err)
	}
	small, err := apps.Detect(e, 500, 11, apps.RunConfig{Seed: 11}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range apps.FoundBugs(e, small) {
		if id == 3 {
			t.Skip("small workload happened to fill a bucket; statistical trigger")
		}
	}
	big, err := apps.Detect(e, 20000, 11, apps.RunConfig{Seed: 11}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range apps.FoundBugs(e, big) {
		if id == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("bug #3 not found even at 20k operations")
	}
}

// TestDeleteInChainedProbes: deletes across probe chains and re-inserts
// reuse freed cells.
func TestDeleteAndReuseCells(t *testing.T) {
	rt, tab := newTable(t, true)
	err := rt.Run(func(c *pmrt.Ctx) {
		tab.Setup(c)
		// Fill one bucket completely (7 cells) plus overflow into the next.
		target := hash(1) % nBuckets
		var keys []uint64
		for k := uint64(1); len(keys) < cellsPerBucket+2; k++ {
			if hash(k)%nBuckets == target {
				keys = append(keys, k)
			}
		}
		for _, k := range keys {
			tab.Put(c, k, k)
		}
		for _, k := range keys {
			if _, ok := tab.Get(c, k); !ok {
				t.Fatalf("overflowed key %d unreachable", k)
			}
		}
		// Delete one in-bucket key; its cell must be reused by a new key.
		tab.Delete(c, keys[2])
		if _, ok := tab.Get(c, keys[2]); ok {
			t.Fatal("deleted key still present")
		}
		var fresh uint64
		for k := keys[len(keys)-1] + 1; ; k++ {
			if hash(k)%nBuckets == target {
				fresh = k
				break
			}
		}
		tab.Put(c, fresh, 123)
		if v, ok := tab.Get(c, fresh); !ok || v != 123 {
			t.Fatalf("reused-cell key = (%d,%v)", v, ok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
