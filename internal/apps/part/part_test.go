package part

import (
	"testing"

	"hawkset/internal/pmrt"
)

func TestPutGetDelete(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tr := New(rt, true).(*Tree)
	err := rt.Run(func(c *pmrt.Ctx) {
		tr.Setup(c)
		ref := map[uint64]uint64{}
		for i := uint64(0); i < 300; i++ {
			k := (i*2654435761 + 17) % 4096
			tr.Put(c, k, i)
			ref[k] = i
		}
		for k, v := range ref {
			got, ok := tr.Get(c, k)
			if !ok || got != v {
				t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
			}
		}
		if _, ok := tr.Get(c, 1<<40); ok {
			t.Fatal("absent key found")
		}
		// Delete and verify.
		for k := range ref {
			tr.Delete(c, k)
			if _, ok := tr.Get(c, k); ok {
				t.Fatalf("deleted key %d still present", k)
			}
			delete(ref, k)
			break
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNodeGrowth: more than 4 (then 16) children under one node forces
// Node4 → Node16 → Node256 migrations, and lookups keep working.
func TestNodeGrowth(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tr := New(rt, true).(*Tree)
	err := rt.Run(func(c *pmrt.Ctx) {
		tr.Setup(c)
		// 300 distinct keys guarantee >16 children at the root level.
		for i := uint64(0); i < 300; i++ {
			tr.Put(c, i, i+7)
		}
		kind, count := header(c.Load8(c.Load8(tr.meta) + offHeader))
		if kind != kind256 {
			t.Fatalf("root kind = %d (count %d), want Node256 after 300 inserts", kind, count)
		}
		for i := uint64(0); i < 300; i++ {
			if v, ok := tr.Get(c, i); !ok || v != i+7 {
				t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestResurrectAfterDelete: put over a deleted key revives it.
func TestResurrectAfterDelete(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tr := New(rt, true).(*Tree)
	err := rt.Run(func(c *pmrt.Ctx) {
		tr.Setup(c)
		tr.Put(c, 5, 1)
		tr.Delete(c, 5)
		tr.Put(c, 5, 2)
		if v, ok := tr.Get(c, 5); !ok || v != 2 {
			t.Fatalf("Get = (%d,%v), want (2,true)", v, ok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBuggyDeleteResurrectsOnCrash: bug #9 — the unpersisted removal is
// undone by a crash.
func TestBuggyDeleteResurrectsOnCrash(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tr := New(rt, false).(*Tree)
	err := rt.Run(func(c *pmrt.Ctx) {
		tr.Setup(c)
		// Fixed-path insert first (buildPath persists the chain), then make
		// sure the box itself persisted via an update.
		tr.Put(c, 9, 1)
		tr.Put(c, 9, 1) // in-place update persists the box in both variants
		tr.Delete(c, 9)
		if _, ok := tr.Get(c, 9); ok {
			t.Fatal("delete not visible")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// In the crash image the box header is still 1: the key is resurrected.
	// Walk the persistent image down the radix path.
	n := rt.Pool.ReadPersistent8(tr.meta)
	for d := 0; d < 8 && n != 0; d++ {
		b := keyByte(9, d)
		kind, count := header(rt.Pool.ReadPersistent8(n + offHeader))
		next := uint64(0)
		if kind == kind256 {
			next = rt.Pool.ReadPersistent8(n + offKids + uint64(b)*8)
		} else {
			for i := 0; i < count; i++ {
				w := rt.Pool.ReadPersistent8(n + offKeys + uint64(i/8)*8)
				if byte(w>>(8*(uint(i)%8))) == b {
					next = rt.Pool.ReadPersistent8(n + offKids + uint64(i)*8)
					break
				}
			}
		}
		n = next
	}
	if n == 0 {
		t.Skip("insert path itself unpersisted under the buggy variant")
	}
	if rt.Pool.ReadPersistent8(n+offHeader) != 1 {
		t.Fatal("buggy delete persisted the removal — bug #9 not seeded")
	}
}
