// Package part reimplements P-ART (Lee et al., SOSP'19 RECIPE), the
// crash-consistent adaptive radix tree of the paper's evaluation: nodes grow
// through Node4 → Node16 → Node48 → Node256 as children accumulate, writers
// take a per-tree lock and gets are lock-free (Table 1).
//
// The buggy variant carries the two Table 2 races (Durinn-overlapping):
//
//	#8: inserting a child publishes the (key byte, child) entry without
//	    persisting it ((*Tree).addChild) — the paper's N4/N16/N256 insert
//	    sites — read lock-free by (*Tree).findChild.
//	#9: removing a child clears the entry without persisting the removal
//	    ((*Tree).removeChild).
//
// The paper notes P-ART "hangs for workloads larger than 1k operations"
// (§5); the registry reproduces that limit as a documented 1k cap.
package part

import (
	"fmt"

	"hawkset/internal/apps"
	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// Node layouts (PM). All nodes share a header; Node4/Node16 store sorted
// (byte, child) pairs, Node256 indexes children directly.
//
//	+0  header uint64: kind (2 bits) | count << 2 (four node kinds)
//	+8  value  uint64: value held at this node (for exact key ends)
//	+16 keys   Node4/16: n bytes (padded to 8); Node256: none
//	+24/+16    children pointers
const (
	kind4   = 0
	kind16  = 1
	kind48  = 2
	kind256 = 3

	offHeader = 0
	offValue  = 8
	offKeys   = 16 // Node4/16: key bytes (padded to 16); Node48: 256-byte index
	offKids   = 32

	// Node48: a 256-entry byte index (value = child slot + 1, 0 = absent)
	// followed by 48 child pointers — the real ART's middle tier.
	off48Index = 16
	off48Kids  = off48Index + 256

	node4Size   = offKids + 4*8
	node16Size  = offKids + 16*8
	node48Size  = off48Kids + 48*8
	node256Size = offKids + 256*8
)

// Tree is the PM adaptive radix tree over 8-byte keys (depth 8, one key
// byte per level).
type Tree struct {
	rt    *pmrt.Runtime
	meta  uint64 // PM address of the root pointer
	mu    *pmrt.Mutex
	fixed bool
}

// New creates a P-ART instance. fixed repairs races #8 and #9.
func New(rt *pmrt.Runtime, fixed bool) apps.App {
	return &Tree{rt: rt, mu: rt.NewMutex("part"), fixed: fixed}
}

// Name implements apps.App.
func (t *Tree) Name() string { return "P-ART" }

// Setup allocates the root pointer and an empty Node4 root.
func (t *Tree) Setup(c *pmrt.Ctx) {
	t.meta = c.Alloc(8)
	root := t.newNode(c, kind4)
	c.Store8(t.meta, root)
	c.Persist(t.meta, 8)
}

// Apply implements apps.App.
func (t *Tree) Apply(c *pmrt.Ctx, op ycsb.Op) {
	switch op.Kind {
	case ycsb.OpInsert, ycsb.OpUpdate:
		t.Put(c, op.Key, op.Value)
	case ycsb.OpGet:
		t.Get(c, op.Key)
	case ycsb.OpDelete:
		t.Delete(c, op.Key)
	}
}

func (t *Tree) newNode(c *pmrt.Ctx, kind int) uint64 {
	size := uint64(node4Size)
	switch kind {
	case kind16:
		size = node16Size
	case kind48:
		size = node48Size
	case kind256:
		size = node256Size
	}
	n := c.Alloc(size)
	c.Store8(n+offHeader, uint64(kind))
	c.Persist(n+offHeader, 8)
	return n
}

func header(h uint64) (kind, count int) { return int(h & 3), int(h >> 2) }
func packHeader(kind, count int) uint64 { return uint64(kind) | uint64(count)<<2 }

// keyByte extracts the radix byte for a level. The tree indexes a mixed
// image of the key: benchmark keys occupy a small dense range, and without
// mixing every key would share seven leading zero bytes, collapsing the
// radix structure into a linked list.
func keyByte(key uint64, depth int) byte {
	key *= 0x9e3779b97f4a7c15
	return byte(key >> (56 - 8*depth))
}

func capOf(kind int) int {
	switch kind {
	case kind4:
		return 4
	case kind16:
		return 16
	case kind48:
		return 48
	default:
		return 256
	}
}

func nodeSizeOf(kind int) uint64 {
	switch kind {
	case kind4:
		return node4Size
	case kind16:
		return node16Size
	case kind48:
		return node48Size
	default:
		return node256Size
	}
}

// findChild locates the child for key byte b, lock-free — the load side of
// races #8 and #9 (the paper's N4/N16/N256 lookup sites).
func (t *Tree) findChild(c *pmrt.Ctx, n uint64, b byte) uint64 {
	kind, count := header(c.Load8(n + offHeader))
	switch kind {
	case kind256:
		return c.Load8(n + offKids + uint64(b)*8)
	case kind48:
		w := c.Load8(n + off48Index + uint64(b)/8*8)
		slot := byte(w >> (8 * (uint64(b) % 8)))
		if slot == 0 {
			return 0
		}
		return c.Load8(n + off48Kids + uint64(slot-1)*8)
	}
	// Node4/16: key bytes are packed into two uint64 words.
	for i := 0; i < count; i++ {
		w := c.Load8(n + offKeys + uint64(i/8)*8)
		if byte(w>>(8*(uint(i)%8))) == b {
			return c.Load8(n + offKids + uint64(i)*8)
		}
	}
	return 0
}

// Get looks key up lock-free, descending one key byte per level.
func (t *Tree) Get(c *pmrt.Ctx, key uint64) (uint64, bool) {
	n := c.Load8(t.meta)
	for depth := 0; depth < 8; depth++ {
		if n == 0 {
			return 0, false
		}
		n = t.findChild(c, n, keyByte(key, depth))
	}
	if n == 0 {
		return 0, false
	}
	// Leaf level: n is a value box (value at offValue, flag at header).
	if c.Load8(n+offHeader) == 0 {
		return 0, false
	}
	return c.Load8(n + offValue), true
}

// Put inserts or updates key under the tree lock.
func (t *Tree) Put(c *pmrt.Ctx, key, val uint64) {
	c.Lock(t.mu)
	defer c.Unlock(t.mu)

	n := c.Load8(t.meta)
	parent := t.meta
	parentSlot := t.meta // PM address holding the pointer to n
	for depth := 0; depth < 8; depth++ {
		b := keyByte(key, depth)
		child := t.findChildLocked(c, n, b)
		if child == 0 {
			var made uint64
			if depth == 7 {
				made = t.newLeafBox(c, val)
			} else {
				// Build the remaining path bottom-up, fully persisted while
				// private, then publish the top with addChild.
				made = t.buildPath(c, key, val, depth+1)
			}
			n = t.addChild(c, parent, parentSlot, n, b, made)
			return
		}
		parent = n
		parentSlot = 0
		n = child
	}
	// Key exists: update the leaf box in place (persisted; correct),
	// resurrecting it if a delete had emptied the box.
	c.Store8(n+offValue, val)
	c.Store8(n+offHeader, 1)
	c.Persist(n, 16)
	_ = parent
}

// findChildLocked is the writer-side lookup (runs under the tree lock).
func (t *Tree) findChildLocked(c *pmrt.Ctx, n uint64, b byte) uint64 {
	kind, count := header(c.Load8(n + offHeader))
	switch kind {
	case kind256:
		return c.Load8(n + offKids + uint64(b)*8)
	case kind48:
		w := c.Load8(n + off48Index + uint64(b)/8*8)
		slot := byte(w >> (8 * (uint64(b) % 8)))
		if slot == 0 {
			return 0
		}
		return c.Load8(n + off48Kids + uint64(slot-1)*8)
	}
	for i := 0; i < count; i++ {
		w := c.Load8(n + offKeys + uint64(i/8)*8)
		if byte(w>>(8*(uint(i)%8))) == b {
			return c.Load8(n + offKids + uint64(i)*8)
		}
	}
	return 0
}

// newLeafBox allocates a persisted value box.
func (t *Tree) newLeafBox(c *pmrt.Ctx, val uint64) uint64 {
	box := c.Alloc(16)
	c.Store8(box+offHeader, 1)
	c.Store8(box+offValue, val)
	c.Persist(box, 16)
	return box
}

// buildPath creates the private chain of Node4s for the remaining key bytes
// down to the value box, persisting everything before publication.
func (t *Tree) buildPath(c *pmrt.Ctx, key, val uint64, depth int) uint64 {
	child := t.newLeafBox(c, val)
	for d := 7; d >= depth; d-- {
		n := t.newNode(c, kind4)
		b := keyByte(key, d)
		c.Store8(n+offKeys, uint64(b))
		c.Store8(n+offKids, child)
		c.Store8(n+offHeader, packHeader(kind4, 1))
		c.Persist(n, node4Size)
		child = n
	}
	return child
}

// addChild publishes (b → child) in node n, growing the node when full.
// BUG #8 (Table 2 #8, Durinn-overlapping): the buggy variant publishes the
// entry without persisting it — the N4.cpp:22/N16.cpp:13/N256.cpp:17 stores.
// It returns the node that now holds the entry.
func (t *Tree) addChild(c *pmrt.Ctx, parent, parentSlot, n uint64, b byte, child uint64) uint64 {
	kind, count := header(c.Load8(n + offHeader))
	if count == capOf(kind) {
		n = t.growNode(c, parent, parentSlot, n, kind, count)
		kind, count = header(c.Load8(n + offHeader))
	}
	if kind == kind256 {
		c.Store8(n+offKids+uint64(b)*8, child)
		c.Store8(n+offHeader, packHeader(kind256, count+1))
		if t.fixed {
			c.Persist(n+offKids+uint64(b)*8, 8)
			c.Persist(n+offHeader, 8)
		}
		return n
	}
	if kind == kind48 {
		c.Store8(n+off48Kids+uint64(count)*8, child)
		w := c.Load8(n + off48Index + uint64(b)/8*8)
		w &^= 0xff << (8 * (uint64(b) % 8))
		w |= uint64(count+1) << (8 * (uint64(b) % 8))
		c.Store8(n+off48Index+uint64(b)/8*8, w)
		c.Store8(n+offHeader, packHeader(kind48, count+1))
		if t.fixed {
			c.Persist(n+off48Kids+uint64(count)*8, 8)
			c.Persist(n+off48Index+uint64(b)/8*8, 8)
			c.Persist(n+offHeader, 8)
		}
		return n
	}
	w := c.Load8(n + offKeys + uint64(count/8)*8)
	w &^= 0xff << (8 * (uint(count) % 8))
	w |= uint64(b) << (8 * (uint(count) % 8))
	c.Store8(n+offKeys+uint64(count/8)*8, w)
	c.Store8(n+offKids+uint64(count)*8, child)
	c.Store8(n+offHeader, packHeader(kind, count+1))
	if t.fixed {
		c.Persist(n+offKeys+uint64(count/8)*8, 8)
		c.Persist(n+offKids+uint64(count)*8, 8)
		c.Persist(n+offHeader, 8)
	}
	return n
}

// growNode migrates a full node to the next kind (4→16→256), persists the
// private copy, and publishes it through the parent slot (persisted —
// growth is not one of the seeded defects).
func (t *Tree) growNode(c *pmrt.Ctx, parent, parentSlot, n uint64, kind, count int) uint64 {
	nk := kind16
	switch kind {
	case kind16:
		nk = kind48
	case kind48:
		nk = kind256
	}
	nn := t.newNode(c, nk)
	// Enumerate (byte, child) pairs of the old node and install them in the
	// new layout.
	insert := func(i int, b byte, ch uint64) {
		switch nk {
		case kind256:
			c.Store8(nn+offKids+uint64(b)*8, ch)
		case kind48:
			c.Store8(nn+off48Kids+uint64(i)*8, ch)
			w := c.Load8(nn + off48Index + uint64(b)/8*8)
			w &^= 0xff << (8 * (uint64(b) % 8))
			w |= uint64(i+1) << (8 * (uint64(b) % 8))
			c.Store8(nn+off48Index+uint64(b)/8*8, w)
		default:
			kw := c.Load8(nn + offKeys + uint64(i/8)*8)
			kw &^= 0xff << (8 * (uint(i) % 8))
			kw |= uint64(b) << (8 * (uint(i) % 8))
			c.Store8(nn+offKeys+uint64(i/8)*8, kw)
			c.Store8(nn+offKids+uint64(i)*8, ch)
		}
	}
	if kind == kind48 {
		slot := 0
		for bi := 0; bi < 256; bi++ {
			w := c.Load8(n + off48Index + uint64(bi)/8*8)
			sl := byte(w >> (8 * (uint64(bi) % 8)))
			if sl == 0 {
				continue
			}
			insert(slot, byte(bi), c.Load8(n+off48Kids+uint64(sl-1)*8))
			slot++
		}
	} else {
		for i := 0; i < count; i++ {
			w := c.Load8(n + offKeys + uint64(i/8)*8)
			b := byte(w >> (8 * (uint(i) % 8)))
			insert(i, b, c.Load8(n+offKids+uint64(i)*8))
		}
	}
	c.Store8(nn+offHeader, packHeader(nk, count))
	c.Persist(nn, nodeSizeOf(nk))
	// Publish through the parent pointer slot.
	if parentSlot != 0 {
		c.Store8(parentSlot, nn)
		c.Persist(parentSlot, 8)
	} else {
		// Parent is a node: find and replace the slot pointing at n.
		pk, pc := header(c.Load8(parent + offHeader))
		if pk == kind256 {
			for i := 0; i < 256; i++ {
				if c.Load8(parent+offKids+uint64(i)*8) == n {
					c.Store8(parent+offKids+uint64(i)*8, nn)
					c.Persist(parent+offKids+uint64(i)*8, 8)
					break
				}
			}
		} else {
			for i := 0; i < pc; i++ {
				if c.Load8(parent+offKids+uint64(i)*8) == n {
					c.Store8(parent+offKids+uint64(i)*8, nn)
					c.Persist(parent+offKids+uint64(i)*8, 8)
					break
				}
			}
		}
	}
	return nn
}

// Delete marks key's value box empty under the tree lock. BUG #9 (Table 2
// #9, Durinn-overlapping): the buggy variant clears the box without
// persisting the removal ((*Tree).removeChild); a lock-free get already
// misses the key while a crash resurrects it.
func (t *Tree) Delete(c *pmrt.Ctx, key uint64) {
	c.Lock(t.mu)
	defer c.Unlock(t.mu)

	n := c.Load8(t.meta)
	for depth := 0; depth < 8; depth++ {
		if n == 0 {
			return
		}
		n = t.findChildLocked(c, n, keyByte(key, depth))
	}
	if n == 0 {
		return
	}
	t.removeChild(c, n)
}

// removeChild clears a value box (the N4.cpp:67/N16.cpp:76 removal stores).
func (t *Tree) removeChild(c *pmrt.Ctx, box uint64) {
	c.Store8(box+offHeader, 0)
	if t.fixed {
		c.Persist(box+offHeader, 8)
	}
}

// ValidateCrash compares live leaf boxes reachable in the volatile tree
// with those in the persistent image: bugs #8/#9 leave inserts unreachable
// and deletions resurrected after a crash.
func (t *Tree) ValidateCrash(p *pmem.Pool) []string {
	var out []string
	vol := t.countLive(p.Load8, p.Load8(t.meta), 0)
	per := t.countLive(p.ReadPersistent8, p.ReadPersistent8(t.meta), 0)
	if per < vol {
		out = append(out, fmt.Sprintf(
			"silent data loss: %d of %d live entries unreachable in the crash image (bug #8)", vol-per, vol))
	}
	if per > vol {
		out = append(out, fmt.Sprintf(
			"resurrected deletions: crash image holds %d live entries, volatile tree %d (bug #9)", per, vol))
	}
	return out
}

// countLive walks nodes through the given view counting value boxes whose
// live flag is set.
func (t *Tree) countLive(read func(uint64) uint64, n uint64, depth int) int {
	if n == 0 || depth > 8 {
		return 0
	}
	if depth == 8 { // value box
		if read(n+offHeader) == 1 {
			return 1
		}
		return 0
	}
	kind, count := header(read(n + offHeader))
	total := 0
	switch kind {
	case kind256:
		for b := 0; b < 256; b++ {
			total += t.countLive(read, read(n+offKids+uint64(b)*8), depth+1)
		}
	case kind48:
		for sl := 0; sl < 48 && sl < count; sl++ {
			total += t.countLive(read, read(n+off48Kids+uint64(sl)*8), depth+1)
		}
	default:
		for i := 0; i < count && i < capOf(kind); i++ {
			total += t.countLive(read, read(n+offKids+uint64(i)*8), depth+1)
		}
	}
	return total
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "P-ART",
		Factory: New,
		Bugs: []apps.BugSpec{
			{
				ID: 8, Durinn: true,
				StoreFunc: "part.(*Tree).addChild", LoadFunc: "part.(*Tree).findChild",
				Description: "load unpersisted value",
			},
			{
				ID: 9, Durinn: true,
				StoreFunc: "part.(*Tree).removeChild", LoadFunc: "part.(*Tree).Get",
				Description: "load unpersisted value",
			},
		},
		Benign: apps.Pairs(
			[]string{
				"part.(*Tree).addChild", "part.(*Tree).growNode",
				"part.(*Tree).Put", "part.(*Tree).removeChild",
			},
			[]string{"part.(*Tree).findChild", "part.(*Tree).Get"},
		),
		Spec:   ycsb.DefaultSpec,
		MaxOps: 1000,
	})
}
