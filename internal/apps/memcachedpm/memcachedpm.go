// Package memcachedpm reimplements Memcached-pmem (Lenovo's PM fork of
// memcached), the in-memory key-value store of the paper's evaluation: a
// hash table of PM items managed by a slab allocator with an LRU list.
// Mutating commands take per-bucket locks; reads and LRU maintenance are
// lock-free (Table 1 lists the application as Lock-Free).
//
// The buggy variant carries the six Table 2 races, all previously reported
// by PMRace:
//
//	#10/#11: append/prepend build a new item from an old one and publish the
//	    copied header (#10, (*Cache).copyHeader) and data (#11,
//	    (*Cache).copyData) without persisting them.
//	#12: linking an item into its hash chain does not persist the chain
//	    pointer ((*Cache).linkItem vs (*Cache).walkChain).
//	#13: the slab allocator's free-list push leaves the next pointer
//	    unpersisted ((*Slabs).push vs (*Slabs).pop).
//	#14: item metadata (flags/exptime) is updated without persist
//	    ((*Cache).touchMeta vs (*Cache).readMeta).
//	#15: LRU timestamp bumps are unpersisted ((*Cache).lruBump vs
//	    (*Cache).lruRead).
//
// The package also reproduces the PM-reuse pattern that defeats the
// Initialization Removal Heuristic (§5.4, §7): the slab allocator recycles
// item memory, and recycled items are reinitialized — safely, but on
// already-published addresses, which the IRH can no longer prune.
package memcachedpm

import (
	"fmt"

	"hawkset/internal/apps"
	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// Item layout (PM):
//
//	+0   key     uint64 (0 = free)
//	+8   value   uint64
//	+16  hnext   uint64: hash-chain pointer
//	+24  flags   uint64: metadata (#14)
//	+32  lrutime uint64: LRU clock (#15)
//	+40  casid   uint64
//	+48  fnext   uint64: slab free-list pointer (#13)
//	+56  pad
const (
	offKey   = 0
	offVal   = 8
	offHNext = 16
	offFlags = 24
	offLRU   = 32
	offCAS   = 40
	offFNext = 48
	itemSize = 64

	nBuckets = 4096
)

// Slabs is the PM slab allocator: a free list threaded through items.
type Slabs struct {
	rt    *pmrt.Runtime
	head  uint64 // PM address of the free-list head pointer
	mu    *pmrt.Mutex
	fixed bool
}

// push returns an item to the free list. BUG #13 (Table 2 #13): the buggy
// variant stores the next pointer without persisting it.
func (s *Slabs) push(c *pmrt.Ctx, item uint64) {
	c.Lock(s.mu)
	old := c.Load8(s.head)
	c.Store8(item+offFNext, old)
	c.Store8(s.head, item)
	if s.fixed {
		c.Persist(item+offFNext, 8)
		c.Persist(s.head, 8)
	}
	c.Unlock(s.mu)
}

// pop takes an item from the free list (the slabs.c:412 load), or allocates
// fresh PM when the list is empty.
func (s *Slabs) pop(c *pmrt.Ctx) uint64 {
	c.Lock(s.mu)
	head := c.Load8(s.head)
	if head != 0 {
		next := c.Load8(head + offFNext)
		c.Store8(s.head, next)
		if s.fixed {
			c.Persist(s.head, 8)
		}
		c.Unlock(s.mu)
		// Recycled memory: visible to the analysis only when allocator
		// instrumentation is enabled (the §7 extension).
		c.RecordAlloc(head, itemSize)
		return head
	}
	c.Unlock(s.mu)
	return c.Alloc(itemSize)
}

// Cache is the memcached store.
type Cache struct {
	rt    *pmrt.Runtime
	slabs *Slabs
	table uint64 // PM address of the bucket array (nBuckets pointers)
	locks []*pmrt.Mutex
	clock uint64 // coarse LRU clock (volatile; mirrors current_time)
	fixed bool
}

// New creates a Memcached-pmem instance. fixed repairs races #10–#15.
func New(rt *pmrt.Runtime, fixed bool) apps.App {
	cc := &Cache{rt: rt, fixed: fixed}
	cc.slabs = &Slabs{rt: rt, mu: rt.NewMutex("slabs"), fixed: fixed}
	cc.locks = make([]*pmrt.Mutex, nBuckets)
	for i := range cc.locks {
		cc.locks[i] = rt.NewMutex("mc-bucket")
	}
	return cc
}

// Name implements apps.App.
func (cc *Cache) Name() string { return "Memcached-pmem" }

// Setup allocates the hash table and the free-list head.
func (cc *Cache) Setup(c *pmrt.Ctx) {
	cc.table = c.Alloc(nBuckets * 8)
	cc.slabs.head = c.Alloc(8)
	c.Persist(cc.table, 8)
	c.Persist(cc.slabs.head, 8)
}

// Apply implements apps.App.
func (cc *Cache) Apply(c *pmrt.Ctx, op ycsb.Op) {
	cc.clock++
	key := op.Key | 1 // key 0 is the free marker
	switch op.Kind {
	case ycsb.OpSet, ycsb.OpInsert, ycsb.OpUpdate:
		cc.Set(c, key, op.Value)
	case ycsb.OpGet:
		cc.Get(c, key)
	case ycsb.OpAdd:
		cc.Add(c, key, op.Value)
	case ycsb.OpReplace:
		cc.Replace(c, key, op.Value)
	case ycsb.OpAppend, ycsb.OpPrepend:
		cc.Concat(c, key, op.Value)
	case ycsb.OpCAS:
		cc.CAS(c, key, op.Value, op.Value+1)
	case ycsb.OpDelete:
		cc.Delete(c, key)
	case ycsb.OpIncr:
		cc.Delta(c, key, 1)
	case ycsb.OpDecr:
		cc.Delta(c, key, ^uint64(0))
	}
}

func hash(key uint64) uint64 {
	key *= 0x9e3779b97f4a7c15
	return key >> 40
}

func (cc *Cache) bucketAddr(key uint64) (uint64, *pmrt.Mutex) {
	b := hash(key) % nBuckets
	return cc.table + b*8, cc.locks[b]
}

// walkChain finds key's item in a hash chain, lock-free (the items.c:464 /
// memcached.c:2805 load side).
func (cc *Cache) walkChain(c *pmrt.Ctx, bucket uint64, key uint64) uint64 {
	it := c.Load8(bucket)
	for it != 0 {
		if c.Load8(it+offKey) == key {
			return it
		}
		it = c.Load8(it + offHNext)
	}
	return 0
}

// Get reads an item lock-free and bumps its LRU position.
func (cc *Cache) Get(c *pmrt.Ctx, key uint64) (uint64, bool) {
	bucket, mu := cc.bucketAddr(key)
	it := cc.walkChain(c, bucket, key)
	if it == 0 {
		return 0, false
	}
	val := c.Load8(it + offVal)
	_ = cc.readMeta(c, it)
	_ = cc.lruRead(c, it)
	cc.lruBump(c, bucket, mu, key, it)
	return val, true
}

// readMeta loads item metadata lock-free (the memcached.c:2824 load of
// race #14).
func (cc *Cache) readMeta(c *pmrt.Ctx, it uint64) uint64 {
	return c.Load8(it + offFlags)
}

// lruRead inspects the LRU clock of a chain head lock-free (items.c:623).
func (cc *Cache) lruRead(c *pmrt.Ctx, it uint64) uint64 {
	return c.Load8(it + offLRU)
}

// lruBump refreshes an item's LRU timestamp. BUG #15 (Table 2 #15): the
// store is never persisted; it races with concurrent lruRead/Get. The fixed
// variant takes the bucket lock through store+persist and re-validates that
// the lock-free lookup's item is still linked — without the re-check, a
// delete+slab-reuse between the lookup and the bump would let the bump write
// into an item being reinitialized under another bucket's lock.
func (cc *Cache) lruBump(c *pmrt.Ctx, bucket uint64, mu *pmrt.Mutex, key, it uint64) {
	if cc.fixed {
		c.Lock(mu)
		if cc.walkChainLocked(c, bucket, key) == it {
			c.Store8(it+offLRU, cc.clock)
			c.Persist(it+offLRU, 8)
		}
		c.Unlock(mu)
		return
	}
	c.Store8(it+offLRU, cc.clock)
}

// initItem writes a fresh item's fields. New items come from the slab free
// list, so this is the reinitialization-of-published-memory pattern that the
// IRH cannot prune (§5.4): the stores are safe (the item is unlinked) but
// classify as false positives.
func (cc *Cache) initItem(c *pmrt.Ctx, it, key, val uint64) {
	c.Store8(it+offKey, key)
	c.Store8(it+offVal, val)
	c.Store8(it+offFlags, key^val)
	c.Store8(it+offLRU, cc.clock)
	c.Store8(it+offCAS, 1)
	c.Persist(it, itemSize)
}

// linkItem publishes an item at the head of its hash chain. BUG #12
// (Table 2 #12): the buggy variant persists the bucket head but not the
// item's chain pointer (items.c:423).
func (cc *Cache) linkItem(c *pmrt.Ctx, bucket, it uint64) {
	old := c.Load8(bucket)
	c.Store8(it+offHNext, old)
	if cc.fixed {
		c.Persist(it+offHNext, 8)
	}
	c.Store8(bucket, it)
	c.Persist(bucket, 8)
}

// unlink removes an item from its chain (persisted; not a seeded defect).
func (cc *Cache) unlink(c *pmrt.Ctx, bucket, it uint64) {
	prev := uint64(0)
	cur := c.Load8(bucket)
	for cur != 0 && cur != it {
		prev = cur
		cur = c.Load8(cur + offHNext)
	}
	if cur == 0 {
		return
	}
	next := c.Load8(cur + offHNext)
	if prev == 0 {
		c.Store8(bucket, next)
		c.Persist(bucket, 8)
	} else {
		c.Store8(prev+offHNext, next)
		c.Persist(prev+offHNext, 8)
	}
}

// Set stores key=val (memcached "set": insert or overwrite).
func (cc *Cache) Set(c *pmrt.Ctx, key, val uint64) {
	bucket, mu := cc.bucketAddr(key)
	c.Lock(mu)
	defer c.Unlock(mu)
	if it := cc.walkChainLocked(c, bucket, key); it != 0 {
		c.Store8(it+offVal, val)
		c.Persist(it+offVal, 8)
		cc.touchMeta(c, it, key^val)
		return
	}
	it := cc.slabs.pop(c)
	cc.initItem(c, it, key, val)
	cc.linkItem(c, bucket, it)
}

// walkChainLocked is the writer-side chain walk (under the bucket lock).
func (cc *Cache) walkChainLocked(c *pmrt.Ctx, bucket uint64, key uint64) uint64 {
	it := c.Load8(bucket)
	for it != 0 {
		if c.Load8(it+offKey) == key {
			return it
		}
		it = c.Load8(it + offHNext)
	}
	return 0
}

// touchMeta updates item metadata. BUG #14 (Table 2 #14): the buggy variant
// leaves the metadata store unpersisted (items.c:1096).
func (cc *Cache) touchMeta(c *pmrt.Ctx, it, flags uint64) {
	c.Store8(it+offFlags, flags)
	if cc.fixed {
		c.Persist(it+offFlags, 8)
	}
}

// Add inserts only if absent.
func (cc *Cache) Add(c *pmrt.Ctx, key, val uint64) {
	bucket, mu := cc.bucketAddr(key)
	c.Lock(mu)
	defer c.Unlock(mu)
	if cc.walkChainLocked(c, bucket, key) != 0 {
		return
	}
	it := cc.slabs.pop(c)
	cc.initItem(c, it, key, val)
	cc.linkItem(c, bucket, it)
}

// Replace overwrites only if present.
func (cc *Cache) Replace(c *pmrt.Ctx, key, val uint64) {
	bucket, mu := cc.bucketAddr(key)
	c.Lock(mu)
	defer c.Unlock(mu)
	it := cc.walkChainLocked(c, bucket, key)
	if it == 0 {
		return
	}
	c.Store8(it+offVal, val)
	c.Persist(it+offVal, 8)
}

// Concat implements append/prepend: memcached-pmem builds a NEW item from
// the old one, copies header and data, and swaps it into the chain.
func (cc *Cache) Concat(c *pmrt.Ctx, key, extra uint64) {
	bucket, mu := cc.bucketAddr(key)
	c.Lock(mu)
	defer c.Unlock(mu)
	old := cc.walkChainLocked(c, bucket, key)
	if old == 0 {
		return
	}
	nit := cc.slabs.pop(c)
	cc.copyHeader(c, nit, old, key)
	cc.copyData(c, nit, old, extra)
	cc.unlink(c, bucket, old)
	cc.linkItem(c, bucket, nit)
	cc.slabs.push(c, old)
}

// copyHeader copies the old item's header into the new item. BUG #10
// (Table 2 #10): the copy reads the old, possibly-unpersisted item and the
// new header is itself published without persist (memcached.c:4292).
func (cc *Cache) copyHeader(c *pmrt.Ctx, nit, old, key uint64) {
	c.Store8(nit+offKey, key)
	flags := c.Load8(old + offFlags)
	c.Store8(nit+offFlags, flags)
	c.Store8(nit+offCAS, c.Load8(old+offCAS)+1)
	if cc.fixed {
		c.Persist(nit, 48)
	}
}

// copyData concatenates the old value with the new suffix. BUG #11
// (Table 2 #11): same pattern as #10 on the data word (memcached.c:4293).
func (cc *Cache) copyData(c *pmrt.Ctx, nit, old, extra uint64) {
	v := c.Load8(old + offVal)
	c.Store8(nit+offVal, v+extra)
	if cc.fixed {
		c.Persist(nit+offVal, 8)
	}
}

// CAS performs compare-and-set on the item's value.
func (cc *Cache) CAS(c *pmrt.Ctx, key, expect, val uint64) bool {
	bucket, mu := cc.bucketAddr(key)
	c.Lock(mu)
	defer c.Unlock(mu)
	it := cc.walkChainLocked(c, bucket, key)
	if it == 0 {
		return false
	}
	if c.Load8(it+offVal) != expect {
		return false
	}
	c.Store8(it+offVal, val)
	c.Store8(it+offCAS, c.Load8(it+offCAS)+1)
	c.Persist(it+offVal, 8)
	c.Persist(it+offCAS, 8)
	return true
}

// Delta implements incr/decr.
func (cc *Cache) Delta(c *pmrt.Ctx, key, d uint64) {
	bucket, mu := cc.bucketAddr(key)
	c.Lock(mu)
	defer c.Unlock(mu)
	it := cc.walkChainLocked(c, bucket, key)
	if it == 0 {
		return
	}
	v := c.Load8(it + offVal)
	c.Store8(it+offVal, v+d)
	c.Persist(it+offVal, 8)
}

// Delete unlinks the item and recycles its memory through the slab
// allocator — the reuse that defeats the IRH.
func (cc *Cache) Delete(c *pmrt.Ctx, key uint64) {
	bucket, mu := cc.bucketAddr(key)
	c.Lock(mu)
	defer c.Unlock(mu)
	it := cc.walkChainLocked(c, bucket, key)
	if it == 0 {
		return
	}
	cc.unlink(c, bucket, it)
	c.Store8(it+offKey, 0)
	c.Persist(it+offKey, 8)
	cc.slabs.push(c, it)
}

// ValidateCrash compares the items reachable through hash chains in both
// views: bug #12's unpersisted chain pointers truncate chains in the crash
// image, orphaning every item behind them.
func (cc *Cache) ValidateCrash(p *pmem.Pool) []string {
	var out []string
	count := func(read func(uint64) uint64) int {
		n := 0
		for b := uint64(0); b < nBuckets; b++ {
			it := read(cc.table + b*8)
			hops := 0
			for it != 0 && hops < 1<<10 {
				if read(it+offKey) != 0 {
					n++
				}
				it = read(it + offHNext)
				hops++
			}
		}
		return n
	}
	vol := count(p.Load8)
	per := count(p.ReadPersistent8)
	if per < vol {
		out = append(out, fmt.Sprintf(
			"silent data loss: %d of %d linked items unreachable in the crash image (bug #12)", vol-per, vol))
	}
	return out
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "Memcached-pmem",
		Factory: New,
		Bugs: []apps.BugSpec{
			{ID: 10, StoreFunc: "memcachedpm.(*Cache).copyHeader", LoadFunc: "memcachedpm.(*Cache)",
				Description: "load unpersisted value"},
			{ID: 11, StoreFunc: "memcachedpm.(*Cache).copyData", LoadFunc: "memcachedpm.(*Cache)",
				Description: "load unpersisted value"},
			{ID: 12, StoreFunc: "memcachedpm.(*Cache).linkItem", LoadFunc: "memcachedpm.(*Cache).walkChain",
				Description: "load unpersisted pointer"},
			{ID: 13, StoreFunc: "memcachedpm.(*Slabs).push", LoadFunc: "memcachedpm.(*Slabs).pop",
				Description: "load unpersisted pointer"},
			{ID: 14, StoreFunc: "memcachedpm.(*Cache).touchMeta", LoadFunc: "memcachedpm.(*Cache).readMeta",
				Description: "load unpersisted metadata"},
			{ID: 15, StoreFunc: "memcachedpm.(*Cache).lruBump", LoadFunc: "memcachedpm.(*Cache).lruRead",
				Description: "load unpersisted metadata"},
		},
		Benign: apps.Pairs(
			[]string{
				"memcachedpm.(*Cache).Set", "memcachedpm.(*Cache).Replace",
				"memcachedpm.(*Cache).CAS", "memcachedpm.(*Cache).Delta",
				"memcachedpm.(*Cache).linkItem", "memcachedpm.(*Cache).unlink",
				"memcachedpm.(*Cache).Delete", "memcachedpm.(*Cache).touchMeta",
				"memcachedpm.(*Cache).lruBump", "memcachedpm.(*Cache).copyHeader",
				"memcachedpm.(*Cache).copyData",
			},
			[]string{
				"memcachedpm.(*Cache).Get", "memcachedpm.(*Cache).walkChain",
				"memcachedpm.(*Cache).readMeta", "memcachedpm.(*Cache).lruRead",
			},
		),
		Spec: ycsb.MemcachedSpec,
	})
}
