package memcachedpm

import (
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

func newCache(t *testing.T, fixed bool) (*pmrt.Runtime, *Cache) {
	t.Helper()
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	return rt, New(rt, fixed).(*Cache)
}

func TestCommands(t *testing.T) {
	rt, cc := newCache(t, true)
	err := rt.Run(func(c *pmrt.Ctx) {
		cc.Setup(c)
		cc.Set(c, 1, 10)
		if v, ok := cc.Get(c, 1); !ok || v != 10 {
			t.Fatalf("Get = (%d,%v)", v, ok)
		}
		cc.Add(c, 1, 99) // present: no-op
		if v, _ := cc.Get(c, 1); v != 10 {
			t.Fatal("Add overwrote existing item")
		}
		cc.Add(c, 2, 20)
		if v, ok := cc.Get(c, 2); !ok || v != 20 {
			t.Fatalf("Add failed: (%d,%v)", v, ok)
		}
		cc.Replace(c, 2, 21)
		if v, _ := cc.Get(c, 2); v != 21 {
			t.Fatal("Replace failed")
		}
		cc.Replace(c, 3, 30) // absent: no-op
		if _, ok := cc.Get(c, 3); ok {
			t.Fatal("Replace created an item")
		}
		cc.Delta(c, 1, 1)
		if v, _ := cc.Get(c, 1); v != 11 {
			t.Fatal("incr failed")
		}
		if !cc.CAS(c, 1, 11, 50) {
			t.Fatal("CAS on matching value failed")
		}
		if cc.CAS(c, 1, 11, 60) {
			t.Fatal("CAS on stale value succeeded")
		}
		cc.Concat(c, 1, 5) // append: value becomes 55
		if v, _ := cc.Get(c, 1); v != 55 {
			t.Fatalf("Concat = %d, want 55", v)
		}
		cc.Delete(c, 1)
		if _, ok := cc.Get(c, 1); ok {
			t.Fatal("deleted key still present")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSlabReuse: delete recycles item memory; the next allocation reuses it.
func TestSlabReuse(t *testing.T) {
	rt, cc := newCache(t, true)
	err := rt.Run(func(c *pmrt.Ctx) {
		cc.Setup(c)
		cc.Set(c, 1, 10)
		bucket, _ := cc.bucketAddr(1)
		it := cc.walkChainLocked(c, bucket, 1)
		cc.Delete(c, 1)
		it2 := cc.slabs.pop(c)
		if it2 != it {
			t.Fatalf("slab allocator did not reuse freed item: %#x vs %#x", it2, it)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadRuns: the full ten-command mix executes without deadlock.
func TestWorkloadRuns(t *testing.T) {
	rt, cc := newCache(t, false)
	w := ycsb.Generate(ycsb.MemcachedSpec(2000), 3)
	err := rt.Run(func(c *pmrt.Ctx) {
		cc.Setup(c)
		for _, op := range w.Load {
			cc.Apply(c, ycsb.Op{Kind: ycsb.OpSet, Key: op.Key, Value: op.Value})
		}
		var ths []*pmrt.Thread
		for _, ops := range w.Threads {
			ops := ops
			ths = append(ths, c.Spawn(func(wc *pmrt.Ctx) {
				for _, op := range ops {
					cc.Apply(wc, op)
				}
			}))
		}
		for _, th := range ths {
			c.Join(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Trace.Len() == 0 {
		t.Fatal("no events recorded")
	}
}

// TestBuggyLinkLosesChainOnCrash: bug #12 — the hash-chain pointer is
// unpersisted, so a crash orphans the rest of the chain.
func TestBuggyLinkLosesChainOnCrash(t *testing.T) {
	rt, cc := newCache(t, false)
	var first, second uint64
	err := rt.Run(func(c *pmrt.Ctx) {
		cc.Setup(c)
		// Two keys in the same bucket chain.
		k1 := uint64(1)
		var k2 uint64
		for k := uint64(2); ; k++ {
			if hash(k)%nBuckets == hash(k1)%nBuckets {
				k2 = k
				break
			}
		}
		cc.Set(c, k1, 10)
		cc.Set(c, k2, 20)
		bucket, _ := cc.bucketAddr(k1)
		second = c.Load8(bucket) // head: most recently linked
		first = c.Load8(second + offHNext)
		if first == 0 {
			t.Fatal("chain not built")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Pool.ReadPersistent8(second+offHNext) == first {
		t.Fatal("buggy linkItem persisted the chain pointer — bug #12 not seeded")
	}
}

// TestAllocAwareIRHPrunesReuseFPs quantifies the §7 extension the paper
// discusses but does not build: with the slab allocator instrumented
// (pmrt InstrumentAllocs) and the analysis consuming the events
// (hawkset.Config.AllocAware), the IRH recognizes recycled items as
// private-again and prunes the reuse false positives that otherwise
// survive (Table 4's memcached row).
func TestAllocAwareIRHPrunesReuseFPs(t *testing.T) {
	e, err := apps.Lookup("Memcached-pmem")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := apps.Detect(e, 4000, 42, apps.RunConfig{Seed: 42}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	aware := hawkset.DefaultConfig()
	aware.AllocAware = true
	extended, err := apps.Detect(e, 4000, 42,
		apps.RunConfig{Seed: 42, InstrumentAllocs: true}, aware)
	if err != nil {
		t.Fatal(err)
	}
	pf := apps.Breakdown(e, plain)[apps.FalsePositive]
	ef := apps.Breakdown(e, extended)[apps.FalsePositive]
	if pf == 0 {
		t.Fatal("baseline run has no reuse false positives to prune")
	}
	if ef >= pf {
		t.Fatalf("alloc-aware IRH did not reduce false positives: %d -> %d", pf, ef)
	}
	// The extension must not cost any malign detection.
	if got, want := len(apps.FoundBugs(e, extended)), len(apps.FoundBugs(e, plain)); got < want {
		t.Fatalf("alloc-aware IRH lost bugs: %d -> %d", want, got)
	}
}
