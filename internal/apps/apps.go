// Package apps defines the common harness for the nine PM applications of
// the paper's evaluation (Table 1). Each application is a Go reimplementation
// on the instrumented runtime (internal/pmrt), carrying the paper's reported
// persistency-induced races as faithful seeded defects; constructing an app
// with Fixed=true repairs every defect, giving tests and experiments a
// correct-by-construction control.
package apps

import (
	"fmt"
	"strings"

	"hawkset/internal/hawkset"
	"hawkset/internal/obs"
	"hawkset/internal/pmrt"
	"hawkset/internal/trace"
	"hawkset/internal/ycsb"
)

// App is a PM application under test.
type App interface {
	// Name returns the application's evaluation name (Table 1).
	Name() string
	// Setup initializes the persistent structure on the main thread.
	Setup(c *pmrt.Ctx)
	// Apply executes one workload operation on behalf of a worker thread.
	Apply(c *pmrt.Ctx, op ycsb.Op)
}

// Factory builds an app instance bound to a runtime. fixed selects the
// defect-free variant.
type Factory func(rt *pmrt.Runtime, fixed bool) App

// Class is the manual classification of §3.3/Table 4.
type Class uint8

// Report classes.
const (
	Malign Class = iota // genuine race with observable bad behavior
	Benign              // genuine race tolerated by the application's design
	FalsePositive
)

func (c Class) String() string {
	switch c {
	case Malign:
		return "MR"
	case Benign:
		return "BR"
	default:
		return "FP"
	}
}

// BugSpec describes one paper-reported bug for Table 2.
type BugSpec struct {
	// ID is the paper's bug number (Table 2 #).
	ID int
	// New marks bugs the paper reports as previously unknown.
	New bool
	// Durinn marks bugs overlapping Durinn's findings (the * in Table 2).
	Durinn bool
	// StoreFunc/LoadFunc identify the racing accesses by (suffix of) the
	// function containing them — the reproduction's stable analogue of the
	// paper's file:line pairs, which shift with edits.
	StoreFunc, LoadFunc string
	// AllowPersisted matches the bug even when the store window was
	// correctly persisted. APEX's races (#19, #20) are of this kind: store
	// and persist sit inside the mutex, but the lock-free search can still
	// observe the window (§5.1); the fix is on the reader side.
	AllowPersisted bool
	// Extension marks bugs seeded beyond the paper's Table 2 (the
	// filesystem scenarios); experiments reproducing the paper's tables
	// skip them so the 20-bug accounting stays faithful.
	Extension bool
	// Description matches Table 2's description column.
	Description string
}

// Matches reports whether a race report corresponds to this bug. All Table 2
// races load *unpersisted* data, so a report only matches when at least one
// contributing store window was never explicitly persisted — the same
// (store, load) site pair in the Fixed variant is a benign lock-free-reader
// race, not the bug.
func (b BugSpec) Matches(r hawkset.Report) bool {
	return (r.Unpersisted || b.AllowPersisted) &&
		funcMatches(r.StoreFrame.Func, b.StoreFunc) && funcMatches(r.LoadFrame.Func, b.LoadFunc)
}

// funcMatches compares a fully-qualified Go function name against a
// registered pattern; patterns name the method, e.g. "(*Tree).insert".
func funcMatches(full, pattern string) bool {
	return strings.Contains(full, pattern)
}

// FuncPair classifies additional (store, load) function pairs that are
// genuine-but-tolerated races (Benign) in an application's design.
type FuncPair struct {
	StoreFunc, LoadFunc string
}

// Entry is one registered application.
type Entry struct {
	Name    string
	Factory Factory
	// Bugs are the paper's Table 2 races seeded in the buggy variant.
	Bugs []BugSpec
	// Benign lists function pairs whose reports are genuine races tolerated
	// by design (lock-free readers etc.), for the Table 4 classification.
	Benign []FuncPair
	// Spec produces the workload specification for a main-phase size,
	// matching §5's per-application benchmarks.
	Spec func(opCount int) ycsb.Spec
	// PoolSize overrides the default simulated device size, for the apps
	// whose footprint needs it at 100k operations.
	PoolSize uint64
	// MaxOps caps the workload size (P-ART "hangs for workloads larger
	// than 1k operations", §5 — reproduced as a documented cap).
	MaxOps int
	// Recover, when set, drives the application's recovery path on a
	// rebooted device: it re-attaches to the persistent structure the prev
	// instance created (prev supplies root addresses) and walks it the way
	// post-crash startup code would. It returns an error when recovery
	// itself detects corruption; it may also panic or livelock on a torn
	// image — the crash-injection harness (internal/crashinject) guards
	// both and converts them into inconsistent verdicts.
	Recover func(c *pmrt.Ctx, prev App, fixed bool) error
}

// Classify assigns the Table 4 class to a report. Any unpersisted-window
// report whose store side matches a registered bug is a manifestation of
// that defect (the same missing persist is frequently caught by several
// reader sites), so it classifies as malign even when the reader differs
// from the bug's primary load site.
func (e *Entry) Classify(r hawkset.Report) Class {
	for _, b := range e.Bugs {
		if b.Matches(r) {
			return Malign
		}
		if (r.Unpersisted || b.AllowPersisted) && funcMatches(r.StoreFrame.Func, b.StoreFunc) {
			return Malign
		}
	}
	for _, p := range e.Benign {
		if funcMatches(r.StoreFrame.Func, p.StoreFunc) && funcMatches(r.LoadFrame.Func, p.LoadFunc) {
			return Benign
		}
	}
	return FalsePositive
}

// Pairs builds the cross product of store and load function patterns, a
// convenience for registering benign lock-free-reader combinations.
func Pairs(stores, loads []string) []FuncPair {
	out := make([]FuncPair, 0, len(stores)*len(loads))
	for _, s := range stores {
		for _, l := range loads {
			out = append(out, FuncPair{StoreFunc: s, LoadFunc: l})
		}
	}
	return out
}

var registry []*Entry

// Register adds an application to the registry (called from each app
// package's init).
func Register(e *Entry) { registry = append(registry, e) }

// All returns the registered applications in registration order.
func All() []*Entry { return registry }

// Lookup finds an application by name.
func Lookup(name string) (*Entry, error) {
	for _, e := range registry {
		if strings.EqualFold(e.Name, name) {
			return e, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// RunConfig parameterizes an instrumented workload execution.
type RunConfig struct {
	Seed  int64
	Fixed bool
	// EADR runs the device with a persistent cache (ablation).
	EADR bool
	// NoTrace disables trace recording (observation-based baselines).
	NoTrace bool
	// TrackWriters enables per-byte dirty-read attribution.
	TrackWriters bool
	// InstrumentAllocs records PM allocations in the trace (the §7
	// extension; pairs with hawkset.Config.AllocAware).
	InstrumentAllocs bool
	// Metrics, when non-nil, receives the runtime's and device's side-band
	// counters (see pmrt.Config.Metrics). Execution is unaffected.
	Metrics *obs.Registry
	// EventSink, when non-nil, receives every instrumented event as it is
	// emitted (see pmrt.Runtime.EventSink) — the hookup for streaming the
	// trace into a hawkset.Stream or a pmcheckd daemon, usually combined
	// with NoTrace so no events are retained locally.
	EventSink func(e trace.Event)
}

// NewRuntime builds the instrumented runtime an application instance runs
// on, applying the entry's pool-size override. Exposed separately from Run
// for callers that must interpose on the fresh runtime before execution —
// the pmcheckd streaming client binds to rt.Trace.Sites and installs
// itself as rt.EventSink between construction and RunOn.
func NewRuntime(e *Entry, cfg RunConfig) *pmrt.Runtime {
	poolSize := e.PoolSize
	if poolSize == 0 {
		poolSize = 32 << 20
	}
	rt := pmrt.New(pmrt.Config{
		Seed:             cfg.Seed,
		PoolSize:         poolSize,
		EADR:             cfg.EADR,
		NoTrace:          cfg.NoTrace,
		TrackWriters:     cfg.TrackWriters,
		InstrumentAllocs: cfg.InstrumentAllocs,
		Metrics:          cfg.Metrics,
	})
	rt.EventSink = cfg.EventSink
	return rt
}

// Run executes a workload against a fresh instance of the application under
// the instrumented runtime and returns the runtime (whose Trace feeds the
// analyses). The load phase runs on the main thread before the workers
// spawn, exactly like the paper's benchmarks.
func Run(e *Entry, w *ycsb.Workload, cfg RunConfig) (*pmrt.Runtime, error) {
	rt := NewRuntime(e, cfg)
	app := e.Factory(rt, cfg.Fixed)
	return rt, RunOn(rt, app, w)
}

// RunOn drives a workload against an app on an existing runtime. The
// observation-based baseline builds its own runtime (with delay hooks and
// writer tracking) and shares this driver.
func RunOn(rt *pmrt.Runtime, app App, w *ycsb.Workload) error {
	return rt.Run(func(c *pmrt.Ctx) {
		app.Setup(c)
		for _, op := range w.Load {
			app.Apply(c, op)
		}
		var ths []*pmrt.Thread
		for _, ops := range w.Threads {
			ops := ops
			ths = append(ths, c.Spawn(func(wc *pmrt.Ctx) {
				for _, op := range ops {
					app.Apply(wc, op)
				}
			}))
		}
		for _, th := range ths {
			c.Join(th)
		}
	})
}
