// Package fastfair reimplements Fast-Fair (Hwang et al., FAST'18), the
// PM-backed B+-tree of the paper's evaluation, on the instrumented runtime.
// Writers (insert/update/delete) serialize on a mutex; lookups are
// lock-free, exactly the Lock/Lock-Free mix Table 1 lists.
//
// The buggy variant carries the two Table 2 races:
//
//	#1 (known, reported by PMRace): a leaf split publishes the new sibling's
//	   separator entry in the parent without persisting it
//	   ((*Tree).publishSibling). A lock-free lookup can traverse the
//	   unpersisted pointer ((*Tree).lookupChild); after a crash the inserted
//	   values are lost while lookups' side effects survive.
//	#2 (new): the same pattern on the much rarer tree-growth branch: the new
//	   root is published by an unpersisted root-pointer store
//	   ((*Tree).growRoot) read lock-free by (*Tree).loadRoot.
//
// The Fixed variant persists both stores inside the critical section.
package fastfair

import (
	"fmt"

	"hawkset/internal/apps"
	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// Node layout (PM): 16-byte header + fanout 16-byte entries.
//
//	+0  header  uint64: bit0 = leaf, bits 1.. = entry count
//	+8  next    uint64: leaf sibling pointer / internal leftmost child
//	+16 entries fanout × (key uint64, val-or-child uint64)
const (
	fanout     = 8
	offHeader  = 0
	offNext    = 8
	offEntries = 16
	entrySize  = 16
	nodeSize   = offEntries + fanout*entrySize
)

// Tree is the PM B+-tree.
type Tree struct {
	rt    *pmrt.Runtime
	mu    *pmrt.Mutex
	meta  uint64 // PM address of the root pointer
	fixed bool
}

// New creates a Fast-Fair instance. fixed repairs both seeded bugs.
func New(rt *pmrt.Runtime, fixed bool) apps.App {
	return &Tree{rt: rt, mu: rt.NewMutex("fastfair"), fixed: fixed}
}

// Name implements apps.App.
func (t *Tree) Name() string { return "Fast-Fair" }

// Setup allocates the metadata block and an empty root leaf.
func (t *Tree) Setup(c *pmrt.Ctx) {
	t.meta = c.Alloc(8)
	root := t.newNode(c, true)
	c.Store8(t.meta, root)
	c.Persist(t.meta, 8)
}

// Attach binds a tree handle to an existing persistent image (post-crash
// recovery): meta is the root-pointer address the pre-crash instance
// allocated. Fast-Fair's design goal is exactly this — no recovery pass that
// fixes inconsistencies, the persisted tree is immediately usable.
func Attach(rt *pmrt.Runtime, meta uint64, fixed bool) *Tree {
	return &Tree{rt: rt, mu: rt.NewMutex("fastfair"), meta: meta, fixed: fixed}
}

// Meta returns the PM address of the root pointer (for recovery).
func (t *Tree) Meta() uint64 { return t.meta }

// Apply implements apps.App.
func (t *Tree) Apply(c *pmrt.Ctx, op ycsb.Op) {
	switch op.Kind {
	case ycsb.OpInsert, ycsb.OpUpdate:
		// Fast-Fair treats inserts and updates as the same operation (§5).
		t.Insert(c, op.Key, op.Value)
	case ycsb.OpGet:
		t.Get(c, op.Key)
	case ycsb.OpScan:
		n := int(op.Len)
		if n == 0 {
			n = 16
		}
		t.Scan(c, op.Key, n)
	case ycsb.OpDelete:
		t.Delete(c, op.Key)
	}
}

// Scan returns up to n key/value pairs starting at the first key >= start,
// walking the leaf chain lock-free through the sibling pointers — the same
// pointers bug #1 leaves unpersisted, so scans are additional witnesses of
// the race.
func (t *Tree) Scan(c *pmrt.Ctx, start uint64, n int) [][2]uint64 {
	node := t.loadRoot(c)
	for {
		leaf, _ := header(c.Load8(node + offHeader))
		if leaf {
			break
		}
		node = t.lookupChild(c, node, start)
	}
	var out [][2]uint64
	for node != 0 && len(out) < n {
		_, count := header(c.Load8(node + offHeader))
		for i := 0; i < count && len(out) < n; i++ {
			k := c.Load8(entryKey(node, i))
			if k < start {
				continue
			}
			out = append(out, [2]uint64{k, c.Load8(entryVal(node, i))})
		}
		node = c.Load8(node + offNext) // sibling pointer: the bug-#1 window
	}
	return out
}

// newNode allocates and initializes a node. The initialization stores are
// explicitly persisted before the node is published — the pattern the
// Initialization Removal Heuristic prunes (§3.1.3).
func (t *Tree) newNode(c *pmrt.Ctx, leaf bool) uint64 {
	n := c.Alloc(nodeSize)
	hdr := uint64(0)
	if leaf {
		hdr = 1
	}
	c.Store8(n+offHeader, hdr)
	c.Store8(n+offNext, 0)
	c.Persist(n, nodeSize)
	return n
}

func header(hdr uint64) (leaf bool, count int) { return hdr&1 == 1, int(hdr >> 1) }
func packHeader(leaf bool, count int) uint64 {
	h := uint64(count) << 1
	if leaf {
		h |= 1
	}
	return h
}

func entryKey(n uint64, i int) uint64 { return n + offEntries + uint64(i)*entrySize }
func entryVal(n uint64, i int) uint64 { return entryKey(n, i) + 8 }

// loadRoot reads the root pointer lock-free (the load side of bug #2).
func (t *Tree) loadRoot(c *pmrt.Ctx) uint64 {
	return c.Load8(t.meta)
}

// lookupChild descends one internal level lock-free (the load side of
// bug #1: it dereferences child pointers that may be unpersisted).
func (t *Tree) lookupChild(c *pmrt.Ctx, n uint64, key uint64) uint64 {
	_, count := header(c.Load8(n + offHeader))
	child := c.Load8(n + offNext) // leftmost child
	for i := 0; i < count; i++ {
		k := c.Load8(entryKey(n, i))
		if key < k {
			break
		}
		child = c.Load8(entryVal(n, i))
	}
	return child
}

// searchLeaf scans a leaf lock-free.
func (t *Tree) searchLeaf(c *pmrt.Ctx, n uint64, key uint64) (uint64, bool) {
	_, count := header(c.Load8(n + offHeader))
	for i := 0; i < count; i++ {
		k := c.Load8(entryKey(n, i))
		if k == key {
			return c.Load8(entryVal(n, i)), true
		}
		if k > key {
			break
		}
	}
	return 0, false
}

// Get looks key up without taking any lock (Fast-Fair's lock-free search).
func (t *Tree) Get(c *pmrt.Ctx, key uint64) (uint64, bool) {
	n := t.loadRoot(c)
	for {
		leaf, _ := header(c.Load8(n + offHeader))
		if leaf {
			return t.searchLeaf(c, n, key)
		}
		n = t.lookupChild(c, n, key)
	}
}

// path element recorded while descending for a write.
type pathEnt struct {
	node uint64
}

// Insert adds or updates key under the tree mutex.
func (t *Tree) Insert(c *pmrt.Ctx, key, val uint64) {
	c.Lock(t.mu)
	defer c.Unlock(t.mu)

	var path []pathEnt
	n := c.Load8(t.meta)
	for {
		leaf, count := header(c.Load8(n + offHeader))
		if leaf {
			t.insertLeaf(c, n, path, key, val, count)
			return
		}
		path = append(path, pathEnt{node: n})
		child := c.Load8(n + offNext)
		for i := 0; i < count; i++ {
			k := c.Load8(entryKey(n, i))
			if key < k {
				break
			}
			child = c.Load8(entryVal(n, i))
		}
		n = child
	}
}

// insertLeaf writes key/val into leaf n, splitting if full. Entry shifting
// mirrors Fast-Fair's in-place sorted arrays with per-step persistence: the
// design that makes lock-free readers crash-consistent (benign races).
func (t *Tree) insertLeaf(c *pmrt.Ctx, n uint64, path []pathEnt, key, val uint64, count int) {
	// In-place update of an existing key.
	for i := 0; i < count; i++ {
		if c.Load8(entryKey(n, i)) == key {
			c.Store8(entryVal(n, i), val)
			c.Persist(entryVal(n, i), 8)
			return
		}
	}
	if count == fanout {
		n, count = t.splitLeaf(c, n, path, key)
	}
	pos := count
	for i := 0; i < count; i++ {
		if key < c.Load8(entryKey(n, i)) {
			pos = i
			break
		}
	}
	// Shift right, last to first, persisting each entry before exposing the
	// next (Fast-Fair's ordered store discipline).
	for i := count; i > pos; i-- {
		k := c.Load8(entryKey(n, i-1))
		v := c.Load8(entryVal(n, i-1))
		c.Store8(entryKey(n, i), k)
		c.Store8(entryVal(n, i), v)
		c.Persist(entryKey(n, i), entrySize)
	}
	c.Store8(entryKey(n, pos), key)
	c.Store8(entryVal(n, pos), val)
	c.Persist(entryKey(n, pos), entrySize)
	c.Store8(n+offHeader, packHeader(true, count+1))
	c.Persist(n+offHeader, 8)
}

// splitLeaf moves the upper half of n into a fresh sibling and inserts the
// separator into the parent chain. It returns the node that should receive
// key and that node's entry count.
func (t *Tree) splitLeaf(c *pmrt.Ctx, n uint64, path []pathEnt, key uint64) (uint64, int) {
	sib := t.newNode(c, true)
	half := fanout / 2
	// Copy upper half into the (still private) sibling and persist it.
	for i := half; i < fanout; i++ {
		c.Store8(entryKey(sib, i-half), c.Load8(entryKey(n, i)))
		c.Store8(entryVal(sib, i-half), c.Load8(entryVal(n, i)))
	}
	c.Store8(sib+offHeader, packHeader(true, fanout-half))
	c.Store8(sib+offNext, c.Load8(n+offNext))
	c.Persist(sib, nodeSize)
	// Link and shrink the original leaf.
	c.Store8(n+offNext, sib)
	c.Store8(n+offHeader, packHeader(true, half))
	c.Persist(n+offHeader, 16)
	sep := c.Load8(entryKey(sib, 0))
	t.insertIntoParent(c, path, n, sep, sib)
	if key < sep {
		return n, half
	}
	return sib, fanout - half
}

// insertIntoParent inserts (sep, child) into the lowest path node, splitting
// internal nodes as needed.
func (t *Tree) insertIntoParent(c *pmrt.Ctx, path []pathEnt, left, sep, child uint64) {
	if len(path) == 0 {
		t.growRoot(c, left, sep, child)
		return
	}
	p := path[len(path)-1].node
	_, count := header(c.Load8(p + offHeader))
	if count == fanout {
		p, count = t.splitInternal(c, p, path[:len(path)-1], sep)
	}
	pos := count
	for i := 0; i < count; i++ {
		if sep < c.Load8(entryKey(p, i)) {
			pos = i
			break
		}
	}
	for i := count; i > pos; i-- {
		k := c.Load8(entryKey(p, i-1))
		v := c.Load8(entryVal(p, i-1))
		c.Store8(entryKey(p, i), k)
		c.Store8(entryVal(p, i), v)
		c.Persist(entryKey(p, i), entrySize)
	}
	t.publishSibling(c, p, pos, sep, child)
	c.Store8(p+offHeader, packHeader(false, count+1))
	c.Persist(p+offHeader, 8)
}

// publishSibling stores the separator entry that makes the new sibling
// reachable. BUG #1 (Table 2 #1, known): the buggy variant omits the
// persistency — the pointer is visible to lock-free lookups while only in
// the cache, so a crash loses the entire sibling while reads may already
// have acted on it.
func (t *Tree) publishSibling(c *pmrt.Ctx, p uint64, pos int, sep, child uint64) {
	c.Store8(entryKey(p, pos), sep)
	c.Store8(entryVal(p, pos), child)
	if t.fixed {
		c.Persist(entryKey(p, pos), entrySize)
	}
}

// splitInternal splits a full internal node, returning the node that should
// receive sep.
func (t *Tree) splitInternal(c *pmrt.Ctx, p uint64, path []pathEnt, sep uint64) (uint64, int) {
	sib := t.newNode(c, false)
	half := fanout / 2
	// The middle key moves up; entries above it move to the sibling.
	midKey := c.Load8(entryKey(p, half))
	c.Store8(sib+offNext, c.Load8(entryVal(p, half)))
	for i := half + 1; i < fanout; i++ {
		c.Store8(entryKey(sib, i-half-1), c.Load8(entryKey(p, i)))
		c.Store8(entryVal(sib, i-half-1), c.Load8(entryVal(p, i)))
	}
	c.Store8(sib+offHeader, packHeader(false, fanout-half-1))
	c.Persist(sib, nodeSize)
	c.Store8(p+offHeader, packHeader(false, half))
	c.Persist(p+offHeader, 8)
	t.insertIntoParent(c, path, p, midKey, sib)
	if sep < midKey {
		return p, half
	}
	return sib, fanout - half - 1
}

// growRoot handles the rare tree-growth branch: a fresh root pointing at the
// two halves. BUG #2 (Table 2 #2, new): the buggy variant publishes the new
// root with an unpersisted root-pointer store — same pattern as #1, but on a
// branch only taken when the tree's height grows, which is why
// observation-based tools miss it (§5.2).
func (t *Tree) growRoot(c *pmrt.Ctx, left, sep, right uint64) {
	root := t.newNode(c, false)
	c.Store8(root+offNext, left)
	c.Store8(entryKey(root, 0), sep)
	c.Store8(entryVal(root, 0), right)
	c.Store8(root+offHeader, packHeader(false, 1))
	c.Persist(root, nodeSize)
	c.Store8(t.meta, root)
	if t.fixed {
		c.Persist(t.meta, 8)
	}
}

// Delete removes key from its leaf under the tree mutex. Underflowed leaves
// are left in place (Fast-Fair tolerates transient underflow; merging is
// orthogonal to the persistency patterns under study).
func (t *Tree) Delete(c *pmrt.Ctx, key uint64) {
	c.Lock(t.mu)
	defer c.Unlock(t.mu)

	n := c.Load8(t.meta)
	for {
		leaf, count := header(c.Load8(n + offHeader))
		if leaf {
			for i := 0; i < count; i++ {
				if c.Load8(entryKey(n, i)) == key {
					for j := i; j < count-1; j++ {
						k := c.Load8(entryKey(n, j+1))
						v := c.Load8(entryVal(n, j+1))
						c.Store8(entryKey(n, j), k)
						c.Store8(entryVal(n, j), v)
						c.Persist(entryKey(n, j), entrySize)
					}
					c.Store8(n+offHeader, packHeader(true, count-1))
					c.Persist(n+offHeader, 8)
					return
				}
			}
			return
		}
		child := c.Load8(n + offNext)
		for i := 0; i < count; i++ {
			k := c.Load8(entryKey(n, i))
			if key < k {
				break
			}
			child = c.Load8(entryVal(n, i))
		}
		n = child
	}
}

// ValidateCrash walks the persistent image from the persisted root and
// reports corruption of two kinds: structural tears (an internal node whose
// persisted count admits a nil or duplicated child pointer — bug #1's torn
// split) and silent data loss (keys reachable in the pre-crash volatile
// tree that the persistent image cannot reach — bug #2's unpersisted root
// swap orphans entire subtrees).
func (t *Tree) ValidateCrash(p *pmem.Pool) []string {
	var out []string

	// Silent data loss: compare reachable leaf keys in both views.
	volatileKeys := t.countKeys(p.Load8, p.Load8(t.meta))
	persistKeys := t.countKeys(p.ReadPersistent8, p.ReadPersistent8(t.meta))
	if persistKeys < volatileKeys {
		out = append(out, fmt.Sprintf(
			"silent data loss: %d of %d keys unreachable in the crash image (bugs #1/#2)",
			volatileKeys-persistKeys, volatileKeys))
	}

	root := p.ReadPersistent8(t.meta)
	if root == 0 {
		return append(out, "persisted root pointer is nil")
	}
	var walk func(n uint64, depth int)
	walk = func(n uint64, depth int) {
		if depth > 16 {
			out = append(out, fmt.Sprintf("node %#x: depth bound exceeded (cycle?)", n))
			return
		}
		leaf, count := header(p.ReadPersistent8(n + offHeader))
		if count > fanout {
			out = append(out, fmt.Sprintf("node %#x: persisted count %d exceeds fanout", n, count))
			return
		}
		if leaf {
			return
		}
		child := p.ReadPersistent8(n + offNext)
		seen := map[uint64]bool{}
		if child == 0 {
			out = append(out, fmt.Sprintf("internal node %#x: nil leftmost child", n))
		} else {
			seen[child] = true
			walk(child, depth+1)
		}
		for i := 0; i < count; i++ {
			c := p.ReadPersistent8(entryVal(n, i))
			if c == 0 {
				out = append(out, fmt.Sprintf(
					"internal node %#x entry %d: count persisted but child pointer is nil (torn split, bug #1)", n, i))
				continue
			}
			if seen[c] {
				// A slot whose publish was torn still holds the persisted
				// image of the entry that was shifted out of it.
				out = append(out, fmt.Sprintf(
					"internal node %#x entry %d: duplicate child pointer %#x (torn split, bug #1)", n, i, c))
				continue
			}
			seen[c] = true
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return out
}

// ValidateCrashPoint implements apps.CrashPointValidator: the invariants of
// the persistent image that hold at EVERY device-serialization point of the
// fixed variant, once Setup has completed. The duplicate-child and silent
// data-loss checks stay quiescent-only in ValidateCrash: an in-flight entry
// shift legitimately duplicates a persisted slot, and a correctly-persisting
// insert has a store→persist gap where the volatile view briefly leads.
func (t *Tree) ValidateCrashPoint(p *pmem.Pool) []string {
	var out []string
	root := p.ReadPersistent8(t.meta)
	if root == 0 {
		return []string{"persisted root pointer is nil"}
	}
	var walk func(n uint64, depth int)
	walk = func(n uint64, depth int) {
		if depth > 16 {
			out = append(out, fmt.Sprintf("node %#x: depth bound exceeded (cycle?)", n))
			return
		}
		leaf, count := header(p.ReadPersistent8(n + offHeader))
		if count > fanout {
			out = append(out, fmt.Sprintf("node %#x: persisted count %d exceeds fanout", n, count))
			return
		}
		if leaf {
			return
		}
		child := p.ReadPersistent8(n + offNext)
		if child == 0 {
			out = append(out, fmt.Sprintf("internal node %#x: nil leftmost child", n))
		} else {
			walk(child, depth+1)
		}
		for i := 0; i < count; i++ {
			c := p.ReadPersistent8(entryVal(n, i))
			if c == 0 {
				out = append(out, fmt.Sprintf(
					"internal node %#x entry %d: count persisted but child pointer is nil (torn split, bug #1)", n, i))
				continue
			}
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return out
}

// RecoveryWalk traverses the attached tree through instrumented loads — the
// hardened recovery pass. Instead of blindly trusting persisted pointers
// (and looping forever on a nil child that aliases the reserved zero page,
// or faulting on garbage), it bounds the depth and rejects nil children,
// returning an error describing the first inconsistency it meets. Truly
// corrupt pointers that land outside the device still fault (panic), which
// the crash-injection harness converts into an inconsistent verdict.
func (t *Tree) RecoveryWalk(c *pmrt.Ctx) error {
	root := c.Load8(t.meta)
	if root == 0 {
		return fmt.Errorf("recovery: nil root pointer")
	}
	return t.recWalk(c, root, 0)
}

func (t *Tree) recWalk(c *pmrt.Ctx, n uint64, depth int) error {
	if depth > 16 {
		return fmt.Errorf("recovery: depth bound exceeded at node %#x (cycle?)", n)
	}
	leaf, count := header(c.Load8(n + offHeader))
	if count > fanout {
		return fmt.Errorf("recovery: node %#x count %d exceeds fanout", n, count)
	}
	if leaf {
		return nil
	}
	child := c.Load8(n + offNext)
	if child == 0 {
		return fmt.Errorf("recovery: internal node %#x has nil leftmost child", n)
	}
	if err := t.recWalk(c, child, depth+1); err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		ch := c.Load8(entryVal(n, i))
		if ch == 0 {
			return fmt.Errorf("recovery: torn split — node %#x entry %d has nil child", n, i)
		}
		if err := t.recWalk(c, ch, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// countKeys walks the tree through the given memory view, counting reachable
// leaf entries. Nil children (torn splits) are skipped — they are reported
// separately.
func (t *Tree) countKeys(read func(uint64) uint64, root uint64) int {
	if root == 0 {
		return 0
	}
	n := 0
	var walk func(node uint64, depth int)
	walk = func(node uint64, depth int) {
		if node == 0 || depth > 16 {
			return
		}
		leaf, count := header(read(node + offHeader))
		if count > fanout {
			return
		}
		if leaf {
			n += count
			return
		}
		walk(read(node+offNext), depth+1)
		for i := 0; i < count; i++ {
			walk(read(entryVal(node, i)), depth+1)
		}
	}
	walk(root, 0)
	return n
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "Fast-Fair",
		Factory: New,
		Bugs: []apps.BugSpec{
			{
				ID: 1, New: false,
				StoreFunc: "fastfair.(*Tree).publishSibling", LoadFunc: "fastfair.(*Tree).lookupChild",
				Description: "load unpersisted pointer",
			},
			{
				ID: 2, New: true,
				StoreFunc: "fastfair.(*Tree).growRoot", LoadFunc: "fastfair.(*Tree).loadRoot",
				Description: "load unpersisted pointer",
			},
		},
		// Lock-free readers against properly-persisted writer stores: genuine
		// races tolerated by Fast-Fair's ordered-store design. Node
		// initialization (newNode) is deliberately absent: reports against
		// init stores are false positives the IRH exists to prune.
		Benign: apps.Pairs(
			[]string{
				"fastfair.(*Tree).insertLeaf", "fastfair.(*Tree).splitLeaf",
				"fastfair.(*Tree).splitInternal", "fastfair.(*Tree).insertIntoParent",
				"fastfair.(*Tree).publishSibling", "fastfair.(*Tree).growRoot",
				"fastfair.(*Tree).Delete",
			},
			[]string{
				"fastfair.(*Tree).lookupChild", "fastfair.(*Tree).searchLeaf",
				"fastfair.(*Tree).loadRoot", "fastfair.(*Tree).Get",
			},
		),
		Spec: ycsb.DefaultSpec,
		Recover: func(c *pmrt.Ctx, prev apps.App, fixed bool) error {
			return Attach(c.Runtime(), prev.(*Tree).Meta(), fixed).RecoveryWalk(c)
		},
	})
}
