package fastfair

import (
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

func entry(t *testing.T) *apps.Entry {
	t.Helper()
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFunctional checks the tree is a correct ordered map under a
// single-threaded workload.
func TestFunctional(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tree := New(rt, true).(*Tree)
	err := rt.Run(func(c *pmrt.Ctx) {
		tree.Setup(c)
		ref := map[uint64]uint64{}
		for i := uint64(0); i < 500; i++ {
			k := (i * 2654435761) % 1000
			tree.Insert(c, k, i)
			ref[k] = i
		}
		for k, v := range ref {
			got, ok := tree.Get(c, k)
			if !ok || got != v {
				t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
			}
		}
		if _, ok := tree.Get(c, 99999); ok {
			t.Fatal("Get of absent key succeeded")
		}
		// Delete half the keys.
		i := 0
		for k := range ref {
			if i%2 == 0 {
				tree.Delete(c, k)
				delete(ref, k)
			}
			i++
		}
		for k, v := range ref {
			if got, ok := tree.Get(c, k); !ok || got != v {
				t.Fatalf("after deletes Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentFunctional runs the YCSB mix with 8 threads and verifies
// inserted keys are retrievable afterwards.
func TestConcurrentFunctional(t *testing.T) {
	e := entry(t)
	w := ycsb.Generate(ycsb.DefaultSpec(2000), 7)
	rt, err := apps.Run(e, w, apps.RunConfig{Seed: 7, Fixed: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Trace.Len() == 0 {
		t.Fatal("no trace recorded")
	}
}

// TestDetectsBugs: HawkSet finds both Table 2 Fast-Fair bugs on a workload
// big enough to grow the tree.
func TestDetectsBugs(t *testing.T) {
	e := entry(t)
	res, err := apps.Detect(e, 2000, 3, apps.RunConfig{Seed: 3}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := apps.FoundBugs(e, res)
	if len(found) != 2 || found[0] != 1 || found[1] != 2 {
		t.Fatalf("FoundBugs = %v, want [1 2]; reports:\n%s", found, dump(res))
	}
}

// TestFixedVariantClean: the fixed tree yields no malign reports.
func TestFixedVariantClean(t *testing.T) {
	e := entry(t)
	res, err := apps.Detect(e, 2000, 3, apps.RunConfig{Seed: 3, Fixed: true}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if found := apps.FoundBugs(e, res); len(found) != 0 {
		t.Fatalf("fixed variant still reports bugs %v:\n%s", found, dump(res))
	}
	bd := apps.Breakdown(e, res)
	if bd[apps.Malign] != 0 {
		t.Fatalf("fixed variant has %d malign reports:\n%s", bd[apps.Malign], dump(res))
	}
}

// TestBenignRacesReported: the lock-free reads still yield benign reports
// (§7: lockset analysis fundamentally reports lock-free readers).
func TestBenignRacesReported(t *testing.T) {
	e := entry(t)
	res, err := apps.Detect(e, 2000, 3, apps.RunConfig{Seed: 3, Fixed: true}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bd := apps.Breakdown(e, res)
	if bd[apps.Benign] == 0 {
		t.Fatalf("no benign reports from lock-free reads:\n%s", dump(res))
	}
}

// TestNoFalsePositivesWithIRH: with the IRH on, every Fast-Fair report
// classifies as malign or benign (Table 4 row: FP=0 after IRH).
func TestNoFalsePositivesWithIRH(t *testing.T) {
	e := entry(t)
	res, err := apps.Detect(e, 2000, 3, apps.RunConfig{Seed: 3}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bd := apps.Breakdown(e, res)
	if bd[apps.FalsePositive] != 0 {
		t.Fatalf("IRH left %d false positives:\n%s", bd[apps.FalsePositive], dump(res))
	}
}

// TestIRHPrunesReports: disabling the IRH yields strictly more reports, all
// of the extras being false positives (Table 4).
func TestIRHPrunesReports(t *testing.T) {
	e := entry(t)
	on, err := apps.Detect(e, 2000, 3, apps.RunConfig{Seed: 3}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := hawkset.DefaultConfig()
	cfg.IRH = false
	off, err := apps.Detect(e, 2000, 3, apps.RunConfig{Seed: 3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(off.Reports) <= len(on.Reports) {
		t.Fatalf("IRH off: %d reports, on: %d — expected pruning", len(off.Reports), len(on.Reports))
	}
	// The IRH must not prune malign races.
	if f := apps.FoundBugs(e, on); len(f) != 2 {
		t.Fatalf("IRH pruned malign bugs: %v", f)
	}
}

// TestSmallWorkloadMissesRareBug: with a tiny workload that never grows the
// tree past one level, bug #2's branch is never covered — HawkSet needs
// coverage, not luck (§5.6).
func TestSmallWorkloadMissesRareBug(t *testing.T) {
	e := entry(t)
	spec := ycsb.DefaultSpec(4)
	spec.LoadCount = 2
	spec.KeySpace = 4
	w := ycsb.Generate(spec, 1)
	rt, err := apps.Run(e, w, apps.RunConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := hawkset.Analyze(rt.Trace, hawkset.DefaultConfig())
	for _, id := range apps.FoundBugs(e, res) {
		if id == 2 {
			t.Fatal("bug #2 reported without tree growth — coverage accounting broken")
		}
	}
}

// TestCrashLosesUnpersistedSplit demonstrates bug #1 end to end: force a
// split, crash, and observe the sibling pointer missing from the post-crash
// image while it was visible before the crash.
func TestCrashLosesUnpersistedSplit(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tree := New(rt, false).(*Tree)
	var rootBefore uint64
	err := rt.Run(func(c *pmrt.Ctx) {
		tree.Setup(c)
		for i := uint64(0); i < fanout+1; i++ { // one split + root growth
			tree.Insert(c, i, i)
		}
		rootBefore = c.Load8(tree.meta)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Volatile view saw the new root...
	rootAfterCrash := rt.Pool.ReadPersistent8(tree.meta)
	if rootAfterCrash == rootBefore {
		t.Fatal("buggy growRoot unexpectedly persisted the root pointer")
	}
}

func dump(res *hawkset.Result) string {
	s := ""
	for _, r := range res.Reports {
		s += r.String() + "\n"
	}
	return s
}

// TestScan: range scans return sorted results and witness bug #1's
// unpersisted sibling pointers.
func TestScan(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tree := New(rt, true).(*Tree)
	err := rt.Run(func(c *pmrt.Ctx) {
		tree.Setup(c)
		for i := uint64(0); i < 100; i++ {
			tree.Insert(c, i*2, i)
		}
		got := tree.Scan(c, 50, 10)
		if len(got) != 10 {
			t.Fatalf("scan returned %d pairs, want 10", len(got))
		}
		prev := uint64(0)
		for i, kv := range got {
			if kv[0] < 50 {
				t.Fatalf("scan returned key %d below start", kv[0])
			}
			if i > 0 && kv[0] <= prev {
				t.Fatalf("scan out of order: %d after %d", kv[0], prev)
			}
			if kv[1] != kv[0]/2 {
				t.Fatalf("scan value mismatch: key %d value %d", kv[0], kv[1])
			}
			prev = kv[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScanWorkloadDetectsBug1: a scan-heavy (YCSB-E style) workload also
// exposes bug #1 — scans traverse the unpersisted sibling pointers.
func TestScanWorkloadDetectsBug1(t *testing.T) {
	e := entry(t)
	spec := ycsb.DefaultSpec(2000)
	spec.Mix = ycsb.ScanMix()
	w := ycsb.Generate(spec, 5)
	rt, err := apps.Run(e, w, apps.RunConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := hawkset.Analyze(rt.Trace, hawkset.DefaultConfig())
	found := apps.FoundBugs(e, res)
	has1 := false
	for _, id := range found {
		if id == 1 {
			has1 = true
		}
	}
	if !has1 {
		t.Fatalf("scan workload missed bug #1; found %v", found)
	}
}

// TestCrashRecovery is the full crash/recovery cycle: run, reboot the
// device (volatile domain lost), attach a fresh tree to the surviving
// image, and read it back. The fixed variant recovers every key —
// Fast-Fair's headline design property ("atomic insertions without the need
// for a recovery process"); the buggy variant has lost data.
func TestCrashRecovery(t *testing.T) {
	for _, fixed := range []bool{true, false} {
		rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
		tree := New(rt, fixed).(*Tree)
		const n = 300
		err := rt.Run(func(c *pmrt.Ctx) {
			tree.Setup(c)
			for i := uint64(0); i < n; i++ {
				tree.Insert(c, i, i+7)
			}
		})
		if err != nil {
			t.Fatal(err)
		}

		// Crash + reboot: cache contents are gone.
		rt.Pool.Reboot()
		rt2 := pmrt.NewWithPool(pmrt.Config{Seed: 2, PoolSize: 64 << 20}, rt.Pool, rt.Heap)
		recovered := Attach(rt2, tree.Meta(), fixed)
		missing := 0
		err = rt2.Run(func(c *pmrt.Ctx) {
			for i := uint64(0); i < n; i++ {
				if v, ok := recovered.Get(c, i); !ok || v != i+7 {
					missing++
				}
			}
			// The recovered tree must accept new writes.
			recovered.Insert(c, 1<<40, 99)
			if v, ok := recovered.Get(c, 1<<40); !ok || v != 99 {
				t.Error("recovered tree rejects new inserts")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if fixed && missing != 0 {
			t.Fatalf("fixed variant lost %d/%d keys across the crash", missing, n)
		}
		if !fixed && missing == 0 {
			t.Fatal("buggy variant lost nothing across the crash — bugs #1/#2 not seeded")
		}
	}
}

// TestDeepTreeSplits drives enough ascending inserts to force internal-node
// splits and repeated root growth (three levels), then verifies every key
// and ordered scans across the whole key range.
func TestDeepTreeSplits(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tree := New(rt, true).(*Tree)
	const n = 2000 // >> fanout^2: forces splitInternal and multiple growths
	err := rt.Run(func(c *pmrt.Ctx) {
		tree.Setup(c)
		for i := uint64(0); i < n; i++ {
			tree.Insert(c, i, i^0xabc)
		}
		for i := uint64(0); i < n; i++ {
			if v, ok := tree.Get(c, i); !ok || v != i^0xabc {
				t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
			}
		}
		// A full scan from 0 must return all keys in order.
		got := tree.Scan(c, 0, n)
		if len(got) != n {
			t.Fatalf("full scan returned %d/%d", len(got), n)
		}
		for i, kv := range got {
			if kv[0] != uint64(i) {
				t.Fatalf("scan[%d] = key %d", i, kv[0])
			}
		}
		// Descending inserts over a second range exercise pos-0 shifts.
		for i := uint64(0); i < 200; i++ {
			k := 1<<20 - i
			tree.Insert(c, k, k)
		}
		for i := uint64(0); i < 200; i++ {
			k := 1<<20 - i
			if v, ok := tree.Get(c, k); !ok || v != k {
				t.Fatalf("descending Get(%d) = (%d,%v)", k, v, ok)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The fixed tree's crash image must hold everything.
	if viol := tree.ValidateCrash(rt.Pool); len(viol) != 0 {
		t.Fatalf("fixed deep tree corrupt: %v", viol)
	}
}
