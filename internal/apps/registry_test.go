package apps_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/ycsb"

	// Register every evaluated application.
	_ "hawkset/internal/apps/apex"
	_ "hawkset/internal/apps/fastfair"
	_ "hawkset/internal/apps/madfs"
	_ "hawkset/internal/apps/memcachedpm"
	_ "hawkset/internal/apps/part"
	_ "hawkset/internal/apps/pclht"
	_ "hawkset/internal/apps/pmasstree"
	_ "hawkset/internal/apps/turbohash"
	_ "hawkset/internal/apps/wipe"
)

// detectOps is the per-app workload size used by the detection tests: big
// enough to cover every seeded bug's trigger (tree growth, rehash, bucket
// fill, buffer expansion), small enough to keep the suite fast.
var detectOps = map[string]int{
	"Fast-Fair":      2000,
	"TurboHash":      20000,
	"P-CLHT":         3000,
	"P-Masstree":     2000,
	"P-ART":          1000,
	"MadFS":          1000,
	"MadFS-POSIX":    3000,
	"Memcached-pmem": 3000,
	"WIPE":           3000,
	"APEX":           2000,
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"Fast-Fair", "TurboHash", "P-CLHT", "P-Masstree", "P-ART", "MadFS", "MadFS-POSIX", "Memcached-pmem", "WIPE", "APEX"}
	var got []string
	for _, e := range apps.All() {
		got = append(got, e.Name)
	}
	sort.Strings(want)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registry = %v, want %v (Table 1)", got, want)
	}
}

func TestRegistryBugNumbering(t *testing.T) {
	// The union of non-extension registered bugs must be exactly the paper's
	// Table 2: bugs #1..#20 with the right new/Durinn flags. Extension bugs
	// (the filesystem scenarios) number upward from #21.
	seen := map[int]apps.BugSpec{}
	ext := map[int]apps.BugSpec{}
	for _, e := range apps.All() {
		for _, b := range e.Bugs {
			if b.Extension {
				ext[b.ID] = b
				continue
			}
			seen[b.ID] = b
		}
	}
	if len(seen) != 20 {
		t.Fatalf("registered %d distinct Table 2 bugs, want 20", len(seen))
	}
	for _, id := range []int{21, 22} { // the filesystem extension bugs
		if _, ok := ext[id]; !ok {
			t.Errorf("extension bug #%d missing", id)
		}
	}
	for id := range ext {
		if id <= 20 {
			t.Errorf("extension bug #%d collides with the Table 2 numbering", id)
		}
	}
	for id := 1; id <= 20; id++ {
		if _, ok := seen[id]; !ok {
			t.Errorf("bug #%d missing", id)
		}
	}
	for _, id := range []int{2, 3, 16, 17, 18, 19, 20} { // the 7 new bugs
		if !seen[id].New {
			t.Errorf("bug #%d should be flagged new", id)
		}
	}
	for _, id := range []int{5, 6, 7, 8, 9} { // the Durinn-overlapping bugs
		if !seen[id].Durinn {
			t.Errorf("bug #%d should be flagged Durinn-overlapping", id)
		}
	}
}

// TestDetectAllSeededBugs is the reproduction's Table 2 backbone: for every
// application, one instrumented execution plus one analysis finds every
// seeded bug.
func TestDetectAllSeededBugs(t *testing.T) {
	for _, e := range apps.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := apps.Detect(e, detectOps[e.Name], 42, apps.RunConfig{Seed: 42}, hawkset.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			var want []int
			seen := map[int]bool{}
			for _, b := range e.Bugs {
				if !seen[b.ID] {
					want = append(want, b.ID)
					seen[b.ID] = true
				}
			}
			sort.Ints(want)
			got := apps.FoundBugs(e, res)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("FoundBugs = %v, want %v\nreports:\n%s", got, want, dump(res))
			}
		})
	}
}

// TestFixedVariantsClean: the repaired variants produce no malign reports
// and no bug matches.
func TestFixedVariantsClean(t *testing.T) {
	for _, e := range apps.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := apps.Detect(e, detectOps[e.Name], 42, apps.RunConfig{Seed: 42, Fixed: true}, hawkset.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if found := apps.FoundBugs(e, res); len(found) != 0 {
				t.Fatalf("fixed variant reports bugs %v:\n%s", found, dump(res))
			}
			if bd := apps.Breakdown(e, res); bd[apps.Malign] != 0 {
				t.Fatalf("fixed variant has %d malign reports:\n%s", bd[apps.Malign], dump(res))
			}
		})
	}
}

// TestIRHNeverPrunesMalign: every seeded bug found without the IRH is also
// found with it (§5.4: "the IRH removed a large fraction of False Positives
// without removing any Malign persistency-induced races").
func TestIRHNeverPrunesMalign(t *testing.T) {
	for _, e := range apps.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			noIRH := hawkset.DefaultConfig()
			noIRH.IRH = false
			off, err := apps.Detect(e, detectOps[e.Name], 42, apps.RunConfig{Seed: 42}, noIRH)
			if err != nil {
				t.Fatal(err)
			}
			on, err := apps.Detect(e, detectOps[e.Name], 42, apps.RunConfig{Seed: 42}, hawkset.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if got, want := apps.FoundBugs(e, on), apps.FoundBugs(e, off); !reflect.DeepEqual(got, want) {
				t.Fatalf("IRH changed found bugs: %v -> %v", want, got)
			}
			if len(on.Reports) > len(off.Reports) {
				t.Fatalf("IRH increased reports: %d -> %d", len(off.Reports), len(on.Reports))
			}
		})
	}
}

// TestMadFSOnlyBenign: MadFS's relaxed guarantees mean all reports are
// benign (§5.1).
func TestMadFSOnlyBenign(t *testing.T) {
	e, err := apps.Lookup("MadFS")
	if err != nil {
		t.Fatal(err)
	}
	res, err := apps.Detect(e, 1000, 42, apps.RunConfig{Seed: 42}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bd := apps.Breakdown(e, res)
	if bd[apps.Malign] != 0 {
		t.Fatalf("MadFS has malign reports:\n%s", dump(res))
	}
	if bd[apps.Benign] == 0 {
		t.Fatal("MadFS produced no benign reports — the relaxed-contract races went undetected")
	}
}

// TestMemcachedReuseDefeatsIRH: the slab allocator's memory reuse leaves
// false positives the IRH cannot prune (§5.4, Table 4's memcached row).
func TestMemcachedReuseDefeatsIRH(t *testing.T) {
	e, err := apps.Lookup("Memcached-pmem")
	if err != nil {
		t.Fatal(err)
	}
	res, err := apps.Detect(e, 5000, 42, apps.RunConfig{Seed: 42}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bd := apps.Breakdown(e, res)
	if bd[apps.FalsePositive] == 0 {
		t.Fatalf("expected surviving false positives from PM reuse; breakdown = %v\n%s", bd, dump(res))
	}
}

// TestDeterministicDetection: same seed ⇒ identical reports.
func TestDeterministicDetection(t *testing.T) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	a, err := apps.Detect(e, 1000, 9, apps.RunConfig{Seed: 9}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := apps.Detect(e, 1000, 9, apps.RunConfig{Seed: 9}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dump(a) != dump(b) {
		t.Fatalf("same seed, different reports:\n%s\nvs\n%s", dump(a), dump(b))
	}
}

// TestEADRCollapsesWindows: with the persistent domain extended to the cache
// (eADR), stores persist on visibility and the missing-persist bugs vanish —
// the ablation anchoring the §2.1 discussion.
func TestEADRCollapsesWindows(t *testing.T) {
	e, err := apps.Lookup("P-Masstree")
	if err != nil {
		t.Fatal(err)
	}
	w := ycsb.Generate(e.Spec(1000), 42)
	rt, err := apps.Run(e, w, apps.RunConfig{Seed: 42, EADR: true})
	if err != nil {
		t.Fatal(err)
	}
	res := hawkset.Analyze(rt.Trace, hawkset.DefaultConfig())
	// The trace still shows no flushes taking effect, but the analysis works
	// on the trace alone: windows close only on overwrite. What must vanish
	// under eADR is the *observable* dirty state on the device.
	if rt.Pool.DirtyLines() != 0 {
		t.Fatalf("eADR device has %d dirty lines", rt.Pool.DirtyLines())
	}
	_ = res
}

func TestMaxOpsCap(t *testing.T) {
	e, err := apps.Lookup("P-ART")
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxOps != 1000 {
		t.Fatalf("P-ART MaxOps = %d, want the paper's 1k cap", e.MaxOps)
	}
}

func dump(res *hawkset.Result) string {
	s := ""
	for _, r := range res.Reports {
		s += fmt.Sprintf("%s [unpersisted=%v]\n", r.String(), r.Unpersisted)
	}
	return s
}

// TestCrashValidation closes the loop from race report to demonstrated
// corruption: applications with crash validators show structural violations
// in the buggy variant's persistent image and a clean image when fixed.
func TestCrashValidation(t *testing.T) {
	for _, name := range []string{"Fast-Fair", "TurboHash", "P-Masstree", "WIPE", "P-CLHT", "P-ART", "Memcached-pmem", "MadFS-POSIX"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e, err := apps.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			buggy, err := apps.RunAndValidate(e, detectOps[name], 42, apps.RunConfig{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if len(buggy) == 0 {
				t.Fatal("buggy variant left a structurally consistent crash image — seeded bug has no post-crash effect")
			}
			fixed, err := apps.RunAndValidate(e, detectOps[name], 42, apps.RunConfig{Seed: 42, Fixed: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(fixed) != 0 {
				t.Fatalf("fixed variant's crash image is corrupt:\n%v", fixed)
			}
		})
	}
}

// TestCrashValidationUnsupported: apps without validators report a clear
// error instead of a false verdict.
func TestCrashValidationUnsupported(t *testing.T) {
	e, err := apps.Lookup("APEX")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := apps.RunAndValidate(e, 100, 1, apps.RunConfig{Seed: 1}); err == nil {
		t.Fatal("expected an unsupported error for APEX")
	}
}
