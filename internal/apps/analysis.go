package apps

import (
	"sort"

	"hawkset/internal/hawkset"
	"hawkset/internal/ycsb"
)

// Detect runs a generated workload against the application and analyzes the
// trace with HawkSet, returning the analysis result. It is the
// one-call-per-application path the experiments and tests share.
func Detect(e *Entry, opCount int, seed int64, runCfg RunConfig, cfg hawkset.Config) (*hawkset.Result, error) {
	if e.MaxOps > 0 && opCount > e.MaxOps {
		opCount = e.MaxOps
	}
	w := ycsb.Generate(e.Spec(opCount), seed)
	rt, err := Run(e, w, runCfg)
	if err != nil {
		return nil, err
	}
	return hawkset.Analyze(rt.Trace, cfg), nil
}

// FoundBugs maps analysis reports back to the application's registered
// Table 2 bugs, returning the sorted IDs of the bugs with at least one
// matching report.
func FoundBugs(e *Entry, res *hawkset.Result) []int {
	found := map[int]bool{}
	for _, r := range res.Reports {
		for _, b := range e.Bugs {
			if b.Matches(r) {
				found[b.ID] = true
			}
		}
	}
	var ids []int // nil when no bug matched, for direct DeepEqual use
	for id := range found {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Breakdown tallies reports per Table 4 class.
func Breakdown(e *Entry, res *hawkset.Result) map[Class]int {
	out := map[Class]int{}
	for _, r := range res.Reports {
		out[e.Classify(r)]++
	}
	return out
}
