// Package madfs reimplements MadFS (Zhong et al., FAST'23), the user-space
// PM filesystem of the paper's evaluation: each file is a compact,
// crash-consistent log of 8-byte entries mapping virtual blocks to physical
// blocks, updated lock-free (Table 1), with an explicit fsync contract.
//
// MadFS carries no malign seeded defects: the paper found several
// persistency-induced races in it but concluded all are tolerated by the
// filesystem's relaxed guarantees — data is only durable after an explicit
// fsync, so readers observing unpersisted mappings are within contract
// (§5.1). The registry therefore lists only benign pairs, and HawkSet's
// reports against MadFS demonstrate how the tool behaves on an application
// with different crash-consistency guarantees.
package madfs

import (
	"hawkset/internal/apps"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// File layout (PM):
//
//	blockTable: nBlocks × uint64 (virtual block → physical block address)
//	logHead:    uint64 (count of committed log entries)
//	log:        capLog × uint64 (packed: vblock<<32 | pblockIndex)
//
// Data blocks are 4 KB and allocated from the PM heap.
const (
	blockSize = 4096
	nBlocks   = 1024 // 4 MB file
	capLog    = 1 << 16
)

// freeList recycles superseded copy-on-write blocks, deduplicating on
// enqueue: a double-enqueued block would later be handed to two writers at
// once — aliasing one physical block under two virtual blocks. Dedup guards
// the list itself; callers must still only push blocks they actually
// displaced (see FS.shadow), since a block that was recycled, popped and
// republished is absent from the queue yet live. The volatile list lives
// under the cooperative scheduler, so no extra locking is needed.
type freeList struct {
	blocks []uint64
	queued map[uint64]bool
}

// push enqueues a block for reuse unless it is zero or already queued;
// it reports whether the block was actually enqueued.
func (l *freeList) push(addr uint64) bool {
	if addr == 0 || l.queued[addr] {
		return false
	}
	if l.queued == nil {
		l.queued = make(map[uint64]bool)
	}
	l.queued[addr] = true
	l.blocks = append(l.blocks, addr)
	return true
}

// pop dequeues the most recently recycled block, if any.
func (l *freeList) pop() (uint64, bool) {
	n := len(l.blocks)
	if n == 0 {
		return 0, false
	}
	a := l.blocks[n-1]
	l.blocks = l.blocks[:n-1]
	delete(l.queued, a)
	return a, true
}

// FS is a single-file MadFS instance (the benchmark uses one shared file).
type FS struct {
	rt         *pmrt.Runtime
	blockTable uint64
	logHead    uint64
	logBase    uint64
	fixed      bool
	// free recycles superseded copy-on-write blocks, deduplicated on
	// enqueue (see freeList).
	free freeList
	// shadow mirrors the block table in volatile memory. publishBlock
	// updates it in the same scheduler step as the table store, so it
	// answers "which block did this publish displace" exactly — the PM load
	// of the old mapping is a separate scheduler step, and under racing
	// writers its value can be stale by publish time. Recycling a stale
	// value frees a block that a concurrent writer already recycled and
	// republished, aliasing one physical block under two virtual blocks.
	shadow map[uint64]uint64
}

// New creates a MadFS instance. There are no seeded defects; fixed selects
// eager persistence of the block table (a stricter-than-contract mode that
// removes even the benign reports).
func New(rt *pmrt.Runtime, fixed bool) apps.App {
	return &FS{rt: rt, fixed: fixed}
}

// Name implements apps.App.
func (f *FS) Name() string { return "MadFS" }

// Setup allocates the file's metadata structures.
func (f *FS) Setup(c *pmrt.Ctx) {
	f.blockTable = c.Alloc(nBlocks * 8)
	f.logHead = c.Alloc(8)
	f.logBase = c.Alloc(capLog * 8)
	c.Persist(f.blockTable, 8)
	c.Persist(f.logHead, 8)
}

// Apply implements apps.App.
func (f *FS) Apply(c *pmrt.Ctx, op ycsb.Op) {
	switch op.Kind {
	case ycsb.OpWrite:
		f.Write(c, op.Off, op.Len, op.Value)
	default:
		f.Read(c, op.Off, op.Len)
	}
}

// Write performs a copy-on-write block write: new data block, persisted,
// then an atomic 8-byte log append publishes it. The block-table update is
// deliberately left unpersisted — MadFS's contract defers durability to
// fsync — which is the source of the benign reports.
func (f *FS) Write(c *pmrt.Ctx, off, length, val uint64) {
	vblock := (off / blockSize) % nBlocks
	// Copy-on-write data block, persisted before publication. The benchmark
	// writes one word per 512-byte sector (the data content is irrelevant to
	// the races; flushing only the touched lines keeps traces compact).
	var pblock uint64
	if a, ok := f.free.pop(); ok {
		pblock = a
	} else {
		pblock = c.Alloc(blockSize)
	}
	for i := uint64(0); i < length && i < blockSize; i += 512 {
		c.Store8(pblock+i, val+i)
		c.Flush(pblock + i)
	}
	c.Fence()

	// Atomic 8-byte log append (the crash-consistent commit point). The log
	// is a ring; real MadFS compacts it at fsync.
	head := c.Load8(f.logHead)
	c.NTStore8(f.logBase+(head%capLog)*8, vblock<<32|pblock>>12)
	c.Fence()
	c.Store8(f.logHead, head+1)
	c.Persist(f.logHead, 8)

	// Volatile block-table update: visible to concurrent reads, durable only
	// after Fsync replays the log. The superseded block returns to the free
	// pool (MadFS garbage-collects overwritten blocks), so the device
	// footprint stays bounded by the file size. The table load is MadFS's
	// read of the mapping being superseded (and a load side of the benign
	// write-vs-write reports); recycling keys off the shadow table instead,
	// because under racing publishes the loaded value can be stale.
	c.Load8(f.blockTable + vblock*8)
	f.free.push(f.publishBlock(c, vblock, pblock))
}

// publishBlock installs the new physical block in the block table without
// persisting it — within MadFS's fsync contract, and the store side of the
// benign reports. It returns the physical block the store displaced, taken
// from the volatile shadow in the same scheduler step as the store (no
// device op separates them), so the answer is exact even under racing
// publishes to the same virtual block.
func (f *FS) publishBlock(c *pmrt.Ctx, vblock, pblock uint64) (old uint64) {
	c.Store8(f.blockTable+vblock*8, pblock)
	if f.shadow == nil {
		f.shadow = make(map[uint64]uint64)
	}
	old = f.shadow[vblock]
	f.shadow[vblock] = pblock
	if f.fixed {
		c.Persist(f.blockTable+vblock*8, 8)
	}
	return old
}

// Read resolves the block mapping lock-free and reads the data.
func (f *FS) Read(c *pmrt.Ctx, off, length uint64) uint64 {
	vblock := (off / blockSize) % nBlocks
	pblock := f.lookupBlock(c, vblock)
	if pblock == 0 {
		return 0
	}
	sum := uint64(0)
	for i := uint64(0); i < length && i < blockSize; i += 1024 {
		sum += c.Load8(pblock + i)
	}
	return sum
}

// lookupBlock reads the block table lock-free (the load side of the benign
// reports).
func (f *FS) lookupBlock(c *pmrt.Ctx, vblock uint64) uint64 {
	return c.Load8(f.blockTable + vblock*8)
}

// Fsync persists the block table, honoring the explicit-durability
// contract.
func (f *FS) Fsync(c *pmrt.Ctx) {
	c.Persist(f.blockTable, nBlocks*8)
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "MadFS",
		Factory: New,
		Bugs:    nil, // all reported races are benign (§5.1)
		// The write-only benchmark (§5) races writers against writers: the
		// lock-free log-head updates and the deferred block-table stores are
		// read both by other writers and by reads. All within the fsync
		// contract.
		Benign: apps.Pairs(
			[]string{"madfs.(*FS).publishBlock", "madfs.(*FS).Write"},
			[]string{"madfs.(*FS).lookupBlock", "madfs.(*FS).Read", "madfs.(*FS).Write"},
		),
		Spec:     ycsb.FileSpec,
		PoolSize: 64 << 20, // live blocks are bounded by the file size
	})
}
