// Package madfs reimplements MadFS (Zhong et al., FAST'23), the user-space
// PM filesystem of the paper's evaluation: each file is a compact,
// crash-consistent log of 8-byte entries mapping virtual blocks to physical
// blocks, updated lock-free (Table 1), with an explicit fsync contract.
//
// MadFS carries no malign seeded defects: the paper found several
// persistency-induced races in it but concluded all are tolerated by the
// filesystem's relaxed guarantees — data is only durable after an explicit
// fsync, so readers observing unpersisted mappings are within contract
// (§5.1). The registry therefore lists only benign pairs, and HawkSet's
// reports against MadFS demonstrate how the tool behaves on an application
// with different crash-consistency guarantees.
package madfs

import (
	"hawkset/internal/apps"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// File layout (PM):
//
//	blockTable: nBlocks × uint64 (virtual block → physical block address)
//	logHead:    uint64 (count of committed log entries)
//	log:        capLog × uint64 (packed: vblock<<32 | pblockIndex)
//
// Data blocks are 4 KB and allocated from the PM heap.
const (
	blockSize = 4096
	nBlocks   = 1024 // 4 MB file
	capLog    = 1 << 16
)

// FS is a single-file MadFS instance (the benchmark uses one shared file).
type FS struct {
	rt         *pmrt.Runtime
	blockTable uint64
	logHead    uint64
	logBase    uint64
	fixed      bool
	// freeBlocks recycles superseded copy-on-write blocks. Racing writers to
	// the same virtual block can enqueue one block twice; MadFS tolerates
	// that the same way it tolerates its other relaxed-contract races, and
	// it only affects scratch data contents, never metadata.
	freeBlocks []uint64
}

// New creates a MadFS instance. There are no seeded defects; fixed selects
// eager persistence of the block table (a stricter-than-contract mode that
// removes even the benign reports).
func New(rt *pmrt.Runtime, fixed bool) apps.App {
	return &FS{rt: rt, fixed: fixed}
}

// Name implements apps.App.
func (f *FS) Name() string { return "MadFS" }

// Setup allocates the file's metadata structures.
func (f *FS) Setup(c *pmrt.Ctx) {
	f.blockTable = c.Alloc(nBlocks * 8)
	f.logHead = c.Alloc(8)
	f.logBase = c.Alloc(capLog * 8)
	c.Persist(f.blockTable, 8)
	c.Persist(f.logHead, 8)
}

// Apply implements apps.App.
func (f *FS) Apply(c *pmrt.Ctx, op ycsb.Op) {
	switch op.Kind {
	case ycsb.OpWrite:
		f.Write(c, op.Off, op.Len, op.Value)
	default:
		f.Read(c, op.Off, op.Len)
	}
}

// Write performs a copy-on-write block write: new data block, persisted,
// then an atomic 8-byte log append publishes it. The block-table update is
// deliberately left unpersisted — MadFS's contract defers durability to
// fsync — which is the source of the benign reports.
func (f *FS) Write(c *pmrt.Ctx, off, length, val uint64) {
	vblock := (off / blockSize) % nBlocks
	// Copy-on-write data block, persisted before publication. The benchmark
	// writes one word per 512-byte sector (the data content is irrelevant to
	// the races; flushing only the touched lines keeps traces compact).
	var pblock uint64
	if n := len(f.freeBlocks); n > 0 {
		pblock = f.freeBlocks[n-1]
		f.freeBlocks = f.freeBlocks[:n-1]
	} else {
		pblock = c.Alloc(blockSize)
	}
	for i := uint64(0); i < length && i < blockSize; i += 512 {
		c.Store8(pblock+i, val+i)
		c.Flush(pblock + i)
	}
	c.Fence()

	// Atomic 8-byte log append (the crash-consistent commit point). The log
	// is a ring; real MadFS compacts it at fsync.
	head := c.Load8(f.logHead)
	c.NTStore8(f.logBase+(head%capLog)*8, vblock<<32|pblock>>12)
	c.Fence()
	c.Store8(f.logHead, head+1)
	c.Persist(f.logHead, 8)

	// Volatile block-table update: visible to concurrent reads, durable only
	// after Fsync replays the log. The superseded block returns to the heap
	// (MadFS garbage-collects overwritten blocks), so the device footprint
	// stays bounded by the file size.
	old := c.Load8(f.blockTable + vblock*8)
	f.publishBlock(c, vblock, pblock)
	if old != 0 {
		f.freeBlocks = append(f.freeBlocks, old)
	}
}

// publishBlock installs the new physical block in the block table without
// persisting it — within MadFS's fsync contract, and the store side of the
// benign reports.
func (f *FS) publishBlock(c *pmrt.Ctx, vblock, pblock uint64) {
	c.Store8(f.blockTable+vblock*8, pblock)
	if f.fixed {
		c.Persist(f.blockTable+vblock*8, 8)
	}
}

// Read resolves the block mapping lock-free and reads the data.
func (f *FS) Read(c *pmrt.Ctx, off, length uint64) uint64 {
	vblock := (off / blockSize) % nBlocks
	pblock := f.lookupBlock(c, vblock)
	if pblock == 0 {
		return 0
	}
	sum := uint64(0)
	for i := uint64(0); i < length && i < blockSize; i += 1024 {
		sum += c.Load8(pblock + i)
	}
	return sum
}

// lookupBlock reads the block table lock-free (the load side of the benign
// reports).
func (f *FS) lookupBlock(c *pmrt.Ctx, vblock uint64) uint64 {
	return c.Load8(f.blockTable + vblock*8)
}

// Fsync persists the block table, honoring the explicit-durability
// contract.
func (f *FS) Fsync(c *pmrt.Ctx) {
	c.Persist(f.blockTable, nBlocks*8)
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "MadFS",
		Factory: New,
		Bugs:    nil, // all reported races are benign (§5.1)
		// The write-only benchmark (§5) races writers against writers: the
		// lock-free log-head updates and the deferred block-table stores are
		// read both by other writers and by reads. All within the fsync
		// contract.
		Benign: apps.Pairs(
			[]string{"madfs.(*FS).publishBlock", "madfs.(*FS).Write"},
			[]string{"madfs.(*FS).lookupBlock", "madfs.(*FS).Read", "madfs.(*FS).Write"},
		),
		Spec:     ycsb.FileSpec,
		PoolSize: 64 << 20, // live blocks are bounded by the file size
	})
}
