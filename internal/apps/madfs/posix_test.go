package madfs

import (
	"strings"
	"testing"

	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
)

// runPFS executes body on a fresh MadFS-POSIX instance and returns the
// runtime and filesystem for post-run inspection.
func runPFS(t *testing.T, fixed bool, body func(c *pmrt.Ctx, fs *PFS)) (*pmrt.Runtime, *PFS) {
	t.Helper()
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	fs := NewPosix(rt, fixed).(*PFS)
	if err := rt.Run(func(c *pmrt.Ctx) {
		fs.Setup(c)
		body(c, fs)
	}); err != nil {
		t.Fatal(err)
	}
	return rt, fs
}

// recover reboots the pool (dropping the volatile domain, as a crash would)
// and mounts it on a fresh recovery runtime, the way the crash-injection
// harness does.
func recoverPFS(t *testing.T, rt *pmrt.Runtime, fs *PFS, fixed bool) (*PFS, error) {
	t.Helper()
	rt.Pool.Reboot()
	rrt := pmrt.NewWithPool(pmrt.Config{Seed: 1, PoolSize: pmem.LineSize, NoTrace: true}, rt.Pool, nil)
	rfs := AttachPosix(rrt, fs.Super(), fixed)
	var rerr error
	if err := rrt.Run(func(c *pmrt.Ctx) { rerr = rfs.Recover(c) }); err != nil {
		t.Fatal(err)
	}
	return rfs, rerr
}

func hasViolation(v []string, substr string) bool {
	for _, s := range v {
		if strings.Contains(s, substr) {
			return true
		}
	}
	return false
}

func TestPosixCreateAppendRead(t *testing.T) {
	runPFS(t, true, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Append(c, 3, 3)
		want := tag(1, 0) + tag(1, 1) + tag(1, 2) // first create takes generation 1
		if got := fs.ReadFile(c, 3); got != want {
			t.Fatalf("ReadFile = %#x, want %#x", got, want)
		}
		if got := fs.ReadFile(c, 5); got != 0 {
			t.Fatalf("ReadFile of missing name = %#x, want 0", got)
		}
		// Appends past the maximum file size are rejected whole.
		fs.Append(c, 3, maxFile/8)
		if got := fs.ReadFile(c, 3); got != want {
			t.Fatalf("over-long append changed the file: ReadFile = %#x, want %#x", got, want)
		}
	})
}

// TestPosixAppendSpansBlocks: an append crossing a block boundary commits
// both copy-on-write blocks and the tail read sees both sides.
func TestPosixAppendSpansBlocks(t *testing.T) {
	runPFS(t, true, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Append(c, 3, pfsWords+2)
		// ReadFile sums the last four words: two in block 0, two in block 1.
		want := tag(1, pfsWords-2) + tag(1, pfsWords-1) + tag(1, pfsWords) + tag(1, pfsWords+1)
		if got := fs.ReadFile(c, 3); got != want {
			t.Fatalf("ReadFile = %#x, want %#x", got, want)
		}
	})
}

func TestPosixRenameSemantics(t *testing.T) {
	runPFS(t, true, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Append(c, 3, 1)
		want := tag(1, 0)

		fs.Rename(c, 3, 5) // cross-slot
		if got := fs.ReadFile(c, 5); got != want {
			t.Fatalf("after rename, ReadFile(dst) = %#x, want %#x", got, want)
		}
		if got := fs.ReadFile(c, 3); got != 0 {
			t.Fatalf("after rename, ReadFile(src) = %#x, want 0", got)
		}

		fs.Rename(c, 5, 5+nDentries) // same-slot: a single name swap
		if got := fs.ReadFile(c, 5+nDentries); got != want {
			t.Fatalf("after same-slot rename, ReadFile = %#x, want %#x", got, want)
		}

		fs.Create(c, 7)
		fs.Rename(c, 5+nDentries, 7) // destination occupied: no-op
		if got := fs.ReadFile(c, 5+nDentries); got != want {
			t.Fatalf("rename onto occupied slot moved the file: ReadFile = %#x, want %#x", got, want)
		}

		fs.Rename(c, 9, 11) // missing source: no-op
		if got := fs.ReadFile(c, 11); got != 0 {
			t.Fatalf("rename of missing name created %#x", got)
		}
	})
}

// TestPosixUnlinkRecycles: unlink returns the inode and the data blocks to
// their free pools, and a recycled block handed to a new file carries the
// new generation's tags, not the old file's.
func TestPosixUnlinkRecycles(t *testing.T) {
	runPFS(t, true, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Append(c, 3, pfsWords)
		fs.Unlink(c, 3)
		if got := fs.ReadFile(c, 3); got != 0 {
			t.Fatalf("unlinked file still readable: %#x", got)
		}
		if len(fs.free.blocks) == 0 {
			t.Fatal("unlink recycled no data blocks")
		}
		if len(fs.freeIno) != nInodes {
			t.Fatalf("free inodes = %d, want %d", len(fs.freeIno), nInodes)
		}
		fs.Create(c, 5)
		fs.Append(c, 5, 1)
		// Generation 2: a recycled block serving the new file must not leak
		// generation-1 content.
		if got, want := fs.ReadFile(c, 5), tag(2, 0); got != want {
			t.Fatalf("recycled block content = %#x, want %#x", got, want)
		}
	})
}

// TestPosixFsyncPersistsMapping: the block mapping is volatile until Fsync
// replays the committed log — the inherited MadFS durability contract.
func TestPosixFsyncPersistsMapping(t *testing.T) {
	rt, fs := runPFS(t, true, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Append(c, 3, 1)
		if got := fs.rt.Pool.ReadPersistent8(fs.tabAddr(0, 0)); got != 0 {
			t.Fatalf("mapping persisted before fsync: %#x", got)
		}
		if err := fs.Fsync(c); err != nil {
			t.Fatal(err)
		}
	})
	p := rt.Pool.ReadPersistent8(fs.tabAddr(0, 0))
	if p == 0 {
		t.Fatal("fsync did not persist the block mapping")
	}
	if v := rt.Pool.Load8(fs.tabAddr(0, 0)); v != p {
		t.Fatalf("persisted mapping %#x disagrees with volatile %#x", p, v)
	}
}

// TestPosixQuiescentValidation: the fixed variant's image is clean under the
// full oracle set at quiescence; the buggy variant's unpersisted rename
// publication shows up as dentry divergence.
func TestPosixQuiescentValidation(t *testing.T) {
	ops := func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Append(c, 3, pfsWords+2)
		fs.Create(c, 7)
		fs.Rename(c, 3, 5)
		fs.WriteAt(c, 5, 0, 16)
		fs.Unlink(c, 7)
	}
	rt, fs := runPFS(t, true, ops)
	if v := fs.ValidateCrash(rt.Pool); len(v) != 0 {
		t.Fatalf("fixed image not clean at quiescence:\n%s", strings.Join(v, "\n"))
	}
	rt, fs = runPFS(t, false, ops)
	if v := fs.ValidateCrash(rt.Pool); !hasViolation(v, "diverges") {
		t.Fatalf("buggy rename left no divergence at quiescence:\n%s", strings.Join(v, "\n"))
	}
}

// TestPosixOracleLostRename: oracle (a)/(c) — the buggy rename's unpersisted
// destination name orphans the inode in the persistent image even in a
// single-threaded, race-free execution; the fixed protocol leaves every
// crash point clean.
func TestPosixOracleLostRename(t *testing.T) {
	rt, fs := runPFS(t, false, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Rename(c, 3, 5)
	})
	if v := fs.ValidateCrashPoint(rt.Pool); !hasViolation(v, "reachable from nowhere") {
		t.Fatalf("buggy rename not flagged as orphan:\n%s", strings.Join(v, "\n"))
	}
	rt, fs = runPFS(t, true, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Rename(c, 3, 5)
	})
	if v := fs.ValidateCrashPoint(rt.Pool); len(v) != 0 {
		t.Fatalf("fixed rename image not clean:\n%s", strings.Join(v, "\n"))
	}
}

// TestPosixOracleTornAppend: oracle (b) — the buggy append persists the size
// over never-flushed data; the persisted tail fails the tag check.
func TestPosixOracleTornAppend(t *testing.T) {
	rt, fs := runPFS(t, false, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Append(c, 3, 2)
	})
	if v := fs.ValidateCrashPoint(rt.Pool); !hasViolation(v, "torn append") {
		t.Fatalf("buggy append not flagged as torn:\n%s", strings.Join(v, "\n"))
	}
	rt, fs = runPFS(t, true, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Append(c, 3, 2)
	})
	if v := fs.ValidateCrashPoint(rt.Pool); len(v) != 0 {
		t.Fatalf("fixed append image not clean:\n%s", strings.Join(v, "\n"))
	}
}

// TestPosixRecoveryRoundTrip: mount-time recovery of a crashed (rebooted)
// fixed image succeeds and leaves a clean tree; the buggy image is rejected
// with the orphan diagnosis.
func TestPosixRecoveryRoundTrip(t *testing.T) {
	ops := func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Append(c, 3, pfsWords+1)
		fs.Create(c, 7)
		fs.Rename(c, 3, 5)
		fs.Unlink(c, 7)
	}
	rt, fs := runPFS(t, true, ops)
	rfs, err := recoverPFS(t, rt, fs, true)
	if err != nil {
		t.Fatalf("recovery of fixed image failed: %v", err)
	}
	if v := rfs.ValidateCrashPoint(rt.Pool); len(v) != 0 {
		t.Fatalf("recovered image not clean:\n%s", strings.Join(v, "\n"))
	}

	rt, fs = runPFS(t, false, ops)
	_, err = recoverPFS(t, rt, fs, false)
	if err == nil || !strings.Contains(err.Error(), "reachable from nowhere") {
		t.Fatalf("recovery of buggy image: err = %v, want orphan diagnosis", err)
	}
}

// TestPosixJournalRedo: a crash between the journal's COMMIT record and the
// rename's application is rolled forward at mount — the destination name
// resolves, the source is cleared, and the content survives.
func TestPosixJournalRedo(t *testing.T) {
	rt, fs := runPFS(t, true, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		fs.Append(c, 3, 1)
		// Hand-write the journal exactly as Rename does, then "crash" before
		// applying: the committed intent must be redone by recovery.
		c.Store8(fs.jrn+jOffIno, 1)
		c.Store8(fs.jrn+jOffSrc, fs.slotAddr(3))
		c.Store8(fs.jrn+jOffDst, fs.slotAddr(5))
		c.Store8(fs.jrn+jOffName, 5)
		c.Persist(fs.jrn, 32)
		c.Store8(fs.jrn+jOffState, jCommit)
		c.Persist(fs.jrn+jOffState, 8)
	})
	rfs, err := recoverPFS(t, rt, fs, true)
	if err != nil {
		t.Fatalf("recovery with committed journal failed: %v", err)
	}
	if got := rt.Pool.Load8(rfs.slotAddr(5)); got != 5 {
		t.Fatalf("journal redo did not publish the destination name: %#x", got)
	}
	if got := rt.Pool.Load8(rfs.slotAddr(3)); got != 0 {
		t.Fatalf("journal redo did not clear the source name: %#x", got)
	}
	if got := rt.Pool.ReadPersistent8(rfs.jrn + jOffState); got != jIdle {
		t.Fatalf("journal state after redo = %d, want idle", got)
	}
	if v := rfs.ValidateCrashPoint(rt.Pool); len(v) != 0 {
		t.Fatalf("redone image not clean:\n%s", strings.Join(v, "\n"))
	}
}

// TestPosixRecoveryRejectsCorruptImage: a clobbered superblock is a clean
// error, not a wild walk.
func TestPosixRecoveryRejectsCorruptImage(t *testing.T) {
	rt, fs := runPFS(t, true, func(c *pmrt.Ctx, fs *PFS) {
		fs.Create(c, 3)
		// Clobber the persisted magic the way a torn metadata write would.
		c.Store8(fs.super+sbMagic, 0xdead)
		c.Persist(fs.super, 8)
	})
	_, err := recoverPFS(t, rt, fs, true)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("corrupt superblock: err = %v, want magic error", err)
	}
}
