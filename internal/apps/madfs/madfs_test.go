package madfs

import (
	"testing"

	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

func TestWriteRead(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	fs := New(rt, false).(*FS)
	err := rt.Run(func(c *pmrt.Ctx) {
		fs.Setup(c)
		fs.Write(c, 0, 4096, 7)
		fs.Write(c, 8192, 4096, 9)
		if got := fs.Read(c, 0, 8); got != 7 {
			t.Fatalf("Read(0) = %d, want 7", got)
		}
		if got := fs.Read(c, 8192, 8); got != 9 {
			t.Fatalf("Read(8192) = %d, want 9", got)
		}
		if got := fs.Read(c, 4096, 8); got != 0 {
			t.Fatalf("Read of unwritten block = %d, want 0", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOverwriteRecyclesBlocks: the copy-on-write free pool keeps the device
// footprint bounded under overwrites.
func TestOverwriteRecyclesBlocks(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	fs := New(rt, false).(*FS)
	err := rt.Run(func(c *pmrt.Ctx) {
		fs.Setup(c)
		for i := 0; i < 100; i++ {
			fs.Write(c, 0, 4096, uint64(i))
		}
		if got := fs.Read(c, 0, 8); got != 99 {
			t.Fatalf("Read = %d, want 99", got)
		}
		if len(fs.free.blocks) == 0 {
			t.Fatal("overwrites recycled no blocks")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 overwrites of one block must not consume 100 blocks of space.
	if rt.Heap.InUse() > 20*4096+1<<20 {
		t.Fatalf("heap in use = %d bytes; copy-on-write blocks were not recycled", rt.Heap.InUse())
	}
}

// TestFsyncPersistsBlockTable: before fsync the mapping is volatile
// (in-contract data loss); after fsync it survives a crash.
func TestFsyncPersistsBlockTable(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	fs := New(rt, false).(*FS)
	err := rt.Run(func(c *pmrt.Ctx) {
		fs.Setup(c)
		fs.Write(c, 0, 4096, 7)
		if rt.Pool.ReadPersistent8(fs.blockTable) != 0 {
			t.Fatal("block table persisted before fsync")
		}
		fs.Fsync(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Pool.ReadPersistent8(fs.blockTable) == 0 {
		t.Fatal("fsync did not persist the block table")
	}
}

// TestLogAppendIsCommitPoint: the 8-byte log entry is persisted by its fence
// even when the block table is not.
func TestLogAppendIsCommitPoint(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	fs := New(rt, false).(*FS)
	err := rt.Run(func(c *pmrt.Ctx) {
		fs.Setup(c)
		fs.Write(c, 0, 4096, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Pool.ReadPersistent8(fs.logBase) == 0 {
		t.Fatal("log entry not persisted (NT-store + fence broken)")
	}
	if rt.Pool.ReadPersistent8(fs.logHead) != 1 {
		t.Fatalf("log head = %d, want 1", rt.Pool.ReadPersistent8(fs.logHead))
	}
}

// TestRacingWritersNoDoubleRecycle is the regression test for free-pool
// corruption under racing writers to the same virtual block. Two hazards:
// (a) both writers load the same superseded physical block and enqueue it
// twice (fixed by dedup in freeList.push); (b) a writer's loaded "old"
// mapping goes stale before its publish — the block was already recycled,
// popped and republished elsewhere — and pushing it frees a live block
// (fixed by recycling publishBlock's shadow-table answer instead of the
// loaded value). Either way a physical block ends up handed to two virtual
// blocks at once. The invariants checked: no duplicate free-list entries, no
// physical block live under two virtual blocks, no block both live and free.
func TestRacingWritersNoDoubleRecycle(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rt := pmrt.New(pmrt.Config{Seed: seed, PoolSize: 64 << 20})
		fs := New(rt, false).(*FS)
		err := rt.Run(func(c *pmrt.Ctx) {
			fs.Setup(c)
			var ths []*pmrt.Thread
			for i := 0; i < 2; i++ {
				ths = append(ths, c.Spawn(func(wc *pmrt.Ctx) {
					for j := 0; j < 16; j++ {
						// Both writers hammer vblock 0, then churn a second
						// block so duplicated free entries get popped and
						// republished.
						fs.Write(wc, 0, 4096, uint64(j))
						fs.Write(wc, blockSize, 4096, uint64(j))
					}
				}))
			}
			for _, th := range ths {
				c.Join(th)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		queued := map[uint64]bool{}
		for _, b := range fs.free.blocks {
			if queued[b] {
				t.Fatalf("seed %d: block %#x on the free list twice", seed, b)
			}
			queued[b] = true
		}
		live := map[uint64]uint64{}
		for v := uint64(0); v < nBlocks; v++ {
			p := rt.Pool.Load8(fs.blockTable + v*8)
			if p == 0 {
				continue
			}
			if o, dup := live[p]; dup {
				t.Fatalf("seed %d: physical block %#x live under vblocks %d and %d", seed, p, o, v)
			}
			live[p] = v
			if queued[p] {
				t.Fatalf("seed %d: live physical block %#x is also on the free list", seed, p)
			}
		}
	}
}

func TestConcurrentWriters(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 7, PoolSize: 64 << 20})
	fs := New(rt, false).(*FS)
	w := ycsb.Generate(ycsb.FileSpec(400), 7)
	err := rt.Run(func(c *pmrt.Ctx) {
		fs.Setup(c)
		var ths []*pmrt.Thread
		for _, ops := range w.Threads {
			ops := ops
			ths = append(ths, c.Spawn(func(wc *pmrt.Ctx) {
				for _, op := range ops {
					fs.Apply(wc, op)
				}
			}))
		}
		for _, th := range ths {
			c.Join(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
