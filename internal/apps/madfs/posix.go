// MadFS-POSIX grows the single-file block log into a small POSIX-flavored
// PM filesystem: a directory of dentries, a fixed inode table, and
// create/write/append/rename/unlink/read built on the same copy-on-write
// block log, with a journaled rename commit protocol and an Fsync that
// replays the log. It carries two seeded crash-consistency bugs beyond the
// paper's Table 2 (registered as extensions #21 and #22):
//
//	#21 non-atomic rename: the new dentry is published with a plain store
//	    and never persisted, while the old dentry's removal persists right
//	    after — a crash in between orphans the inode (neither name
//	    resolves).
//	#22 torn append: the file size is published and persisted before the
//	    appended data blocks are written, which themselves are never
//	    flushed — a crash leaves a persisted size covering garbage.
//
// The fixed variant persists the dentry publication, journals the rename
// (intent record, COMMIT, apply, IDLE), and persists append data before the
// log commit with the size published last.
//
// Chipmunk-style syscall-level oracles (LeBlanc et al., arXiv 2204.06066)
// validate every crash image: (a) rename atomicity — the old or the new
// dentry resolves, never both or neither; (b) appends are never torn —
// the persisted size and the tail contents agree (file content is
// self-describing: word w of a generation-g file equals tag(g, w));
// (c) no inode is reachable-from-nowhere or doubly linked. See DESIGN.md
// §12 for the quiescence rules splitting them across ValidateCrashPoint
// (always safe) and ValidateCrash (operation boundaries only).
package madfs

import (
	"fmt"

	"hawkset/internal/apps"
	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// Filesystem geometry. Every metadata record (dentry, inode) occupies one
// full cache line so that persisting one record never incidentally
// persists a neighbor — the seeded bugs' unpersisted windows stay open
// exactly as written.
const (
	nInodes    = 256
	nDentries  = 256
	recSize    = 64             // one cache line per dentry / inode record
	pfsBlock   = 256            // data block bytes
	pfsWords   = pfsBlock / 8   // words per data block
	maxVBlocks = 8              // blocks per file
	maxFile    = maxVBlocks * pfsBlock
	pfsCapLog  = 1 << 15 // committed log entries (append-only, no ring reuse)

	pfsMagic = 0x4d41444653505358 // "MADFSPSX"
)

// Inode states (low byte of the inode word; the allocation generation
// lives in the high bits). FREE and the zero-filled fresh device coincide.
const (
	stFree = iota
	stInit
	stLive
	stUnlinking
)

// Rename-journal layout (one cache line) and states.
const (
	jOffIno   = 0 // inode number + 1
	jOffSrc   = 8 // source slot address
	jOffDst   = 16 // destination slot address
	jOffName  = 24 // destination name
	jOffState = 32

	jIdle   = 0
	jCommit = 1
)

// Superblock layout (one cache line), persisted once at Setup.
const (
	sbMagic = 0
	sbDir   = 8
	sbIno   = 16
	sbTab   = 24
	sbLog   = 32
	sbJrn   = 40
	sbHead  = 48 // the log-head counter itself
)

// PFS is a MadFS-POSIX instance.
type PFS struct {
	rt    *pmrt.Runtime
	mu    *pmrt.Mutex
	fixed bool

	super uint64 // superblock; every other address derives from it
	dir   uint64 // nDentries × recSize: +0 name (0 = free), +8 inode+1
	ino   uint64 // nInodes × recSize: +0 gen<<8|state, +8 size (bytes)
	tab   uint64 // nInodes × maxVBlocks × 8: volatile block mapping
	log   uint64 // pfsCapLog × 8: packed commit entries
	jrn   uint64 // rename journal
	head  uint64 // address of the committed-entry counter

	free    freeList // recycled data blocks, deduplicated
	freeIno []uint64 // volatile inode allocator
	nextGen uint64
}

// NewPosix creates a MadFS-POSIX instance; fixed selects the repaired
// rename and append protocols.
func NewPosix(rt *pmrt.Runtime, fixed bool) apps.App {
	return &PFS{rt: rt, mu: rt.NewMutex("pfs"), fixed: fixed}
}

// AttachPosix binds a PFS to an existing superblock, the way mount-time
// recovery re-attaches after a crash.
func AttachPosix(rt *pmrt.Runtime, super uint64, fixed bool) *PFS {
	return &PFS{rt: rt, mu: rt.NewMutex("pfs"), fixed: fixed, super: super}
}

// Name implements apps.App.
func (fs *PFS) Name() string { return "MadFS-POSIX" }

// Super returns the superblock address for post-crash re-attachment.
func (fs *PFS) Super() uint64 { return fs.super }

func (fs *PFS) slotAddr(s uint64) uint64 { return fs.dir + s*recSize }
func (fs *PFS) inoAddr(i uint64) uint64  { return fs.ino + i*recSize }
func (fs *PFS) tabAddr(i, v uint64) uint64 {
	return fs.tab + (i*maxVBlocks+v)*8
}

// tag is the self-describing content of file word w under allocation
// generation g; the torn-append oracle verifies tail contents from the
// crash image alone, with no volatile knowledge.
func tag(gen, w uint64) uint64 {
	h := gen<<32 ^ w
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Setup allocates and persists the filesystem regions. A fresh device is
// zero-filled, so FREE inodes and empty dentries need no initialization.
func (fs *PFS) Setup(c *pmrt.Ctx) {
	fs.super = c.Alloc(recSize)
	fs.dir = c.Alloc(nDentries * recSize)
	fs.ino = c.Alloc(nInodes * recSize)
	fs.tab = c.Alloc(nInodes * maxVBlocks * 8)
	fs.log = c.Alloc(pfsCapLog * 8)
	fs.jrn = c.Alloc(recSize)
	fs.head = fs.super + sbHead
	c.Store8(fs.super+sbDir, fs.dir)
	c.Store8(fs.super+sbIno, fs.ino)
	c.Store8(fs.super+sbTab, fs.tab)
	c.Store8(fs.super+sbLog, fs.log)
	c.Store8(fs.super+sbJrn, fs.jrn)
	c.Store8(fs.super+sbHead, 0)
	c.Store8(fs.super+sbMagic, pfsMagic)
	c.Persist(fs.super, recSize)
	for i := uint64(nInodes); i > 0; i-- {
		fs.freeIno = append(fs.freeIno, i-1)
	}
	fs.nextGen = 1
}

// Apply implements apps.App. Paths are the workload's scrambled-zipfian
// keys, forced odd so a name word is never the empty-slot sentinel.
func (fs *PFS) Apply(c *pmrt.Ctx, op ycsb.Op) {
	name := op.Key | 1
	switch op.Kind {
	case ycsb.OpCreate:
		fs.Create(c, name)
	case ycsb.OpAppend:
		fs.Append(c, name, 1+op.Value%3)
	case ycsb.OpWrite:
		fs.WriteAt(c, name, op.Off%maxFile, op.Len)
	case ycsb.OpRename:
		fs.Rename(c, name, op.Value|1)
	case ycsb.OpUnlink:
		fs.Unlink(c, name)
	default:
		fs.ReadFile(c, name)
	}
}

// resolve looks a name up under the filesystem lock (the writers' path;
// the lock-free reader is lookupDentry).
func (fs *PFS) resolve(c *pmrt.Ctx, name uint64) (slot, idx uint64, ok bool) {
	s := fs.slotAddr(name % nDentries)
	if c.Load8(s) != name {
		return s, 0, false
	}
	i := c.Load8(s + 8)
	if i == 0 || i > nInodes {
		return s, 0, false
	}
	return s, i - 1, true
}

// Create allocates an inode and links a dentry. Commit protocol: persist
// the INIT inode, link the dentry (inode word, then the name word as the
// commit), then promote to LIVE. A crash at any point leaves either a
// GC-able INIT inode or a fully linked file. Direct-mapped slots: a name
// hashing onto an occupied slot is a no-op (a documented limitation, like
// rename onto an existing name).
func (fs *PFS) Create(c *pmrt.Ctx, name uint64) {
	c.Lock(fs.mu)
	defer c.Unlock(fs.mu)
	s := fs.slotAddr(name % nDentries)
	if c.Load8(s) != 0 {
		return
	}
	n := len(fs.freeIno)
	if n == 0 {
		return
	}
	idx := fs.freeIno[n-1]
	fs.freeIno = fs.freeIno[:n-1]
	gen := fs.nextGen
	fs.nextGen++
	ia := fs.inoAddr(idx)
	c.Store8(ia, gen<<8|stInit)
	c.Store8(ia+8, 0)
	c.Persist(ia, 16)
	fs.linkDentry(c, s, idx, name)
	c.Store8(ia, gen<<8|stLive)
	c.Persist(ia, 8)
}

// linkDentry publishes a fresh directory entry: inode first, then the name
// word as the commit point. Both stores persist in both variants — create
// is correct; the seeded rename bug lives in publishDentry.
func (fs *PFS) linkDentry(c *pmrt.Ctx, slot, idx, name uint64) {
	c.Store8(slot+8, idx+1)
	c.Persist(slot+8, 8)
	c.Store8(slot, name)
	c.Persist(slot, 8)
}

// publishDentry installs the destination name of a rename. The buggy
// variant omits the persist: the new entry lives only in the cache while
// the old entry's removal persists right after — a crash in between
// orphans the inode (seeded bug #21).
func (fs *PFS) publishDentry(c *pmrt.Ctx, slot, name uint64) {
	c.Store8(slot, name)
	if fs.fixed {
		c.Persist(slot, 8)
	}
}

// Rename moves a name to a new slot. The fixed variant records the intent
// in the rename journal, persists COMMIT, applies (destination inode,
// destination name, source clear — each persisted), and returns the
// journal to IDLE: recovery redoes a committed rename, so exactly one of
// the two names resolves at every crash point. The buggy variant applies
// directly with an unpersisted destination-name store. Renaming onto an
// occupied slot is a no-op (no replacement semantics).
func (fs *PFS) Rename(c *pmrt.Ctx, src, dst uint64) {
	c.Lock(fs.mu)
	defer c.Unlock(fs.mu)
	ss, idx, ok := fs.resolve(c, src)
	if !ok {
		return
	}
	ds := fs.slotAddr(dst % nDentries)
	if ds == ss {
		// Same-slot rename: the name swap is a single 8-byte store.
		fs.publishDentry(c, ss, dst)
		return
	}
	if c.Load8(ds) != 0 {
		return
	}
	if fs.fixed {
		c.Store8(fs.jrn+jOffIno, idx+1)
		c.Store8(fs.jrn+jOffSrc, ss)
		c.Store8(fs.jrn+jOffDst, ds)
		c.Store8(fs.jrn+jOffName, dst)
		c.Persist(fs.jrn, 32)
		c.Store8(fs.jrn+jOffState, jCommit)
		c.Persist(fs.jrn+jOffState, 8)
	}
	c.Store8(ds+8, idx+1)
	c.Persist(ds+8, 8)
	fs.publishDentry(c, ds, dst)
	c.Store8(ss, 0)
	c.Persist(ss, 8)
	if fs.fixed {
		c.Store8(fs.jrn+jOffState, jIdle)
		c.Persist(fs.jrn+jOffState, 8)
	}
}

// Unlink removes a name and frees its inode: UNLINKING persisted first, so
// a crash mid-unlink is rolled forward by recovery, never mistaken for an
// orphan. Data blocks return to the free list only after the dentry
// removal is durable.
func (fs *PFS) Unlink(c *pmrt.Ctx, name uint64) {
	c.Lock(fs.mu)
	defer c.Unlock(fs.mu)
	ss, idx, ok := fs.resolve(c, name)
	if !ok {
		return
	}
	ia := fs.inoAddr(idx)
	gen := c.Load8(ia) >> 8
	c.Store8(ia, gen<<8|stUnlinking)
	c.Persist(ia, 8)
	c.Store8(ss, 0)
	c.Persist(ss, 8)
	for v := uint64(0); v < maxVBlocks; v++ {
		ta := fs.tabAddr(idx, v)
		if b := c.Load8(ta); b != 0 {
			fs.free.push(b)
			c.Store8(ta, 0)
		}
	}
	c.Store8(ia+8, 0)
	c.Persist(ia+8, 8)
	c.Store8(ia, gen<<8|stFree)
	c.Persist(ia, 8)
	fs.freeIno = append(fs.freeIno, idx)
}

// Append extends a file by words 8-byte words. The fixed variant writes
// and persists the data blocks, commits them through the log, and
// publishes the size last; the buggy variant publishes the size first and
// never flushes the data (seeded bug #22).
func (fs *PFS) Append(c *pmrt.Ctx, name uint64, words uint64) {
	c.Lock(fs.mu)
	defer c.Unlock(fs.mu)
	_, idx, ok := fs.resolve(c, name)
	if !ok {
		return
	}
	ia := fs.inoAddr(idx)
	gen := c.Load8(ia) >> 8
	size := c.Load8(ia + 8)
	n := words * 8
	if size+n > maxFile {
		return
	}
	if !fs.fixed {
		fs.publishSize(c, ia, size+n)
	}
	for off := size; off < size+n; {
		v := off / pfsBlock
		bo := off % pfsBlock
		chunk := pfsBlock - bo
		if off+chunk > size+n {
			chunk = size + n - off
		}
		if !fs.writeBlock(c, idx, gen, v, bo, chunk, bo, fs.fixed) {
			return // log exhausted: size may overhang, fixed never gets here first
		}
		off += chunk
	}
	if fs.fixed {
		fs.publishSize(c, ia, size+n)
	}
}

// WriteAt overwrites committed bytes; writes beyond the file size are
// clamped. Overwrites are correct in both variants — the seeded append
// bug is an ordering bug, not a general data-loss bug.
func (fs *PFS) WriteAt(c *pmrt.Ctx, name, off, length uint64) {
	c.Lock(fs.mu)
	defer c.Unlock(fs.mu)
	_, idx, ok := fs.resolve(c, name)
	if !ok {
		return
	}
	ia := fs.inoAddr(idx)
	gen := c.Load8(ia) >> 8
	size := c.Load8(ia + 8)
	if off >= size {
		return
	}
	if off+length > size {
		length = size - off
	}
	for o := off; o < off+length; {
		v := o / pfsBlock
		bo := o % pfsBlock
		chunk := pfsBlock - bo
		if o+chunk > off+length {
			chunk = off + length - o
		}
		committed := size - v*pfsBlock
		if committed > pfsBlock {
			committed = pfsBlock
		}
		if !fs.writeBlock(c, idx, gen, v, bo, chunk, committed, true) {
			return
		}
		o += chunk
	}
}

// writeBlock is the copy-on-write engine shared by Append and WriteAt: a
// fresh physical block receives the committed content of virtual block v —
// the prefix [0, bo) and, for mid-block overwrites, the suffix
// [bo+chunk, committed) — plus the new words [bo, bo+chunk), is committed
// through the log, and replaces the old block in the volatile mapping.
// committed is the number of previously committed bytes in this virtual
// block (appends pass bo: nothing beyond the write exists yet). persist
// flushes the new block's image before the commit; Append's buggy path
// passes false.
func (fs *PFS) writeBlock(c *pmrt.Ctx, idx, gen, v, bo, chunk, committed uint64, persist bool) bool {
	if c.Load8(fs.head) >= pfsCapLog {
		return false // log exhausted (real MadFS compacts at fsync)
	}
	nb := fs.allocBlock(c)
	old := c.Load8(fs.tabAddr(idx, v))
	for w := uint64(0); w < bo/8; w++ {
		var val uint64
		if old != 0 {
			val = c.Load8(old + w*8)
		}
		c.Store8(nb+w*8, val)
	}
	fs.appendData(c, nb, gen, v, bo, chunk, persist)
	for w := (bo + chunk) / 8; w < committed/8; w++ {
		var val uint64
		if old != 0 {
			val = c.Load8(old + w*8)
		}
		c.Store8(nb+w*8, val)
	}
	if persist && committed > bo+chunk {
		c.Persist(nb+bo+chunk, committed-(bo+chunk))
	}
	fs.commitBlock(c, idx, v, nb)
	fs.publishMapping(c, idx, v, nb)
	fs.free.push(old)
	return true
}

// appendData writes the new words of an append or overwrite with their
// generation tags. With persist the whole block image (prefix copy
// included) is durable before the log commit; without it the stores stay
// in the cache forever — the data half of seeded bug #22.
func (fs *PFS) appendData(c *pmrt.Ctx, nb, gen, v, bo, chunk uint64, persist bool) {
	for w := bo / 8; w < (bo+chunk)/8; w++ {
		c.Store8(nb+w*8, tag(gen, v*pfsWords+w))
	}
	if persist {
		c.Persist(nb, bo+chunk)
	}
}

// commitBlock makes the new block reachable after a crash: an atomic
// 8-byte log append (non-temporal, fenced) followed by the persisted head
// bump — the commit point of every file mutation, identical in both
// variants.
func (fs *PFS) commitBlock(c *pmrt.Ctx, idx, v, nb uint64) {
	head := c.Load8(fs.head)
	c.NTStore8(fs.log+(head%pfsCapLog)*8, idx<<48|v<<40|nb)
	c.Fence()
	c.Store8(fs.head, head+1)
	c.Persist(fs.head, 8)
}

// publishMapping installs the committed block in the volatile mapping
// table — durable only via Fsync's log replay, within the inherited MadFS
// fsync contract (the store side of the benign reports, like the original
// publishBlock).
func (fs *PFS) publishMapping(c *pmrt.Ctx, idx, v, nb uint64) {
	c.Store8(fs.tabAddr(idx, v), nb)
}

// publishSize persists the file size. The buggy append calls it before
// any data is written; the fixed append calls it after the commit.
func (fs *PFS) publishSize(c *pmrt.Ctx, ia, size uint64) {
	c.Store8(ia+8, size)
	c.Persist(ia+8, 8)
}

func (fs *PFS) allocBlock(c *pmrt.Ctx) uint64 {
	if a, ok := fs.free.pop(); ok {
		return a
	}
	return c.Alloc(pfsBlock)
}

// ReadFile resolves a path and sums the file's tail lock-free — the load
// side of both seeded bugs.
func (fs *PFS) ReadFile(c *pmrt.Ctx, name uint64) uint64 {
	idx, ok := fs.lookupDentry(c, name)
	if !ok {
		return 0
	}
	ia := fs.inoAddr(idx)
	size := c.Load8(ia + 8)
	if size > maxFile {
		size = maxFile
	}
	words := size / 8
	first := uint64(0)
	if words > 4 {
		first = words - 4
	}
	sum := uint64(0)
	for w := first; w < words; w++ {
		b := fs.lookupMapping(c, idx, w/pfsWords)
		if b == 0 {
			continue
		}
		sum += fs.readData(c, b, w%pfsWords)
	}
	return sum
}

// lookupDentry resolves a name lock-free (the load side of bug #21).
func (fs *PFS) lookupDentry(c *pmrt.Ctx, name uint64) (uint64, bool) {
	s := fs.slotAddr(name % nDentries)
	if c.Load8(s) != name {
		return 0, false
	}
	i := c.Load8(s + 8)
	if i == 0 || i > nInodes {
		return 0, false
	}
	return i - 1, true
}

// lookupMapping reads the volatile block table lock-free.
func (fs *PFS) lookupMapping(c *pmrt.Ctx, idx, v uint64) uint64 {
	return c.Load8(fs.tabAddr(idx, v))
}

// readData loads one word of file content (the load side of bug #22).
func (fs *PFS) readData(c *pmrt.Ctx, b, w uint64) uint64 {
	return c.Load8(b + w*8)
}

// Fsync replays the committed log into the persistent block table,
// honoring the explicit-durability contract (real MadFS compacts here).
func (fs *PFS) Fsync(c *pmrt.Ctx) error {
	c.Lock(fs.mu)
	defer c.Unlock(fs.mu)
	return fs.replayLog(c, true)
}

// replayLog rebuilds the block mapping from the committed log prefix
// (later entries win). persist flushes the rebuilt table — Fsync
// semantics; recovery leaves it volatile for the oracle walk.
func (fs *PFS) replayLog(c *pmrt.Ctx, persist bool) error {
	head := c.Load8(fs.head)
	if head > pfsCapLog {
		return fmt.Errorf("pfs: log head %d out of bounds", head)
	}
	poolSize := fs.rt.Pool.Size()
	for h := uint64(0); h < head; h++ {
		e := c.Load8(fs.log + h*8)
		idx := e >> 48
		v := (e >> 40) & 0xff
		b := e & (1<<40 - 1)
		if idx >= nInodes || v >= maxVBlocks || b == 0 || b+pfsBlock > poolSize {
			return fmt.Errorf("pfs: log entry %d corrupt (%#x)", h, e)
		}
		c.Store8(fs.tabAddr(idx, v), b)
	}
	if persist {
		c.Persist(fs.tab, nInodes*maxVBlocks*8)
	}
	return nil
}

// Recover replays a crash image the way mount would: verify the
// superblock, redo or discard the rename journal, rebuild the block
// mapping from the committed log (the Fsync replay), roll half-created
// and half-unlinked inodes forward or back, then run the three
// syscall-level oracles over the recovered tree. It returns an error on
// any unrepairable inconsistency; the crash-injection harness contains
// panics and livelocks on images too torn to walk.
func (fs *PFS) Recover(c *pmrt.Ctx) error {
	if c.Load8(fs.super+sbMagic) != pfsMagic {
		return fmt.Errorf("pfs: bad superblock magic")
	}
	poolSize := fs.rt.Pool.Size()
	fs.dir = c.Load8(fs.super + sbDir)
	fs.ino = c.Load8(fs.super + sbIno)
	fs.tab = c.Load8(fs.super + sbTab)
	fs.log = c.Load8(fs.super + sbLog)
	fs.jrn = c.Load8(fs.super + sbJrn)
	fs.head = fs.super + sbHead
	for _, r := range [][2]uint64{
		{fs.dir, nDentries * recSize}, {fs.ino, nInodes * recSize},
		{fs.tab, nInodes * maxVBlocks * 8}, {fs.log, pfsCapLog * 8},
		{fs.jrn, recSize},
	} {
		if r[0] == 0 || r[0]+r[1] > poolSize {
			return fmt.Errorf("pfs: superblock region out of bounds")
		}
	}

	// Redo a committed rename; an uncommitted intent record is ignored.
	switch st := c.Load8(fs.jrn + jOffState); st {
	case jCommit:
		ino := c.Load8(fs.jrn + jOffIno)
		src := c.Load8(fs.jrn + jOffSrc)
		dst := c.Load8(fs.jrn + jOffDst)
		name := c.Load8(fs.jrn + jOffName)
		inDir := func(a uint64) bool {
			return a >= fs.dir && a < fs.dir+nDentries*recSize && (a-fs.dir)%recSize == 0
		}
		if ino == 0 || ino > nInodes || !inDir(src) || !inDir(dst) || name == 0 {
			return fmt.Errorf("pfs: committed rename journal corrupt")
		}
		c.Store8(dst+8, ino)
		c.Persist(dst+8, 8)
		c.Store8(dst, name)
		c.Persist(dst, 8)
		c.Store8(src, 0)
		c.Persist(src, 8)
		c.Store8(fs.jrn+jOffState, jIdle)
		c.Persist(fs.jrn+jOffState, 8)
	case jIdle:
	default:
		return fmt.Errorf("pfs: rename journal state %d corrupt", st)
	}

	// Rebuild the block mapping (the Fsync log replay).
	if err := fs.replayLog(c, false); err != nil {
		return err
	}

	// Reference counts from the directory.
	var refs [nInodes]int
	for s := uint64(0); s < nDentries; s++ {
		slot := fs.slotAddr(s)
		if c.Load8(slot) == 0 {
			continue
		}
		i := c.Load8(slot + 8)
		if i == 0 || i > nInodes {
			return fmt.Errorf("pfs: dentry %d has invalid inode %d", s, i)
		}
		refs[i-1]++
	}

	// Roll in-flight creates and unlinks forward, then apply oracle (c):
	// no inode reachable from nowhere or doubly linked.
	for i := uint64(0); i < nInodes; i++ {
		ia := fs.inoAddr(i)
		w := c.Load8(ia)
		gen := w >> 8
		switch w & 0xff {
		case stInit:
			if refs[i] > 0 {
				c.Store8(ia, gen<<8|stLive)
			} else {
				c.Store8(ia, gen<<8|stFree)
			}
			c.Persist(ia, 8)
		case stUnlinking:
			if refs[i] > 0 {
				for s := uint64(0); s < nDentries; s++ {
					slot := fs.slotAddr(s)
					if c.Load8(slot) != 0 && c.Load8(slot+8) == i+1 {
						c.Store8(slot, 0)
						c.Persist(slot, 8)
					}
				}
				refs[i] = 0
			}
			c.Store8(ia+8, 0)
			c.Persist(ia+8, 8)
			c.Store8(ia, gen<<8|stFree)
			c.Persist(ia, 8)
		case stFree:
			if refs[i] > 0 {
				return fmt.Errorf("pfs oracle: dentry links free inode %d", i)
			}
		case stLive:
			if refs[i] == 0 {
				return fmt.Errorf("pfs oracle: inode %d reachable from nowhere (lost rename)", i)
			}
			if refs[i] > 1 {
				return fmt.Errorf("pfs oracle: inode %d doubly linked (%d dentries)", i, refs[i])
			}
		default:
			return fmt.Errorf("pfs oracle: inode %d state %#x corrupt", i, w&0xff)
		}
	}

	// Oracle (b): no torn appends — size and tail contents agree.
	for s := uint64(0); s < nDentries; s++ {
		slot := fs.slotAddr(s)
		if c.Load8(slot) == 0 {
			continue
		}
		idx := c.Load8(slot+8) - 1
		ia := fs.inoAddr(idx)
		gen := c.Load8(ia) >> 8
		size := c.Load8(ia + 8)
		if size > maxFile || size%8 != 0 {
			return fmt.Errorf("pfs oracle: inode %d torn size %d", idx, size)
		}
		for w := uint64(0); w < size/8; w++ {
			b := c.Load8(fs.tabAddr(idx, w/pfsWords))
			if b == 0 {
				return fmt.Errorf("pfs oracle: inode %d word %d unmapped under size %d", idx, w, size)
			}
			if got := c.Load8(b + (w%pfsWords)*8); got != tag(gen, w) {
				return fmt.Errorf("pfs oracle: inode %d torn append at word %d", idx, w)
			}
		}
	}
	return nil
}

// committedMapping replays the persisted log prefix into a volatile map —
// the validators' view of what a crash can reach. Violations cover torn
// log state: a committed head can never point past valid entries, because
// every entry is fenced before its head bump persists.
func (fs *PFS) committedMapping(p *pmem.Pool) (map[uint64]uint64, []string) {
	var v []string
	head := p.ReadPersistent8(fs.head)
	if head > pfsCapLog {
		return nil, append(v, fmt.Sprintf("log head %d out of bounds", head))
	}
	m := make(map[uint64]uint64, head)
	for h := uint64(0); h < head; h++ {
		e := p.ReadPersistent8(fs.log + h*8)
		idx := e >> 48
		vb := (e >> 40) & 0xff
		b := e & (1<<40 - 1)
		if idx >= nInodes || vb >= maxVBlocks || b == 0 || b+pfsBlock > p.Size() {
			v = append(v, fmt.Sprintf("committed log entry %d corrupt (%#x)", h, e))
			continue
		}
		m[idx*maxVBlocks+vb] = b
	}
	return m, v
}

// ValidateCrashPoint implements apps.CrashPointValidator: the always-safe
// subset of the syscall oracles, holding at every device-serialization
// point of a correct execution. In-flight creates (INIT) and unlinks
// (UNLINKING) are excused; a LIVE inode with no dentry is an orphan at any
// point (the fixed rename persists the new name before the old one's
// removal, the journal redoes the rest), and a persisted size always
// covers committed, tag-valid content (the fixed append publishes size
// last).
func (fs *PFS) ValidateCrashPoint(p *pmem.Pool) []string {
	var v []string
	if p.ReadPersistent8(fs.super+sbMagic) != pfsMagic {
		return append(v, "superblock magic lost")
	}
	jstate := p.ReadPersistent8(fs.jrn + jOffState)
	jino := uint64(0)
	switch jstate {
	case jCommit:
		jino = p.ReadPersistent8(fs.jrn + jOffIno)
	case jIdle:
	default:
		v = append(v, fmt.Sprintf("rename journal state %d corrupt", jstate))
	}

	m, mv := fs.committedMapping(p)
	v = append(v, mv...)
	if m == nil {
		return v
	}

	var refs [nInodes]int
	for s := uint64(0); s < nDentries; s++ {
		slot := fs.slotAddr(s)
		if p.ReadPersistent8(slot) == 0 {
			continue
		}
		i := p.ReadPersistent8(slot + 8)
		if i == 0 || i > nInodes {
			v = append(v, fmt.Sprintf("dentry %d links invalid inode %d", s, i))
			continue
		}
		refs[i-1]++
	}
	for i := uint64(0); i < nInodes; i++ {
		w := p.ReadPersistent8(fs.inoAddr(i))
		switch w & 0xff {
		case stFree:
			if refs[i] > 0 {
				v = append(v, fmt.Sprintf("dentry links free inode %d", i))
			}
		case stLive:
			if refs[i] == 0 {
				v = append(v, fmt.Sprintf("inode %d reachable from nowhere (lost rename)", i))
			}
			if refs[i] > 1 && jino != i+1 {
				v = append(v, fmt.Sprintf("inode %d doubly linked (%d dentries)", i, refs[i]))
			}
		case stInit, stUnlinking:
			// In-flight create/unlink: recovery rolls these forward.
		default:
			v = append(v, fmt.Sprintf("inode %d state %#x corrupt", i, w&0xff))
		}
	}

	// Torn-append oracle over every named inode.
	for s := uint64(0); s < nDentries; s++ {
		slot := fs.slotAddr(s)
		if p.ReadPersistent8(slot) == 0 {
			continue
		}
		i := p.ReadPersistent8(slot + 8)
		if i == 0 || i > nInodes {
			continue // already reported
		}
		idx := i - 1
		ia := fs.inoAddr(idx)
		gen := p.ReadPersistent8(ia) >> 8
		size := p.ReadPersistent8(ia + 8)
		if size > maxFile || size%8 != 0 {
			v = append(v, fmt.Sprintf("inode %d torn size %d", idx, size))
			continue
		}
		for w := uint64(0); w < size/8; w++ {
			b, ok := m[idx*maxVBlocks+w/pfsWords]
			if !ok {
				v = append(v, fmt.Sprintf("inode %d word %d unmapped under persisted size %d", idx, w, size))
				break
			}
			if got := p.ReadPersistent8(b + (w%pfsWords)*8); got != tag(gen, w) {
				v = append(v, fmt.Sprintf("inode %d torn append at word %d (size %d)", idx, w, size))
				break
			}
		}
	}
	return v
}

// ValidateCrash implements apps.CrashValidator: the full oracle set at
// operation boundaries, where the volatile view is the ground truth and
// every transient state must have drained — silent dentry loss (oracle a),
// undurable sizes or content (oracle b), in-flight inode states, and a
// non-IDLE journal are violations here even when always-safe checks pass.
func (fs *PFS) ValidateCrash(p *pmem.Pool) []string {
	v := fs.ValidateCrashPoint(p)
	if p.ReadPersistent8(fs.jrn+jOffState) != jIdle {
		v = append(v, "rename journal not idle at quiescence")
	}
	m, _ := fs.committedMapping(p)
	for s := uint64(0); s < nDentries; s++ {
		slot := fs.slotAddr(s)
		vn, pn := p.Load8(slot), p.ReadPersistent8(slot)
		if vn != pn {
			v = append(v, fmt.Sprintf("dentry %d diverges: volatile %#x vs persisted %#x (silent rename loss)", s, vn, pn))
			continue
		}
		if vn == 0 {
			continue
		}
		if vi, pi := p.Load8(slot+8), p.ReadPersistent8(slot+8); vi != pi {
			v = append(v, fmt.Sprintf("dentry %d inode diverges: volatile %d vs persisted %d", s, vi, pi))
		}
	}
	for i := uint64(0); i < nInodes; i++ {
		ia := fs.inoAddr(i)
		vw, pw := p.Load8(ia), p.ReadPersistent8(ia)
		if vw != pw {
			v = append(v, fmt.Sprintf("inode %d state diverges: volatile %#x vs persisted %#x", i, vw, pw))
		}
		switch pw & 0xff {
		case stInit, stUnlinking:
			v = append(v, fmt.Sprintf("inode %d in-flight state %#x at quiescence", i, pw&0xff))
		}
		vs, ps := p.Load8(ia+8), p.ReadPersistent8(ia+8)
		if vs != ps {
			v = append(v, fmt.Sprintf("inode %d size diverges: volatile %d vs persisted %d", i, vs, ps))
		}
		if pw&0xff != stLive || m == nil {
			continue
		}
		// Committed content must match the volatile truth word for word.
		size := ps
		if size > maxFile {
			continue // already reported as torn
		}
		for w := uint64(0); w < size/8; w++ {
			b, ok := m[i*maxVBlocks+w/pfsWords]
			if !ok {
				continue // already reported by the point check
			}
			vb := p.Load8(fs.tabAddr(i, w/pfsWords))
			if vb == 0 {
				continue
			}
			if p.ReadPersistent8(b+(w%pfsWords)*8) != p.Load8(vb+(w%pfsWords)*8) {
				v = append(v, fmt.Sprintf("inode %d word %d content not durable", i, w))
				break
			}
		}
	}
	return v
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "MadFS-POSIX",
		Factory: NewPosix,
		Bugs: []apps.BugSpec{
			{
				ID: 21, New: true, Extension: true,
				StoreFunc:   "madfs.(*PFS).publishDentry",
				LoadFunc:    "madfs.(*PFS).lookupDentry",
				Description: "rename publishes the new dentry without persisting it before the persisted removal of the old — a crash orphans the inode",
			},
			{
				ID: 22, New: true, Extension: true,
				StoreFunc:   "madfs.(*PFS).appendData",
				LoadFunc:    "madfs.(*PFS).readData",
				Description: "append publishes the file size before the data, which is never flushed — a crash leaves the persisted size covering garbage",
			},
		},
		// The lock-free reader races every writer-side publication, and the
		// never-persisted mapping table (the inherited fsync contract, like
		// the original MadFS) races even the locked readers: once the mutex
		// is released with the store still unpersisted, HawkSet's windowed
		// lockset is empty. All within contract.
		Benign: apps.Pairs(
			[]string{
				"madfs.(*PFS).linkDentry", "madfs.(*PFS).publishDentry",
				"madfs.(*PFS).publishMapping", "madfs.(*PFS).publishSize",
				"madfs.(*PFS).appendData", "madfs.(*PFS).writeBlock",
				"madfs.(*PFS).Create", "madfs.(*PFS).Unlink", "madfs.(*PFS).Rename",
			},
			[]string{
				"madfs.(*PFS).lookupDentry", "madfs.(*PFS).lookupMapping",
				"madfs.(*PFS).readData", "madfs.(*PFS).ReadFile",
				"madfs.(*PFS).Create", "madfs.(*PFS).Rename", "madfs.(*PFS).Unlink",
				"madfs.(*PFS).Append", "madfs.(*PFS).WriteAt",
				"madfs.(*PFS).writeBlock", "madfs.(*PFS).resolve",
			},
		),
		Spec:     ycsb.FSSpec,
		PoolSize: 64 << 20,
		Recover: func(c *pmrt.Ctx, prev apps.App, fixed bool) error {
			return AttachPosix(c.Runtime(), prev.(*PFS).Super(), fixed).Recover(c)
		},
	})
}
