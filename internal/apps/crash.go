package apps

import (
	"fmt"

	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// CrashValidator is implemented by applications that can check their own
// persistent image for structural corruption: the post-crash evidence that a
// persistency-induced race is malign (a consistency checker in the spirit of
// PMRace's second stage, which validates post-failure state — §5.2 excludes
// it from the timing comparison, but it is what turns a race report into a
// demonstrated bug).
//
// ValidateCrash inspects the *persistent* view only (what survives a crash)
// and returns a description of every invariant violation found.
type CrashValidator interface {
	ValidateCrash(p *pmem.Pool) []string
}

// CrashPointValidator is the always-safe subset of crash validation: checks
// that must hold in the persistent image at EVERY device-serialization
// point of a correct execution, not only at operation boundaries. The full
// ValidateCrash may compare the volatile and persistent views (silent data
// loss, resurrected deletes) or assume no operation is mid-shift (duplicate
// or out-of-order entries) — those invariants transiently fail while a
// correctly-persisting operation is in flight, so the crash-injection
// harness applies them only at quiescent crash points and uses
// ValidateCrashPoint everywhere else.
type CrashPointValidator interface {
	ValidateCrashPoint(p *pmem.Pool) []string
}

// RunAndValidate executes a generated workload against the application and
// validates the crash image at the worst possible moment: immediately after
// the last operation, before any shutdown-time flushing. It returns the
// violations (empty when the image is consistent) and errors if the
// application does not implement CrashValidator.
func RunAndValidate(e *Entry, opCount int, seed int64, cfg RunConfig) ([]string, error) {
	if e.MaxOps > 0 && opCount > e.MaxOps {
		opCount = e.MaxOps
	}
	w := ycsb.Generate(e.Spec(opCount), seed)
	poolSize := e.PoolSize
	if poolSize == 0 {
		poolSize = 32 << 20
	}
	rt := pmrt.New(pmrt.Config{
		Seed:     cfg.Seed,
		PoolSize: poolSize,
		EADR:     cfg.EADR,
		NoTrace:  true, // crash checking needs no trace
	})
	app := e.Factory(rt, cfg.Fixed)
	if err := RunOn(rt, app, w); err != nil {
		return nil, err
	}
	v, ok := app.(CrashValidator)
	if !ok {
		return nil, fmt.Errorf("apps: %s does not implement crash validation", e.Name)
	}
	return v.ValidateCrash(rt.Pool), nil
}
