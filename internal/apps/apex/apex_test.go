package apex

import (
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/pmrt"
)

func TestPutSearchEraseUpdate(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	x := New(rt, true).(*Index)
	err := rt.Run(func(c *pmrt.Ctx) {
		x.Setup(c)
		for i := uint64(1); i <= 500; i++ {
			x.Put(c, i, i+5)
		}
		misses := 0
		for i := uint64(1); i <= 500; i++ {
			v, ok := x.Search(c, i)
			if ok && v != i+5 {
				t.Fatalf("Search(%d) = %d, want %d", i, v, i+5)
			}
			if !ok {
				misses++ // probe-window overflow sheds inserts; must be rare
			}
		}
		if misses > 25 {
			t.Fatalf("%d/500 keys unreachable; probe window too small", misses)
		}
		x.Update(c, 3, 42)
		if v, ok := x.Search(c, 3); ok && v != 42 {
			t.Fatal("update failed")
		}
		x.Erase(c, 3)
		if _, ok := x.Search(c, 3); ok {
			t.Fatal("erased key still found")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWritesPersistCorrectly: APEX's seeded races are reader-side; every
// write must be fully persisted even in the buggy variant.
func TestWritesPersistCorrectly(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	x := New(rt, false).(*Index)
	err := rt.Run(func(c *pmrt.Ctx) {
		x.Setup(c)
		for i := uint64(1); i <= 100; i++ {
			x.Put(c, i, i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Pool.DirtyLines() != 0 {
		t.Fatalf("%d dirty lines after buggy-variant writes; APEX stores must persist (§5.1)", rt.Pool.DirtyLines())
	}
}

// TestFixedSearchTakesLock: the reader-side repair eliminates every report.
func TestFixedSearchTakesLock(t *testing.T) {
	e, err := apps.Lookup("APEX")
	if err != nil {
		t.Fatal(err)
	}
	res, err := apps.Detect(e, 2000, 3, apps.RunConfig{Seed: 3, Fixed: true}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 0 {
		t.Fatalf("locked searches still race: %v", res.Reports)
	}
}

// TestBuggyReportsArePersistedStores: APEX's reports carry correctly
// persisted store windows (Unpersisted=false), the distinguishing feature of
// races #19/#20.
func TestBuggyReportsArePersistedStores(t *testing.T) {
	e, err := apps.Lookup("APEX")
	if err != nil {
		t.Fatal(err)
	}
	res, err := apps.Detect(e, 2000, 3, apps.RunConfig{Seed: 3}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("no reports from the buggy variant")
	}
	for _, r := range res.Reports {
		if r.Unpersisted {
			t.Fatalf("APEX report with unpersisted window: %s", r.String())
		}
	}
}
