// Package apex reimplements APEX (Lu et al., VLDB'21), the PM-and-
// concurrency-enabled learned index of the paper's evaluation: ALEX-style
// gapped arrays addressed by a learned linear model, writers protected by
// mutexes (implemented over CAS in the original, which is why §5.5 needed
// wrapper functions and a configuration file), and lock-free searches.
//
// The buggy variant carries the two Table 2 races (both new):
//
//	#19: a search races with insert/update — the writer stores and persists
//	    the slot value correctly inside its critical section, but the
//	    lock-free probe can observe the window between store and persist
//	    ((*Index).insertSlot / (*Index).updateSlot vs (*Index).probeValue,
//	    apex_nodes.h:3479/3798 vs 2915/2933).
//	#20: same with erase: the lock-free key probe can observe an unpersisted
//	    key-slot transition ((*Index).eraseSlot vs (*Index).probeKey,
//	    apex_nodes.h:3480/3606 vs 962).
//
// Unlike the missing-persist defects of the other applications, these stores
// are persisted; the defect is on the reader side, so the Fixed variant
// makes searches take the node lock.
package apex

import (
	"hawkset/internal/apps"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// Node layout (PM): a gapped array of slots addressed by a linear model,
// plus a stash absorbing probe-window overflow (APEX keeps ALEX's gapped
// arrays and adds stashes exactly for collision overflow).
//
//	+0   slots × (key uint64, val uint64); key 0 = gap
//	then stashSlots × (key uint64, val uint64)
const (
	nNodes       = 64
	slotsPerNode = 512
	stashSlots   = 64
	entrySize    = 16
	offStash     = slotsPerNode * entrySize
	nodeSize     = (slotsPerNode + stashSlots) * entrySize
	probeWindow  = 24 // exponential probe around the model's prediction

	// tombstone marks an erased entry: probing continues past it (key 0 is
	// the never-used gap that stops probes).
	tombstone = ^uint64(0)
)

// Index is the learned index.
type Index struct {
	rt    *pmrt.Runtime
	base  uint64 // PM address of the node array
	locks []*pmrt.Mutex
	fixed bool
}

// New creates an APEX instance. fixed makes searches acquire the node lock
// (the reader-side repair for races #19/#20).
func New(rt *pmrt.Runtime, fixed bool) apps.App {
	x := &Index{rt: rt, fixed: fixed}
	x.locks = make([]*pmrt.Mutex, nNodes)
	for i := range x.locks {
		x.locks[i] = rt.NewMutex("apex-node")
	}
	return x
}

// Name implements apps.App.
func (x *Index) Name() string { return "APEX" }

// Setup allocates the node array.
func (x *Index) Setup(c *pmrt.Ctx) {
	x.base = c.Alloc(nNodes * nodeSize)
	c.Persist(x.base, 8)
}

// Apply implements apps.App.
func (x *Index) Apply(c *pmrt.Ctx, op ycsb.Op) {
	key := op.Key | 1 // key 0 marks a gap
	switch op.Kind {
	case ycsb.OpInsert:
		x.Put(c, key, op.Value)
	case ycsb.OpUpdate:
		x.Update(c, key, op.Value)
	case ycsb.OpGet:
		x.Search(c, key)
	case ycsb.OpDelete:
		x.Erase(c, key)
	}
}

// predict is the learned model: node and in-node position from the key's
// high bits (an exactly-learned distribution, the best case for APEX).
func predict(key uint64) (node uint64, pos int) {
	h := key * 0x9e3779b97f4a7c15
	return (h >> 58) % nNodes, int((h >> 32) % slotsPerNode)
}

func (x *Index) slotAddr(node uint64, pos int) uint64 {
	return x.base + node*nodeSize + uint64(pos)*entrySize
}

// probeKey reads a slot key during a lock-free search (the apex_nodes.h:962
// load of race #20).
func (x *Index) probeKey(c *pmrt.Ctx, node uint64, pos int) uint64 {
	return c.Load8(x.slotAddr(node, pos))
}

// probeValue reads a slot value during a lock-free search (the
// apex_nodes.h:2915/2933 loads of race #19).
func (x *Index) probeValue(c *pmrt.Ctx, node uint64, pos int) uint64 {
	return c.Load8(x.slotAddr(node, pos) + 8)
}

// Search probes around the model's prediction. It is lock-free in the buggy
// (paper-faithful) variant; the Fixed variant takes the node lock.
func (x *Index) Search(c *pmrt.Ctx, key uint64) (uint64, bool) {
	node, pos := predict(key)
	if x.fixed {
		c.Lock(x.locks[node])
		defer c.Unlock(x.locks[node])
	}
	for d := 0; d < probeWindow; d++ {
		p := (pos + d) % slotsPerNode
		k := x.probeKey(c, node, p)
		if k == key {
			return x.probeValue(c, node, p), true
		}
		if k == 0 {
			return 0, false // gap: the key would have been placed here
		}
		// Tombstones keep the probe chain alive.
	}
	// Probe window exhausted at insert time means the key may sit in the
	// node's stash.
	for i := 0; i < stashSlots; i++ {
		k := c.Load8(x.stashAddr(node, i))
		if k == key {
			return c.Load8(x.stashAddr(node, i) + 8), true
		}
		if k == 0 {
			return 0, false
		}
	}
	return 0, false
}

// Put inserts (or overwrites) under the node lock; store and persist are
// both inside the critical section — correct persistency, yet racy against
// the lock-free search (race #19).
func (x *Index) Put(c *pmrt.Ctx, key, val uint64) {
	node, pos := predict(key)
	c.Lock(x.locks[node])
	defer c.Unlock(x.locks[node])
	reuse := -1
	for d := 0; d < probeWindow; d++ {
		p := (pos + d) % slotsPerNode
		k := c.Load8(x.slotAddr(node, p))
		if k == key || k == 0 {
			x.insertSlot(c, node, p, key, val)
			return
		}
		if k == tombstone && reuse < 0 {
			reuse = p
		}
	}
	if reuse >= 0 {
		x.insertSlot(c, node, reuse, key, val)
		return
	}
	// Probe window exhausted: overflow into the node's stash (APEX's
	// collision handling), same store/persist discipline as the slots.
	sreuse := -1
	for i := 0; i < stashSlots; i++ {
		k := c.Load8(x.stashAddr(node, i))
		if k == key || k == 0 {
			x.insertStash(c, node, i, key, val)
			return
		}
		if k == tombstone && sreuse < 0 {
			sreuse = i
		}
	}
	if sreuse >= 0 {
		x.insertStash(c, node, sreuse, key, val)
		return
	}
	// Stash full too: a full SMO (node split + model retrain) would run
	// here; the benchmark key space never fills a stash.
}

func (x *Index) stashAddr(node uint64, i int) uint64 {
	return x.base + node*nodeSize + offStash + uint64(i)*entrySize
}

// insertStash writes a stash entry, value first, persisted — the same
// discipline (and the same reader-side race #19 exposure) as insertSlot.
func (x *Index) insertStash(c *pmrt.Ctx, node uint64, i int, key, val uint64) {
	c.Store8(x.stashAddr(node, i)+8, val)
	c.Persist(x.stashAddr(node, i)+8, 8)
	c.Store8(x.stashAddr(node, i), key)
	c.Persist(x.stashAddr(node, i), 8)
}

// insertSlot writes value then key, each followed by its persist
// (apex_nodes.h:3479 — correctly persisted, §5.1).
func (x *Index) insertSlot(c *pmrt.Ctx, node uint64, pos int, key, val uint64) {
	c.Store8(x.slotAddr(node, pos)+8, val)
	c.Persist(x.slotAddr(node, pos)+8, 8)
	c.Store8(x.slotAddr(node, pos), key)
	c.Persist(x.slotAddr(node, pos), 8)
}

// Update overwrites an existing key under the node lock (apex_nodes.h:3798).
func (x *Index) Update(c *pmrt.Ctx, key, val uint64) {
	node, pos := predict(key)
	c.Lock(x.locks[node])
	defer c.Unlock(x.locks[node])
	for d := 0; d < probeWindow; d++ {
		p := (pos + d) % slotsPerNode
		k := c.Load8(x.slotAddr(node, p))
		if k == key {
			x.updateSlot(c, node, p, val)
			return
		}
		if k == 0 {
			return
		}
	}
	for i := 0; i < stashSlots; i++ {
		k := c.Load8(x.stashAddr(node, i))
		if k == key {
			c.Store8(x.stashAddr(node, i)+8, val)
			c.Persist(x.stashAddr(node, i)+8, 8)
			return
		}
		if k == 0 {
			return
		}
	}
}

// updateSlot overwrites the value in place, persisted (race #19's second
// store site).
func (x *Index) updateSlot(c *pmrt.Ctx, node uint64, pos int, val uint64) {
	c.Store8(x.slotAddr(node, pos)+8, val)
	c.Persist(x.slotAddr(node, pos)+8, 8)
}

// Erase clears the key slot under the node lock (apex_nodes.h:3480/3606 —
// persisted, but observable mid-window by the lock-free probe, race #20).
func (x *Index) Erase(c *pmrt.Ctx, key uint64) {
	node, pos := predict(key)
	c.Lock(x.locks[node])
	defer c.Unlock(x.locks[node])
	for d := 0; d < probeWindow; d++ {
		p := (pos + d) % slotsPerNode
		k := c.Load8(x.slotAddr(node, p))
		if k == key {
			x.eraseSlot(c, node, p)
			return
		}
		if k == 0 {
			return
		}
	}
	for i := 0; i < stashSlots; i++ {
		k := c.Load8(x.stashAddr(node, i))
		if k == key {
			c.Store8(x.stashAddr(node, i), tombstone)
			c.Persist(x.stashAddr(node, i), 8)
			return
		}
		if k == 0 {
			return
		}
	}
}

// eraseSlot tombstones a slot, persisted. The tombstone (not a bare gap)
// keeps probe chains past the erased entry reachable.
func (x *Index) eraseSlot(c *pmrt.Ctx, node uint64, pos int) {
	c.Store8(x.slotAddr(node, pos), tombstone)
	c.Persist(x.slotAddr(node, pos), 8)
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "APEX",
		Factory: New,
		Bugs: []apps.BugSpec{
			{ID: 19, New: true, AllowPersisted: true,
				StoreFunc: "apex.(*Index).insertSlot", LoadFunc: "apex.(*Index).probeValue",
				Description: "load unpersisted value"},
			// The paper reports two store sites for #19 (apex_nodes.h:3479
			// and :3798): the insert and the in-place update.
			{ID: 19, New: true, AllowPersisted: true,
				StoreFunc: "apex.(*Index).updateSlot", LoadFunc: "apex.(*Index).probeValue",
				Description: "load unpersisted value"},
			{ID: 20, New: true, AllowPersisted: true,
				StoreFunc: "apex.(*Index).eraseSlot", LoadFunc: "apex.(*Index).probeKey",
				Description: "load unpersisted key"},
		},
		Benign: apps.Pairs(
			[]string{
				"apex.(*Index).insertSlot", "apex.(*Index).updateSlot",
				"apex.(*Index).eraseSlot",
			},
			[]string{"apex.(*Index).probeKey", "apex.(*Index).probeValue", "apex.(*Index).Search"},
		),
		Spec: ycsb.DefaultSpec,
	})
}
