package pclht

import (
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/pmrt"
)

func TestPutGetDelete(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tab := New(rt, true).(*Table)
	err := rt.Run(func(c *pmrt.Ctx) {
		tab.Setup(c)
		for i := uint64(0); i < 400; i++ {
			tab.Put(c, i, i+1000)
		}
		for i := uint64(0); i < 400; i++ {
			v, ok := tab.Get(c, i)
			if !ok || v != i+1000 {
				t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
			}
		}
		tab.Put(c, 3, 42)
		if v, _ := tab.Get(c, 3); v != 42 {
			t.Fatal("update failed")
		}
		tab.Delete(c, 3)
		if _, ok := tab.Get(c, 3); ok {
			t.Fatal("deleted key still present")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRehashGrowsTable: enough inserts trigger a rehash and the data
// survives it.
func TestRehashGrowsTable(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tab := New(rt, true).(*Table)
	const n = 2000 // > 256 buckets × 3 × 0.75
	err := rt.Run(func(c *pmrt.Ctx) {
		tab.Setup(c)
		before := tab.loadRoot(c).nBuckets
		for i := uint64(0); i < n; i++ {
			tab.Put(c, i, i)
		}
		after := tab.loadRoot(c).nBuckets
		if after <= before {
			t.Fatalf("no rehash: %d -> %d buckets", before, after)
		}
		for i := uint64(0); i < n; i++ {
			if v, ok := tab.Get(c, i); !ok || v != i {
				t.Fatalf("post-rehash Get(%d) = (%d,%v)", i, v, ok)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBuggyRehashLosesRootPointer: crash right after a buggy rehash recovers
// to the old, stale table root (bug #4's failure mode).
func TestBuggyRehashLosesRootPointer(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 64 << 20})
	tab := New(rt, false).(*Table)
	var volatileRoot uint64
	err := rt.Run(func(c *pmrt.Ctx) {
		tab.Setup(c)
		for i := uint64(0); i < 2000; i++ {
			tab.Put(c, i, i)
		}
		volatileRoot = c.Load8(tab.meta)
	})
	if err != nil {
		t.Fatal(err)
	}
	persistedRoot := rt.Pool.ReadPersistent8(tab.meta)
	if persistedRoot == volatileRoot {
		t.Fatal("buggy rehash persisted the root pointer — bug #4 not seeded")
	}
}

// TestSpinLockWordReported: the CAS lock words live in PM and are stored
// without flushes, so the lockset analysis reports them — the realistic
// source of P-CLHT's non-zero FP/BR tail in Table 4.
func TestSpinLockWordReported(t *testing.T) {
	e, err := apps.Lookup("P-CLHT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := apps.Detect(e, 2000, 5, apps.RunConfig{Seed: 5, Fixed: true}, hawkset.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fixed variant: no malign races, but some reports remain (lock words,
	// lock-free readers).
	if bd := apps.Breakdown(e, res); bd[apps.Malign] != 0 {
		t.Fatalf("fixed P-CLHT has malign reports: %v", bd)
	}
	if len(res.Reports) == 0 {
		t.Fatal("expected residual benign/FP reports from CAS lock words and lock-free gets")
	}
}
