// Package pclht reimplements P-CLHT (Lee et al., SOSP'19 RECIPE), the
// cache-line hash table of the paper's evaluation: one bucket per cache
// line, CAS-based per-bucket locks whose lock words live in PM (the pattern
// that required wrapper functions and a configuration file in §5.5), a
// global resize lock for rehashing, and lock-free gets.
//
// The buggy variant carries Table 2 race #4 (known, reported by PMRace): a
// rehash allocates a new table and swaps the root pointer without persisting
// it. A thread that inserts into the new table before the pointer persists
// loses its insert if the system crashes before the rehash completes.
package pclht

import (
	"fmt"

	"hawkset/internal/apps"
	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// Bucket layout (PM), exactly one cache line: 3 key/value pairs plus a
// pointer to an overflow bucket.
//
//	+0   keys   3 × uint64 (0 = empty)
//	+24  vals   3 × uint64
//	+48  next   uint64 overflow-bucket pointer
//	+56  pad
const (
	entriesPerBucket = 3
	offKeys          = 0
	offVals          = 24
	offNext          = 48
	bucketSize       = 64
)

// table is one hash-table generation: a power-of-two bucket array.
type table struct {
	base     uint64
	nBuckets uint64
	locks    []*pmrt.SpinLock
}

// Table is the resizable PM hash table.
type Table struct {
	rt     *pmrt.Runtime
	meta   uint64 // PM address of the root table pointer
	resize *pmrt.RWMutex
	fixed  bool

	// cur is the volatile view of the current generation (the PM root
	// pointer is authoritative for crash recovery; the volatile mirror keys
	// the lock arrays).
	gens map[uint64]*table
	// elems counts entries to trigger rehashing.
	elems int
}

// New creates a P-CLHT instance. fixed repairs race #4.
func New(rt *pmrt.Runtime, fixed bool) apps.App {
	return &Table{rt: rt, resize: rt.NewRWMutex("clht-resize"), fixed: fixed, gens: map[uint64]*table{}}
}

// Name implements apps.App.
func (t *Table) Name() string { return "P-CLHT" }

// Setup allocates the root pointer and the first generation.
func (t *Table) Setup(c *pmrt.Ctx) {
	t.meta = c.Alloc(8)
	g := t.newTable(c, 256)
	c.Store8(t.meta, g.base)
	c.Persist(t.meta, 8)
}

func (t *Table) newTable(c *pmrt.Ctx, n uint64) *table {
	g := &table{base: c.Alloc(n * bucketSize), nBuckets: n}
	g.locks = make([]*pmrt.SpinLock, n)
	for i := range g.locks {
		g.locks[i] = t.rt.NewSpinLock(c, "clht-bucket")
	}
	t.gens[g.base] = g
	c.Persist(g.base, 8)
	return g
}

// Apply implements apps.App.
func (t *Table) Apply(c *pmrt.Ctx, op ycsb.Op) {
	switch op.Kind {
	case ycsb.OpInsert:
		t.Put(c, op.Key, op.Value)
	case ycsb.OpUpdate:
		t.Put(c, op.Key, op.Value)
	case ycsb.OpGet:
		t.Get(c, op.Key)
	case ycsb.OpDelete:
		t.Delete(c, op.Key)
	}
}

func hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xc2b2ae3d27d4eb4f
	key ^= key >> 29
	return key
}

// key 0 is reserved as the empty marker; workloads remap it.
func norm(key uint64) uint64 {
	if key == 0 {
		return 1<<63 + 7
	}
	return key
}

func keyAddr(b uint64, i int) uint64 { return b + offKeys + uint64(i)*8 }
func valAddr(b uint64, i int) uint64 { return b + offVals + uint64(i)*8 }

// loadRoot reads the root table pointer lock-free — the load side of bug #4.
func (t *Table) loadRoot(c *pmrt.Ctx) *table {
	base := c.Load8(t.meta)
	return t.gens[base]
}

// Get walks the bucket chain lock-free.
func (t *Table) Get(c *pmrt.Ctx, key uint64) (uint64, bool) {
	key = norm(key)
	g := t.loadRoot(c)
	b := g.base + (hash(key)%g.nBuckets)*bucketSize
	for b != 0 {
		for i := 0; i < entriesPerBucket; i++ {
			if c.Load8(keyAddr(b, i)) == key {
				return c.Load8(valAddr(b, i)), true
			}
		}
		b = c.Load8(b + offNext)
	}
	return 0, false
}

// Put inserts or updates under the bucket's CAS lock (shared-mode resize
// lock keeps rehashing exclusive).
func (t *Table) Put(c *pmrt.Ctx, key, val uint64) {
	key = norm(key)
	c.RLock(t.resize)
	g := t.loadRoot(c)
	idx := hash(key) % g.nBuckets
	lk := g.locks[idx]
	c.SpinLock(lk)
	b := g.base + idx*bucketSize
	var freeB uint64
	freeI := -1
	for {
		for i := 0; i < entriesPerBucket; i++ {
			k := c.Load8(keyAddr(b, i))
			if k == key {
				c.Store8(valAddr(b, i), val)
				c.Persist(valAddr(b, i), 8)
				c.SpinUnlock(lk)
				c.RUnlock(t.resize)
				return
			}
			if k == 0 && freeI < 0 {
				freeB, freeI = b, i
			}
		}
		next := c.Load8(b + offNext)
		if next == 0 {
			break
		}
		b = next
	}
	if freeI < 0 {
		// Chain full: append an overflow bucket (P-CLHT's insert-on-full),
		// fully persisted before linking.
		nb := c.Alloc(bucketSize)
		c.Store8(keyAddr(nb, 0), key)
		c.Store8(valAddr(nb, 0), val)
		c.Persist(nb, bucketSize)
		c.Store8(b+offNext, nb)
		c.Persist(b+offNext, 8)
	} else {
		// CLHT ordering: value first, then the key publishes the entry.
		c.Store8(valAddr(freeB, freeI), val)
		c.Persist(valAddr(freeB, freeI), 8)
		c.Store8(keyAddr(freeB, freeI), key)
		c.Persist(keyAddr(freeB, freeI), 8)
	}
	t.elems++
	needRehash := t.elems > int(g.nBuckets)*entriesPerBucket*3/4
	c.SpinUnlock(lk)
	c.RUnlock(t.resize)
	if needRehash {
		t.rehash(c)
	}
}

// rehash doubles the table under the exclusive resize lock and publishes the
// new generation by swapping the root pointer. BUG #4 (Table 2 #4, known):
// the buggy variant does not persist the root pointer before other threads
// start inserting into the new table; a crash makes the old root
// authoritative again and every post-rehash insert is lost.
func (t *Table) rehash(c *pmrt.Ctx) {
	c.WLock(t.resize)
	g := t.loadRoot(c)
	if t.elems <= int(g.nBuckets)*entriesPerBucket*3/4 {
		c.WUnlock(t.resize) // another thread already rehashed
		return
	}
	ng := t.newTable(c, g.nBuckets*2)
	for bi := uint64(0); bi < g.nBuckets; bi++ {
		b := g.base + bi*bucketSize
		for b != 0 {
			for i := 0; i < entriesPerBucket; i++ {
				k := c.Load8(keyAddr(b, i))
				if k == 0 {
					continue
				}
				v := c.Load8(valAddr(b, i))
				nb := ng.base + (hash(k)%ng.nBuckets)*bucketSize
				t.rehashInsert(c, ng, nb, k, v)
			}
			b = c.Load8(b + offNext)
		}
	}
	c.Store8(t.meta, ng.base)
	if t.fixed {
		c.Persist(t.meta, 8)
	}
	c.WUnlock(t.resize)
}

// rehashInsert places one migrated entry into the (still private) new
// generation, appending overflow buckets as needed.
func (t *Table) rehashInsert(c *pmrt.Ctx, ng *table, b uint64, key, val uint64) {
	for {
		for i := 0; i < entriesPerBucket; i++ {
			if c.Load8(keyAddr(b, i)) == 0 {
				c.Store8(valAddr(b, i), val)
				c.Store8(keyAddr(b, i), key)
				c.Persist(b, bucketSize)
				return
			}
		}
		next := c.Load8(b + offNext)
		if next == 0 {
			nb := c.Alloc(bucketSize)
			c.Store8(keyAddr(nb, 0), key)
			c.Store8(valAddr(nb, 0), val)
			c.Persist(nb, bucketSize)
			c.Store8(b+offNext, nb)
			c.Persist(b+offNext, 8)
			return
		}
		b = next
	}
}

// Delete clears the key's slot under the bucket's CAS lock.
func (t *Table) Delete(c *pmrt.Ctx, key uint64) {
	key = norm(key)
	c.RLock(t.resize)
	g := t.loadRoot(c)
	idx := hash(key) % g.nBuckets
	lk := g.locks[idx]
	c.SpinLock(lk)
	b := g.base + idx*bucketSize
	for b != 0 {
		for i := 0; i < entriesPerBucket; i++ {
			if c.Load8(keyAddr(b, i)) == key {
				c.Store8(keyAddr(b, i), 0)
				c.Persist(keyAddr(b, i), 8)
				t.elems--
				c.SpinUnlock(lk)
				c.RUnlock(t.resize)
				return
			}
		}
		b = c.Load8(b + offNext)
	}
	c.SpinUnlock(lk)
	c.RUnlock(t.resize)
}

// ValidateCrash compares the entries reachable through the persisted root
// pointer with those reachable through the volatile root: bug #4's
// unpersisted root swap makes the crash image resolve to the pre-rehash
// generation, silently losing every post-rehash insert.
func (t *Table) ValidateCrash(p *pmem.Pool) []string {
	var out []string
	volatileKeys := t.countKeys(p, p.Load8, p.Load8(t.meta))
	persistKeys := t.countKeys(p, p.ReadPersistent8, p.ReadPersistent8(t.meta))
	if persistKeys < volatileKeys {
		out = append(out, fmt.Sprintf(
			"silent data loss: %d of %d entries unreachable in the crash image (bug #4)",
			volatileKeys-persistKeys, volatileKeys))
	}
	return out
}

// countKeys walks a generation through the given memory view.
func (t *Table) countKeys(p *pmem.Pool, read func(uint64) uint64, base uint64) int {
	g := t.gens[base]
	if g == nil {
		return 0
	}
	n := 0
	for bi := uint64(0); bi < g.nBuckets; bi++ {
		b := g.base + bi*bucketSize
		hops := 0
		for b != 0 && hops < 1<<10 {
			for i := 0; i < entriesPerBucket; i++ {
				if read(keyAddr(b, i)) != 0 {
					n++
				}
			}
			b = read(b + offNext)
			hops++
		}
	}
	return n
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "P-CLHT",
		Factory: New,
		Bugs: []apps.BugSpec{
			{
				ID: 4, New: false,
				StoreFunc: "pclht.(*Table).rehash", LoadFunc: "pclht.(*Table).loadRoot",
				Description: "load unpersisted pointer",
			},
		},
		Benign: apps.Pairs(
			[]string{
				"pclht.(*Table).Put", "pclht.(*Table).Delete",
				"pclht.(*Table).rehash", "pclht.(*Table).rehashInsert",
			},
			[]string{"pclht.(*Table).Get", "pclht.(*Table).loadRoot"},
		),
		Spec: ycsb.DefaultSpec,
	})
}
