package apps_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hawkset/internal/pmrt"

	"hawkset/internal/apps/apex"
	"hawkset/internal/apps/fastfair"
	"hawkset/internal/apps/memcachedpm"
	"hawkset/internal/apps/part"
	"hawkset/internal/apps/pclht"
	"hawkset/internal/apps/pmasstree"
	"hawkset/internal/apps/turbohash"
	"hawkset/internal/apps/wipe"
)

// kvAdapter exposes a uniform single-threaded KV surface over each store for
// model-based testing against a Go map.
type kvAdapter struct {
	name string
	// build creates the store and returns put/get/del closures. The model
	// runs both variants: missing persists change what survives a crash,
	// never the pre-crash volatile behavior.
	build func(rt *pmrt.Runtime, c *pmrt.Ctx, fixed bool) (put func(k, v uint64), get func(k uint64) (uint64, bool), del func(k uint64))
	// strict requires present keys to be found; non-strict stores may shed
	// inserts (APEX's bounded probe window).
	strict bool
}

func adapters() []kvAdapter {
	return []kvAdapter{
		{name: "Fast-Fair", strict: true,
			build: func(rt *pmrt.Runtime, c *pmrt.Ctx, fixed bool) (func(k, v uint64), func(k uint64) (uint64, bool), func(k uint64)) {
				t := fastfair.New(rt, fixed).(*fastfair.Tree)
				t.Setup(c)
				return func(k, v uint64) { t.Insert(c, k, v) },
					func(k uint64) (uint64, bool) { return t.Get(c, k) },
					func(k uint64) { t.Delete(c, k) }
			}},
		{name: "TurboHash", strict: true,
			build: func(rt *pmrt.Runtime, c *pmrt.Ctx, fixed bool) (func(k, v uint64), func(k uint64) (uint64, bool), func(k uint64)) {
				t := turbohash.New(rt, fixed).(*turbohash.Table)
				t.Setup(c)
				return func(k, v uint64) { t.Put(c, k, v) },
					func(k uint64) (uint64, bool) { return t.Get(c, k) },
					func(k uint64) { t.Delete(c, k) }
			}},
		{name: "P-CLHT", strict: true,
			build: func(rt *pmrt.Runtime, c *pmrt.Ctx, fixed bool) (func(k, v uint64), func(k uint64) (uint64, bool), func(k uint64)) {
				t := pclht.New(rt, fixed).(*pclht.Table)
				t.Setup(c)
				return func(k, v uint64) { t.Put(c, k, v) },
					func(k uint64) (uint64, bool) { return t.Get(c, k) },
					func(k uint64) { t.Delete(c, k) }
			}},
		{name: "P-Masstree", strict: true,
			build: func(rt *pmrt.Runtime, c *pmrt.Ctx, fixed bool) (func(k, v uint64), func(k uint64) (uint64, bool), func(k uint64)) {
				t := pmasstree.New(rt, fixed).(*pmasstree.Tree)
				t.Setup(c)
				return func(k, v uint64) { t.Put(c, k, v) },
					func(k uint64) (uint64, bool) { return t.Get(c, k) },
					func(k uint64) { t.Delete(c, k) }
			}},
		{name: "P-ART", strict: true,
			build: func(rt *pmrt.Runtime, c *pmrt.Ctx, fixed bool) (func(k, v uint64), func(k uint64) (uint64, bool), func(k uint64)) {
				t := part.New(rt, fixed).(*part.Tree)
				t.Setup(c)
				return func(k, v uint64) { t.Put(c, k, v) },
					func(k uint64) (uint64, bool) { return t.Get(c, k) },
					func(k uint64) { t.Delete(c, k) }
			}},
		{name: "WIPE", strict: true,
			build: func(rt *pmrt.Runtime, c *pmrt.Ctx, fixed bool) (func(k, v uint64), func(k uint64) (uint64, bool), func(k uint64)) {
				x := wipe.New(rt, fixed).(*wipe.Index)
				x.Setup(c)
				return func(k, v uint64) { x.Put(c, k, v) },
					func(k uint64) (uint64, bool) { return x.Get(c, k) },
					func(k uint64) { x.Delete(c, k) }
			}},
		{name: "Memcached-pmem", strict: true,
			build: func(rt *pmrt.Runtime, c *pmrt.Ctx, fixed bool) (func(k, v uint64), func(k uint64) (uint64, bool), func(k uint64)) {
				cc := memcachedpm.New(rt, fixed).(*memcachedpm.Cache)
				cc.Setup(c)
				return func(k, v uint64) { cc.Set(c, k, v) },
					func(k uint64) (uint64, bool) { return cc.Get(c, k) },
					func(k uint64) { cc.Delete(c, k) }
			}},
		{name: "APEX", strict: true,
			build: func(rt *pmrt.Runtime, c *pmrt.Ctx, fixed bool) (func(k, v uint64), func(k uint64) (uint64, bool), func(k uint64)) {
				x := apex.New(rt, fixed).(*apex.Index)
				x.Setup(c)
				return func(k, v uint64) { x.Put(c, k, v) },
					func(k uint64) (uint64, bool) { return x.Search(c, k) },
					func(k uint64) { x.Erase(c, k) }
			}},
	}
}

// TestModelConformance drives every store through random single-threaded
// op sequences and checks it against a reference map: any present key
// returns the last value written; strict stores additionally never lose a
// live key.
func TestModelConformance(t *testing.T) {
	for _, ad := range adapters() {
		for _, fixed := range []bool{true, false} {
			ad, fixed := ad, fixed
			name := ad.name + "/buggy"
			if fixed {
				name = ad.name + "/fixed"
			}
			t.Run(name, func(t *testing.T) {
				f := func(seed int64) bool {
					rng := rand.New(rand.NewSource(seed))
					rt := pmrt.New(pmrt.Config{Seed: seed, PoolSize: 64 << 20, NoTrace: true})
					ok := true
					err := rt.Run(func(c *pmrt.Ctx) {
						put, get, del := ad.build(rt, c, fixed)
						ref := map[uint64]uint64{}
						for i := 0; i < 300 && ok; i++ {
							k := uint64(rng.Intn(200)) | 1 // several stores reserve key 0
							switch rng.Intn(4) {
							case 0, 1:
								v := rng.Uint64() | 1
								put(k, v)
								ref[k] = v
							case 2:
								del(k)
								delete(ref, k)
							default:
								v, found := get(k)
								want, exists := ref[k]
								if found && (!exists || v != want) {
									t.Logf("%s: Get(%d) = %d, model says (%d,%v)", ad.name, k, v, want, exists)
									ok = false
								}
								if ad.strict && exists && !found {
									t.Logf("%s: Get(%d) missed a live key", ad.name, k)
									ok = false
								}
							}
						}
						// Final sweep.
						for k, want := range ref {
							v, found := get(k)
							if found && v != want {
								t.Logf("%s: final Get(%d) = %d, want %d", ad.name, k, v, want)
								ok = false
							}
							if ad.strict && !found {
								t.Logf("%s: final Get(%d) lost the key", ad.name, k)
								ok = false
							}
						}
					})
					if err != nil {
						t.Logf("%s: run error: %v", ad.name, err)
						return false
					}
					return ok
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
