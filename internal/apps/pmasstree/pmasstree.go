// Package pmasstree reimplements P-Masstree (Lee et al., SOSP'19 RECIPE), a
// trie-like concatenation of B+-tree nodes backed by PM: writers (put,
// delete) take per-tree locks while gets are lock-free (Table 1).
//
// The buggy variant carries the three Table 2 races the paper attributes to
// the operations Durinn also flagged:
//
//	#5: a put into a leaf publishes the value without persisting it
//	    ((*Tree).putValue) — a lock-free get reads the unpersisted value.
//	#6: the leaf-split path copies entries into the new leaf and publishes
//	    them unpersisted ((*Tree).splitCopy).
//	#7: a delete clears the key slot without persisting the removal
//	    ((*Tree).removeEntry) — a lock-free get misses a deleted key whose
//	    deletion can vanish in a crash.
package pmasstree

import (
	"fmt"

	"hawkset/internal/apps"
	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// The trie layer: a fixed 256-way radix directory on the key's top byte,
// each slot holding a chain of sorted PM leaves (the B+-tree layer collapsed
// to its leaf level, which is where all three races live).
//
// Leaf layout (PM):
//
//	+0   count uint64
//	+8   next  uint64
//	+16  16 × (key uint64, val uint64)
const (
	radix      = 64
	leafCap    = 8
	offCount   = 0
	offNext    = 8
	offEntries = 16
	entrySize  = 16
	leafSize   = offEntries + leafCap*entrySize
)

// Tree is the PM masstree.
type Tree struct {
	rt    *pmrt.Runtime
	dir   uint64 // PM address of the radix directory (256 pointers)
	locks []*pmrt.Mutex
	fixed bool
}

// New creates a P-Masstree instance. fixed repairs races #5–#7.
func New(rt *pmrt.Runtime, fixed bool) apps.App {
	t := &Tree{rt: rt, fixed: fixed}
	t.locks = make([]*pmrt.Mutex, radix)
	for i := range t.locks {
		t.locks[i] = rt.NewMutex("masstree-slot")
	}
	return t
}

// Attach binds a tree handle to an existing persistent image (post-crash
// recovery): dir is the directory address the pre-crash instance allocated.
func Attach(rt *pmrt.Runtime, dir uint64, fixed bool) *Tree {
	t := &Tree{rt: rt, dir: dir, fixed: fixed}
	t.locks = make([]*pmrt.Mutex, radix)
	for i := range t.locks {
		t.locks[i] = rt.NewMutex("masstree-slot")
	}
	return t
}

// Dir returns the PM address of the radix directory (for recovery).
func (t *Tree) Dir() uint64 { return t.dir }

// Name implements apps.App.
func (t *Tree) Name() string { return "P-Masstree" }

// Setup allocates the directory.
func (t *Tree) Setup(c *pmrt.Ctx) {
	t.dir = c.Alloc(radix * 8)
	c.Persist(t.dir, 8)
}

// Apply implements apps.App.
func (t *Tree) Apply(c *pmrt.Ctx, op ycsb.Op) {
	switch op.Kind {
	case ycsb.OpInsert, ycsb.OpUpdate:
		// Inserts and updates are the same operation (§5, Workloads).
		t.Put(c, op.Key, op.Value)
	case ycsb.OpGet:
		t.Get(c, op.Key)
	case ycsb.OpScan:
		n := int(op.Len)
		if n == 0 {
			n = 16
		}
		t.Scan(c, op.Key, n)
	case ycsb.OpDelete:
		t.Delete(c, op.Key)
	}
}

// Scan walks one directory slot's sorted leaf chain lock-free, returning up
// to n pairs with keys >= start (masstree's scans are per-trie-node range
// walks; the hash directory bounds ours to one slot's chain).
func (t *Tree) Scan(c *pmrt.Ctx, start uint64, n int) [][2]uint64 {
	leaf := c.Load8(t.slotAddr(slotOf(start)))
	var out [][2]uint64
	for leaf != 0 && len(out) < n {
		count := int(c.Load8(leaf + offCount))
		for i := 0; i < count && len(out) < n; i++ {
			k := c.Load8(keyAddr(leaf, i))
			if k < start {
				continue
			}
			out = append(out, [2]uint64{k, c.Load8(valAddr(leaf, i))})
		}
		leaf = c.Load8(leaf + offNext)
	}
	return out
}

// slotOf picks the directory slot from a mix of the key: masstree's trie
// layer consumes key bytes, but benchmark keys occupy a small dense range,
// so the directory hashes them first (a hash-trie, as e.g. CLHT-trie
// variants do).
func slotOf(key uint64) uint64 {
	key *= 0x9e3779b97f4a7c15
	return key >> 56 % radix
}
func keyAddr(leaf uint64, i int) uint64  { return leaf + offEntries + uint64(i)*entrySize }
func valAddr(leaf uint64, i int) uint64  { return keyAddr(leaf, i) + 8 }
func (t *Tree) slotAddr(s uint64) uint64 { return t.dir + s*8 }

func (t *Tree) newLeaf(c *pmrt.Ctx) uint64 {
	l := c.Alloc(leafSize)
	c.Store8(l+offCount, 0)
	c.Store8(l+offNext, 0)
	c.Persist(l, 16)
	return l
}

// Get searches lock-free.
func (t *Tree) Get(c *pmrt.Ctx, key uint64) (uint64, bool) {
	leaf := c.Load8(t.slotAddr(slotOf(key)))
	for leaf != 0 {
		count := int(c.Load8(leaf + offCount))
		for i := 0; i < count; i++ {
			k := c.Load8(keyAddr(leaf, i))
			if k == key {
				return c.Load8(valAddr(leaf, i)), true
			}
			if k > key {
				return 0, false
			}
		}
		leaf = c.Load8(leaf + offNext)
	}
	return 0, false
}

// Put inserts or updates key under the slot lock.
func (t *Tree) Put(c *pmrt.Ctx, key, val uint64) {
	s := slotOf(key)
	c.Lock(t.locks[s])
	defer c.Unlock(t.locks[s])

	head := c.Load8(t.slotAddr(s))
	if head == 0 {
		leaf := t.newLeaf(c)
		t.putValue(c, leaf, 0, key, val)
		c.Store8(leaf+offCount, 1)
		c.Persist(leaf+offCount, 8)
		c.Store8(t.slotAddr(s), leaf)
		c.Persist(t.slotAddr(s), 8)
		return
	}
	leaf := head
	for {
		count := int(c.Load8(leaf + offCount))
		last := uint64(0)
		if count > 0 {
			last = c.Load8(keyAddr(leaf, count-1))
		}
		next := c.Load8(leaf + offNext)
		// In-place update?
		for i := 0; i < count; i++ {
			if c.Load8(keyAddr(leaf, i)) == key {
				t.putValue(c, leaf, i, key, val)
				return
			}
		}
		if key < last || next == 0 {
			if count == leafCap {
				leaf, count = t.splitLeaf(c, leaf, key)
				continue
			}
			pos := count
			for i := 0; i < count; i++ {
				if key < c.Load8(keyAddr(leaf, i)) {
					pos = i
					break
				}
			}
			for i := count; i > pos; i-- {
				k := c.Load8(keyAddr(leaf, i-1))
				v := c.Load8(valAddr(leaf, i-1))
				c.Store8(keyAddr(leaf, i), k)
				c.Store8(valAddr(leaf, i), v)
				c.Persist(keyAddr(leaf, i), entrySize)
			}
			t.putValue(c, leaf, pos, key, val)
			c.Store8(leaf+offCount, uint64(count+1))
			c.Persist(leaf+offCount, 8)
			return
		}
		leaf = next
	}
}

// putValue writes one entry. BUG #5 (Table 2 #5, Durinn-overlapping): the
// buggy variant publishes the entry without persisting it; lock-free gets
// read the unpersisted value.
func (t *Tree) putValue(c *pmrt.Ctx, leaf uint64, i int, key, val uint64) {
	c.Store8(keyAddr(leaf, i), key)
	c.Store8(valAddr(leaf, i), val)
	if t.fixed {
		c.Persist(keyAddr(leaf, i), entrySize)
	}
}

// splitLeaf moves the upper half of a full leaf into a fresh sibling and
// returns the leaf that should receive key.
func (t *Tree) splitLeaf(c *pmrt.Ctx, leaf uint64, key uint64) (uint64, int) {
	sib := t.newLeaf(c)
	half := leafCap / 2
	t.splitCopy(c, leaf, sib, half)
	c.Store8(sib+offNext, c.Load8(leaf+offNext))
	c.Store8(sib+offCount, uint64(leafCap-half))
	c.Persist(sib+offCount, 16)
	c.Store8(leaf+offNext, sib)
	c.Store8(leaf+offCount, uint64(half))
	c.Persist(leaf, 16)
	if key >= c.Load8(keyAddr(sib, 0)) {
		return sib, leafCap - half
	}
	return leaf, half
}

// splitCopy copies the upper half of a splitting leaf into the sibling.
// BUG #6 (Table 2 #6, Durinn-overlapping): the buggy variant skips the
// persist of the copied entries; once the sibling is linked, lock-free gets
// traverse to unpersisted data.
func (t *Tree) splitCopy(c *pmrt.Ctx, leaf, sib uint64, half int) {
	for i := half; i < leafCap; i++ {
		k := c.Load8(keyAddr(leaf, i))
		v := c.Load8(valAddr(leaf, i))
		c.Store8(keyAddr(sib, i-half), k)
		c.Store8(valAddr(sib, i-half), v)
	}
	if t.fixed {
		c.Persist(keyAddr(sib, 0), uint64(leafCap-half)*entrySize)
	}
}

// Delete removes key under the slot lock.
func (t *Tree) Delete(c *pmrt.Ctx, key uint64) {
	s := slotOf(key)
	c.Lock(t.locks[s])
	defer c.Unlock(t.locks[s])

	leaf := c.Load8(t.slotAddr(s))
	for leaf != 0 {
		count := int(c.Load8(leaf + offCount))
		for i := 0; i < count; i++ {
			if c.Load8(keyAddr(leaf, i)) == key {
				t.removeEntry(c, leaf, i, count)
				return
			}
		}
		leaf = c.Load8(leaf + offNext)
	}
}

// removeEntry compacts the leaf over the removed slot. BUG #7 (Table 2 #7,
// Durinn-overlapping): the buggy variant does not persist the removal, so a
// concurrent lock-free get already misses the key while a crash resurrects
// it ("unpersisted removal").
func (t *Tree) removeEntry(c *pmrt.Ctx, leaf uint64, i, count int) {
	for j := i; j < count-1; j++ {
		k := c.Load8(keyAddr(leaf, j+1))
		v := c.Load8(valAddr(leaf, j+1))
		c.Store8(keyAddr(leaf, j), k)
		c.Store8(valAddr(leaf, j), v)
	}
	c.Store8(leaf+offCount, uint64(count-1))
	if t.fixed {
		c.Persist(keyAddr(leaf, 0), uint64(count)*entrySize)
		c.Persist(leaf+offCount, 8)
	}
}

// ValidateCrash walks every persisted leaf chain: a persisted count
// admitting an empty key slot is the torn state bugs #5/#6 leave behind, and
// keys out of sorted order betray a torn shift.
func (t *Tree) ValidateCrash(p *pmem.Pool) []string {
	out := t.divergence(p)
	for s := uint64(0); s < radix; s++ {
		leaf := p.ReadPersistent8(t.slotAddr(s))
		hops := 0
		for leaf != 0 && hops < 1<<12 {
			count := int(p.ReadPersistent8(leaf + offCount))
			if count > leafCap {
				out = append(out, fmt.Sprintf("leaf %#x: persisted count %d exceeds capacity", leaf, count))
				break
			}
			prev := uint64(0)
			for i := 0; i < count; i++ {
				k := p.ReadPersistent8(keyAddr(leaf, i))
				if k == 0 {
					out = append(out, fmt.Sprintf(
						"leaf %#x entry %d: count persisted but key slot empty (torn put, bugs #5/#6)", leaf, i))
					continue
				}
				if k <= prev { // keys are unique: equality means a torn shift duplicated a slot
					out = append(out, fmt.Sprintf(
						"leaf %#x entry %d: persisted keys out of order (%d after %d)", leaf, i, k, prev))
				}
				prev = k
			}
			leaf = p.ReadPersistent8(leaf + offNext)
			hops++
		}
	}
	return out
}

// divergence compares the key sets reachable in the volatile (pre-crash)
// and persistent (post-crash) views. Keys only the volatile view reaches
// are silent data loss (bugs #5/#6: published-but-unpersisted entries);
// keys only the persistent view reaches are resurrected deletes (bug #7:
// the removal was visible to readers but never persisted, so the crash
// undoes it). Sound only when no operation is in flight — the
// crash-injection harness applies it at quiescent crash points and at
// end-of-run, where the fixed variant's views agree by construction.
func (t *Tree) divergence(p *pmem.Pool) []string {
	vol := t.collectKeys(p.Load8)
	per := t.collectKeys(p.ReadPersistent8)
	loss, res := 0, 0
	for k := range vol {
		if !per[k] {
			loss++
		}
	}
	for k := range per {
		if !vol[k] {
			res++
		}
	}
	var out []string
	if loss > 0 {
		out = append(out, fmt.Sprintf(
			"silent data loss: %d of %d keys unreachable in the crash image (bugs #5/#6)", loss, len(vol)))
	}
	if res > 0 {
		out = append(out, fmt.Sprintf(
			"resurrected deletes: %d keys present only in the crash image (bug #7)", res))
	}
	return out
}

// collectKeys gathers the reachable key set through the given memory view,
// skipping structurally corrupt leaves (reported separately).
func (t *Tree) collectKeys(read func(uint64) uint64) map[uint64]bool {
	keys := make(map[uint64]bool)
	for s := uint64(0); s < radix; s++ {
		leaf := read(t.slotAddr(s))
		hops := 0
		for leaf != 0 && hops < 1<<12 {
			count := int(read(leaf + offCount))
			if count > leafCap {
				break
			}
			for i := 0; i < count; i++ {
				if k := read(keyAddr(leaf, i)); k != 0 {
					keys[k] = true
				}
			}
			leaf = read(leaf + offNext)
			hops++
		}
	}
	return keys
}

// ValidateCrashPoint implements apps.CrashPointValidator: the invariants
// that hold in the persistent image at EVERY device-serialization point of
// the fixed variant. Key ordering and view divergence stay quiescent-only
// in ValidateCrash — an in-flight shift or delete compaction legitimately
// duplicates persisted slots, and a correctly-persisting put has a
// store→persist gap.
func (t *Tree) ValidateCrashPoint(p *pmem.Pool) []string {
	var out []string
	for s := uint64(0); s < radix; s++ {
		leaf := p.ReadPersistent8(t.slotAddr(s))
		hops := 0
		for leaf != 0 {
			if hops >= 1<<12 {
				out = append(out, fmt.Sprintf("slot %d: leaf chain exceeds %d hops (cycle?)", s, 1<<12))
				break
			}
			count := int(p.ReadPersistent8(leaf + offCount))
			if count > leafCap {
				out = append(out, fmt.Sprintf("leaf %#x: persisted count %d exceeds capacity", leaf, count))
				break
			}
			for i := 0; i < count; i++ {
				if p.ReadPersistent8(keyAddr(leaf, i)) == 0 {
					out = append(out, fmt.Sprintf(
						"leaf %#x entry %d: count persisted but key slot empty (torn put, bugs #5/#6)", leaf, i))
				}
			}
			leaf = p.ReadPersistent8(leaf + offNext)
			hops++
		}
	}
	return out
}

// RecoveryWalk traverses every slot chain through instrumented loads — the
// hardened recovery pass: hop- and capacity-bounded so a torn image yields
// an error instead of an unbounded loop.
func (t *Tree) RecoveryWalk(c *pmrt.Ctx) error {
	for s := uint64(0); s < radix; s++ {
		leaf := c.Load8(t.slotAddr(s))
		hops := 0
		for leaf != 0 {
			if hops >= 1<<12 {
				return fmt.Errorf("recovery: slot %d chain exceeds %d hops (cycle?)", s, 1<<12)
			}
			count := int(c.Load8(leaf + offCount))
			if count > leafCap {
				return fmt.Errorf("recovery: leaf %#x count %d exceeds capacity", leaf, count)
			}
			for i := 0; i < count; i++ {
				c.Load8(keyAddr(leaf, i))
				c.Load8(valAddr(leaf, i))
			}
			leaf = c.Load8(leaf + offNext)
			hops++
		}
	}
	return nil
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "P-Masstree",
		Factory: New,
		Bugs: []apps.BugSpec{
			{
				ID: 5, Durinn: true,
				StoreFunc: "pmasstree.(*Tree).putValue", LoadFunc: "pmasstree.(*Tree).Get",
				Description: "load unpersisted value",
			},
			{
				ID: 6, Durinn: true,
				StoreFunc: "pmasstree.(*Tree).splitCopy", LoadFunc: "pmasstree.(*Tree).Get",
				Description: "load unpersisted value",
			},
			{
				ID: 7, Durinn: true,
				StoreFunc: "pmasstree.(*Tree).removeEntry", LoadFunc: "pmasstree.(*Tree).Get",
				Description: "unpersisted removal",
			},
		},
		Benign: apps.Pairs(
			[]string{
				"pmasstree.(*Tree).Put", "pmasstree.(*Tree).putValue",
				"pmasstree.(*Tree).splitLeaf", "pmasstree.(*Tree).splitCopy",
				"pmasstree.(*Tree).removeEntry", "pmasstree.(*Tree).Delete",
			},
			[]string{"pmasstree.(*Tree).Get"},
		),
		Spec: ycsb.DefaultSpec,
		Recover: func(c *pmrt.Ctx, prev apps.App, fixed bool) error {
			return Attach(c.Runtime(), prev.(*Tree).Dir(), fixed).RecoveryWalk(c)
		},
	})
}
