package pmasstree

import (
	"testing"

	"hawkset/internal/pmrt"
)

func TestPutGetDelete(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	tr := New(rt, true).(*Tree)
	err := rt.Run(func(c *pmrt.Ctx) {
		tr.Setup(c)
		ref := map[uint64]uint64{}
		for i := uint64(0); i < 600; i++ {
			k := (i * 7919) % 2048
			tr.Put(c, k, i)
			ref[k] = i
		}
		for k, v := range ref {
			got, ok := tr.Get(c, k)
			if !ok || got != v {
				t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
			}
		}
		// Delete a third of the keys.
		i := 0
		for k := range ref {
			if i%3 == 0 {
				tr.Delete(c, k)
				delete(ref, k)
			}
			i++
		}
		for k, v := range ref {
			if got, ok := tr.Get(c, k); !ok || got != v {
				t.Fatalf("after deletes Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLeafChainsStaySorted: inserting ascending and descending runs into one
// slot must keep lookups exact across splits.
func TestLeafChainsStaySorted(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	tr := New(rt, true).(*Tree)
	err := rt.Run(func(c *pmrt.Ctx) {
		tr.Setup(c)
		// Find many keys mapping to one directory slot.
		var keys []uint64
		target := slotOf(12345)
		for k := uint64(1); len(keys) < 4*leafCap; k++ {
			if slotOf(k) == target {
				keys = append(keys, k)
			}
		}
		// Interleave low/high inserts to exercise both split halves.
		for i := 0; i < len(keys)/2; i++ {
			tr.Put(c, keys[i], keys[i])
			j := len(keys) - 1 - i
			tr.Put(c, keys[j], keys[j])
		}
		for _, k := range keys {
			if v, ok := tr.Get(c, k); !ok || v != k {
				t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBuggyPutLosesValueOnCrash: with bug #5 seeded, a put's entry is
// visible but absent from the crash image. Entries sharing the leaf
// header's cache line get persisted incidentally by the count flush, so the
// test targets an entry beyond the first line (index ≥ 3).
func TestBuggyPutLosesValueOnCrash(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	tr := New(rt, false).(*Tree)
	var keys []uint64
	err := rt.Run(func(c *pmrt.Ctx) {
		tr.Setup(c)
		// Four ascending keys of one directory slot: the fourth lands at
		// entry index 3, the first slot of the leaf's second cache line.
		target := slotOf(1)
		for k := uint64(1); len(keys) < 4; k++ {
			if slotOf(k) == target {
				keys = append(keys, k)
			}
		}
		for _, k := range keys {
			tr.Put(c, k, k+1000)
		}
		if v, ok := tr.Get(c, keys[3]); !ok || v != keys[3]+1000 {
			t.Fatal("value not visible before crash")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	leaf := rt.Pool.ReadPersistent8(tr.slotAddr(slotOf(keys[0])))
	if leaf == 0 {
		return // even the slot pointer may be unpersisted: value lost either way
	}
	if k := rt.Pool.ReadPersistent8(keyAddr(leaf, 3)); k == keys[3] {
		t.Fatal("buggy put persisted its entry — bug #5 not seeded")
	}
}

// TestFixedPutSurvivesCrash is the control for the previous test.
func TestFixedPutSurvivesCrash(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	tr := New(rt, true).(*Tree)
	err := rt.Run(func(c *pmrt.Ctx) {
		tr.Setup(c)
		tr.Put(c, 77, 1234)
	})
	if err != nil {
		t.Fatal(err)
	}
	leaf := rt.Pool.ReadPersistent8(tr.slotAddr(slotOf(77)))
	if leaf == 0 {
		t.Fatal("fixed put did not persist the slot pointer")
	}
	if k := rt.Pool.ReadPersistent8(keyAddr(leaf, 0)); k != 77 {
		t.Fatalf("fixed put lost its key: %d", k)
	}
	if v := rt.Pool.ReadPersistent8(valAddr(leaf, 0)); v != 1234 {
		t.Fatalf("fixed put lost its value: %d", v)
	}
}

// TestScan: chain scans return sorted in-slot results.
func TestScan(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	tr := New(rt, true).(*Tree)
	err := rt.Run(func(c *pmrt.Ctx) {
		tr.Setup(c)
		var keys []uint64
		target := slotOf(321)
		for k := uint64(1); len(keys) < 30; k++ {
			if slotOf(k) == target {
				keys = append(keys, k)
				tr.Put(c, k, k*3)
			}
		}
		got := tr.Scan(c, keys[5], 10)
		if len(got) != 10 {
			t.Fatalf("scan returned %d, want 10", len(got))
		}
		prev := uint64(0)
		for _, kv := range got {
			if kv[0] < keys[5] || kv[0] <= prev || kv[1] != kv[0]*3 {
				t.Fatalf("bad scan tuple %v (prev %d)", kv, prev)
			}
			prev = kv[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecovery: reboot and re-attach. The fixed variant recovers every
// key; the buggy variant (unpersisted puts) has lost data.
func TestCrashRecovery(t *testing.T) {
	for _, fixed := range []bool{true, false} {
		rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
		tr := New(rt, fixed).(*Tree)
		const n = 400
		err := rt.Run(func(c *pmrt.Ctx) {
			tr.Setup(c)
			for i := uint64(1); i <= n; i++ {
				tr.Put(c, i, i+5)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.Pool.Reboot()
		rt2 := pmrt.NewWithPool(pmrt.Config{Seed: 2, PoolSize: 32 << 20}, rt.Pool, rt.Heap)
		rec := Attach(rt2, tr.Dir(), fixed)
		missing := 0
		err = rt2.Run(func(c *pmrt.Ctx) {
			for i := uint64(1); i <= n; i++ {
				if v, ok := rec.Get(c, i); !ok || v != i+5 {
					missing++
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if fixed && missing != 0 {
			t.Fatalf("fixed variant lost %d/%d keys across the crash", missing, n)
		}
		if !fixed && missing == 0 {
			t.Fatal("buggy variant lost nothing — bugs #5/#6 not seeded")
		}
	}
}
