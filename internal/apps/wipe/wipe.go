// Package wipe reimplements WIPE (Wang et al., TACO'24), the
// write-optimized learned index of the paper's evaluation: a sorted array of
// linear-model segments, each with an unsorted PM buffer absorbing writes.
// Puts and deletes take per-segment locks; gets are lock-free (Table 1 lists
// the synchronization as Lock).
//
// The buggy variant carries the three Table 2 races (all new):
//
//	#16: a put publishes the buffer entry's key without persisting it
//	    ((*Index).putKey) — lock-free gets read the unpersisted key
//	    (pointer_bentry.h:1771/1799 vs 1606).
//	#17: same for the value ((*Index).putValue vs the get's value load,
//	    pointer_bentry.h:1550/1772 vs 1601).
//	#18: node expansion replaces a full buffer with a larger one via an
//	    atomic pointer swap; the buffer data is persisted but the pointer is
//	    not ((*Index).expand vs (*Index).lookupSegment, letree.h:393 vs 228).
package wipe

import (
	"fmt"

	"hawkset/internal/apps"
	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/ycsb"
)

// Segment buffer layout (PM):
//
//	+0   cap   uint64
//	+8   count uint64
//	+16  cap × (key uint64, val uint64)   (key 0 = tombstone)
const (
	offCap     = 0
	offCount   = 8
	offEntries = 16
	entrySize  = 16
	initialCap = 8

	nSegments = 256
)

// Index is the learned index: keys are partitioned over segments by a
// (perfectly learned) linear model on the key's high bits; each segment's
// writes land in its PM buffer.
type Index struct {
	rt    *pmrt.Runtime
	segs  uint64 // PM array: nSegments buffer pointers
	locks []*pmrt.Mutex
	fixed bool
}

// New creates a WIPE instance. fixed repairs races #16–#18.
func New(rt *pmrt.Runtime, fixed bool) apps.App {
	idx := &Index{rt: rt, fixed: fixed}
	idx.locks = make([]*pmrt.Mutex, nSegments)
	for i := range idx.locks {
		idx.locks[i] = rt.NewMutex("wipe-seg")
	}
	return idx
}

// Name implements apps.App.
func (x *Index) Name() string { return "WIPE" }

// Setup allocates the segment directory and initial buffers.
func (x *Index) Setup(c *pmrt.Ctx) {
	x.segs = c.Alloc(nSegments * 8)
	c.Persist(x.segs, 8)
}

// Apply implements apps.App.
func (x *Index) Apply(c *pmrt.Ctx, op ycsb.Op) {
	key := op.Key | 1 // key 0 is the tombstone marker
	switch op.Kind {
	case ycsb.OpInsert, ycsb.OpUpdate:
		x.Put(c, key, op.Value)
	case ycsb.OpGet:
		x.Get(c, key)
	case ycsb.OpDelete:
		x.Delete(c, key)
	}
}

// model is the learned placement function: WIPE's linear models partition
// the key space evenly; benchmark keys occupy a small dense range, so the
// model operates on a mixed image of the key.
func model(key uint64) uint64 {
	key *= 0x9e3779b97f4a7c15
	return key >> 56 % nSegments
}

func keyAddr(buf uint64, i uint64) uint64 { return buf + offEntries + i*entrySize }
func valAddr(buf uint64, i uint64) uint64 { return keyAddr(buf, i) + 8 }

// lookupSegment reads the segment's buffer pointer lock-free — the load
// side of race #18.
func (x *Index) lookupSegment(c *pmrt.Ctx, s uint64) uint64 {
	return c.Load8(x.segs + s*8)
}

// Get searches the segment buffer lock-free.
func (x *Index) Get(c *pmrt.Ctx, key uint64) (uint64, bool) {
	buf := x.lookupSegment(c, model(key))
	if buf == 0 {
		return 0, false
	}
	count := c.Load8(buf + offCount)
	for i := uint64(0); i < count; i++ {
		k := c.Load8(keyAddr(buf, i)) // race #16's load
		if k == key {
			return c.Load8(valAddr(buf, i)), true // race #17's load
		}
	}
	return 0, false
}

// Put inserts or updates under the segment lock, expanding the buffer when
// full.
func (x *Index) Put(c *pmrt.Ctx, key, val uint64) {
	s := model(key)
	c.Lock(x.locks[s])
	defer c.Unlock(x.locks[s])

	buf := c.Load8(x.segs + s*8)
	if buf == 0 {
		buf = x.newBuffer(c, initialCap)
		c.Store8(x.segs+s*8, buf)
		c.Persist(x.segs+s*8, 8)
	}
	capacity := c.Load8(buf + offCap)
	count := c.Load8(buf + offCount)
	// In-place update or tombstone reuse.
	free := capacity
	for i := uint64(0); i < count; i++ {
		k := c.Load8(keyAddr(buf, i))
		if k == key {
			x.putValue(c, buf, i, val)
			return
		}
		if k == 0 && free == capacity {
			free = i
		}
	}
	if free == capacity && count == capacity {
		buf = x.expand(c, s, buf, capacity, count)
		count = c.Load8(buf + offCount) // tombstones were compacted away
		free = count
	} else if free == capacity {
		free = count
	}
	x.putValue(c, buf, free, val)
	x.putKey(c, buf, free, key)
	if free == count {
		c.Store8(buf+offCount, count+1)
		c.Persist(buf+offCount, 8)
	}
}

// putKey publishes a buffer entry's key. BUG #16 (Table 2 #16, new): the
// buggy variant omits the persist; lock-free gets read the unpersisted key.
func (x *Index) putKey(c *pmrt.Ctx, buf, i, key uint64) {
	c.Store8(keyAddr(buf, i), key)
	if x.fixed {
		c.Persist(keyAddr(buf, i), 8)
	}
}

// putValue writes a buffer entry's value. BUG #17 (Table 2 #17, new): the
// buggy variant omits the persist.
func (x *Index) putValue(c *pmrt.Ctx, buf, i, val uint64) {
	c.Store8(valAddr(buf, i), val)
	if x.fixed {
		c.Persist(valAddr(buf, i), 8)
	}
}

// newBuffer allocates a persisted buffer of the given capacity.
func (x *Index) newBuffer(c *pmrt.Ctx, capacity uint64) uint64 {
	buf := c.Alloc(offEntries + capacity*entrySize)
	c.Store8(buf+offCap, capacity)
	c.Store8(buf+offCount, 0)
	c.Persist(buf, 16)
	return buf
}

// expand doubles a full segment buffer: the new buffer is filled and
// persisted while private, then published by an atomic pointer swap.
// BUG #18 (Table 2 #18, new): the buggy variant does not persist the swapped
// pointer (letree.h:393), so every subsequent modification to the new buffer
// can be lost even though the buffer data itself was persisted.
func (x *Index) expand(c *pmrt.Ctx, s, buf, capacity, count uint64) uint64 {
	nb := x.newBuffer(c, capacity*2)
	live := uint64(0)
	for i := uint64(0); i < count; i++ {
		k := c.Load8(keyAddr(buf, i))
		if k == 0 {
			continue
		}
		v := c.Load8(valAddr(buf, i))
		c.Store8(keyAddr(nb, live), k)
		c.Store8(valAddr(nb, live), v)
		live++
	}
	c.Store8(nb+offCount, live)
	c.Persist(nb, offEntries+capacity*2*entrySize)
	c.Store8(x.segs+s*8, nb)
	if x.fixed {
		c.Persist(x.segs+s*8, 8)
	}
	return nb
}

// Delete tombstones the key under the segment lock (persisted; deletion is
// not one of WIPE's seeded defects).
func (x *Index) Delete(c *pmrt.Ctx, key uint64) {
	s := model(key)
	c.Lock(x.locks[s])
	defer c.Unlock(x.locks[s])
	buf := c.Load8(x.segs + s*8)
	if buf == 0 {
		return
	}
	count := c.Load8(buf + offCount)
	for i := uint64(0); i < count; i++ {
		if c.Load8(keyAddr(buf, i)) == key {
			c.Store8(keyAddr(buf, i), 0)
			c.Persist(keyAddr(buf, i), 8)
			return
		}
	}
}

// ValidateCrash scans every persisted segment buffer: a persisted count
// admitting an all-zero entry is the torn state bugs #16/#17 leave behind
// (count persisted, key/value not).
func (x *Index) ValidateCrash(p *pmem.Pool) []string {
	var out []string
	for s := uint64(0); s < nSegments; s++ {
		buf := p.ReadPersistent8(x.segs + s*8)
		if buf == 0 {
			continue
		}
		capacity := p.ReadPersistent8(buf + offCap)
		count := p.ReadPersistent8(buf + offCount)
		if capacity == 0 || count > capacity {
			out = append(out, fmt.Sprintf("segment %d buffer %#x: count %d / capacity %d torn", s, buf, count, capacity))
			continue
		}
		for i := uint64(0); i < count; i++ {
			k := p.ReadPersistent8(keyAddr(buf, i))
			v := p.ReadPersistent8(valAddr(buf, i))
			if k == 0 && v == 0 {
				out = append(out, fmt.Sprintf(
					"segment %d entry %d: count persisted but entry empty (torn put, bugs #16/#17)", s, i))
			}
		}
	}
	return out
}

func init() {
	apps.Register(&apps.Entry{
		Name:    "WIPE",
		Factory: New,
		Bugs: []apps.BugSpec{
			{ID: 16, New: true,
				StoreFunc: "wipe.(*Index).putKey", LoadFunc: "wipe.(*Index).Get",
				Description: "load unpersisted key"},
			{ID: 17, New: true,
				StoreFunc: "wipe.(*Index).putValue", LoadFunc: "wipe.(*Index).Get",
				Description: "load unpersisted value"},
			{ID: 18, New: true,
				StoreFunc: "wipe.(*Index).expand", LoadFunc: "wipe.(*Index).lookupSegment",
				Description: "load unpersisted pointer"},
		},
		Benign: apps.Pairs(
			[]string{
				"wipe.(*Index).Put", "wipe.(*Index).putKey", "wipe.(*Index).putValue",
				"wipe.(*Index).expand", "wipe.(*Index).Delete",
			},
			[]string{"wipe.(*Index).Get", "wipe.(*Index).lookupSegment"},
		),
		Spec: ycsb.DefaultSpec,
	})
}
