package wipe

import (
	"testing"

	"hawkset/internal/pmrt"
)

func TestPutGetDelete(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	x := New(rt, true).(*Index)
	err := rt.Run(func(c *pmrt.Ctx) {
		x.Setup(c)
		for i := uint64(1); i <= 500; i++ {
			x.Put(c, i, i*2)
		}
		for i := uint64(1); i <= 500; i++ {
			v, ok := x.Get(c, i)
			if !ok || v != i*2 {
				t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
			}
		}
		x.Put(c, 9, 999)
		if v, _ := x.Get(c, 9); v != 999 {
			t.Fatal("update failed")
		}
		x.Delete(c, 9)
		if _, ok := x.Get(c, 9); ok {
			t.Fatal("deleted key still present")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExpansion: overflowing a segment's buffer doubles it and keeps all
// live entries reachable (tombstones compacted away).
func TestExpansion(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	x := New(rt, true).(*Index)
	err := rt.Run(func(c *pmrt.Ctx) {
		x.Setup(c)
		// Collect many keys of one segment.
		var keys []uint64
		target := model(12345)
		for k := uint64(1); len(keys) < 3*initialCap; k++ {
			if model(k) == target {
				keys = append(keys, k)
			}
		}
		for i, k := range keys {
			x.Put(c, k, uint64(i))
			if i == 2 {
				x.Delete(c, keys[0]) // leave a tombstone pre-expansion
			}
		}
		for i, k := range keys {
			v, ok := x.Get(c, k)
			if i == 0 {
				if ok {
					t.Fatal("tombstoned key resurfaced after expansion")
				}
				continue
			}
			if !ok || v != uint64(i) {
				t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, i)
			}
		}
		buf := x.lookupSegment(c, target)
		if capGot := c.Load8(buf + offCap); capGot < 2*initialCap {
			t.Fatalf("buffer capacity = %d, expansion did not happen", capGot)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBuggyExpandLosesPointerOnCrash: bug #18 — the buffer data persists but
// the segment pointer swap does not.
func TestBuggyExpandLosesPointerOnCrash(t *testing.T) {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 32 << 20})
	x := New(rt, false).(*Index)
	var target uint64
	var volatilePtr uint64
	err := rt.Run(func(c *pmrt.Ctx) {
		x.Setup(c)
		var keys []uint64
		target = model(777)
		for k := uint64(1); len(keys) < initialCap+1; k++ {
			if model(k) == target {
				keys = append(keys, k)
			}
		}
		for i, k := range keys { // the last Put triggers expansion
			x.Put(c, k, uint64(i))
		}
		volatilePtr = x.lookupSegment(c, target)
	})
	if err != nil {
		t.Fatal(err)
	}
	persistedPtr := rt.Pool.ReadPersistent8(x.segs + target*8)
	if persistedPtr == volatilePtr {
		t.Fatal("buggy expand persisted the segment pointer — bug #18 not seeded")
	}
	if persistedPtr == 0 {
		t.Fatal("original segment pointer missing from the crash image")
	}
}
