package sched

import (
	"math/rand"
	"sort"
)

// PCT scheduling (Burckhardt et al., ASPLOS'10 — "A Randomized Scheduler
// with Probabilistic Guarantees of Finding Bugs"): every thread gets a
// random distinct priority, the scheduler always runs the highest-priority
// runnable thread, and at d-1 pre-sampled change points the running thread's
// priority drops below everything seen so far. For a bug of depth d in a
// program with n threads and k steps, a single run finds it with probability
// ≥ 1/(n·k^(d-1)).
//
// The observation-based baselines can use PCT instead of uniform-random
// scheduling: persistency-induced races are depth-2 bugs (store …crash-gap…
// load), a good fit for small d.

// pctState holds the PCT policy's bookkeeping.
type pctState struct {
	rng *rand.Rand
	// priority per thread ID; higher runs first.
	priority map[int32]int
	// changePoints are the pre-sampled step indices (sorted ascending).
	changePoints []uint64
	nextChange   int
	// nextLow hands out ever-lower priorities at change points.
	nextLow int
	nextHi  int
}

// NewPCT creates a scheduler using the PCT policy with bug depth d over an
// expected schedule length of k steps. Depth < 2 degenerates to a plain
// priority scheduler.
func NewPCT(seed int64, maxSteps uint64, depth int, k uint64) *Scheduler {
	s := New(seed, maxSteps)
	if k == 0 {
		k = 1 << 16
	}
	st := &pctState{
		rng:      rand.New(rand.NewSource(seed ^ 0x7f4a7c15)),
		priority: make(map[int32]int),
		nextLow:  -1,
		nextHi:   1 << 20,
	}
	for i := 0; i < depth-1; i++ {
		st.changePoints = append(st.changePoints, uint64(st.rng.Int63n(int64(k))))
	}
	sort.Slice(st.changePoints, func(i, j int) bool { return st.changePoints[i] < st.changePoints[j] })
	s.pct = st
	return s
}

// pctPriority returns (assigning if new) the thread's priority.
func (st *pctState) pctPriority(id int32) int {
	p, ok := st.priority[id]
	if !ok {
		// Random distinct high priority per thread.
		p = st.nextHi + st.rng.Intn(1<<20)
		st.nextHi += 1 << 20
		st.priority[id] = p
	}
	return p
}

// pickPCT selects the highest-priority runnable thread, applying any due
// priority-change point to the thread that was running.
func (s *Scheduler) pickPCT() *Thread {
	st := s.pct
	if st.nextChange < len(st.changePoints) && s.steps >= st.changePoints[st.nextChange] {
		if s.current != nil {
			st.priority[s.current.id] = st.nextLow
			st.nextLow--
		}
		st.nextChange++
	}
	best := -1
	bestPrio := 0
	for i, t := range s.runnable {
		p := st.pctPriority(t.id)
		if best == -1 || p > bestPrio {
			best, bestPrio = i, p
		}
	}
	next := s.runnable[best]
	s.runnable[best] = s.runnable[len(s.runnable)-1]
	s.runnable = s.runnable[:len(s.runnable)-1]
	return next
}
