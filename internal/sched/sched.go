// Package sched implements a deterministic cooperative scheduler for
// simulated threads. Exactly one simulated thread runs at a time; at every
// yield point (the instrumented runtime yields before each PM access and
// synchronization operation) a seeded RNG picks the next runnable thread.
//
// This substitutes for the OS scheduler under Intel PIN in the original
// HawkSet: lockset analysis is interleaving-insensitive, but a deterministic
// schedule makes every experiment reproducible from a seed, and it gives the
// PMRace-style baseline (internal/baseline/pmrace) the schedule control it
// needs for delay injection.
//
// Simulated threads are goroutines parked on per-thread channels; the
// channel handoff establishes happens-before, so scheduler state needs no
// locking: it is only ever touched by the single running thread.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Sentinel causes a Run error wraps, so harnesses driving untrusted code
// (the crash-injection campaign runs app recovery on torn images) can
// classify failures with errors.Is instead of string matching.
var (
	// ErrAppPanic: a simulated thread's application code panicked.
	ErrAppPanic = errors.New("panicked")
	// ErrStepBound: the run exceeded its scheduling-step bound (livelock).
	ErrStepBound = errors.New("step bound exceeded")
	// ErrDeadlock: every live thread is blocked.
	ErrDeadlock = errors.New("deadlock")
)

// State describes a simulated thread's lifecycle.
type State uint8

// Thread states.
const (
	Runnable State = iota
	Running
	Blocked
	Done
)

// Thread is a simulated thread. All methods must be called from the thread's
// own goroutine while it is the running thread.
type Thread struct {
	id     int32
	s      *Scheduler
	state  State
	resume chan struct{}
	why    string // block reason, for deadlock diagnostics
	// joiners are threads blocked in Join on this thread.
	joiners []*Thread
}

// ID returns the thread's identifier. The root thread is 0; children are
// numbered in creation order.
func (t *Thread) ID() int32 { return t.id }

// Scheduler multiplexes simulated threads deterministically.
type Scheduler struct {
	rng      *rand.Rand
	threads  []*Thread
	runnable []*Thread
	current  *Thread
	steps    uint64
	maxSteps uint64
	done     chan error
	// pct, when non-nil, switches thread selection to the PCT policy.
	pct *pctState
}

// New creates a scheduler whose thread-selection order is fully determined
// by seed. maxSteps bounds total scheduling decisions (0 means no bound) and
// guards against livelock in buggy applications under test.
func New(seed int64, maxSteps uint64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed)), maxSteps: maxSteps}
}

// Steps returns the number of scheduling decisions taken so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Current returns the running thread.
func (s *Scheduler) Current() *Thread { return s.current }

// NumThreads returns the number of threads ever created (including done
// ones).
func (s *Scheduler) NumThreads() int { return len(s.threads) }

// schedStop is panicked through a thread's goroutine to unwind it when the
// scheduler must abort (deadlock or step bound). Non-nil err carries the
// abort cause; the goroutines of other, still-parked threads are left parked
// and collected when the process (or test binary) exits — acceptable for a
// simulator whose runs are short-lived.
type schedStop struct{ err error }

// Run executes main as thread 0 and returns once every spawned thread has
// finished. It returns an error if the program deadlocks (all live threads
// blocked) or exceeds the step bound. Run may only be called once per
// Scheduler.
func (s *Scheduler) Run(main func(t *Thread)) error {
	if s.done != nil {
		return fmt.Errorf("sched: Run called twice")
	}
	s.done = make(chan error, 1)
	root := &Thread{id: 0, s: s, state: Running, resume: make(chan struct{}, 1)}
	s.threads = []*Thread{root}
	s.current = root
	go root.run(main)
	return <-s.done
}

// run is the goroutine body shared by the root thread and spawned threads.
func (t *Thread) run(fn func(t *Thread)) {
	defer func() {
		if r := recover(); r != nil {
			ss, ok := r.(schedStop)
			if !ok {
				// Application panic: surface it as the run result rather than
				// crashing the host test binary asynchronously.
				t.s.finish(fmt.Errorf("sched: thread %d %w: %v", t.id, ErrAppPanic, r))
				return
			}
			if ss.err != nil {
				t.s.finish(ss.err)
			}
			return
		}
		t.exit()
	}()
	fn(t)
}

func (s *Scheduler) finish(err error) {
	select {
	case s.done <- err:
	default:
	}
}

// Spawn creates a new runnable thread executing fn. Must be called from the
// running thread.
func (t *Thread) Spawn(fn func(t *Thread)) *Thread {
	s := t.s
	nt := &Thread{id: int32(len(s.threads)), s: s, state: Runnable, resume: make(chan struct{}, 1)}
	s.threads = append(s.threads, nt)
	s.runnable = append(s.runnable, nt)
	go func() {
		<-nt.resume
		nt.run(fn)
	}()
	return nt
}

// Yield gives up the virtual CPU; the scheduler picks the next thread to run
// (possibly this one again) using the seeded RNG.
func (t *Thread) Yield() {
	s := t.s
	t.state = Runnable
	s.runnable = append(s.runnable, t)
	s.dispatch()
	t.await()
}

// Park blocks the thread with a diagnostic reason until another thread calls
// Unpark on it. Must be called from the running thread.
func (t *Thread) Park(why string) {
	t.state = Blocked
	t.why = why
	t.s.dispatch()
	t.await()
}

// Unpark makes target runnable again. Must be called from the running
// thread; the caller keeps running.
func (t *Thread) Unpark(target *Thread) {
	if target.state != Blocked {
		panic(fmt.Sprintf("sched: Unpark of thread %d in state %d", target.id, target.state))
	}
	target.state = Runnable
	target.why = ""
	t.s.runnable = append(t.s.runnable, target)
}

// Join blocks until target has finished.
func (t *Thread) Join(target *Thread) {
	if target.state == Done {
		return
	}
	target.joiners = append(target.joiners, t)
	t.Park(fmt.Sprintf("join(%d)", target.id))
}

// Done reports whether the thread has finished.
func (t *Thread) Done() bool { return t.state == Done }

// exit marks the running thread finished, wakes joiners, and hands the CPU
// to the next runnable thread; if none remain the whole run completes.
func (t *Thread) exit() {
	t.state = Done
	for _, j := range t.joiners {
		j.state = Runnable
		j.why = ""
		t.s.runnable = append(t.s.runnable, j)
	}
	t.joiners = nil
	s := t.s
	if len(s.runnable) == 0 {
		if blocked := s.blockedThreads(); len(blocked) > 0 {
			s.finish(fmt.Errorf("sched: %w — all live threads blocked: %v", ErrDeadlock, blocked))
			return
		}
		s.finish(nil)
		return
	}
	s.dispatch()
}

// await parks the calling goroutine until the scheduler resumes it.
func (t *Thread) await() {
	<-t.resume
}

// dispatch picks the next runnable thread and resumes it. Called by the
// running thread just before it parks itself or exits; the caller must have
// already moved itself to the appropriate state.
func (s *Scheduler) dispatch() {
	next, err := s.pick()
	if err != nil {
		panic(schedStop{err: err})
	}
	s.current = next
	next.state = Running
	next.resume <- struct{}{}
}

func (s *Scheduler) pick() (*Thread, error) {
	if s.maxSteps > 0 && s.steps >= s.maxSteps {
		return nil, fmt.Errorf("sched: %w: step bound %d (livelock?)", ErrStepBound, s.maxSteps)
	}
	if len(s.runnable) == 0 {
		return nil, fmt.Errorf("sched: %w — all live threads blocked: %v", ErrDeadlock, s.blockedThreads())
	}
	s.steps++
	if s.pct != nil {
		return s.pickPCT(), nil
	}
	i := s.rng.Intn(len(s.runnable))
	next := s.runnable[i]
	s.runnable[i] = s.runnable[len(s.runnable)-1]
	s.runnable = s.runnable[:len(s.runnable)-1]
	return next, nil
}

func (s *Scheduler) blockedThreads() []string {
	var out []string
	for _, t := range s.threads {
		if t.state == Blocked {
			out = append(out, fmt.Sprintf("T%d(%s)", t.id, t.why))
		}
	}
	sort.Strings(out)
	return out
}

// Blocked reports whether the thread is currently parked. Safe to read from
// the running thread (the cooperative handoff orders all state access).
func (t *Thread) Blocked() bool { return t.state == Blocked }
