package sched

import (
	"fmt"
	"strings"
	"testing"
)

func TestSingleThreadRuns(t *testing.T) {
	ran := false
	if err := New(1, 0).Run(func(th *Thread) { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("main did not run")
	}
}

func TestSpawnAndJoin(t *testing.T) {
	var order []string
	err := New(1, 0).Run(func(th *Thread) {
		child := th.Spawn(func(c *Thread) {
			order = append(order, "child")
		})
		th.Join(child)
		order = append(order, "parent-after-join")
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "child,parent-after-join" {
		t.Fatalf("order = %v", order)
	}
}

func TestManyThreadsAllRun(t *testing.T) {
	const n = 50
	ran := make([]bool, n)
	err := New(7, 0).Run(func(th *Thread) {
		var kids []*Thread
		for i := 0; i < n; i++ {
			i := i
			kids = append(kids, th.Spawn(func(c *Thread) {
				c.Yield()
				ran[i] = true
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("thread %d did not run", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) string {
		var log []string
		err := New(seed, 0).Run(func(th *Thread) {
			var kids []*Thread
			for i := 0; i < 4; i++ {
				i := i
				kids = append(kids, th.Spawn(func(c *Thread) {
					for j := 0; j < 5; j++ {
						log = append(log, fmt.Sprintf("%d.%d", i, j))
						c.Yield()
					}
				}))
			}
			for _, k := range kids {
				th.Join(k)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, " ")
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c := run(43)
	if a == c {
		t.Fatal("different seeds produced identical schedule (suspicious for 20 interleaved yields)")
	}
}

func TestInterleaving(t *testing.T) {
	// With yields, two threads must actually interleave under some seed.
	interleaved := false
	for seed := int64(0); seed < 10 && !interleaved; seed++ {
		var log []string
		err := New(seed, 0).Run(func(th *Thread) {
			a := th.Spawn(func(c *Thread) {
				for i := 0; i < 5; i++ {
					log = append(log, "a")
					c.Yield()
				}
			})
			b := th.Spawn(func(c *Thread) {
				for i := 0; i < 5; i++ {
					log = append(log, "b")
					c.Yield()
				}
			})
			th.Join(a)
			th.Join(b)
		})
		if err != nil {
			t.Fatal(err)
		}
		s := strings.Join(log, "")
		if strings.Contains(s, "ab") && strings.Contains(s, "ba") {
			interleaved = true
		}
	}
	if !interleaved {
		t.Fatal("no seed interleaved two yielding threads")
	}
}

func TestParkUnpark(t *testing.T) {
	var got string
	err := New(3, 0).Run(func(th *Thread) {
		var waiter *Thread
		waiter = th.Spawn(func(c *Thread) {
			c.Park("waiting for signal")
			got = "woken"
		})
		// Let the waiter park.
		for i := 0; i < 10; i++ {
			th.Yield()
		}
		th.Unpark(waiter)
		th.Join(waiter)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "woken" {
		t.Fatal("parked thread was not woken")
	}
}

func TestDeadlockDetected(t *testing.T) {
	err := New(1, 0).Run(func(th *Thread) {
		child := th.Spawn(func(c *Thread) {
			c.Park("forever")
		})
		th.Join(child)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestStepBound(t *testing.T) {
	err := New(1, 100).Run(func(th *Thread) {
		for {
			th.Yield()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "step bound") {
		t.Fatalf("err = %v, want step bound", err)
	}
}

func TestThreadPanicSurfaces(t *testing.T) {
	err := New(1, 0).Run(func(th *Thread) {
		child := th.Spawn(func(c *Thread) {
			panic("boom")
		})
		th.Join(child)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
}

func TestJoinFinishedThread(t *testing.T) {
	err := New(1, 0).Run(func(th *Thread) {
		child := th.Spawn(func(c *Thread) {})
		for i := 0; i < 20; i++ {
			th.Yield()
		}
		if !child.Done() {
			t.Error("child not done after 20 yields")
		}
		th.Join(child) // must not block
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSpawn(t *testing.T) {
	depth := 0
	err := New(5, 0).Run(func(th *Thread) {
		child := th.Spawn(func(c *Thread) {
			grand := c.Spawn(func(g *Thread) {
				depth = 2
			})
			c.Join(grand)
		})
		th.Join(child)
	})
	if err != nil {
		t.Fatal(err)
	}
	if depth != 2 {
		t.Fatal("grandchild did not run")
	}
}

func TestStepsAdvance(t *testing.T) {
	s := New(1, 0)
	if err := s.Run(func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Yield()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if s.Steps() < 10 {
		t.Fatalf("Steps = %d, want >= 10", s.Steps())
	}
}

// TestPCTPriorityOrder: with no change points (depth 1), the
// highest-priority thread runs to completion before lower ones get CPU.
func TestPCTPriorityOrder(t *testing.T) {
	var order []int32
	s := NewPCT(3, 0, 1, 1000)
	err := s.Run(func(th *Thread) {
		var kids []*Thread
		for i := 0; i < 3; i++ {
			kids = append(kids, th.Spawn(func(c *Thread) {
				for j := 0; j < 5; j++ {
					order = append(order, c.ID())
					c.Yield()
				}
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each thread's 5 entries must be contiguous: once the top-priority
	// thread starts it runs to completion (the main thread is blocked in
	// Join, so only children compete).
	for i := 5; i < len(order); i += 5 {
		block := order[i : i+5]
		for _, id := range block {
			if id != block[0] {
				t.Fatalf("PCT interleaved threads without a change point: %v", order)
			}
		}
	}
}

// TestPCTChangePointSwitches: with depth 2 a change point demotes the
// running thread, so a preemption appears mid-block.
func TestPCTChangePointSwitches(t *testing.T) {
	switched := false
	for seed := int64(0); seed < 30 && !switched; seed++ {
		var order []int32
		s := NewPCT(seed, 0, 2, 40)
		err := s.Run(func(th *Thread) {
			a := th.Spawn(func(c *Thread) {
				for j := 0; j < 10; j++ {
					order = append(order, c.ID())
					c.Yield()
				}
			})
			b := th.Spawn(func(c *Thread) {
				for j := 0; j < 10; j++ {
					order = append(order, c.ID())
					c.Yield()
				}
			})
			th.Join(a)
			th.Join(b)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(order)-1; i++ {
			if order[i] != order[0] {
				// a switch happened before the first thread finished
				if i < 10 {
					switched = true
				}
				break
			}
		}
	}
	if !switched {
		t.Fatal("no seed produced a mid-run preemption with depth 2")
	}
}

// TestPCTDeterministic: same seed, same schedule.
func TestPCTDeterministic(t *testing.T) {
	run := func() string {
		var log string
		s := NewPCT(9, 0, 3, 100)
		err := s.Run(func(th *Thread) {
			var kids []*Thread
			for i := 0; i < 4; i++ {
				kids = append(kids, th.Spawn(func(c *Thread) {
					for j := 0; j < 6; j++ {
						log += string(rune('a' + c.ID()))
						c.Yield()
					}
				}))
			}
			for _, k := range kids {
				th.Join(k)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return log
	}
	if run() != run() {
		t.Fatal("PCT schedule not deterministic")
	}
}
