package lockset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddRemoveHolds(t *testing.T) {
	var s Set
	s = s.Add(5, 1)
	s = s.Add(2, 2)
	s = s.Add(9, 3)
	if !s.Holds(5) || !s.Holds(2) || !s.Holds(9) || s.Holds(3) {
		t.Fatalf("membership wrong: %v", s)
	}
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Lock < s[j].Lock }) {
		t.Fatalf("set not sorted: %v", s)
	}
	s = s.Remove(2)
	if s.Holds(2) || len(s) != 2 {
		t.Fatalf("remove failed: %v", s)
	}
	s = s.Remove(42) // absent: no-op
	if len(s) != 2 {
		t.Fatalf("removing absent lock changed set: %v", s)
	}
}

func TestAddIsPersistent(t *testing.T) {
	// Add must not mutate the original (locksets are shared across accesses).
	s := Set{}.Add(1, 1)
	s2 := s.Add(2, 2)
	if len(s) != 1 || len(s2) != 2 {
		t.Fatalf("Add mutated receiver: %v %v", s, s2)
	}
	s3 := s2.Remove(1)
	if len(s2) != 2 || len(s3) != 1 {
		t.Fatalf("Remove mutated receiver: %v %v", s2, s3)
	}
}

func TestReacquireRefreshesTimestamp(t *testing.T) {
	s := Set{}.Add(1, 1)
	s = s.Add(1, 7)
	if len(s) != 1 || s[0].TS != 7 {
		t.Fatalf("reacquire: %v", s)
	}
}

// TestFigure2d is the paper's release/reacquire scenario: the same lock
// protects both the store and the persistency, but with different
// timestamps, so the exact intersection — the effective lockset — is empty.
func TestFigure2d(t *testing.T) {
	storeLS := Set{}.Add(1, 1)   // Lock A acquired at ts 1
	persistLS := Set{}.Add(1, 2) // A released and reacquired: ts 2
	if eff := IntersectExact(storeLS, persistLS); len(eff) != 0 {
		t.Fatalf("effective lockset = %v, want empty (Fig. 2d)", eff)
	}
	// Without the release (Fig. 2c) the effective lockset keeps A.
	if eff := IntersectExact(storeLS, storeLS); len(eff) != 1 {
		t.Fatalf("same-section effective lockset = %v, want {A}", eff)
	}
}

func TestIntersectLocksIgnoresTimestamps(t *testing.T) {
	a := Set{}.Add(1, 1).Add(2, 2)
	b := Set{}.Add(1, 9).Add(3, 1)
	got := IntersectLocks(a, b)
	if len(got) != 1 || got[0].Lock != 1 {
		t.Fatalf("IntersectLocks = %v, want {L1}", got)
	}
}

func TestDisjointLocks(t *testing.T) {
	a := Set{}.Add(1, 1).Add(2, 1)
	b := Set{}.Add(3, 1).Add(4, 1)
	c := Set{}.Add(2, 5)
	if !DisjointLocks(a, b) {
		t.Fatal("disjoint sets reported overlapping")
	}
	if DisjointLocks(a, c) {
		t.Fatal("overlapping sets reported disjoint")
	}
	if !DisjointLocks(nil, a) || !DisjointLocks(a, nil) {
		t.Fatal("empty set must be disjoint from everything")
	}
}

func TestInternCanonical(t *testing.T) {
	tab := NewTable()
	a := tab.Intern(Set{}.Add(1, 1).Add(2, 2))
	b := tab.Intern(Set{}.Add(2, 2).Add(1, 1)) // same content, built differently
	c := tab.Intern(Set{}.Add(1, 1).Add(2, 3)) // different timestamp
	if a != b {
		t.Fatal("equal sets interned differently")
	}
	if a == c {
		t.Fatal("sets differing in timestamp interned identically")
	}
	if tab.Intern(nil) != 0 {
		t.Fatal("empty set is not ID 0")
	}
}

func randSet(rng *rand.Rand) Set {
	var s Set
	for i := 0; i < rng.Intn(5); i++ {
		s = s.Add(uint64(rng.Intn(6)), uint32(rng.Intn(3)))
	}
	return s
}

// Properties relating the three intersection operations.
func TestIntersectionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSet(rng), randSet(rng)
		exact := IntersectExact(a, b)
		locks := IntersectLocks(a, b)
		// Exact ⊆ locks-only.
		for _, e := range exact {
			found := false
			for _, l := range locks {
				if l.Lock == e.Lock {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		// DisjointLocks agrees with the materialized intersection.
		if DisjointLocks(a, b) != (len(locks) == 0) {
			return false
		}
		// Intersections are subsets of both operands (by lock identity).
		for _, l := range locks {
			if !a.Holds(l.Lock) || !b.Holds(l.Lock) {
				return false
			}
		}
		// Self-intersection is identity.
		self := IntersectExact(a, a)
		if len(self) != len(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: interning is injective on set values.
func TestInternProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable()
		sets := make([]Set, 40)
		ids := make([]ID, 40)
		for i := range sets {
			sets[i] = randSet(rng)
			ids[i] = tab.Intern(sets[i])
		}
		for i := range sets {
			for j := range sets {
				if (ids[i] == ids[j]) != equalSet(sets[i], sets[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if got := (Set{}).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
	s := Set{}.Add(1, 2)
	if got := s.String(); got != "{L1@2}" {
		t.Fatalf("String = %q", got)
	}
}

// Regression: Add used to clone the set even when a recursive re-acquisition
// left the timestamp unchanged — the universal case with timestamps disabled,
// where every ts is 0 and each re-lock of a held lock copied the whole set.
func TestAddUnchangedTSReturnsSameSet(t *testing.T) {
	s := Set{}.Add(1, 0).Add(5, 0).Add(9, 0)
	out := s.Add(5, 0)
	if &out[0] != &s[0] {
		t.Fatalf("Add with unchanged TS cloned the set")
	}
	// A changed timestamp must still clone (persistence) and update only the
	// copy.
	out2 := s.Add(5, 7)
	if &out2[0] == &s[0] {
		t.Fatalf("Add with changed TS returned the original backing array")
	}
	if s[1].TS != 0 {
		t.Fatalf("Add mutated receiver: %v", s)
	}
	if out2[1].TS != 7 {
		t.Fatalf("refresh lost: %v", out2)
	}
}

// Signatures must prove disjointness exactly when they claim it: a zero
// intersection of Sig bits implies DisjointLocks, for random set pairs.
func TestSigDisjointSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSet(rng), randSet(rng)
		if SigOf(a)&SigOf(b) == 0 && !DisjointLocks(a, b) {
			return false
		}
		// Sharing a lock must always share a bit.
		if !DisjointLocks(a, b) && SigOf(a)&SigOf(b) == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Interned signatures match SigOf of the interned set.
func TestTableSig(t *testing.T) {
	tab := NewTable()
	s := Set{}.Add(3, 0).Add(77, 0)
	id := tab.Intern(s)
	if tab.Sig(id) != SigOf(s) {
		t.Fatalf("Sig(%d) = %#x, want %#x", id, tab.Sig(id), SigOf(s))
	}
	if tab.Sig(0) != 0 {
		t.Fatalf("empty set signature = %#x, want 0", tab.Sig(0))
	}
}
