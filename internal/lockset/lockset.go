// Package lockset implements locksets whose entries carry the acquisition
// timestamp of a thread-local logical clock, the extension HawkSet uses to
// detect a lock being released and reacquired between a store and its
// persistency (§3.1.2, Fig. 2d). It also provides an interning table so
// locksets are shared across PM accesses and compared by integer ID (§4).
package lockset

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Entry is one held lock: its identity and the value of the owning thread's
// logical clock when it was acquired. The clock is incremented on every lock
// acquisition, so two holds of the same lock in different critical sections
// have different timestamps.
type Entry struct {
	Lock uint64
	TS   uint32
}

// Set is a lockset sorted by lock identity. The empty (nil) set means no
// locks held.
type Set []Entry

// Clone returns a copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Add returns s with (lock, ts) inserted, preserving order. Acquiring a lock
// already in the set (recursive locking) refreshes its timestamp; when the
// entry already carries the requested timestamp — always the case with
// timestamps disabled, where every ts is 0 — s is returned unchanged
// instead of cloned.
func (s Set) Add(lock uint64, ts uint32) Set {
	i := sort.Search(len(s), func(i int) bool { return s[i].Lock >= lock })
	if i < len(s) && s[i].Lock == lock {
		if s[i].TS == ts {
			return s
		}
		out := s.Clone()
		out[i].TS = ts
		return out
	}
	out := make(Set, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, Entry{Lock: lock, TS: ts})
	return append(out, s[i:]...)
}

// Remove returns s without lock.
func (s Set) Remove(lock uint64) Set {
	i := sort.Search(len(s), func(i int) bool { return s[i].Lock >= lock })
	if i >= len(s) || s[i].Lock != lock {
		return s
	}
	out := make(Set, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

// Holds reports whether lock is in the set.
func (s Set) Holds(lock uint64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].Lock >= lock })
	return i < len(s) && s[i].Lock == lock
}

// IntersectExact returns the entries present in both sets with matching lock
// identity AND timestamp. This is the effective-lockset intersection within
// one thread: a lock released and reacquired between the store and the
// persistency has different timestamps and drops out (§3.1.2).
func IntersectExact(a, b Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Lock < b[j].Lock:
			i++
		case a[i].Lock > b[j].Lock:
			j++
		default:
			if a[i].TS == b[j].TS {
				out = append(out, a[i])
			}
			i++
			j++
		}
	}
	return out
}

// IntersectLocks returns the entries whose lock identity appears in both
// sets, ignoring timestamps. Timestamps are thread-local, so inter-thread
// intersections (Algorithm 1 line 18) must ignore them (§3.1.2: "the
// timestamp of the effective lockset is ignored since it is only meaningful
// in the thread-local context"). Entries from a are returned.
func IntersectLocks(a, b Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Lock < b[j].Lock:
			i++
		case a[i].Lock > b[j].Lock:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// DisjointLocks reports whether the two sets share no lock identity — the
// race condition test, cheaper than materializing the intersection.
func DisjointLocks(a, b Set) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Lock < b[j].Lock:
			i++
		case a[i].Lock > b[j].Lock:
			j++
		default:
			return false
		}
	}
	return true
}

// String renders the set as "{A@1, B@2}" for diagnostics.
func (s Set) String() string {
	if len(s) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "L%d@%d", e.Lock, e.TS)
	}
	b.WriteByte('}')
	return b.String()
}

// ID identifies an interned lockset. ID 0 is the empty set.
type ID int32

// Table interns locksets. Not safe for concurrent use.
//
// Each interned set carries a 64-bit lock-identity signature (one bit per
// lock, position derived from a hash of the lock ID). Signatures give a
// walk-free sufficient test for disjointness: if two signatures share no
// bit, the sets share no lock. See Sig and SigOf.
type Table struct {
	byHash map[uint64][]ID
	sets   []Set
	sigs   []uint64
}

// NewTable returns a table whose ID 0 is the empty set.
func NewTable() *Table {
	return &Table{byHash: make(map[uint64][]ID), sets: []Set{nil}, sigs: []uint64{0}}
}

// SigOf computes the lock-identity signature of a set: the union of one bit
// per lock. Two sets sharing a lock necessarily share the lock's bit, so
// sigA & sigB == 0 proves DisjointLocks(a, b); a nonzero intersection is
// inconclusive (hash collisions set the same bit for different locks).
func SigOf(s Set) uint64 {
	var sig uint64
	for _, e := range s {
		// Fibonacci hash of the lock ID picks the bit; the multiply spreads
		// clustered small IDs across the word.
		sig |= 1 << ((e.Lock * 0x9E3779B97F4A7C15) >> 58)
	}
	return sig
}

// Sig returns the precomputed signature of an interned set.
func (t *Table) Sig(id ID) uint64 { return t.sigs[id] }

func hashSet(s Set) uint64 {
	h := fnv.New64a()
	var b [12]byte
	for _, e := range s {
		for k := 0; k < 8; k++ {
			b[k] = byte(e.Lock >> (8 * k))
		}
		for k := 0; k < 4; k++ {
			b[8+k] = byte(e.TS >> (8 * k))
		}
		h.Write(b[:]) //nolint:errcheck // fnv never errors
	}
	return h.Sum64()
}

func equalSet(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Intern returns the canonical ID for s, copying it if new.
func (t *Table) Intern(s Set) ID {
	if len(s) == 0 {
		return 0
	}
	h := hashSet(s)
	for _, id := range t.byHash[h] {
		if equalSet(t.sets[id], s) {
			return id
		}
	}
	id := ID(len(t.sets))
	t.sets = append(t.sets, s.Clone())
	t.sigs = append(t.sigs, SigOf(s))
	t.byHash[h] = append(t.byHash[h], id)
	return id
}

// Get resolves an ID. The returned set must not be mutated.
func (t *Table) Get(id ID) Set { return t.sets[id] }

// Len returns the number of interned sets.
func (t *Table) Len() int { return len(t.sets) }

// StripTS returns the set with every acquisition timestamp zeroed.
// Timestamps exist only to compute effective locksets within one thread
// (store vs persist); once an access record is produced, inter-thread
// comparisons ignore them (§3.1.2), so records intern timestamp-free sets —
// otherwise every critical section's monotonically growing clock would make
// every lockset unique and defeat the sharing that §4's optimizations rely
// on.
func (s Set) StripTS() Set {
	if len(s) == 0 {
		return nil
	}
	for _, e := range s {
		if e.TS != 0 {
			out := make(Set, len(s))
			for i, e := range s {
				out[i] = Entry{Lock: e.Lock}
			}
			return out
		}
	}
	return s
}
