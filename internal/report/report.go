// Package report renders analysis results for humans and machines: the
// plain-text listing cmd/hawkset prints, and a stable JSON document for CI
// integration — the workflow §5.3 argues HawkSet's testing times enable
// ("developers run HawkSet often as part of the development process").
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"hawkset/internal/hawkset"
)

// Race is the JSON shape of one race report.
type Race struct {
	StoreSite   string `json:"store_site"`
	StoreFunc   string `json:"store_func,omitempty"`
	LoadSite    string `json:"load_site"`
	LoadFunc    string `json:"load_func,omitempty"`
	Addr        string `json:"addr"`
	StoreThread int32  `json:"store_thread"`
	LoadThread  int32  `json:"load_thread"`
	WindowEnd   string `json:"window_end"`
	Unpersisted bool   `json:"unpersisted"`
	StoreStore  bool   `json:"store_store,omitempty"`
	Pairs       int    `json:"pairs"`
	Weight      uint64 `json:"weight"`
	// Class carries the ground-truth classification when available
	// (MR/BR/FP); empty for unclassified runs.
	Class string `json:"class,omitempty"`
}

// Stats is the JSON shape of the analysis statistics.
type Stats struct {
	Events            int    `json:"events"`
	PMAccesses        int    `json:"pm_accesses"`
	DynamicStores     uint64 `json:"dynamic_stores"`
	DynamicLoads      uint64 `json:"dynamic_loads"`
	StoreRecords      int    `json:"store_records"`
	LoadRecords       int    `json:"load_records"`
	IRHDroppedStores  uint64 `json:"irh_dropped_stores"`
	IRHDroppedLoads   uint64 `json:"irh_dropped_loads"`
	UnpersistedAtEnd  int    `json:"unpersisted_at_end"`
	LocksetsInterned  int    `json:"locksets_interned"`
	VClocksInterned   int    `json:"vclocks_interned"`
	PairsChecked      uint64 `json:"pairs_checked"`
	PairsHBFiltered   uint64 `json:"pairs_hb_filtered"`
	PairsLockFiltered uint64 `json:"pairs_lock_filtered"`
}

// Document is the top-level JSON report. It is fully deterministic for a
// given analysis result — deliberately no generation timestamp or other
// wall-clock value (the side-band invariant, see DESIGN.md): two runs over
// the same trace diff empty, so CI can compare documents byte-for-byte.
type Document struct {
	Tool        string `json:"tool"`
	Application string `json:"application,omitempty"`
	Workload    string `json:"workload,omitempty"`
	Races       []Race `json:"races"`
	Stats       Stats  `json:"stats"`
}

// Classifier maps a report to a class label; nil means unclassified.
type Classifier func(hawkset.Report) string

// New builds a Document from an analysis result.
func New(res *hawkset.Result, app, workload string, classify Classifier) *Document {
	doc := &Document{
		Tool:        "hawkset (Go reproduction)",
		Application: app,
		Workload:    workload,
		Races:       make([]Race, 0, len(res.Reports)),
	}
	for _, r := range res.Reports {
		race := Race{
			StoreSite:   r.StoreFrame.String(),
			StoreFunc:   r.StoreFrame.Func,
			LoadSite:    r.LoadFrame.String(),
			LoadFunc:    r.LoadFrame.Func,
			Addr:        fmt.Sprintf("%#x", r.Addr),
			StoreThread: r.StoreTID,
			LoadThread:  r.LoadTID,
			WindowEnd:   r.EndKind.String(),
			Unpersisted: r.Unpersisted,
			StoreStore:  r.StoreStore,
			Pairs:       r.Pairs,
			Weight:      r.Weight,
		}
		if classify != nil {
			race.Class = classify(r)
		}
		doc.Races = append(doc.Races, race)
	}
	s := res.Stats
	doc.Stats = Stats{
		Events: s.Events, PMAccesses: s.PMAccesses,
		DynamicStores: s.DynamicStores, DynamicLoads: s.DynamicLoads,
		StoreRecords: s.StoreRecords, LoadRecords: s.LoadRecords,
		IRHDroppedStores: s.IRHDroppedStores, IRHDroppedLoads: s.IRHDroppedLoads,
		UnpersistedAtEnd: s.UnpersistedAtEnd,
		LocksetsInterned: s.LocksetsInterned, VClocksInterned: s.VClocksInterned,
		PairsChecked: s.PairsChecked, PairsHBFiltered: s.PairsHBFiltered,
		PairsLockFiltered: s.PairsLockFiltered,
	}
	return doc
}

// WriteJSON emits the document as indented JSON.
func (d *Document) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteText emits the human-readable listing.
func (d *Document) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%d persistency-induced race report(s)", len(d.Races)); err != nil {
		return err
	}
	if d.Application != "" {
		fmt.Fprintf(w, " in %s", d.Application) //nolint:errcheck // best-effort text output
	}
	fmt.Fprintln(w) //nolint:errcheck
	for i, r := range d.Races {
		class := ""
		if r.Class != "" {
			class = " [" + r.Class + "]"
		}
		kind := ""
		if r.StoreStore {
			kind = " (store-store)"
		}
		if _, err := fmt.Fprintf(w, "%3d. store %s / load %s (addr=%s, T%d vs T%d, %s, pairs=%d)%s%s\n",
			i+1, r.StoreSite, r.LoadSite, r.Addr, r.StoreThread, r.LoadThread,
			r.WindowEnd, r.Pairs, class, kind); err != nil {
			return err
		}
	}
	return nil
}
