package report

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// FuzzOptDocument checks that pmopt's report document is a JSON fixed
// point: any OptDocument that decodes — including hostile or truncated
// field sets — must survive sort → encode → decode → sort → encode with
// byte-identical output, and both writers must be panic-free. CI relies on
// this (it diffs two pmopt runs byte-for-byte), so canonicalization bugs
// would surface as spurious nondeterminism failures.
func FuzzOptDocument(f *testing.F) {
	seed := &OptDocument{
		Tool:        "pmopt",
		Application: "P-ART",
		Workload:    "400 ops, seed 1, fixed",
		Candidates: []OptCandidate{
			{Site: "internal/apps/part/part.go:316", Func: "(*Tree).addChild", Op: "persist",
				Kind: "duplicate-flush", Tier: TierStaticDynamic, StaticClaim: true,
				Occurrences: 1216, Redundant: 1216, Eliminable: true, Detail: "608/608 flushes changeless"},
			{Site: "internal/apps/part/part.go:315", Op: "persist", Kind: "duplicate-flush",
				Tier: TierStaticOnly, StaticClaim: true, Occurrences: 1216, Redundant: 958, Refuted: true},
			{Site: "internal/apps/pmasstree/pmasstree.go:141", Op: "persist",
				Kind: "clean-line-flush", Tier: TierDynamicOnly, Occurrences: 294, Redundant: 294, Eliminable: true},
		},
		Stats: OptStats{JournalOps: 40000, Flushes: 14481, Fences: 14313, ChangelessFlushes: 6503, FlushSites: 12, FenceSites: 12},
	}
	SortCandidates(seed.Candidates)
	var buf bytes.Buffer
	if err := seed.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"candidates":null,"stats":{}}`))
	f.Add([]byte(`{"tool":"pmopt","candidates":[{"site":"a.go:1","tier":"bogus-tier"},{"site":"a.go:1","tier":"bogus-tier","op":"x"}]}`))
	f.Add([]byte(`{"candidates":[{"occurrences":-1,"redundant":99}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d OptDocument
		if err := json.Unmarshal(data, &d); err != nil {
			return // rejected input: nothing promised
		}
		SortCandidates(d.Candidates)
		if err := d.WriteText(io.Discard); err != nil {
			t.Fatalf("WriteText on accepted document: %v", err)
		}
		var one bytes.Buffer
		if err := d.WriteJSON(&one); err != nil {
			t.Fatalf("WriteJSON on accepted document: %v", err)
		}
		var d2 OptDocument
		if err := json.Unmarshal(one.Bytes(), &d2); err != nil {
			t.Fatalf("re-decoding own output: %v", err)
		}
		SortCandidates(d2.Candidates)
		var two bytes.Buffer
		if err := d2.WriteJSON(&two); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one.Bytes(), two.Bytes()) {
			t.Fatalf("document is not a fixed point:\nfirst:  %s\nsecond: %s", one.Bytes(), two.Bytes())
		}
	})
}
