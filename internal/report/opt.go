package report

// OptDocument is pmopt's output: redundancy candidates among an
// application's flush/fence sites, each carrying the static verdict, the
// dynamic occurrence evidence and the joined confidence tier. Like Document
// it is fully deterministic — no wall-clock value, candidates sorted — so
// two pmopt runs over the same (app, seed, ops) diff empty and CI compares
// byte-for-byte.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Confidence tiers of an OptCandidate, strongest first.
const (
	TierStaticDynamic = "static+dynamic" // static claim confirmed by every dynamic occurrence
	TierDynamicOnly   = "dynamic-only"   // every occurrence redundant, but no static proof
	TierStaticOnly    = "static-only"    // static claim with no (or contradicting) dynamic evidence
)

// OptCandidate is one flush/fence site reported as redundant.
type OptCandidate struct {
	Site string `json:"site"`           // module-relative file.go:line
	Func string `json:"func,omitempty"` // enclosing function (static view)
	// Op is what the site issues: "flush", "fence" or "persist"
	// (flush+fence).
	Op string `json:"op"`
	// Kind classifies the redundancy: "duplicate-flush", "empty-fence",
	// "flush-after-nt-store" or "clean-line-flush".
	Kind string `json:"kind"`
	Tier string `json:"tier"`
	// StaticClaim is set when the CFG analysis proves the redundancy on all
	// paths (at line granularity: same normalized base, no intervening
	// store).
	StaticClaim bool `json:"static_claim"`
	// Occurrences counts journaled device ops issued from the site;
	// Redundant counts those that were provably no-ops at commit time.
	Occurrences int `json:"occurrences"`
	Redundant   int `json:"redundant"`
	// Eliminable marks sites whose every dynamic occurrence was a no-op —
	// the set -apply is allowed to elide (still behind the crash gate).
	Eliminable bool `json:"eliminable"`
	// Refuted marks a static claim contradicted by at least one effective
	// dynamic occurrence — the line-granular static view was too coarse.
	Refuted bool   `json:"refuted,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// OptStats summarizes the analyzed journal.
type OptStats struct {
	JournalOps        int `json:"journal_ops"`
	Flushes           int `json:"flushes"`
	Fences            int `json:"fences"`
	NTStores          int `json:"nt_stores"`
	ChangelessFlushes int `json:"changeless_flushes"`
	EmptyFences       int `json:"empty_fences"`
	FlushSites        int `json:"flush_sites"`
	FenceSites        int `json:"fence_sites"`
}

// OptDocument is the top-level pmopt report.
type OptDocument struct {
	Tool        string         `json:"tool"`
	Application string         `json:"application,omitempty"`
	Workload    string         `json:"workload,omitempty"`
	Candidates  []OptCandidate `json:"candidates"`
	Stats       OptStats       `json:"stats"`
}

// tierRank orders tiers strongest-first for sorting.
func tierRank(t string) int {
	switch t {
	case TierStaticDynamic:
		return 0
	case TierDynamicOnly:
		return 1
	default:
		return 2
	}
}

// SortCandidates establishes the document order: tier strength, then site.
// The sort is stable so that a sorted document re-sorts to itself even with
// duplicate (tier, site, kind) keys — WriteJSON output is a fixed point.
func SortCandidates(cs []OptCandidate) {
	sort.SliceStable(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if ra, rb := tierRank(a.Tier), tierRank(b.Tier); ra != rb {
			return ra < rb
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Kind < b.Kind
	})
}

// WriteJSON emits the document as indented JSON.
func (d *OptDocument) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteText emits the human-readable listing.
func (d *OptDocument) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%d redundancy candidate(s)", len(d.Candidates)); err != nil {
		return err
	}
	if d.Application != "" {
		fmt.Fprintf(w, " in %s", d.Application) //nolint:errcheck // best-effort text output
	}
	fmt.Fprintf(w, " (%d flushes, %d fences journaled; %d changeless, %d empty)\n",
		d.Stats.Flushes, d.Stats.Fences, d.Stats.ChangelessFlushes, d.Stats.EmptyFences) //nolint:errcheck
	for i, c := range d.Candidates {
		marks := ""
		if c.Eliminable {
			marks += " eliminable"
		}
		if c.Refuted {
			marks += " REFUTED"
		}
		detail := ""
		if c.Detail != "" {
			detail = " — " + c.Detail
		}
		if _, err := fmt.Fprintf(w, "%3d. [%s] %s %s (%s, %d/%d redundant)%s%s\n",
			i+1, c.Tier, c.Op, c.Site, c.Kind, c.Redundant, c.Occurrences, marks, detail); err != nil {
			return err
		}
	}
	return nil
}
