package report

import (
	"encoding/json"
	"fmt"
	"io"

	"hawkset/internal/crashinject"
)

// CrashCheck is one application's outcome in a pmcheck run: the end-of-run
// crash-image validation and, when fault injection is enabled, the
// crash-point campaign.
type CrashCheck struct {
	Application string `json:"application"`
	Fixed       bool   `json:"fixed"`
	// Violations are the end-of-run crash-image validation failures.
	Violations []string `json:"violations,omitempty"`
	// Skipped explains why the application was not checked (e.g. it
	// registers no crash validator).
	Skipped string `json:"skipped,omitempty"`
	// Campaign is the fault-injection campaign result (pmcheck -inject).
	Campaign *crashinject.Campaign `json:"campaign,omitempty"`
	// Failed marks the application as failing the check.
	Failed bool `json:"failed"`
}

// CrashDocument is the top-level JSON document of a pmcheck run. Like
// report.Document, it carries no wall-clock value (the side-band invariant):
// identical campaigns serialize byte-identically.
type CrashDocument struct {
	Tool     string       `json:"tool"`
	Strategy string       `json:"strategy,omitempty"`
	Checks   []CrashCheck `json:"checks"`
}

// NewCrashDocument builds an empty pmcheck document.
func NewCrashDocument(strategy string) *CrashDocument {
	return &CrashDocument{
		Tool:     "pmcheck (hawkset Go reproduction)",
		Strategy: strategy,
	}
}

// FailedApps counts the applications that failed their check.
func (d *CrashDocument) FailedApps() int {
	n := 0
	for _, c := range d.Checks {
		if c.Failed {
			n++
		}
	}
	return n
}

// WriteJSON emits the document as indented JSON.
func (d *CrashDocument) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteText emits the human-readable listing; maxShow caps the violations
// and failing points printed per application.
func (d *CrashDocument) WriteText(w io.Writer, maxShow int) error {
	for _, c := range d.Checks {
		if err := c.writeText(w, maxShow); err != nil {
			return err
		}
	}
	return nil
}

func (c *CrashCheck) writeText(w io.Writer, maxShow int) error {
	if c.Skipped != "" {
		_, err := fmt.Fprintf(w, "%-15s (%s)\n", c.Application, c.Skipped)
		return err
	}
	if len(c.Violations) == 0 {
		if _, err := fmt.Fprintf(w, "%-15s crash image CONSISTENT\n", c.Application); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "%-15s crash image CORRUPT: %d violation(s)\n", c.Application, len(c.Violations)); err != nil {
			return err
		}
		for i, v := range c.Violations {
			if i >= maxShow {
				fmt.Fprintf(w, "    ... and %d more\n", len(c.Violations)-i) //nolint:errcheck // best-effort text output
				break
			}
			fmt.Fprintf(w, "    %s\n", v) //nolint:errcheck
		}
	}
	if c.Campaign == nil {
		return nil
	}
	cp := c.Campaign
	if _, err := fmt.Fprintf(w, "%-15s %s campaign: %d/%d crash points failed (%d enumerated, %d skipped by budget, %d by deadline)\n",
		"", cp.Strategy, cp.Failed, cp.Tested, cp.Enumerated, cp.SkippedBudget, cp.SkippedDeadline); err != nil {
		return err
	}
	shown := 0
	for _, p := range cp.Failures() {
		if shown >= maxShow {
			fmt.Fprintf(w, "    ... and %d more failing points\n", cp.Failed-shown) //nolint:errcheck
			break
		}
		fmt.Fprintf(w, "    point %d (after %s, event %d): %s\n", p.Pos, p.Op, p.Seq, p.Inconsistent) //nolint:errcheck
		shown++
	}
	return nil
}
