package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hawkset/internal/hawkset"
	"hawkset/internal/trace"
)

func sampleResult(t *testing.T) *hawkset.Result {
	t.Helper()
	b := trace.NewBuilder()
	b.Create(0, 1, "c1").Create(0, 2, "c2")
	b.Store(1, 0x100, 8, "writer.store")
	b.Load(2, 0x100, 8, "reader.load")
	b.Join(0, 1, "j").Join(0, 2, "j")
	cfg := hawkset.DefaultConfig()
	cfg.IRH = false
	return hawkset.Analyze(b.T, cfg)
}

func TestJSONRoundTrip(t *testing.T) {
	res := sampleResult(t)
	doc := New(res, "Toy", "unit", func(r hawkset.Report) string { return "MR" })
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if len(back.Races) != 1 {
		t.Fatalf("races = %d, want 1", len(back.Races))
	}
	r := back.Races[0]
	if r.StoreSite != "writer.store" || r.LoadSite != "reader.load" {
		t.Fatalf("sites = %q/%q", r.StoreSite, r.LoadSite)
	}
	if !r.Unpersisted || r.WindowEnd != "unpersisted" {
		t.Fatalf("window fields wrong: %+v", r)
	}
	if r.Class != "MR" {
		t.Fatalf("class = %q", r.Class)
	}
	if back.Stats.PMAccesses != 2 {
		t.Fatalf("stats.pm_accesses = %d", back.Stats.PMAccesses)
	}
}

func TestTextOutput(t *testing.T) {
	res := sampleResult(t)
	doc := New(res, "Toy", "unit", nil)
	var buf bytes.Buffer
	if err := doc.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"1 persistency-induced race report(s)", "writer.store", "reader.load", "T1 vs T2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyResult(t *testing.T) {
	b := trace.NewBuilder()
	b.Store(1, 0x100, 8, "s")
	res := hawkset.Analyze(b.T, hawkset.DefaultConfig())
	doc := New(res, "", "", nil)
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"races": []`) {
		t.Fatalf("empty races must serialize as an empty array:\n%s", buf.String())
	}
}
