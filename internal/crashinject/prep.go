package crashinject

import (
	"fmt"
	"time"

	"hawkset/internal/apps"
	"hawkset/internal/hawkset"
	"hawkset/internal/obs"
	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"
	"hawkset/internal/sites"
	"hawkset/internal/ycsb"
)

// Prep is a recorded execution of a registered application, ready for
// campaigns: the journal, the trace, the operation spans (for quiescence)
// and lazily-computed analysis artifacts. One Prep serves any number of
// campaigns (different strategies, budgets, targeted bugs) without
// re-running the application.
type Prep struct {
	Entry   *apps.Entry
	Fixed   bool
	Runtime *pmrt.Runtime
	App     apps.App
	// Spans are the [start,end) journal-position spans of Setup and every
	// mutating workload operation, in completion order. A position p with
	// start < p < end for some span has that operation in flight.
	Spans []Span
	// SetupEnd is the journal position where Setup's span ends; crash
	// points start there (a crash before initialization completed would
	// exercise re-initialization, not recovery).
	SetupEnd int

	inflight []int
	analysis *hawkset.Result
	windows  []hawkset.StoreWindow
}

// Span is a half-open journal-position interval.
type Span struct{ Start, End int }

// mutates reports whether a workload op kind can modify the structure;
// read-only ops never open store windows and need no span.
func mutates(k ycsb.OpKind) bool {
	return k != ycsb.OpGet && k != ycsb.OpScan && k != ycsb.OpRead
}

// Prepare records one instrumented execution of the application with the
// device-op journal enabled and operation spans captured. The workload,
// schedule and journal are deterministic in (opCount, seed, fixed).
func Prepare(e *apps.Entry, opCount int, seed int64, fixed bool) (*Prep, error) {
	return PrepareWith(e, opCount, seed, fixed, PrepOptions{})
}

// PrepOptions extends Prepare for consumers that need more than the plain
// recording. pmopt's apply gate records the same execution with candidate
// sites elided and counters attached; the zero value is exactly Prepare.
type PrepOptions struct {
	// Metrics receives the runtime's side-band counters (device_flush,
	// device_fence, ...) for before/after comparison.
	Metrics *obs.Registry
	// ElideSites is forwarded to pmrt.Config.ElideSites: flush/fence sites
	// to suppress during the recording.
	ElideSites map[string]bool
}

// PrepareWith is Prepare with recording options.
func PrepareWith(e *apps.Entry, opCount int, seed int64, fixed bool, opt PrepOptions) (*Prep, error) {
	if e.MaxOps > 0 && opCount > e.MaxOps {
		opCount = e.MaxOps
	}
	w := ycsb.Generate(e.Spec(opCount), seed)
	poolSize := e.PoolSize
	if poolSize == 0 {
		poolSize = 32 << 20
	}
	rt := pmrt.New(pmrt.Config{Seed: seed, PoolSize: poolSize, RecordOps: true,
		Metrics: opt.Metrics, ElideSites: opt.ElideSites})
	app := e.Factory(rt, fixed)

	var spans []Span
	// record wraps an operation with journal-position capture. Spans from
	// worker closures are appended race-free: the cooperative scheduler
	// serializes all threads.
	record := func(f func()) {
		s := len(rt.Ops)
		f()
		spans = append(spans, Span{s, len(rt.Ops)})
	}
	err := rt.Run(func(c *pmrt.Ctx) {
		record(func() { app.Setup(c) })
		for _, op := range w.Load {
			op := op
			record(func() { app.Apply(c, op) })
		}
		var ths []*pmrt.Thread
		for _, ops := range w.Threads {
			ops := ops
			ths = append(ths, c.Spawn(func(wc *pmrt.Ctx) {
				for _, op := range ops {
					op := op
					if mutates(op.Kind) {
						record(func() { app.Apply(wc, op) })
					} else {
						app.Apply(wc, op)
					}
				}
			}))
		}
		for _, th := range ths {
			c.Join(th)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("crashinject: recording %s: %w", e.Name, err)
	}
	p := &Prep{
		Entry: e, Fixed: fixed, Runtime: rt, App: app,
		Spans: spans, SetupEnd: spans[0].End,
	}
	p.computeInflight()
	return p, nil
}

// computeInflight builds, via a difference array over journal positions,
// the number of operations in flight at every position 0..len(Ops). A span
// [s,e) has the operation in flight at positions strictly inside it:
// position s is "before its first device op" and e is "after its last",
// both safe to crash at from that operation's perspective. Spans are
// conservative — they may cover other threads' interleaved ops — which only
// shrinks the quiescent set, never falsely marks a position quiescent.
func (p *Prep) computeInflight() {
	n := len(p.Runtime.Ops)
	d := make([]int, n+2)
	for _, s := range p.Spans {
		if s.End-s.Start <= 1 {
			continue // no strictly-interior position
		}
		d[s.Start+1]++
		d[s.End]--
	}
	p.inflight = make([]int, n+1)
	run := 0
	for i := 0; i <= n; i++ {
		run += d[i]
		p.inflight[i] = run
	}
}

// Quiescent reports whether no mutating operation is in flight at a
// journal position.
func (p *Prep) Quiescent(pos int) bool { return p.inflight[pos] == 0 }

// Analysis runs (once, lazily) the PM-aware lockset analysis over the
// recorded trace; the targeted strategy derives its windows from it.
func (p *Prep) Analysis() *hawkset.Result {
	if p.analysis == nil {
		p.analysis = hawkset.Analyze(p.Runtime.Trace, hawkset.DefaultConfig())
	}
	return p.analysis
}

// Windows extracts (once, lazily) every store's unpersisted window from
// the recorded trace, in trace-event coordinates.
func (p *Prep) Windows() []hawkset.StoreWindow {
	if p.windows == nil {
		p.windows = hawkset.Windows(p.Runtime.Trace, hawkset.DefaultConfig())
	}
	return p.windows
}

// targetedSpans derives the Targeted strategy's event intervals: the
// unpersisted windows of every store site implicated in a race report.
// bugID restricts the reports to one registered bug (0 = all reports).
// The result is non-nil even when empty — the strategy is supported, it
// just enumerates no points.
func (p *Prep) targetedSpans(bugID int) [][2]int {
	siteSet := make(map[sites.ID]bool)
	for _, r := range p.Analysis().Reports {
		if bugID != 0 {
			matched := false
			for _, b := range p.Entry.Bugs {
				if b.ID == bugID && b.Matches(r) {
					matched = true
					break
				}
			}
			if !matched {
				continue
			}
		}
		siteSet[r.StoreSite] = true
	}
	spans := make([][2]int, 0, 16)
	for _, w := range p.Windows() {
		if siteSet[w.StoreSite] {
			spans = append(spans, [2]int{w.Start, w.End})
		}
	}
	return spans
}

// Target assembles the campaign input for this execution. bugID restricts
// the Targeted strategy's windows to the given registered bug's reports
// (0 = windows of every report).
func (p *Prep) Target(bugID int) *Target {
	t := &Target{
		Name:      p.Entry.Name,
		Fixed:     p.Fixed,
		PoolSize:  p.Runtime.Pool.Size(),
		Ops:       p.Runtime.Ops,
		MinPos:    p.SetupEnd,
		Quiescent: p.Quiescent,
	}
	if v, ok := p.App.(apps.CrashPointValidator); ok {
		t.PointCheck = v.ValidateCrashPoint
	}
	if v, ok := p.App.(apps.CrashValidator); ok {
		t.QuiescentCheck = v.ValidateCrash
	}
	if p.Entry.Recover != nil {
		entry, app, fixed := p.Entry, p.App, p.Fixed
		t.Recover = func(img *pmem.Pool, cfg Config) error {
			// The recovery runtime adopts the rebooted image; the
			// throwaway pool New allocates is kept minimal. Recovery code
			// allocates no PM, so the nil heap stays adequate.
			rrt := pmrt.NewWithPool(pmrt.Config{
				Seed:     cfg.Seed,
				PoolSize: pmem.LineSize,
				MaxSteps: cfg.RecoverySteps,
				NoTrace:  true,
			}, img, nil)
			var rerr error
			if err := rrt.Run(func(c *pmrt.Ctx) {
				rerr = entry.Recover(c, app, fixed)
			}); err != nil {
				return err
			}
			return rerr
		}
	}
	t.TargetedEventSpans = p.targetedSpans(bugID)
	return t
}

// BugOutcome summarizes the buggy-mode targeted campaign for one seeded
// bug in a differential run.
type BugOutcome struct {
	ID          int    `json:"id"`
	Description string `json:"description,omitempty"`
	Enumerated  int    `json:"enumerated"`
	Tested      int    `json:"tested"`
	Failed      int    `json:"failed"`
}

// DiffResult is a buggy-versus-fixed cross-check: each seeded bug's
// targeted campaign in buggy mode against the full targeted campaign in
// fixed mode.
type DiffResult struct {
	App   string       `json:"app"`
	Buggy []BugOutcome `json:"buggy"`
	Fixed *Campaign    `json:"fixed"`
}

// Holds reports whether the differential contract is met: every seeded bug
// produced at least one failing crash point in buggy mode, and the fixed
// variant produced none. Problems lists each violation.
func (d *DiffResult) Holds() (bool, []string) {
	var problems []string
	for _, b := range d.Buggy {
		if b.Failed == 0 {
			problems = append(problems, fmt.Sprintf("bug #%d: no failing crash point in buggy mode (%d tested of %d enumerated)", b.ID, b.Tested, b.Enumerated))
		}
	}
	if d.Fixed != nil && d.Fixed.Failed > 0 {
		problems = append(problems, fmt.Sprintf("fixed mode: %d failing crash points (want 0)", d.Fixed.Failed))
	}
	return len(problems) == 0, problems
}

// Differential runs the cross-check for an application: record buggy and
// fixed executions once each, then per seeded bug a targeted campaign on
// the buggy journal, and one targeted campaign over all reports on the
// fixed journal. The per-bug campaigns reuse the buggy Prep — the
// application runs exactly twice regardless of bug count.
func Differential(e *apps.Entry, opCount int, seed int64, cfg Config) (*DiffResult, error) {
	if e.Recover == nil {
		return nil, fmt.Errorf("crashinject: %s has no recovery hook", e.Name)
	}
	cfg.Strategy = Targeted
	start := time.Now()
	var deadline time.Time
	if cfg.Deadline > 0 {
		deadline = start.Add(cfg.Deadline)
	}
	remaining := func() time.Duration {
		if deadline.IsZero() {
			return 0
		}
		r := time.Until(deadline)
		if r <= 0 {
			r = time.Nanosecond // expired: campaigns still report skips
		}
		return r
	}

	pb, err := Prepare(e, opCount, seed, false)
	if err != nil {
		return nil, err
	}
	d := &DiffResult{App: e.Name}
	for _, b := range e.Bugs {
		c := cfg
		c.Deadline = remaining()
		camp, err := RunCampaign(pb.Target(b.ID), c)
		if err != nil {
			return nil, fmt.Errorf("crashinject: bug #%d campaign: %w", b.ID, err)
		}
		d.Buggy = append(d.Buggy, BugOutcome{
			ID: b.ID, Description: b.Description,
			Enumerated: camp.Enumerated, Tested: camp.Tested, Failed: camp.Failed,
		})
	}

	pf, err := Prepare(e, opCount, seed, true)
	if err != nil {
		return nil, err
	}
	c := cfg
	c.Deadline = remaining()
	d.Fixed, err = RunCampaign(pf.Target(0), c)
	if err != nil {
		return nil, fmt.Errorf("crashinject: fixed campaign: %w", err)
	}
	return d, nil
}
