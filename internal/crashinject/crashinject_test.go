package crashinject

import (
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
	"time"

	"hawkset/internal/apps"
	"hawkset/internal/apps/fastfair"
	"hawkset/internal/pmem"
	"hawkset/internal/pmrt"

	_ "hawkset/internal/apps/pmasstree"
)

func TestParseStrategy(t *testing.T) {
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("everywhere"); err == nil {
		t.Fatalf("ParseStrategy accepted unknown name")
	}
}

func TestMergeAndSearchSpans(t *testing.T) {
	spans := mergeSpans([][2]int{{10, 20}, {5, 12}, {30, 31}, {20, 25}})
	want := [][2]int{{5, 25}, {30, 31}}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("mergeSpans = %v, want %v", spans, want)
	}
	for x, in := range map[int]bool{4: false, 5: true, 24: true, 25: false, 30: true, 31: false} {
		if got := inSpans(spans, x); got != in {
			t.Errorf("inSpans(%d) = %v, want %v", x, got, in)
		}
	}
}

// syntheticTarget builds a minimal journal: k (store, flush, fence)
// triples over one line.
func syntheticTarget(k int) *Target {
	var ops []pmem.Op
	for i := 0; i < k; i++ {
		ops = append(ops,
			pmem.Op{Kind: pmem.OpStore, Addr: 64, Size: 8, Data: []byte{byte(i), 0, 0, 0, 0, 0, 0, 0}, Seq: 3 * i},
			pmem.Op{Kind: pmem.OpFlush, Addr: 64, Seq: 3*i + 1},
			pmem.Op{Kind: pmem.OpFence, Seq: 3*i + 2},
		)
	}
	return &Target{Name: "synthetic", PoolSize: 1 << 12, Ops: ops}
}

func TestSamplePointsPrefersQuiescent(t *testing.T) {
	tg := syntheticTarget(40)
	// Positions divisible by 4 are quiescent: fewer than budget, so all of
	// them must be kept and the rest filled deterministically.
	tg.Quiescent = func(pos int) bool { return pos%4 == 0 }
	pts, err := enumerate(tg, AfterStore)
	if err != nil {
		t.Fatal(err)
	}
	sel := samplePoints(tg, pts, 20, 7)
	if len(sel) != 20 {
		t.Fatalf("sampled %d points, want 20", len(sel))
	}
	quiescent := 0
	for i, p := range sel {
		if i > 0 && sel[i-1] >= p {
			t.Fatalf("sample not ascending: %v", sel)
		}
		if p%4 == 0 {
			quiescent++
		}
	}
	wantQ := 0
	for _, p := range pts {
		if p%4 == 0 {
			wantQ++
		}
	}
	if quiescent != wantQ {
		t.Fatalf("sample kept %d quiescent points, want all %d", quiescent, wantQ)
	}
	if again := samplePoints(tg, pts, 20, 7); !reflect.DeepEqual(sel, again) {
		t.Fatalf("sampling not deterministic: %v vs %v", sel, again)
	}
	if other := samplePoints(tg, pts, 20, 8); reflect.DeepEqual(sel, other) {
		t.Fatalf("different seeds produced identical samples (suspicious)")
	}
}

func TestCampaignBudgetAccounting(t *testing.T) {
	tg := syntheticTarget(50)
	camp, err := RunCampaign(tg, Config{Strategy: AfterStore, Budget: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Enumerated != 50 || camp.Tested != 10 || camp.SkippedBudget != 40 {
		t.Fatalf("enumerated/tested/skipped = %d/%d/%d, want 50/10/40", camp.Enumerated, camp.Tested, camp.SkippedBudget)
	}
	if camp.Failed != 0 || camp.SkippedDeadline != 0 {
		t.Fatalf("unexpected failures or deadline skips: %+v", camp)
	}
}

func TestCampaignDeadlineSkipsExplicitly(t *testing.T) {
	tg := syntheticTarget(50)
	// An already-expired deadline: every sampled point must be accounted
	// for as a deadline skip, never silently dropped.
	camp, err := RunCampaign(tg, Config{Strategy: AfterStore, Budget: -1, Deadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Tested+camp.SkippedDeadline != camp.Enumerated || camp.SkippedDeadline == 0 {
		t.Fatalf("deadline accounting broken: %+v", camp)
	}
}

func TestTargetedStrategy(t *testing.T) {
	tg := syntheticTarget(10) // Seqs 0..29
	tg.TargetedEventSpans = [][2]int{{6, 9}} // exactly the third triple
	camp, err := RunCampaign(tg, Config{Strategy: Targeted, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Enumerated != 3 || camp.Tested != 3 {
		t.Fatalf("targeted enumerated/tested = %d/%d, want 3/3", camp.Enumerated, camp.Tested)
	}
	tg.TargetedEventSpans = nil
	if _, err := RunCampaign(tg, Config{Strategy: Targeted}); err == nil {
		t.Fatalf("targeted strategy without spans must error")
	}
}

// TestRecoveryPanicContained drives recovery code that panics outright on
// every image: the campaign must record each point inconsistent and keep
// going.
func TestRecoveryPanicContained(t *testing.T) {
	tg := syntheticTarget(5)
	tg.Recover = func(img *pmem.Pool, cfg Config) error {
		panic("recovery exploded")
	}
	camp, err := RunCampaign(tg, Config{Strategy: AfterFence, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Tested != 5 || camp.Failed != 5 {
		t.Fatalf("tested/failed = %d/%d, want 5/5", camp.Tested, camp.Failed)
	}
	for _, p := range camp.Points {
		if p.Inconsistent == nil || !strings.Contains(p.Inconsistent.Panic, "recovery exploded") {
			t.Fatalf("point %d: want contained panic, got %+v", p.Pos, p.Inconsistent)
		}
	}
}

// TestRecoveryLivelockHitsStepBound runs recovery that loops forever under
// the instrumented runtime: the scheduler step bound must convert it into
// a deterministic hung verdict (the wall timeout never fires).
func TestRecoveryLivelockHitsStepBound(t *testing.T) {
	tg := syntheticTarget(3)
	tg.Recover = func(img *pmem.Pool, cfg Config) error {
		rrt := pmrt.NewWithPool(pmrt.Config{
			PoolSize: pmem.LineSize, MaxSteps: cfg.RecoverySteps, NoTrace: true,
		}, img, nil)
		return rrt.Run(func(c *pmrt.Ctx) {
			for {
				c.Load8(64) // chases a "next" pointer forever
			}
		})
	}
	camp, err := RunCampaign(tg, Config{Strategy: AfterFence, Budget: 2, RecoverySteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Tested != 2 || camp.Failed != 2 {
		t.Fatalf("tested/failed = %d/%d, want 2/2", camp.Tested, camp.Failed)
	}
	for _, p := range camp.Points {
		if p.Inconsistent == nil || !p.Inconsistent.Hung {
			t.Fatalf("point %d: want hung verdict, got %+v", p.Pos, p.Inconsistent)
		}
	}
}

// TestRecoveryWallTimeout blocks recovery outside the scheduler: the wall
// timeout must fire, the verdict is hung, and the campaign abandons the
// scratch buffers but still finishes the remaining points.
func TestRecoveryWallTimeout(t *testing.T) {
	tg := syntheticTarget(3)
	hangs := 0
	tg.Recover = func(img *pmem.Pool, cfg Config) error {
		hangs++
		if hangs == 1 {
			select {} // blocks forever; the probe goroutine is abandoned
		}
		return nil
	}
	camp, err := RunCampaign(tg, Config{Strategy: AfterFence, Budget: -1, PointTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Tested != 3 || camp.Failed != 1 {
		t.Fatalf("tested/failed = %d/%d, want 3/1", camp.Tested, camp.Failed)
	}
	if p := camp.Points[0]; p.Inconsistent == nil || !p.Inconsistent.Hung {
		t.Fatalf("first point: want hung verdict, got %+v", p.Inconsistent)
	}
	for _, p := range camp.Points[1:] {
		if p.Inconsistent != nil {
			t.Fatalf("point %d after timeout: want consistent, got %+v", p.Pos, p.Inconsistent)
		}
	}
}

// TestTornImagePanicRegression hand-crafts a torn crash image: the
// recorded Fast-Fair journal is extended with a persisted store that aims
// the root pointer outside the device, then with a store restoring it. The
// application's recovery walk faults on the torn image; the harness must
// record the panic as an inconsistent verdict and continue to the repaired
// point, which must pass.
func TestTornImagePanicRegression(t *testing.T) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(e, 200, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	meta := p.App.(*fastfair.Tree).Meta()
	goodRoot := p.Runtime.Pool.Load8(meta)
	bogus := p.Runtime.Pool.Size() + (1 << 20)

	tg := p.Target(0)
	// Only the recovery path is under test here: the structural validators
	// would (correctly) also fault on the torn image and mask it.
	tg.PointCheck, tg.QuiescentCheck = nil, nil
	tg.Quiescent = nil // appended positions are beyond the recorded spans
	n := len(tg.Ops)
	le := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, v)
		return b
	}
	tg.Ops = append(tg.Ops,
		pmem.Op{Kind: pmem.OpStore, Addr: meta, Size: 8, Data: le(bogus), Seq: -1},
		pmem.Op{Kind: pmem.OpFlush, Addr: meta, Seq: -1},
		pmem.Op{Kind: pmem.OpFence, Seq: -1},
		pmem.Op{Kind: pmem.OpStore, Addr: meta, Size: 8, Data: le(goodRoot), Seq: -1},
		pmem.Op{Kind: pmem.OpFlush, Addr: meta, Seq: -1},
		pmem.Op{Kind: pmem.OpFence, Seq: -1},
	)
	tg.MinPos = n + 1

	camp, err := RunCampaign(tg, Config{Strategy: AfterFence, Budget: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Tested != 2 {
		t.Fatalf("tested %d points, want 2 (torn + repaired)", camp.Tested)
	}
	torn, repaired := camp.Points[0], camp.Points[1]
	if torn.Inconsistent == nil || torn.Inconsistent.Panic == "" {
		t.Fatalf("torn image: want panic verdict, got %+v", torn.Inconsistent)
	}
	if repaired.Inconsistent != nil {
		t.Fatalf("repaired image after panic: want consistent, got %+v", repaired.Inconsistent)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(e, 400, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Strategy: AfterFence, Budget: 16, Seed: 42}
	run := func() *Campaign {
		c, err := RunCampaign(p.Target(0), cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.ElapsedMS = 0
		return c
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different campaigns:\n%+v\nvs\n%+v", a, b)
	}
}

func TestDifferentialFastFair(t *testing.T) {
	runDifferential(t, "Fast-Fair", 2000)
}

func TestDifferentialPMasstree(t *testing.T) {
	runDifferential(t, "P-Masstree", 3000)
}

func runDifferential(t *testing.T, name string, ops int) {
	e, err := apps.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Differential(e, ops, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ok, problems := d.Holds()
	if !ok {
		t.Fatalf("differential does not hold for %s: %v\nbuggy: %+v\nfixed: tested=%d failed=%d failures=%v",
			name, problems, d.Buggy, d.Fixed.Tested, d.Fixed.Failed, d.Fixed.Failures())
	}
	for _, b := range d.Buggy {
		t.Logf("%s bug #%d: %d/%d failing of %d enumerated", name, b.ID, b.Failed, b.Tested, b.Enumerated)
	}
	t.Logf("%s fixed: %d tested, %d skipped by budget, 0 failed", name, d.Fixed.Tested, d.Fixed.SkippedBudget)
}

// TestFixedFenceSweepClean sweeps the fixed variant with the coarse fence
// strategy: every persistence boundary of a correct execution must yield a
// consistent, recoverable image.
func TestFixedFenceSweepClean(t *testing.T) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(e, 1000, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := RunCampaign(p.Target(0), Config{Strategy: AfterFence, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Failed != 0 {
		t.Fatalf("fixed fence sweep failed %d of %d points: %v", camp.Failed, camp.Tested, camp.Failures())
	}
	if camp.Tested == 0 {
		t.Fatalf("fence sweep tested no points")
	}
}
