// Package crashinject implements a crash-point fault-injection campaign:
// the missing experimental link between a HawkSet race report and a
// demonstrable post-crash failure (§5.1 argues a crash inside the
// unpersisted window loses or corrupts data; this package crashes there and
// checks).
//
// A campaign replays a recorded device-op journal (pmem.Op, captured by
// pmrt under Config.RecordOps) against a fresh simulated device, enumerates
// crash points under a selectable strategy — after every fence, flush or
// store, or *targeted*: only inside the unpersisted windows of reported
// races — materializes the crash image at each point with one incremental
// replay (never re-running the application), and drives the application's
// recovery path plus its crash validators on every image.
//
// Chipmunk-style systematic crash testing shows most crash-consistency bugs
// surface only at specific crash points; the campaign makes those points
// first-class, with a budget and deadline for graceful degradation
// (deterministic sampling, skipped points reported — never silently
// truncated) and with panic/livelock containment around recovery code
// running on torn images.
package crashinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"hawkset/internal/obs"
	"hawkset/internal/pmem"
	"hawkset/internal/sched"
)

// Strategy selects which journal positions become crash points.
type Strategy uint8

// Crash-point strategies.
const (
	// AfterFence crashes after every fence: the coarsest sweep, one point
	// per persistence boundary.
	AfterFence Strategy = iota
	// AfterFlush crashes after every flush instruction (before the fence
	// that would commit it).
	AfterFlush
	// AfterStore crashes after every store: the finest exhaustive sweep.
	AfterStore
	// Targeted crashes only at positions inside the unpersisted windows of
	// the analysis' race reports — the points where §5.1 predicts failure.
	Targeted
)

var strategyNames = map[Strategy]string{
	AfterFence: "fence", AfterFlush: "flush", AfterStore: "store", Targeted: "targeted",
}

func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// Strategies lists every strategy in declaration order.
func Strategies() []Strategy { return []Strategy{AfterFence, AfterFlush, AfterStore, Targeted} }

// ParseStrategy resolves a strategy name (as used by the -strategy flag).
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if strings.EqualFold(name, n) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("crashinject: unknown strategy %q (want fence, flush, store or targeted)", name)
}

// Config parameterizes a campaign.
type Config struct {
	Strategy Strategy
	// Budget caps the number of points tested. 0 means DefaultBudget;
	// negative means unlimited. Quiescent points are sampled first (full
	// validation is only sound there), then the remainder fills up with
	// non-quiescent points; both draws are deterministic in Seed.
	Budget int
	// Deadline bounds the campaign's wall-clock time; points not reached
	// are counted in Campaign.SkippedDeadline (0 = no deadline).
	Deadline time.Duration
	// Seed drives sampling and the recovery runtime's scheduler.
	Seed int64
	// PointTimeout is the wall-clock guard around one recovery probe; the
	// scheduler step bound (RecoverySteps) normally fires long before it,
	// keeping campaigns deterministic. 0 means 10s.
	PointTimeout time.Duration
	// RecoverySteps bounds the recovery run's scheduling steps, converting
	// a livelocked recovery on a torn image into a deterministic hung
	// verdict. 0 means 1<<20.
	RecoverySteps uint64
	// Metrics, when non-nil, receives side-band campaign counters (point
	// accounting, verdict tallies, per-point duration). The campaign result
	// is byte-identical with or without it.
	Metrics *obs.Registry
	// OnProgress, when set, receives throttled progress samples while the
	// campaign runs (at most one per ProgressEvery) plus one final sample
	// with Done set. Long sweeps (AfterStore over a large journal) otherwise
	// run silent for minutes.
	OnProgress func(Progress)
	// ProgressEvery is the minimum interval between OnProgress samples.
	// 0 means 1s.
	ProgressEvery time.Duration
}

// DefaultBudget is the per-campaign point cap when Config.Budget is 0.
const DefaultBudget = 64

func (c Config) withDefaults() Config {
	if c.Budget == 0 {
		c.Budget = DefaultBudget
	}
	if c.PointTimeout == 0 {
		c.PointTimeout = 10 * time.Second
	}
	if c.RecoverySteps == 0 {
		c.RecoverySteps = 1 << 20
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = time.Second
	}
	return c
}

// Progress is one campaign progress sample, delivered via Config.OnProgress.
// Progress is presentation-only (a status line, a TUI): it carries wall-clock
// rates and must never be folded into a campaign result or report document.
type Progress struct {
	Target   string
	Strategy string
	// Tested counts points probed so far; Selected is the sampled total the
	// campaign will test (after budget, before any deadline skip).
	Tested   int
	Selected int
	Failed   int
	// SkippedBudget counts enumerated points dropped by sampling.
	SkippedBudget int
	Elapsed       time.Duration
	// PointsPerSec is the campaign's current throughput (0 until measurable).
	PointsPerSec float64
	// ETA estimates the time remaining at the current rate (0 when unknown
	// or done).
	ETA time.Duration
	// Done marks the final sample, sent after the last point (or the
	// deadline) regardless of throttling.
	Done bool
}

// VerdictInconsistent is a failing crash point's outcome: what went wrong
// on the crash image. A nil *VerdictInconsistent is a consistent point.
type VerdictInconsistent struct {
	// Violations are invariant violations from the crash validators.
	Violations []string `json:"violations,omitempty"`
	// RecoveryErr is the corruption the app's own recovery pass detected.
	RecoveryErr string `json:"recovery_err,omitempty"`
	// Panic records recovery (or validation) code panicking on the image.
	Panic string `json:"panic,omitempty"`
	// Hung records recovery exceeding its step bound or wall timeout.
	Hung bool `json:"hung,omitempty"`
}

func (v *VerdictInconsistent) String() string {
	var parts []string
	if v.Hung {
		parts = append(parts, "recovery hung")
	}
	if v.Panic != "" {
		parts = append(parts, "panic: "+v.Panic)
	}
	if v.RecoveryErr != "" {
		parts = append(parts, v.RecoveryErr)
	}
	parts = append(parts, v.Violations...)
	return strings.Join(parts, "; ")
}

// PointResult is the outcome of testing one crash point.
type PointResult struct {
	// Pos is the journal position: the crash image is the persistent view
	// after applying ops[0:Pos].
	Pos int `json:"pos"`
	// Seq is the trace-event index of the op crashed after (-1 untraced).
	Seq int `json:"seq"`
	// Op is the kind of the op crashed after.
	Op string `json:"op"`
	// Quiescent marks points with no application operation in flight; only
	// there is full (view-comparing) validation sound.
	Quiescent bool `json:"quiescent"`
	// Inconsistent is non-nil when the point failed.
	Inconsistent *VerdictInconsistent `json:"inconsistent,omitempty"`
}

// Failed reports whether the point produced an inconsistent verdict.
func (p PointResult) Failed() bool { return p.Inconsistent != nil }

// Campaign is one fault-injection run's accounting. Skipped points are
// reported explicitly: a budget- or deadline-bounded campaign degrades
// gracefully, never silently.
type Campaign struct {
	Target    string `json:"target"`
	Fixed     bool   `json:"fixed"`
	Strategy  string `json:"strategy"`
	// Enumerated is the number of crash points the strategy produced.
	Enumerated int `json:"enumerated"`
	Tested     int `json:"tested"`
	Failed     int `json:"failed"`
	// SkippedBudget counts enumerated points dropped by sampling.
	SkippedBudget int `json:"skipped_budget"`
	// SkippedDeadline counts sampled points abandoned at the deadline.
	SkippedDeadline int `json:"skipped_deadline"`
	// ElapsedMS is wall-clock accounting for interactive display only. It is
	// excluded from JSON so campaign documents stay byte-identical across
	// runs (the side-band invariant: wall-clock values live in metrics
	// snapshots and progress samples, never in result documents).
	ElapsedMS int64         `json:"-"`
	Points    []PointResult `json:"points,omitempty"`
}

// Failures returns the failing points.
func (c *Campaign) Failures() []PointResult {
	var out []PointResult
	for _, p := range c.Points {
		if p.Failed() {
			out = append(out, p)
		}
	}
	return out
}

// Target is the low-level campaign input: a recorded journal plus
// validation and recovery hooks. Prep.Target builds one from a registered
// application; tests hand-craft Targets to drive the harness against
// synthetic (panicking, livelocking) recovery code.
type Target struct {
	Name  string
	Fixed bool
	// PoolSize is the recorded device's size.
	PoolSize uint64
	// Ops is the device-op journal of the recorded execution.
	Ops []pmem.Op
	// MinPos is the first eligible crash position: points before the
	// application finished initializing are skipped (a crash there is a
	// re-initialization, not a recovery, and no structural invariant holds
	// yet).
	MinPos int
	// Quiescent reports whether no application operation is in flight at a
	// position; nil treats every position as quiescent.
	Quiescent func(pos int) bool
	// PointCheck validates invariants that hold at every serialization
	// point (apps.CrashPointValidator); it receives the rebooted image.
	PointCheck func(img *pmem.Pool) []string
	// QuiescentCheck is the full validation (apps.CrashValidator),
	// applied only at quiescent points; it receives the LIVE replayed
	// device, whose volatile view is the pre-crash state and whose
	// persistent view is the crash image, so it can detect silent data
	// loss and resurrected deletes by comparing the views.
	QuiescentCheck func(live *pmem.Pool) []string
	// Recover drives the application's recovery path against the rebooted
	// image. It may return a detected-corruption error, panic, or
	// livelock; the campaign contains all three.
	Recover func(img *pmem.Pool, cfg Config) error
	// TargetedEventSpans are the unpersisted windows (trace-event
	// coordinate half-open intervals) the Targeted strategy crashes
	// inside. nil marks the strategy unsupported for this target; an empty
	// non-nil slice means no windows, enumerating zero points.
	TargetedEventSpans [][2]int
}

// enumerate lists the strategy's crash positions in ascending order.
func enumerate(t *Target, s Strategy) ([]int, error) {
	min := t.MinPos
	if min < 1 {
		min = 1
	}
	var pts []int
	add := func(p int, want bool) {
		if want {
			pts = append(pts, p)
		}
	}
	switch s {
	case AfterFence, AfterFlush, AfterStore:
		for p := min; p <= len(t.Ops); p++ {
			switch k := t.Ops[p-1].Kind; s {
			case AfterFence:
				add(p, k == pmem.OpFence)
			case AfterFlush:
				add(p, k == pmem.OpFlush)
			case AfterStore:
				add(p, k == pmem.OpStore || k == pmem.OpNTStore)
			}
		}
	case Targeted:
		if t.TargetedEventSpans == nil {
			return nil, fmt.Errorf("crashinject: target %q does not support the targeted strategy (no analysis windows)", t.Name)
		}
		spans := mergeSpans(t.TargetedEventSpans)
		for p := min; p <= len(t.Ops); p++ {
			seq := t.Ops[p-1].Seq
			add(p, seq >= 0 && inSpans(spans, seq))
		}
	default:
		return nil, fmt.Errorf("crashinject: unknown strategy %d", s)
	}
	return pts, nil
}

// mergeSpans sorts and coalesces half-open intervals.
func mergeSpans(in [][2]int) [][2]int {
	if len(in) == 0 {
		return nil
	}
	spans := make([][2]int, len(in))
	copy(spans, in)
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	out := spans[:1]
	for _, s := range spans[1:] {
		if s[0] <= out[len(out)-1][1] {
			if s[1] > out[len(out)-1][1] {
				out[len(out)-1][1] = s[1]
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// inSpans reports whether x lies in one of the merged, sorted intervals.
func inSpans(spans [][2]int, x int) bool {
	i := sort.Search(len(spans), func(i int) bool { return spans[i][1] > x })
	return i < len(spans) && spans[i][0] <= x
}

// samplePoints applies the budget: quiescent points first (only they get
// full validation, so they carry the most signal per test), then
// non-quiescent fill, both drawn deterministically from seed and returned
// in ascending order.
func samplePoints(t *Target, pts []int, budget int, seed int64) []int {
	if budget <= 0 || len(pts) <= budget {
		return pts
	}
	quiescent := func(p int) bool { return t.Quiescent == nil || t.Quiescent(p) }
	var q, rest []int
	for _, p := range pts {
		if quiescent(p) {
			q = append(q, p)
		} else {
			rest = append(rest, p)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	pick := func(src []int, n int) []int {
		if n >= len(src) {
			return src
		}
		idx := rng.Perm(len(src))[:n]
		sort.Ints(idx)
		out := make([]int, n)
		for i, j := range idx {
			out[i] = src[j]
		}
		return out
	}
	sel := pick(q, budget)
	if len(sel) < budget {
		sel = append(sel, pick(rest, budget-len(sel))...)
	}
	sort.Ints(sel)
	return sel
}

// RunCampaign executes the fault-injection campaign against a target. The
// whole campaign costs one linear journal replay: points are visited in
// ascending order and the device is advanced incrementally.
func RunCampaign(t *Target, cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	pts, err := enumerate(t, cfg.Strategy)
	if err != nil {
		return nil, err
	}
	camp := &Campaign{
		Target: t.Name, Fixed: t.Fixed, Strategy: cfg.Strategy.String(),
		Enumerated: len(pts),
	}
	sel := samplePoints(t, pts, cfg.Budget, cfg.Seed)
	camp.SkippedBudget = len(pts) - len(sel)
	cfg.Metrics.Counter("crashinject.points.enumerated").Add(uint64(len(pts)))
	cfg.Metrics.Counter("crashinject.points.skipped_budget").Add(uint64(camp.SkippedBudget))
	mTested := cfg.Metrics.Counter("crashinject.points.tested")
	mFailed := cfg.Metrics.Counter("crashinject.points.failed")
	mPoint := cfg.Metrics.Histogram("crashinject.point")
	progress := func(done bool) Progress {
		elapsed := time.Since(start)
		p := Progress{
			Target: t.Name, Strategy: camp.Strategy,
			Tested: camp.Tested, Selected: len(sel), Failed: camp.Failed,
			SkippedBudget: camp.SkippedBudget,
			Elapsed:       elapsed, Done: done,
		}
		if elapsed > 0 && camp.Tested > 0 {
			p.PointsPerSec = float64(camp.Tested) / elapsed.Seconds()
			if remaining := len(sel) - camp.Tested; remaining > 0 && !done {
				p.ETA = time.Duration(float64(remaining) / p.PointsPerSec * float64(time.Second))
			}
		}
		return p
	}
	lastProgress := start

	var deadline time.Time
	if cfg.Deadline > 0 {
		deadline = start.Add(cfg.Deadline)
	}
	rep := pmem.NewReplayer(t.PoolSize)
	var scratch *pmem.Pool
	for i, pos := range sel {
		if !deadline.IsZero() && time.Now().After(deadline) {
			camp.SkippedDeadline = len(sel) - i
			break
		}
		rep.AdvanceTo(t.Ops, pos)
		pr := PointResult{
			Pos: pos, Seq: t.Ops[pos-1].Seq, Op: t.Ops[pos-1].Kind.String(),
			Quiescent: t.Quiescent == nil || t.Quiescent(pos),
		}
		stopPoint := mPoint.Time()
		pr.Inconsistent, scratch = testPoint(t, cfg, rep.Pool(), pr.Quiescent, scratch)
		stopPoint()
		mTested.Inc()
		if pr.Failed() {
			camp.Failed++
			mFailed.Inc()
		}
		tallyVerdict(cfg.Metrics, pr.Inconsistent)
		camp.Points = append(camp.Points, pr)
		camp.Tested++
		if cfg.OnProgress != nil && time.Since(lastProgress) >= cfg.ProgressEvery {
			lastProgress = time.Now()
			cfg.OnProgress(progress(false))
		}
	}
	cfg.Metrics.Counter("crashinject.points.skipped_deadline").Add(uint64(camp.SkippedDeadline))
	cfg.Metrics.Counter("crashinject.ops_replayed").Add(uint64(rep.Pos()))
	camp.ElapsedMS = time.Since(start).Milliseconds()
	if cfg.OnProgress != nil {
		cfg.OnProgress(progress(true))
	}
	return camp, nil
}

// tallyVerdict counts one point's outcome into the verdict counters.
func tallyVerdict(m *obs.Registry, v *VerdictInconsistent) {
	if m == nil {
		return
	}
	switch {
	case v == nil:
		m.Counter("crashinject.verdict.consistent").Inc()
	case v.Hung:
		m.Counter("crashinject.verdict.hung").Inc()
	case v.Panic != "":
		m.Counter("crashinject.verdict.panics").Inc()
	case v.RecoveryErr != "":
		m.Counter("crashinject.verdict.recovery_errors").Inc()
	default:
		m.Counter("crashinject.verdict.violations").Inc()
	}
}

// dedupe keeps the first occurrence of each string, preserving order.
func dedupe(in []string) []string {
	if len(in) < 2 {
		return in
	}
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// errProbePanic tags a recovery-probe panic that escaped the scheduler
// (e.g. while constructing the recovery runtime).
var errProbePanic = errors.New("recovery probe panicked")

// testPoint tests one crash point: reboot the image, run the always-safe
// checks, the full quiescent checks when sound, and the guarded recovery
// probe. It returns the verdict (nil = consistent) and the scratch pool to
// reuse for the next point's reboot (nil when the probe may still be
// running after a timeout and the buffers cannot be reused safely).
func testPoint(t *Target, cfg Config, live *pmem.Pool, quiescent bool, scratch *pmem.Pool) (verdict *VerdictInconsistent, outScratch *pmem.Pool) {
	img := live.RebootClone(scratch)
	outScratch = img

	v := &VerdictInconsistent{}
	// Validators walk untrusted persistent images; a panic there is itself
	// an inconsistency, not a campaign abort.
	func() {
		defer func() {
			if r := recover(); r != nil {
				v.Panic = fmt.Sprintf("validator: %v", r)
			}
		}()
		if t.PointCheck != nil {
			v.Violations = append(v.Violations, t.PointCheck(img)...)
		}
		if quiescent && t.QuiescentCheck != nil {
			v.Violations = append(v.Violations, t.QuiescentCheck(live)...)
		}
		// The full validator typically subsumes the always-safe walk, so
		// the two passes repeat findings; keep each violation once.
		v.Violations = dedupe(v.Violations)
	}()

	if t.Recover != nil && v.Panic == "" {
		done := make(chan error, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					done <- fmt.Errorf("%w: %v", errProbePanic, r)
				}
			}()
			done <- t.Recover(img, cfg)
		}()
		select {
		case err := <-done:
			switch {
			case err == nil:
			case errors.Is(err, sched.ErrAppPanic) || errors.Is(err, errProbePanic):
				v.Panic = err.Error()
			case errors.Is(err, sched.ErrStepBound) || errors.Is(err, sched.ErrDeadlock):
				v.Hung = true
			default:
				v.RecoveryErr = err.Error()
			}
		case <-time.After(cfg.PointTimeout):
			v.Hung = true
			// The probe goroutine may still be mutating img; abandon the
			// buffers rather than reuse them.
			outScratch = nil
		}
	}

	if len(v.Violations) > 0 || v.RecoveryErr != "" || v.Panic != "" || v.Hung {
		verdict = v
	}
	return verdict, outScratch
}
