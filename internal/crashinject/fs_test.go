package crashinject

import (
	"encoding/binary"
	"reflect"
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/apps/madfs"
	"hawkset/internal/pmem"
)

func fsEntry(t *testing.T) *apps.Entry {
	t.Helper()
	e, err := apps.Lookup("MadFS-POSIX")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFSFourStrategySweep is the filesystem acceptance sweep: under every
// injection strategy the buggy variant yields at least one failing crash
// point (the rename and append protocol bugs corrupt reachable images) and
// the fixed variant yields none.
func TestFSFourStrategySweep(t *testing.T) {
	e := fsEntry(t)
	for _, fixed := range []bool{false, true} {
		p, err := Prepare(e, 600, 42, fixed)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Strategy{AfterFence, AfterFlush, AfterStore, Targeted} {
			camp, err := RunCampaign(p.Target(0), Config{Strategy: s, Budget: 24, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("fixed=%v strategy=%v: %d/%d failing of %d enumerated",
				fixed, s, camp.Failed, camp.Tested, camp.Enumerated)
			if fixed && camp.Failed != 0 {
				t.Fatalf("fixed variant failed %d crash points under %v:\n%v",
					camp.Failed, s, camp.Failures())
			}
			if !fixed && camp.Failed == 0 {
				t.Fatalf("buggy variant survived every crash point under %v (%d tested)",
					s, camp.Tested)
			}
		}
	}
}

// TestFSDifferential: both seeded filesystem bugs produce failing crash
// points in targeted buggy campaigns, and the fixed protocols survive the
// full targeted sweep.
func TestFSDifferential(t *testing.T) {
	e := fsEntry(t)
	d, err := Differential(e, 600, 42, Config{Budget: 24, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if ok, problems := d.Holds(); !ok {
		t.Fatalf("filesystem differential does not hold: %v\nbuggy: %+v\nfixed failures: %v",
			problems, d.Buggy, d.Fixed.Failures())
	}
	if len(d.Buggy) != 2 {
		t.Fatalf("differential covered %d bugs, want 2 (#21 rename, #22 append)", len(d.Buggy))
	}
	for _, b := range d.Buggy {
		t.Logf("bug #%d: %d/%d failing of %d enumerated", b.ID, b.Failed, b.Tested, b.Enumerated)
	}
}

// TestFSCampaignDeterministic: same prep, same config ⇒ identical campaign
// results, point for point (ElapsedMS is wall-clock and excluded).
func TestFSCampaignDeterministic(t *testing.T) {
	e := fsEntry(t)
	p, err := Prepare(e, 400, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Campaign {
		c, err := RunCampaign(p.Target(0), Config{Strategy: AfterStore, Budget: 16, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		c.ElapsedMS = 0
		return c
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different filesystem campaigns:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFSTornSuperblockContained hand-crafts a torn filesystem image: a
// persisted store aims the superblock's directory-region pointer at an
// address whose region check overflows, so the recovery walk faults inside
// the pool. The harness must contain the fault as a panic verdict (the
// scheduler's app-panic sentinel), keep going, and pass the repaired point.
func TestFSTornSuperblockContained(t *testing.T) {
	e := fsEntry(t)
	p, err := Prepare(e, 200, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	super := p.App.(*madfs.PFS).Super()
	dirPtr := super + 8 // superblock word 1: the directory region base
	good := p.Runtime.Pool.ReadPersistent8(dirPtr)
	bogus := ^uint64(0) - 32 // base + region size wraps past the bound check

	tg := p.Target(0)
	// Only the recovery path is under test: the appended positions lie
	// beyond the recorded spans and the validators would mask the fault.
	tg.PointCheck, tg.QuiescentCheck = nil, nil
	tg.Quiescent = nil
	n := len(tg.Ops)
	le := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, v)
		return b
	}
	tg.Ops = append(tg.Ops,
		pmem.Op{Kind: pmem.OpStore, Addr: dirPtr, Size: 8, Data: le(bogus), Seq: -1},
		pmem.Op{Kind: pmem.OpFlush, Addr: dirPtr, Seq: -1},
		pmem.Op{Kind: pmem.OpFence, Seq: -1},
		pmem.Op{Kind: pmem.OpStore, Addr: dirPtr, Size: 8, Data: le(good), Seq: -1},
		pmem.Op{Kind: pmem.OpFlush, Addr: dirPtr, Seq: -1},
		pmem.Op{Kind: pmem.OpFence, Seq: -1},
	)
	tg.MinPos = n + 1

	camp, err := RunCampaign(tg, Config{Strategy: AfterFence, Budget: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Tested != 2 {
		t.Fatalf("tested %d points, want 2 (torn + repaired)", camp.Tested)
	}
	torn, repaired := camp.Points[0], camp.Points[1]
	if torn.Inconsistent == nil || torn.Inconsistent.Panic == "" {
		t.Fatalf("torn image: want contained panic verdict, got %+v", torn.Inconsistent)
	}
	if repaired.Inconsistent != nil {
		t.Fatalf("repaired image: want consistent, got %+v", repaired.Inconsistent)
	}
}

// TestFSRecoveryStepBound: a step budget far below what the mount walk needs
// converts every recovery into a deterministic hung verdict — the campaign
// itself never hangs and finishes all its points.
func TestFSRecoveryStepBound(t *testing.T) {
	e := fsEntry(t)
	p, err := Prepare(e, 200, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := RunCampaign(p.Target(0), Config{
		Strategy: AfterFence, Budget: 2, Seed: 1, RecoverySteps: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Tested != 2 {
		t.Fatalf("tested %d points, want 2", camp.Tested)
	}
	for _, pt := range camp.Points {
		if pt.Inconsistent == nil || !pt.Inconsistent.Hung {
			t.Fatalf("point %d: want hung verdict under the step bound, got %+v",
				pt.Pos, pt.Inconsistent)
		}
	}
}
