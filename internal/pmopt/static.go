package pmopt

// Static redundancy passes over the shared IR (internal/pmlint/cfgir): the
// inverse of pmlint's persistence checks. Where pmlint proves a store is
// never persisted, these passes prove a flush or fence is never *needed* —
// on every CFG path, at the same all-paths strength, with the opposite
// conservative direction: pmlint under-reports misuse, pmopt under-claims
// redundancy. Anything uncertain (aliasing, cycles, unresolved callees,
// function entry) defeats the claim.
//
// The claims are line-granular: two address expressions with the same
// normalized base (`it+offVal` and `it+offCAS` both normalize to `it`) are
// treated as the same cache line, which is only true when the object fits a
// line. That imprecision is deliberate — every static claim is cross-checked
// against the byte-precise dynamic journal before it is trusted (the tier
// system), so a too-coarse claim surfaces as `refuted`, never as a wrong
// elimination.

import (
	"fmt"

	"hawkset/internal/pmlint/cfgir"
)

// staticSite aggregates the static view of one source site (file:line) that
// issues flushes and/or fences.
type staticSite struct {
	Fn string // enclosing function name
	Op string // "flush", "fence" or "persist"
	// Claims, conjoined over every CFG node at the site (a deferred op
	// replays at several nodes; all must agree):
	Dup     bool // (a) duplicate-flush: same-base flush earlier on all paths
	Empty   bool // (b) empty-fence: no pending flush reaches this fence
	AfterNT bool // (c) flush-after-nt-store: the flushed data went through NT stores
	nodes   int
}

// Claim reports whether any redundancy claim survived all nodes.
func (s *staticSite) Claim() bool { return s.Dup || s.Empty || s.AfterNT }

// Kind returns the claim's candidate kind, strongest first.
func (s *staticSite) Kind() string {
	switch {
	case s.Dup:
		return "duplicate-flush"
	case s.Empty:
		return "empty-fence"
	case s.AfterNT:
		return "flush-after-nt-store"
	}
	return ""
}

// analyzeStatic runs the three passes over every function of the IR and
// returns per-site verdicts keyed by module-relative "file.go:line".
func analyzeStatic(ir *cfgir.IR) map[string]*staticSite {
	sum := newSummaries(ir)
	out := make(map[string]*staticSite)
	for _, fi := range ir.Funcs {
		if fi.CFG == nil {
			continue
		}
		preds := fi.CFG.Preds()
		for _, n := range fi.CFG.Nodes {
			if n.Op == nil {
				continue
			}
			var op string
			switch n.Op.Kind {
			case cfgir.OpFlush:
				op = "flush"
			case cfgir.OpFence:
				op = "fence"
			case cfgir.OpPersist:
				op = "persist"
			default:
				continue
			}
			file, line, _ := ir.PosOf(n.Op.Pos)
			key := fmt.Sprintf("%s:%d", file, line)
			s := out[key]
			if s == nil {
				s = &staticSite{Fn: fi.Name, Op: op, Dup: true, Empty: true, AfterNT: true}
				out[key] = s
			}
			s.nodes++
			// Conjoin this node's verdicts into the site's.
			if op == "fence" {
				s.Dup, s.AfterNT = false, false
				s.Empty = s.Empty && emptyBack(fi, preds, n, sum)
				continue
			}
			s.Empty = false
			if n.Op.AddrBase == "" {
				s.Dup, s.AfterNT = false, false
				continue
			}
			s.Dup = s.Dup && coveredBack(fi, preds, n, sum)
			// Pass (c) applies to standalone flushes only: eliding the flush
			// half of a Persist while keeping its fence is not expressible.
			s.AfterNT = s.AfterNT && op == "flush" && ntBack(fi, preds, n, sum)
		}
	}
	// Drop the vacuous all-true initialization for sites whose every node
	// fell through without evaluation (cannot happen — every node evaluates
	// at least one pass — but keep the invariant explicit).
	for key, s := range out {
		if s.nodes == 0 {
			delete(out, key)
		}
	}
	return out
}

// summaries holds the transitive call-graph facts the backward walks need.
type summaries struct {
	// writesPM: the callee (or anything it calls) performs a PM store of any
	// kind — it may dirty the candidate's line, so it kills coverage claims.
	writesPM map[*cfgir.FuncInfo]bool
	// mayPend: the callee may add pending flush entries (flush, NT store,
	// persist anywhere below it) — it kills empty-fence claims.
	mayPend map[*cfgir.FuncInfo]bool
}

func newSummaries(ir *cfgir.IR) *summaries {
	s := &summaries{
		writesPM: make(map[*cfgir.FuncInfo]bool),
		mayPend:  make(map[*cfgir.FuncInfo]bool),
	}
	for _, fi := range ir.Funcs {
		s.computeWrites(fi, make(map[*cfgir.FuncInfo]bool))
		s.computePends(fi, make(map[*cfgir.FuncInfo]bool))
	}
	return s
}

func (s *summaries) computeWrites(fi *cfgir.FuncInfo, walking map[*cfgir.FuncInfo]bool) bool {
	if v, ok := s.writesPM[fi]; ok {
		return v
	}
	if walking[fi] {
		return true // recursion: assume the worst, do not memoize mid-cycle
	}
	walking[fi] = true
	defer delete(walking, fi)
	v := false
	if fi.CFG != nil {
		for _, n := range fi.CFG.Nodes {
			if n.Op == nil {
				continue
			}
			if cfgir.IsStoreKind(n.Op.Kind) {
				v = true
				break
			}
			if n.Op.Kind == cfgir.OpCallFn {
				if n.Op.Callee == nil || s.computeWrites(n.Op.Callee, walking) {
					v = true
					break
				}
			}
		}
	}
	s.writesPM[fi] = v
	return v
}

func (s *summaries) computePends(fi *cfgir.FuncInfo, walking map[*cfgir.FuncInfo]bool) bool {
	if v, ok := s.mayPend[fi]; ok {
		return v
	}
	if walking[fi] {
		return true
	}
	walking[fi] = true
	defer delete(walking, fi)
	v := false
	if fi.CFG != nil {
		for _, n := range fi.CFG.Nodes {
			if n.Op == nil {
				continue
			}
			switch n.Op.Kind {
			case cfgir.OpFlush, cfgir.OpNTStore, cfgir.OpPersist:
				v = true
			case cfgir.OpCallFn:
				v = n.Op.Callee == nil || s.computePends(n.Op.Callee, walking)
			}
			if v {
				break
			}
		}
	}
	s.mayPend[fi] = v
	return v
}

// Backward all-paths walk. class returns >0 when the node satisfies the
// property (the path is good from here), <0 when it defeats it, 0 when
// neutral. Function entry defeats; cycles defeat (conservative); an
// unreachable candidate claims nothing.
func backAll(fi *cfgir.FuncInfo, preds [][]*cfgir.Node, from *cfgir.Node, class func(*cfgir.Node) int) bool {
	const (
		unvisited = iota
		inProgress
		safe
		unsafe
	)
	state := make([]uint8, len(fi.CFG.Nodes))
	var walk func(n *cfgir.Node) bool
	walk = func(n *cfgir.Node) bool {
		switch c := class(n); {
		case c > 0:
			return true
		case c < 0:
			return false
		}
		if n == fi.CFG.Entry {
			return false
		}
		switch state[n.Idx] {
		case safe:
			return true
		case unsafe, inProgress:
			return false
		}
		state[n.Idx] = inProgress
		ok := true
		for _, p := range preds[n.Idx] {
			if !walk(p) {
				ok = false
				break
			}
		}
		if ok {
			state[n.Idx] = safe
		} else {
			state[n.Idx] = unsafe
		}
		return ok
	}
	ps := preds[from.Idx]
	if len(ps) == 0 {
		return false
	}
	for _, p := range ps {
		if !walk(p) {
			return false
		}
	}
	return true
}

// matchesBase reports whether op's address (base or helper-call argument
// bases) covers base.
func matchesBase(op *cfgir.OpCall, base string) bool {
	if op.AddrBase == base {
		return true
	}
	for _, a := range op.AddrAlts {
		if a == base {
			return true
		}
	}
	return false
}

// coveredBack implements pass (a): every backward path from n reaches a
// same-base flush/persist before any PM store (of any base — no aliasing
// reasoning, maximally conservative) or PM-writing call.
func coveredBack(fi *cfgir.FuncInfo, preds [][]*cfgir.Node, n *cfgir.Node, sum *summaries) bool {
	base := n.Op.AddrBase
	return backAll(fi, preds, n, func(m *cfgir.Node) int {
		if m.Op == nil {
			return 0
		}
		switch m.Op.Kind {
		case cfgir.OpFlush, cfgir.OpPersist:
			if matchesBase(m.Op, base) {
				return 1
			}
			return 0
		case cfgir.OpCallFn:
			if m.Op.Callee == nil || sum.writesPM[m.Op.Callee] {
				return -1
			}
			return 0
		}
		if cfgir.IsStoreKind(m.Op.Kind) {
			return -1
		}
		return 0
	})
}

// emptyBack implements pass (b): every backward path from the fence reaches
// a pending-clearing op (fence, or persist — which ends in a fence) before
// anything that adds pending entries (flush, NT store, or a call that may).
func emptyBack(fi *cfgir.FuncInfo, preds [][]*cfgir.Node, n *cfgir.Node, sum *summaries) bool {
	return backAll(fi, preds, n, func(m *cfgir.Node) int {
		if m.Op == nil {
			return 0
		}
		switch m.Op.Kind {
		case cfgir.OpFence, cfgir.OpPersist:
			return 1
		case cfgir.OpFlush, cfgir.OpNTStore:
			return -1
		case cfgir.OpCallFn:
			if m.Op.Callee == nil || sum.mayPend[m.Op.Callee] {
				return -1
			}
		}
		return 0
	})
}

// ntBack implements pass (c): on every backward path, the nearest PM store
// is a same-base NT store — the flushed line's fresh data bypassed the
// cache, so only the fence was required.
func ntBack(fi *cfgir.FuncInfo, preds [][]*cfgir.Node, n *cfgir.Node, sum *summaries) bool {
	base := n.Op.AddrBase
	return backAll(fi, preds, n, func(m *cfgir.Node) int {
		if m.Op == nil {
			return 0
		}
		if m.Op.Kind == cfgir.OpNTStore && m.Op.AddrBase == base {
			return 1
		}
		if cfgir.IsStoreKind(m.Op.Kind) {
			return -1
		}
		if m.Op.Kind == cfgir.OpCallFn && (m.Op.Callee == nil || sum.writesPM[m.Op.Callee]) {
			return -1
		}
		return 0
	})
}
