package pmopt_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/crashinject"
	"hawkset/internal/pmem"
	"hawkset/internal/pmopt"
	"hawkset/internal/report"
	"hawkset/internal/sites"

	_ "hawkset/internal/apps/memcachedpm"
	_ "hawkset/internal/apps/part"
	_ "hawkset/internal/apps/pmasstree"
)

func findApp(t *testing.T, name string) *apps.Entry {
	t.Helper()
	for _, e := range apps.All() {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("app %s not registered", name)
	return nil
}

func analyze(t *testing.T, name string, opCount int, seed int64) *pmopt.Result {
	t.Helper()
	res, err := pmopt.AnalyzeApp(".", findApp(t, name), opCount, seed)
	if err != nil {
		t.Fatalf("AnalyzeApp(%s): %v", name, err)
	}
	for _, c := range res.Doc.Candidates {
		t.Logf("%s: [%s] %s %s %s (%d/%d) elim=%v refuted=%v %s",
			name, c.Tier, c.Op, c.Site, c.Kind, c.Redundant, c.Occurrences, c.Eliminable, c.Refuted, c.Detail)
	}
	return res
}

// topTier returns the candidates of the strongest confidence tier.
func topTier(res *pmopt.Result) []report.OptCandidate {
	var out []report.OptCandidate
	for _, c := range res.Doc.Candidates {
		if c.Tier == report.TierStaticDynamic {
			out = append(out, c)
		}
	}
	return out
}

// TestAnalyzePart pins the P-ART anchor: addChild over-persists the header
// line after already persisting it for the key array, so at least one of its
// persist sites must surface as a static+dynamic eliminable candidate.
func TestAnalyzePart(t *testing.T) {
	res := analyze(t, "P-ART", 400, 1)
	top := topTier(res)
	if len(top) == 0 {
		t.Fatal("part: no static+dynamic candidate")
	}
	found := false
	for _, c := range top {
		if strings.HasPrefix(c.Site, "internal/apps/part/part.go:") && c.Eliminable && c.StaticClaim {
			found = true
		}
	}
	if !found {
		t.Error("part: no eliminable static+dynamic candidate in part.go")
	}
	if len(res.Eliminable) == 0 {
		t.Error("part: Eliminable set empty despite top-tier candidates")
	}
	if res.Doc.Stats.Flushes == 0 || res.Doc.Stats.Fences == 0 {
		t.Errorf("part: journal stats empty: %+v", res.Doc.Stats)
	}
}

// TestAnalyzePMasstree pins the Masstree anchor: removeEntry persists the
// entry array (whose first line holds the count word) and then persists the
// count separately — the second persist's flush and fence are fully
// redundant on every path and every occurrence.
func TestAnalyzePMasstree(t *testing.T) {
	res := analyze(t, "P-Masstree", 400, 1)
	found := false
	for _, c := range topTier(res) {
		if strings.HasPrefix(c.Site, "internal/apps/pmasstree/pmasstree.go:") && c.Eliminable {
			found = true
		}
	}
	if !found {
		t.Error("pmasstree: no eliminable static+dynamic candidate")
	}
}

// TestRefutedTierExists checks the tier machinery on memcached: its CAS path
// persists the value line and then the (same-line) CAS counter; whether the
// second persist survives depends on item layout, so the analyzer must
// classify it as static+dynamic (confirmed) or static-only refuted — never
// silently drop the static claim.
func TestMemcachedClaims(t *testing.T) {
	res := analyze(t, "Memcached-pmem", 400, 1)
	if len(res.Doc.Candidates) == 0 {
		t.Fatal("memcached: no candidates at all")
	}
	var claimed int
	for _, c := range res.Doc.Candidates {
		if c.StaticClaim {
			claimed++
		}
	}
	if claimed == 0 {
		t.Error("memcached: no static claim on any site")
	}
}

// TestAnalyzeDeterminism: same inputs, byte-identical document.
func TestAnalyzeDeterminism(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		res, err := pmopt.AnalyzeApp(".", findApp(t, "P-ART"), 200, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Doc.WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Error("two identical analyses produced different JSON")
	}
}

// TestApplyGates runs the full elimination pipeline on the Masstree anchor
// and requires every safety gate to hold with a real device-op reduction.
func TestApplyGates(t *testing.T) {
	e := findApp(t, "P-Masstree")
	res := analyze(t, "P-Masstree", 300, 3)
	if len(res.Eliminable) == 0 {
		t.Fatal("no eliminable sites to apply")
	}
	ar, err := pmopt.Apply(e, 300, 3, res.Eliminable, crashinject.Config{Seed: 3, Budget: 24})
	if err != nil {
		t.Fatal(err)
	}
	if !ar.OK() {
		t.Fatalf("apply gates failed: %v", ar.Problems)
	}
	if ar.FlushReduction()+ar.FenceReduction() == 0 {
		t.Error("apply eliminated no device ops")
	}
	if !ar.RacesIdentical || !ar.JournalAligned {
		t.Errorf("gate flags: races=%v aligned=%v", ar.RacesIdentical, ar.JournalAligned)
	}
	if ar.SweepTested == 0 {
		t.Error("sweep tested no crash points")
	}
	if ar.SweepFailed != 0 {
		t.Errorf("sweep reported %d failing points", ar.SweepFailed)
	}
	t.Logf("apply: flushes %d→%d, fences %d→%d, elided %d, sweep %d tested",
		ar.BaselineFlushes, ar.OptFlushes, ar.BaselineFences, ar.OptFences, ar.ElidedOps, ar.SweepTested)
}

// TestApplyRejectsNonRedundantSite: eliding a site that does real work must
// trip the gates, not pass silently.
func TestApplyRejectsNonRedundantSite(t *testing.T) {
	e := findApp(t, "P-Masstree")
	res := analyze(t, "P-Masstree", 200, 5)
	// Victim: the busiest flush site that is NOT a candidate — it does real
	// persistence work on at least some occurrence, so eliding it must fail
	// a gate. Selected from the recorded journal itself (deterministically:
	// highest count, site key as tie-break).
	cand := make(map[string]bool)
	for _, c := range res.Doc.Candidates {
		cand[c.Site] = true
	}
	rt := res.Prep.Runtime
	counts := make(map[string]int)
	for i, op := range rt.Ops {
		if op.Kind != pmem.OpFlush {
			continue
		}
		fr := rt.Trace.Sites.Lookup(rt.OpSites[i])
		if fr.File == "" {
			continue
		}
		key := fmt.Sprintf("%s:%d", sites.ModuleRel(fr.File), fr.Line)
		if !cand[key] {
			counts[key]++
		}
	}
	var victim string
	for k, n := range counts {
		if victim == "" || n > counts[victim] || (n == counts[victim] && k < victim) {
			victim = k
		}
	}
	if victim == "" {
		t.Fatal("journal has no non-candidate flush site")
	}
	ar, err := pmopt.Apply(e, 200, 5, []string{victim}, crashinject.Config{Seed: 5, Budget: 16})
	if err != nil {
		t.Fatal(err)
	}
	if ar.OK() {
		t.Fatalf("eliding non-redundant site %s passed all gates", victim)
	}
	t.Logf("gate correctly rejected %s: %v", victim, ar.Problems)
}
