package pmopt

// Apply: elide a candidate site set and prove it safe. The elision itself
// is pmrt's yield-preserving ElideSites hook (scheduling unchanged, device
// ops suppressed); safety is established by four independent gates over the
// re-recorded execution:
//
//  1. the HawkSet race report must be byte-identical — eliminating
//     redundant persistence work must not create, destroy or move any
//     unpersisted-window race;
//  2. a full crash-injection sweep (every strategy) over the elided journal
//     must report zero failing crash points;
//  3. the device-op counters must actually drop — an "optimization" that
//     removes nothing is reported as a failure, not silently accepted;
//  4. a journal-aligned image differential: because elision is
//     yield-preserving, the elided journal must equal the baseline journal
//     minus the elided sites' ops in identical order, and the persistent
//     image must agree at every aligned position — i.e. a crash anywhere
//     yields the same recoverable image with or without the elision.
//
// Gate 4 subsumes most of gate 2 in theory (same images → same recovery
// verdicts), but the sweep exercises the real recovery code against the
// elided journal's own coordinates, so both are kept.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"hawkset/internal/apps"
	"hawkset/internal/crashinject"
	"hawkset/internal/obs"
	"hawkset/internal/pmem"
	"hawkset/internal/report"
	"hawkset/internal/sites"
)

// ApplyResult records the before/after measurement and every gate verdict.
type ApplyResult struct {
	App   string   `json:"app"`
	Sites []string `json:"sites"`
	// Device-op counts from the obs registries of the two recordings.
	BaselineFlushes uint64 `json:"baseline_flushes"`
	BaselineFences  uint64 `json:"baseline_fences"`
	OptFlushes      uint64 `json:"opt_flushes"`
	OptFences       uint64 `json:"opt_fences"`
	ElidedOps       uint64 `json:"elided_ops"`
	// Gate verdicts.
	RacesIdentical bool `json:"races_identical"`
	SweepTested    int  `json:"sweep_tested"`
	SweepFailed    int  `json:"sweep_failed"`
	JournalAligned bool `json:"journal_aligned"`
	// Problems lists every violated gate; empty means the elimination is
	// accepted.
	Problems []string `json:"problems,omitempty"`
}

// OK reports whether every safety gate held.
func (r *ApplyResult) OK() bool { return len(r.Problems) == 0 }

// FlushReduction returns eliminated flush ops.
func (r *ApplyResult) FlushReduction() uint64 { return r.BaselineFlushes - r.OptFlushes }

// FenceReduction returns eliminated fence ops.
func (r *ApplyResult) FenceReduction() uint64 { return r.BaselineFences - r.OptFences }

// Apply re-records the application's fixed variant with the given sites
// elided and runs the safety gates. siteKeys must be module-relative
// "file.go:line" keys (AnalyzeApp's Eliminable set). sweep configures the
// crash-injection campaigns (Strategy is overridden; Budget/Deadline/Seed
// are honored).
func Apply(e *apps.Entry, opCount int, seed int64, siteKeys []string, sweep crashinject.Config) (*ApplyResult, error) {
	if len(siteKeys) == 0 {
		return nil, fmt.Errorf("pmopt: no sites to apply for %s", e.Name)
	}
	elide := make(map[string]bool, len(siteKeys))
	for _, k := range siteKeys {
		elide[k] = true
	}

	regBase, regOpt := obs.NewRegistry(), obs.NewRegistry()
	base, err := crashinject.PrepareWith(e, opCount, seed, true, crashinject.PrepOptions{Metrics: regBase})
	if err != nil {
		return nil, err
	}
	opt, err := crashinject.PrepareWith(e, opCount, seed, true, crashinject.PrepOptions{Metrics: regOpt, ElideSites: elide})
	if err != nil {
		return nil, err
	}

	sb, so := regBase.Snapshot(), regOpt.Snapshot()
	res := &ApplyResult{
		App: e.Name, Sites: siteKeys,
		BaselineFlushes: sb.Counter("device_flush"),
		BaselineFences:  sb.Counter("device_fence"),
		OptFlushes:      so.Counter("device_flush"),
		OptFences:       so.Counter("device_fence"),
		ElidedOps:       so.Counter("pmrt.elided"),
	}

	// Gate 3: the elimination must remove real device work.
	if res.OptFlushes+res.OptFences >= res.BaselineFlushes+res.BaselineFences {
		res.Problems = append(res.Problems, fmt.Sprintf(
			"no device-op reduction: %d flushes + %d fences before, %d + %d after",
			res.BaselineFlushes, res.BaselineFences, res.OptFlushes, res.OptFences))
	}

	// Gate 4: journal-aligned persistent-image differential.
	if err := journalDiff(base, opt, elide); err != nil {
		res.Problems = append(res.Problems, err.Error())
	} else {
		res.JournalAligned = true
	}

	// Gate 1: the race report must not move by a byte.
	wl := fmt.Sprintf("%d ops, seed %d, fixed", opCount, seed)
	br, err := json.Marshal(report.New(base.Analysis(), e.Name, wl, nil).Races)
	if err != nil {
		return nil, err
	}
	or, err := json.Marshal(report.New(opt.Analysis(), e.Name, wl, nil).Races)
	if err != nil {
		return nil, err
	}
	if bytes.Equal(br, or) {
		res.RacesIdentical = true
	} else {
		res.Problems = append(res.Problems, "hawkset race report changed under elision")
	}

	// Gate 2: full-strategy crash sweep over the elided journal.
	target := opt.Target(0)
	for _, s := range crashinject.Strategies() {
		cfg := sweep
		cfg.Strategy = s
		camp, err := crashinject.RunCampaign(target, cfg)
		if err != nil {
			return nil, fmt.Errorf("pmopt: %s sweep: %w", s, err)
		}
		res.SweepTested += camp.Tested
		res.SweepFailed += camp.Failed
		if camp.Failed > 0 {
			res.Problems = append(res.Problems, fmt.Sprintf(
				"%s strategy: %d failing crash point(s) after elision", s, camp.Failed))
		}
	}
	return res, nil
}

// shadowDev is a minimal replica of pmem's worst-case device (store →
// volatile, flush → line snapshot pending, fence → commit) that reports,
// per fence, which lines it committed — so the differential compares only
// bytes that could have moved.
type shadowDev struct {
	vol, per []byte
	pending  map[int32][]pendEntry
}

func newShadowDev(size uint64) *shadowDev {
	return &shadowDev{vol: make([]byte, size), per: make([]byte, size), pending: make(map[int32][]pendEntry)}
}

func (s *shadowDev) apply(op pmem.Op) map[uint64]bool {
	switch op.Kind {
	case pmem.OpStore, pmem.OpNTStore:
		data := op.Data
		if data == nil {
			data = make([]byte, op.Size)
		}
		copy(s.vol[op.Addr:], data)
		if op.Kind == pmem.OpNTStore && len(data) > 0 {
			snap := append([]byte(nil), data...)
			s.pending[op.TID] = append(s.pending[op.TID], pendEntry{nt: true, addr: op.Addr, data: snap})
		}
	case pmem.OpFlush:
		base := pmem.LineOf(op.Addr) * pmem.LineSize
		end := base + pmem.LineSize
		if end > uint64(len(s.vol)) {
			end = uint64(len(s.vol))
		}
		snap := append([]byte(nil), s.vol[base:end]...)
		s.pending[op.TID] = append(s.pending[op.TID], pendEntry{addr: base, data: snap})
	case pmem.OpFence:
		batch := s.pending[op.TID]
		delete(s.pending, op.TID)
		if len(batch) == 0 {
			return nil
		}
		touched := make(map[uint64]bool)
		for _, e := range batch {
			copy(s.per[e.addr:], e.data)
			last := pmem.LineOf(pmem.LastByte(e.addr, uint64(len(e.data))))
			for l := pmem.LineOf(e.addr); l <= last; l++ {
				touched[l] = true
			}
		}
		return touched
	}
	return nil
}

// journalDiff verifies the yield-preservation contract between the two
// recordings: the elided journal is exactly the baseline journal minus
// flush/fence ops from elided sites, and at every aligned position the two
// persistent images agree (volatile too — checked once at the end, since
// stores are never elided).
func journalDiff(base, opt *crashinject.Prep, elide map[string]bool) error {
	size := base.Runtime.Pool.Size()
	if s := opt.Runtime.Pool.Size(); s != size {
		return fmt.Errorf("journal differential: pool sizes differ (%d vs %d)", size, s)
	}
	tab := base.Runtime.Trace.Sites
	keyOf := func(i int) string {
		fr := tab.Lookup(base.Runtime.OpSites[i])
		if fr.File == "" {
			return ""
		}
		return fmt.Sprintf("%s:%d", sites.ModuleRel(fr.File), fr.Line)
	}

	bs, os := newShadowDev(size), newShadowDev(size)
	eops := opt.Runtime.Ops
	ei := 0
	for bi, op := range base.Runtime.Ops {
		if (op.Kind == pmem.OpFlush || op.Kind == pmem.OpFence) && elide[keyOf(bi)] {
			// Baseline-only op: apply it to the baseline shadow alone. If it
			// committed anything the images diverge right here.
			if touched := bs.apply(op); touched != nil {
				if err := comparePer(bs, os, touched, bi); err != nil {
					return err
				}
			}
			continue
		}
		if ei >= len(eops) {
			return fmt.Errorf("journal differential: elided journal ends %d op(s) early", len(base.Runtime.Ops)-bi)
		}
		eop := eops[ei]
		if op.Kind != eop.Kind || op.TID != eop.TID || op.Addr != eop.Addr ||
			op.Size != eop.Size || !bytes.Equal(op.Data, eop.Data) {
			return fmt.Errorf("journal differential: op misalignment at baseline %d / elided %d (%s vs %s)",
				bi, ei, op.Kind, eop.Kind)
		}
		t1 := bs.apply(op)
		t2 := os.apply(eop)
		for l := range t2 {
			if t1 == nil {
				t1 = t2
				break
			}
			t1[l] = true
		}
		if t1 != nil {
			if err := comparePer(bs, os, t1, bi); err != nil {
				return err
			}
		}
		ei++
	}
	if ei != len(eops) {
		return fmt.Errorf("journal differential: elided journal has %d unexpected trailing op(s)", len(eops)-ei)
	}
	if !bytesEqual(bs.per, os.per) {
		return fmt.Errorf("journal differential: final persistent images differ")
	}
	if !bytesEqual(bs.vol, os.vol) {
		return fmt.Errorf("journal differential: final volatile images differ")
	}
	return nil
}

// comparePer checks the two shadows' persistent views on the given lines.
func comparePer(a, b *shadowDev, lines map[uint64]bool, pos int) error {
	size := uint64(len(a.per))
	for l := range lines {
		base := l * pmem.LineSize
		end := base + pmem.LineSize
		if end > size {
			end = size
		}
		if !bytesEqual(a.per[base:end], b.per[base:end]) {
			return fmt.Errorf("journal differential: persistent images diverge at line %d (baseline position %d)", l, pos)
		}
	}
	return nil
}
