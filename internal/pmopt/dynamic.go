package pmopt

// Dynamic redundancy analysis over the recorded device-op journal. The
// simulator mirrors pmem's worst-case persistency model (store → volatile,
// flush → whole-line snapshot pending, fence → commit pending in order) and
// asks, at every fence, which committed snapshots actually changed the
// persistent image. A flush whose snapshot is byte-identical to what the
// persistent view already held at commit time did no work; a fence whose
// batch holds only such snapshots from its own site did none either. The
// verdict is per occurrence — a site is eliminable only when every one of
// its journaled ops was a no-op and none of its snapshots was left
// uncommitted at run end.

import (
	"fmt"

	"hawkset/internal/pmem"
	"hawkset/internal/report"
	"hawkset/internal/sites"
)

// siteDyn aggregates the dynamic evidence for one flush/fence site, keyed by
// module-relative "file.go:line".
type siteDyn struct {
	FlushOps int // journaled OpFlush issued from the site
	FenceOps int // journaled OpFence issued from the site
	// ChangelessFlush counts flush ops whose snapshot equalled the
	// persistent content at commit; RedundantFence counts fence ops whose
	// whole batch was own-site and changeless (vacuously: empty).
	ChangelessFlush int
	RedundantFence  int
	EmptyFence      int
	// Uncommitted counts snapshots from this site still pending when the run
	// ended — their effect is unknown, so the site is never eliminable.
	Uncommitted int
	// Changeless-flush classification, by cause.
	DupFlush   int // an earlier batch entry already snapshotted the line
	NTFlush    int // the line's fresh bytes were queued by an NT store
	CleanFlush int // the line was simply never (effectively) dirtied
}

// Op names the site's operation shape for the report.
func (d *siteDyn) Op() string {
	switch {
	case d.FlushOps > 0 && d.FenceOps > 0:
		return "persist"
	case d.FenceOps > 0:
		return "fence"
	}
	return "flush"
}

// Occurrences is the count of journaled device ops the site issued.
func (d *siteDyn) Occurrences() int { return d.FlushOps + d.FenceOps }

// Redundant is the count of those ops that were provable no-ops.
func (d *siteDyn) Redundant() int { return d.ChangelessFlush + d.RedundantFence }

// Eliminable reports whether every occurrence was a no-op: the site can be
// elided without changing any committed image (still verified by the apply
// gate — this is the candidate filter, not the safety proof).
func (d *siteDyn) Eliminable() bool {
	return d.Occurrences() > 0 && d.Redundant() == d.Occurrences() && d.Uncommitted == 0
}

// Kind classifies the site's dominant redundancy for dynamic-only
// candidates, by majority over its changeless flushes.
func (d *siteDyn) Kind() string {
	if d.FenceOps > 0 && d.FlushOps == 0 {
		return "empty-fence"
	}
	switch {
	case d.DupFlush >= d.NTFlush && d.DupFlush >= d.CleanFlush && d.DupFlush > 0:
		return "duplicate-flush"
	case d.NTFlush >= d.CleanFlush && d.NTFlush > 0:
		return "flush-after-nt-store"
	}
	return "clean-line-flush"
}

// pendEntry is one queued snapshot: a flush's whole-line copy or an NT
// store's payload, waiting for the issuing thread's next fence.
type pendEntry struct {
	site string // issuing site key ("" for untraced ops)
	nt   bool
	addr uint64
	data []byte
}

// simulate replays the journal against volatile/persistent shadows and
// returns the per-site dynamic evidence plus journal-level stats. opSites
// must be the runtime's 1:1 site side table for ops.
func simulate(ops []pmem.Op, opSites []sites.ID, tab *sites.Table, poolSize uint64) (map[string]*siteDyn, report.OptStats) {
	vol := make([]byte, poolSize)
	per := make([]byte, poolSize)
	pending := make(map[int32][]pendEntry)
	dyn := make(map[string]*siteDyn)
	stats := report.OptStats{JournalOps: len(ops)}

	get := func(key string) *siteDyn {
		d := dyn[key]
		if d == nil {
			d = &siteDyn{}
			dyn[key] = d
		}
		return d
	}
	keyOf := func(i int) string {
		fr := tab.Lookup(opSites[i])
		if fr.File == "" {
			return ""
		}
		return fmt.Sprintf("%s:%d", sites.ModuleRel(fr.File), fr.Line)
	}

	for i, op := range ops {
		switch op.Kind {
		case pmem.OpStore, pmem.OpNTStore:
			data := op.Data
			if data == nil {
				data = make([]byte, op.Size)
			}
			copy(vol[op.Addr:], data)
			if op.Kind == pmem.OpNTStore {
				stats.NTStores++
				snap := append([]byte(nil), data...)
				pending[op.TID] = append(pending[op.TID], pendEntry{site: keyOf(i), nt: true, addr: op.Addr, data: snap})
			}
		case pmem.OpFlush:
			stats.Flushes++
			key := keyOf(i)
			if key != "" {
				get(key).FlushOps++
			}
			base := pmem.LineOf(op.Addr) * pmem.LineSize
			end := base + pmem.LineSize
			if end > poolSize {
				end = poolSize
			}
			snap := append([]byte(nil), vol[base:end]...)
			pending[op.TID] = append(pending[op.TID], pendEntry{site: key, addr: base, data: snap})
		case pmem.OpFence:
			key := keyOf(i)
			stats.Fences++
			batch := pending[op.TID]
			delete(pending, op.TID)
			// ownOnly: eliding this fence site also elides everything it was
			// committing. Any foreign or NT entry means the fence did work on
			// someone else's behalf (NT stores are never elided, so an NT
			// entry breaks it even from the same source line).
			ownOnly := true
			allChangeless := true
			for bi, e := range batch {
				if e.nt || e.site != key {
					ownOnly = false
				}
				changeless := bytesEqual(per[e.addr:e.addr+uint64(len(e.data))], e.data)
				copy(per[e.addr:], e.data)
				if e.nt {
					continue
				}
				if !changeless {
					allChangeless = false
					continue
				}
				stats.ChangelessFlushes++
				if e.site == "" {
					continue
				}
				d := get(e.site)
				d.ChangelessFlush++
				switch {
				case priorFlushSameLine(batch[:bi], e.addr):
					d.DupFlush++
				case priorNTOverlap(batch[:bi], e.addr):
					d.NTFlush++
				default:
					d.CleanFlush++
				}
			}
			if key != "" {
				d := get(key)
				d.FenceOps++
				if len(batch) == 0 {
					stats.EmptyFences++
					d.EmptyFence++
					d.RedundantFence++
				} else if ownOnly && allChangeless {
					d.RedundantFence++
				}
			} else if len(batch) == 0 {
				stats.EmptyFences++
			}
		}
	}
	// Snapshots never committed: their site's effect is unresolved.
	for _, batch := range pending {
		for _, e := range batch {
			if !e.nt && e.site != "" {
				get(e.site).Uncommitted++
			}
		}
	}
	for _, d := range dyn {
		if d.FlushOps > 0 {
			stats.FlushSites++
		}
		if d.FenceOps > 0 {
			stats.FenceSites++
		}
	}
	return dyn, stats
}

func priorFlushSameLine(prior []pendEntry, lineBase uint64) bool {
	for _, e := range prior {
		if !e.nt && e.addr == lineBase {
			return true
		}
	}
	return false
}

func priorNTOverlap(prior []pendEntry, lineBase uint64) bool {
	end := lineBase + pmem.LineSize
	for _, e := range prior {
		if e.nt && e.addr < end && e.addr+uint64(len(e.data)) > lineBase {
			return true
		}
	}
	return false
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
