// Package pmopt finds redundant flush and fence operations in applications
// written against the instrumented PM runtime, by joining two independent
// analyses of the same sites:
//
//   - static: all-paths CFG passes over the shared IR (internal/pmlint/cfgir)
//     prove a site's op can never do persistence work — a duplicate flush of
//     an already-covered line, a fence with provably nothing pending, or a
//     flush whose data arrived via non-temporal stores;
//   - dynamic: a byte-precise replay of the recorded device-op journal
//     checks whether each occurrence actually changed the persistent image
//     at commit time.
//
// Agreement yields the `static+dynamic` confidence tier, whose sites are
// candidates for automatic elimination (Apply) behind a crash-differential
// safety gate; disagreement is itself a finding (`refuted`: the
// line-granular static claim was too coarse for this workload).
package pmopt

import (
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"

	"hawkset/internal/apps"
	"hawkset/internal/crashinject"
	"hawkset/internal/pmlint/cfgir"
	"hawkset/internal/report"
)

// Result is one application's joined analysis.
type Result struct {
	Doc *report.OptDocument
	// Eliminable lists the TierStaticDynamic site keys ("file.go:line",
	// module-relative) — the set Apply is allowed to elide.
	Eliminable []string
	// Prep is the recorded fixed-variant execution the dynamic analysis ran
	// over; Apply reuses it as the baseline.
	Prep *crashinject.Prep
}

// AnalyzeApp records one fixed-variant execution of the application (same
// deterministic workload as the crash-injection harness), replays its
// journal for dynamic evidence, runs the static passes over the app's
// package, and joins the verdicts. dir must lie inside the module (it roots
// the source loader; "." works from anywhere in the repo).
func AnalyzeApp(dir string, e *apps.Entry, opCount int, seed int64) (*Result, error) {
	prep, err := crashinject.Prepare(e, opCount, seed, true)
	if err != nil {
		return nil, err
	}
	rt := prep.Runtime
	dyn, stats := simulate(rt.Ops, rt.OpSites, rt.Trace.Sites, rt.Pool.Size())

	st, err := analyzeAppStatic(dir, e)
	if err != nil {
		return nil, fmt.Errorf("pmopt: static analysis of %s: %w", e.Name, err)
	}

	doc := &report.OptDocument{
		Tool:        "pmopt",
		Application: e.Name,
		Workload:    fmt.Sprintf("%d ops, seed %d, fixed", opCount, seed),
		Stats:       stats,
	}
	var eliminable []string
	for _, key := range unionKeys(st, dyn) {
		c, ok := join(key, st[key], dyn[key])
		if !ok {
			continue
		}
		doc.Candidates = append(doc.Candidates, c)
		if c.Tier == report.TierStaticDynamic {
			eliminable = append(eliminable, c.Site)
		}
	}
	report.SortCandidates(doc.Candidates)
	sort.Strings(eliminable)
	return &Result{Doc: doc, Eliminable: eliminable, Prep: prep}, nil
}

// join produces the report candidate for one site, or ok=false when the
// site is neither statically claimed nor dynamically eliminable.
func join(key string, st *staticSite, dy *siteDyn) (report.OptCandidate, bool) {
	claim := st != nil && st.Claim()
	elim := dy != nil && dy.Eliminable()
	occ := 0
	if dy != nil {
		occ = dy.Occurrences()
	}
	if !claim && !elim {
		return report.OptCandidate{}, false
	}
	c := report.OptCandidate{
		Site:        key,
		StaticClaim: claim,
		Eliminable:  elim,
	}
	if st != nil {
		c.Func = st.Fn
		c.Op = st.Op
	}
	switch {
	case claim && elim:
		c.Tier = report.TierStaticDynamic
		c.Kind = st.Kind()
	case elim:
		c.Tier = report.TierDynamicOnly
		c.Kind = dy.Kind()
	default:
		c.Tier = report.TierStaticOnly
		c.Kind = st.Kind()
		c.Refuted = occ > 0
	}
	if dy != nil {
		c.Occurrences = occ
		c.Redundant = dy.Redundant()
		c.Op = dy.Op() // the journal knows the true shape (persist vs flush)
		c.Detail = detail(dy)
	} else {
		c.Detail = "site not reached by the recorded workload"
	}
	return c, true
}

// detail renders the dynamic evidence compactly and deterministically.
func detail(d *siteDyn) string {
	var parts []string
	if d.FlushOps > 0 {
		parts = append(parts, fmt.Sprintf("%d/%d flushes changeless (%d dup, %d nt, %d clean)",
			d.ChangelessFlush, d.FlushOps, d.DupFlush, d.NTFlush, d.CleanFlush))
	}
	if d.FenceOps > 0 {
		parts = append(parts, fmt.Sprintf("%d/%d fences redundant", d.RedundantFence, d.FenceOps))
	}
	if d.Uncommitted > 0 {
		parts = append(parts, fmt.Sprintf("%d uncommitted", d.Uncommitted))
	}
	return strings.Join(parts, "; ")
}

func unionKeys(st map[string]*staticSite, dy map[string]*siteDyn) []string {
	seen := make(map[string]bool, len(st)+len(dy))
	var keys []string
	for k := range st {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range dy {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// analyzeAppStatic loads and analyzes the application's own package. The
// package is located from the registered factory function's symbol name —
// the registry is the single source of truth for what code backs an app, so
// no name↔path convention is needed.
func analyzeAppStatic(dir string, e *apps.Entry) (map[string]*staticSite, error) {
	l, err := cfgir.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgPath, err := factoryPackage(e)
	if err != nil {
		return nil, err
	}
	rel := strings.TrimPrefix(pkgPath, l.ModulePath+"/")
	if rel == pkgPath {
		return nil, fmt.Errorf("factory package %q is outside module %q", pkgPath, l.ModulePath)
	}
	pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
	if err != nil {
		return nil, err
	}
	ir := cfgir.Build(l, []*cfgir.Package{pkg}, cfgir.Options{})
	return analyzeStatic(ir), nil
}

// factoryPackage extracts the import path of the package defining the
// entry's factory, e.g. "hawkset/internal/apps/part" from
// "hawkset/internal/apps/part.New".
func factoryPackage(e *apps.Entry) (string, error) {
	fn := runtime.FuncForPC(reflect.ValueOf(e.Factory).Pointer())
	if fn == nil {
		return "", fmt.Errorf("app %s: factory has no symbol", e.Name)
	}
	name := fn.Name()
	slash := strings.LastIndex(name, "/")
	dot := strings.Index(name[slash+1:], ".")
	if dot < 0 {
		return "", fmt.Errorf("app %s: cannot parse factory symbol %q", e.Name, name)
	}
	return name[:slash+1+dot], nil
}
