package pmrt

import (
	"strings"
	"testing"

	"hawkset/internal/trace"
)

func TestNTStore8PersistsAfterFence(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	var a uint64
	err := r.Run(func(c *Ctx) {
		a = c.Alloc(8)
		c.NTStore8(a, 77)
		if r.Pool.Persisted(a, 8) {
			t.Error("nt-store persisted before the fence")
		}
		c.Fence()
		if !r.Pool.Persisted(a, 8) {
			t.Error("nt-store not persisted after the fence")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Trace.Counts()[trace.KNTStore]; got != 1 {
		t.Fatalf("nt-store events = %d", got)
	}
}

func TestZeroIsUntraced(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	err := r.Run(func(c *Ctx) {
		a := c.Alloc(64)
		c.Store8(a, 0xff)
		c.Zero(a, 64)
		if got := c.Load8(a); got != 0 {
			t.Errorf("Zero left %#x", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Zero scrubs without trace events: one store, one load.
	counts := r.Trace.Counts()
	if counts[trace.KStore] != 1 || counts[trace.KLoad] != 1 {
		t.Fatalf("Zero emitted events: %v", counts)
	}
}

func TestPersistZeroLengthIsFenceOnly(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	err := r.Run(func(c *Ctx) {
		c.Persist(0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := r.Trace.Counts()
	if counts[trace.KFlush] != 0 || counts[trace.KFence] != 1 {
		t.Fatalf("Persist(0,0) events = %v, want fence only", counts)
	}
}

func TestRecordAllocRespectsConfig(t *testing.T) {
	off := New(Config{Seed: 1, PoolSize: 1 << 16})
	if err := off.Run(func(c *Ctx) { c.RecordAlloc(64, 64) }); err != nil {
		t.Fatal(err)
	}
	if got := off.Trace.Counts()[trace.KAlloc]; got != 0 {
		t.Fatalf("RecordAlloc emitted %d events with instrumentation off", got)
	}
	on := New(Config{Seed: 1, PoolSize: 1 << 16, InstrumentAllocs: true})
	if err := on.Run(func(c *Ctx) {
		a := c.Alloc(64) // Alloc also emits when instrumented
		c.RecordAlloc(a, 64)
	}); err != nil {
		t.Fatal(err)
	}
	if got := on.Trace.Counts()[trace.KAlloc]; got != 2 {
		t.Fatalf("alloc events = %d, want 2", got)
	}
}

func TestMutexSelfDeadlockPanics(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	m := r.NewMutex("m")
	err := r.Run(func(c *Ctx) {
		c.Lock(m)
		c.Lock(m) // recursive: must panic, surfaced via the scheduler
	})
	if err == nil || !strings.Contains(err.Error(), "self-deadlock") {
		t.Fatalf("err = %v, want self-deadlock panic", err)
	}
}

func TestUnlockNotHeldPanics(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	m := r.NewMutex("m")
	err := r.Run(func(c *Ctx) {
		c.Unlock(m)
	})
	if err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Fatalf("err = %v, want unlock panic", err)
	}
}

func TestRWMutexMisusePanics(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	m := r.NewRWMutex("rw")
	err := r.Run(func(c *Ctx) { c.RUnlock(m) })
	if err == nil || !strings.Contains(err.Error(), "no readers") {
		t.Fatalf("err = %v", err)
	}
	r2 := New(Config{Seed: 1, PoolSize: 1 << 16})
	m2 := r2.NewRWMutex("rw")
	err = r2.Run(func(c *Ctx) { c.WUnlock(m2) })
	if err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Fatalf("err = %v", err)
	}
}

func TestRWMutexWriterBlocksReaders(t *testing.T) {
	r := New(Config{Seed: 9, PoolSize: 1 << 16})
	m := r.NewRWMutex("rw")
	readerSawWriter := false
	err := r.Run(func(c *Ctx) {
		c.WLock(m)
		reader := c.Spawn(func(c2 *Ctx) {
			c2.RLock(m) // blocks until the writer releases
			readerSawWriter = true
			c2.RUnlock(m)
		})
		for i := 0; i < 10; i++ {
			c.Yield()
		}
		if readerSawWriter {
			t.Error("reader entered while writer held the lock")
		}
		c.WUnlock(m)
		c.Join(reader)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !readerSawWriter {
		t.Fatal("reader never ran")
	}
}

func TestSpinLockMisusePanics(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	err := r.Run(func(c *Ctx) {
		sl := r.NewSpinLock(c, "sl")
		c.SpinUnlock(sl)
	})
	if err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Fatalf("err = %v", err)
	}
}

func TestMutexIDsDistinct(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	a, b := r.NewMutex("a"), r.NewMutex("b")
	rw := r.NewRWMutex("rw")
	if a.ID() == b.ID() || a.ID() == rw.ID() || b.ID() == rw.ID() {
		t.Fatalf("lock IDs collide: %d %d %d", a.ID(), b.ID(), rw.ID())
	}
	err := r.Run(func(c *Ctx) {
		sl := r.NewSpinLock(c, "sl")
		if sl.ID() == a.ID() || sl.Addr() == 0 {
			t.Errorf("spinlock identity wrong: id=%d addr=%#x", sl.ID(), sl.Addr())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadStoreWidths(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	err := r.Run(func(c *Ctx) {
		a := c.Alloc(64)
		c.Store(a, []byte{1, 2, 3, 4, 5})
		got := c.Load(a, 5)
		for i, b := range []byte{1, 2, 3, 4, 5} {
			if got[i] != b {
				t.Errorf("Load byte %d = %d", i, got[i])
			}
		}
		c.Flush(a)
		c.Fence()
		if !r.Pool.Persisted(a, 5) {
			t.Error("flush+fence did not persist the range")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
