package pmrt_test

import (
	"fmt"

	"hawkset/internal/pmrt"
)

// Example shows the instrumented runtime's persistency semantics: a store
// is visible immediately but survives a crash only after flush+fence.
func Example() {
	rt := pmrt.New(pmrt.Config{Seed: 1, PoolSize: 1 << 16})
	err := rt.Run(func(c *pmrt.Ctx) {
		x := c.Alloc(8)
		y := c.Alloc(8)
		c.Store8(x, 42)
		c.Persist(x, 8) // flush + fence
		c.Store8(y, 7)  // never persisted

		fmt.Println("visible x:", c.Load8(x), "y:", c.Load8(y))
		fmt.Println("post-crash x:", rt.Pool.ReadPersistent8(x), "y:", rt.Pool.ReadPersistent8(y))
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// visible x: 42 y: 7
	// post-crash x: 42 y: 0
}
