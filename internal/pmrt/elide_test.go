package pmrt

import (
	"bytes"
	"fmt"
	"testing"

	"hawkset/internal/obs"
	"hawkset/internal/pmem"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// elideWorkload is a tiny program with a provably redundant second flush of
// the same clean line: store, flush, flush again (distinct call line), fence.
func elideWorkload(c *Ctx) {
	a := c.Alloc(64)
	c.Store8(a, 0xfeedface)
	c.Flush(a)
	c.Flush(a) // redundant: same line, no intervening store
	c.Fence()
	c.NTStore8(a+8, 7)
	c.Fence()
}

// TestJournalDeviceCounters pins the per-op-kind journal counters
// (device_flush / device_fence / device_store_nt) against the journal
// itself, looked up through an obs snapshot — these counters are the
// before/after metric for pmopt's apply gate.
func TestJournalDeviceCounters(t *testing.T) {
	reg := obs.NewRegistry()
	rt := New(Config{Seed: 3, PoolSize: 1 << 14, RecordOps: true, Metrics: reg})
	if err := rt.Run(elideWorkload); err != nil {
		t.Fatal(err)
	}
	var flushes, fences, nts uint64
	for _, op := range rt.Ops {
		switch op.Kind {
		case pmem.OpFlush:
			flushes++
		case pmem.OpFence:
			fences++
		case pmem.OpNTStore:
			nts++
		}
	}
	if flushes == 0 || fences == 0 || nts == 0 {
		t.Fatalf("workload exercised no flush/fence/ntstore: %d/%d/%d", flushes, fences, nts)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("device_flush"); got != flushes {
		t.Errorf("device_flush = %d, journal has %d flushes", got, flushes)
	}
	if got := snap.Counter("device_fence"); got != fences {
		t.Errorf("device_fence = %d, journal has %d fences", got, fences)
	}
	if got := snap.Counter("device_store_nt"); got != nts {
		t.Errorf("device_store_nt = %d, journal has %d NT stores", got, nts)
	}
}

// TestOpSitesAligned checks the OpSites side table stays 1:1 with the
// journal and attributes traced ops to real frames (Zero's untraced store is
// the one legitimate site-0 entry).
func TestOpSitesAligned(t *testing.T) {
	rt := New(Config{Seed: 5, PoolSize: 1 << 14, RecordOps: true})
	err := rt.Run(func(c *Ctx) {
		a := c.Alloc(64)
		c.Zero(a, 64)
		c.Store8(a, 1)
		c.Persist(a, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.OpSites) != len(rt.Ops) {
		t.Fatalf("OpSites length %d != Ops length %d", len(rt.OpSites), len(rt.Ops))
	}
	for i, op := range rt.Ops {
		site := rt.OpSites[i]
		if op.Seq == -1 {
			if site != 0 {
				t.Errorf("untraced op %d carries site %d, want 0", i, site)
			}
			continue
		}
		if site == 0 {
			t.Errorf("traced op %d (kind %v) has no site", i, op.Kind)
			continue
		}
		if fr := rt.Trace.Sites.Lookup(site); fr.File == "" {
			t.Errorf("op %d site %d resolves to empty frame", i, site)
		}
	}
}

// TestElideSites checks the elision contract: with the redundant flush's
// site elided, (a) the persistent image is unchanged, (b) the trace equals
// the baseline trace with exactly the elided events removed (the
// yield-preserving guarantee), and (c) the device_flush counter drops.
func TestElideSites(t *testing.T) {
	base := New(Config{Seed: 11, PoolSize: 1 << 14, RecordOps: true})
	if err := base.Run(elideWorkload); err != nil {
		t.Fatal(err)
	}
	// Locate the redundant flush (second OpFlush) and build its elide key.
	var key string
	nflush := 0
	for i, op := range base.Ops {
		if op.Kind == pmem.OpFlush {
			nflush++
			if nflush == 2 {
				fr := base.Trace.Sites.Lookup(base.OpSites[i])
				key = fmt.Sprintf("%s:%d", sites.ModuleRel(fr.File), fr.Line)
			}
		}
	}
	if key == "" {
		t.Fatal("workload journaled fewer than two flushes")
	}

	regE := obs.NewRegistry()
	elided := New(Config{Seed: 11, PoolSize: 1 << 14, RecordOps: true,
		ElideSites: map[string]bool{key: true}, Metrics: regE})
	if err := elided.Run(elideWorkload); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(base.Pool.Crash(), elided.Pool.Crash()) {
		t.Error("eliding the redundant flush changed the persistent image")
	}
	// The elided trace must be the baseline trace minus flush events at the
	// elided site, with everything else in the same order.
	var want []trace.Event
	for _, e := range base.Trace.Events {
		if e.Kind == trace.KFlush {
			fr := base.Trace.Sites.Lookup(e.Site)
			if fmt.Sprintf("%s:%d", sites.ModuleRel(fr.File), fr.Line) == key {
				continue
			}
		}
		want = append(want, e)
	}
	if len(want) != len(elided.Trace.Events) {
		t.Fatalf("elided trace has %d events, want %d", len(elided.Trace.Events), len(want))
	}
	for i, e := range elided.Trace.Events {
		w := want[i]
		// Site IDs are interning-order-dependent; compare resolved frames.
		if e.Kind != w.Kind || e.TID != w.TID || e.Addr != w.Addr || e.Size != w.Size ||
			elided.Trace.Sites.Lookup(e.Site) != base.Trace.Sites.Lookup(w.Site) {
			t.Fatalf("event %d diverges: got %+v want %+v", i, e, w)
		}
	}
	snap := regE.Snapshot()
	if got := snap.Counter("pmrt.elided"); got == 0 {
		t.Error("pmrt.elided counter did not move")
	}
	if got, wantN := snap.Counter("device_flush"), uint64(nflush-1); got != wantN {
		t.Errorf("device_flush = %d after elision, want %d", got, wantN)
	}
}
