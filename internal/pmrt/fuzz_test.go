package pmrt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hawkset/internal/hawkset"
)

// TestFuzzCorrectProgramsSilent is the end-to-end false-positive check:
// randomly generated concurrent programs that are correct by construction —
// every PM address has a dedicated mutex, and every store is persisted
// inside its critical section — must never produce a report, across random
// schedules, thread counts and access patterns.
func TestFuzzCorrectProgramsSilent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(Config{Seed: seed, PoolSize: 1 << 20})
		nAddrs := 2 + rng.Intn(6)
		nThreads := 2 + rng.Intn(4)
		addrs := make([]uint64, nAddrs)
		locks := make([]*Mutex, nAddrs)
		err := r.Run(func(c *Ctx) {
			for i := range addrs {
				addrs[i] = c.Alloc(8)
				locks[i] = r.NewMutex("addr")
			}
			var ths []*Thread
			for ti := 0; ti < nThreads; ti++ {
				ops := 3 + rng.Intn(12)
				plan := make([]int, ops) // pre-drawn to keep the schedule the only randomness
				kinds := make([]int, ops)
				for i := range plan {
					plan[i] = rng.Intn(nAddrs)
					kinds[i] = rng.Intn(2)
				}
				ths = append(ths, c.Spawn(func(wc *Ctx) {
					for i := range plan {
						a := plan[i]
						wc.Lock(locks[a])
						if kinds[i] == 0 {
							wc.Store8(addrs[a], uint64(i))
							wc.Persist(addrs[a], 8)
						} else {
							_ = wc.Load8(addrs[a])
						}
						wc.Unlock(locks[a])
					}
				}))
			}
			for _, th := range ths {
				c.Join(th)
			}
		})
		if err != nil {
			return false
		}
		cfg := hawkset.DefaultConfig()
		cfg.IRH = false // even without pruning, a correct program is silent
		return len(hawkset.Analyze(r.Trace, cfg).Reports) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzSeededViolationAlwaysReported is the end-to-end false-negative
// check: the same generator with one Figure-1c defect injected (one thread
// persists one address outside its critical section) must report a race on
// every seed in which another thread loads that address.
func TestFuzzSeededViolationAlwaysReported(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(Config{Seed: seed, PoolSize: 1 << 20})
		nThreads := 2 + rng.Intn(3)
		var x uint64
		var mu *Mutex
		err := r.Run(func(c *Ctx) {
			x = c.Alloc(8)
			mu = r.NewMutex("x")
			var ths []*Thread
			// Thread 1: the defect — store under the lock, persist outside.
			ths = append(ths, c.Spawn(func(wc *Ctx) {
				wc.Lock(mu)
				wc.Store8(x, 1)
				wc.Unlock(mu)
				wc.Persist(x, 8)
			}))
			// Readers under the same lock, plus noise.
			for ti := 1; ti < nThreads; ti++ {
				ths = append(ths, c.Spawn(func(wc *Ctx) {
					wc.Lock(mu)
					_ = wc.Load8(x)
					wc.Unlock(mu)
				}))
			}
			for _, th := range ths {
				c.Join(th)
			}
		})
		if err != nil {
			return false
		}
		cfg := hawkset.DefaultConfig()
		cfg.IRH = false
		res := hawkset.Analyze(r.Trace, cfg)
		// The defective store must be among the reports regardless of the
		// schedule the seed produced.
		for _, rep := range res.Reports {
			if rep.Addr == x {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
