package pmrt

import (
	"fmt"

	"hawkset/internal/trace"
)

// Mutex is an instrumented mutual-exclusion lock, the analogue of a pthread
// mutex under HawkSet's built-in pthread support (§4). Lock and Unlock emit
// the acquire/release events the lockset analysis consumes.
type Mutex struct {
	r       *Runtime
	id      uint64
	name    string
	owner   *Ctx
	waiters []*Ctx
}

// NewMutex creates a mutex. The name is diagnostic only.
func (r *Runtime) NewMutex(name string) *Mutex {
	r.nextLock++
	return &Mutex{r: r, id: r.nextLock, name: name}
}

// ID returns the lock identity used in trace events.
func (m *Mutex) ID() uint64 { return m.id }

// Lock acquires the mutex, blocking the simulated thread if it is held.
func (c *Ctx) Lock(m *Mutex) {
	site := c.here()
	c.pre(trace.KLockAcq, 0, 0)
	for m.owner != nil {
		if m.owner.th == c.th {
			panic(fmt.Sprintf("pmrt: T%d self-deadlock on mutex %q", c.TID(), m.name))
		}
		m.waiters = append(m.waiters, c)
		c.th.Park("mutex " + m.name)
	}
	m.owner = c
	c.emit(trace.Event{Kind: trace.KLockAcq, TID: c.TID(), Lock: m.id, Site: site})
}

// TryLock attempts to acquire the mutex without blocking; it reports whether
// it succeeded. Only successful acquisitions appear in the trace, matching
// the paper's handling of pthread_mutex_trylock-style tentative acquires.
func (c *Ctx) TryLock(m *Mutex) bool {
	site := c.here()
	c.pre(trace.KLockAcq, 0, 0)
	if m.owner != nil {
		return false
	}
	m.owner = c
	c.emit(trace.Event{Kind: trace.KLockAcq, TID: c.TID(), Lock: m.id, Site: site})
	return true
}

// Unlock releases the mutex and wakes one waiter.
func (c *Ctx) Unlock(m *Mutex) {
	site := c.here()
	if m.owner == nil || m.owner.th != c.th {
		panic(fmt.Sprintf("pmrt: T%d unlock of mutex %q it does not hold", c.TID(), m.name))
	}
	m.owner = nil
	c.emit(trace.Event{Kind: trace.KLockRel, TID: c.TID(), Lock: m.id, Site: site})
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		c.th.Unpark(w.th)
	}
}

// RWMutex is an instrumented readers-writer lock. Read and write holds emit
// the same lock identity: a reader's lockset and a writer's lockset then
// intersect on that identity, so reader/writer pairs are treated as
// protected — the correct lockset treatment for store/load pairs.
type RWMutex struct {
	r       *Runtime
	id      uint64
	name    string
	readers int
	writer  *Ctx
	waiters []*Ctx
}

// NewRWMutex creates a readers-writer lock.
func (r *Runtime) NewRWMutex(name string) *RWMutex {
	r.nextLock++
	return &RWMutex{r: r, id: r.nextLock, name: name}
}

// ID returns the lock identity used in trace events.
func (m *RWMutex) ID() uint64 { return m.id }

// RLock acquires the lock in shared mode.
func (c *Ctx) RLock(m *RWMutex) {
	site := c.here()
	c.pre(trace.KLockAcq, 0, 0)
	for m.writer != nil {
		m.waiters = append(m.waiters, c)
		c.th.Park("rwmutex-r " + m.name)
	}
	m.readers++
	c.emit(trace.Event{Kind: trace.KLockAcq, TID: c.TID(), Lock: m.id, Site: site})
}

// RUnlock releases a shared hold.
func (c *Ctx) RUnlock(m *RWMutex) {
	site := c.here()
	if m.readers <= 0 {
		panic(fmt.Sprintf("pmrt: T%d RUnlock of rwmutex %q with no readers", c.TID(), m.name))
	}
	m.readers--
	c.emit(trace.Event{Kind: trace.KLockRel, TID: c.TID(), Lock: m.id, Site: site})
	if m.readers == 0 {
		m.wakeAll(c)
	}
}

// WLock acquires the lock exclusively.
func (c *Ctx) WLock(m *RWMutex) {
	site := c.here()
	c.pre(trace.KLockAcq, 0, 0)
	for m.writer != nil || m.readers > 0 {
		if m.writer != nil && m.writer.th == c.th {
			panic(fmt.Sprintf("pmrt: T%d self-deadlock on rwmutex %q", c.TID(), m.name))
		}
		m.waiters = append(m.waiters, c)
		c.th.Park("rwmutex-w " + m.name)
	}
	m.writer = c
	c.emit(trace.Event{Kind: trace.KLockAcq, TID: c.TID(), Lock: m.id, Site: site})
}

// WUnlock releases an exclusive hold.
func (c *Ctx) WUnlock(m *RWMutex) {
	site := c.here()
	if m.writer == nil || m.writer.th != c.th {
		panic(fmt.Sprintf("pmrt: T%d WUnlock of rwmutex %q it does not hold", c.TID(), m.name))
	}
	m.writer = nil
	c.emit(trace.Event{Kind: trace.KLockRel, TID: c.TID(), Lock: m.id, Site: site})
	m.wakeAll(c)
}

func (m *RWMutex) wakeAll(c *Ctx) {
	ws := m.waiters
	m.waiters = nil
	for _, w := range ws {
		c.th.Unpark(w.th)
	}
}

// SpinLock is a CAS-based lock whose lock word lives in PM, the pattern
// P-CLHT and APEX implement (§5.5): the application spins on a
// compare-and-swap of a PM word. The CAS's PM load/store appear in the trace
// as ordinary lock-free accesses, and — mirroring the wrapper functions plus
// configuration file the paper's authors wrote for these applications — the
// successful acquire and the release are additionally reported as lock
// events so the lockset analysis sees the acquire-release semantics.
type SpinLock struct {
	r    *Runtime
	id   uint64
	addr uint64 // PM address of the lock word
	name string
	// waiters parks spinners so the cooperative schedule stays bounded; a
	// real spin loop would burn schedule steps without changing semantics.
	holder  *Ctx
	waiters []*Ctx
}

// NewSpinLock creates a CAS lock whose word is at a fresh PM address
// allocated from the heap.
func (r *Runtime) NewSpinLock(c *Ctx, name string) *SpinLock {
	r.nextLock++
	return &SpinLock{r: r, id: r.nextLock, addr: c.Alloc(8), name: name}
}

// Addr returns the PM address of the lock word.
func (l *SpinLock) Addr() uint64 { return l.addr }

// ID returns the lock identity used in trace events.
func (l *SpinLock) ID() uint64 { return l.id }

// SpinLock acquires l via CAS on its PM word.
func (c *Ctx) SpinLock(l *SpinLock) {
	site := c.here()
	for {
		if c.CAS8(l.addr, 0, uint64(c.TID())+1) {
			break
		}
		l.waiters = append(l.waiters, c)
		c.th.Park("spinlock " + l.name)
	}
	l.holder = c
	c.emit(trace.Event{Kind: trace.KLockAcq, TID: c.TID(), Lock: l.id, Site: site})
}

// SpinUnlock releases l by storing zero to its PM word.
func (c *Ctx) SpinUnlock(l *SpinLock) {
	site := c.here()
	if l.holder == nil || l.holder.th != c.th {
		panic(fmt.Sprintf("pmrt: T%d unlock of spinlock %q it does not hold", c.TID(), l.name))
	}
	l.holder = nil
	c.emit(trace.Event{Kind: trace.KLockRel, TID: c.TID(), Lock: l.id, Site: site})
	c.Store8(l.addr, 0)
	ws := l.waiters
	l.waiters = nil
	for _, w := range ws {
		c.th.Unpark(w.th)
	}
}
