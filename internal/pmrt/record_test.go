package pmrt

import (
	"bytes"
	"testing"

	"hawkset/internal/pmem"
	"hawkset/internal/trace"
)

// TestRecordOpsReplayRoundTrip runs a small multi-threaded program with
// journaling on, replays the journal on a fresh device, and checks that
// every prefix of the journal is internally consistent and that the final
// replayed device matches the live one byte-for-byte in both views.
func TestRecordOpsReplayRoundTrip(t *testing.T) {
	rt := New(Config{Seed: 7, PoolSize: 1 << 16, RecordOps: true})
	err := rt.Run(func(c *Ctx) {
		a := c.Alloc(64)
		b := c.Alloc(64)
		c.Zero(a, 64)
		c.Persist(a, 64)
		c.Store8(a, 0x1122334455667788)
		c.Flush(a)
		th := c.Spawn(func(c *Ctx) {
			c.Store4(b, 0xdeadbeef)
			c.Persist(b, 4)
			c.NTStore8(b+8, 42)
			c.Fence()
		})
		c.Fence()
		c.Store1(a+9, 0x5a) // left unpersisted
		if !c.CAS8(a+16, 0, 99) {
			t.Error("CAS8 on zeroed word failed")
		}
		c.Join(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Ops) == 0 {
		t.Fatal("RecordOps produced no journal")
	}

	nev := len(rt.Trace.Events)
	prev := -2
	for _, op := range rt.Ops {
		if op.Seq >= nev {
			t.Fatalf("op Seq %d out of trace range %d", op.Seq, nev)
		}
		if op.Seq != -1 {
			if op.Seq <= prev {
				t.Fatalf("journal Seq not strictly increasing: %d after %d", op.Seq, prev)
			}
			prev = op.Seq
			k := rt.Trace.Events[op.Seq].Kind
			switch op.Kind {
			case pmem.OpStore:
				if k != trace.KStore {
					t.Fatalf("OpStore maps to trace kind %v", k)
				}
			case pmem.OpNTStore:
				if k != trace.KNTStore {
					t.Fatalf("OpNTStore maps to trace kind %v", k)
				}
			case pmem.OpFlush:
				if k != trace.KFlush {
					t.Fatalf("OpFlush maps to trace kind %v", k)
				}
			case pmem.OpFence:
				if k != trace.KFence {
					t.Fatalf("OpFence maps to trace kind %v", k)
				}
			}
		} else if op.Kind != pmem.OpStore || op.Data != nil {
			t.Fatalf("only untraced zero-stores may have Seq -1, got %v", op.Kind)
		}
	}

	r := pmem.NewReplayer(1 << 16)
	r.AdvanceTo(rt.Ops, len(rt.Ops))
	if !bytes.Equal(r.Pool().Crash(), rt.Pool.Crash()) {
		t.Errorf("replayed persistent image differs from live device")
	}
	for addr := uint64(0); addr < 1<<16; addr += 8 {
		if r.Pool().Load8(addr) != rt.Pool.Load8(addr) {
			t.Errorf("volatile views differ at %#x", addr)
			break
		}
	}
}

// TestRecordOpsOffByDefault ensures journaling costs nothing unless opted in.
func TestRecordOpsOffByDefault(t *testing.T) {
	rt := New(Config{Seed: 1, PoolSize: 1 << 12})
	err := rt.Run(func(c *Ctx) {
		a := c.Alloc(8)
		c.Store8(a, 1)
		c.Persist(a, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Ops != nil {
		t.Fatalf("journal recorded without RecordOps: %d ops", len(rt.Ops))
	}
}
