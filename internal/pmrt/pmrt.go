// Package pmrt is the instrumented PM runtime: the reproduction's substitute
// for Intel PIN binary instrumentation. PM applications (internal/apps/*)
// are written against this API; every PM access, synchronization primitive
// and thread operation goes through it, is executed against the simulated PM
// device (internal/pmem) under the deterministic cooperative scheduler
// (internal/sched), and is appended to an execution trace (internal/trace)
// together with the Go call site of the application code that issued it.
//
// HawkSet's analysis (internal/hawkset) and the baselines consume the trace;
// they never see the application, exactly as the original tool never sees
// application source — the trace schema is the tool/application interface.
package pmrt

import (
	"encoding/binary"
	"fmt"

	"hawkset/internal/obs"
	"hawkset/internal/pmem"
	"hawkset/internal/sched"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

// Config configures a Runtime.
type Config struct {
	// Seed drives the deterministic scheduler.
	Seed int64
	// PoolSize is the simulated PM device capacity in bytes.
	PoolSize uint64
	// MaxSteps bounds scheduler decisions (0 = unbounded).
	MaxSteps uint64
	// EADR makes every visible store persistent (ablation).
	EADR bool
	// TrackWriters enables per-byte dirty-read attribution (the PMRace
	// baseline observer needs it; costs 8 bytes per pool byte).
	TrackWriters bool
	// NoTrace disables trace recording (pure-execution runs, e.g. the
	// PMRace baseline's repeated executions that only use the observer).
	NoTrace bool
	// EvictAfter enables hardware-realistic background cache eviction (see
	// pmem.Options.EvictAfter). Used only by the observation baseline.
	EvictAfter int
	// PCTDepth switches the scheduler to the PCT policy with the given bug
	// depth (0 = uniform random). PCTLen is the expected schedule length for
	// change-point placement (default 64k steps).
	PCTDepth int
	PCTLen   uint64
	// Backtraces captures multi-frame call stacks per access instead of the
	// single call site. Substantially slower (the original tool's
	// PIN_Backtrace cost up to 90% overhead, §4); reports then show the
	// full call chain that reached the racy access.
	Backtraces bool
	// InstrumentAllocs records PM allocations in the trace. This is the §7
	// extension HawkSet deliberately omits (PM allocation interfaces are not
	// standardized, so instrumenting them costs application-agnosticism);
	// the analysis can use the events to reset the Initialization Removal
	// Heuristic's publication state on reuse (hawkset.Config.AllocAware).
	InstrumentAllocs bool
	// RecordOps journals every device-mutating operation (stores with their
	// data, flushes, fences) into Runtime.Ops, correlated to trace-event
	// indices. The crash-injection harness (internal/crashinject) replays
	// the journal to materialize the crash image at any point of the
	// execution without re-running the application.
	RecordOps bool
	// ElideSites suppresses the device effect, trace event and journal entry
	// of flush/fence operations issued from the listed call sites — the
	// mechanism pmopt's -apply mode uses to execute a redundancy elimination
	// without editing application source. Keys are module-relative
	// "file.go:line" strings (sites.ModuleRel form); a Persist call site
	// elides its per-line flushes and its fence together. Elision is
	// yield-preserving: every would-be operation still performs its
	// scheduling yield (and BeforeOp callback), so the interleaving — and
	// with it every non-elided trace event — is identical to the un-elided
	// run. Only the elided flush/fence events disappear.
	ElideSites map[string]bool
	// Metrics, when non-nil, receives side-band event/journal counters from
	// the runtime and device counters from the pool. Execution, traces and
	// journals are unaffected: metrics never feed back.
	Metrics *obs.Registry
}

// Runtime glues the scheduler, the PM device and the trace recorder.
type Runtime struct {
	cfg   Config
	Sched *sched.Scheduler
	Pool  *pmem.Pool
	Heap  *pmem.Heap
	Trace *trace.Trace
	// Ops is the device-op journal recorded under Config.RecordOps, in
	// execution order (the cooperative scheduler serializes all device
	// accesses, so journal order is device order).
	Ops []pmem.Op
	// OpSites records the call site of each journal entry, aligned 1:1 with
	// Ops. pmem.Op itself carries no site — it is the device-replay
	// interface — but pmopt's dynamic analysis needs to attribute every
	// journaled flush/fence to the source line that issued it. Untraced ops
	// (Zero) record site 0.
	OpSites []sites.ID

	nextLock uint64

	// BeforeOp, when set, is called before every instrumented operation
	// (after the scheduling yield). The PMRace baseline uses it for delay
	// injection.
	BeforeOp func(c *Ctx, k trace.Kind, addr uint64, size uint32)
	// EventSink, when set, receives every instrumented event as it is
	// emitted — the hookup for hawkset.Stream's online analysis. It is
	// called regardless of NoTrace, so a streaming analysis does not pay for
	// trace storage.
	EventSink func(e trace.Event)
	// OnDirtyRead, when set, is called when a load observes
	// visible-but-not-persistent data written by another thread — the
	// observation event PMRace must hit to report a race.
	OnDirtyRead func(c *Ctx, loadSite sites.ID, addr uint64, size uint32, writer int32, storeSite sites.ID)

	// Side-band metric handles (nil when Config.Metrics is unset).
	mEvents       *obs.Counter
	mJournalOps   *obs.Counter
	mJournalBytes *obs.Counter
	// Per-op-kind journal counters: the before/after metric pmopt's apply
	// gate compares (an elimination must strictly reduce flush+fence).
	mDevFlush   *obs.Counter
	mDevFence   *obs.Counter
	mDevNTStore *obs.Counter
	mElided     *obs.Counter

	// elideCache memoizes per-site elision decisions (the cooperative
	// scheduler serializes all instrumented operations, so no lock).
	elideCache map[sites.ID]bool
}

// New creates a runtime. The first pmem.LineSize bytes of the pool are
// reserved so that address 0 can serve as the applications' nil persistent
// pointer.
func New(cfg Config) *Runtime {
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 64 << 20
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1 << 34
	}
	schd := sched.New(cfg.Seed, cfg.MaxSteps)
	if cfg.PCTDepth > 0 {
		schd = sched.NewPCT(cfg.Seed, cfg.MaxSteps, cfg.PCTDepth, cfg.PCTLen)
	}
	r := &Runtime{
		cfg:   cfg,
		Sched: schd,
		Pool: pmem.New(cfg.PoolSize, pmem.Options{
			EADR: cfg.EADR, TrackWriters: cfg.TrackWriters, EvictAfter: cfg.EvictAfter,
			Metrics: cfg.Metrics,
		}),
		Heap:          pmem.NewHeap(pmem.LineSize, cfg.PoolSize-pmem.LineSize),
		mEvents:       cfg.Metrics.Counter("pmrt.events"),
		mJournalOps:   cfg.Metrics.Counter("pmrt.journal.ops"),
		mJournalBytes: cfg.Metrics.Counter("pmrt.journal.bytes"),
		mDevFlush:     cfg.Metrics.Counter("device_flush"),
		mDevFence:     cfg.Metrics.Counter("device_fence"),
		mDevNTStore:   cfg.Metrics.Counter("device_store_nt"),
		mElided:       cfg.Metrics.Counter("pmrt.elided"),
	}
	if len(cfg.ElideSites) > 0 {
		r.elideCache = make(map[sites.ID]bool)
	}
	if !cfg.NoTrace {
		r.Trace = trace.New()
	} else {
		// A site table is still needed for dirty-read attribution.
		r.Trace = &trace.Trace{Sites: sites.NewTable()}
	}
	return r
}

// NewWithPool creates a runtime over an existing device — the post-crash
// recovery path: reboot the pool (pmem.Pool.Reboot), then run recovery code
// on a fresh runtime against the surviving contents.
func NewWithPool(cfg Config, pool *pmem.Pool, heap *pmem.Heap) *Runtime {
	r := New(cfg)
	r.Pool = pool
	if heap != nil {
		r.Heap = heap
	}
	return r
}

// Run executes main as the root simulated thread and returns when all
// threads have finished (or a deadlock/livelock error).
func (r *Runtime) Run(main func(c *Ctx)) error {
	return r.Sched.Run(func(t *sched.Thread) {
		main(&Ctx{r: r, th: t})
	})
}

// Ctx is a simulated thread's handle to the runtime. Every instrumented
// operation is a Ctx method; the operation's trace event records the Go call
// site of the Ctx method's caller, so application source lines appear in
// race reports.
type Ctx struct {
	r  *Runtime
	th *sched.Thread
}

// TID returns the simulated thread's ID.
func (c *Ctx) TID() int32 { return c.th.ID() }

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.r }

// here captures the application call site two frames up (the caller of the
// exported Ctx method) — or, under Config.Backtraces, the four-frame call
// chain.
func (c *Ctx) here() sites.ID {
	if c.r.cfg.Backtraces {
		return c.r.Trace.Sites.HereStack(2, 4)
	}
	return c.r.Trace.Sites.Here(2)
}

func (c *Ctx) pre(k trace.Kind, addr uint64, size uint32) {
	c.th.Yield()
	if c.r.BeforeOp != nil {
		c.r.BeforeOp(c, k, addr, size)
	}
}

func (c *Ctx) emit(e trace.Event) {
	c.r.mEvents.Inc()
	if !c.r.cfg.NoTrace {
		c.r.Trace.Append(e)
	}
	if c.r.EventSink != nil {
		c.r.EventSink(e)
	}
}

// lastSeq returns the trace index of the most recently emitted event, or -1
// when tracing is disabled.
func (c *Ctx) lastSeq() int {
	if c.r.cfg.NoTrace {
		return -1
	}
	return len(c.r.Trace.Events) - 1
}

// journal appends a device op under Config.RecordOps. data is copied —
// callers reuse stack buffers. Must be called AFTER the matching emit so
// seq correlation via lastSeq is stable.
func (c *Ctx) journal(kind pmem.OpKind, addr uint64, size uint32, data []byte, seq int, site sites.ID) {
	if !c.r.cfg.RecordOps {
		return
	}
	var cp []byte
	if data != nil {
		cp = make([]byte, len(data))
		copy(cp, data)
	}
	c.r.Ops = append(c.r.Ops, pmem.Op{Kind: kind, TID: c.th.ID(), Addr: addr, Size: size, Data: cp, Seq: seq})
	c.r.OpSites = append(c.r.OpSites, site)
	c.r.mJournalOps.Inc()
	c.r.mJournalBytes.Add(uint64(len(cp)))
	switch kind {
	case pmem.OpFlush:
		c.r.mDevFlush.Inc()
	case pmem.OpFence:
		c.r.mDevFence.Inc()
	case pmem.OpNTStore:
		c.r.mDevNTStore.Inc()
	}
}

// elided reports whether flush/fence effects from site are suppressed under
// Config.ElideSites, memoizing the resolved module-relative file:line key
// per site ID.
func (r *Runtime) elided(site sites.ID) bool {
	if r.elideCache == nil {
		return false
	}
	if v, ok := r.elideCache[site]; ok {
		return v
	}
	v := false
	if f := r.Trace.Sites.Lookup(site); f.File != "" {
		v = r.cfg.ElideSites[fmt.Sprintf("%s:%d", sites.ModuleRel(f.File), f.Line)]
	}
	r.elideCache[site] = v
	return v
}

// Store writes data to PM at addr (a cached, temporal store: visible
// immediately, persistent only after flush+fence).
func (c *Ctx) Store(addr uint64, data []byte) {
	site := c.here()
	c.storeAt(site, addr, data)
}

func (c *Ctx) storeAt(site sites.ID, addr uint64, data []byte) {
	c.pre(trace.KStore, addr, uint32(len(data)))
	c.r.Pool.Store(c.th.ID(), addr, data, int32(site))
	c.emit(trace.Event{Kind: trace.KStore, TID: c.th.ID(), Addr: addr, Size: uint32(len(data)), Site: site})
	c.journal(pmem.OpStore, addr, uint32(len(data)), data, c.lastSeq(), site)
}

// Store8 writes a uint64 (little-endian).
func (c *Ctx) Store8(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.storeAt(c.here(), addr, b[:])
}

// Store4 writes a uint32.
func (c *Ctx) Store4(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.storeAt(c.here(), addr, b[:])
}

// Store1 writes a byte.
func (c *Ctx) Store1(addr uint64, v byte) {
	c.storeAt(c.here(), addr, []byte{v})
}

// NTStore8 writes a uint64 with a non-temporal store: it bypasses the cache
// (no flush needed) but still requires a Fence for the persistence
// guarantee.
func (c *Ctx) NTStore8(addr uint64, v uint64) {
	site := c.here()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.pre(trace.KNTStore, addr, 8)
	c.r.Pool.NTStore(c.th.ID(), addr, b[:], int32(site))
	c.emit(trace.Event{Kind: trace.KNTStore, TID: c.th.ID(), Addr: addr, Size: 8, Site: site})
	c.journal(pmem.OpNTStore, addr, 8, b[:], c.lastSeq(), site)
}

// Load reads size bytes from PM at addr.
func (c *Ctx) Load(addr uint64, size uint32) []byte {
	return c.loadAt(c.here(), addr, size)
}

func (c *Ctx) loadAt(site sites.ID, addr uint64, size uint32) []byte {
	c.pre(trace.KLoad, addr, size)
	buf := make([]byte, size)
	c.r.Pool.Load(addr, buf)
	c.emit(trace.Event{Kind: trace.KLoad, TID: c.th.ID(), Addr: addr, Size: size, Site: site})
	if c.r.OnDirtyRead != nil {
		if writer, storeSite, ok := c.r.Pool.DirtyRead(c.th.ID(), addr, uint64(size)); ok {
			c.r.OnDirtyRead(c, site, addr, size, writer, sites.ID(storeSite))
		}
	}
	return buf
}

// Load8 reads a uint64.
func (c *Ctx) Load8(addr uint64) uint64 {
	return binary.LittleEndian.Uint64(c.loadAt(c.here(), addr, 8))
}

// Load4 reads a uint32.
func (c *Ctx) Load4(addr uint64) uint32 {
	return binary.LittleEndian.Uint32(c.loadAt(c.here(), addr, 4))
}

// Load1 reads a byte.
func (c *Ctx) Load1(addr uint64) byte {
	return c.loadAt(c.here(), addr, 1)[0]
}

// Flush issues a CLWB for the cache line containing addr.
func (c *Ctx) Flush(addr uint64) {
	site := c.here()
	c.pre(trace.KFlush, addr, 0)
	if c.r.elided(site) {
		c.r.mElided.Inc()
		return
	}
	c.r.Pool.Flush(c.th.ID(), addr)
	c.emit(trace.Event{Kind: trace.KFlush, TID: c.th.ID(), Addr: pmem.LineOf(addr) * pmem.LineSize, Site: site})
	c.journal(pmem.OpFlush, addr, 0, nil, c.lastSeq(), site)
}

// Fence issues an SFENCE, completing this thread's pending flushes.
func (c *Ctx) Fence() {
	site := c.here()
	c.pre(trace.KFence, 0, 0)
	if c.r.elided(site) {
		c.r.mElided.Inc()
		return
	}
	c.r.Pool.Fence(c.th.ID())
	c.emit(trace.Event{Kind: trace.KFence, TID: c.th.ID(), Site: site})
	c.journal(pmem.OpFence, 0, 0, nil, c.lastSeq(), site)
}

// Persist flushes every line of [addr, addr+size) and fences: the idiomatic
// flush-and-fence sequence PM libraries expose (e.g. pmem_persist).
func (c *Ctx) Persist(addr uint64, size uint64) {
	site := c.here()
	el := c.r.elided(site)
	if size > 0 {
		// Subtraction-form bound: addr+size-1 wraps for ranges ending at
		// the top of the address space, silently skipping every flush.
		first := pmem.LineOf(addr)
		last := pmem.LineOf(pmem.LastByte(addr, size))
		for l := first; l <= last; l++ {
			c.pre(trace.KFlush, l*pmem.LineSize, 0)
			if el {
				c.r.mElided.Inc()
				continue
			}
			c.r.Pool.Flush(c.th.ID(), l*pmem.LineSize)
			c.emit(trace.Event{Kind: trace.KFlush, TID: c.th.ID(), Addr: l * pmem.LineSize, Site: site})
			c.journal(pmem.OpFlush, l*pmem.LineSize, 0, nil, c.lastSeq(), site)
		}
	}
	c.pre(trace.KFence, 0, 0)
	if el {
		c.r.mElided.Inc()
		return
	}
	c.r.Pool.Fence(c.th.ID())
	c.emit(trace.Event{Kind: trace.KFence, TID: c.th.ID(), Site: site})
	c.journal(pmem.OpFence, 0, 0, nil, c.lastSeq(), site)
}

// CAS8 performs an atomic compare-and-swap of the uint64 at addr. It is a
// lock-free primitive: the trace records the load (and the store on
// success) with no lock held, exactly how HawkSet sees an uninstrumented
// CAS. Atomicity is native under the cooperative scheduler.
func (c *Ctx) CAS8(addr uint64, old, new uint64) bool {
	site := c.here()
	c.pre(trace.KLoad, addr, 8)
	cur := c.r.Pool.Load8(addr)
	c.emit(trace.Event{Kind: trace.KLoad, TID: c.th.ID(), Addr: addr, Size: 8, Site: site})
	if cur != old {
		return false
	}
	c.r.Pool.Store8(c.th.ID(), addr, new, int32(site))
	c.emit(trace.Event{Kind: trace.KStore, TID: c.th.ID(), Addr: addr, Size: 8, Site: site})
	var nb [8]byte
	binary.LittleEndian.PutUint64(nb[:], new)
	c.journal(pmem.OpStore, addr, 8, nb[:], c.lastSeq(), site)
	return true
}

// Alloc allocates size bytes from the PM heap. By default allocation is not
// an instrumented event (HawkSet deliberately does not instrument PM
// allocators, §7); Config.InstrumentAllocs opts into recording it.
func (c *Ctx) Alloc(size uint64) uint64 {
	addr := c.r.Heap.Alloc(size)
	if c.r.cfg.InstrumentAllocs {
		c.emit(trace.Event{Kind: trace.KAlloc, TID: c.th.ID(), Addr: addr, Size: uint32(size), Site: c.here()})
	}
	return addr
}

// RecordAlloc emits an allocation event for memory recycled by an
// application-level allocator (e.g. a slab allocator's free list): the
// analogue of wrapping the application's PM allocation primitives the way
// §5.5 wraps its synchronization primitives. No-op unless
// Config.InstrumentAllocs is set.
func (c *Ctx) RecordAlloc(addr, size uint64) {
	if c.r.cfg.InstrumentAllocs {
		c.emit(trace.Event{Kind: trace.KAlloc, TID: c.th.ID(), Addr: addr, Size: uint32(size), Site: c.here()})
	}
}

// Free returns a block to the PM heap. Freed memory can be handed out again,
// reproducing the address-reuse pattern that defeats the Initialization
// Removal Heuristic (§5.4, memcached-pmem).
func (c *Ctx) Free(addr uint64) { c.r.Heap.Free(addr) }

// Zero writes size zero bytes at addr without tracing (fresh-allocation
// scrub used by application allocator wrappers; mirrors an uninstrumented
// memset inside the allocator).
//
// Contract: Zero is an ordinary cached store in every respect except
// observability. It emits no trace event and records no call site (the
// analysis never sees it, exactly as HawkSet never sees a memset inside an
// uninstrumented allocator), it does not yield to the scheduler, and — like
// any store — it only dirties the covered cache lines. Under the worst-case
// cache model the zeroes are NOT persistent until the caller issues a
// covering Flush+Fence or Persist; a crash after an un-fenced Zero drops
// them and the pre-Zero bytes survive. Callers relying on a scrubbed block
// being durably zero must persist the range themselves.
func (c *Ctx) Zero(addr uint64, size uint64) {
	buf := make([]byte, size)
	c.r.Pool.Store(c.th.ID(), addr, buf, 0)
	if c.r.cfg.RecordOps {
		// nil Data + Size encodes "Size zero bytes"; Seq -1 marks the op as
		// untraced.
		c.r.Ops = append(c.r.Ops, pmem.Op{Kind: pmem.OpStore, TID: c.th.ID(), Addr: addr, Size: uint32(size), Seq: -1})
		c.r.OpSites = append(c.r.OpSites, 0)
		c.r.mJournalOps.Inc()
	}
}

// Yield cedes the virtual CPU (coverage/diversity aid in workload drivers).
func (c *Ctx) Yield() { c.th.Yield() }

// Thread is a handle to a spawned simulated thread.
type Thread struct {
	t *sched.Thread
}

// Spawn starts fn on a new simulated thread, recording the thread-create
// event that drives the inter-thread happens-before analysis.
func (c *Ctx) Spawn(fn func(c *Ctx)) *Thread {
	site := c.here()
	nt := c.th.Spawn(func(t *sched.Thread) {
		fn(&Ctx{r: c.r, th: t})
	})
	c.emit(trace.Event{Kind: trace.KThreadCreate, TID: c.th.ID(), Kid: nt.ID(), Site: site})
	return &Thread{t: nt}
}

// Join waits for th to finish, recording the thread-join event.
func (c *Ctx) Join(th *Thread) {
	site := c.here()
	c.th.Join(th.t)
	c.emit(trace.Event{Kind: trace.KThreadJoin, TID: c.th.ID(), Kid: th.t.ID(), Site: site})
}

// Park blocks the calling simulated thread until another thread calls
// Unpark on its handle. Test harnesses (e.g. the Durinn-style baseline's
// breakpoint scheduler) use it to hold a thread at a precise instruction
// boundary.
func (c *Ctx) Park(why string) { c.th.Park(why) }

// Unpark wakes a thread parked via Park.
func (c *Ctx) Unpark(th *Thread) { c.th.Unpark(th.t) }

// Parked reports whether the thread is currently blocked in Park.
func (th *Thread) Parked() bool { return th.t.Blocked() }
