package pmrt

import (
	"strings"
	"testing"

	"hawkset/internal/hawkset"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
)

func TestBasicStoreLoadRoundTrip(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	err := r.Run(func(c *Ctx) {
		a := c.Alloc(64)
		c.Store8(a, 0x1122334455667788)
		if got := c.Load8(a); got != 0x1122334455667788 {
			t.Errorf("Load8 = %#x", got)
		}
		c.Store4(a+8, 0xabcd)
		if got := c.Load4(a + 8); got != 0xabcd {
			t.Errorf("Load4 = %#x", got)
		}
		c.Store1(a+12, 0x7f)
		if got := c.Load1(a + 12); got != 0x7f {
			t.Errorf("Load1 = %#x", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceRecordsOps(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	m := r.NewMutex("m")
	err := r.Run(func(c *Ctx) {
		a := c.Alloc(64)
		c.Lock(m)
		c.Store8(a, 7)
		c.Persist(a, 8)
		c.Unlock(m)
		th := c.Spawn(func(c2 *Ctx) {
			c2.Lock(m)
			_ = c2.Load8(a)
			c2.Unlock(m)
		})
		c.Join(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := r.Trace.Counts()
	if counts[trace.KStore] != 1 || counts[trace.KLoad] != 1 ||
		counts[trace.KFlush] != 1 || counts[trace.KFence] != 1 ||
		counts[trace.KLockAcq] != 2 || counts[trace.KLockRel] != 2 ||
		counts[trace.KThreadCreate] != 1 || counts[trace.KThreadJoin] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSiteCapture(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	err := r.Run(func(c *Ctx) {
		a := c.Alloc(64)
		c.Store8(a, 1) // the site must be THIS line of THIS file
	})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range r.Trace.Events {
		if e.Kind == trace.KStore {
			fr := r.Trace.Sites.Lookup(e.Site)
			if strings.HasSuffix(fr.File, "pmrt_test.go") && strings.Contains(fr.Func, "TestSiteCapture") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("store event does not carry the application call site")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	r := New(Config{Seed: 99, PoolSize: 1 << 16})
	m := r.NewMutex("m")
	inside := 0
	maxInside := 0
	err := r.Run(func(c *Ctx) {
		var ths []*Thread
		for i := 0; i < 8; i++ {
			ths = append(ths, c.Spawn(func(c2 *Ctx) {
				for j := 0; j < 10; j++ {
					c2.Lock(m)
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					c2.Yield() // try to let others in
					inside--
					c2.Unlock(m)
				}
			}))
		}
		for _, th := range ths {
			c.Join(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1 (mutual exclusion)", maxInside)
	}
}

func TestTryLock(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	m := r.NewMutex("m")
	err := r.Run(func(c *Ctx) {
		if !c.TryLock(m) {
			t.Error("TryLock of free mutex failed")
		}
		th := c.Spawn(func(c2 *Ctx) {
			if c2.TryLock(m) {
				t.Error("TryLock of held mutex succeeded")
			}
		})
		c.Join(th)
		c.Unlock(m)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Failed TryLock must not emit a lock event.
	if got := r.Trace.Counts()[trace.KLockAcq]; got != 1 {
		t.Fatalf("lock events = %d, want 1", got)
	}
}

func TestRWMutex(t *testing.T) {
	r := New(Config{Seed: 5, PoolSize: 1 << 16})
	m := r.NewRWMutex("rw")
	readers := 0
	sawTwoReaders := false
	err := r.Run(func(c *Ctx) {
		var ths []*Thread
		for i := 0; i < 4; i++ {
			ths = append(ths, c.Spawn(func(c2 *Ctx) {
				c2.RLock(m)
				readers++
				if readers >= 2 {
					sawTwoReaders = true
				}
				c2.Yield()
				c2.Yield()
				readers--
				c2.RUnlock(m)
			}))
		}
		writerSawReaders := false
		w := c.Spawn(func(c2 *Ctx) {
			c2.WLock(m)
			if readers != 0 {
				writerSawReaders = true
			}
			c2.WUnlock(m)
		})
		for _, th := range ths {
			c.Join(th)
		}
		c.Join(w)
		if writerSawReaders {
			t.Error("writer ran with readers inside")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawTwoReaders {
		t.Fatal("readers never overlapped (RLock too strict)")
	}
}

func TestSpinLockExclusionAndTrace(t *testing.T) {
	r := New(Config{Seed: 11, PoolSize: 1 << 16})
	var sl *SpinLock
	inside, maxInside := 0, 0
	err := r.Run(func(c *Ctx) {
		sl = r.NewSpinLock(c, "sl")
		var ths []*Thread
		for i := 0; i < 4; i++ {
			ths = append(ths, c.Spawn(func(c2 *Ctx) {
				for j := 0; j < 5; j++ {
					c2.SpinLock(sl)
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					c2.Yield()
					inside--
					c2.SpinUnlock(sl)
				}
			}))
		}
		for _, th := range ths {
			c.Join(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d", maxInside)
	}
	counts := r.Trace.Counts()
	if counts[trace.KLockAcq] != 20 || counts[trace.KLockRel] != 20 {
		t.Fatalf("lock events = %d/%d, want 20/20", counts[trace.KLockAcq], counts[trace.KLockRel])
	}
	// The CAS word accesses must also be visible as PM accesses.
	if counts[trace.KStore] == 0 || counts[trace.KLoad] == 0 {
		t.Fatal("spinlock CAS left no PM access events")
	}
}

func TestCAS8(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	err := r.Run(func(c *Ctx) {
		a := c.Alloc(8)
		if !c.CAS8(a, 0, 42) {
			t.Error("CAS on expected value failed")
		}
		if c.CAS8(a, 0, 43) {
			t.Error("CAS on stale value succeeded")
		}
		if got := c.Load8(a); got != 42 {
			t.Errorf("value = %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashImageSemantics(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	var persisted, lost uint64
	err := r.Run(func(c *Ctx) {
		persisted = c.Alloc(8)
		lost = c.Alloc(8)
		c.Store8(persisted, 111)
		c.Persist(persisted, 8)
		c.Store8(lost, 222) // never flushed
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Pool.ReadPersistent8(persisted); got != 111 {
		t.Fatalf("persisted value in crash image = %d", got)
	}
	if got := r.Pool.ReadPersistent8(lost); got != 0 {
		t.Fatalf("unflushed value leaked into crash image: %d", got)
	}
}

func TestDeterministicTrace(t *testing.T) {
	run := func(seed int64) []trace.Event {
		r := New(Config{Seed: seed, PoolSize: 1 << 16})
		err := r.Run(func(c *Ctx) {
			a := c.Alloc(64)
			var ths []*Thread
			for i := 0; i < 4; i++ {
				off := uint64(i * 8)
				ths = append(ths, c.Spawn(func(c2 *Ctx) {
					for j := 0; j < 5; j++ {
						c2.Store8(a+off, uint64(j))
						c2.Persist(a+off, 8)
						_ = c2.Load8(a + (off+8)%32)
					}
				}))
			}
			for _, th := range ths {
				c.Join(th)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Trace.Events
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestEndToEndFigure1c runs the paper's motivating example as a real program
// under the instrumented runtime and checks HawkSet reports it, closing the
// loop instrumentation → trace → analysis.
func TestEndToEndFigure1c(t *testing.T) {
	r := New(Config{Seed: 3, PoolSize: 1 << 16})
	m := r.NewMutex("A")
	err := r.Run(func(c *Ctx) {
		x := c.Alloc(8)
		t1 := c.Spawn(func(c1 *Ctx) {
			c1.Lock(m)
			c1.Store8(x, 99) // racy store: persist is outside the section
			c1.Unlock(m)
			c1.Persist(x, 8)
		})
		t2 := c.Spawn(func(c2 *Ctx) {
			c2.Lock(m)
			_ = c2.Load8(x)
			c2.Unlock(m)
		})
		c.Join(t1)
		c.Join(t2)
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := hawkset.DefaultConfig()
	cfg.IRH = false
	res := hawkset.Analyze(r.Trace, cfg)
	found := false
	for _, rep := range res.Reports {
		if strings.Contains(rep.StoreFrame.Func, "TestEndToEndFigure1c") &&
			strings.Contains(rep.LoadFrame.Func, "TestEndToEndFigure1c") {
			found = true
		}
	}
	if !found {
		t.Fatalf("end-to-end Figure 1c race not reported; reports = %v", res.Reports)
	}
}

// TestEndToEndCorrectProgram: persist inside the critical section — no
// reports at all.
func TestEndToEndCorrectProgram(t *testing.T) {
	r := New(Config{Seed: 3, PoolSize: 1 << 16})
	m := r.NewMutex("A")
	err := r.Run(func(c *Ctx) {
		x := c.Alloc(8)
		t1 := c.Spawn(func(c1 *Ctx) {
			c1.Lock(m)
			c1.Store8(x, 99)
			c1.Persist(x, 8)
			c1.Unlock(m)
		})
		t2 := c.Spawn(func(c2 *Ctx) {
			c2.Lock(m)
			_ = c2.Load8(x)
			c2.Unlock(m)
		})
		c.Join(t1)
		c.Join(t2)
	})
	if err != nil {
		t.Fatal(err)
	}
	res := hawkset.Analyze(r.Trace, hawkset.DefaultConfig())
	if len(res.Reports) != 0 {
		t.Fatalf("correct program produced reports: %v", res.Reports)
	}
}

func TestEADRMode(t *testing.T) {
	r := New(Config{Seed: 3, PoolSize: 1 << 16, EADR: true})
	var x uint64
	err := r.Run(func(c *Ctx) {
		x = c.Alloc(8)
		c.Store8(x, 5) // no flush needed under eADR
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Pool.ReadPersistent8(x); got != 5 {
		t.Fatalf("eADR store not persistent: %d", got)
	}
}

func TestDirtyReadObserver(t *testing.T) {
	r := New(Config{Seed: 3, PoolSize: 1 << 16, NoTrace: true, TrackWriters: true})
	observed := 0
	r.OnDirtyRead = func(c *Ctx, loadSite sites.ID, addr uint64, size uint32, writer int32, storeSite sites.ID) {
		observed++
		if writer == c.TID() {
			t.Error("own store observed as dirty read")
		}
	}
	err := r.Run(func(c *Ctx) {
		x := c.Alloc(8)
		t1 := c.Spawn(func(c1 *Ctx) {
			c1.Store8(x, 1) // unpersisted
		})
		c.Join(t1)
		_ = c.Load8(x) // reads visible-but-unpersisted data from T1
		c.Persist(x, 8)
		_ = c.Load8(x) // persisted now: no observation
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed != 1 {
		t.Fatalf("observed = %d dirty reads, want 1", observed)
	}
	if r.Trace.Len() != 0 {
		t.Fatalf("NoTrace runtime recorded %d events", r.Trace.Len())
	}
}

// TestEventSinkOnlineAnalysis wires a hawkset.Stream to the runtime: the
// streaming analysis over live events matches the offline analysis of the
// recorded trace, without retaining events.
func TestEventSinkOnlineAnalysis(t *testing.T) {
	r := New(Config{Seed: 3, PoolSize: 1 << 16})
	cfg := hawkset.DefaultConfig()
	cfg.IRH = false // two-access toy: publication-based pruning would hide it
	stream := hawkset.NewStream(r.Trace.Sites, cfg)
	r.EventSink = func(e trace.Event) {
		if err := stream.Feed(e); err != nil {
			t.Errorf("stream.Feed: %v", err)
		}
	}
	m := r.NewMutex("A")
	err := r.Run(func(c *Ctx) {
		x := c.Alloc(8)
		t1 := c.Spawn(func(c1 *Ctx) {
			c1.Lock(m)
			c1.Store8(x, 99)
			c1.Unlock(m)
			c1.Persist(x, 8)
		})
		t2 := c.Spawn(func(c2 *Ctx) {
			c2.Lock(m)
			_ = c2.Load8(x)
			c2.Unlock(m)
		})
		c.Join(t1)
		c.Join(t2)
	})
	if err != nil {
		t.Fatal(err)
	}
	online, err := stream.Finish()
	if err != nil {
		t.Fatalf("stream.Finish: %v", err)
	}
	offline := hawkset.Analyze(r.Trace, cfg)
	if len(online.Reports) != len(offline.Reports) {
		t.Fatalf("online %d reports, offline %d", len(online.Reports), len(offline.Reports))
	}
	if len(online.Reports) == 0 {
		t.Fatal("online analysis missed the Figure 1c race")
	}
}

// TestBacktraceMode: with Config.Backtraces the recorded site carries the
// call chain, so a race report shows how the access was reached.
func TestBacktraceMode(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16, Backtraces: true})
	err := r.Run(func(c *Ctx) {
		a := c.Alloc(8)
		storeThroughHelper(c, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range r.Trace.Events {
		if e.Kind == trace.KStore {
			fr := r.Trace.Sites.Lookup(e.Site)
			if strings.Contains(fr.Func, "storeThroughHelper") && strings.Contains(fr.Func, "TestBacktraceMode") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("backtrace mode did not record the call chain")
	}
}

func storeThroughHelper(c *Ctx, a uint64) { c.Store8(a, 7) }

// TestPersistBoundAtPoolTop: Persist over a range whose last byte is the
// pool's final byte must flush every covered line (regression for the
// addition-form line bound addr+size-1, the wraparound class PR 1 fixed in
// the analysis side).
func TestPersistBoundAtPoolTop(t *testing.T) {
	const pool = 1 << 16
	r := New(Config{Seed: 1, PoolSize: pool})
	err := r.Run(func(c *Ctx) {
		addr := uint64(pool - 128)
		for i := uint64(0); i < 128; i += 8 {
			c.Store8(addr+i, 0xdead<<8|i)
		}
		c.Persist(addr, 128) // ends exactly at the pool top
		if !r.Pool.Persisted(addr, 128) {
			t.Error("Persist over range ending at pool top left bytes unpersisted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestZeroUnfencedDroppedOnCrash pins Zero's contract: it is an untraced
// dirty-line write, so under the worst-case cache model a crash before a
// covering persist drops the zeroes and the pre-Zero bytes survive.
func TestZeroUnfencedDroppedOnCrash(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	var a uint64
	err := r.Run(func(c *Ctx) {
		a = c.Alloc(64)
		c.Store8(a, 0x1111111111111111)
		c.Store8(a+8, 0x2222222222222222)
		c.Persist(a, 16)
		c.Zero(a, 16) // visible immediately...
		if got := c.Load8(a); got != 0 {
			t.Errorf("volatile view after Zero = %#x, want 0", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...but not persistent: the crash image keeps the old contents.
	if got := r.Pool.ReadPersistent8(a); got != 0x1111111111111111 {
		t.Errorf("crash image word 0 = %#x, want pre-Zero 0x1111111111111111", got)
	}
	if got := r.Pool.ReadPersistent8(a + 8); got != 0x2222222222222222 {
		t.Errorf("crash image word 1 = %#x, want pre-Zero 0x2222222222222222", got)
	}

	// A covering Persist makes the zeroes durable.
	r2 := New(Config{Seed: 1, PoolSize: 1 << 16})
	err = r2.Run(func(c *Ctx) {
		a = c.Alloc(64)
		c.Store8(a, 0x3333333333333333)
		c.Persist(a, 8)
		c.Zero(a, 8)
		c.Persist(a, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Pool.ReadPersistent8(a); got != 0 {
		t.Errorf("crash image after Zero+Persist = %#x, want 0", got)
	}
}

// TestZeroEmitsNoTraceEvent pins the observability half of Zero's contract:
// no event reaches the trace or the EventSink.
func TestZeroEmitsNoTraceEvent(t *testing.T) {
	r := New(Config{Seed: 1, PoolSize: 1 << 16})
	sunk := 0
	r.EventSink = func(e trace.Event) { sunk++ }
	err := r.Run(func(c *Ctx) {
		a := c.Alloc(64)
		before := len(r.Trace.Events)
		beforeSunk := sunk
		c.Zero(a, 64)
		if got := len(r.Trace.Events) - before; got != 0 {
			t.Errorf("Zero appended %d trace events, want 0", got)
		}
		if got := sunk - beforeSunk; got != 0 {
			t.Errorf("Zero emitted %d sink events, want 0", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
