package pmrace

import (
	"math"
	"testing"

	"hawkset/internal/apps"
	"hawkset/internal/ycsb"

	_ "hawkset/internal/apps/fastfair"
)

// TestExpectedTimeToRaceReproducesPaper checks the closed form against the
// three entries of Table 3 (240 seeds).
func TestExpectedTimeToRaceReproducesPaper(t *testing.T) {
	// PMRace, bug #1: 9 racy of 240, 600 s per execution → 69900.00 s.
	if got := ExpectedTimeToRace(231, 9, 600); math.Abs(got-69900) > 0.01 {
		t.Errorf("PMRace #1 = %.2f, want 69900.00", got)
	}
	// HawkSet, bug #1: 110 racy of 240, 6.65 s per execution → ≈439 s.
	if got := ExpectedTimeToRace(130, 110, 6.65); math.Abs(got-438.90) > 0.5 {
		t.Errorf("HawkSet #1 = %.2f, want ≈439", got)
	}
	// HawkSet, bug #2: 115 racy of 240 → ≈422 s.
	if got := ExpectedTimeToRace(125, 115, 6.65); math.Abs(got-422.28) > 0.5 {
		t.Errorf("HawkSet #2 = %.2f, want ≈422", got)
	}
	// PMRace, bug #2: never found → ∞.
	if got := ExpectedTimeToRace(240, 0, 600); !math.IsInf(got, 1) {
		t.Errorf("PMRace #2 = %v, want +Inf", got)
	}
	// Speedup for bug #1 ≈ 159×.
	speedup := ExpectedTimeToRace(231, 9, 600) / ExpectedTimeToRace(130, 110, 6.65)
	if speedup < 150 || speedup > 170 {
		t.Errorf("speedup = %.1f, want ≈159", speedup)
	}
}

// TestObservesPlantedRace: with enough delay injection, the observation
// detector catches a blatant dirty-read race in Fast-Fair (bug #5-style
// always-on unpersisted stores are absent there, so use a workload large
// enough to split nodes).
func TestObservesPlantedRace(t *testing.T) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	spec := ycsb.DefaultSpec(800)
	spec.LoadCount = 100
	spec.KeySpace = 1 << 10
	w := ycsb.Generate(spec, 5)
	res, err := Detect(e, w, Config{Seed: 5, Executions: 4, DelayProb: 0.05, DelaySteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions != 4 {
		t.Fatalf("Executions = %d", res.Executions)
	}
	if len(res.Observations) == 0 {
		t.Fatal("no dirty reads observed despite unpersisted split pointers and delay injection")
	}
}

// TestFixedVariantHasFewerObservations is indirect: the Detect API always
// runs the buggy variant, so instead check MatchesBug filtering.
func TestMatchesBug(t *testing.T) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	spec := ycsb.DefaultSpec(800)
	spec.LoadCount = 100
	spec.KeySpace = 1 << 10
	w := ycsb.Generate(spec, 7)
	res, err := Detect(e, w, Config{Seed: 7, Executions: 4, DelayProb: 0.05, DelaySteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchesBug("no-such-func", "nope") {
		t.Fatal("MatchesBug matched a nonexistent function pair")
	}
}

// TestStage2ConfirmsObservations: with the post-failure validation enabled,
// observed inconsistencies are backed by crash-image violations.
func TestStage2ConfirmsObservations(t *testing.T) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	spec := ycsb.DefaultSpec(800)
	spec.LoadCount = 100
	spec.KeySpace = 1 << 10
	w := ycsb.Generate(spec, 5)
	cfg := Config{Seed: 5, Executions: 4, DelayProb: 0.05, DelaySteps: 10, Stage2: true}
	res, err := Detect(e, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Observations) == 0 {
		t.Skip("campaign observed nothing; stage 2 not exercised")
	}
	if !res.Stage2Ran {
		t.Fatal("stage 2 did not run despite observations")
	}
	if len(res.Violations) == 0 {
		t.Fatal("stage 2 found no violations for a buggy Fast-Fair")
	}
}

// TestPCTCampaignRuns: the PCT exploration policy drives the campaign to
// completion and still observes dirty reads.
func TestPCTCampaignRuns(t *testing.T) {
	e, err := apps.Lookup("Fast-Fair")
	if err != nil {
		t.Fatal(err)
	}
	spec := ycsb.DefaultSpec(600)
	spec.LoadCount = 100
	spec.KeySpace = 1 << 10
	w := ycsb.Generate(spec, 9)
	cfg := Config{Seed: 9, Executions: 4, DelayProb: 0.05, DelaySteps: 10, PCTDepth: 3}
	res, err := Detect(e, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions != 4 {
		t.Fatalf("executions = %d", res.Executions)
	}
	if len(res.Observations) == 0 {
		t.Fatal("PCT campaign observed nothing on a heavily buggy app without eviction")
	}
}
