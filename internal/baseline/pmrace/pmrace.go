// Package pmrace implements the observation-based concurrent-PM-bug
// detector HawkSet is compared against in §5.2: a faithful analogue of
// PMRace's first stage (Chen et al., ASPLOS'22). The detector must actually
// *observe* a PM Inter-thread Inconsistency — a load reading
// visible-but-not-persistent data written by another thread — in a concrete
// interleaving. To make that more likely it runs the application many times,
// mutating the workload between executions (fuzzing) and injecting random
// delays at PM operations to perturb the schedule.
//
// The contrast with HawkSet is structural: the lockset analysis detects a
// race from a single execution with coverage, while this detector needs the
// racy interleaving itself, so its expected time to find a race is orders of
// magnitude larger (Table 3).
package pmrace

import (
	"math"
	"math/rand"
	"strings"
	"time"

	"hawkset/internal/apps"
	"hawkset/internal/pmrt"
	"hawkset/internal/sites"
	"hawkset/internal/trace"
	"hawkset/internal/ycsb"
)

// Config tunes the detection campaign for one seed workload.
type Config struct {
	// Seed drives schedule randomization, delay injection and mutation.
	Seed int64
	// Executions is the fuzzing budget: the number of times the application
	// is run (the first run uses the seed workload, later runs mutate it).
	Executions int
	// DelayProb is the probability of injecting a delay before a PM
	// operation.
	DelayProb float64
	// DelaySteps is the number of scheduler yields injected per delay.
	DelaySteps int
	// EvictAfter is the hardware cache's background-writeback age in device
	// operations: unpersisted windows usually close by accident on real PM,
	// which is what makes direct observation rare (§5.2).
	EvictAfter int
	// PCTDepth, when positive, replaces uniform-random scheduling with PCT
	// (probabilistic concurrency testing) at the given bug depth — a
	// principled exploration strategy for the fuzzing campaign.
	PCTDepth int
	// Stage2 enables PMRace's second stage: after the detection campaign, a
	// post-failure consistency check of the crash image confirms whether the
	// observed inconsistencies have unresolved effects (the paper's
	// comparison deliberately excludes this stage's cost, §5.2; it is
	// available here for completeness). Requires the application to
	// implement apps.CrashValidator.
	Stage2 bool
}

// DefaultConfig mirrors the paper's setup in spirit: a bounded per-seed
// budget with delay injection enabled.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Executions: 5, DelayProb: 0.02, DelaySteps: 10, EvictAfter: 70}
}

// Observation is one observed dirty read, deduplicated by site pair.
type Observation struct {
	StoreFrame sites.Frame
	LoadFrame  sites.Frame
	Count      int
}

// Result summarizes a campaign.
type Result struct {
	Observations []Observation
	Executions   int
	Elapsed      time.Duration
	// Stage-2 output (Config.Stage2): post-crash structural violations
	// confirming the observations' effects survive a failure.
	Stage2Ran  bool
	Violations []string
}

// MatchesBug reports whether any observation corresponds to the given bug
// spec (same function-pair matching as HawkSet's reports, so the comparison
// is apples-to-apples).
func (r *Result) MatchesBug(storeFunc, loadFunc string) bool {
	for _, o := range r.Observations {
		if strings.Contains(o.StoreFrame.Func, storeFunc) && strings.Contains(o.LoadFrame.Func, loadFunc) {
			return true
		}
	}
	return false
}

// Detect runs the fuzzing campaign for one seed workload against the buggy
// variant of the application.
func Detect(e *apps.Entry, w *ycsb.Workload, cfg Config) (*Result, error) {
	start := time.Now()
	res := &Result{}
	obs := map[[2]sites.ID]*Observation{}
	rng := rand.New(rand.NewSource(cfg.Seed))

	for exec := 0; exec < cfg.Executions; exec++ {
		wl := w
		if exec > 0 {
			wl = ycsb.Mutate(w, cfg.Seed+int64(exec))
		}
		poolSize := e.PoolSize
		if poolSize == 0 {
			poolSize = 32 << 20
		}
		rt := pmrt.New(pmrt.Config{
			Seed:         cfg.Seed + int64(exec)*7919,
			PoolSize:     poolSize,
			NoTrace:      true, // observation only; no trace, no analysis
			TrackWriters: true,
			EvictAfter:   cfg.EvictAfter,
			PCTDepth:     cfg.PCTDepth,
		})
		delayRng := rand.New(rand.NewSource(rng.Int63()))
		rt.BeforeOp = func(c *pmrt.Ctx, k trace.Kind, addr uint64, size uint32) {
			// PMRace injects delays around PM operations to widen the
			// visible-but-not-persistent windows it must observe.
			switch k {
			case trace.KStore, trace.KNTStore, trace.KFlush, trace.KFence:
				if delayRng.Float64() < cfg.DelayProb {
					for i := 0; i < cfg.DelaySteps; i++ {
						c.Yield()
					}
				}
			}
		}
		st := rt.Trace.Sites
		rt.OnDirtyRead = func(c *pmrt.Ctx, loadSite sites.ID, addr uint64, size uint32, writer int32, storeSite sites.ID) {
			key := [2]sites.ID{storeSite, loadSite}
			if o, ok := obs[key]; ok {
				o.Count++
				return
			}
			obs[key] = &Observation{
				StoreFrame: st.Lookup(storeSite),
				LoadFrame:  st.Lookup(loadSite),
				Count:      1,
			}
		}
		app := e.Factory(rt, false)
		if err := apps.RunOn(rt, app, wl); err != nil {
			return nil, err
		}
		res.Executions++
	}
	for _, o := range obs {
		res.Observations = append(res.Observations, *o)
	}
	if cfg.Stage2 && len(res.Observations) > 0 {
		violations, err := apps.RunAndValidate(e, w.TotalOps(), cfg.Seed, apps.RunConfig{Seed: cfg.Seed})
		if err == nil { // apps without validators simply skip stage 2
			res.Stage2Ran = true
			res.Violations = violations
			res.Executions++
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// ExpectedTimeToRace evaluates the paper's §5.2 metric: the expected time to
// find a specific race when workloads are drawn at random without
// replacement from a corpus where the tool finds the race in s workloads and
// misses it in e, spending t seconds per workload. The paper's binomial
// expression collapses to the closed form t·(e/2 + 1); it reproduces the
// paper's 69900.00 s, 439.19 s and 422.55 s entries exactly. It returns +Inf
// when the tool never finds the race (s == 0), Table 3's "∞".
func ExpectedTimeToRace(e, s int, t float64) float64 {
	if s == 0 {
		return math.Inf(1)
	}
	return t * (float64(e)/2 + 1)
}
